// ssmwn — command-line driver for clustering experiments.
//
//   ssmwn cluster  --n 500 --radius 0.08 [--grid] [--dag] [--fusion]
//                  [--metric density|degree|lowest-id|max-min]
//                  [--seed S] [--dot out.dot] [--csv out.csv] [--map]
//   ssmwn protocol --n 200 --radius 0.1 [--tau 0.8] [--steps 100]
//                  [--corrupt 0.3] [--dag] [--threads 4] [--shards 8]
//                  [--scheduler sync|async] [--daemon randomized|...]
//                  [--period 1.0] [--period-jitter 0.1] [--link-delay 0.02]
//   ssmwn routing  --n 500 --radius 0.08 [--pairs 300]
//   ssmwn campaign spec-file [--threads 4] [--shards 8] [--csv F] [--json F]
//                  [--checkpoint F] [--checkpoint-every N] [--resume F]
//   ssmwn serve    [--port N] [--threads 4] [--shards 8]
//   ssmwn submit   spec-file --port N
//
// `cluster` builds a deployment, clusters it, and prints the metrics of
// the paper's evaluation (optionally a DOT file, a per-node CSV, or an
// ASCII map for grid deployments). `protocol` runs the distributed
// self-stabilizing protocol and reports convergence. `routing` compares
// flat vs hierarchical routing. `campaign` expands a declarative
// experiment spec into a replication grid and runs it sharded across a
// worker pool (src/campaign/), optionally publishing resumable
// checkpoints. `serve` is the long-running daemon form of `campaign`:
// specs stream in over a framed TCP protocol, results stream back;
// `submit` is the matching client.
//
// Exit codes: 0 success, 1 run failure (a simulation ran but did not
// meet its success condition, or an output file could not be written),
// 2 bad arguments, a malformed spec, or an unusable checkpoint.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "mobility/mobility.hpp"
#include "cluster/baselines.hpp"
#include "cluster/max_min.hpp"
#include "core/clustering.hpp"
#include "core/dag_ids.hpp"
#include "core/legitimacy.hpp"
#include "core/protocol.hpp"
#include "graph/dot.hpp"
#include "metrics/cluster_metrics.hpp"
#include "routing/routing.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "sim/async_network.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "sim/sharded_network.hpp"
#include "sim/trace.hpp"
#include "stabilize/convergence.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/incremental.hpp"
#include "topology/udg.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "verify/certifier.hpp"
#include "verify/shrink.hpp"

namespace {

using namespace ssmwn;

constexpr int kExitOk = 0;
constexpr int kExitRunFailure = 1;
constexpr int kExitUsage = 2;

/// Validates a --threads value shared by `protocol`, `campaign`, and
/// `serve` (0 = hardware concurrency — a deliberate in-range meaning,
/// not a degenerate value). Returns the parsed value or throws the
/// bad-arguments exception.
unsigned parse_threads(const util::Args& args) {
  return static_cast<unsigned>(args.get_int_in("threads", 1, 0, 65536));
}

/// `--seed` is consumed as uint64, so a negative value would wrap
/// through the cast into a surprising (and irreproducible-looking)
/// seed; reject it instead.
std::uint64_t parse_seed(const util::Args& args, std::int64_t fallback) {
  return static_cast<std::uint64_t>(args.get_int_in(
      "seed", fallback, 0, std::numeric_limits<std::int64_t>::max()));
}

/// Validates the --shards execution knob shared by `protocol` and
/// `campaign`. Like --threads it must never influence results: 0 or 1
/// selects the unsharded sim::Network, >= 2 the spatially sharded
/// engine, and the two are bit-identical at any value
/// (tests/sim/sharded_equivalence_test.cpp), so pre-existing outputs
/// stay byte-for-byte unchanged.
std::size_t parse_shards(const util::Args& args) {
  return static_cast<std::size_t>(args.get_int_in("shards", 0, 0, 1'000'000));
}

struct Deployment {
  std::vector<topology::Point> points;
  graph::Graph graph;
  topology::IdAssignment ids;
  std::size_t grid_side = 0;  // nonzero iff --grid
};

Deployment make_deployment(const util::Args& args, util::Rng& rng) {
  Deployment d;
  // Both feed size_t/geometry code paths: a negative --n would wrap
  // through the cast into a ~2^64 allocation, a non-positive radius
  // yields an empty graph that *looks* like a result.
  const auto n =
      static_cast<std::size_t>(args.get_int_in("n", 500, 1, 10'000'000));
  const double radius = args.get_double_in("radius", 0.08, 1e-9, 1e9);
  if (args.get_bool("grid", false)) {
    d.grid_side = topology::grid_side_for(n);
    d.points = topology::grid_points(d.grid_side);
    d.ids = topology::sequential_ids(d.points.size());
  } else {
    d.points = topology::uniform_points(n, rng);
    d.ids = topology::random_ids(n, rng);
  }
  d.graph = topology::unit_disk_graph(d.points, radius);
  return d;
}

int run_cluster(const util::Args& args, util::Rng& rng) {
  const auto d = make_deployment(args, rng);
  core::ClusterOptions options;
  options.fusion = args.get_bool("fusion", false);
  options.incumbency = args.get_bool("incumbency", false);
  options.use_dag_ids = args.get_bool("dag", false);

  const std::string metric = args.get("metric", "density");
  core::ClusteringResult result;
  if (metric == "density") {
    if (options.use_dag_ids) {
      const auto dag = core::build_dag_ids(d.graph, d.ids, {}, rng);
      result = core::cluster_density(d.graph, d.ids, options, dag.ids);
    } else {
      result = core::cluster_density(d.graph, d.ids, options);
    }
  } else if (metric == "degree") {
    result = cluster::cluster_highest_degree(d.graph, d.ids, options);
  } else if (metric == "lowest-id") {
    result = cluster::cluster_lowest_id(d.graph, d.ids, options);
  } else if (metric == "max-min") {
    result = cluster::cluster_max_min(
        d.graph, d.ids, static_cast<std::size_t>(args.get_int_in("d", 2, 1, 64)));
  } else {
    std::fprintf(stderr, "unknown --metric '%s'\n", metric.c_str());
    return 2;
  }

  const auto stats = metrics::analyze(d.graph, result);
  std::printf("nodes=%zu links=%zu max_degree=%zu\n", d.graph.node_count(),
              d.graph.edge_count(), d.graph.max_degree());
  std::printf("clusters=%zu mean_size=%.1f head_ecc=%.2f tree_depth=%.2f "
              "min_head_sep=%zu fairness=%.2f\n",
              stats.cluster_count, stats.mean_cluster_size,
              stats.mean_head_eccentricity, stats.mean_tree_depth,
              stats.min_head_separation,
              metrics::cluster_size_fairness(result));

  if (args.has("map") && d.grid_side > 0) {
    std::fputs(metrics::render_grid_clusters(d.grid_side, result).c_str(),
               stdout);
  }
  if (const auto path = args.get("dot", ""); !path.empty()) {
    graph::DotOptions dot_options;
    dot_options.positions.reserve(d.points.size());
    for (const auto& p : d.points) {
      dot_options.positions.emplace_back(p.x, p.y);
    }
    dot_options.cluster_of = result.head_index;
    dot_options.is_head = result.is_head;
    dot_options.parent = result.parent;
    std::ofstream out(path);
    out << graph::to_dot(d.graph, dot_options);
    std::printf("wrote %s\n", path.c_str());
  }
  if (const auto path = args.get("csv", ""); !path.empty()) {
    std::ofstream out(path);
    out << "node,id,density,head,parent,is_head\n";
    for (graph::NodeId p = 0; p < d.graph.node_count(); ++p) {
      out << p << ',' << d.ids[p] << ',' << result.metric[p] << ','
          << result.head_id[p] << ',' << d.ids[result.parent[p]] << ','
          << int{result.is_head[p]} << '\n';
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

/// Parses and validates the async-engine knobs (--period,
/// --period-jitter, --link-delay, --daemon) shared by the async and
/// live-async paths — every path must apply the same range checks.
sim::AsyncConfig parse_async_config(const util::Args& args,
                                    double default_period) {
  sim::AsyncConfig async;
  async.period_s = args.get_double("period", default_period);
  async.period_jitter = args.get_double("period-jitter", 0.1);
  async.link_delay_s = args.get_double("link-delay", 0.02);
  // Lower bound = one virtual-time tick (1 µs): a sub-tick period
  // cannot advance the event clock.
  if (!(async.period_s >= 1e-6) || async.period_s >= 1e9) {
    throw std::invalid_argument("--period must be in [1e-6, 1e9) seconds");
  }
  if (async.period_jitter < 0.0 || async.period_jitter >= 1.0) {
    throw std::invalid_argument("--period-jitter must be in [0, 1)");
  }
  if (async.link_delay_s < 0.0 || async.link_delay_s >= 1e9) {
    throw std::invalid_argument("--link-delay must be in [0, 1e9) seconds");
  }
  const std::string daemon = args.get("daemon", "randomized");
  if (daemon == "synchronous") {
    async.daemon = sim::DaemonKind::kSynchronous;
  } else if (daemon == "randomized") {
    async.daemon = sim::DaemonKind::kRandomized;
  } else if (daemon == "unfair") {
    async.daemon = sim::DaemonKind::kUnfairRoundRobin;
  } else {
    throw std::invalid_argument(
        "--daemon must be synchronous|randomized|unfair (got '" + daemon +
        "')");
  }
  return async;
}

/// `--stepping full|dirty` (protocol subcommand): selects the classic
/// full sweep or the quiescence-aware dirty-region stepper. Results are
/// bit-identical; only the per-tick cost changes.
sim::Stepping parse_stepping_flag(const util::Args& args) {
  const std::string stepping = args.get("stepping", "full");
  if (stepping == "full") return sim::Stepping::kFull;
  if (stepping == "dirty") return sim::Stepping::kDirty;
  throw std::invalid_argument("--stepping must be full|dirty (got '" +
                              stepping + "')");
}

/// Rejects the async-only flags when the selected mode never reads them
/// — a silently ignored --daemon would mislabel an experiment.
void reject_async_flags(const util::Args& args) {
  for (const char* async_only :
       {"daemon", "period", "period-jitter", "link-delay"}) {
    if (args.has(async_only)) {
      throw std::invalid_argument(std::string("--") + async_only +
                                  " requires --scheduler async");
    }
  }
}

/// `protocol --scheduler async`: the event-driven engine. Runs the
/// protocol from a cold start (and optionally from a corrupted state)
/// under the chosen daemon and reports virtual-time convergence and
/// messages-to-convergence instead of step counts.
int run_protocol_async(const util::Args& args, const Deployment& d,
                       core::DensityProtocol& protocol, util::Rng& rng) {
  const sim::AsyncConfig async = parse_async_config(args, 1.0);
  const std::string daemon = args.get("daemon", "randomized");

  const double tau = args.get_double_in("tau", 1.0, 1e-9, 1.0);
  const auto medium = sim::make_loss_model(tau, rng.split());
  sim::AsyncNetwork network(d.graph, protocol, *medium, async, rng.split());
  const sim::Stepping stepping = parse_stepping_flag(args);
  network.set_stepping(stepping);

  // Shared legitimacy definition (core/legitimacy.hpp) — the CLI and
  // the campaign runner must agree on what "converged" means.
  const bool exact =
      core::head_identity_is_deterministic(protocol.config().cluster);
  core::ClusteringResult oracle;
  if (exact) {
    oracle = core::cluster_density(d.graph, d.ids,
                                   protocol.config().cluster);
  }
  core::LegitimacyCheck legitimacy(d.graph, protocol,
                                   exact ? &oracle : nullptr);

  const auto periods =
      static_cast<double>(args.get_int_in("steps", 100, 1, 1'000'000));
  auto settle = [&](const char* label) {
    legitimacy.reset();
    // settle_async counts messages relative to the phase start, so a
    // recovery phase reports only its own traffic, not the cold
    // start's.
    const auto report = sim::settle_async(
        network, [&] { return legitimacy.check(); }, periods);
    std::printf("%s: %s at t=%.2fs (virtual), %llu messages to "
                "convergence, %llu delivered this phase, %llu events\n",
                label, report.converged ? "converged" : "NOT converged",
                report.stabilization_time_s,
                static_cast<unsigned long long>(report.messages_to_converge),
                static_cast<unsigned long long>(report.messages_total),
                static_cast<unsigned long long>(network.events_processed()));
    return report.converged;
  };

  std::printf("scheduler=async daemon=%s period=%gs jitter=%g "
              "link_delay=%gs\n",
              daemon.c_str(), async.period_s, async.period_jitter,
              async.link_delay_s);
  bool ok = settle("cold start");

  const double corrupt = args.get_double_in("corrupt", 0.0, 0.0, 1.0);
  if (corrupt > 0.0) {
    util::Rng chaos(rng());
    const auto hit = protocol.corrupt_fraction(chaos, corrupt);
    std::printf("corrupted %zu nodes\n", hit);
    ok = settle("recovery") && ok;
  }
  std::size_t heads = 0;
  for (const char flag : protocol.head_flags()) heads += flag != 0;
  std::printf("final cluster-heads: %zu\n", heads);
  if (stepping == sim::Stepping::kDirty) {
    std::printf("dirty stepping: %llu rule sweeps run, %llu elided\n",
                static_cast<unsigned long long>(network.activity().nodes_stepped()),
                static_cast<unsigned long long>(network.activity().nodes_skipped()));
  }
  return ok ? kExitOk : kExitRunFailure;
}

/// `protocol --live`: protocol-under-mobility re-convergence, on either
/// engine. Each window moves the nodes by --window-s seconds of the
/// chosen mobility model, applies the topology change to the *running*
/// network (--topology incremental: edge deltas + eager stale-link
/// invalidation; rebuild: fresh graph, recovery by cache aging alone),
/// and measures the time and messages to re-reach legitimacy.
int run_protocol_live(const util::Args& args, const Deployment& d,
                      core::DensityProtocol& protocol, util::Rng& rng,
                      bool async_engine) {
  const std::string update = args.get("topology", "incremental");
  if (update != "incremental" && update != "rebuild") {
    throw std::invalid_argument(
        "--topology must be incremental|rebuild (got '" + update + "')");
  }
  const bool incremental = update == "incremental";
  const double radius = args.get_double_in("radius", 0.08, 1e-9, 1e9);
  const double speed_min = args.get_double("speed-min", 0.0);
  const double speed_max = args.get_double("speed-max", 1.6);
  if (speed_min < 0.0 || speed_max < speed_min || speed_max >= 1e9) {
    throw std::invalid_argument(
        "--speed-min/--speed-max must satisfy 0 <= min <= max");
  }
  const double window_s = args.get_double("window-s", 2.0);
  if (!(window_s >= 1e-6) || window_s >= 1e9) {
    throw std::invalid_argument("--window-s must be in [1e-6, 1e9) seconds");
  }
  const auto windows_raw = args.get_int("windows", 20);
  if (windows_raw < 1 || windows_raw > 1'000'000) {
    throw std::invalid_argument("--windows must be in [1, 1e6]");
  }
  const int windows = static_cast<int>(windows_raw);  // fits %d after check
  const auto horizon_rounds =
      static_cast<double>(args.get_int_in("steps", 100, 1, 1'000'000));

  const mobility::SpeedRange speeds{speed_min, speed_max};
  const std::string mobility = args.get("mobility", "random-direction");
  auto points = d.points;
  std::unique_ptr<mobility::MobilityModel> mover;
  if (mobility == "random-direction") {
    mover = std::make_unique<mobility::RandomDirection>(
        points.size(), speeds, 1000.0, rng.split());
  } else if (mobility == "random-waypoint") {
    mover = std::make_unique<mobility::RandomWaypoint>(points.size(), speeds,
                                                       1000.0, rng.split());
  } else {
    throw std::invalid_argument(
        "--mobility must be random-direction|random-waypoint (got '" +
        mobility + "')");
  }

  // One Graph object lives for the whole run; both engines observe it.
  std::optional<topology::LiveTopology> live;
  graph::DynamicGraph rebuilt;
  if (incremental) {
    live.emplace(points, radius);
  } else {
    rebuilt.reset(topology::unit_disk_graph(points, radius));
  }
  const graph::Graph& g = incremental ? live->graph() : rebuilt.view();

  const double tau = args.get_double_in("tau", 1.0, 1e-9, 1.0);
  const auto medium = sim::make_loss_model(tau, rng.split());

  const bool exact =
      core::head_identity_is_deterministic(protocol.config().cluster);
  core::ClusteringResult oracle;
  auto recompute_oracle = [&] {
    if (exact) {
      oracle = core::cluster_density(g, d.ids, protocol.config().cluster);
    }
  };
  recompute_oracle();
  core::LegitimacyCheck legitimacy(g, protocol, exact ? &oracle : nullptr);

  std::printf("live mode: %s engine, topology=%s, %s %g-%g m/s, %d windows "
              "of %gs\n",
              async_engine ? "async" : "sync", update.c_str(),
              mobility.c_str(), speed_min, speed_max, windows, window_s);

  // Per-phase settle, unified across engines (sync rounds are scaled by
  // window_s so both report virtual seconds).
  std::optional<sim::Network<core::DensityProtocol>> sync_net;
  std::optional<sim::AsyncNetwork<core::DensityProtocol>> async_net;
  const sim::Stepping stepping = parse_stepping_flag(args);
  const bool dirty = stepping == sim::Stepping::kDirty;
  if (async_engine) {
    async_net.emplace(g, protocol, *medium, parse_async_config(args, window_s),
                      rng.split());
    async_net->set_stepping(stepping);
  } else {
    reject_async_flags(args);
    if (dirty && tau < 1.0) {
      throw std::invalid_argument(
          "--stepping dirty on the synchronous engine requires --tau 1 "
          "(use --scheduler async for lossy dirty runs)");
    }
    sync_net.emplace(g, protocol, *medium, parse_threads(args));
    sync_net->set_stepping(stepping);
  }
  auto settle = [&] {
    legitimacy.reset();
    if (async_engine) {
      const double start_s = async_net->now_seconds();
      auto report = sim::settle_async(
          *async_net, [&] { return legitimacy.check(); }, horizon_rounds);
      report.stabilization_time_s -= start_s;
      report.time_simulated_s -= start_s;
      return report;
    }
    std::size_t rounds = 0;
    const std::uint64_t base = sync_net->messages_delivered();
    return stabilize::run_until_stable_virtual(
        [&] {
          sync_net->step();
          return static_cast<double>(++rounds) * window_s;
        },
        [&] { return sync_net->messages_delivered() - base; },
        [&] { return legitimacy.check(); }, 3.0 * window_s,
        horizon_rounds * window_s);
  };

  const auto cold = settle();
  std::printf("cold start: %s at t=%.2fs (virtual), %llu messages\n",
              cold.converged ? "converged" : "NOT converged",
              cold.converged ? cold.stabilization_time_s
                             : cold.time_simulated_s,
              static_cast<unsigned long long>(
                  cold.converged ? cold.messages_to_converge
                                 : cold.messages_total));

  std::size_t reconverged = 0;
  double time_sum = 0.0, msg_sum = 0.0;
  for (int w = 0; w < windows; ++w) {
    mover->step(points, window_s);
    std::size_t grew = 0, broke = 0;
    if (async_engine) {
      async_net->schedule_topology_update(
          async_net->now(), [&]() -> const graph::EdgeDelta& {
            if (incremental) {
              const auto& delta = live->update(points);
              grew = delta.added.size();
              broke = delta.removed.size();
              return delta;
            }
            static const graph::EdgeDelta kNoDelta;
            rebuilt.reset(topology::unit_disk_graph(points, radius));
            return kNoDelta;
          });
      async_net->run_until(async_net->now());  // fire before the oracle
    } else if (incremental) {
      const auto& delta = live->update(points);
      grew = delta.added.size();
      broke = delta.removed.size();
      sync_net->apply_topology_delta(delta);
    } else {
      // In-place rebuild carries no delta; under dirty stepping
      // re-announce the graph so every node wakes to the change.
      rebuilt.reset(topology::unit_disk_graph(points, radius));
      if (dirty) sync_net->set_graph(g);
    }
    recompute_oracle();
    const auto report = settle();
    const double t = report.converged ? report.stabilization_time_s
                                      : report.time_simulated_s;
    const auto msgs = report.converged ? report.messages_to_converge
                                       : report.messages_total;
    reconverged += report.converged;
    time_sum += t;
    msg_sum += static_cast<double>(msgs);
    std::printf("window %3d: +%zu/-%zu edges, %s in %.2fs, %llu messages\n",
                w + 1, grew, broke,
                report.converged ? "re-converged" : "NOT re-converged", t,
                static_cast<unsigned long long>(msgs));
  }
  std::printf("re-converged %zu/%d windows; mean %.2fs, mean %.0f messages "
              "per perturbation\n",
              reconverged, windows, time_sum / windows, msg_sum / windows);
  std::size_t heads = 0;
  for (const char flag : protocol.head_flags()) heads += flag != 0;
  std::printf("final cluster-heads: %zu\n", heads);
  if (dirty) {
    const auto stepped = async_engine ? async_net->activity().nodes_stepped()
                                      : sync_net->activity().nodes_stepped();
    const auto skipped = async_engine ? async_net->activity().nodes_skipped()
                                      : sync_net->activity().nodes_skipped();
    std::printf("dirty stepping: %llu rule sweeps run, %llu elided\n",
                static_cast<unsigned long long>(stepped),
                static_cast<unsigned long long>(skipped));
  }
  return cold.converged ? kExitOk : kExitRunFailure;
}

int run_protocol(const util::Args& args, util::Rng& rng) {
  const auto d = make_deployment(args, rng);
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = args.get_bool("dag", false);
  config.cluster.fusion = args.get_bool("fusion", false);
  config.delta_hint = std::max<std::uint64_t>(2, d.graph.max_degree());
  const double tau = args.get_double_in("tau", 1.0, 1e-9, 1.0);
  config.cache_max_age = tau < 1.0 ? 16 : 8;

  core::DensityProtocol protocol(d.ids, config, rng.split());

  const std::string scheduler = args.get("scheduler", "sync");
  if (scheduler != "sync" && scheduler != "async") {
    throw std::invalid_argument("--scheduler must be sync|async (got '" +
                                scheduler + "')");
  }
  if (args.has("shards") &&
      (args.get_bool("live", false) || scheduler == "async")) {
    throw std::invalid_argument(
        "--shards applies to the synchronous batch engine only (drop "
        "--live / --scheduler async)");
  }
  if (args.get_bool("live", false)) {
    return run_protocol_live(args, d, protocol, rng, scheduler == "async");
  }
  for (const char* live_only : {"topology", "mobility", "speed-min",
                                "speed-max", "windows", "window-s"}) {
    if (args.has(live_only)) {
      throw std::invalid_argument(std::string("--") + live_only +
                                  " requires --live");
    }
  }
  if (scheduler == "async") {
    return run_protocol_async(args, d, protocol, rng);
  }
  reject_async_flags(args);

  const auto medium = sim::make_loss_model(tau, rng.split());
  // --threads N parallelizes the step engine; 0 = hardware concurrency.
  // Results are bit-identical for any value (see docs/ARCHITECTURE.md).
  const unsigned threads = parse_threads(args);
  const sim::Stepping stepping = parse_stepping_flag(args);
  if (stepping == sim::Stepping::kDirty && tau < 1.0) {
    throw std::invalid_argument(
        "--stepping dirty on the synchronous engine requires --tau 1 "
        "(use --scheduler async for lossy dirty runs)");
  }
  // Generic over the step engine: --shards >= 2 swaps in the spatially
  // sharded engine, whose trajectory is bit-identical to sim::Network,
  // so every line below prints the same bytes either way.
  auto drive = [&](auto& network) -> int {
    network.set_stepping(stepping);
    if (threads != 1) {
      // Report the effective size: 0 resolves to hardware concurrency and
      // oversized requests are clamped by the engine.
      std::printf("step engine threads: %u\n", network.thread_count());
    }

    const auto steps = static_cast<std::size_t>(
        args.get_int_in("steps", 100, 1, 1'000'000));
    sim::HeadTrace trace;
    trace.observe(protocol.head_values());
    for (std::size_t s = 0; s < steps; ++s) {
      network.step();
      trace.observe(protocol.head_values());
    }
    std::printf("cold start: %zu head changes, quiescent since step %zu\n",
                trace.changes().size(), trace.quiescent_since());

    const double corrupt = args.get_double_in("corrupt", 0.0, 0.0, 1.0);
    if (corrupt > 0.0) {
      util::Rng chaos(rng());
      const auto hit = protocol.corrupt_fraction(chaos, corrupt);
      sim::HeadTrace recovery;
      recovery.observe(protocol.head_values());
      for (std::size_t s = 0; s < steps; ++s) {
        network.step();
        recovery.observe(protocol.head_values());
      }
      std::printf("corrupted %zu nodes: %zu head changes during recovery, "
                  "quiescent since step %zu\n",
                  hit, recovery.changes().size(), recovery.quiescent_since());
      if (recovery.quiescent_since() >= steps) return 1;
    }
    std::size_t heads = 0;
    for (char flag : protocol.head_flags()) heads += flag != 0;
    std::printf("final cluster-heads: %zu\n", heads);
    if (stepping == sim::Stepping::kDirty) {
      std::printf(
          "dirty stepping: %llu rule sweeps run, %llu elided\n",
          static_cast<unsigned long long>(network.activity().nodes_stepped()),
          static_cast<unsigned long long>(network.activity().nodes_skipped()));
    }
    return trace.quiescent_since() < steps ? 0 : 1;
  };
  const std::size_t shards = parse_shards(args);
  if (shards >= 2) {
    sim::ShardedNetwork network(d.graph, protocol, *medium, shards, threads);
    return drive(network);
  }
  sim::Network network(d.graph, protocol, *medium, threads);
  return drive(network);
}

int run_routing(const util::Args& args, util::Rng& rng) {
  const auto d = make_deployment(args, rng);
  const auto clustering = core::cluster_density(d.graph, d.ids, {});
  routing::FlatRouter flat(d.graph);
  routing::HierarchicalRouter hier(d.graph, clustering);
  const auto pairs =
      static_cast<std::size_t>(args.get_int_in("pairs", 300, 1, 10'000'000));
  const auto stats = routing::compare_routers(d.graph, flat, hier, pairs, rng);
  std::printf("clusters=%zu sampled_pairs=%zu failures=%zu\n",
              hier.cluster_count(), stats.pairs, stats.failures);
  std::printf("mean_flat=%.2f mean_hier=%.2f mean_stretch=%.2f "
              "max_stretch=%.2f\n",
              stats.mean_flat_length, stats.mean_hier_length,
              stats.mean_stretch, stats.max_stretch);
  const graph::NodeId probe = 0;
  std::printf("table entries @node0: flat=%zu hier=%zu\n",
              flat.table_entries(probe), hier.table_entries(probe));
  return stats.failures == 0 ? 0 : 1;
}

/// `ssmwn verify`: the self-stabilization certifier. Runs seeded
/// arbitrary-state trials per fault class — each trial corrupts the
/// protocol state, plays it to fixpoint on BOTH engines (the async half
/// under a rotating daemon), and checks legitimacy, closure, and
/// cross-engine agreement. On any violation the failing tuple is shrunk
/// to a minimal spec and (with --repro FILE) written out as a
/// replayable campaign spec.
int run_verify(const util::Args& args, util::Rng& rng) {
  (void)rng;  // the certifier derives everything from --seed directly
  verify::CertifierConfig config;
  config.seed = parse_seed(args, 20050612);
  const auto trials = args.get_int("trials", 200);
  if (trials < 1 || trials > 10'000'000) {
    throw std::invalid_argument("--trials must be in [1, 1e7]");
  }
  config.trials_per_class = static_cast<std::size_t>(trials);
  const auto n_min = args.get_int("n-min", 8);
  const auto n_max = args.get_int("n-max", 64);
  if (n_min < 1 || n_max < n_min || n_max > 1'000'000) {
    throw std::invalid_argument(
        "--n-min/--n-max must satisfy 1 <= min <= max <= 1e6");
  }
  config.n_min = static_cast<std::size_t>(n_min);
  config.n_max = static_cast<std::size_t>(n_max);
  config.radius = args.get_double("radius", 0.16);
  if (!(config.radius > 0.0) || config.radius >= 1e9) {
    throw std::invalid_argument("--radius must be positive");
  }
  config.tau = args.get_double("tau", 1.0);
  if (!(config.tau > 0.0) || config.tau > 1.0) {
    throw std::invalid_argument("--tau must be in (0, 1]");
  }
  const auto horizon = args.get_int("steps", 240);
  if (horizon < static_cast<std::int64_t>(verify::kMinHorizonRounds) ||
      horizon > 1'000'000) {
    throw std::invalid_argument(
        "--steps must be in [" +
        std::to_string(verify::kMinHorizonRounds) +
        ", 1e6] (below that no trial can confirm legitimacy)");
  }
  config.horizon_rounds = static_cast<std::size_t>(horizon);
  config.threads = parse_threads(args);

  if (const auto classes = args.get("classes", "all"); classes != "all") {
    config.classes.clear();
    std::size_t start = 0;
    while (start <= classes.size()) {
      const auto comma = classes.find(',', start);
      const auto piece =
          classes.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
      config.classes.push_back(verify::parse_fault_class(piece));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  if (const auto variant = args.get("variant", "basic"); true) {
    (void)verify::cluster_options_for(variant);  // validate spelling
    config.variants = {variant};
  }

  const bool quiet = args.get_bool("quiet", false);
  if (!quiet) {
    std::printf("certifying self-stabilization: %zu fault class(es) x %zu "
                "trial(s), n in [%zu, %zu], variant %s, tau %g, horizon "
                "%zu rounds, seed %llu\n",
                config.classes.size(), config.trials_per_class,
                config.n_min, config.n_max, config.variants.front().c_str(),
                config.tau, config.horizon_rounds,
                static_cast<unsigned long long>(config.seed));
  }

  const auto report = verify::certify(config);

  util::Table table("Self-stabilization certification — " +
                    std::to_string(report.trials_total) + " trial(s), " +
                    std::to_string(report.failures_total) + " violation(s)");
  table.header({"fault class", "trials", "passed", "sync steps", "sync msgs",
                "async t(s)", "async msgs"});
  for (const auto& stats : report.per_class) {
    table.row({std::string(verify::to_string(stats.fault)),
               util::Table::integer(static_cast<long long>(stats.trials)),
               util::Table::integer(static_cast<long long>(stats.passed)),
               util::Table::num(stats.sync_steps.mean(), 1) + " ±" +
                   util::Table::num(stats.sync_steps.stddev(), 1),
               util::Table::num(stats.sync_messages.mean(), 0),
               util::Table::num(stats.async_time_s.mean(), 2) + " ±" +
                   util::Table::num(stats.async_time_s.stddev(), 2),
               util::Table::num(stats.async_messages.mean(), 0)});
  }
  table.note("every trial: corrupt -> fixpoint on BOTH engines -> check "
             "legitimacy + closure + cross-engine agreement; daemons "
             "rotate synchronous/randomized/unfair per trial");
  if (!quiet) std::fputs(table.render().c_str(), stdout);

  if (report.certified()) {
    if (!quiet) std::puts("CERTIFIED: no violations");
    return kExitOk;
  }

  // Shrink the first failure to a minimal replayable spec.
  const auto& [spec, violation] = report.failures.front();
  std::fprintf(stderr,
               "VIOLATION (%s): fault=%s daemon=%s n=%zu seed=%llu — "
               "shrinking...\n",
               std::string(verify::to_string(violation)).c_str(),
               std::string(verify::to_string(spec.fault)).c_str(),
               std::string(verify::to_string(spec.daemon)).c_str(), spec.n,
               static_cast<unsigned long long>(spec.seed));
  const auto shrunk = verify::shrink(spec);
  const auto repro = verify::make_repro(shrunk.minimal, violation);
  std::fprintf(stderr,
               "minimal repro: n=%zu fault=%s daemon=%s variant=%s "
               "(%zu attempt(s), %zu shrink(s), campaign replay %s)\n",
               shrunk.minimal.n,
               std::string(verify::to_string(shrunk.minimal.fault)).c_str(),
               std::string(verify::to_string(shrunk.minimal.daemon)).c_str(),
               shrunk.minimal.variant.c_str(), shrunk.attempts,
               shrunk.shrinks, repro.reproduces ? "verified" : "UNVERIFIED");
  if (const auto path = args.get("repro", ""); !path.empty()) {
    std::ofstream out(path);
    out << repro.text;
    if (!out.flush()) {
      throw std::runtime_error("failed writing repro spec '" + path + "'");
    }
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fputs(repro.text.c_str(), stderr);
  }
  return kExitRunFailure;
}

int run_campaign(const util::Args& args) {
  const auto& positional = args.positional();
  if (positional.size() < 2) {
    std::fprintf(stderr, "campaign: missing <spec-file> argument\n");
    return kExitUsage;
  }
  auto spec = campaign::load_spec(positional[1]);
  // CLI overrides for the two knobs one typically varies per invocation.
  if (args.has("replications")) {
    spec.replications = static_cast<std::size_t>(
        args.get_int_in("replications", 16, 1, 1'000'000'000));
  }
  if (args.has("seed")) {
    spec.seed_base = parse_seed(args, 0);
  }
  const unsigned threads = parse_threads(args);

  const auto plan = campaign::expand(spec);

  // Resume must be validated before anything runs or any output opens:
  // a checkpoint for a different spec, or a torn file, aborts with the
  // bad-arguments exit and zero partial execution.
  const std::string resume_path = args.get("resume", "");
  campaign::CheckpointState resume_state;
  if (!resume_path.empty()) {
    resume_state = campaign::load_checkpoint(resume_path, plan);
  }
  campaign::CheckpointOptions ckpt;
  // --resume without --checkpoint keeps checkpointing to the same file,
  // so a twice-interrupted sweep resumes twice without extra flags.
  ckpt.path = args.get("checkpoint", resume_path);
  ckpt.every_runs = static_cast<std::size_t>(
      args.get_int_in("checkpoint-every", 64, 1, 1'000'000'000));

  // Stage the output files *before* running: an unwritable path must
  // abort up front, not after hours of simulation whose results it
  // would then discard (invalid_argument → the bad-arguments exit
  // code). Staging through AtomicFile also means a crash mid-report can
  // never tear the destination — it gets the complete new bytes at
  // commit() or keeps its old content.
  struct PendingOutput {
    std::unique_ptr<util::AtomicFile> file;
    void (*writer)(std::ostream&, const campaign::CampaignPlan&,
                   const std::vector<campaign::ScenarioAggregate>&);
  };
  std::vector<PendingOutput> outputs;
  for (const auto& [flag, writer] :
       {std::pair{"csv", &campaign::write_csv},
        std::pair{"json", &campaign::write_json}}) {
    const auto path = args.get(flag, "");
    if (path.empty()) continue;
    outputs.push_back({std::make_unique<util::AtomicFile>(path), writer});
  }

  campaign::ExecutionOptions exec;
  exec.shards = parse_shards(args);
  campaign::CampaignRunner runner(threads, exec);
  if (!args.get_bool("quiet", false)) {
    std::printf("campaign '%s': %zu scenario(s) x %zu replication(s) = %zu "
                "run(s) on %u thread(s)\n",
                plan.name.c_str(), plan.grid.size(), plan.replications,
                plan.runs.size(), runner.thread_count());
    if (!resume_path.empty()) {
      std::printf("resuming from %s: %zu/%zu run(s) already complete\n",
                  resume_path.c_str(), resume_state.completed_count(),
                  plan.runs.size());
    }
  }
  const auto results = runner.run(
      plan, ckpt, resume_path.empty() ? nullptr : &resume_state);

  // Feed the aggregator in plan order — never in completion order — so
  // the floating-point sums (and the files below) are thread-count
  // independent.
  campaign::MetricsAggregator aggregator(plan.grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    aggregator.add(plan.runs[i].grid_index, results[i]);
  }
  const auto aggregates = aggregator.summarize();

  if (!args.get_bool("quiet", false)) {
    std::fputs(campaign::summary_table(plan, aggregates).render().c_str(),
               stdout);
  }
  for (auto& output : outputs) {
    output.writer(output.file->stream(), plan, aggregates);
    output.file->commit();  // throws runtime_error → run-failure exit
    std::printf("wrote %s\n", output.file->path().c_str());
  }
  return kExitOk;
}

serve::Server* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // async-signal-safe
}

int run_serve(const util::Args& args) {
  serve::ServerOptions options;
  options.port =
      static_cast<std::uint16_t>(args.get_int_in("port", 0, 0, 65535));
  options.threads = parse_threads(args);
  options.exec.shards = parse_shards(args);

  serve::Server server(options);
  g_server = &server;
  // SIGTERM/SIGINT start the graceful drain; SIGPIPE must not kill the
  // daemon when a client disconnects mid-stream.
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Scripts parse this line for the resolved port (--port 0 = ephemeral).
  std::printf("ssmwn serve: listening on 127.0.0.1:%u (%u worker thread(s))\n",
              static_cast<unsigned>(server.port()),
              options.threads == 0 ? std::thread::hardware_concurrency()
                                   : options.threads);
  std::fflush(stdout);
  server.run();
  g_server = nullptr;
  std::puts("ssmwn serve: drained, exiting");
  return kExitOk;
}

/// Wire client for `serve`: sends one spec, closes its write side (the
/// server sees EOF after the spec, so the response ends with EOF too),
/// prints result lines to stdout. Keeping the client in the CLI makes
/// the daemon scriptable with nothing but this binary.
int run_submit(const util::Args& args) {
  const auto& positional = args.positional();
  if (positional.size() < 2) {
    std::fprintf(stderr, "submit: missing <spec-file> argument\n");
    return kExitUsage;
  }
  if (!args.has("port")) {
    throw std::invalid_argument("submit: --port is required");
  }
  const auto port =
      static_cast<std::uint16_t>(args.get_int_in("port", 0, 1, 65535));

  std::ifstream in(positional[1], std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot read spec file '" + positional[1] +
                                "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string spec_text = buffer.str();

  std::signal(SIGPIPE, SIG_IGN);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error("submit: cannot create socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("submit: cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  int exit_code = kExitRunFailure;  // until an end frame proves success
  try {
    serve::write_frame(fd, serve::FrameType::kSpec, spec_text);
    ::shutdown(fd, SHUT_WR);
    serve::Frame frame;
    bool failed = false;
    while (serve::read_frame(fd, frame)) {
      switch (frame.type) {
        case serve::FrameType::kResult:
          std::printf("%s\n", frame.body.c_str());
          break;
        case serve::FrameType::kError:
          std::fprintf(stderr, "error: %s\n", frame.body.c_str());
          failed = true;
          break;
        case serve::FrameType::kEnd:
          exit_code = failed ? kExitRunFailure : kExitOk;
          break;
        default:
          std::fprintf(stderr, "submit: unexpected frame type\n");
          failed = true;
          break;
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return exit_code;
}

void usage() {
  std::puts(
      "usage: ssmwn <command> [flags]\n"
      "commands:\n"
      "  cluster  --n N --radius R [--grid] [--seed S]\n"
      "           [--metric density|degree|lowest-id|max-min] [--d D]\n"
      "           [--dag] [--fusion] [--incumbency]\n"
      "           [--dot F] [--csv F] [--map]\n"
      "  protocol --n N --radius R [--grid] [--seed S] [--tau T]\n"
      "           [--steps K] [--corrupt FRAC] [--dag] [--fusion]\n"
      "           [--threads N] [--shards N] [--scheduler sync|async]\n"
      "           [--daemon synchronous|randomized|unfair]\n"
      "           [--period SECS] [--period-jitter FRAC]\n"
      "           [--link-delay SECS]\n"
      "           [--live] [--topology incremental|rebuild]\n"
      "           [--mobility random-direction|random-waypoint]\n"
      "           [--speed-min MPS] [--speed-max MPS]\n"
      "           [--windows W] [--window-s SECS]\n"
      "           [--stepping full|dirty]\n"
      "  routing  --n N --radius R [--grid] [--seed S] [--pairs K]\n"
      "  campaign <spec-file> [--threads N] [--shards N] [--csv F]\n"
      "           [--json F] [--quiet] [--replications N] [--seed S]\n"
      "           [--checkpoint F] [--checkpoint-every N] [--resume F]\n"
      "  serve    [--port N] [--threads N] [--shards N]\n"
      "  submit   <spec-file> --port N\n"
      "  verify   [--trials N] [--classes all|c1,c2,...] [--n-min A]\n"
      "           [--n-max B] [--radius R] [--variant V] [--tau T]\n"
      "           [--steps H] [--seed S] [--threads N] [--repro F]\n"
      "           [--quiet]\n"
      "flags:\n"
      "  --threads N  step-engine / runner parallelism; 0 = hardware\n"
      "               concurrency, default 1; results are identical\n"
      "               for any value\n"
      "  --shards N   spatially sharded sync engine (protocol/campaign):\n"
      "               0/1 = unsharded (default), >= 2 carves the node\n"
      "               range into N shards with per-pair boundary\n"
      "               mailboxes; bit-identical results at any value\n"
      "  --seed S     experiment seed (campaign: overrides seed_base)\n"
      "  --scheduler  execution engine: sync (lockstep steps, default)\n"
      "               or async (event-driven: per-node jittered\n"
      "               broadcast periods, per-link delays, pluggable\n"
      "               daemon; reports virtual convergence time and\n"
      "               messages-to-convergence; --steps bounds the\n"
      "               horizon in periods)\n"
      "  verify       self-stabilization certifier: --trials seeded\n"
      "               arbitrary-state trials per fault class (random-all,\n"
      "               metric-skew, cluster-id-noise, stale-cache,\n"
      "               hierarchy-loops, partial-frame), each played to\n"
      "               fixpoint on BOTH engines under rotating daemons and\n"
      "               checked for legitimacy, closure, and cross-engine\n"
      "               agreement; violations are shrunk to a minimal\n"
      "               replayable campaign spec (--repro FILE)\n"
      "  --live       protocol-under-mobility: the protocol keeps\n"
      "               running while nodes move (--windows perturbations\n"
      "               of --window-s seconds each); per-perturbation\n"
      "               re-convergence time and messages are reported.\n"
      "               --topology incremental patches live edge deltas\n"
      "               (eager stale-link invalidation); rebuild swaps in\n"
      "               a fresh graph (recovery by cache aging alone)\n"
      "  --stepping   full (default) re-runs every node each tick; dirty\n"
      "               runs only nodes whose closed neighborhood changed\n"
      "               (bit-identical results, large steady-state speedup;\n"
      "               sync engine requires --tau 1)\n"
      "  --checkpoint F        campaign: publish resumable checkpoints to\n"
      "               F (atomic rename; snapshot every --checkpoint-every\n"
      "               completed runs, default 64, plus a final one)\n"
      "  --resume F   campaign: skip runs already recorded in checkpoint\n"
      "               F; output is byte-identical to an uninterrupted run\n"
      "               at any --threads. Keeps checkpointing to F unless\n"
      "               --checkpoint overrides. Rejects checkpoints whose\n"
      "               spec hash does not match the spec file\n"
      "  serve        long-running daemon on 127.0.0.1 (--port 0 =\n"
      "               ephemeral, printed on stdout): framed spec in,\n"
      "               framed per-run results out, shared work-stealing\n"
      "               pool; SIGTERM drains gracefully\n"
      "exit codes: 0 success, 1 run failure, 2 bad arguments or spec");
}

/// Marks every flag the command understands as consumed and reports
/// anything left over. Runs *before* dispatch: a mistyped flag must
/// abort up front, not after a multi-hour campaign already ran with
/// the flag's default. kKnownFlags is the flag source of truth for
/// rejection — keep it in sync with usage() above and with the get_*
/// calls in the run_* handlers when adding a flag.
const std::map<std::string, std::vector<std::string>> kKnownFlags = {
    {"cluster",
     {"n", "radius", "grid", "metric", "d", "dag", "fusion", "incumbency",
      "dot", "csv", "map"}},
    {"protocol",
     {"n", "radius", "grid", "tau", "steps", "corrupt", "dag", "fusion",
      "threads", "shards", "scheduler", "daemon", "period", "period-jitter",
      "link-delay", "live", "topology", "mobility", "speed-min", "speed-max",
      "windows", "window-s", "stepping"}},
    {"routing", {"n", "radius", "grid", "pairs"}},
    {"campaign",
     {"threads", "shards", "csv", "json", "quiet", "replications",
      "checkpoint", "checkpoint-every", "resume"}},
    {"serve", {"port", "threads", "shards"}},
    {"submit", {"port"}},
    {"verify",
     {"trials", "classes", "n-min", "n-max", "radius", "variant", "tau",
      "steps", "threads", "repro", "quiet"}},
};

bool reject_unknown_flags(const std::string& command,
                          const util::Args& args) {
  for (const auto& flag : kKnownFlags.at(command)) (void)args.has(flag);
  (void)args.has("seed");  // common to every command
  const auto unknown = args.unknown();
  for (const auto& flag : unknown) {
    std::fprintf(stderr, "unrecognized flag --%s\n", flag.c_str());
  }
  return unknown.empty();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    if (args.positional().empty()) {
      usage();
      return kExitUsage;
    }
    util::Rng rng(parse_seed(args, 20050612));
    const std::string command = args.positional().front();
    if (!kKnownFlags.count(command)) {
      std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
      usage();
      return kExitUsage;
    }
    if (!reject_unknown_flags(command, args)) return kExitUsage;
    if (command == "cluster") return run_cluster(args, rng);
    if (command == "protocol") return run_protocol(args, rng);
    if (command == "routing") return run_routing(args, rng);
    if (command == "verify") return run_verify(args, rng);
    if (command == "serve") return run_serve(args);
    if (command == "submit") return run_submit(args);
    return run_campaign(args);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitUsage;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitRunFailure;
  }
}
