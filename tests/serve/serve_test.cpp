// Serve daemon surface: wire framing, the work-stealing pool's
// determinism, and the Server end-to-end — concurrent clients receive
// byte-identical result streams for the same spec, errors keep the
// connection usable, and request_stop() drains gracefully.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "serve/worker_pool.hpp"

namespace ssmwn {
namespace {

constexpr const char* kSpecText = R"(
name         = servetest
topology     = uniform
n            = 40
radius       = 0.15
variant      = basic, improved
steps        = 4
replications = 3
seed_base    = 2025
)";

TEST(Wire, FramesRoundTripAcrossASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  serve::write_frame(fds[0], serve::FrameType::kSpec, "hello spec");
  serve::write_frame(fds[0], serve::FrameType::kResult, "");
  std::string big(100'000, 'x');
  serve::write_frame(fds[0], serve::FrameType::kEnd, big);
  ::shutdown(fds[0], SHUT_WR);

  serve::Frame frame;
  ASSERT_TRUE(serve::read_frame(fds[1], frame));
  EXPECT_EQ(frame.type, serve::FrameType::kSpec);
  EXPECT_EQ(frame.body, "hello spec");
  ASSERT_TRUE(serve::read_frame(fds[1], frame));
  EXPECT_EQ(frame.type, serve::FrameType::kResult);
  EXPECT_EQ(frame.body, "");
  ASSERT_TRUE(serve::read_frame(fds[1], frame));
  EXPECT_EQ(frame.type, serve::FrameType::kEnd);
  EXPECT_EQ(frame.body, big);
  // Clean EOF at a frame boundary is a false return, not an exception.
  EXPECT_FALSE(serve::read_frame(fds[1], frame));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Wire, RejectsTornAndOversizedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Length prefix claiming 100 bytes, then EOF after 3: torn frame.
  const unsigned char torn[] = {0, 0, 0, 100, 'S', 'a', 'b'};
  ASSERT_EQ(::write(fds[0], torn, sizeof(torn)),
            static_cast<ssize_t>(sizeof(torn)));
  ::shutdown(fds[0], SHUT_WR);
  serve::Frame frame;
  EXPECT_THROW((void)serve::read_frame(fds[1], frame), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A length prefix beyond kMaxFramePayload must be rejected up front,
  // before any allocation of that size.
  const unsigned char huge[] = {0xff, 0xff, 0xff, 0xff, 'S'};
  ASSERT_EQ(::write(fds[0], huge, sizeof(huge)),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_THROW((void)serve::read_frame(fds[1], frame), std::runtime_error);
  // Zero-length frame: no type byte.
  const unsigned char empty[] = {0, 0, 0, 0};
  ASSERT_EQ(::write(fds[0], empty, sizeof(empty)),
            static_cast<ssize_t>(sizeof(empty)));
  EXPECT_THROW((void)serve::read_frame(fds[1], frame), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServePool, SlotResultsMatchTheCampaignRunner) {
  const auto plan = campaign::expand(campaign::parse_spec_text(kSpecText));
  campaign::CampaignRunner reference(1);
  const auto want = reference.run(plan);

  serve::ServePool pool(4);
  auto job = std::make_shared<serve::ServeJob>(plan);
  pool.submit(job);
  for (std::size_t i = 0; i < plan.runs.size(); ++i) {
    job->wait_slot(i);
    EXPECT_TRUE(job->failed[i].empty());
    EXPECT_EQ(std::memcmp(&job->results[i], &want[i], sizeof(want[i])), 0)
        << "slot " << i;
  }
  pool.drain();
}

TEST(ServePool, DrainFinishesQueuedWorkBeforeJoining) {
  const auto plan = campaign::expand(campaign::parse_spec_text(kSpecText));
  serve::ServePool pool(2);
  auto job = std::make_shared<serve::ServeJob>(plan);
  pool.submit(job);
  pool.drain();  // must not strand queued runs
  for (std::size_t i = 0; i < plan.runs.size(); ++i) {
    EXPECT_NE(job->done[i], 0) << "slot " << i << " stranded by drain";
  }
}

/// Client helper: connect to the server, send one spec, read frames
/// until EOF (write side shut down after the spec, like `ssmwn
/// submit`), return the concatenated transcript.
std::string submit_spec(std::uint16_t port, const std::string& spec) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  serve::write_frame(fd, serve::FrameType::kSpec, spec);
  ::shutdown(fd, SHUT_WR);
  std::string transcript;
  serve::Frame frame;
  while (serve::read_frame(fd, frame)) {
    transcript += static_cast<char>(frame.type);
    transcript += frame.body;
    transcript += '\n';
  }
  ::close(fd);
  return transcript;
}

TEST(Server, ConcurrentClientsGetByteIdenticalStreamsAndDrainIsClean) {
  std::signal(SIGPIPE, SIG_IGN);
  serve::ServerOptions options;
  options.port = 0;  // ephemeral
  options.threads = 3;
  serve::Server server(options);
  ASSERT_GT(server.port(), 0);
  std::thread accept_thread([&server] { server.run(); });

  std::string t1, t2, t3;
  {
    std::thread c1([&] { t1 = submit_spec(server.port(), kSpecText); });
    std::thread c2([&] { t2 = submit_spec(server.port(), kSpecText); });
    // A malformed spec on a third connection must not disturb the others.
    std::thread c3(
        [&] { t3 = submit_spec(server.port(), "no_such_key = 1\n"); });
    c1.join();
    c2.join();
    c3.join();
  }
  // The two identical specs yield byte-identical transcripts ending in
  // an end frame, regardless of work-stealing interleavings.
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  const auto plan = campaign::expand(campaign::parse_spec_text(kSpecText));
  EXPECT_NE(t1.find("E" + std::to_string(plan.runs.size())),
            std::string::npos);
  // The bad spec got an error frame, nothing else.
  EXPECT_EQ(t3.substr(0, 1), "X");
  EXPECT_EQ(t3.find('R'), std::string::npos);

  // Graceful drain: request_stop from this thread (the CLI calls it
  // from a SIGTERM handler — same entry point) and run() must return.
  server.request_stop();
  accept_thread.join();
}

}  // namespace
}  // namespace ssmwn
