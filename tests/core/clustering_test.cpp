// Tests for the synchronous clustering solver: the paper's worked example
// end-to-end, structural invariants on random geometry, the Section 4.3
// improvements, and the Section 5 grid pathology.
#include "core/clustering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dag_ids.hpp"
#include "core/density.hpp"
#include "graph/algorithms.hpp"
#include "graph/forest.hpp"
#include "support/paper_example.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

using namespace testsupport;

TEST(Clustering, PaperExampleElectsHeadsHAndJ) {
  const auto g = paper_example_graph();
  const auto ids = paper_example_ids();
  const auto result = core::cluster_density(g, ids, {});

  EXPECT_EQ(result.cluster_count(), 2u);
  EXPECT_TRUE(result.is_head[H]);
  EXPECT_TRUE(result.is_head[J]);
  // The narrative chain: c joins b, b joins h, so H(c)=H(b)=h.
  EXPECT_EQ(result.parent[C], B);
  EXPECT_EQ(result.parent[B], H);
  EXPECT_EQ(result.head_index[C], H);
  EXPECT_EQ(result.head_index[B], H);
  EXPECT_EQ(result.head_index[H], H);
  // d_f = d_j and Id_j < Id_f, so f joins j.
  EXPECT_EQ(result.parent[F], J);
  EXPECT_EQ(result.head_index[F], J);
  EXPECT_EQ(result.head_index[J], J);
}

TEST(Clustering, PaperExampleParentsFollowMaxPrec) {
  const auto g = paper_example_graph();
  const auto ids = paper_example_ids();
  const auto result = core::cluster_density(g, ids, {});
  // i's strongest neighbor is h (density 1.5); e's only neighbor is i.
  EXPECT_EQ(result.parent[I], H);
  EXPECT_EQ(result.parent[E], I);
  // d's neighbors f and j tie at 1.5; Id_j = 1 < Id_f = 15, so F(d) = j.
  EXPECT_EQ(result.parent[D], J);
  // a's neighbors d and i tie at 1.25; Id_d = 13 < Id_i = 17, so F(a) = d.
  EXPECT_EQ(result.parent[A], D);
  EXPECT_EQ(result.head_index[A], J);
}

void check_invariants(const graph::Graph& g,
                      const core::ClusteringResult& r,
                      bool fusion) {
  const std::size_t n = g.node_count();
  ASSERT_EQ(r.parent.size(), n);
  // The parent structure is a forest rooted at the heads, growing along
  // radio links.
  const graph::ParentForest forest(r.parent);  // throws on a cycle
  EXPECT_TRUE(forest.respects_graph(g));
  for (graph::NodeId p = 0; p < n; ++p) {
    EXPECT_EQ(r.head_index[p], forest.root(p));
    EXPECT_EQ(static_cast<bool>(r.is_head[p]), forest.is_root(p));
    // H(p) is consistent along parent edges (every node is in its
    // parent's cluster).
    EXPECT_EQ(r.head_index[p], r.head_index[r.parent[p]]);
  }
  // Two neighbors are never both heads (the paper: "two neighbors can not
  // be both cluster-heads").
  for (graph::NodeId p = 0; p < n; ++p) {
    if (!r.is_head[p]) continue;
    for (graph::NodeId q : g.neighbors(p)) {
      EXPECT_FALSE(r.is_head[q])
          << "adjacent heads " << p << " and " << q;
    }
  }
  // Every cluster contains exactly one head, and every node reaches it.
  std::set<graph::NodeId> heads(r.heads.begin(), r.heads.end());
  for (graph::NodeId p = 0; p < n; ++p) {
    EXPECT_TRUE(heads.count(r.head_index[p]) == 1);
  }
  if (fusion) {
    // Section 4.3: with fusion, any two heads are at least 3 hops apart.
    for (graph::NodeId p : r.heads) {
      const auto two_hop = graph::two_hop_neighborhood(g, p);
      for (graph::NodeId q : two_hop) {
        EXPECT_FALSE(r.is_head[q])
            << "heads " << p << " and " << q << " within 2 hops";
      }
    }
  }
}

TEST(Clustering, InvariantsOnRandomGeometryBasic) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = topology::uniform_points(300, rng);
    const auto g = topology::unit_disk_graph(pts, 0.08);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto r = core::cluster_density(g, ids, {});
    check_invariants(g, r, /*fusion=*/false);
  }
}

TEST(Clustering, InvariantsOnRandomGeometryWithFusion) {
  util::Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = topology::uniform_points(300, rng);
    const auto g = topology::unit_disk_graph(pts, 0.08);
    const auto ids = topology::random_ids(g.node_count(), rng);
    core::ClusterOptions opt;
    opt.fusion = true;
    const auto r = core::cluster_density(g, ids, opt);
    check_invariants(g, r, /*fusion=*/true);
  }
}

TEST(Clustering, FusionNeverIncreasesClusterCount) {
  util::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = topology::uniform_points(400, rng);
    const auto g = topology::unit_disk_graph(pts, 0.07);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto basic = core::cluster_density(g, ids, {});
    core::ClusterOptions opt;
    opt.fusion = true;
    const auto fused = core::cluster_density(g, ids, opt);
    EXPECT_LE(fused.cluster_count(), basic.cluster_count());
  }
}

TEST(Clustering, IsolatedNodesAreTheirOwnHeads) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  const auto ids = topology::sequential_ids(4);
  const auto r = core::cluster_density(g, ids, {});
  EXPECT_TRUE(r.is_head[2]);
  EXPECT_TRUE(r.is_head[3]);
  EXPECT_EQ(r.cluster_count(), 3u);  // {0,1} + {2} + {3}
}

TEST(Clustering, EmptyGraph) {
  graph::Graph g(0);
  const auto r = core::cluster_density(g, {}, {});
  EXPECT_EQ(r.cluster_count(), 0u);
}

TEST(Clustering, SingleNode) {
  graph::Graph g(1);
  const auto r = core::cluster_density(g, {7}, {});
  EXPECT_EQ(r.cluster_count(), 1u);
  EXPECT_TRUE(r.is_head[0]);
  EXPECT_EQ(r.head_id[0], 7u);
}

TEST(Clustering, GridWithoutDagCollapsesToOneCluster) {
  // Section 5's pathology: on a grid with row-major ids, all interior
  // densities are equal and every tie resolves toward the smallest id, so
  // a single cluster spanning the network emerges.
  const std::size_t side = 16;
  const auto pts = topology::grid_points(side);
  const auto g = topology::unit_disk_graph(pts, 0.05 * 32.0 / side);
  const auto ids = topology::sequential_ids(g.node_count());
  const auto r = core::cluster_density(g, ids, {});
  EXPECT_EQ(r.cluster_count(), 1u);
  // The single head is the smallest-id corner among the interior-density
  // maxima, and the tree is network-scale deep.
  const auto forest = r.forest();
  EXPECT_GT(forest.tree_depth(r.heads.front()), side / 2);
}

TEST(Clustering, GridWithDagBreaksTheCollapse) {
  const std::size_t side = 16;
  const auto pts = topology::grid_points(side);
  const auto g = topology::unit_disk_graph(pts, 0.05 * 32.0 / side);
  const auto ids = topology::sequential_ids(g.node_count());
  util::Rng rng(11);
  const auto dag = core::build_dag_ids(g, ids, {}, rng);
  ASSERT_TRUE(dag.converged);
  core::ClusterOptions opt;
  opt.use_dag_ids = true;
  const auto r = core::cluster_density(g, ids, opt, dag.ids);
  EXPECT_GT(r.cluster_count(), 4u);
  check_invariants(g, r, /*fusion=*/false);
}

TEST(Clustering, MirroredIdsMirrorTheCollapseCorner) {
  // Reversing the adversarial id order must move the single cluster-head
  // to the opposite corner, not change the overall shape.
  const std::size_t side = 12;
  const auto pts = topology::grid_points(side);
  const auto g = topology::unit_disk_graph(pts, 0.05 * 32.0 / side);
  const auto fwd =
      core::cluster_density(g, topology::sequential_ids(g.node_count()), {});
  const auto rev =
      core::cluster_density(g, topology::reversed_ids(g.node_count()), {});
  ASSERT_EQ(fwd.cluster_count(), 1u);
  ASSERT_EQ(rev.cluster_count(), 1u);
  EXPECT_NE(fwd.heads.front(), rev.heads.front());
}

TEST(Clustering, IncumbencyKeepsTiedHeadInPlace) {
  // Two tied candidates; without incumbency the smaller id wins, with
  // incumbency the previous head wins even with the larger id.
  // Path graph: h1 - x - h2 where h1, h2 tie on density.
  //   0 - 1 - 2 - 3: densities 1,1,1,1 (path of 4: ends 1.0, middles 1.0).
  const auto g = graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const topology::IdAssignment ids{5, 6, 7, 4};  // node 3 has smallest id
  const auto densities = core::compute_densities(g);
  for (double d : densities) ASSERT_DOUBLE_EQ(d, 1.0);

  const auto plain = core::cluster_density(g, ids, {});
  // Smallest id (node 3) must win its neighborhood.
  EXPECT_TRUE(plain.is_head[3]);

  // Now mark node 0 as the previous head; with the incumbency order it
  // beats its tied neighbors regardless of id.
  core::ClusterOptions opt;
  opt.incumbency = true;
  std::vector<char> prev(4, 0);
  prev[0] = 1;
  const auto kept = core::cluster_density(g, ids, opt, {}, prev);
  EXPECT_TRUE(kept.is_head[0]);
}

TEST(Clustering, IncumbencyMatchesBasicWhenNoPreviousHeads) {
  util::Rng rng(13);
  const auto pts = topology::uniform_points(200, rng);
  const auto g = topology::unit_disk_graph(pts, 0.09);
  const auto ids = topology::random_ids(g.node_count(), rng);
  core::ClusterOptions opt;
  opt.incumbency = true;
  const auto with_inc = core::cluster_density(g, ids, opt);
  const auto without = core::cluster_density(g, ids, {});
  EXPECT_EQ(with_inc.parent, without.parent);
  EXPECT_EQ(with_inc.head_index, without.head_index);
}

TEST(Clustering, StableUnderRecomputation) {
  // Feeding a configuration's own heads back as "previous heads" must be
  // a fixpoint: the incumbency order only reinforces the winners.
  util::Rng rng(14);
  const auto pts = topology::uniform_points(250, rng);
  const auto g = topology::unit_disk_graph(pts, 0.08);
  const auto ids = topology::random_ids(g.node_count(), rng);
  core::ClusterOptions opt;
  opt.incumbency = true;
  const auto first = core::cluster_density(g, ids, opt);
  const auto second = core::cluster_density(
      g, ids, opt, {},
      std::span<const char>(first.is_head.data(), first.is_head.size()));
  // The *head set* is a fixpoint (incumbency only reinforces winners, and
  // heads are never adjacent, so no relative order between two incumbents
  // changes). Parent choices of third parties may legitimately re-resolve
  // ties toward the incumbents, so only the head set is compared.
  EXPECT_EQ(first.is_head, second.is_head);
  EXPECT_EQ(first.heads, second.heads);
}

TEST(Clustering, FusionDemotedMaximumJoinsDominatingCluster) {
  // Two local maxima exactly 2 hops apart (sharing witness node 1): the
  // paper's fusion scenario. Metrics are injected directly so the ranks
  // are unambiguous: S=0 (metric 3) and W=2 (metric 2) both dominate
  // their neighborhoods; with fusion, W is demoted by the head S in its
  // 2-neighborhood and joins S's cluster through the witness.
  //
  //   3 — 0(S) — 1(X) — 2(W) — 4
  const auto g =
      graph::from_edges(5, {{0, 3}, {0, 1}, {1, 2}, {2, 4}});
  const auto ids = topology::sequential_ids(5);
  const std::vector<double> metric{3.0, 1.0, 2.0, 0.5, 0.5};

  const auto basic = core::cluster_by_metric(g, ids, metric, {});
  EXPECT_EQ(basic.cluster_count(), 2u);
  EXPECT_TRUE(basic.is_head[0]);
  EXPECT_TRUE(basic.is_head[2]);

  core::ClusterOptions opt;
  opt.fusion = true;
  const auto fused = core::cluster_by_metric(g, ids, metric, opt);
  check_invariants(g, fused, /*fusion=*/true);
  EXPECT_EQ(fused.cluster_count(), 1u);
  EXPECT_TRUE(fused.is_head[0]);
  // The demoted maximum joined through the witness (its only neighbor
  // adjacent to the dominating head).
  EXPECT_EQ(fused.parent[2], 1u);
  for (graph::NodeId p = 0; p < 5; ++p) {
    EXPECT_EQ(fused.head_index[p], 0u);
  }
}

TEST(Clustering, FusionGuaranteesMinimumClusterDiameter) {
  // Section 4.3 claims fused clusters have diameter >= 2 (a head is never
  // alone with a single satellite when a dominating head is 2 hops away)
  // and heads are >= 3 hops apart; verified on random geometry.
  util::Rng rng(15);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(350, rng);
    const auto g = topology::unit_disk_graph(pts, 0.07);
    const auto ids = topology::random_ids(g.node_count(), rng);
    core::ClusterOptions opt;
    opt.fusion = true;
    const auto r = core::cluster_density(g, ids, opt);
    const auto forest = r.forest();
    for (graph::NodeId head : r.heads) {
      for (graph::NodeId q : graph::two_hop_neighborhood(g, head)) {
        EXPECT_FALSE(r.is_head[q]);
      }
    }
  }
}

TEST(Clustering, RejectsMismatchedInputs) {
  const auto g = paper_example_graph();
  EXPECT_THROW(core::cluster_density(g, topology::sequential_ids(3), {}),
               std::invalid_argument);
  core::ClusterOptions opt;
  opt.use_dag_ids = true;
  EXPECT_THROW(core::cluster_density(g, paper_example_ids(), opt),
               std::invalid_argument);
}

TEST(Clustering, MetricGeneralization) {
  // cluster_by_metric with the degree metric: node 0 (degree 3 star
  // center) must win against leaves.
  graph::Graph g(4);
  for (graph::NodeId leaf = 1; leaf < 4; ++leaf) g.add_edge(0, leaf);
  g.finalize();
  std::vector<double> metric(4);
  for (graph::NodeId p = 0; p < 4; ++p) {
    metric[p] = static_cast<double>(g.degree(p));
  }
  const auto ids = topology::IdAssignment{9, 1, 2, 3};  // center's id largest
  const auto r = core::cluster_by_metric(g, ids, metric, {});
  EXPECT_TRUE(r.is_head[0]);
  EXPECT_EQ(r.cluster_count(), 1u);
}

}  // namespace
}  // namespace ssmwn
