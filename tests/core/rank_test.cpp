// Tests for the ≺ total order (Section 4.2 and the Section 4.3
// incumbency refinement).
#include "core/rank.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/soa_state.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

core::NodeRank rank(double metric, bool incumbent, topology::ProtocolId tie,
                    topology::ProtocolId uid) {
  return core::NodeRank{metric, incumbent, tie, uid};
}

TEST(Rank, HigherDensityDominates) {
  const auto low = rank(1.0, false, 5, 5);
  const auto high = rank(1.5, false, 9, 9);
  EXPECT_TRUE(core::precedes(low, high, false));
  EXPECT_FALSE(core::precedes(high, low, false));
}

TEST(Rank, TieGoesToSmallerId) {
  // p ≺ q iff (d_p = d_q) ∧ (Id_q < Id_p): the smaller id dominates.
  const auto small_id = rank(1.25, false, 3, 3);
  const auto large_id = rank(1.25, false, 8, 8);
  EXPECT_TRUE(core::precedes(large_id, small_id, false));
  EXPECT_FALSE(core::precedes(small_id, large_id, false));
}

TEST(Rank, IncumbentWinsTiesOnlyWhenEnabled) {
  const auto incumbent = rank(1.25, true, 9, 9);
  const auto challenger = rank(1.25, false, 3, 3);
  // Incumbency order: the current head beats the smaller-id challenger.
  EXPECT_TRUE(core::precedes(challenger, incumbent, true));
  EXPECT_FALSE(core::precedes(incumbent, challenger, true));
  // Plain order ignores the flag: smaller id wins.
  EXPECT_TRUE(core::precedes(incumbent, challenger, false));
}

TEST(Rank, IncumbencyNeverOverridesDensity) {
  const auto strong = rank(2.0, false, 9, 9);
  const auto weak_incumbent = rank(1.0, true, 1, 1);
  EXPECT_TRUE(core::precedes(weak_incumbent, strong, true));
}

TEST(Rank, BothIncumbentsFallBackToId) {
  // Deviation D1: the paper's predicate is silent here; we complete the
  // order with the id tie-break.
  const auto a = rank(1.0, true, 4, 4);
  const auto b = rank(1.0, true, 2, 2);
  EXPECT_TRUE(core::precedes(a, b, true));
  EXPECT_FALSE(core::precedes(b, a, true));
}

TEST(Rank, UidBreaksDagNameCollisions) {
  // Same density, same DAG name (possible at 2 hops): the protocol id
  // keeps the order total.
  const auto a = rank(1.0, false, 7, 100);
  const auto b = rank(1.0, false, 7, 50);
  EXPECT_TRUE(core::precedes(a, b, false));
  EXPECT_FALSE(core::precedes(b, a, false));
}

TEST(Rank, IrreflexiveAndAsymmetric) {
  const auto a = rank(1.3, true, 2, 2);
  EXPECT_FALSE(core::precedes(a, a, false));
  EXPECT_FALSE(core::precedes(a, a, true));
}

TEST(Rank, IsStrictTotalOrderOnRandomSamples) {
  // Property check: for random distinct-uid ranks, exactly one of p ≺ q,
  // q ≺ p holds, and transitivity is preserved under std::sort's checks.
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::NodeRank> ranks;
    for (topology::ProtocolId uid = 0; uid < 40; ++uid) {
      ranks.push_back(rank(static_cast<double>(rng.index(5)) / 4.0,
                           rng.chance(0.3), rng.below(8), uid));
    }
    for (const bool inc : {false, true}) {
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        for (std::size_t j = 0; j < ranks.size(); ++j) {
          if (i == j) continue;
          EXPECT_NE(core::precedes(ranks[i], ranks[j], inc),
                    core::precedes(ranks[j], ranks[i], inc));
        }
      }
      // std::sort with a non-strict-weak-order comparator would be UB;
      // sorting and checking adjacent pairs gives a cheap consistency
      // sweep (libstdc++ debug checks aside).
      auto sorted = ranks;
      std::sort(sorted.begin(), sorted.end(),
                [inc](const core::NodeRank& x, const core::NodeRank& y) {
                  return core::precedes(x, y, inc);
                });
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        EXPECT_FALSE(core::precedes(sorted[i + 1], sorted[i], inc));
      }
    }
  }
}

TEST(Rank, MaxRankIndexPicksTheDominator) {
  std::vector<core::NodeRank> ranks{
      rank(1.0, false, 4, 4),
      rank(1.5, false, 9, 9),
      rank(1.5, false, 2, 2),  // tie with index 1; smaller id dominates
      rank(0.5, false, 1, 1),
  };
  EXPECT_EQ(core::max_rank_index(ranks, false), 2u);
}

// ---- Packed sortable keys (docs/ARCHITECTURE.md §9) ----
//
// The production ≺ now routes through pack_rank / packed_precedes, so the
// oracle these tests compare against is a transliteration of the original
// field-by-field comparison chain — the definition, kept verbatim here.
bool reference_precedes(const core::NodeRank& p, const core::NodeRank& q,
                        bool incumbency) {
  if (p.metric != q.metric) return p.metric < q.metric;
  if (incumbency && p.incumbent != q.incumbent) return q.incumbent;
  if (p.tie_id != q.tie_id) return q.tie_id < p.tie_id;
  if (p.uid != q.uid) return q.uid < p.uid;
  return false;  // identical rank: not strictly preceding
}

void expect_packed_matches(std::span<const core::NodeRank> ranks) {
  for (const bool inc : {false, true}) {
    std::vector<core::PackedRank> keys;
    for (const auto& r : ranks) keys.push_back(core::pack_rank(r, inc));
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      for (std::size_t j = 0; j < ranks.size(); ++j) {
        EXPECT_EQ(core::packed_precedes(keys[i], keys[j]),
                  reference_precedes(ranks[i], ranks[j], inc))
            << "inc=" << inc << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Rank, PackedOrderMatchesReferenceOnExtremeValues) {
  // Every boundary of the packed domain: metric sign flips around ±0.0,
  // denormals, infinities; tie_id at the 63-bit domain edges; uid over
  // the full 64-bit range (including values with the top bit set, which
  // the ~uid sub-key must keep in order).
  const double metrics[] = {-std::numeric_limits<double>::infinity(),
                            -1.0e300,
                            -1.5,
                            -5e-324,  // negative denormal
                            -0.0,
                            0.0,
                            5e-324,  // positive denormal
                            1.5,
                            1.0e300,
                            std::numeric_limits<double>::infinity()};
  const topology::ProtocolId ties[] = {0, 1, (std::uint64_t{1} << 62),
                                       (std::uint64_t{1} << 63) - 1};
  const topology::ProtocolId uids[] = {0, 1, (std::uint64_t{1} << 63),
                                       ~std::uint64_t{0}};
  std::vector<core::NodeRank> ranks;
  util::Rng rng(7);
  for (const double m : metrics) {
    for (const auto t : ties) {
      // Full cross products explode; cover every (metric, tie) with a
      // sampled uid/incumbent and every (metric, uid) with a sampled tie.
      ranks.push_back(rank(m, rng.chance(0.5), t, uids[rng.index(4)]));
    }
    for (const auto u : uids) {
      ranks.push_back(rank(m, rng.chance(0.5), ties[rng.index(4)], u));
    }
  }
  expect_packed_matches(ranks);
}

TEST(Rank, PackedOrderMatchesReferenceExhaustiveSmallDomain) {
  // Exhaustive cross-check on a small domain: 3 metrics × 2 incumbent
  // flags × 3 tie ids × 3 uids = 54 ranks, all 54² ordered pairs, both
  // incumbency modes. Equal metrics, ties and uids all collide here, so
  // every arm of the comparison chain is exercised, including the
  // "identical rank" reflexive case.
  std::vector<core::NodeRank> ranks;
  for (const double m : {0.0, 0.5, 1.0}) {
    for (const bool head : {false, true}) {
      for (topology::ProtocolId t = 0; t < 3; ++t) {
        for (topology::ProtocolId u = 0; u < 3; ++u) {
          ranks.push_back(rank(m, head, t, u));
        }
      }
    }
  }
  expect_packed_matches(ranks);
}

TEST(Rank, PackedOrderMatchesReferenceRandomized) {
  util::Rng rng(2026);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<core::NodeRank> ranks;
    for (int i = 0; i < 24; ++i) {
      // Coarse metric grid so metric ties are common; occasional huge
      // uids/ties to stress the complement encodings.
      ranks.push_back(rank(
          static_cast<double>(rng.index(4)) / 2.0 - 1.0, rng.chance(0.4),
          rng.chance(0.2) ? (std::uint64_t{1} << 63) - 1 - rng.below(3)
                          : rng.below(6),
          rng.chance(0.2) ? ~rng.below(1000) : rng.below(1000)));
    }
    expect_packed_matches(ranks);
  }
}

TEST(Rank, ValueInitializedKeyIsBelowEveryValidKey) {
  // PackedRank{} is the "no entry" sentinel the R2 scan folds over: it
  // must never dominate a packable rank (its hi field, zero, would
  // require negative-NaN metric bits, which the domain excludes).
  const core::PackedRank sentinel{};
  const core::NodeRank worst =
      rank(-std::numeric_limits<double>::infinity(), false,
           (std::uint64_t{1} << 63) - 1, ~std::uint64_t{0});
  for (const bool inc : {false, true}) {
    const core::PackedRank key = core::pack_rank(worst, inc);
    EXPECT_TRUE(core::packed_precedes(sentinel, key));
    EXPECT_FALSE(core::packed_precedes(key, sentinel));
  }
  EXPECT_FALSE(core::packed_precedes(sentinel, sentinel));
}

TEST(Rank, MaxRankIndexMatchesReferenceArgmax) {
  util::Rng rng(11);
  for (const bool inc : {false, true}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<core::NodeRank> ranks;
      const std::size_t n = 1 + rng.index(50);
      for (std::size_t i = 0; i < n; ++i) {
        // Distinct uids (the protocol invariant), everything else ties.
        ranks.push_back(rank(static_cast<double>(rng.index(3)),
                             rng.chance(0.3), rng.below(4), i));
      }
      std::size_t expected = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (reference_precedes(ranks[expected], ranks[i], inc)) expected = i;
      }
      EXPECT_EQ(core::max_rank_index(ranks, inc), expected);
      // The columnar kernels must agree with the scalar entry point.
      const core::RankKeyColumn keys = core::pack_rank_column(ranks, inc);
      EXPECT_EQ(core::max_rank_key_index(keys), expected);
    }
  }
}

}  // namespace
}  // namespace ssmwn
