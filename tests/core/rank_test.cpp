// Tests for the ≺ total order (Section 4.2 and the Section 4.3
// incumbency refinement).
#include "core/rank.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace ssmwn {
namespace {

core::NodeRank rank(double metric, bool incumbent, topology::ProtocolId tie,
                    topology::ProtocolId uid) {
  return core::NodeRank{metric, incumbent, tie, uid};
}

TEST(Rank, HigherDensityDominates) {
  const auto low = rank(1.0, false, 5, 5);
  const auto high = rank(1.5, false, 9, 9);
  EXPECT_TRUE(core::precedes(low, high, false));
  EXPECT_FALSE(core::precedes(high, low, false));
}

TEST(Rank, TieGoesToSmallerId) {
  // p ≺ q iff (d_p = d_q) ∧ (Id_q < Id_p): the smaller id dominates.
  const auto small_id = rank(1.25, false, 3, 3);
  const auto large_id = rank(1.25, false, 8, 8);
  EXPECT_TRUE(core::precedes(large_id, small_id, false));
  EXPECT_FALSE(core::precedes(small_id, large_id, false));
}

TEST(Rank, IncumbentWinsTiesOnlyWhenEnabled) {
  const auto incumbent = rank(1.25, true, 9, 9);
  const auto challenger = rank(1.25, false, 3, 3);
  // Incumbency order: the current head beats the smaller-id challenger.
  EXPECT_TRUE(core::precedes(challenger, incumbent, true));
  EXPECT_FALSE(core::precedes(incumbent, challenger, true));
  // Plain order ignores the flag: smaller id wins.
  EXPECT_TRUE(core::precedes(incumbent, challenger, false));
}

TEST(Rank, IncumbencyNeverOverridesDensity) {
  const auto strong = rank(2.0, false, 9, 9);
  const auto weak_incumbent = rank(1.0, true, 1, 1);
  EXPECT_TRUE(core::precedes(weak_incumbent, strong, true));
}

TEST(Rank, BothIncumbentsFallBackToId) {
  // Deviation D1: the paper's predicate is silent here; we complete the
  // order with the id tie-break.
  const auto a = rank(1.0, true, 4, 4);
  const auto b = rank(1.0, true, 2, 2);
  EXPECT_TRUE(core::precedes(a, b, true));
  EXPECT_FALSE(core::precedes(b, a, true));
}

TEST(Rank, UidBreaksDagNameCollisions) {
  // Same density, same DAG name (possible at 2 hops): the protocol id
  // keeps the order total.
  const auto a = rank(1.0, false, 7, 100);
  const auto b = rank(1.0, false, 7, 50);
  EXPECT_TRUE(core::precedes(a, b, false));
  EXPECT_FALSE(core::precedes(b, a, false));
}

TEST(Rank, IrreflexiveAndAsymmetric) {
  const auto a = rank(1.3, true, 2, 2);
  EXPECT_FALSE(core::precedes(a, a, false));
  EXPECT_FALSE(core::precedes(a, a, true));
}

TEST(Rank, IsStrictTotalOrderOnRandomSamples) {
  // Property check: for random distinct-uid ranks, exactly one of p ≺ q,
  // q ≺ p holds, and transitivity is preserved under std::sort's checks.
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::NodeRank> ranks;
    for (topology::ProtocolId uid = 0; uid < 40; ++uid) {
      ranks.push_back(rank(static_cast<double>(rng.index(5)) / 4.0,
                           rng.chance(0.3), rng.below(8), uid));
    }
    for (const bool inc : {false, true}) {
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        for (std::size_t j = 0; j < ranks.size(); ++j) {
          if (i == j) continue;
          EXPECT_NE(core::precedes(ranks[i], ranks[j], inc),
                    core::precedes(ranks[j], ranks[i], inc));
        }
      }
      // std::sort with a non-strict-weak-order comparator would be UB;
      // sorting and checking adjacent pairs gives a cheap consistency
      // sweep (libstdc++ debug checks aside).
      auto sorted = ranks;
      std::sort(sorted.begin(), sorted.end(),
                [inc](const core::NodeRank& x, const core::NodeRank& y) {
                  return core::precedes(x, y, inc);
                });
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        EXPECT_FALSE(core::precedes(sorted[i + 1], sorted[i], inc));
      }
    }
  }
}

TEST(Rank, MaxRankIndexPicksTheDominator) {
  std::vector<core::NodeRank> ranks{
      rank(1.0, false, 4, 4),
      rank(1.5, false, 9, 9),
      rank(1.5, false, 2, 2),  // tie with index 1; smaller id dominates
      rank(0.5, false, 1, 1),
  };
  EXPECT_EQ(core::max_rank_index(ranks, false), 2u);
}

}  // namespace
}  // namespace ssmwn
