// Tests for the constant-height DAG construction (Section 4.1 / the
// simulation discipline of Section 5).
#include "core/dag_ids.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

TEST(DagIds, ProducesLocallyUniqueNames) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = topology::uniform_points(200, rng);
    const auto g = topology::unit_disk_graph(pts, 0.1);
    const auto uids = topology::random_ids(g.node_count(), rng);
    const auto result = core::build_dag_ids(g, uids, {}, rng);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(core::locally_unique(g, result.ids));
    for (auto id : result.ids) EXPECT_LT(id, result.name_space);
  }
}

TEST(DagIds, RandomizedPolicyAlsoConverges) {
  util::Rng rng(2);
  core::DagOptions opt;
  opt.policy = core::DagRedrawPolicy::N1Randomized;
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = topology::uniform_points(200, rng);
    const auto g = topology::unit_disk_graph(pts, 0.1);
    const auto uids = topology::random_ids(g.node_count(), rng);
    const auto result = core::build_dag_ids(g, uids, opt, rng);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(core::locally_unique(g, result.ids));
  }
}

TEST(DagIds, AutoNameSpaceIsDeltaSquaredPlusOne) {
  // The paper's simulations draw names from [0, δ²].
  util::Rng rng(3);
  const auto pts = topology::uniform_points(150, rng);
  const auto g = topology::unit_disk_graph(pts, 0.1);
  const auto uids = topology::random_ids(g.node_count(), rng);
  const auto result = core::build_dag_ids(g, uids, {}, rng);
  const auto delta = static_cast<std::uint64_t>(g.max_degree());
  EXPECT_EQ(result.name_space, delta * delta + 1);
}

TEST(DagIds, TinyNameSpaceIsRaisedAboveDelta) {
  // With |γ| ≤ δ a conflicted node could have no free name; the
  // implementation floors the space at δ + 1 (the theory's minimum).
  const auto g = graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  core::DagOptions opt;
  opt.name_space = 1;
  util::Rng rng(4);
  const auto result =
      core::build_dag_ids(g, topology::sequential_ids(4), opt, rng);
  EXPECT_GE(result.name_space, g.max_degree() + 1);
  EXPECT_TRUE(result.converged);
}

TEST(DagIds, ConvergesInAboutTwoRoundsAtPaperScale) {
  // Table 3: ~2 rounds on λ=1000 deployments, for every R in 0.05..0.1.
  util::Rng rng(5);
  double total_rounds = 0.0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const auto pts = topology::uniform_points(1000, rng);
    const auto g = topology::unit_disk_graph(pts, 0.07);
    const auto uids = topology::random_ids(g.node_count(), rng);
    const auto result = core::build_dag_ids(g, uids, {}, rng);
    ASSERT_TRUE(result.converged);
    total_rounds += static_cast<double>(result.rounds);
  }
  const double mean = total_rounds / trials;
  EXPECT_GE(mean, 1.0);
  EXPECT_LE(mean, 3.5);
}

TEST(DagIds, HeightIsBoundedByNameSpace) {
  // Theorem 1's bound: height ≤ |γ| + 1 (a proper coloring actually gives
  // ≤ |γ| − 1 edges on any monotone path).
  util::Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(300, rng);
    const auto g = topology::unit_disk_graph(pts, 0.08);
    const auto uids = topology::random_ids(g.node_count(), rng);
    core::DagOptions opt;
    opt.name_space = g.max_degree() + 1;  // smallest allowed space
    const auto result = core::build_dag_ids(g, uids, opt, rng);
    ASSERT_TRUE(result.converged);
    EXPECT_LE(core::dag_height(g, result.ids), result.name_space - 1);
  }
}

TEST(DagIds, SmallerNameSpaceGivesLowerHeight) {
  // The tuning trade-off discussed after Theorem 1: |γ| = δ+1 bounds the
  // DAG height harder than |γ| = δ⁶ does in practice.
  util::Rng rng(7);
  const auto pts = topology::uniform_points(500, rng);
  const auto g = topology::unit_disk_graph(pts, 0.08);
  const auto uids = topology::random_ids(g.node_count(), rng);
  const auto delta = static_cast<std::uint64_t>(g.max_degree());

  core::DagOptions small;
  small.name_space = delta + 1;
  core::DagOptions huge;
  huge.name_space = delta * delta * delta;

  util::RunningStats small_h, huge_h;
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = core::build_dag_ids(g, uids, small, rng);
    const auto b = core::build_dag_ids(g, uids, huge, rng);
    ASSERT_TRUE(a.converged && b.converged);
    small_h.add(static_cast<double>(core::dag_height(g, a.ids)));
    huge_h.add(static_cast<double>(core::dag_height(g, b.ids)));
  }
  EXPECT_LT(small_h.mean(), huge_h.mean());
}

TEST(DagIds, EdgelessGraphTrivially) {
  graph::Graph g(5);
  util::Rng rng(8);
  const auto result =
      core::build_dag_ids(g, topology::sequential_ids(5), {}, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(core::dag_height(g, result.ids), 0u);
}

TEST(DagIds, RejectsSizeMismatch) {
  const auto g = graph::from_edges(3, {{0, 1}});
  util::Rng rng(9);
  EXPECT_THROW(core::build_dag_ids(g, topology::sequential_ids(2), {}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssmwn
