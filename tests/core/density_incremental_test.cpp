// Incremental density maintenance: the per-node maintained e(N_p) count
// must stay bitwise-equivalent to the O(deg²) pairwise recompute — under
// lockstep stepping on both engines, across fault injection, across
// topology deltas, and in the self-checking kChecked mode (which throws
// on the first divergence it ever observes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "core/density.hpp"
#include "core/protocol.hpp"
#include "graph/partition.hpp"
#include "mobility/mobility.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "sim/sharded_network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/incremental.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

core::DensityProtocol make_protocol(const graph::Graph& g,
                                    const topology::IdAssignment& ids,
                                    core::DensityMaintenance maintenance,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  config.density_maintenance = maintenance;
  return core::DensityProtocol(ids, config, util::Rng(seed));
}

/// kIncremental and kRecompute protocols on identical worlds, stepped in
/// lockstep, must never diverge bitwise — the maintained count is a cost
/// model, not a semantics change. Faults are injected identically into
/// both (same rng seed) to also cover the stale-count recovery path.
TEST(DensityIncremental, LockstepBitwiseEqualToRecomputeUnderFaults) {
  util::Rng rng(20050612);
  const std::size_t n = 300;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.1);

  auto incremental =
      make_protocol(g, ids, core::DensityMaintenance::kIncremental, 9);
  auto recompute =
      make_protocol(g, ids, core::DensityMaintenance::kRecompute, 9);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_a(g, incremental, loss_a, 1);
  sim::Network net_b(g, recompute, loss_b, 1);

  util::Rng chaos_a(4242), chaos_b(4242);
  for (std::size_t step = 0; step < 40; ++step) {
    if (step == 10) {
      incremental.corrupt_all(chaos_a);
      recompute.corrupt_all(chaos_b);
    }
    if (step == 25) {
      ASSERT_EQ(incremental.corrupt_fraction(chaos_a, 0.2),
                recompute.corrupt_fraction(chaos_b, 0.2));
    }
    if (step == 32) {
      incremental.reset_node(7);
      recompute.reset_node(7);
    }
    net_a.step();
    net_b.step();
    const auto div = core::first_divergent_node(incremental, recompute);
    ASSERT_EQ(div, std::nullopt)
        << "step " << step << ":\n"
        << core::describe_divergence(incremental, recompute, *div);
  }
  EXPECT_EQ(net_a.messages_delivered(), net_b.messages_delivered());
}

/// kChecked recomputes every R1 firing and throws on any mismatch with
/// the maintained count — running a full faulted campaign in this mode
/// IS the differential gate (also exercised under ASan/UBSan in CI via
/// the `hotpath` ctest label).
TEST(DensityIncremental, CheckedModeRunsCleanOnFlatEngine) {
  util::Rng rng(7);
  const std::size_t n = 250;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.11);

  auto protocol = make_protocol(g, ids, core::DensityMaintenance::kChecked, 3);
  EXPECT_EQ(protocol.density_maintenance(),
            core::DensityMaintenance::kChecked);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 1);
  util::Rng chaos(17);
  EXPECT_NO_THROW({
    protocol.corrupt_all(chaos);
    network.run(15);
    protocol.corrupt_fraction(chaos, 0.3);
    network.run(15);
  });
}

TEST(DensityIncremental, CheckedModeRunsCleanOnShardedEngine) {
  util::Rng rng(23);
  const std::size_t n = 400;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.09);

  auto protocol = make_protocol(g, ids, core::DensityMaintenance::kChecked, 5);
  sim::PerfectDelivery loss;
  sim::ShardedNetwork network(g, protocol, loss, std::size_t{4}, 1);
  util::Rng chaos(29);
  EXPECT_NO_THROW({
    network.run(5);
    protocol.corrupt_fraction(chaos, 0.25);
    network.run(20);
  });
}

/// Lossy delivery makes caches diverge from the radio graph (entries age
/// out, reappear, digest lists go stale asymmetrically) — exactly the
/// regime where a buggy delta would silently drift. kChecked must stay
/// silent anyway.
TEST(DensityIncremental, CheckedModeRunsCleanUnderLoss) {
  util::Rng rng(31);
  const std::size_t n = 200;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.12);

  auto protocol = make_protocol(g, ids, core::DensityMaintenance::kChecked, 7);
  sim::BernoulliDelivery loss(0.7, util::Rng(99));
  sim::Network network(g, protocol, loss, 1);
  EXPECT_NO_THROW(network.run(60));
}

/// At convergence under perfect delivery, every cache mirrors the radio
/// neighborhood and every digest list its sender's cache, so the
/// maintained believed-link count must equal the *graph-side* count
/// core::edges_among over the node's actual neighbor set.
TEST(DensityIncremental, MaintainedCountMatchesEdgesAmongAtConvergence) {
  util::Rng rng(13);
  const std::size_t n = 180;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.13);

  auto protocol =
      make_protocol(g, ids, core::DensityMaintenance::kIncremental, 11);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 1);
  network.run(30);  // diameter-many steps: caches and digests settled

  std::size_t checked = 0;
  for (graph::NodeId p = 0; p < static_cast<graph::NodeId>(n); ++p) {
    if (g.degree(p) == 0) continue;
    ASSERT_TRUE(protocol.links_count_fresh(p)) << "node " << p;
    const auto neighbors = g.neighbors(p);
    const std::vector<graph::NodeId> nbr(neighbors.begin(), neighbors.end());
    EXPECT_EQ(protocol.state(p).links_among, core::edges_among(g, nbr))
        << "node " << p;
    ++checked;
  }
  EXPECT_GT(checked, n / 2);  // the deployment is actually connected-ish
}

/// Topology deltas while the protocol keeps running: each mobility
/// window patches the graph (edge flips through IncrementalUdg), the
/// engine is notified, and after re-settling the maintained counts must
/// again equal edges_among on the *new* graph. Run in kChecked so every
/// intermediate R1 firing is also an invariant assertion.
TEST(DensityIncremental, TopologyDeltaWindowsKeepCountsExact) {
  util::Rng rng(37);
  const std::size_t n = 150;
  const double radius = 0.14;
  auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  mobility::RandomDirection mover(n, {0.0, 3.0}, 1000.0, rng.split());

  topology::LiveTopology topo(points, radius);
  auto protocol = make_protocol(topo.graph(), ids,
                                core::DensityMaintenance::kChecked, 19);
  sim::PerfectDelivery loss;
  sim::Network network(topo.graph(), protocol, loss, 1);
  network.run(25);

  std::size_t flips = 0;
  for (int window = 0; window < 8; ++window) {
    mover.step(points, 2.0);
    const auto& delta = topo.update(points);
    flips += delta.added.size() + delta.removed.size();
    network.apply_topology_delta(delta);
    network.run(25);  // re-settle; kChecked throws if any count drifts
    const auto& g = topo.graph();
    for (graph::NodeId p = 0; p < static_cast<graph::NodeId>(n); ++p) {
      if (g.degree(p) == 0) continue;
      ASSERT_TRUE(protocol.links_count_fresh(p))
          << "window " << window << " node " << p;
      const auto neighbors = g.neighbors(p);
      const std::vector<graph::NodeId> nbr(neighbors.begin(),
                                           neighbors.end());
      ASSERT_EQ(protocol.state(p).links_among, core::edges_among(g, nbr))
          << "window " << window << " node " << p;
    }
  }
  EXPECT_GT(flips, 0u) << "mobility never flipped an edge; test is vacuous";
}

/// External mutation must drop the trusted flag (the self-stabilization
/// story for the count itself) and the next sweep must restore it.
TEST(DensityIncremental, ExternalMutationInvalidatesThenRecovers) {
  util::Rng rng(41);
  const std::size_t n = 60;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.2);

  auto protocol =
      make_protocol(g, ids, core::DensityMaintenance::kIncremental, 23);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 1);
  network.run(10);

  graph::NodeId victim = 0;
  while (victim < static_cast<graph::NodeId>(n) && g.degree(victim) < 2) {
    ++victim;
  }
  ASSERT_LT(victim, static_cast<graph::NodeId>(n));
  ASSERT_TRUE(protocol.links_count_fresh(victim));
  {
    auto s = protocol.mutable_state(victim);
    s.links_among = 0xDEADBEEF;  // plant garbage; the flag must be down
  }
  EXPECT_FALSE(protocol.links_count_fresh(victim));
  network.step();  // R1 recomputes from the cache, garbage never observed
  EXPECT_TRUE(protocol.links_count_fresh(victim));
  const auto neighbors = g.neighbors(victim);
  const std::vector<graph::NodeId> nbr(neighbors.begin(), neighbors.end());
  EXPECT_EQ(protocol.state(victim).links_among, core::edges_among(g, nbr));
}

}  // namespace
}  // namespace ssmwn
