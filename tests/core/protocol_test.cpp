// Tests for the distributed self-stabilizing protocol: the Table 2
// knowledge schedule, convergence to the synchronous oracle, and recovery
// from arbitrary (corrupted) initial states — including under a lossy
// medium (τ < 1), the exact hypothesis of the paper's Section 4.
#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "graph/forest.hpp"
#include "sim/network.hpp"
#include "stabilize/convergence.hpp"
#include "support/paper_example.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

using namespace testsupport;

core::ProtocolConfig basic_config() {
  core::ProtocolConfig config;
  config.delta_hint = 8;
  return config;
}

/// True iff the distributed state matches the oracle configuration.
bool matches_oracle(const core::DensityProtocol& protocol,
                    const core::ClusteringResult& oracle,
                    const topology::IdAssignment& ids) {
  for (graph::NodeId p = 0; p < protocol.node_count(); ++p) {
    const auto& s = protocol.state(p);
    if (!s.metric_valid || s.metric != oracle.metric[p]) return false;
    if (!s.head_valid || s.head != oracle.head_id[p]) return false;
    if (!s.parent_valid || s.parent != ids[oracle.parent[p]]) return false;
  }
  return true;
}

TEST(Protocol, Table2KnowledgeSchedule) {
  // "After one step, each node can discover its 1-neighbors. After two
  //  steps, each node can compute its 2-neighbors and then its density.
  //  After only three steps, each node knows its parent."
  const auto g = paper_example_graph();
  const auto ids = paper_example_ids();
  core::DensityProtocol protocol(ids, basic_config(), util::Rng(1));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);

  // Step 1: neighbor tables are exactly N_p.
  network.step();
  for (graph::NodeId p = 0; p < 9; ++p) {
    const auto& cache = protocol.state(p).cache;
    ASSERT_EQ(cache.size(), g.degree(p)) << "node " << p;
    for (graph::NodeId q : g.neighbors(p)) {
      EXPECT_TRUE(cache.contains(ids[q]));
    }
  }

  // Step 2: densities are correct (digests of step 2 carried the
  // neighbor tables learned in step 1).
  network.step();
  for (graph::NodeId p = 0; p < 9; ++p) {
    const auto& s = protocol.state(p);
    ASSERT_TRUE(s.metric_valid);
    EXPECT_DOUBLE_EQ(s.metric, kPaperDensities[p]) << "node " << p;
  }

  // Step 3: parents are correct (frames of step 3 carried the densities
  // computed at the end of step 2).
  network.step();
  const auto oracle = core::cluster_density(g, ids, {});
  for (graph::NodeId p = 0; p < 9; ++p) {
    const auto& s = protocol.state(p);
    ASSERT_TRUE(s.parent_valid) << "node " << p;
    EXPECT_EQ(s.parent, ids[oracle.parent[p]]) << "node " << p;
  }
}

TEST(Protocol, HeadPropagatesOneHopPerStep) {
  // On a path with densities tying everywhere, the head value crawls down
  // the clusterization tree one hop per step: stabilization time is
  // 3 + tree depth, exactly the paper's stabilization argument.
  const std::size_t n = 12;
  graph::Graph g(n);
  for (graph::NodeId p = 0; p + 1 < n; ++p) g.add_edge(p, p + 1);
  g.finalize();
  const auto ids = topology::sequential_ids(n);  // adversarial: one cluster
  const auto oracle = core::cluster_density(g, ids, {});
  ASSERT_EQ(oracle.cluster_count(), 1u);
  const auto depth = oracle.forest().tree_depth(oracle.heads.front());

  core::DensityProtocol protocol(ids, basic_config(), util::Rng(2));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  std::size_t steps = 0;
  while (!matches_oracle(protocol, oracle, ids) && steps < 4 * n) {
    network.step();
    ++steps;
  }
  EXPECT_TRUE(matches_oracle(protocol, oracle, ids));
  EXPECT_LE(steps, 3 + static_cast<std::size_t>(depth) + 1);
  EXPECT_GE(steps, static_cast<std::size_t>(depth));
}

TEST(Protocol, ConvergesToOracleOnRandomGeometry) {
  util::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(120, rng);
    const auto g = topology::unit_disk_graph(pts, 0.12);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto oracle = core::cluster_density(g, ids, {});

    core::DensityProtocol protocol(ids, basic_config(),
                                   util::Rng(100 + trial));
    sim::PerfectDelivery loss;
    sim::Network network(g, protocol, loss);
    network.run(80);
    EXPECT_TRUE(matches_oracle(protocol, oracle, ids)) << "trial " << trial;
  }
}

TEST(Protocol, ConvergesToOracleWithFusion) {
  util::Rng rng(4);
  core::ProtocolConfig config = basic_config();
  config.cluster.fusion = true;
  core::ClusterOptions oracle_opt;
  oracle_opt.fusion = true;
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(120, rng);
    const auto g = topology::unit_disk_graph(pts, 0.12);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto oracle = core::cluster_density(g, ids, oracle_opt);

    core::DensityProtocol protocol(ids, config, util::Rng(200 + trial));
    sim::PerfectDelivery loss;
    sim::Network network(g, protocol, loss);
    network.run(120);
    // Head assignment must agree with the fusion oracle.
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      const auto& s = protocol.state(p);
      ASSERT_TRUE(s.head_valid);
      EXPECT_EQ(s.head, oracle.head_id[p])
          << "trial " << trial << " node " << p;
    }
  }
}

TEST(Protocol, SelfStabilizesFromArbitraryState) {
  // The headline property: corrupt *everything* (shared variables and
  // caches, including phantom neighbors), then run; the system must reach
  // the oracle configuration and stay there.
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(100, rng);
    const auto g = topology::unit_disk_graph(pts, 0.13);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto oracle = core::cluster_density(g, ids, {});

    core::DensityProtocol protocol(ids, basic_config(),
                                   util::Rng(300 + trial));
    sim::PerfectDelivery loss;
    sim::Network network(g, protocol, loss);
    network.run(50);  // reach a legitimate state first
    ASSERT_TRUE(matches_oracle(protocol, oracle, ids));

    util::Rng chaos(900 + trial);
    protocol.corrupt_all(chaos);

    const auto report = stabilize::run_until_stable(
        [&] { network.step(); },
        [&] { return matches_oracle(protocol, oracle, ids); },
        /*confirm_steps=*/10, /*max_steps=*/200);
    EXPECT_TRUE(report.converged) << "trial " << trial;
  }
}

TEST(Protocol, SelfStabilizesUnderLossyMedium) {
  // τ = 0.6: every frame is lost at each receiver with probability 0.4 —
  // the protocol must still converge (the paper only assumes τ > 0).
  util::Rng rng(6);
  const auto pts = topology::uniform_points(80, rng);
  const auto g = topology::unit_disk_graph(pts, 0.15);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto oracle = core::cluster_density(g, ids, {});

  core::ProtocolConfig config = basic_config();
  config.cache_max_age = 16;  // ride out loss bursts
  core::DensityProtocol protocol(ids, config, util::Rng(7));
  sim::BernoulliDelivery loss(0.6, util::Rng(8));
  sim::Network network(g, protocol, loss);

  const auto report = stabilize::run_until_stable(
      [&] { network.step(); },
      [&] { return matches_oracle(protocol, oracle, ids); },
      /*confirm_steps=*/20, /*max_steps=*/2000);
  EXPECT_TRUE(report.converged);
}

TEST(Protocol, SelfStabilizesUnderBroadcastCollisions) {
  util::Rng rng(9);
  const auto pts = topology::uniform_points(80, rng);
  const auto g = topology::unit_disk_graph(pts, 0.15);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto oracle = core::cluster_density(g, ids, {});

  core::ProtocolConfig config = basic_config();
  config.cache_max_age = 16;
  core::DensityProtocol protocol(ids, config, util::Rng(10));
  sim::BroadcastCollision loss(0.7, g.node_count(), util::Rng(11));
  sim::Network network(g, protocol, loss);

  const auto report = stabilize::run_until_stable(
      [&] { network.step(); },
      [&] { return matches_oracle(protocol, oracle, ids); },
      /*confirm_steps=*/20, /*max_steps=*/2000);
  EXPECT_TRUE(report.converged);
}

TEST(Protocol, RecoversFromPartialCorruption) {
  util::Rng rng(12);
  const auto pts = topology::uniform_points(100, rng);
  const auto g = topology::unit_disk_graph(pts, 0.13);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto oracle = core::cluster_density(g, ids, {});

  core::DensityProtocol protocol(ids, basic_config(), util::Rng(13));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(50);
  ASSERT_TRUE(matches_oracle(protocol, oracle, ids));

  util::Rng chaos(14);
  const std::size_t hit = protocol.corrupt_fraction(chaos, 0.3);
  EXPECT_GT(hit, 0u);
  network.run(60);
  EXPECT_TRUE(matches_oracle(protocol, oracle, ids));
}

TEST(Protocol, RecoversFromNodeReboots) {
  util::Rng rng(15);
  const auto pts = topology::uniform_points(100, rng);
  const auto g = topology::unit_disk_graph(pts, 0.13);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto oracle = core::cluster_density(g, ids, {});

  core::DensityProtocol protocol(ids, basic_config(), util::Rng(16));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(50);
  ASSERT_TRUE(matches_oracle(protocol, oracle, ids));

  // Reboot every fifth node, including possibly heads.
  for (graph::NodeId p = 0; p < g.node_count(); p += 5) {
    protocol.reset_node(p);
  }
  network.run(60);
  EXPECT_TRUE(matches_oracle(protocol, oracle, ids));
}

TEST(Protocol, DagIdsBecomeLocallyUniqueAndStay) {
  util::Rng rng(17);
  const auto pts = topology::uniform_points(150, rng);
  const auto g = topology::unit_disk_graph(pts, 0.1);
  const auto ids = topology::random_ids(g.node_count(), rng);

  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.delta_hint = g.max_degree();
  core::DensityProtocol protocol(ids, config, util::Rng(18));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(30);

  const auto dag = protocol.dag_id_values();
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    EXPECT_LT(dag[p], protocol.name_space());
    for (graph::NodeId q : g.neighbors(p)) {
      EXPECT_NE(dag[p], dag[q]) << "conflict " << p << "-" << q;
    }
  }
  // Names must stay put once locally unique (newId keeps a clean name).
  const auto before = protocol.dag_id_values();
  network.run(10);
  EXPECT_EQ(before, protocol.dag_id_values());
}

TEST(Protocol, AdaptsToTopologyChange) {
  // Converge on one topology, then swap the graph (a "mobility event"):
  // the protocol must stabilize to the new oracle without a reset.
  util::Rng rng(19);
  const auto pts_a = topology::uniform_points(90, rng);
  const auto g_a = topology::unit_disk_graph(pts_a, 0.14);
  auto pts_b = pts_a;
  // Nudge a third of the nodes.
  for (std::size_t i = 0; i < pts_b.size(); i += 3) {
    pts_b[i].x = rng.uniform();
    pts_b[i].y = rng.uniform();
  }
  const auto g_b = topology::unit_disk_graph(pts_b, 0.14);
  const auto ids = topology::random_ids(pts_a.size(), rng);

  core::ProtocolConfig config = basic_config();
  config.cache_max_age = 4;  // evict vanished neighbors quickly
  core::DensityProtocol protocol(ids, config, util::Rng(20));
  sim::PerfectDelivery loss;
  sim::Network network(g_a, protocol, loss);
  network.run(50);
  ASSERT_TRUE(
      matches_oracle(protocol, core::cluster_density(g_a, ids, {}), ids));

  network.set_graph(g_b);
  const auto oracle_b = core::cluster_density(g_b, ids, {});
  const auto report = stabilize::run_until_stable(
      [&] { network.step(); },
      [&] { return matches_oracle(protocol, oracle_b, ids); },
      /*confirm_steps=*/10, /*max_steps=*/300);
  EXPECT_TRUE(report.converged);
}

TEST(Protocol, IsolatedNodeElectsItself) {
  graph::Graph g(1);
  core::DensityProtocol protocol({42}, basic_config(), util::Rng(21));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(3);
  const auto& s = protocol.state(0);
  EXPECT_TRUE(s.head_valid);
  EXPECT_EQ(s.head, 42u);
}

}  // namespace
}  // namespace ssmwn
