// Frame-level unit tests of the distributed protocol: what goes into a
// broadcast, how caches absorb deliveries, and when entries age out.
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "topology/ids.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

core::ProtocolConfig tiny_config() {
  core::ProtocolConfig config;
  config.delta_hint = 4;
  config.cache_max_age = 3;
  return config;
}

TEST(ProtocolFrames, FrameCarriesSharedVariables) {
  core::DensityProtocol protocol({7, 9}, tiny_config(), util::Rng(1));
  auto s = protocol.mutable_state(0);
  s.metric = 1.25;
  s.metric_valid = true;
  s.head = 7;
  s.head_valid = true;
  const auto frame = protocol.make_frame(0);
  EXPECT_EQ(frame.id, 7u);
  EXPECT_DOUBLE_EQ(frame.metric, 1.25);
  EXPECT_TRUE(frame.metric_valid);
  EXPECT_EQ(frame.head, 7u);
  EXPECT_TRUE(frame.head_valid);
  EXPECT_TRUE(frame.digests.empty());  // cold cache -> no digests
}

TEST(ProtocolFrames, DigestsMirrorTheCacheSortedById) {
  core::DensityProtocol protocol({1, 2, 3}, tiny_config(), util::Rng(2));
  // Deliver frames from nodes with ids 3 then 2 into node 0's cache.
  core::ProtocolFrame from3;
  from3.id = 3;
  from3.metric = 2.0;
  from3.metric_valid = true;
  from3.head = 3;
  from3.head_valid = true;
  core::ProtocolFrame from2;
  from2.id = 2;
  from2.metric = 1.0;
  from2.metric_valid = true;
  protocol.deliver(0, from3);
  protocol.deliver(0, from2);

  const auto frame = protocol.make_frame(0);
  ASSERT_EQ(frame.digests.size(), 2u);
  EXPECT_EQ(frame.digests[0].id, 2u);  // sorted ascending by id
  EXPECT_EQ(frame.digests[1].id, 3u);
  EXPECT_TRUE(frame.digests[1].is_head);   // head==id and valid
  EXPECT_FALSE(frame.digests[0].is_head);  // head not valid
}

TEST(ProtocolFrames, SelfFramesAreIgnored) {
  core::DensityProtocol protocol({5}, tiny_config(), util::Rng(3));
  core::ProtocolFrame self;
  self.id = 5;
  protocol.deliver(0, self);
  EXPECT_TRUE(protocol.state(0).cache.empty());
}

TEST(ProtocolFrames, CacheEntriesAgeOutAfterMaxAge) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  core::DensityProtocol protocol({1, 2}, tiny_config(), util::Rng(4));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.step();
  ASSERT_EQ(protocol.state(0).cache.size(), 1u);

  // Disconnect and run: the entry ages once in the step it arrived, so
  // it survives max_age - 1 further silent steps and is evicted on the
  // next one.
  graph::Graph empty(2);
  network.set_graph(empty);
  network.run(tiny_config().cache_max_age - 1);
  EXPECT_EQ(protocol.state(0).cache.size(), 1u);
  network.step();
  EXPECT_TRUE(protocol.state(0).cache.empty());
}

TEST(ProtocolFrames, FreshDeliveryResetsAge) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  core::DensityProtocol protocol({1, 2}, tiny_config(), util::Rng(5));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  // Run many steps with delivery every step: nothing may ever age out.
  network.run(20);
  EXPECT_EQ(protocol.state(0).cache.size(), 1u);
  EXPECT_EQ(protocol.state(1).cache.size(), 1u);
}

TEST(ProtocolFrames, DensityFromRelayedDigests) {
  // Triangle: after two steps each node must believe density 1.5, having
  // reconstructed the neighbor-neighbor link from digests.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  core::DensityProtocol protocol({1, 2, 3}, tiny_config(), util::Rng(6));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(2);
  for (graph::NodeId p = 0; p < 3; ++p) {
    EXPECT_DOUBLE_EQ(protocol.state(p).metric, 1.5) << "node " << p;
  }
}

TEST(ProtocolFrames, PhantomCacheEntriesEvictEvenWithoutTraffic) {
  // A corrupted cache names nodes that do not exist; with no frames ever
  // arriving for them, aging must clear the phantoms.
  graph::Graph g(1);
  core::DensityProtocol protocol({1}, tiny_config(), util::Rng(7));
  util::Rng chaos(8);
  protocol.corrupt_all(chaos);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(tiny_config().cache_max_age + 2);
  EXPECT_TRUE(protocol.state(0).cache.empty());
  // And the lone node has elected itself.
  EXPECT_TRUE(protocol.state(0).head_valid);
  EXPECT_EQ(protocol.state(0).head, 1u);
}

}  // namespace
}  // namespace ssmwn
