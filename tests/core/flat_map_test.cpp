// FlatMap differential hardening: the sorted flat-vector cache must be
// observably identical to std::map under any interleaving of the
// operations the protocol performs, retain capacity across clear() (the
// zero-allocation audit depends on it), and survive self-aliasing
// inserts where the key is a reference into the map's own storage.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/flat_cache.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

using Map = core::FlatMap<std::uint32_t, std::uint64_t>;
using Reference = std::map<std::uint32_t, std::uint64_t>;

/// Both containers must expose the same entries in the same (ascending)
/// iteration order — the protocol's frame building walks the cache in
/// order, so order is part of the bit-equivalence contract.
void expect_identical(const Map& map, const Reference& ref,
                      const std::string& context) {
  ASSERT_EQ(map.size(), ref.size()) << context;
  auto it = map.begin();
  for (const auto& [key, value] : ref) {
    ASSERT_NE(it, map.end()) << context;
    EXPECT_EQ(it->first, key) << context;
    EXPECT_EQ(it->second, value) << context;
    ++it;
  }
  EXPECT_EQ(it, map.end()) << context;
}

TEST(FlatMap, RandomizedDifferentialVsStdMap) {
  util::Rng rng(20050612);
  for (int round = 0; round < 20; ++round) {
    Map map;
    Reference ref;
    const std::uint32_t key_space = 1 + static_cast<std::uint32_t>(
                                            rng.below(64));
    for (int op = 0; op < 400; ++op) {
      const auto key = static_cast<std::uint32_t>(rng.below(key_space));
      const std::string context = "round " + std::to_string(round) +
                                  " op " + std::to_string(op) + " key " +
                                  std::to_string(key);
      switch (rng.below(6)) {
        case 0:
        case 1: {  // insert-or-update through operator[]
          const std::uint64_t value = rng();
          map[key] = value;
          ref[key] = value;
          break;
        }
        case 2: {  // erase by key
          EXPECT_EQ(map.erase(key), ref.erase(key) > 0) << context;
          break;
        }
        case 3: {  // erase by iterator
          auto it = map.find(key);
          auto rit = ref.find(key);
          ASSERT_EQ(it == map.end(), rit == ref.end()) << context;
          if (it != map.end()) {
            map.erase(it);
            ref.erase(rit);
          }
          break;
        }
        case 4: {  // lookup
          auto it = map.find(key);
          auto rit = ref.find(key);
          ASSERT_EQ(it == map.end(), rit == ref.end()) << context;
          if (it != map.end()) EXPECT_EQ(it->second, rit->second) << context;
          EXPECT_EQ(map.contains(key), ref.count(key) > 0) << context;
          break;
        }
        default: {  // full iteration-order check
          expect_identical(map, ref, context);
          break;
        }
      }
    }
    expect_identical(map, ref, "round " + std::to_string(round) + " final");
  }
}

TEST(FlatMap, ClearRetainsCapacity) {
  Map map;
  map.reserve(32);
  const std::size_t reserved = map.capacity();
  EXPECT_GE(reserved, 32u);
  for (std::uint32_t k = 0; k < 32; ++k) map[k] = k;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), reserved);
  // Refilling to the high-water size must not grow the allocation.
  for (std::uint32_t k = 0; k < 32; ++k) map[k] = k * 2;
  EXPECT_EQ(map.capacity(), reserved);
  EXPECT_EQ(map.size(), 32u);
}

TEST(FlatMap, ReserveDoesNotDisturbContents) {
  Map map;
  for (std::uint32_t k = 0; k < 10; ++k) map[k * 3] = k;
  map.reserve(100);
  EXPECT_GE(map.capacity(), 100u);
  for (std::uint32_t k = 0; k < 10; ++k) {
    auto it = map.find(k * 3);
    ASSERT_NE(it, map.end());
    EXPECT_EQ(it->second, k);
  }
}

// operator[] with a key that lives inside the map's own storage: the
// insert shifts the tail (and may reallocate), which would invalidate
// the reference mid-insert unless the key is copied out first.
TEST(FlatMap, InsertWithSelfAliasingKey) {
  // Values hold keys, so a stored value can name the next key to insert.
  core::FlatMap<std::uint32_t, std::uint32_t> map;
  map[10] = 5;   // value 5 is itself a key we will insert
  map[20] = 15;
  map[30] = 25;
  for (std::uint32_t probe : {10u, 20u, 30u}) {
    auto it = map.find(probe);
    ASSERT_NE(it, map.end());
    const std::uint32_t& aliased = it->second;  // reference into storage
    map[aliased] = probe;  // inserts before `probe`, shifting its entry
  }
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> expected = {
      {5, 10}, {10, 5}, {15, 20}, {20, 15}, {25, 30}, {30, 25}};
  ASSERT_EQ(map.size(), expected.size());
  auto it = map.begin();
  for (const auto& [key, value] : expected) {
    EXPECT_EQ(it->first, key);
    EXPECT_EQ(it->second, value);
    ++it;
  }
}

// The same hazard from the key side: inserting m.begin()->first when the
// entry will shift.
TEST(FlatMap, InsertWithKeyAliasingExistingKey) {
  core::FlatMap<std::uint32_t, std::uint32_t> map;
  for (std::uint32_t k = 4; k < 64; k += 4) map[k] = k;
  // Insert keys derived from references into storage; each lands below
  // the referenced entry and shifts it.
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t& front = map.begin()->first;
    map[front - 1] = front;
  }
  // Whatever keys landed, order and lookup must still agree.
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto& item : map) {
    if (!first) EXPECT_LT(prev, item.first);
    prev = item.first;
    first = false;
    auto it = map.find(item.first);
    ASSERT_NE(it, map.end());
    EXPECT_EQ(it->second, item.second);
  }
}

}  // namespace
}  // namespace ssmwn
