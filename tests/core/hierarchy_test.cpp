// Tests for the hierarchical clustering extension (overlay graphs and
// multi-level head election).
#include "core/hierarchy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(Overlay, HeadsAdjacentIffClustersTouch) {
  // Two 2-cluster paths joined by one radio edge: 0-1-2 | 3-4-5 with the
  // bridge 2-3. Force the clustering by metric.
  const auto g =
      graph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const std::vector<double> metric{3, 1, 1, 1, 1, 3};  // heads: 0 and 5
  const auto r =
      core::cluster_by_metric(g, topology::sequential_ids(6), metric, {});
  ASSERT_EQ(r.cluster_count(), 2u);
  const auto overlay = core::overlay_graph(g, r);
  EXPECT_EQ(overlay.node_count(), 2u);
  EXPECT_EQ(overlay.edge_count(), 1u);  // the 2-3 bridge links the clusters
  EXPECT_TRUE(overlay.adjacent(0, 1));
}

TEST(Overlay, NoEdgeBetweenDisconnectedClusters) {
  const auto g = graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto r = core::cluster_density(g, topology::sequential_ids(4), {});
  ASSERT_EQ(r.cluster_count(), 2u);
  const auto overlay = core::overlay_graph(g, r);
  EXPECT_EQ(overlay.edge_count(), 0u);
}

TEST(Hierarchy, ShrinksHeadCountPerLevel) {
  util::Rng rng(1);
  const auto pts = topology::uniform_points(600, rng);
  const auto g = topology::unit_disk_graph(pts, 0.07);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto h = core::build_hierarchy(g, ids, {}, 4);
  ASSERT_GE(h.depth(), 2u);
  for (std::size_t k = 1; k < h.depth(); ++k) {
    EXPECT_LE(h.levels[k].clustering.heads.size(),
              h.levels[k - 1].clustering.heads.size())
        << "level " << k;
  }
  // Level-k node sets are exactly the level-(k-1) head sets.
  for (std::size_t k = 1; k < h.depth(); ++k) {
    EXPECT_EQ(h.levels[k].graph.node_count(),
              h.levels[k - 1].clustering.heads.size());
  }
}

TEST(Hierarchy, TopHeadsAreBaseNodes) {
  util::Rng rng(2);
  const auto pts = topology::uniform_points(300, rng);
  const auto g = topology::unit_disk_graph(pts, 0.09);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto h = core::build_hierarchy(g, ids, {}, 3);
  const auto tops = h.top_heads();
  EXPECT_FALSE(tops.empty());
  for (graph::NodeId p : tops) EXPECT_LT(p, g.node_count());
  // Top heads must be level-0 heads too (the hierarchy is nested).
  std::set<graph::NodeId> level0_heads(h.levels[0].clustering.heads.begin(),
                                       h.levels[0].clustering.heads.end());
  for (graph::NodeId p : tops) EXPECT_TRUE(level0_heads.count(p));
}

TEST(Hierarchy, HeadAtLevelChainsUp) {
  util::Rng rng(3);
  const auto pts = topology::uniform_points(300, rng);
  const auto g = topology::unit_disk_graph(pts, 0.09);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto h = core::build_hierarchy(g, ids, {}, 3);
  ASSERT_GE(h.depth(), 2u);
  for (graph::NodeId p = 0; p < g.node_count(); p += 7) {
    const auto h0 = h.head_at_level(p, 0);
    // Level-0 head matches the clustering directly.
    EXPECT_EQ(h0, h.levels[0].clustering.head_index[p]);
    // The level-1 head of p equals the level-1 head of its level-0 head.
    const auto h1 = h.head_at_level(p, 1);
    EXPECT_EQ(h1, h.head_at_level(h0, 1));
  }
}

TEST(Hierarchy, SingleClusterStops) {
  // A clique collapses to one head at level 0; the hierarchy must stop.
  graph::Graph g(5);
  for (graph::NodeId a = 0; a < 5; ++a) {
    for (graph::NodeId b = a + 1; b < 5; ++b) g.add_edge(a, b);
  }
  g.finalize();
  const auto h =
      core::build_hierarchy(g, topology::sequential_ids(5), {}, 4);
  EXPECT_EQ(h.depth(), 1u);
  EXPECT_EQ(h.top_heads().size(), 1u);
}

TEST(Hierarchy, EmptyGraph) {
  graph::Graph g(0);
  const auto h = core::build_hierarchy(g, {}, {}, 4);
  EXPECT_EQ(h.depth(), 0u);
  EXPECT_TRUE(h.top_heads().empty());
}

TEST(Hierarchy, RespectsMaxLevels) {
  util::Rng rng(4);
  const auto pts = topology::uniform_points(800, rng);
  const auto g = topology::unit_disk_graph(pts, 0.05);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto h = core::build_hierarchy(g, ids, {}, 2);
  EXPECT_LE(h.depth(), 2u);
}

}  // namespace
}  // namespace ssmwn
