// Tests for the pluggable election metric of the distributed protocol:
// the degree variant must converge to the degree oracle, realizing the
// paper's closing claim that the self-stabilizing construction carries
// over to other clusterization metrics.
#include <gtest/gtest.h>

#include "cluster/baselines.hpp"
#include "core/protocol.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(ProtocolMetric, DegreeVariantConvergesToDegreeOracle) {
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(120, rng);
    const auto g = topology::unit_disk_graph(pts, 0.12);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto oracle = cluster::cluster_highest_degree(g, ids);

    core::ProtocolConfig config;
    config.metric = core::ElectionMetric::Degree;
    config.delta_hint = g.max_degree();
    core::DensityProtocol protocol(ids, config, rng.split());
    sim::PerfectDelivery loss;
    sim::Network network(g, protocol, loss);
    network.run(80);

    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      const auto& s = protocol.state(p);
      ASSERT_TRUE(s.metric_valid);
      EXPECT_DOUBLE_EQ(s.metric, static_cast<double>(g.degree(p)));
      ASSERT_TRUE(s.head_valid);
      EXPECT_EQ(s.head, oracle.head_id[p]) << "trial " << trial;
    }
  }
}

TEST(ProtocolMetric, DegreeVariantSelfStabilizes) {
  util::Rng rng(2);
  const auto pts = topology::uniform_points(100, rng);
  const auto g = topology::unit_disk_graph(pts, 0.13);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto oracle = cluster::cluster_highest_degree(g, ids);

  core::ProtocolConfig config;
  config.metric = core::ElectionMetric::Degree;
  config.delta_hint = g.max_degree();
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(60);

  util::Rng chaos(3);
  protocol.corrupt_all(chaos);
  network.run(80);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    EXPECT_EQ(protocol.state(p).head, oracle.head_id[p]);
  }
}

TEST(ProtocolMetric, MetricsDisagreeWhereExpected) {
  // Sanity: on a star-with-satellites the degree metric crowns the hub,
  // while density can prefer an interlinked clique elsewhere. Build hub
  // (high degree, no links among neighbors) + triangle (low degree,
  // dense): two different heads.
  graph::Graph g(9);
  for (graph::NodeId leaf = 1; leaf <= 5; ++leaf) g.add_edge(0, leaf);
  g.add_edge(6, 7);
  g.add_edge(7, 8);
  g.add_edge(6, 8);
  g.add_edge(5, 6);  // connect components
  g.finalize();
  // Hub gets the largest id so density ties cannot crown it.
  const topology::IdAssignment ids{8, 0, 1, 2, 3, 4, 5, 6, 7};

  core::ProtocolConfig degree_config;
  degree_config.metric = core::ElectionMetric::Degree;
  degree_config.delta_hint = g.max_degree();
  core::DensityProtocol degree_protocol(ids, degree_config, util::Rng(4));

  core::ProtocolConfig density_config;
  density_config.delta_hint = g.max_degree();
  core::DensityProtocol density_protocol(ids, density_config, util::Rng(5));

  sim::PerfectDelivery loss;
  sim::Network dg(g, degree_protocol, loss);
  sim::Network dn(g, density_protocol, loss);
  dg.run(40);
  dn.run(40);

  // Degree: hub 0 (degree 5) wins its neighborhood despite its bad id.
  EXPECT_EQ(degree_protocol.state(0).head, ids[0]);
  // Density: all hub-side densities tie at 1.0, so the smallest id (leaf
  // 1) beats the hub; the triangle elects node 7 (1.5, smaller id of the
  // tied corner pair).
  EXPECT_EQ(density_protocol.state(1).head, ids[1]);
  EXPECT_EQ(density_protocol.state(7).head, ids[7]);
  EXPECT_NE(density_protocol.state(0).head,
            degree_protocol.state(0).head);
}

}  // namespace
}  // namespace ssmwn
