// Unit tests for the density metric (Definition 1), anchored on the
// paper's worked example (Table 1).
#include "core/density.hpp"

#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "support/paper_example.hpp"
#include "topology/generators.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

using testsupport::paper_example_graph;

TEST(Density, MatchesTable1OfThePaper) {
  const auto g = paper_example_graph();
  const auto densities = core::compute_densities(g);
  ASSERT_EQ(densities.size(), 9u);
  for (std::size_t p = 0; p < densities.size(); ++p) {
    EXPECT_DOUBLE_EQ(densities[p], testsupport::kPaperDensities[p])
        << "node index " << p;
  }
}

TEST(Density, NeighborAndLinkCountsOfTable1) {
  const auto g = paper_example_graph();
  using testsupport::A;
  using testsupport::B;
  // Na = {d, i}; Nb = {c, d, h, i} (stated verbatim in the paper).
  EXPECT_EQ(g.degree(A), 2u);
  EXPECT_EQ(g.degree(B), 4u);
  EXPECT_TRUE(g.adjacent(A, testsupport::D));
  EXPECT_TRUE(g.adjacent(A, testsupport::I));
  EXPECT_TRUE(g.adjacent(B, testsupport::C));
  EXPECT_TRUE(g.adjacent(B, testsupport::D));
  EXPECT_TRUE(g.adjacent(B, testsupport::H));
  EXPECT_TRUE(g.adjacent(B, testsupport::I));
  EXPECT_TRUE(g.adjacent(testsupport::H, testsupport::I));
}

TEST(Density, IsolatedNodeHasZeroDensityByConvention) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_DOUBLE_EQ(core::node_density(g, 2), 0.0);
}

TEST(Density, SingleEdgeGivesDensityOne) {
  const auto g = graph::from_edges(2, {{0, 1}});
  EXPECT_DOUBLE_EQ(core::node_density(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(core::node_density(g, 1), 1.0);
}

TEST(Density, CompleteGraphDensity) {
  // K_n: every node has n-1 neighbors and all C(n-1, 2) links among them
  // are present: d = (n-1 + (n-1)(n-2)/2) / (n-1) = 1 + (n-2)/2 = n/2.
  for (std::size_t n = 2; n <= 8; ++n) {
    graph::Graph g(n);
    for (graph::NodeId a = 0; a < n; ++a) {
      for (graph::NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
    }
    g.finalize();
    for (graph::NodeId p = 0; p < n; ++p) {
      EXPECT_DOUBLE_EQ(core::node_density(g, p),
                       static_cast<double>(n) / 2.0)
          << "K_" << n << " node " << p;
    }
  }
}

TEST(Density, StarCenterAndLeaves) {
  // Star K_{1,k}: center has k neighbors, no links among them -> density
  // 1; each leaf has 1 neighbor (the center) and 1 link -> density 1.
  graph::Graph g(6);
  for (graph::NodeId leaf = 1; leaf < 6; ++leaf) g.add_edge(0, leaf);
  g.finalize();
  for (graph::NodeId p = 0; p < 6; ++p) {
    EXPECT_DOUBLE_EQ(core::node_density(g, p), 1.0);
  }
}

TEST(Density, CycleDensityIsOne) {
  // On a cycle, every node has two non-adjacent neighbors: d = 2/2 = 1.
  const std::size_t n = 7;
  graph::Graph g(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    g.add_edge(p, static_cast<graph::NodeId>((p + 1) % n));
  }
  g.finalize();
  for (graph::NodeId p = 0; p < n; ++p) {
    EXPECT_DOUBLE_EQ(core::node_density(g, p), 1.0);
  }
}

TEST(Density, TriangleDensity) {
  // Triangle: 2 neighbors, link between them: d = 3/2.
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  for (graph::NodeId p = 0; p < 3; ++p) {
    EXPECT_DOUBLE_EQ(core::node_density(g, p), 1.5);
  }
}

TEST(Density, EdgesAmongMatchesDefinition) {
  const auto g = paper_example_graph();
  // e(N_b) for N_b = {c, d, h, i} is exactly the h-i link.
  const std::vector<graph::NodeId> nb = {testsupport::C, testsupport::D,
                                         testsupport::H, testsupport::I};
  EXPECT_EQ(core::edges_among(g, nb), 1u);
}

TEST(Density, FormulaEquivalenceOnRandomGeometricGraphs) {
  // d_p = (|N_p| + e(N_p)) / |N_p| must equal the intersection-based fast
  // path for every node of a random UDG.
  util::Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(150, rng);
    const auto g = topology::unit_disk_graph(pts, 0.12);
    const auto fast = core::compute_densities(g);
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      const auto neighbors = g.neighbors(p);
      if (neighbors.empty()) {
        EXPECT_DOUBLE_EQ(fast[p], 0.0);
        continue;
      }
      const std::size_t links =
          neighbors.size() +
          core::edges_among(g, {neighbors.data(), neighbors.size()});
      EXPECT_DOUBLE_EQ(fast[p], static_cast<double>(links) /
                                    static_cast<double>(neighbors.size()))
          << "trial " << trial << " node " << p;
    }
  }
}

TEST(Density, SmoothsDegreeChanges) {
  // The motivating property: removing one node from a dense neighborhood
  // changes the density by O(1/|N_p|), while the degree changes by 1.
  // Build p with k mutually-linked neighbors, then drop one.
  const std::size_t k = 10;
  graph::Graph full(k + 1);
  for (graph::NodeId a = 0; a <= k; ++a) {
    for (graph::NodeId b = a + 1; b <= k; ++b) full.add_edge(a, b);
  }
  full.finalize();
  graph::Graph smaller(k + 1);  // same but node k isolated
  for (graph::NodeId a = 0; a < k; ++a) {
    for (graph::NodeId b = a + 1; b < k; ++b) smaller.add_edge(a, b);
  }
  smaller.finalize();
  const double before = core::node_density(full, 0);
  const double after = core::node_density(smaller, 0);
  EXPECT_NEAR(before - after, 0.5, 1e-9);  // K11 vs K10: 5.5 -> 5.0
}

}  // namespace
}  // namespace ssmwn
