// Parameterized property sweeps: the structural invariants of the
// clustering algorithm, checked across the paper's whole parameter space
// (transmission range × deployment intensity × rule combination ×
// identifier distribution).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "core/clustering.hpp"
#include "core/dag_ids.hpp"
#include "core/density.hpp"
#include "graph/algorithms.hpp"
#include "graph/forest.hpp"
#include "metrics/cluster_metrics.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

enum class IdMode { Random, Sequential, Reversed };

struct SweepParam {
  double radius;
  std::size_t nodes;
  bool use_dag;
  bool incumbency;
  bool fusion;
  IdMode id_mode;
};

std::string param_name(const testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::string name = "R" + std::to_string(static_cast<int>(p.radius * 100)) +
                     "_n" + std::to_string(p.nodes);
  if (p.use_dag) name += "_dag";
  if (p.incumbency) name += "_inc";
  if (p.fusion) name += "_fus";
  switch (p.id_mode) {
    case IdMode::Random: name += "_rand"; break;
    case IdMode::Sequential: name += "_seq"; break;
    case IdMode::Reversed: name += "_rev"; break;
  }
  return name;
}

class ClusteringSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(ClusteringSweep, StructuralInvariantsHold) {
  const auto& param = GetParam();
  util::Rng rng(0xBEEF ^ (param.nodes * 131) ^
                static_cast<std::uint64_t>(param.radius * 1000));
  for (int trial = 0; trial < 3; ++trial) {
    const auto pts = topology::uniform_points(param.nodes, rng);
    const auto g = topology::unit_disk_graph(pts, param.radius);
    topology::IdAssignment ids;
    switch (param.id_mode) {
      case IdMode::Random:
        ids = topology::random_ids(g.node_count(), rng);
        break;
      case IdMode::Sequential:
        ids = topology::sequential_ids(g.node_count());
        break;
      case IdMode::Reversed:
        ids = topology::reversed_ids(g.node_count());
        break;
    }
    core::ClusterOptions opt;
    opt.use_dag_ids = param.use_dag;
    opt.incumbency = param.incumbency;
    opt.fusion = param.fusion;

    core::ClusteringResult r;
    if (param.use_dag) {
      const auto dag = core::build_dag_ids(g, ids, {}, rng);
      ASSERT_TRUE(dag.converged);
      r = core::cluster_density(g, ids, opt, dag.ids);
    } else {
      r = core::cluster_density(g, ids, opt);
    }

    // I1: the parent structure is an acyclic forest along radio links.
    const graph::ParentForest forest(r.parent);
    EXPECT_TRUE(forest.respects_graph(g));
    // I2: heads are exactly the roots; H is consistent along edges.
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      EXPECT_EQ(static_cast<bool>(r.is_head[p]), forest.is_root(p));
      EXPECT_EQ(r.head_index[p], forest.root(p));
      EXPECT_EQ(r.head_index[p], r.head_index[r.parent[p]]);
      EXPECT_EQ(r.head_id[p], ids[r.head_index[p]]);
    }
    // I3: no two adjacent heads.
    for (graph::NodeId p : r.heads) {
      for (graph::NodeId q : g.neighbors(p)) {
        EXPECT_FALSE(r.is_head[q]);
      }
    }
    // I4: every connected component has at least one head.
    const auto comp = graph::connected_components(g);
    std::set<std::uint32_t> with_head;
    for (graph::NodeId p : r.heads) with_head.insert(comp[p]);
    std::set<std::uint32_t> all;
    for (std::uint32_t c : comp) all.insert(c);
    EXPECT_EQ(with_head, all);
    // I5: clusters never span components.
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      EXPECT_EQ(comp[p], comp[r.head_index[p]]);
    }
    // I6 (fusion): heads pairwise more than 2 hops apart.
    if (param.fusion) {
      for (graph::NodeId p : r.heads) {
        for (graph::NodeId q : graph::two_hop_neighborhood(g, p)) {
          EXPECT_FALSE(r.is_head[q]);
        }
      }
    }
    // I7: a non-head's parent strictly dominates it unless the node is a
    // demoted local maximum (fusion); heads dominate all neighbors.
    if (!param.fusion) {
      for (graph::NodeId p = 0; p < g.node_count(); ++p) {
        if (r.parent[p] == p) continue;
        EXPECT_TRUE(core::precedes(r.rank[p], r.rank[r.parent[p]],
                                   param.incumbency))
            << "node " << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RadiusAndRules, ClusteringSweep,
    testing::Values(
        SweepParam{0.05, 400, false, false, false, IdMode::Random},
        SweepParam{0.08, 400, false, false, false, IdMode::Random},
        SweepParam{0.10, 400, false, false, false, IdMode::Random},
        SweepParam{0.08, 400, true, false, false, IdMode::Random},
        SweepParam{0.08, 400, false, true, false, IdMode::Random},
        SweepParam{0.08, 400, false, false, true, IdMode::Random},
        SweepParam{0.08, 400, false, true, true, IdMode::Random},
        SweepParam{0.08, 400, true, true, true, IdMode::Random},
        SweepParam{0.08, 400, false, false, false, IdMode::Sequential},
        SweepParam{0.08, 400, true, false, true, IdMode::Sequential},
        SweepParam{0.08, 400, false, false, false, IdMode::Reversed},
        SweepParam{0.05, 150, false, false, true, IdMode::Random},
        SweepParam{0.15, 150, true, true, true, IdMode::Random},
        SweepParam{0.25, 60, false, false, true, IdMode::Random}),
    param_name);

// ---------------------------------------------------------------------
// Determinism sweep: the solver is a pure function of its inputs.
class DeterminismSweep : public testing::TestWithParam<double> {};

TEST_P(DeterminismSweep, SameInputsSameClustering) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 10000));
  const auto pts = topology::uniform_points(300, rng);
  const auto g = topology::unit_disk_graph(pts, GetParam());
  const auto ids = topology::random_ids(g.node_count(), rng);
  core::ClusterOptions opt;
  opt.fusion = true;
  const auto a = core::cluster_density(g, ids, opt);
  const auto b = core::cluster_density(g, ids, opt);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.head_index, b.head_index);
  EXPECT_EQ(a.is_head, b.is_head);
}

INSTANTIATE_TEST_SUITE_P(Radii, DeterminismSweep,
                         testing::Values(0.05, 0.07, 0.09, 0.12),
                         [](const testing::TestParamInfo<double>& info) {
                           return "R" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// ---------------------------------------------------------------------
// Id-relabeling equivariance: permuting the identifier assignment can
// move tie-broken choices but never violates the invariants, and with
// tie-free metrics it must not change the head set at all.
TEST(Equivariance, TieFreeMetricsIgnoreIds) {
  util::Rng rng(77);
  const auto pts = topology::uniform_points(200, rng);
  const auto g = topology::unit_disk_graph(pts, 0.1);
  // Perturb densities to kill all ties.
  auto metric = core::compute_densities(g);
  for (std::size_t i = 0; i < metric.size(); ++i) {
    metric[i] += 1e-9 * static_cast<double>(i * 2654435761u % 977);
  }
  const auto ids_a = topology::random_ids(g.node_count(), rng);
  const auto ids_b = topology::random_ids(g.node_count(), rng);
  const auto ra = core::cluster_by_metric(g, ids_a, metric, {});
  const auto rb = core::cluster_by_metric(g, ids_b, metric, {});
  EXPECT_EQ(ra.is_head, rb.is_head);
  EXPECT_EQ(ra.parent, rb.parent);
}

}  // namespace
}  // namespace ssmwn
