// Parameterized self-stabilization sweeps of the distributed protocol:
// convergence to the oracle across rule combinations, loss rates, and
// corruption severities.
#include <gtest/gtest.h>

#include <string>

#include "core/clustering.hpp"
#include "core/protocol.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "stabilize/convergence.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

struct ProtocolParam {
  bool use_dag;
  bool fusion;
  double tau;            // 1.0 = perfect medium
  double corruption;     // fraction of nodes scrambled mid-run
};

std::string param_name(const testing::TestParamInfo<ProtocolParam>& info) {
  const auto& p = info.param;
  std::string name;
  name += p.use_dag ? "dag_" : "plain_";
  name += p.fusion ? "fusion_" : "basic_";
  name += "tau" + std::to_string(static_cast<int>(p.tau * 100));
  name += "_cor" + std::to_string(static_cast<int>(p.corruption * 100));
  return name;
}

class ProtocolSweep : public testing::TestWithParam<ProtocolParam> {};

TEST_P(ProtocolSweep, ConvergesAndRecovers) {
  const auto& param = GetParam();
  util::Rng rng(0xFACE ^ static_cast<std::uint64_t>(param.tau * 1000) ^
                static_cast<std::uint64_t>(param.corruption * 100) ^
                (param.use_dag ? 2 : 0) ^ (param.fusion ? 4 : 0));
  const auto pts = topology::uniform_points(90, rng);
  const auto g = topology::unit_disk_graph(pts, 0.14);
  const auto ids = topology::random_ids(g.node_count(), rng);

  core::ProtocolConfig config;
  config.cluster.use_dag_ids = param.use_dag;
  config.cluster.fusion = param.fusion;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  config.cache_max_age = param.tau < 1.0 ? 16 : 8;
  core::DensityProtocol protocol(ids, config, rng.split());

  sim::PerfectDelivery perfect;
  sim::BernoulliDelivery lossy(param.tau < 1.0 ? param.tau : 1.0,
                               rng.split());
  sim::LossModel& medium =
      param.tau < 1.0 ? static_cast<sim::LossModel&>(lossy)
                      : static_cast<sim::LossModel&>(perfect);
  sim::Network network(g, protocol, medium);

  // Oracle head assignment (with the DAG, head identity depends on the
  // random names, so compare protocol-internal quiescence plus the
  // structural invariants instead of exact head values).
  core::ClusterOptions oracle_opt = config.cluster;
  oracle_opt.use_dag_ids = false;

  auto quiescent_and_sane = [&] {
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      const auto& s = protocol.state(p);
      if (!s.head_valid || !s.metric_valid || !s.parent_valid) return false;
    }
    // No two adjacent heads (the paper's basic sanity property).
    const auto flags = protocol.head_flags();
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      if (!flags[p]) continue;
      for (graph::NodeId q : g.neighbors(p)) {
        if (flags[q]) return false;
      }
    }
    // Exact oracle match when the DAG is off (deterministic target).
    if (!param.use_dag) {
      const auto oracle = core::cluster_density(g, ids, oracle_opt);
      for (graph::NodeId p = 0; p < g.node_count(); ++p) {
        if (protocol.state(p).head != oracle.head_id[p]) return false;
      }
    }
    return true;
  };

  auto settle = [&](std::size_t max_steps) {
    auto last = protocol.head_values();
    return stabilize::run_until_stable(
        [&] { network.step(); },
        [&] {
          auto now = protocol.head_values();
          const bool ok = quiescent_and_sane() && now == last;
          last = std::move(now);
          return ok;
        },
        /*confirm_steps=*/12, max_steps);
  };

  const auto cold = settle(param.tau < 1.0 ? 1500 : 300);
  ASSERT_TRUE(cold.converged) << "cold start did not settle";

  if (param.corruption > 0.0) {
    util::Rng chaos(rng());
    protocol.corrupt_fraction(chaos, param.corruption);
    const auto recovery = settle(param.tau < 1.0 ? 1500 : 300);
    EXPECT_TRUE(recovery.converged) << "did not recover from corruption";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ProtocolSweep,
    testing::Values(ProtocolParam{false, false, 1.0, 0.0},
                    ProtocolParam{false, false, 1.0, 0.5},
                    ProtocolParam{false, false, 1.0, 1.0},
                    ProtocolParam{false, true, 1.0, 0.5},
                    ProtocolParam{true, false, 1.0, 0.5},
                    ProtocolParam{true, true, 1.0, 1.0},
                    ProtocolParam{false, false, 0.7, 0.5},
                    ProtocolParam{false, true, 0.7, 0.0},
                    ProtocolParam{false, false, 0.4, 0.0}),
    param_name);

}  // namespace
}  // namespace ssmwn
