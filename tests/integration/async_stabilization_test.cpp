// Self-stabilization under asynchrony — the acceptance gate for the
// event-driven engine. The paper's theorem is stated for asynchronous
// networks; here the protocol starts from adversarial states (every
// shared variable scrambled, caches stuffed with garbage and phantom
// neighbors) and must converge to the synchronous oracle's clustering
// under the randomized and the adversarially unfair daemon, with
// virtual convergence time and message counts reported and sane.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/clustering.hpp"
#include "core/protocol.hpp"
#include "sim/async_network.hpp"
#include "sim/loss.hpp"
#include "stabilize/convergence.hpp"
#include "support/deployments.hpp"
#include "topology/ids.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

using testsupport::World;
using testsupport::make_world;

/// Runs the protocol from a corrupted state under `config` and checks
/// convergence to the oracle within `horizon_s` of virtual time.
stabilize::VirtualTimeReport stabilize_async(const World& w,
                                             sim::AsyncConfig config,
                                             sim::LossModel& medium,
                                             std::uint64_t seed,
                                             double horizon_s) {
  core::ProtocolConfig pconfig;
  pconfig.delta_hint = std::max<std::uint64_t>(2, w.graph.max_degree());
  pconfig.cache_max_age = 16;  // tolerate loss and slow victims
  core::DensityProtocol protocol(w.ids, pconfig, util::Rng(seed));
  util::Rng chaos(seed ^ 0xDEAD);
  protocol.corrupt_all(chaos);

  sim::AsyncNetwork network(w.graph, protocol, medium, config,
                            util::Rng(seed ^ 0xFEED));
  auto legitimate = [&] {
    for (graph::NodeId p = 0; p < w.graph.node_count(); ++p) {
      const auto& s = protocol.state(p);
      if (!s.head_valid || s.head != w.oracle.head_id[p]) return false;
    }
    return true;
  };
  return stabilize::run_until_stable_virtual(
      [&] {
        network.run_for(config.period_s);
        return network.now_seconds();
      },
      [&] { return network.messages_delivered(); }, legitimate,
      /*confirm_s=*/4.0 * config.period_s, horizon_s);
}

TEST(AsyncStabilization, RandomizedDaemonConvergesToOracle) {
  const auto w = make_world(130, 0.12, 31);
  sim::AsyncConfig config;  // randomized daemon by default
  sim::PerfectDelivery medium;
  const auto report = stabilize_async(w, config, medium, 17, 120.0);
  ASSERT_TRUE(report.converged);
  EXPECT_GT(report.stabilization_time_s, 0.0);
  EXPECT_GT(report.messages_to_converge, 0u);
  EXPECT_LE(report.messages_to_converge, report.messages_total);
  std::printf("randomized daemon: converged at t=%.2fs after %llu messages\n",
              report.stabilization_time_s,
              static_cast<unsigned long long>(report.messages_to_converge));
}

TEST(AsyncStabilization, UnfairDaemonConvergesToOracle) {
  const auto w = make_world(110, 0.13, 7);
  sim::AsyncConfig config;
  config.daemon = sim::DaemonKind::kUnfairRoundRobin;
  config.unfair_slowdown = 6.0;
  config.unfair_stride = 3;  // a third of the nodes run 6x slower
  sim::PerfectDelivery medium;
  // Victims broadcast every ~6 s; give the horizon room accordingly.
  const auto report = stabilize_async(w, config, medium, 23, 400.0);
  ASSERT_TRUE(report.converged);
  EXPECT_GT(report.messages_to_converge, 0u);
  std::printf("unfair daemon: converged at t=%.2fs after %llu messages\n",
              report.stabilization_time_s,
              static_cast<unsigned long long>(report.messages_to_converge));
}

TEST(AsyncStabilization, SurvivesLossAndLongDelays) {
  // tau = 0.75 Bernoulli loss plus link delays a substantial fraction
  // of the period: frames from different local rounds overlap in
  // flight, and stale information keeps arriving late. Convergence must
  // still happen — only slower.
  const auto w = make_world(100, 0.14, 13);
  sim::AsyncConfig config;
  config.link_delay_s = 0.4;
  config.link_delay_jitter = 0.9;
  sim::BernoulliDelivery medium(0.75, util::Rng(99));
  const auto report = stabilize_async(w, config, medium, 5, 600.0);
  ASSERT_TRUE(report.converged);
  EXPECT_GE(report.messages_total, report.messages_to_converge);
  std::printf("lossy/delayed: converged at t=%.2fs after %llu messages "
              "(%zu relapses)\n",
              report.stabilization_time_s,
              static_cast<unsigned long long>(report.messages_to_converge),
              report.relapses);
}

TEST(AsyncStabilization, SynchronousDaemonMatchesOracleToo) {
  // The synchronous daemon inside the event engine is the lockstep
  // model re-expressed as events; it must reach the same legitimate
  // configuration as the true stepper's oracle.
  const auto w = make_world(90, 0.14, 3);
  sim::AsyncConfig config;
  config.daemon = sim::DaemonKind::kSynchronous;
  config.link_delay_s = 0.01;
  sim::PerfectDelivery medium;
  const auto report = stabilize_async(w, config, medium, 29, 120.0);
  ASSERT_TRUE(report.converged);
}

}  // namespace
}  // namespace ssmwn
