// Paper-shape integration tests: miniature versions of the evaluation
// benches, asserted under ctest so the test suite alone demonstrates the
// reproduction claims (the benches re-run them at paper scale).
#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/dag_ids.hpp"
#include "core/protocol.hpp"
#include "metrics/cluster_metrics.hpp"
#include "routing/broadcast.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

TEST(PaperShapes, Table3DagBuildsInAboutTwoRounds) {
  util::Rng rng(1);
  util::RunningStats rounds;
  for (int trial = 0; trial < 15; ++trial) {
    const auto pts = topology::uniform_points(500, rng);
    const auto g = topology::unit_disk_graph(pts, 0.07);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto dag = core::build_dag_ids(g, ids, {}, rng);
    ASSERT_TRUE(dag.converged);
    rounds.add(static_cast<double>(dag.rounds));
  }
  EXPECT_GE(rounds.mean(), 1.0);
  EXPECT_LE(rounds.mean(), 3.0);
}

TEST(PaperShapes, Table4ClusterCountFallsWithRange) {
  util::Rng rng(2);
  util::RunningStats small_r, large_r;
  for (int trial = 0; trial < 8; ++trial) {
    const auto pts = topology::uniform_points(500, rng);
    const auto ids = topology::random_ids(pts.size(), rng);
    small_r.add(static_cast<double>(
        core::cluster_density(topology::unit_disk_graph(pts, 0.06), ids, {})
            .cluster_count()));
    large_r.add(static_cast<double>(
        core::cluster_density(topology::unit_disk_graph(pts, 0.12), ids, {})
            .cluster_count()));
  }
  EXPECT_GT(small_r.mean(), 1.7 * large_r.mean());
}

TEST(PaperShapes, Table4DagChangesNothingOnRandomIds) {
  // Table 4 reports *mean cluster counts* over many deployments, which
  // the DAG leaves essentially unchanged on random identifiers
  // (individual tie-broken head identities may flip, but the population
  // does not). Averaged like the paper's 1000-run means.
  util::Rng rng(3);
  util::RunningStats plain_counts, dag_counts;
  for (int trial = 0; trial < 15; ++trial) {
    const auto pts = topology::uniform_points(400, rng);
    const auto g = topology::unit_disk_graph(pts, 0.08);
    const auto ids = topology::random_ids(g.node_count(), rng);
    plain_counts.add(
        static_cast<double>(core::cluster_density(g, ids, {}).cluster_count()));
    const auto dag = core::build_dag_ids(g, ids, {}, rng);
    core::ClusterOptions opt;
    opt.use_dag_ids = true;
    dag_counts.add(static_cast<double>(
        core::cluster_density(g, ids, opt, dag.ids).cluster_count()));
  }
  EXPECT_NEAR(plain_counts.mean(), dag_counts.mean(),
              0.12 * plain_counts.mean());
}

TEST(PaperShapes, Table5GridCollapseAndDagRescue) {
  const std::size_t side = 20;
  const auto pts = topology::grid_points(side);
  const auto g = topology::unit_disk_graph(pts, 1.45 / side);
  const auto ids = topology::sequential_ids(g.node_count());
  const auto collapsed = core::cluster_density(g, ids, {});
  EXPECT_EQ(collapsed.cluster_count(), 1u);
  const auto stats = metrics::analyze(g, collapsed);
  EXPECT_GE(stats.max_tree_depth, side / 2);

  util::Rng rng(4);
  const auto dag = core::build_dag_ids(g, ids, {}, rng);
  core::ClusterOptions opt;
  opt.use_dag_ids = true;
  const auto rescued = core::cluster_density(g, ids, opt, dag.ids);
  EXPECT_GT(rescued.cluster_count(), 8u);
  EXPECT_LT(metrics::analyze(g, rescued).mean_tree_depth, 5.0);
}

TEST(PaperShapes, StabilizationLinearWithoutDagFlatWithIt) {
  // Steps to quiescence on adversarial lines of growing length.
  auto measure = [](std::size_t n, bool use_dag, std::uint64_t seed) {
    graph::Graph g(n);
    for (graph::NodeId p = 0; p + 1 < n; ++p) g.add_edge(p, p + 1);
    g.finalize();
    core::ProtocolConfig config;
    config.cluster.use_dag_ids = use_dag;
    config.delta_hint = 2;
    core::DensityProtocol protocol(topology::sequential_ids(n), config,
                                   util::Rng(seed));
    sim::PerfectDelivery loss;
    sim::Network network(g, protocol, loss);
    sim::HeadTrace trace;
    trace.observe(protocol.head_values());
    for (std::size_t step = 0; step < 4 * n; ++step) {
      network.step();
      trace.observe(protocol.head_values());
    }
    return trace.quiescent_since();
  };
  const auto plain_small = measure(12, false, 5);
  const auto plain_large = measure(48, false, 6);
  const auto dag_small = measure(12, true, 7);
  const auto dag_large = measure(48, true, 8);
  EXPECT_GE(plain_large, 3 * plain_small);  // ~linear growth
  EXPECT_LE(dag_large, dag_small + 10);     // ~flat
}

TEST(PaperShapes, FusionEnforcesHeadSpacing) {
  util::Rng rng(9);
  const auto pts = topology::uniform_points(500, rng);
  const auto g = topology::unit_disk_graph(pts, 0.07);
  const auto ids = topology::random_ids(g.node_count(), rng);
  core::ClusterOptions opt;
  opt.fusion = true;
  const auto r = core::cluster_density(g, ids, opt);
  const auto stats = metrics::analyze(g, r);
  if (stats.cluster_count >= 2 && stats.min_head_separation > 0) {
    EXPECT_GE(stats.min_head_separation, 3u);
  }
}

TEST(PaperShapes, ClusterizedBroadcastSavesTraffic) {
  util::Rng rng(10);
  const auto pts = topology::uniform_points(500, rng);
  const auto g = topology::unit_disk_graph(pts, 0.09);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto clustering = core::cluster_density(g, ids, {});
  const auto f = routing::flood(g, 0);
  const auto c = routing::cluster_broadcast(g, clustering, 0);
  EXPECT_EQ(c.covered, f.covered);
  EXPECT_LT(c.transmissions, f.transmissions);
}

}  // namespace
}  // namespace ssmwn
