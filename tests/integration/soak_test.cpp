// Soak tests: the protocol under a *repeating* adversary — periodic
// corruption, sustained loss, and node churn at the same time. After the
// adversary stops, the system must always converge (self-stabilization
// is exactly the guarantee that no reachable state is a trap).
#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/protocol.hpp"
#include "sim/churn.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "stabilize/convergence.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(Soak, RepeatedCorruptionNeverTrapsTheProtocol) {
  util::Rng rng(11);
  const auto pts = topology::uniform_points(90, rng);
  const auto g = topology::unit_disk_graph(pts, 0.14);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto oracle = core::cluster_density(g, ids, {});

  core::ProtocolConfig config;
  config.delta_hint = g.max_degree();
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);

  util::Rng chaos(12);
  for (int round = 0; round < 10; ++round) {
    // Hit a random fraction with arbitrary state, every 15 steps.
    protocol.corrupt_fraction(chaos, chaos.uniform(0.1, 0.9));
    network.run(15);
  }
  // Adversary stops; the system must converge to the oracle.
  network.run(60);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    EXPECT_EQ(protocol.state(p).head, oracle.head_id[p]) << "node " << p;
  }
}

TEST(Soak, LossPlusChurnPlusCorruption) {
  util::Rng rng(13);
  const auto pts = topology::uniform_points(70, rng);
  const auto base = topology::unit_disk_graph(pts, 0.16);
  const auto ids = topology::random_ids(base.node_count(), rng);

  core::ProtocolConfig config;
  config.delta_hint = base.max_degree();
  config.cache_max_age = 10;
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::BernoulliDelivery medium(0.75, rng.split());
  sim::Network network(base, protocol, medium);
  sim::NodeChurn churn(base.node_count(), 0.02, 0.3, rng.split());

  util::Rng chaos(14);
  std::vector<graph::Graph> snapshots;  // keep graphs alive for the net
  snapshots.reserve(40);
  for (int phase = 0; phase < 30; ++phase) {
    churn.step();
    snapshots.push_back(sim::mask_nodes(
        base, std::span<const char>(churn.alive().data(),
                                    churn.alive().size())));
    network.set_graph(snapshots.back());
    if (phase % 7 == 3) protocol.corrupt_fraction(chaos, 0.3);
    network.run(5);
  }

  // Storm over: all nodes back up, medium still lossy. Must re-converge
  // to the oracle of the full topology.
  network.set_graph(base);
  const auto oracle = core::cluster_density(base, ids, {});
  const auto report = stabilize::run_until_stable(
      [&] { network.step(); },
      [&] {
        for (graph::NodeId p = 0; p < base.node_count(); ++p) {
          const auto& s = protocol.state(p);
          if (!s.head_valid || s.head != oracle.head_id[p]) return false;
        }
        return true;
      },
      /*confirm_steps=*/15, /*max_steps=*/1500);
  EXPECT_TRUE(report.converged);
}

TEST(Soak, ClosureUnderSilentSteps) {
  // Closure half of self-stabilization: once legitimate, the state never
  // changes again without external perturbation — verified over a long
  // quiet run with the trace recorder.
  util::Rng rng(15);
  const auto pts = topology::uniform_points(120, rng);
  const auto g = topology::unit_disk_graph(pts, 0.12);
  const auto ids = topology::random_ids(g.node_count(), rng);

  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = g.max_degree();
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(100);  // certainly converged

  sim::HeadTrace trace;
  trace.observe(protocol.head_values());
  auto dag_before = protocol.dag_id_values();
  auto parents_before = protocol.parent_values();
  network.run(200);
  trace.observe(protocol.head_values());
  EXPECT_TRUE(trace.changes().empty());
  EXPECT_EQ(protocol.dag_id_values(), dag_before);
  EXPECT_EQ(protocol.parent_values(), parents_before);
}

}  // namespace
}  // namespace ssmwn
