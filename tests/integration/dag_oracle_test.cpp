// Exact-match oracle test for the DAG mode: when the distributed
// protocol is seeded with a known locally-unique coloring, the N1 rule
// keeps it (newId never redraws a clean name), so the protocol must
// converge to *exactly* the configuration the offline solver computes
// for those same DAG names — head for head, parent for parent.
#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/dag_ids.hpp"
#include "core/protocol.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(DagOracle, SeededProtocolMatchesOfflineSolverExactly) {
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(120, rng);
    const auto g = topology::unit_disk_graph(pts, 0.12);
    const auto ids = topology::random_ids(g.node_count(), rng);

    // Offline coloring + offline clustering under it.
    const auto dag = core::build_dag_ids(g, ids, {}, rng);
    ASSERT_TRUE(dag.converged);
    core::ClusterOptions opt;
    opt.use_dag_ids = true;
    const auto oracle = core::cluster_density(g, ids, opt, dag.ids);

    // Distributed protocol seeded with the same names. The name space
    // must match the offline one so no node deems its name out of range.
    core::ProtocolConfig config;
    config.cluster.use_dag_ids = true;
    config.dag_name_space = dag.name_space;
    config.delta_hint = g.max_degree();
    core::DensityProtocol protocol(ids, config, rng.split());
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      protocol.mutable_state(p).dag_id = dag.ids[p];
    }

    sim::PerfectDelivery loss;
    sim::Network network(g, protocol, loss);
    network.run(80);

    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      const auto& s = protocol.state(p);
      EXPECT_EQ(s.dag_id, dag.ids[p]) << "name redrawn at " << p;
      ASSERT_TRUE(s.head_valid && s.parent_valid);
      EXPECT_EQ(s.head, oracle.head_id[p]) << "trial " << trial;
      EXPECT_EQ(s.parent, ids[oracle.parent[p]]) << "trial " << trial;
    }
  }
}

TEST(DagOracle, SeededProtocolSurvivesCorruptionOfEverythingButNames) {
  // Corrupt the election variables (density, head, parent) of every
  // node, leaving DAG names and caches alone: the protocol must return
  // to exactly the oracle configuration. (Full corruption including
  // caches may plant phantom name collisions that legitimately trigger
  // renaming, after which a *different but valid* configuration is
  // reached — that case is covered by the protocol sweep tests.)
  util::Rng rng(2);
  const auto pts = topology::uniform_points(100, rng);
  const auto g = topology::unit_disk_graph(pts, 0.13);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto dag = core::build_dag_ids(g, ids, {}, rng);
  core::ClusterOptions opt;
  opt.use_dag_ids = true;
  const auto oracle = core::cluster_density(g, ids, opt, dag.ids);

  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.dag_name_space = dag.name_space;
  config.delta_hint = g.max_degree();
  core::DensityProtocol protocol(ids, config, rng.split());
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    protocol.mutable_state(p).dag_id = dag.ids[p];
  }
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(60);

  util::Rng chaos(3);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    auto s = protocol.mutable_state(p);
    s.metric = chaos.uniform(0.0, 8.0);
    s.metric_valid = chaos.chance(0.8);
    s.head = chaos.below(2 * g.node_count());
    s.head_valid = chaos.chance(0.8);
    s.parent = chaos.below(2 * g.node_count());
    s.parent_valid = chaos.chance(0.8);
  }
  network.run(80);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    EXPECT_EQ(protocol.state(p).head, oracle.head_id[p]);
  }
}

}  // namespace
}  // namespace ssmwn
