// Protocol-under-mobility re-convergence — the first end-to-end
// exercise of the paper's actual theorem: the distributed protocol runs
// *continuously* while the topology changes underneath it, and after
// every perturbation it must re-converge to the legitimate
// configuration of the new graph, on both execution engines, without
// ever being restarted.
#include <gtest/gtest.h>

#include <vector>

#include "core/clustering.hpp"
#include "core/legitimacy.hpp"
#include "core/protocol.hpp"
#include "graph/dynamic.hpp"
#include "mobility/mobility.hpp"
#include "sim/async_network.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "stabilize/convergence.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/incremental.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

core::DensityProtocol make_protocol(const graph::Graph& g,
                                    const topology::IdAssignment& ids,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  return core::DensityProtocol(ids, config, util::Rng(seed));
}

TEST(LiveReconvergence, SyncEngineRecoversAcrossMobilityWindows) {
  util::Rng rng(20050612);
  const std::size_t n = 120;
  const double radius = 0.16;
  auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  mobility::RandomDirection mover(n, {0.0, 3.0}, 1000.0, rng.split());

  topology::LiveTopology topo(points, radius);
  auto protocol = make_protocol(topo.graph(), ids, 11);
  sim::PerfectDelivery medium;
  sim::Network network(topo.graph(), protocol, medium, 1);

  core::ClusteringResult oracle = core::cluster_density(topo.graph(), ids, {});
  core::LegitimacyCheck legitimacy(topo.graph(), protocol, &oracle);
  auto settle = [&](std::size_t max_steps) {
    legitimacy.reset();
    return stabilize::run_until_stable([&] { network.step(); },
                                       [&] { return legitimacy.check(); },
                                       /*confirm_steps=*/3, max_steps);
  };

  ASSERT_TRUE(settle(200).converged) << "cold start never converged";

  std::size_t reconverged = 0;
  for (int window = 0; window < 12; ++window) {
    mover.step(points, 2.0);
    const auto& delta = topo.update(points);
    network.apply_topology_delta(delta);
    oracle = core::cluster_density(topo.graph(), ids, {});
    if (settle(200).converged) ++reconverged;
  }
  // The protocol keeps running across perturbations; every window must
  // re-reach the new oracle within the budget.
  EXPECT_EQ(reconverged, 12u);
}

TEST(LiveReconvergence, RemovedEdgeInvalidatesCachesImmediately) {
  // Two nodes in range, protocol converged, then the link is severed:
  // the topology-aware hook must evict the neighbor entries at once
  // rather than letting them age out.
  const topology::IdAssignment ids{10, 20, 30};
  std::vector<topology::Point> points{{0.1, 0.1}, {0.15, 0.1}, {0.9, 0.9}};
  topology::LiveTopology topo(points, 0.1);
  ASSERT_EQ(topo.graph().edge_count(), 1u);

  auto protocol = make_protocol(topo.graph(), ids, 3);
  sim::PerfectDelivery medium;
  sim::Network network(topo.graph(), protocol, medium, 1);
  network.run(5);
  ASSERT_TRUE(protocol.state(0).cache.contains(ids[1]));
  ASSERT_TRUE(protocol.state(1).cache.contains(ids[0]));

  points[1] = {0.5, 0.5};  // walks out of range
  const auto& delta = topo.update(points);
  ASSERT_EQ(delta.removed.size(), 1u);
  network.apply_topology_delta(delta);
  EXPECT_FALSE(protocol.state(0).cache.contains(ids[1]));
  EXPECT_FALSE(protocol.state(1).cache.contains(ids[0]));
}

TEST(LiveReconvergence, AsyncEngineRecoversWithScheduledPerturbations) {
  util::Rng rng(77);
  const std::size_t n = 80;
  const double radius = 0.2;
  auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  mobility::RandomDirection mover(n, {0.0, 3.0}, 1000.0, rng.split());

  topology::LiveTopology topo(points, radius);
  auto protocol = make_protocol(topo.graph(), ids, 5);
  util::Rng chaos(99);
  protocol.corrupt_all(chaos);
  sim::PerfectDelivery medium;
  sim::AsyncConfig config;
  config.period_s = 1.0;
  sim::AsyncNetwork network(topo.graph(), protocol, medium, config,
                            util::Rng(123));

  core::ClusteringResult oracle = core::cluster_density(topo.graph(), ids, {});
  core::LegitimacyCheck legitimacy(topo.graph(), protocol, &oracle);
  auto settle = [&] {
    legitimacy.reset();
    return sim::settle_async(
        network, [&] { return legitimacy.check(); }, /*horizon_periods=*/150);
  };
  ASSERT_TRUE(settle().converged) << "cold start never converged";

  std::size_t reconverged = 0;
  for (int window = 0; window < 6; ++window) {
    mover.step(points, 2.0);
    network.schedule_topology_update(
        network.now(), [&]() -> const graph::EdgeDelta& {
          return topo.update(points);
        });
    // Fire the perturbation (events at time ≤ now, including the one
    // just scheduled) so the oracle below sees the new graph.
    network.run_until(network.now());
    oracle = core::cluster_density(topo.graph(), ids, {});
    if (settle().converged) ++reconverged;
  }
  EXPECT_EQ(reconverged, 6u);
  EXPECT_EQ(network.topology_updates(), 6u);
}

TEST(LiveReconvergence, AsyncTraceIsDeterministicWithTopologyEvents) {
  auto run_trace = [](std::vector<sim::Event>& trace) {
    util::Rng rng(31);
    const std::size_t n = 40;
    auto points = topology::uniform_points(n, rng);
    const auto ids = topology::random_ids(n, rng);
    mobility::RandomDirection mover(n, {0.0, 5.0}, 1000.0, rng.split());

    topology::LiveTopology topo(points, 0.25);
    auto protocol = make_protocol(topo.graph(), ids, 1);
    sim::BernoulliDelivery medium(0.9, util::Rng(7));
    sim::AsyncConfig config;
    config.period_s = 1.0;
    sim::AsyncNetwork network(topo.graph(), protocol, medium, config,
                              util::Rng(2));
    network.set_event_log(&trace);
    for (int window = 0; window < 5; ++window) {
      network.run_for(4.0);
      mover.step(points, 2.0);
      network.schedule_topology_update(
          network.now(), [&]() -> const graph::EdgeDelta& {
            return topo.update(points);
          });
    }
    network.run_for(4.0);
  };
  std::vector<sim::Event> a, b;
  run_trace(a);
  run_trace(b);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::any_of(a.begin(), a.end(), [](const sim::Event& e) {
    return e.kind == sim::EventKind::kTopology;
  }));
}

TEST(LiveReconvergence, InFlightFrameOnSeveredLinkIsDropped) {
  // Sender broadcasts, then the link breaks while the frame is still in
  // flight (long link delay): the frame must expire, not deliver.
  const topology::IdAssignment ids{1, 2};
  std::vector<topology::Point> points{{0.2, 0.2}, {0.25, 0.2}};
  topology::LiveTopology topo(points, 0.1);
  ASSERT_EQ(topo.graph().edge_count(), 1u);

  auto protocol = make_protocol(topo.graph(), ids, 9);
  sim::PerfectDelivery medium;
  sim::AsyncConfig config;
  config.period_s = 1.0;
  config.period_jitter = 0.0;
  config.link_delay_s = 10.0;  // frames hang in flight for 10 s
  config.link_delay_jitter = 0.0;
  config.daemon = sim::DaemonKind::kSynchronous;
  sim::AsyncNetwork network(topo.graph(), protocol, medium, config,
                            util::Rng(4));

  network.run_for(0.5);  // both nodes broadcast at t=0; deliveries at t=10
  ASSERT_GT(network.frames_in_flight(), 0u);
  points[1] = {0.8, 0.8};
  network.schedule_topology_update(network.now(),
                                   [&]() -> const graph::EdgeDelta& {
                                     return topo.update(points);
                                   });
  network.run_for(1.0);  // applies the update; link is now gone
  network.run_for(15.0);  // the t=10 deliveries fire... and must expire
  EXPECT_GE(network.messages_expired(), 2u);
  EXPECT_EQ(network.messages_delivered(), 0u);
  EXPECT_FALSE(protocol.state(0).cache.contains(ids[1]));
  EXPECT_FALSE(protocol.state(1).cache.contains(ids[0]));
}

}  // namespace
}  // namespace ssmwn
