// Integration: the hierarchy and routing layers working together, plus
// error-path coverage for the hierarchy accessor API.
#include <gtest/gtest.h>

#include "core/hierarchy.hpp"
#include "routing/broadcast.hpp"
#include "routing/routing.hpp"
#include "topology/generators.hpp"
#include "topology/hotspots.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(HierarchyRouting, LevelZeroClusteringDrivesValidRoutes) {
  util::Rng rng(1);
  const auto pts = topology::uniform_points(350, rng);
  const auto g = topology::unit_disk_graph(pts, 0.09);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto hierarchy = core::build_hierarchy(g, ids, {}, 3);
  ASSERT_GE(hierarchy.depth(), 1u);

  routing::HierarchicalRouter router(g, hierarchy.levels[0].clustering);
  routing::FlatRouter flat(g);
  for (int i = 0; i < 40; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.index(g.node_count()));
    const auto dst = static_cast<graph::NodeId>(rng.index(g.node_count()));
    const auto reference = flat.route(src, dst);
    if (!reference.ok()) continue;
    const auto r = router.route(src, dst);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(routing::valid_route(g, r, src, dst));
  }
}

TEST(HierarchyRouting, HeadAtLevelRejectsOutOfRange) {
  util::Rng rng(2);
  const auto pts = topology::uniform_points(100, rng);
  const auto g = topology::unit_disk_graph(pts, 0.12);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto hierarchy = core::build_hierarchy(g, ids, {}, 2);
  EXPECT_THROW((void)hierarchy.head_at_level(0, hierarchy.depth()),
               std::out_of_range);
}

TEST(HierarchyRouting, TopLevelBroadcastCoversOverlay) {
  // Broadcasting over the level-1 overlay graph must reach every level-0
  // head of the overlay's component: the hierarchy's backbone is usable
  // as a dissemination structure.
  util::Rng rng(3);
  const auto pts = topology::uniform_points(500, rng);
  const auto g = topology::unit_disk_graph(pts, 0.08);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto hierarchy = core::build_hierarchy(g, ids, {}, 2);
  if (hierarchy.depth() < 2) GTEST_SKIP() << "degenerate hierarchy";
  const auto& overlay = hierarchy.levels[1].graph;
  if (overlay.node_count() == 0) GTEST_SKIP();
  const auto cost = routing::flood(overlay, 0);
  // Coverage equals the overlay component of node 0; with a connected
  // deployment that is the whole overlay.
  EXPECT_GE(cost.covered, 1u);
  EXPECT_LE(cost.covered, overlay.node_count());
  EXPECT_EQ(cost.transmissions, cost.covered);
}

TEST(HierarchyRouting, HotspotCityEndToEnd) {
  // The city_mesh example's pipeline as a test: hotspots -> hierarchy ->
  // routing -> broadcast, all structurally consistent.
  util::Rng rng(4);
  const auto pts = topology::matern_cluster_points(
      {.parent_intensity = 12, .mean_children = 40, .radius = 0.06}, rng);
  if (pts.size() < 50) GTEST_SKIP();
  const auto g = topology::unit_disk_graph(pts, 0.08);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto hierarchy = core::build_hierarchy(g, ids, {}, 3);
  ASSERT_GE(hierarchy.depth(), 1u);
  const auto& clustering = hierarchy.levels[0].clustering;

  routing::HierarchicalRouter router(g, clustering);
  routing::FlatRouter flat(g);
  const auto stats = routing::compare_routers(g, flat, router, 100, rng);
  EXPECT_EQ(stats.failures, 0u);

  const auto f = routing::flood(g, 0);
  const auto c = routing::cluster_broadcast(g, clustering, 0);
  EXPECT_EQ(c.covered, f.covered);
  EXPECT_LE(c.transmissions, f.transmissions);
}

}  // namespace
}  // namespace ssmwn
