// Unit tests for BFS, components, eccentricity, diameter, and the 2-hop
// neighborhood used by the fusion rule.
#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace ssmwn {
namespace {

graph::Graph path(std::size_t n) {
  graph::Graph g(n);
  for (graph::NodeId p = 0; p + 1 < n; ++p) g.add_edge(p, p + 1);
  g.finalize();
  return g;
}

TEST(Algorithms, BfsDistancesOnPath) {
  const auto g = path(5);
  const auto dist = graph::bfs_distances(g, 0);
  for (graph::NodeId p = 0; p < 5; ++p) EXPECT_EQ(dist[p], p);
}

TEST(Algorithms, BfsUnreachableOnDisconnected) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const auto dist = graph::bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], graph::kUnreachable);
  EXPECT_EQ(dist[3], graph::kUnreachable);
}

TEST(Algorithms, BfsWithinRespectsMembership) {
  // Path 0-1-2-3-4 where node 2 is excluded: 3 and 4 unreachable from 0.
  const auto g = path(5);
  std::vector<char> allowed{1, 1, 0, 1, 1};
  const auto dist = graph::bfs_distances_within(g, 0, allowed);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], graph::kUnreachable);
  EXPECT_EQ(dist[3], graph::kUnreachable);
}

TEST(Algorithms, BfsWithinFromExcludedSource) {
  const auto g = path(3);
  std::vector<char> allowed{0, 1, 1};
  const auto dist = graph::bfs_distances_within(g, 0, allowed);
  EXPECT_EQ(dist[0], graph::kUnreachable);
}

TEST(Algorithms, ConnectedComponents) {
  graph::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.finalize();
  const auto label = graph::connected_components(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_NE(label[5], label[0]);
  EXPECT_NE(label[5], label[3]);
  EXPECT_EQ(graph::component_count(g), 3u);
  EXPECT_FALSE(graph::is_connected(g));
}

TEST(Algorithms, EccentricityAndDiameter) {
  const auto g = path(6);
  EXPECT_EQ(graph::eccentricity(g, 0), 5u);
  EXPECT_EQ(graph::eccentricity(g, 2), 3u);
  EXPECT_EQ(graph::diameter(g), 5u);
}

TEST(Algorithms, DiameterOfCompleteGraphIsOne) {
  graph::Graph g(5);
  for (graph::NodeId a = 0; a < 5; ++a) {
    for (graph::NodeId b = a + 1; b < 5; ++b) g.add_edge(a, b);
  }
  g.finalize();
  EXPECT_EQ(graph::diameter(g), 1u);
}

TEST(Algorithms, TwoHopNeighborhood) {
  const auto g = path(6);
  // Node 2 on a path: N² = {0, 1, 3, 4}.
  const auto two = graph::two_hop_neighborhood(g, 2);
  const std::vector<graph::NodeId> expected{0, 1, 3, 4};
  EXPECT_EQ(two, expected);
}

TEST(Algorithms, TwoHopExcludesSelfAndIsSortedUnique) {
  // Triangle + pendant: N²(0) from 0-1,0-2,1-2,2-3.
  const auto g = graph::from_edges(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  const auto two = graph::two_hop_neighborhood(g, 0);
  const std::vector<graph::NodeId> expected{1, 2, 3};
  EXPECT_EQ(two, expected);
}

TEST(Algorithms, TwoHopOfIsolatedNodeIsEmpty) {
  graph::Graph g(2);
  EXPECT_TRUE(graph::two_hop_neighborhood(g, 0).empty());
}

}  // namespace
}  // namespace ssmwn
