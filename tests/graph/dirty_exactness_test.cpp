// Exactness fuzz for DynamicGraph::dirty_nodes(): for random graphs and
// random valid deltas, the reported dirty set must equal the
// brute-force before/after adjacency diff — *exactly*. A false negative
// (a node whose row changed but is not reported) would let the dirty
// stepper skip a node whose inputs moved, silently corrupting the
// bit-identity guarantee; a false positive would only waste work, but
// the contract is exact so drift is caught either way.
//
// SSMWN_DIRTY_FUZZ scales the trial count (soak runs raise it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/dynamic.hpp"
#include "graph/graph.hpp"
#include "topology/generators.hpp"
#include "topology/udg.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

using Adjacency = std::vector<std::vector<graph::NodeId>>;

Adjacency snapshot(const graph::Graph& g) {
  Adjacency rows(g.node_count());
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    const auto nbrs = g.neighbors(p);
    rows[p].assign(nbrs.begin(), nbrs.end());
  }
  return rows;
}

/// Brute force: every node whose neighbor row is not byte-identical
/// across the patch.
std::vector<graph::NodeId> adjacency_diff(const Adjacency& before,
                                          const Adjacency& after) {
  std::vector<graph::NodeId> dirty;
  for (graph::NodeId p = 0; p < before.size(); ++p) {
    if (before[p] != after[p]) dirty.push_back(p);
  }
  return dirty;
}

/// A random *valid* delta against `g`: sampled node pairs become
/// removals when the edge exists and additions when it does not, with
/// duplicates discarded (EdgeDelta requires disjoint, duplicate-free,
/// (low, high)-sorted pair lists).
graph::EdgeDelta random_delta(const graph::Graph& g, util::Rng& rng,
                              std::size_t attempts) {
  graph::EdgeDelta delta;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> seen;
  for (std::size_t k = 0; k < attempts; ++k) {
    const auto a = static_cast<graph::NodeId>(rng.below(g.node_count()));
    const auto b = static_cast<graph::NodeId>(rng.below(g.node_count()));
    if (a == b) continue;
    const std::pair<graph::NodeId, graph::NodeId> e{std::min(a, b),
                                                    std::max(a, b)};
    if (std::find(seen.begin(), seen.end(), e) != seen.end()) continue;
    seen.push_back(e);
    (g.adjacent(e.first, e.second) ? delta.removed : delta.added).push_back(e);
  }
  std::sort(delta.added.begin(), delta.added.end());
  std::sort(delta.removed.begin(), delta.removed.end());
  return delta;
}

std::vector<graph::NodeId> to_vector(std::span<const graph::NodeId> s) {
  return {s.begin(), s.end()};
}

TEST(DirtyExactness, FuzzAgainstBruteForceAdjacencyDiff) {
  const int rounds = util::env_int("SSMWN_DIRTY_FUZZ", 60);
  util::Rng rng(0xD1237);
  for (int round = 0; round < rounds; ++round) {
    // Fresh geometric graph each round; a chain of deltas against it.
    const std::size_t n = 20 + rng.below(100);
    const double radius = 0.08 + rng.uniform(0.0, 0.14);
    const auto pts = topology::uniform_points(n, rng);
    graph::DynamicGraph dyn(topology::unit_disk_graph(pts, radius));

    for (int patch = 0; patch < 8; ++patch) {
      const Adjacency before = snapshot(dyn.view());
      const auto delta =
          random_delta(dyn.view(), rng, 1 + rng.below(2 * n));
      dyn.apply_delta(delta);
      const Adjacency after = snapshot(dyn.view());

      const auto expected = adjacency_diff(before, after);
      const auto reported = to_vector(dyn.dirty_nodes());

      // No false negatives, ever — and no false positives either: the
      // contract is the exact changed-row set, ascending.
      ASSERT_EQ(reported, expected)
          << "round=" << round << " patch=" << patch << " n=" << n
          << " radius=" << radius << " |added|=" << delta.added.size()
          << " |removed|=" << delta.removed.size();
    }
  }
}

TEST(DirtyExactness, EmptyDeltaReportsNoDirtyNodes) {
  util::Rng rng(5);
  const auto pts = topology::uniform_points(40, rng);
  graph::DynamicGraph dyn(topology::unit_disk_graph(pts, 0.2));
  dyn.apply_delta(graph::EdgeDelta{});
  EXPECT_TRUE(dyn.dirty_nodes().empty());
}

TEST(DirtyExactness, ResetClearsTheDirtySet) {
  util::Rng rng(6);
  const auto pts = topology::uniform_points(30, rng);
  graph::DynamicGraph dyn(topology::unit_disk_graph(pts, 0.25));
  const auto delta = random_delta(dyn.view(), rng, 20);
  dyn.apply_delta(delta);
  ASSERT_FALSE(dyn.dirty_nodes().empty());
  dyn.reset(topology::unit_disk_graph(pts, 0.25));
  EXPECT_TRUE(dyn.dirty_nodes().empty());
}

}  // namespace
}  // namespace ssmwn
