// Shard-plan invariants: the partitioner must hand sim::ShardedNetwork
// a monotone cover of a true permutation for every input shape —
// including the degenerate ones (n = 0, shards > nodes, single-node
// shards) the sharded sweeps must survive without empty-range UB — and
// the renumbering must preserve adjacency exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "topology/generators.hpp"
#include "topology/point.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(Partition, ContiguousPlanIsIdentityPermutation) {
  const auto plan = graph::plan_contiguous_shards(10, 4);
  ASSERT_TRUE(plan.valid());
  EXPECT_EQ(plan.node_count(), 10u);
  EXPECT_EQ(plan.shard_count(), 4u);
  for (graph::NodeId p = 0; p < 10; ++p) {
    EXPECT_EQ(plan.to_new[p], p);
    EXPECT_EQ(plan.to_old[p], p);
  }
  // Equal chunks: sizes differ by at most one and cover [0, n).
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const std::size_t size = plan.bounds[s + 1] - plan.bounds[s];
    EXPECT_GE(size, 10u / 4u);
    EXPECT_LE(size, 10u / 4u + 1u);
  }
}

TEST(Partition, DegenerateShapesAreClamped) {
  // n = 0: one empty shard, still a valid cover.
  {
    const auto plan = graph::plan_contiguous_shards(0, 8);
    ASSERT_TRUE(plan.valid());
    EXPECT_EQ(plan.shard_count(), 1u);
    EXPECT_EQ(plan.bounds.front(), 0u);
    EXPECT_EQ(plan.bounds.back(), 0u);
  }
  // shards = 0 is promoted to 1.
  {
    const auto plan = graph::plan_contiguous_shards(5, 0);
    ASSERT_TRUE(plan.valid());
    EXPECT_EQ(plan.shard_count(), 1u);
  }
  // shards > nodes clamps to single-node shards.
  {
    const auto plan = graph::plan_contiguous_shards(3, 100);
    ASSERT_TRUE(plan.valid());
    EXPECT_EQ(plan.shard_count(), 3u);
    for (std::size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(plan.bounds[s + 1] - plan.bounds[s], 1u);
    }
  }
}

TEST(Partition, ShardOfAgreesWithBounds) {
  const auto plan = graph::plan_contiguous_shards(23, 7);
  ASSERT_TRUE(plan.valid());
  for (graph::NodeId p = 0; p < 23; ++p) {
    const std::size_t s = plan.shard_of(p);
    EXPECT_GE(static_cast<std::size_t>(p), plan.bounds[s]);
    EXPECT_LT(static_cast<std::size_t>(p), plan.bounds[s + 1]);
  }
}

TEST(Partition, SpatialPlanIsValidAndCellMajor) {
  util::Rng rng(42);
  const auto points = topology::uniform_points(200, rng);
  const double radius = 0.1;
  const auto plan = graph::plan_spatial_shards(points, radius, 8);
  ASSERT_TRUE(plan.valid());
  EXPECT_EQ(plan.shard_count(), 8u);

  // Cell-major: the cell index sequence along the new numbering must be
  // non-decreasing (same geometry as the UDG bucket grid), with ties
  // broken by ascending original index.
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  for (const auto& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const auto cells_x = static_cast<std::size_t>((max_x - min_x) / radius) + 1;
  const auto cells_y = static_cast<std::size_t>((max_y - min_y) / radius) + 1;
  auto cell_of = [&](const topology::Point& p) {
    auto cx = static_cast<std::size_t>((p.x - min_x) / radius);
    auto cy = static_cast<std::size_t>((p.y - min_y) / radius);
    return std::min(cy, cells_y - 1) * cells_x + std::min(cx, cells_x - 1);
  };
  for (std::size_t i = 1; i < plan.to_old.size(); ++i) {
    const auto prev = cell_of(points[plan.to_old[i - 1]]);
    const auto cur = cell_of(points[plan.to_old[i]]);
    ASSERT_LE(prev, cur) << "not cell-major at new index " << i;
    if (prev == cur) {
      ASSERT_LT(plan.to_old[i - 1], plan.to_old[i])
          << "cell tie not broken by original index at new index " << i;
    }
  }
}

TEST(Partition, SpatialPlanRejectsNonPositiveRadius) {
  util::Rng rng(1);
  const auto points = topology::uniform_points(10, rng);
  EXPECT_THROW(graph::plan_spatial_shards(points, 0.0, 2),
               std::invalid_argument);
  EXPECT_THROW(graph::plan_spatial_shards(points, -1.0, 2),
               std::invalid_argument);
}

TEST(Partition, PermuteGraphPreservesAdjacencyExactly) {
  util::Rng rng(7);
  const auto points = topology::uniform_points(150, rng);
  const double radius = 0.12;
  const auto g = topology::unit_disk_graph(points, radius);
  const auto plan = graph::plan_spatial_shards(points, radius, 5);
  ASSERT_TRUE(plan.valid());
  const auto h = graph::permute_graph(g, plan);

  ASSERT_EQ(h.node_count(), g.node_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    // h's row for to_new[p], pulled back through to_old, must be g's
    // row for p (both sorted ascending by CSR construction).
    std::vector<graph::NodeId> expected(g.neighbors(p).begin(),
                                        g.neighbors(p).end());
    std::vector<graph::NodeId> actual;
    for (const graph::NodeId r : h.neighbors(plan.to_new[p])) {
      actual.push_back(plan.to_old[r]);
    }
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(actual, expected) << "adjacency differs at node " << p;
  }
}

TEST(Partition, PermutedReordersPayloadVectors) {
  const graph::ShardPlan plan{{2, 0, 1}, {1, 2, 0}, {0, 3}};
  ASSERT_TRUE(plan.valid());
  const std::vector<int> values{10, 20, 30};
  const auto out = graph::permuted(plan, values);
  // result[new] = values[to_old[new]].
  EXPECT_EQ(out, (std::vector<int>{20, 30, 10}));
}

}  // namespace
}  // namespace ssmwn
