// CSR adjacency vs an independent reference representation.
//
// The CSR arrays are the hot path of the step engine; these tests pin
// them to a straightforward set-based adjacency built from the same
// random edge list, and check the mirror-edge index the parallel
// delivery phase relies on.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace ssmwn {
namespace {

struct Reference {
  std::vector<std::set<graph::NodeId>> adjacency;
  std::size_t edge_count = 0;
};

/// G(n, p) built simultaneously into a Graph and a reference structure.
std::pair<graph::Graph, Reference> random_pair(std::size_t n, double p,
                                               util::Rng& rng) {
  graph::Graph g(n);
  Reference ref;
  ref.adjacency.resize(n);
  for (graph::NodeId a = 0; a < n; ++a) {
    for (graph::NodeId b = a + 1; b < n; ++b) {
      if (rng.chance(p)) {
        g.add_edge(a, b);
        ref.adjacency[a].insert(b);
        ref.adjacency[b].insert(a);
        ++ref.edge_count;
      }
    }
  }
  g.finalize();
  return {std::move(g), std::move(ref)};
}

TEST(Csr, MatchesReferenceAdjacencyOnRandomGraphs) {
  util::Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 50 + rng.index(150);
    const double p = rng.uniform(0.0, 0.15);
    const auto [g, ref] = random_pair(n, p, rng);

    ASSERT_EQ(g.node_count(), n);
    ASSERT_EQ(g.edge_count(), ref.edge_count);
    for (graph::NodeId v = 0; v < n; ++v) {
      const auto row = g.neighbors(v);
      ASSERT_EQ(row.size(), ref.adjacency[v].size()) << "node " << v;
      ASSERT_EQ(g.degree(v), ref.adjacency[v].size());
      // std::set iterates in sorted order, matching the sorted CSR row.
      std::size_t i = 0;
      for (graph::NodeId w : ref.adjacency[v]) {
        EXPECT_EQ(row[i], w) << "node " << v << " slot " << i;
        EXPECT_TRUE(g.adjacent(v, w));
        EXPECT_TRUE(g.adjacent(w, v));
        ++i;
      }
    }
  }
}

TEST(Csr, OffsetsPartitionTheFlatArray) {
  util::Rng rng(7);
  const auto [g, ref] = random_pair(120, 0.05, rng);
  const auto offsets = g.csr_offsets();
  const auto flat = g.csr_neighbors();
  ASSERT_EQ(offsets.size(), g.node_count() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), flat.size());
  EXPECT_EQ(flat.size(), 2 * g.edge_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const auto row = g.neighbors(v);
    EXPECT_EQ(row.data(), flat.data() + offsets[v]);
    EXPECT_EQ(row.size(), offsets[v + 1] - offsets[v]);
  }
}

TEST(Csr, MirrorEdgeIsAnInvolutionAcrossDirections) {
  util::Rng rng(11);
  const auto [g, ref] = random_pair(100, 0.08, rng);
  const auto offsets = g.csr_offsets();
  const auto flat = g.csr_neighbors();
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    for (std::size_t e = offsets[p]; e < offsets[p + 1]; ++e) {
      const graph::NodeId q = flat[e];
      const std::size_t m = g.mirror_edge(e);
      // m lies in q's row and points back at p.
      ASSERT_GE(m, offsets[q]);
      ASSERT_LT(m, offsets[q + 1]);
      EXPECT_EQ(flat[m], p);
      EXPECT_EQ(g.mirror_edge(m), e);
    }
  }
}

TEST(Csr, ReopeningAFinalizedGraphPreservesEdges) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  g.add_edge(2, 3);  // staging was released; must be rebuilt from CSR
  g.finalize();
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 2));
  EXPECT_TRUE(g.adjacent(2, 3));
  EXPECT_FALSE(g.adjacent(0, 3));
}

}  // namespace
}  // namespace ssmwn
