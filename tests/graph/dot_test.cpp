// Tests for the DOT exporter.
#include "graph/dot.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "topology/ids.hpp"

namespace ssmwn {
namespace {

TEST(Dot, PlainGraphContainsAllNodesAndEdges) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto dot = graph::to_dot(g);
  EXPECT_NE(dot.find("graph ssmwn {"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("n2"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
  // Each undirected edge appears exactly once.
  EXPECT_EQ(dot.find("n1 -- n0"), std::string::npos);
}

TEST(Dot, ClusterOverlayMarksHeadsAndTreeEdges) {
  const auto g = graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  const auto r = core::cluster_density(g, topology::sequential_ids(4), {});
  graph::DotOptions options;
  options.cluster_of = r.head_index;
  options.is_head = r.is_head;
  options.parent = r.parent;
  const auto dot = graph::to_dot(g, options);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=\"#"), std::string::npos);
}

TEST(Dot, PositionsArePinnedWhenProvided) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  graph::DotOptions options;
  options.positions = {{0.5, 0.25}, {1.0, 1.0}};
  options.scale = 4.0;
  const auto dot = graph::to_dot(g, options);
  EXPECT_NE(dot.find("pos=\"2,1!\""), std::string::npos);
  EXPECT_NE(dot.find("pos=\"4,4!\""), std::string::npos);
}

TEST(Dot, SameClusterSameColor) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  graph::DotOptions options;
  options.cluster_of = {2, 2, 2};  // everyone in cluster rooted at 2
  const auto dot = graph::to_dot(g, options);
  // Exactly one palette color is used three times.
  const auto first = dot.find("fillcolor=\"#");
  ASSERT_NE(first, std::string::npos);
  const auto color = dot.substr(first + 11, 9);
  std::size_t count = 0;
  for (auto pos = dot.find(color); pos != std::string::npos;
       pos = dot.find(color, pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace ssmwn
