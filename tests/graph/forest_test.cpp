// Unit tests for parent-forest validation and tree metrics.
#include "graph/forest.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph.hpp"

namespace ssmwn {
namespace {

TEST(Forest, SingleTreeDepths) {
  // 0 <- 1 <- 2 <- 3 and 0 <- 4.
  graph::ParentForest forest({0, 0, 1, 2, 0});
  EXPECT_EQ(forest.tree_count(), 1u);
  EXPECT_TRUE(forest.is_root(0));
  EXPECT_EQ(forest.depth(0), 0u);
  EXPECT_EQ(forest.depth(1), 1u);
  EXPECT_EQ(forest.depth(3), 3u);
  EXPECT_EQ(forest.depth(4), 1u);
  EXPECT_EQ(forest.tree_depth(0), 3u);
  for (graph::NodeId p = 0; p < 5; ++p) EXPECT_EQ(forest.root(p), 0u);
}

TEST(Forest, MultipleTrees) {
  graph::ParentForest forest({0, 0, 2, 2, 3});
  EXPECT_EQ(forest.tree_count(), 2u);
  EXPECT_EQ(forest.root(1), 0u);
  EXPECT_EQ(forest.root(4), 2u);
  EXPECT_EQ(forest.depth(4), 2u);
  const auto members = forest.members(2);
  EXPECT_EQ(members.size(), 3u);
}

TEST(Forest, DetectsTwoCycle) {
  EXPECT_THROW(graph::ParentForest({1, 0}), std::invalid_argument);
}

TEST(Forest, DetectsLongCycle) {
  EXPECT_THROW(graph::ParentForest({1, 2, 3, 0}), std::invalid_argument);
}

TEST(Forest, DetectsCycleBehindChain) {
  // 0 -> 1 -> 2 -> 1: a tail leading into a cycle.
  EXPECT_THROW(graph::ParentForest({1, 2, 1}), std::invalid_argument);
}

TEST(Forest, RejectsOutOfRangeParent) {
  EXPECT_THROW(graph::ParentForest({0, 5}), std::invalid_argument);
}

TEST(Forest, AllRoots) {
  graph::ParentForest forest({0, 1, 2});
  EXPECT_EQ(forest.tree_count(), 3u);
  for (graph::NodeId p = 0; p < 3; ++p) {
    EXPECT_TRUE(forest.is_root(p));
    EXPECT_EQ(forest.tree_depth(p), 0u);
  }
}

TEST(Forest, RespectsGraph) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(graph::ParentForest({0, 0, 1}).respects_graph(g));
  // Parent edge 2 -> 0 does not exist in the path graph.
  EXPECT_FALSE(graph::ParentForest({0, 0, 0}).respects_graph(g));
}

TEST(Forest, MemoizedResolutionAcrossSharedChains) {
  // Deep chain visited from multiple entry points exercises the
  // memoization path: 0 <- 1 <- ... <- 9, plus 10..19 all pointing into
  // the middle of the chain.
  std::vector<graph::NodeId> parent(20);
  parent[0] = 0;
  for (graph::NodeId p = 1; p < 10; ++p) parent[p] = p - 1;
  for (graph::NodeId p = 10; p < 20; ++p) parent[p] = 5;
  graph::ParentForest forest(parent);
  for (graph::NodeId p = 10; p < 20; ++p) {
    EXPECT_EQ(forest.root(p), 0u);
    EXPECT_EQ(forest.depth(p), 6u);
  }
  EXPECT_EQ(forest.tree_depth(0), 9u);
}

TEST(Forest, EmptyForest) {
  graph::ParentForest forest(std::vector<graph::NodeId>{});
  EXPECT_EQ(forest.tree_count(), 0u);
}

}  // namespace
}  // namespace ssmwn
