// DynamicGraph: CSR patching from edge deltas must be indistinguishable
// from rebuilding the graph from the resulting edge list.
#include "graph/dynamic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

using Edge = std::pair<graph::NodeId, graph::NodeId>;

graph::Graph build(std::size_t n, const std::set<Edge>& edges) {
  graph::Graph g(n);
  for (const auto& [a, b] : edges) g.add_edge(a, b);
  g.finalize();
  return g;
}

void expect_same(const graph::Graph& got, const graph::Graph& want) {
  ASSERT_EQ(got.node_count(), want.node_count());
  ASSERT_EQ(got.edge_count(), want.edge_count());
  EXPECT_EQ(got.edges(), want.edges());
  for (graph::NodeId p = 0; p < got.node_count(); ++p) {
    const auto a = got.neighbors(p);
    const auto b = want.neighbors(p);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "row " << p;
  }
}

TEST(DynamicGraph, AppliesAddsAndRemoves) {
  graph::DynamicGraph dyn(build(5, {{0, 1}, {0, 2}, {1, 2}, {3, 4}}));
  graph::EdgeDelta delta;
  delta.added = {{0, 3}, {2, 4}};
  delta.removed = {{0, 2}, {3, 4}};
  dyn.apply_delta(delta);
  expect_same(dyn.view(), build(5, {{0, 1}, {0, 3}, {1, 2}, {2, 4}}));
  // Every endpoint of a changed edge is dirty, ascending, once.
  const auto dirty = dyn.dirty_nodes();
  EXPECT_EQ(std::vector<graph::NodeId>(dirty.begin(), dirty.end()),
            (std::vector<graph::NodeId>{0, 2, 3, 4}));
}

TEST(DynamicGraph, EmptyDeltaIsANoOp) {
  graph::DynamicGraph dyn(build(3, {{0, 1}}));
  dyn.apply_delta({});
  expect_same(dyn.view(), build(3, {{0, 1}}));
  EXPECT_TRUE(dyn.dirty_nodes().empty());
}

TEST(DynamicGraph, RejectsBogusDeltas) {
  graph::DynamicGraph dyn(build(4, {{0, 1}, {2, 3}}));
  graph::EdgeDelta missing;
  missing.removed = {{0, 2}};  // not an edge
  EXPECT_THROW(dyn.apply_delta(missing), std::logic_error);
  graph::EdgeDelta dup;
  dup.added = {{0, 1}};  // already present
  EXPECT_THROW(dyn.apply_delta(dup), std::logic_error);
  graph::EdgeDelta backwards;
  backwards.added = {{1, 0}};  // not (low, high)
  EXPECT_THROW(dyn.apply_delta(backwards), std::logic_error);
  graph::EdgeDelta range;
  range.added = {{0, 9}};
  EXPECT_THROW(dyn.apply_delta(range), std::out_of_range);
}

TEST(DynamicGraph, MirrorIndexStaysConsistentAfterPatch) {
  graph::DynamicGraph dyn(build(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}}));
  (void)dyn.view().mirror_edge(0);  // force the lazy build
  graph::EdgeDelta delta;
  delta.added = {{2, 3}};
  delta.removed = {{0, 1}};
  dyn.apply_delta(delta);
  const auto& g = dyn.view();
  const auto offsets = g.csr_offsets();
  const auto flat = g.csr_neighbors();
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    for (std::size_t e = offsets[p]; e < offsets[p + 1]; ++e) {
      const std::size_t m = g.mirror_edge(e);
      EXPECT_EQ(flat[m], p);  // mirror of p->q points back at p
    }
  }
}

TEST(DynamicGraph, RandomizedEquivalenceWithRebuild) {
  util::Rng rng(20050612);
  const std::size_t n = 40;
  std::set<Edge> edges;
  for (int i = 0; i < 120; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.below(n));
    const auto b = static_cast<graph::NodeId>(rng.below(n));
    if (a != b) edges.insert({std::min(a, b), std::max(a, b)});
  }
  graph::DynamicGraph dyn(build(n, edges));
  for (int round = 0; round < 50; ++round) {
    graph::EdgeDelta delta;
    // Remove a few present edges, add a few absent ones.
    for (const auto& e : edges) {
      if (rng.below(8) == 0) delta.removed.push_back(e);
    }
    for (int i = 0; i < 10; ++i) {
      const auto a = static_cast<graph::NodeId>(rng.below(n));
      const auto b = static_cast<graph::NodeId>(rng.below(n));
      if (a == b) continue;
      const Edge e{std::min(a, b), std::max(a, b)};
      if (!edges.count(e)) delta.added.push_back(e);
    }
    std::sort(delta.added.begin(), delta.added.end());
    delta.added.erase(std::unique(delta.added.begin(), delta.added.end()),
                      delta.added.end());
    std::sort(delta.removed.begin(), delta.removed.end());
    for (const auto& e : delta.removed) edges.erase(e);
    for (const auto& e : delta.added) edges.insert(e);
    dyn.apply_delta(delta);
    expect_same(dyn.view(), build(n, edges));
    // Dirty set == endpoints of the delta.
    std::set<graph::NodeId> want_dirty;
    for (const auto& [a, b] : delta.added) {
      want_dirty.insert(a);
      want_dirty.insert(b);
    }
    for (const auto& [a, b] : delta.removed) {
      want_dirty.insert(a);
      want_dirty.insert(b);
    }
    const auto dirty = dyn.dirty_nodes();
    EXPECT_EQ(std::vector<graph::NodeId>(dirty.begin(), dirty.end()),
              std::vector<graph::NodeId>(want_dirty.begin(), want_dirty.end()));
  }
}

}  // namespace
}  // namespace ssmwn
