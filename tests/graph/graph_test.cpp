// Unit tests for the undirected graph substrate.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ssmwn {
namespace {

TEST(Graph, EmptyGraph) {
  graph::Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, AddEdgeIsBidirectional) {
  graph::Graph g(3);
  g.add_edge(0, 2);
  g.finalize();
  EXPECT_TRUE(g.adjacent(0, 2));
  EXPECT_TRUE(g.adjacent(2, 0));
  EXPECT_FALSE(g.adjacent(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, NeighborsAreSortedAndExcludeSelf) {
  graph::Graph g(5);
  g.add_edge(3, 4);
  g.add_edge(3, 0);
  g.add_edge(3, 2);
  g.finalize();
  const auto n3 = g.neighbors(3);
  ASSERT_EQ(n3.size(), 3u);
  EXPECT_EQ(n3[0], 0u);
  EXPECT_EQ(n3[1], 2u);
  EXPECT_EQ(n3[2], 4u);
}

TEST(Graph, RejectsSelfLoop) {
  graph::Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  graph::Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
}

TEST(Graph, RejectsDuplicateEdgeAtFinalize) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(g.finalize(), std::logic_error);
}

TEST(Graph, MaxDegree) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.finalize();
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, EdgesListsEachPairOnce) {
  const auto g = graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& [a, b] : edges) EXPECT_LT(a, b);
}

TEST(Graph, FromEdgesBuilder) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_FALSE(g.adjacent(0, 2));
}

}  // namespace
}  // namespace ssmwn
