// Unit tests for the baseline clustering algorithms (lowest-id,
// highest-degree, Max-Min d-cluster).
#include "cluster/baselines.hpp"
#include "cluster/max_min.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/density.hpp"
#include "graph/algorithms.hpp"
#include "graph/forest.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(LowestId, SmallestIdInNeighborhoodWins) {
  // Path 0-1-2-3 with ids {5, 1, 7, 2}: node 1 (id 1) heads {0,1,2};
  // node 3 (id 2) is dominated by... its neighbor 2 has id 7 > 2, so 3
  // heads itself.
  const auto g = graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const topology::IdAssignment ids{5, 1, 7, 2};
  const auto r = cluster::cluster_lowest_id(g, ids);
  EXPECT_TRUE(r.is_head[1]);
  EXPECT_TRUE(r.is_head[3]);
  EXPECT_FALSE(r.is_head[0]);
  EXPECT_FALSE(r.is_head[2]);
  EXPECT_EQ(r.parent[0], 1u);
  EXPECT_EQ(r.parent[2], 1u);  // joins id-1 neighbor, not id-2 non-neighbor
}

TEST(LowestId, NoAdjacentHeads) {
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(250, rng);
    const auto g = topology::unit_disk_graph(pts, 0.08);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto r = cluster::cluster_lowest_id(g, ids);
    for (graph::NodeId p : r.heads) {
      for (graph::NodeId q : g.neighbors(p)) {
        EXPECT_FALSE(r.is_head[q]);
      }
    }
    EXPECT_TRUE(r.forest().respects_graph(g));
  }
}

TEST(HighestDegree, CenterOfStarWins) {
  graph::Graph g(5);
  for (graph::NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  g.finalize();
  const topology::IdAssignment ids{9, 0, 1, 2, 3};  // center has worst id
  const auto r = cluster::cluster_highest_degree(g, ids);
  EXPECT_TRUE(r.is_head[0]);
  EXPECT_EQ(r.cluster_count(), 1u);
}

TEST(HighestDegree, DegreeTiesFallToSmallestId) {
  // Cycle: all degrees equal; the smallest id must win its neighborhood.
  graph::Graph g(5);
  for (graph::NodeId p = 0; p < 5; ++p) {
    g.add_edge(p, static_cast<graph::NodeId>((p + 1) % 5));
  }
  g.finalize();
  const topology::IdAssignment ids{4, 0, 3, 1, 2};
  const auto r = cluster::cluster_highest_degree(g, ids);
  EXPECT_TRUE(r.is_head[1]);  // id 0
}

TEST(MaxMin, HeadsWithinDHops) {
  util::Rng rng(2);
  for (const std::size_t d : {1u, 2u, 3u}) {
    const auto pts = topology::uniform_points(200, rng);
    const auto g = topology::unit_disk_graph(pts, 0.1);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto r = cluster::cluster_max_min(g, ids, d);
    const auto forest = r.forest();
    EXPECT_TRUE(forest.respects_graph(g));
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      // Every node is at most d parent hops from its head (members joined
      // along BFS trees inside the cluster).
      EXPECT_LE(forest.depth(p), d) << "node " << p << " d=" << d;
    }
  }
}

TEST(MaxMin, IsolatedCliqueElectsLargestId) {
  // Floodmax fills the clique with the largest id; rule 1 then elects it.
  graph::Graph g(4);
  for (graph::NodeId a = 0; a < 4; ++a) {
    for (graph::NodeId b = a + 1; b < 4; ++b) g.add_edge(a, b);
  }
  g.finalize();
  const topology::IdAssignment ids{2, 9, 4, 1};
  const auto r = cluster::cluster_max_min(g, ids, 2);
  EXPECT_EQ(r.cluster_count(), 1u);
  EXPECT_TRUE(r.is_head[1]);  // id 9
}

TEST(MaxMin, RejectsBadArguments) {
  const auto g = graph::from_edges(3, {{0, 1}});
  EXPECT_THROW(cluster::cluster_max_min(g, topology::sequential_ids(2), 2),
               std::invalid_argument);
  EXPECT_THROW(cluster::cluster_max_min(g, topology::sequential_ids(3), 0),
               std::invalid_argument);
}

TEST(Baselines, DensityValueIsLocalToTheTwoHopNeighborhood) {
  // The locality property behind the density metric's robustness story:
  // d_p depends only on edges with both endpoints in {p} ∪ N_p, so
  // removing a node that is neither in N_p nor adjacent to N_p cannot
  // change d_p. (The comparative churn claim vs the degree metric is a
  // statistical statement measured by bench_mobility_stability, not
  // asserted here.)
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = topology::uniform_points(150, rng);
    const auto g = topology::unit_disk_graph(pts, 0.1);
    const auto before = core::compute_densities(g);
    // Remove one node entirely (simulate a far-away failure) by
    // rebuilding without it.
    const graph::NodeId victim =
        static_cast<graph::NodeId>(rng.index(pts.size()));
    std::vector<topology::Point> reduced;
    std::vector<graph::NodeId> old_index;
    for (graph::NodeId p = 0; p < pts.size(); ++p) {
      if (p == victim) continue;
      reduced.push_back(pts[p]);
      old_index.push_back(p);
    }
    const auto g2 = topology::unit_disk_graph(reduced, 0.1);
    const auto after = core::compute_densities(g2);
    const auto two_hop = graph::two_hop_neighborhood(g, victim);
    for (graph::NodeId q = 0; q < g2.node_count(); ++q) {
      const graph::NodeId orig = old_index[q];
      const bool in_blast_zone =
          std::find(two_hop.begin(), two_hop.end(), orig) != two_hop.end();
      if (!in_blast_zone) {
        EXPECT_DOUBLE_EQ(after[q], before[orig])
            << "trial " << trial << " node " << orig;
      }
    }
  }
}

}  // namespace
}  // namespace ssmwn
