// Tests for the k-hop clustering generalization.
#include "cluster/khop.hpp"

#include <gtest/gtest.h>

#include "core/density.hpp"
#include "graph/algorithms.hpp"
#include "graph/forest.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(Khop, KEqualsOneContainsAllLocalMaxima) {
  // The greedy ≺-descending election always elects the paper's local
  // maxima (nothing larger is near them to dominate first), plus extra
  // heads for 1-hop coverage — so it is a superset, and every non-head
  // has a head within 1 hop (maximality).
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(250, rng);
    const auto g = topology::unit_disk_graph(pts, 0.09);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto base = core::cluster_density(g, ids, {});
    const auto khop = cluster::cluster_khop_density(g, ids, 1);
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      if (base.is_head[p]) {
        EXPECT_TRUE(khop.is_head[p]) << "local maximum " << p << " dropped";
      }
    }
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      if (khop.is_head[p]) continue;
      bool head_adjacent = false;
      for (graph::NodeId q : g.neighbors(p)) {
        head_adjacent = head_adjacent || khop.is_head[q];
      }
      EXPECT_TRUE(head_adjacent) << "node " << p << " uncovered at k=1";
    }
  }
}

TEST(Khop, MembersWithinKHopsOfTheirHead) {
  util::Rng rng(2);
  for (const std::size_t k : {1u, 2u, 3u}) {
    const auto pts = topology::uniform_points(300, rng);
    const auto g = topology::unit_disk_graph(pts, 0.08);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto r = cluster::cluster_khop_density(g, ids, k);
    const auto forest = r.forest();
    EXPECT_TRUE(forest.respects_graph(g));
    // Membership follows a global multi-source BFS, so depth can exceed
    // k only for nodes no head could absorb within its greedy ball;
    // heads themselves must pairwise respect the k separation.
    for (graph::NodeId h : r.heads) {
      const auto dist = graph::bfs_distances(g, h);
      for (graph::NodeId other : r.heads) {
        if (other == h) continue;
        if (dist[other] != graph::kUnreachable) {
          EXPECT_GT(dist[other], k) << "heads " << h << " and " << other;
        }
      }
    }
  }
}

TEST(Khop, LargerKGivesFewerClusters) {
  util::Rng rng(3);
  const auto pts = topology::uniform_points(400, rng);
  const auto g = topology::unit_disk_graph(pts, 0.08);
  const auto ids = topology::random_ids(g.node_count(), rng);
  std::size_t previous = g.node_count() + 1;
  for (const std::size_t k : {1u, 2u, 3u, 4u}) {
    const auto r = cluster::cluster_khop_density(g, ids, k);
    EXPECT_LE(r.cluster_count(), previous) << "k=" << k;
    previous = r.cluster_count();
  }
}

TEST(Khop, EveryNodeAssignedAndForestValid) {
  util::Rng rng(4);
  const auto pts = topology::uniform_points(200, rng);
  const auto g = topology::unit_disk_graph(pts, 0.07);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto r = cluster::cluster_khop_density(g, ids, 2);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    EXPECT_NE(r.head_index[p], graph::kInvalidNode);
    EXPECT_EQ(r.head_index[p], r.head_index[r.parent[p]]);
  }
}

TEST(Khop, IsolatedNodesBecomeHeads) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  const auto r =
      cluster::cluster_khop_density(g, topology::sequential_ids(3), 2);
  EXPECT_TRUE(r.is_head[2]);
}

TEST(Khop, RejectsBadArguments) {
  const auto g = graph::from_edges(2, {{0, 1}});
  EXPECT_THROW(
      cluster::cluster_khop_density(g, topology::sequential_ids(2), 0),
      std::invalid_argument);
  EXPECT_THROW(
      cluster::cluster_khop_density(g, topology::sequential_ids(1), 2),
      std::invalid_argument);
}

TEST(Khop, PathGraphKTwo) {
  // Path 0..6 with a metric peaking at node 3: one head, everyone within
  // 3 hops joins it (multi-source BFS covers the whole path).
  graph::Graph g(7);
  for (graph::NodeId p = 0; p + 1 < 7; ++p) g.add_edge(p, p + 1);
  g.finalize();
  const std::vector<double> metric{0, 1, 2, 9, 2, 1, 0};
  const auto r = cluster::cluster_khop_metric(
      g, topology::sequential_ids(7), metric, 2);
  EXPECT_TRUE(r.is_head[3]);
  // Nodes within 2 hops of node 3 cannot be heads; 0 and 6 are 3 hops
  // away — outside the ball — so the greedy pass may elect them.
  EXPECT_FALSE(r.is_head[1]);
  EXPECT_FALSE(r.is_head[2]);
  EXPECT_FALSE(r.is_head[4]);
  EXPECT_FALSE(r.is_head[5]);
}

}  // namespace
}  // namespace ssmwn
