// The worked example of the paper (Figure 1 / Table 1), reconstructed as
// the unique-up-to-relabeling 9-node graph consistent with every number
// the paper states:
//
//   * N_a = {d, i} with links {(a,d), (a,i)}           (given verbatim)
//   * N_b = {c, d, h, i} with links {(b,c), (b,d), (b,h), (b,i), (h,i)}
//   * the per-node neighbor/link counts and densities of Table 1
//   * the narrative: F(c)=b, F(b)=h, H(h)=h; d_j = d_f with j's Id
//     smaller, so F(f)=j, H(j)=j; final heads are exactly {h, j}.
//
// Edge set: a-d a-i b-c b-d b-h b-i h-i e-i d-f d-j f-j.
// Table 1 check: densities a:1, b:1.25, c:1, d:1.25, e:1, f:1.5, h:1.5,
// i:1.25, j:1.5.
#pragma once

#include <array>

#include "graph/graph.hpp"
#include "topology/ids.hpp"

namespace ssmwn::testsupport {

// Dense indices for the named nodes.
inline constexpr graph::NodeId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5,
                               H = 6, I = 7, J = 8;

inline graph::Graph paper_example_graph() {
  return graph::from_edges(9, {{A, D},
                               {A, I},
                               {B, C},
                               {B, D},
                               {B, H},
                               {B, I},
                               {H, I},
                               {E, I},
                               {D, F},
                               {D, J},
                               {F, J}});
}

// Protocol identifiers honoring the paper's one constraint (Id_j smallest
// among the tied pair {f, j}); the rest are arbitrary but fixed.
inline topology::IdAssignment paper_example_ids() {
  return topology::IdAssignment{10, 11, 12, 13, 14, 15, 16, 17, 1};
}

// Table 1, in index order a..j.
inline constexpr std::array<double, 9> kPaperDensities = {
    1.0, 1.25, 1.0, 1.25, 1.0, 1.5, 1.5, 1.25, 1.5};

}  // namespace ssmwn::testsupport
