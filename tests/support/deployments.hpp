// Shared deployment builders for the test suites.
//
// Half a dozen suites used to copy-paste the same three lines — uniform
// points, random ids, unit-disk graph, sometimes the oracle clustering
// on top. One definition here (next to the paper-example fixture in
// paper_example.hpp) so the verify, integration, routing, and energy
// suites draw identical worlds from identical seeds instead of each
// keeping a private near-duplicate.
#pragma once

#include <cstdint>

#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/point.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn::testsupport {

/// A random unit-disk deployment plus everything most tests want next:
/// the protocol identifiers and (optionally) the synchronous oracle.
struct World {
  std::vector<topology::Point> points;
  graph::Graph graph;
  topology::IdAssignment ids;
  core::ClusteringResult oracle;  // filled only by make_world
};

/// Deployment without the oracle (for suites that cluster differently
/// or not at all). Draw order: points first, then ids — matching the
/// CLI's make_deployment and campaign::execute_run, so a seed names the
/// same world everywhere.
inline World make_deployment(std::size_t n, double radius,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  World w;
  w.points = topology::uniform_points(n, rng);
  w.graph = topology::unit_disk_graph(w.points, radius);
  w.ids = topology::random_ids(n, rng);
  return w;
}

/// Deployment plus the basic-variant density oracle.
inline World make_world(std::size_t n, double radius, std::uint64_t seed,
                        const core::ClusterOptions& options = {}) {
  World w = make_deployment(n, radius, seed);
  w.oracle = core::cluster_density(w.graph, w.ids, options);
  return w;
}

}  // namespace ssmwn::testsupport
