// Unit tests for the guarded-rule engine and the convergence detector.
#include <gtest/gtest.h>

#include "stabilize/convergence.hpp"
#include "stabilize/rules.hpp"

namespace ssmwn {
namespace {

struct Counter {
  int value = 0;
  int fires = 0;
};

TEST(Rules, FiresOnlyEnabledGuards) {
  stabilize::RuleEngine<Counter> engine;
  engine
      .add(
          "increment-below-3",
          [](const Counter& c) { return c.value < 3; },
          [](Counter& c) {
            ++c.value;
            ++c.fires;
          })
      .add(
          "never", [](const Counter&) { return false; },
          [](Counter& c) { c.value = 100; });
  Counter c;
  EXPECT_EQ(engine.sweep(c), 1u);
  EXPECT_EQ(c.value, 1);
  EXPECT_EQ(engine.rule_count(), 2u);
  EXPECT_EQ(engine.rule_name(0), "increment-below-3");
}

TEST(Rules, SweepRunsRulesInRegistrationOrder) {
  stabilize::RuleEngine<Counter> engine;
  engine
      .add(
          "double", [](const Counter&) { return true; },
          [](Counter& c) { c.value *= 2; })
      .add(
          "add-one", [](const Counter&) { return true; },
          [](Counter& c) { c.value += 1; });
  Counter c;
  c.value = 3;
  engine.sweep(c);
  EXPECT_EQ(c.value, 7);  // (3*2)+1, not (3+1)*2
}

TEST(Rules, RunToFixpoint) {
  stabilize::RuleEngine<Counter> engine;
  engine.add(
      "increment-below-5", [](const Counter& c) { return c.value < 5; },
      [](Counter& c) { ++c.value; });
  Counter c;
  const auto sweeps = engine.run_to_fixpoint(c, 100);
  EXPECT_EQ(c.value, 5);
  EXPECT_EQ(sweeps, 5u);
}

TEST(Rules, RunToFixpointHonorsBound) {
  stabilize::RuleEngine<Counter> engine;
  engine.add(
      "always", [](const Counter&) { return true; },
      [](Counter& c) { ++c.value; });
  Counter c;
  EXPECT_EQ(engine.run_to_fixpoint(c, 10), 10u);
  EXPECT_EQ(c.value, 10);
}

TEST(Convergence, DetectsStabilizationStep) {
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; }, [&] { return t >= 4; }, /*confirm_steps=*/3,
      /*max_steps=*/50);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.stabilization_step, 4u);
  EXPECT_EQ(report.relapses, 0u);
}

TEST(Convergence, AlreadyLegitimate) {
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; }, [&] { return true; }, 3, 50);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.stabilization_step, 0u);
}

TEST(Convergence, FlickeringIsNotConvergence) {
  // Legitimacy alternates: never holds for 3 consecutive steps.
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; }, [&] { return t % 2 == 0; }, 3, 40);
  EXPECT_FALSE(report.converged);
  EXPECT_GT(report.relapses, 5u);
  EXPECT_EQ(report.steps_executed, 40u);
}

TEST(Convergence, RelapseThenSettle) {
  // Legitimate at steps 2..3, relapse, then legitimate from 6 on.
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; },
      [&] { return (t >= 2 && t <= 3) || t >= 6; }, 4, 100);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.stabilization_step, 6u);
  EXPECT_EQ(report.relapses, 1u);
}

TEST(Convergence, TimesOut) {
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; }, [&] { return false; }, 2, 15);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.steps_executed, 15u);
}

}  // namespace
}  // namespace ssmwn
