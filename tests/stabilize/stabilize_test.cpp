// Unit tests for the guarded-rule engine and the convergence detector.
#include <gtest/gtest.h>

#include "stabilize/convergence.hpp"
#include "stabilize/rules.hpp"

namespace ssmwn {
namespace {

struct Counter {
  int value = 0;
  int fires = 0;
};

TEST(Rules, FiresOnlyEnabledGuards) {
  stabilize::RuleEngine<Counter> engine;
  engine
      .add(
          "increment-below-3",
          [](const Counter& c) { return c.value < 3; },
          [](Counter& c) {
            ++c.value;
            ++c.fires;
          })
      .add(
          "never", [](const Counter&) { return false; },
          [](Counter& c) { c.value = 100; });
  Counter c;
  EXPECT_EQ(engine.sweep(c), 1u);
  EXPECT_EQ(c.value, 1);
  EXPECT_EQ(engine.rule_count(), 2u);
  EXPECT_EQ(engine.rule_name(0), "increment-below-3");
}

TEST(Rules, SweepRunsRulesInRegistrationOrder) {
  stabilize::RuleEngine<Counter> engine;
  engine
      .add(
          "double", [](const Counter&) { return true; },
          [](Counter& c) { c.value *= 2; })
      .add(
          "add-one", [](const Counter&) { return true; },
          [](Counter& c) { c.value += 1; });
  Counter c;
  c.value = 3;
  engine.sweep(c);
  EXPECT_EQ(c.value, 7);  // (3*2)+1, not (3+1)*2
}

TEST(Rules, RunToFixpoint) {
  stabilize::RuleEngine<Counter> engine;
  engine.add(
      "increment-below-5", [](const Counter& c) { return c.value < 5; },
      [](Counter& c) { ++c.value; });
  Counter c;
  const auto sweeps = engine.run_to_fixpoint(c, 100);
  EXPECT_EQ(c.value, 5);
  EXPECT_EQ(sweeps, 5u);
}

TEST(Rules, RunToFixpointHonorsBound) {
  stabilize::RuleEngine<Counter> engine;
  engine.add(
      "always", [](const Counter&) { return true; },
      [](Counter& c) { ++c.value; });
  Counter c;
  EXPECT_EQ(engine.run_to_fixpoint(c, 10), 10u);
  EXPECT_EQ(c.value, 10);
}

TEST(Convergence, DetectsStabilizationStep) {
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; }, [&] { return t >= 4; }, /*confirm_steps=*/3,
      /*max_steps=*/50);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.stabilization_step, 4u);
  EXPECT_EQ(report.relapses, 0u);
}

TEST(Convergence, AlreadyLegitimate) {
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; }, [&] { return true; }, 3, 50);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.stabilization_step, 0u);
}

TEST(Convergence, FlickeringIsNotConvergence) {
  // Legitimacy alternates: never holds for 3 consecutive steps.
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; }, [&] { return t % 2 == 0; }, 3, 40);
  EXPECT_FALSE(report.converged);
  EXPECT_GT(report.relapses, 5u);
  EXPECT_EQ(report.steps_executed, 40u);
}

TEST(Convergence, RelapseThenSettle) {
  // Legitimate at steps 2..3, relapse, then legitimate from 6 on.
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; },
      [&] { return (t >= 2 && t <= 3) || t >= 6; }, 4, 100);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.stabilization_step, 6u);
  EXPECT_EQ(report.relapses, 1u);
}

TEST(Convergence, TimesOut) {
  int t = 0;
  const auto report = stabilize::run_until_stable(
      [&] { ++t; }, [&] { return false; }, 2, 15);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.steps_executed, 15u);
}

TEST(VirtualConvergence, ReportsTimeAndMessagesAtRunStart) {
  // Virtual clock advances 0.5 s per check; legitimacy holds from
  // t = 2.0 on; 10 messages arrive per interval. Confirmation needs
  // 1.5 s of continuous legitimacy.
  double now = 0.0;
  std::uint64_t messages = 0;
  const auto report = stabilize::run_until_stable_virtual(
      [&] {
        now += 0.5;
        messages += 10;
        return now;
      },
      [&] { return messages; }, [&] { return now >= 2.0; },
      /*confirm_s=*/1.5, /*max_time_s=*/100.0);
  EXPECT_TRUE(report.converged);
  EXPECT_DOUBLE_EQ(report.stabilization_time_s, 2.0);
  EXPECT_EQ(report.messages_to_converge, 40u);  // count at t = 2.0
  EXPECT_GE(report.messages_total, report.messages_to_converge);
}

TEST(VirtualConvergence, RelapseRestartsTheClock) {
  // Legitimate on checks 2..3 (t = 1.0..1.5), relapse, then legitimate
  // from t = 3.0 on; confirm_s = 1.0 so the first spell is too short.
  double now = 0.0;
  const auto report = stabilize::run_until_stable_virtual(
      [&] { return now += 0.5; }, [&] { return 0ULL; },
      [&] { return (now >= 1.0 && now <= 1.5) || now >= 3.0; },
      /*confirm_s=*/1.0, /*max_time_s=*/50.0);
  EXPECT_TRUE(report.converged);
  EXPECT_DOUBLE_EQ(report.stabilization_time_s, 3.0);
  EXPECT_EQ(report.relapses, 1u);
}

TEST(VirtualConvergence, HorizonBoundsSimulatedTime) {
  double now = 0.0;
  const auto report = stabilize::run_until_stable_virtual(
      [&] { return now += 1.0; }, [&] { return 7ULL; },
      [&] { return false; }, 2.0, 10.0);
  EXPECT_FALSE(report.converged);
  EXPECT_DOUBLE_EQ(report.time_simulated_s, 10.0);
  EXPECT_EQ(report.messages_total, 7u);
  EXPECT_GT(report.checks, 0u);
}

TEST(VirtualConvergence, WorksFromANonzeroStartingClock) {
  // Measuring recovery mid-execution: the caller's clock starts at
  // t = 100; stabilization is reported on that absolute clock.
  double now = 100.0;
  const auto report = stabilize::run_until_stable_virtual(
      [&] { return now += 1.0; }, [&] { return 0ULL; },
      [&] { return now >= 104.0; }, /*confirm_s=*/2.0,
      /*max_time_s=*/200.0);
  EXPECT_TRUE(report.converged);
  EXPECT_DOUBLE_EQ(report.stabilization_time_s, 104.0);
}

}  // namespace
}  // namespace ssmwn
