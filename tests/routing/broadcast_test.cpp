// Tests for the dissemination strategies.
#include "routing/broadcast.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(Broadcast, FloodCoversComponentAndCountsEveryNode) {
  const auto g = graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}});
  const auto cost = routing::flood(g, 0);
  EXPECT_EQ(cost.covered, 4u);        // node 4 is isolated
  EXPECT_EQ(cost.transmissions, 4u);  // every covered node sends once
  EXPECT_EQ(cost.steps, 3u);
}

TEST(Broadcast, TreeBroadcastSendsOnlyInternalNodes) {
  // Star: flooding costs n sends, the BFS tree costs 1 (the center).
  graph::Graph g(6);
  for (graph::NodeId leaf = 1; leaf < 6; ++leaf) g.add_edge(0, leaf);
  g.finalize();
  const auto flood_cost = routing::flood(g, 0);
  const auto tree_cost = routing::tree_broadcast(g, 0);
  EXPECT_EQ(flood_cost.transmissions, 6u);
  EXPECT_EQ(tree_cost.transmissions, 1u);
  EXPECT_EQ(tree_cost.covered, 6u);
}

TEST(Broadcast, AllStrategiesReachEveryReachableNode) {
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(250, rng);
    const auto g = topology::unit_disk_graph(pts, 0.1);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto clustering = core::cluster_density(g, ids, {});
    const auto source =
        static_cast<graph::NodeId>(rng.index(g.node_count()));
    const auto f = routing::flood(g, source);
    const auto c = routing::cluster_broadcast(g, clustering, source);
    const auto t = routing::tree_broadcast(g, source);
    EXPECT_EQ(c.covered, f.covered) << "cluster broadcast lost coverage";
    EXPECT_EQ(t.covered, f.covered) << "tree broadcast lost coverage";
  }
}

TEST(Broadcast, ClusterBroadcastSavesTransmissionsOverFlooding) {
  // The Section 2 claim: the cluster structure limits exchanged traffic.
  util::Rng rng(2);
  double flood_total = 0.0;
  double cluster_total = 0.0;
  double tree_total = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto pts = topology::uniform_points(400, rng);
    const auto g = topology::unit_disk_graph(pts, 0.09);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto clustering = core::cluster_density(g, ids, {});
    const auto source =
        static_cast<graph::NodeId>(rng.index(g.node_count()));
    flood_total += static_cast<double>(routing::flood(g, source).transmissions);
    cluster_total += static_cast<double>(
        routing::cluster_broadcast(g, clustering, source).transmissions);
    tree_total += static_cast<double>(
        routing::tree_broadcast(g, source).transmissions);
  }
  EXPECT_LT(cluster_total, flood_total);
  EXPECT_LE(tree_total, cluster_total);  // the idealized lower bound
}

TEST(Broadcast, SingleNode) {
  graph::Graph g(1);
  const auto cost = routing::flood(g, 0);
  EXPECT_EQ(cost.covered, 1u);
  EXPECT_EQ(cost.transmissions, 1u);
  EXPECT_EQ(cost.steps, 0u);
}

}  // namespace
}  // namespace ssmwn
