// Tests for flat and hierarchical routing over the clustering.
#include "routing/routing.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(FlatRouter, ShortestPathOnPathGraph) {
  graph::Graph g(5);
  for (graph::NodeId p = 0; p + 1 < 5; ++p) g.add_edge(p, p + 1);
  g.finalize();
  routing::FlatRouter router(g);
  const auto r = router.route(0, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.length(), 4u);
  EXPECT_TRUE(routing::valid_route(g, r, 0, 4));
  const auto self = router.route(2, 2);
  EXPECT_EQ(self.length(), 0u);
}

TEST(FlatRouter, UnreachableGivesEmptyRoute) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  routing::FlatRouter router(g);
  EXPECT_FALSE(router.route(0, 3).ok());
  EXPECT_EQ(router.table_entries(0), 1u);  // only node 1 reachable
}

TEST(ValidRoute, RejectsBrokenRoutes) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(routing::valid_route(g, routing::Route{{0, 1, 2}}, 0, 2));
  EXPECT_FALSE(routing::valid_route(g, routing::Route{{0, 2}}, 0, 2));
  EXPECT_FALSE(routing::valid_route(g, routing::Route{{0, 1}}, 0, 2));
  EXPECT_FALSE(routing::valid_route(g, routing::Route{}, 0, 2));
}

TEST(HierarchicalRouter, IntraClusterRouteStaysInCluster) {
  util::Rng rng(1);
  const auto pts = topology::uniform_points(200, rng);
  const auto g = topology::unit_disk_graph(pts, 0.12);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto clustering = core::cluster_density(g, ids, {});
  routing::HierarchicalRouter router(g, clustering);

  int checked = 0;
  for (graph::NodeId src = 0; src < g.node_count() && checked < 40; ++src) {
    for (graph::NodeId dst = src + 1; dst < g.node_count(); ++dst) {
      if (clustering.head_index[src] != clustering.head_index[dst]) continue;
      const auto r = router.route(src, dst);
      ASSERT_TRUE(r.ok()) << src << "->" << dst;
      EXPECT_TRUE(routing::valid_route(g, r, src, dst));
      for (graph::NodeId hop : r.hops) {
        EXPECT_EQ(clustering.head_index[hop], clustering.head_index[src]);
      }
      ++checked;
      break;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(HierarchicalRouter, CrossClusterRoutesAreValid) {
  util::Rng rng(2);
  for (int trial = 0; trial < 3; ++trial) {
    const auto pts = topology::uniform_points(250, rng);
    const auto g = topology::unit_disk_graph(pts, 0.11);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto clustering = core::cluster_density(g, ids, {});
    routing::HierarchicalRouter router(g, clustering);
    routing::FlatRouter flat(g);

    for (int i = 0; i < 60; ++i) {
      const auto src = static_cast<graph::NodeId>(rng.index(g.node_count()));
      const auto dst = static_cast<graph::NodeId>(rng.index(g.node_count()));
      const auto reference = flat.route(src, dst);
      const auto r = router.route(src, dst);
      if (!reference.ok()) continue;  // disconnected in the radio graph
      ASSERT_TRUE(r.ok()) << src << "->" << dst;
      EXPECT_TRUE(routing::valid_route(g, r, src, dst));
      // Hierarchical routes can never beat the shortest path.
      EXPECT_GE(r.length(), reference.length());
    }
  }
}

TEST(HierarchicalRouter, TablesAreSmallerThanFlatOnLargeNetworks) {
  util::Rng rng(3);
  const auto pts = topology::uniform_points(600, rng);
  const auto g = topology::unit_disk_graph(pts, 0.08);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto clustering = core::cluster_density(g, ids, {});
  routing::HierarchicalRouter hier(g, clustering);
  routing::FlatRouter flat(g);

  // Compare on nodes of the giant component.
  double flat_sum = 0.0, hier_sum = 0.0;
  int counted = 0;
  for (graph::NodeId p = 0; p < g.node_count(); p += 13) {
    const auto f = flat.table_entries(p);
    if (f < 200) continue;  // skip small components
    flat_sum += static_cast<double>(f);
    hier_sum += static_cast<double>(hier.table_entries(p));
    ++counted;
  }
  ASSERT_GT(counted, 5);
  EXPECT_LT(hier_sum, flat_sum / 2.0);  // the scalability argument
}

TEST(HierarchicalRouter, CompareRoutersReportsSaneStretch) {
  util::Rng rng(4);
  const auto pts = topology::uniform_points(300, rng);
  const auto g = topology::unit_disk_graph(pts, 0.1);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto clustering = core::cluster_density(g, ids, {});
  routing::FlatRouter flat(g);
  routing::HierarchicalRouter hier(g, clustering);
  const auto stats = routing::compare_routers(g, flat, hier, 300, rng);
  EXPECT_GT(stats.pairs, 100u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GE(stats.mean_stretch, 1.0);
  EXPECT_LT(stats.mean_stretch, 3.0);
  EXPECT_GE(stats.mean_hier_length, stats.mean_flat_length);
}

TEST(HierarchicalRouter, SingleClusterDegeneratesToIntraRouting) {
  // A clique: one cluster; all routes are 1 hop.
  graph::Graph g(6);
  for (graph::NodeId a = 0; a < 6; ++a) {
    for (graph::NodeId b = a + 1; b < 6; ++b) g.add_edge(a, b);
  }
  g.finalize();
  const auto clustering =
      core::cluster_density(g, topology::sequential_ids(6), {});
  ASSERT_EQ(clustering.cluster_count(), 1u);
  routing::HierarchicalRouter router(g, clustering);
  const auto r = router.route(1, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.length(), 1u);
  EXPECT_EQ(router.table_entries(0), 5u);  // 5 members, 0 other clusters
}

TEST(HierarchicalRouter, DisconnectedClustersFailCleanly) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const auto clustering =
      core::cluster_density(g, topology::sequential_ids(4), {});
  routing::HierarchicalRouter router(g, clustering);
  EXPECT_FALSE(router.route(0, 3).ok());
  EXPECT_TRUE(router.route(0, 1).ok());
}

}  // namespace
}  // namespace ssmwn
