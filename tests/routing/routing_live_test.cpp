// Cluster-backbone routing under live topology deltas (satellite of the
// verify PR): when mobility patches the graph through
// `apply_topology_delta`, routes must be recomputed on the *patched*
// graph — a router (or its gateway table) built on the old topology may
// silently forward over severed links. These tests pin (a) that the
// recomputed routers never use a stale gateway (every route is valid on
// the current graph, zero failures) and (b) that a router rebuilt from
// the incrementally patched graph is route-for-route interchangeable
// with one built from a from-scratch rebuild.
#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/protocol.hpp"
#include "graph/dynamic.hpp"
#include "mobility/mobility.hpp"
#include "routing/routing.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "support/deployments.hpp"
#include "topology/incremental.hpp"
#include "topology/udg.hpp"

namespace ssmwn {
namespace {

constexpr double kRadius = 0.14;

TEST(RoutingLive, RecomputedRoutesAreValidAfterEveryDelta) {
  auto w = testsupport::make_deployment(150, kRadius, 42);
  topology::LiveTopology live(w.points, kRadius);
  util::Rng rng(7);
  mobility::RandomDirection mover(w.points.size(), {0.0, 10.0}, 1000.0,
                                  rng.split());

  // The protocol runs live on the evolving graph, exactly as in the
  // dynamic-topology campaign mode; routing is rebuilt per window from
  // the *current* clustering of the *current* graph.
  core::ProtocolConfig pconfig;
  pconfig.delta_hint =
      std::max<std::uint64_t>(2, live.graph().max_degree());
  core::DensityProtocol protocol(w.ids, pconfig, rng.split());
  sim::PerfectDelivery medium;
  sim::Network network(live.graph(), protocol, medium, 1);

  util::Rng pair_rng(99);
  for (int window = 0; window < 8; ++window) {
    mover.step(w.points, 2.0);
    const auto& delta = live.update(w.points);
    network.apply_topology_delta(delta);
    network.run(4);

    const auto clustering = core::cluster_density(live.graph(), w.ids, {});
    routing::FlatRouter flat(live.graph());
    routing::HierarchicalRouter hier(live.graph(), clustering);
    // No stale-gateway use: on the current graph, the hierarchical
    // router must never fail a pair the flat router can serve, and
    // every hop it emits must be a live radio link.
    const auto stats =
        routing::compare_routers(live.graph(), flat, hier, 60, pair_rng);
    EXPECT_EQ(stats.failures, 0u) << "window " << window;
    for (int probe = 0; probe < 20; ++probe) {
      const auto src = static_cast<graph::NodeId>(
          pair_rng.index(live.graph().node_count()));
      const auto dst = static_cast<graph::NodeId>(
          pair_rng.index(live.graph().node_count()));
      const auto route = hier.route(src, dst);
      if (!route.ok()) continue;  // disconnected pair
      EXPECT_TRUE(routing::valid_route(live.graph(), route, src, dst))
          << "window " << window << " " << src << "->" << dst;
    }
  }
}

TEST(RoutingLive, PatchedGraphRoutesMatchScratchRebuild) {
  auto w = testsupport::make_deployment(120, kRadius, 11);
  topology::LiveTopology live(w.points, kRadius);
  util::Rng rng(3);
  mobility::RandomWaypoint mover(w.points.size(), {0.0, 6.0}, 1000.0,
                                 rng.split());

  for (int window = 0; window < 5; ++window) {
    mover.step(w.points, 2.0);
    (void)live.update(w.points);
    const graph::Graph scratch =
        topology::unit_disk_graph(w.points, kRadius);

    const auto clustering_live =
        core::cluster_density(live.graph(), w.ids, {});
    const auto clustering_scratch =
        core::cluster_density(scratch, w.ids, {});
    routing::HierarchicalRouter hier_live(live.graph(), clustering_live);
    routing::HierarchicalRouter hier_scratch(scratch, clustering_scratch);
    ASSERT_EQ(hier_live.cluster_count(), hier_scratch.cluster_count())
        << "window " << window;

    util::Rng pair_rng(1000 + window);
    for (int probe = 0; probe < 40; ++probe) {
      const auto src = static_cast<graph::NodeId>(
          pair_rng.index(scratch.node_count()));
      const auto dst = static_cast<graph::NodeId>(
          pair_rng.index(scratch.node_count()));
      const auto a = hier_live.route(src, dst);
      const auto b = hier_scratch.route(src, dst);
      // The graphs are edge-identical, the clusterings deterministic:
      // the routers must agree hop for hop.
      EXPECT_EQ(a.hops, b.hops) << "window " << window << " " << src
                                << "->" << dst;
    }
  }
}

TEST(RoutingLive, StaleRouterWouldUseSeveredLinks) {
  // The failure mode the recompute discipline prevents, demonstrated:
  // a router built before a perturbation emits at least one route that
  // is invalid on the post-perturbation graph. (If this ever becomes
  // unreproducible the test should be retuned, not deleted — it is the
  // reason the live path rebuilds routers per window.)
  auto w = testsupport::make_deployment(150, kRadius, 19);
  const graph::Graph before = topology::unit_disk_graph(w.points, kRadius);
  const auto clustering = core::cluster_density(before, w.ids, {});
  routing::HierarchicalRouter stale(before, clustering);

  util::Rng rng(5);
  mobility::RandomDirection mover(w.points.size(), {5.0, 10.0}, 1000.0,
                                  rng.split());
  mover.step(w.points, 8.0);  // a big step severs many links
  const graph::Graph after = topology::unit_disk_graph(w.points, kRadius);

  std::size_t broken = 0;
  util::Rng pair_rng(23);
  for (int probe = 0; probe < 200; ++probe) {
    const auto src =
        static_cast<graph::NodeId>(pair_rng.index(after.node_count()));
    const auto dst =
        static_cast<graph::NodeId>(pair_rng.index(after.node_count()));
    const auto route = stale.route(src, dst);
    if (route.ok() && !routing::valid_route(after, route, src, dst)) {
      ++broken;
    }
  }
  EXPECT_GT(broken, 0u)
      << "vehicular-speed perturbation left every stale route valid?";
}

}  // namespace
}  // namespace ssmwn
