// Property test: BroadcastCost invariants across random UDG instances
// (satellite of the verify PR).
//
// Guaranteed invariants, asserted per instance:
//   * full coverage on connected graphs, for all three strategies;
//   * clusterized <= flooding transmissions (the cluster forwarders are
//     a subset of the flood's everyone-retransmits set);
//   * flooding transmissions == n (every covered node retransmits once)
//     and flooding steps == the source's eccentricity (BFS depth);
//   * tree transmissions <= n - 1 (leaves never transmit).
//
// NOT asserted per instance: tree <= clusterized. Writing this test
// falsified that folk chain — the BFS-internal-node set is not a
// minimum connected dominating set, and on ~1% of dense instances the
// cluster backbone genuinely beats it (a pinned counterexample below
// documents the fact). The tree bound is therefore checked in
// aggregate, where it is decisive.
#include <gtest/gtest.h>

#include <optional>

#include "core/clustering.hpp"
#include "graph/algorithms.hpp"
#include "routing/broadcast.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

struct Instance {
  graph::Graph graph;
  core::ClusteringResult clustering;
  graph::NodeId source = 0;
};

/// Random connected UDG + its clustering + a random source; returns
/// nullopt when the draw is disconnected (the caller skips it).
std::optional<Instance> draw_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = 20 + rng.index(180);
  const double radius = 0.1 + rng.uniform() * 0.15;
  const auto pts = topology::uniform_points(n, rng);
  Instance inst;
  inst.graph = topology::unit_disk_graph(pts, radius);
  if (!graph::is_connected(inst.graph)) return std::nullopt;
  const auto ids = topology::random_ids(n, rng);
  inst.clustering = core::cluster_density(inst.graph, ids, {});
  inst.source = static_cast<graph::NodeId>(rng.index(n));
  return inst;
}

TEST(BroadcastProperty, InvariantsHoldAcrossRandomUdgInstances) {
  std::size_t checked = 0;
  std::size_t tree_total = 0, cluster_total = 0, flood_total = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const auto inst = draw_instance(seed);
    if (!inst) continue;
    ++checked;
    const std::size_t n = inst->graph.node_count();
    const auto f = routing::flood(inst->graph, inst->source);
    const auto c =
        routing::cluster_broadcast(inst->graph, inst->clustering,
                                   inst->source);
    const auto t = routing::tree_broadcast(inst->graph, inst->source);

    // Full coverage always reached on connected graphs.
    EXPECT_EQ(f.covered, n) << "seed " << seed;
    EXPECT_EQ(c.covered, n) << "seed " << seed;
    EXPECT_EQ(t.covered, n) << "seed " << seed;

    // Transmission-count invariants.
    EXPECT_EQ(f.transmissions, n) << "seed " << seed;
    EXPECT_LE(c.transmissions, f.transmissions) << "seed " << seed;
    EXPECT_LE(t.transmissions, n - 1) << "seed " << seed;

    // Latency: flooding realizes the BFS depth exactly; no strategy
    // can beat it.
    const auto depth = graph::eccentricity(inst->graph, inst->source);
    EXPECT_EQ(f.steps, depth) << "seed " << seed;
    EXPECT_GE(c.steps, depth) << "seed " << seed;
    EXPECT_GE(t.steps, depth) << "seed " << seed;

    tree_total += t.transmissions;
    cluster_total += c.transmissions;
    flood_total += f.transmissions;
  }
  ASSERT_GE(checked, 100u) << "connected-instance yield too low";

  // The aggregate ordering the paper's traffic claim rests on:
  // tree (idealized bound) < clusterized backbone < blind flooding.
  // (The backbone's saving over flooding is distribution-dependent —
  // sparse instances make almost every node a gateway — so only the
  // strict ordering is asserted, not a constant factor.)
  EXPECT_LT(tree_total, cluster_total);
  EXPECT_LT(cluster_total, flood_total);
}

TEST(BroadcastProperty, TreeBelowClusterIsNotAPointwiseTheorem) {
  // Pinned counterexample (found by this suite's own sweep): a dense
  // instance where the cluster backbone transmits *less* than the BFS
  // tree's internal nodes. Guards against someone "strengthening" the
  // property above into a per-instance assertion that would flake.
  const auto inst = draw_instance(170);
  ASSERT_TRUE(inst.has_value());
  const auto c =
      routing::cluster_broadcast(inst->graph, inst->clustering,
                                 inst->source);
  const auto t = routing::tree_broadcast(inst->graph, inst->source);
  EXPECT_LT(c.transmissions, t.transmissions);
  EXPECT_EQ(c.covered, inst->graph.node_count());
}

TEST(BroadcastProperty, DisconnectedGraphCoversOnlyTheComponent) {
  graph::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);  // second component, never reached from 0
  g.finalize();
  const auto f = routing::flood(g, 0);
  EXPECT_EQ(f.covered, 3u);
  EXPECT_EQ(f.transmissions, 3u);
  const auto t = routing::tree_broadcast(g, 0);
  EXPECT_EQ(t.covered, 3u);
}

}  // namespace
}  // namespace ssmwn
