// Parallel step engine: synchronous semantics must be thread-count
// invariant, and the arena engine must be indistinguishable from the
// legacy (owning-frame) engine — including the RNG draw order of
// stateful loss models.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

static_assert(sim::ArenaProtocol<core::DensityProtocol>,
              "DensityProtocol must support the arena engine");

struct Fixture {
  graph::Graph graph;
  topology::IdAssignment ids;
};

Fixture geometric_fixture(std::size_t n, double radius, std::uint64_t seed) {
  util::Rng rng(seed);
  Fixture f;
  const auto pts = topology::uniform_points(n, rng);
  f.graph = topology::unit_disk_graph(pts, radius);
  f.ids = topology::random_ids(n, rng);
  return f;
}

core::DensityProtocol make_protocol(const Fixture& f, std::uint64_t seed) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;  // exercises the randomized N1 rule
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, f.graph.max_degree());
  return core::DensityProtocol(f.ids, config, util::Rng(seed));
}

bool digests_equal(const core::DigestList& a, const core::DigestList& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].dag_id != b[i].dag_id ||
        std::memcmp(&a[i].metric, &b[i].metric, sizeof(double)) != 0 ||
        a[i].metric_valid != b[i].metric_valid ||
        a[i].is_head != b[i].is_head) {
      return false;
    }
  }
  return true;
}

/// Bit-identical protocol state: every shared variable, every cache entry
/// (doubles compared bitwise, not with tolerance).
::testing::AssertionResult states_identical(const core::DensityProtocol& a,
                                            const core::DensityProtocol& b) {
  if (a.node_count() != b.node_count()) {
    return ::testing::AssertionFailure() << "node counts differ";
  }
  for (graph::NodeId p = 0; p < a.node_count(); ++p) {
    const auto& sa = a.state(p);
    const auto& sb = b.state(p);
    if (sa.uid != sb.uid || sa.dag_id != sb.dag_id ||
        std::memcmp(&sa.metric, &sb.metric, sizeof(double)) != 0 ||
        sa.metric_valid != sb.metric_valid || sa.head != sb.head ||
        sa.head_valid != sb.head_valid || sa.parent != sb.parent ||
        sa.parent_valid != sb.parent_valid) {
      return ::testing::AssertionFailure()
             << "shared variables differ at node " << p;
    }
    if (sa.cache.size() != sb.cache.size()) {
      return ::testing::AssertionFailure()
             << "cache sizes differ at node " << p;
    }
    auto ita = sa.cache.begin();
    auto itb = sb.cache.begin();
    for (; ita != sa.cache.end(); ++ita, ++itb) {
      if (ita->first != itb->first || ita->second.dag_id != itb->second.dag_id ||
          std::memcmp(&ita->second.metric, &itb->second.metric,
                      sizeof(double)) != 0 ||
          ita->second.metric_valid != itb->second.metric_valid ||
          ita->second.head != itb->second.head ||
          ita->second.head_valid != itb->second.head_valid ||
          ita->second.age != itb->second.age ||
          !digests_equal(ita->second.digests, itb->second.digests)) {
        return ::testing::AssertionFailure()
               << "cache entry differs at node " << p;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(ParallelStep, NThreadStateIsBitIdenticalToOneThread) {
  const auto f = geometric_fixture(250, 0.1, 99);
  for (unsigned threads : {2u, 4u, 8u}) {
    auto serial = make_protocol(f, 7);
    auto parallel = make_protocol(f, 7);
    sim::PerfectDelivery loss_a, loss_b;
    sim::Network net_serial(f.graph, serial, loss_a, 1);
    sim::Network net_parallel(f.graph, parallel, loss_b, threads);
    ASSERT_EQ(net_parallel.thread_count(), threads);

    for (int s = 0; s < 12; ++s) {
      net_serial.step();
      net_parallel.step();
      ASSERT_TRUE(states_identical(serial, parallel))
          << "threads=" << threads << " step=" << s;
    }
  }
}

TEST(ParallelStep, DeterminismSurvivesCorruptionRecovery) {
  // The self-stabilization scenario: scramble every node, then recover.
  // Both engines must walk the exact same recovery trajectory.
  const auto f = geometric_fixture(150, 0.12, 5);
  auto serial = make_protocol(f, 3);
  auto parallel = make_protocol(f, 3);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_serial(f.graph, serial, loss_a, 1);
  sim::Network net_parallel(f.graph, parallel, loss_b, 4);

  net_serial.run(5);
  net_parallel.run(5);
  util::Rng chaos_a(77), chaos_b(77);
  serial.corrupt_all(chaos_a);
  parallel.corrupt_all(chaos_b);
  for (int s = 0; s < 20; ++s) {
    net_serial.step();
    net_parallel.step();
    ASSERT_TRUE(states_identical(serial, parallel)) << "step " << s;
  }
}

TEST(ParallelStep, ArenaEngineMatchesLegacyEngineUnderLoss) {
  // Same seeds, one network on the seed engine, one on the arena engine:
  // the Bernoulli medium must draw the same per-edge sequence and the
  // protocols must stay in lockstep.
  const auto f = geometric_fixture(120, 0.12, 21);
  auto legacy = make_protocol(f, 9);
  auto arena = make_protocol(f, 9);
  sim::BernoulliDelivery loss_a(0.7, util::Rng(13));
  sim::BernoulliDelivery loss_b(0.7, util::Rng(13));
  sim::Network net_legacy(f.graph, legacy, loss_a, 1);
  net_legacy.set_legacy_engine(true);
  sim::Network net_arena(f.graph, arena, loss_b, 1);

  for (int s = 0; s < 25; ++s) {
    net_legacy.step();
    net_arena.step();
    ASSERT_TRUE(states_identical(legacy, arena)) << "step " << s;
  }
}

TEST(ThreadPoolGrain, SmallCountsNeverStarveOrRepeatIndices) {
  // Regression for the auto-grain heuristic: when count < 4 × threads
  // the quotient underflows to 0 and only the max(1, ...) floor keeps
  // the chunk cursor advancing. Every index must be hit exactly once
  // for counts straddling that edge.
  sim::ThreadPool pool(8);
  for (std::size_t count : {1u, 2u, 3u, 7u, 31u, 32u, 33u, 100u}) {
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    struct Ctx {
      std::vector<std::atomic<int>>* hits;
    } ctx{&hits};
    pool.parallel_for(
        count, /*grain=*/0,
        [](void* raw, std::size_t begin, std::size_t end) {
          auto& c = *static_cast<Ctx*>(raw);
          for (std::size_t i = begin; i < end; ++i) {
            (*c.hits)[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        &ctx);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "count=" << count << " index=" << i;
    }
  }
}

TEST(ThreadPoolGrain, ZeroCountIsANoOp) {
  sim::ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(
      0, 0,
      [](void* raw, std::size_t, std::size_t) {
        *static_cast<bool*>(raw) = true;
      },
      &touched);
  EXPECT_FALSE(touched);
}

TEST(ParallelStep, SetThreadsMidRunKeepsTrajectory) {
  const auto f = geometric_fixture(100, 0.12, 31);
  auto a = make_protocol(f, 1);
  auto b = make_protocol(f, 1);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_a(f.graph, a, loss_a, 1);
  sim::Network net_b(f.graph, b, loss_b, 1);
  net_a.run(6);
  net_b.run(6);
  net_b.set_threads(4);  // must not perturb the trajectory
  net_a.run(6);
  net_b.run(6);
  EXPECT_TRUE(states_identical(a, b));
}

}  // namespace
}  // namespace ssmwn
