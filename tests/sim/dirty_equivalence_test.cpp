// Differential equivalence harness for dirty-region stepping: the
// quiescence-aware stepper must be *bit-identical* to the full stepper
// — every shared variable, every cache entry (ages and relayed digests
// included), every per-node RNG — from identical seeds, per tick, on
// both engines, under all three daemons, under mobility (pedestrian and
// vehicular), churn windows, mid-run fault injection, and at 1 vs N
// threads. Any divergence reports the first divergent tick + node plus
// a replayable key=value spec, so a failure here is a repro, not a
// shrug.
//
// Trial counts scale with SSMWN_DIRTY_TRIALS (CI tier-1 runs the
// default; the nightly soak sets it higher via SSMWN_SOAK=1 in the
// workflow).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "mobility/mobility.hpp"
#include "sim/async_network.hpp"
#include "sim/churn.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "support/deployments.hpp"
#include "topology/incremental.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

static_assert(sim::QuiescentProtocol<core::DensityProtocol>,
              "DensityProtocol must implement the quiescence extension");

int trials() { return util::env_int("SSMWN_DIRTY_TRIALS", 3); }

core::DensityProtocol make_protocol(const testsupport::World& w,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;  // exercises the randomized N1 rule
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, w.graph.max_degree());
  return core::DensityProtocol(w.ids, config, util::Rng(seed));
}

/// The replayable spec a divergence report carries: everything needed
/// to reconstruct the failing trial verbatim in a standalone driver.
std::string spec_string(const char* scenario, std::size_t n, double radius,
                        std::uint64_t world_seed, std::uint64_t proto_seed,
                        const char* extra = "") {
  std::ostringstream out;
  out << "scenario=" << scenario << " n=" << n << " radius=" << radius
      << " world_seed=" << world_seed << " proto_seed=" << proto_seed;
  if (*extra != '\0') out << ' ' << extra;
  return out.str();
}

/// One lockstep identity check. ASSERT-fatal so the first divergent
/// tick ends the trial with the full field-by-field dump.
::testing::AssertionResult populations_identical(
    const core::DensityProtocol& full, const core::DensityProtocol& dirty,
    std::size_t tick, const std::string& spec) {
  const auto div = core::first_divergent_node(full, dirty);
  if (!div) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "first divergence at tick " << tick << ", node " << *div << "\n"
         << core::describe_divergence(full, dirty, *div) << "replay: " << spec
         << " tick=" << tick << " node=" << *div;
}

TEST(DirtyEquivalence, SyncStaticTopologyLockstep) {
  for (int t = 0; t < trials(); ++t) {
    const std::uint64_t world_seed = 100 + 17 * static_cast<std::uint64_t>(t);
    const std::uint64_t proto_seed = 7 + static_cast<std::uint64_t>(t);
    const auto w = testsupport::make_deployment(120, 0.12, world_seed);
    auto full = make_protocol(w, proto_seed);
    auto dirty = make_protocol(w, proto_seed);
    sim::PerfectDelivery loss_a, loss_b;
    sim::Network net_full(w.graph, full, loss_a, 1);
    sim::Network net_dirty(w.graph, dirty, loss_b, 1);
    net_dirty.set_stepping(sim::Stepping::kDirty);

    const std::string spec =
        spec_string("sync-static", 120, 0.12, world_seed, proto_seed);
    for (std::size_t s = 0; s < 40; ++s) {
      net_full.step();
      net_dirty.step();
      ASSERT_TRUE(populations_identical(full, dirty, s, spec));
    }
    // The trial must actually exercise skipping, or it proves nothing.
    EXPECT_GT(net_dirty.activity().nodes_skipped(), 0u) << spec;
    EXPECT_EQ(net_full.activity().nodes_skipped(), 0u);
  }
}

TEST(DirtyEquivalence, SyncFaultInjectionWakesLockstep) {
  // corrupt_fraction / reset_node / mutable_state are the external
  // mutations the take_external_wakes drain exists for: under full
  // stepping the neighbors hear the mutated frame that same step, so
  // the dirty stepper's wake must not lag by one.
  const auto w = testsupport::make_deployment(100, 0.13, 42);
  auto full = make_protocol(w, 11);
  auto dirty = make_protocol(w, 11);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_full(w.graph, full, loss_a, 1);
  sim::Network net_dirty(w.graph, dirty, loss_b, 1);
  net_dirty.set_stepping(sim::Stepping::kDirty);
  const std::string spec = spec_string("sync-faults", 100, 0.13, 42, 11);

  // Converge (dirty side goes quiescent), then hit both populations
  // with the same chaos stream and watch the recovery in lockstep.
  std::size_t tick = 0;
  for (; tick < 30; ++tick) {
    net_full.step();
    net_dirty.step();
    ASSERT_TRUE(populations_identical(full, dirty, tick, spec));
  }
  util::Rng chaos_a(99), chaos_b(99);
  ASSERT_EQ(full.corrupt_fraction(chaos_a, 0.2),
            dirty.corrupt_fraction(chaos_b, 0.2));
  full.reset_node(3);
  dirty.reset_node(3);
  {
    auto sa = full.mutable_state(7);
    auto sb = dirty.mutable_state(7);
    sa.head_valid = 0;
    sb.head_valid = 0;
  }
  for (std::size_t s = 0; s < 30; ++s, ++tick) {
    net_full.step();
    net_dirty.step();
    ASSERT_TRUE(populations_identical(full, dirty, tick, spec));
  }
}

struct MobilityCase {
  const char* name;
  double max_speed_mps;  // pedestrian 1.6, vehicular 10
  double churn_down;     // 0 = no churn
};

void run_mobility_trial(const MobilityCase& mc, std::uint64_t world_seed,
                        std::uint64_t proto_seed, unsigned dirty_threads) {
  const std::size_t n = 90;
  const double radius = 0.14;
  auto w = testsupport::make_deployment(n, radius, world_seed);
  auto full = make_protocol(w, proto_seed);
  auto dirty = make_protocol(w, proto_seed);

  // One shared point/churn stream; each side owns its topology index so
  // the graphs evolve independently but identically.
  mobility::RandomDirection mover(n, {0.0, mc.max_speed_mps}, 1.0,
                                  util::Rng(world_seed ^ 0xF00D));
  std::optional<sim::NodeChurn> churn;
  if (mc.churn_down > 0.0) {
    churn.emplace(n, mc.churn_down, 0.3, util::Rng(world_seed ^ 0xC0));
  }
  const auto alive = [&]() -> std::span<const char> {
    if (!churn) return {};
    return {churn->alive().data(), churn->alive().size()};
  };
  topology::LiveTopology live_full(w.points, radius, alive());
  topology::LiveTopology live_dirty(w.points, radius, alive());

  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_full(live_full.graph(), full, loss_a, 1);
  sim::Network net_dirty(live_dirty.graph(), dirty, loss_b, dirty_threads);
  net_dirty.set_stepping(sim::Stepping::kDirty);

  std::ostringstream extra;
  extra << "mobility=" << mc.name << " churn=" << mc.churn_down
        << " threads=" << dirty_threads;
  const std::string spec = spec_string("sync-mobility", n, radius, world_seed,
                                       proto_seed, extra.str().c_str());

  std::size_t tick = 0;
  for (std::size_t window = 0; window < 8; ++window) {
    mover.step(w.points, 0.05);
    if (churn) churn->step();
    net_full.apply_topology_delta(live_full.update(w.points, alive()));
    net_dirty.apply_topology_delta(live_dirty.update(w.points, alive()));
    // The DynamicGraph dirty set is the documented seeding entry point;
    // redundant with the delta wake (same closed neighborhoods) but the
    // harness exercises both paths together.
    net_dirty.mark_dirty(live_dirty.dirty_nodes());
    for (std::size_t s = 0; s < 6; ++s, ++tick) {
      net_full.step();
      net_dirty.step();
      ASSERT_TRUE(populations_identical(full, dirty, tick, spec));
    }
  }
}

TEST(DirtyEquivalence, SyncPedestrianMobilityLockstep) {
  for (int t = 0; t < trials(); ++t) {
    run_mobility_trial({"pedestrian", 1.6, 0.0},
                       200 + static_cast<std::uint64_t>(t), 5, 1);
    if (HasFatalFailure()) return;
  }
}

TEST(DirtyEquivalence, SyncVehicularMobilityLockstep) {
  for (int t = 0; t < trials(); ++t) {
    run_mobility_trial({"vehicular", 10.0, 0.0},
                       300 + static_cast<std::uint64_t>(t), 6, 1);
    if (HasFatalFailure()) return;
  }
}

TEST(DirtyEquivalence, SyncChurnWindowsLockstep) {
  for (int t = 0; t < trials(); ++t) {
    run_mobility_trial({"pedestrian", 1.6, 0.15},
                       400 + static_cast<std::uint64_t>(t), 8, 1);
    if (HasFatalFailure()) return;
  }
}

TEST(DirtyEquivalence, SyncDirtyIsThreadCountInvariant) {
  // Full-vs-dirty at 4 workers, under vehicular mobility — the dirty
  // stepper's compact sender pool and active-only phases must keep the
  // thread-invariance guarantee of the arena engine.
  run_mobility_trial({"vehicular", 10.0, 0.1}, 500, 9, 4);
}

TEST(DirtyEquivalence, SyncRejectsLossyMedium) {
  const auto w = testsupport::make_deployment(30, 0.2, 1);
  auto p = make_protocol(w, 1);
  sim::BernoulliDelivery loss(0.7, util::Rng(2));
  sim::Network net(w.graph, p, loss, 1);
  EXPECT_THROW(net.set_stepping(sim::Stepping::kDirty), std::invalid_argument);
  // Full stepping stays available, and a loss-free medium is accepted.
  net.set_stepping(sim::Stepping::kFull);
  sim::PerfectDelivery perfect;
  sim::Network ok(w.graph, p, perfect, 1);
  EXPECT_NO_THROW(ok.set_stepping(sim::Stepping::kDirty));
}

// --- event-driven engine ----------------------------------------------

struct AsyncCase {
  const char* name;
  sim::DaemonKind daemon;
  double tau;  // delivery probability; 1 = perfect
};

void run_async_trial(const AsyncCase& ac, std::uint64_t world_seed,
                     std::uint64_t proto_seed) {
  const std::size_t n = 80;
  const double radius = 0.15;
  const auto w = testsupport::make_deployment(n, radius, world_seed);
  auto full = make_protocol(w, proto_seed);
  auto dirty = make_protocol(w, proto_seed);
  util::Rng chaos_a(world_seed ^ 0xBAD), chaos_b(world_seed ^ 0xBAD);
  full.corrupt_all(chaos_a);
  dirty.corrupt_all(chaos_b);

  sim::PerfectDelivery perfect_a, perfect_b;
  sim::BernoulliDelivery bern_a(ac.tau, util::Rng(world_seed ^ 5));
  sim::BernoulliDelivery bern_b(ac.tau, util::Rng(world_seed ^ 5));
  sim::LossModel& loss_a =
      ac.tau < 1.0 ? static_cast<sim::LossModel&>(bern_a) : perfect_a;
  sim::LossModel& loss_b =
      ac.tau < 1.0 ? static_cast<sim::LossModel&>(bern_b) : perfect_b;

  sim::AsyncConfig config;
  config.daemon = ac.daemon;
  sim::AsyncNetwork net_full(w.graph, full, loss_a, config,
                             util::Rng(world_seed ^ 0xE));
  sim::AsyncNetwork net_dirty(w.graph, dirty, loss_b, config,
                              util::Rng(world_seed ^ 0xE));
  net_dirty.set_stepping(sim::Stepping::kDirty);

  std::vector<sim::Event> trace_full, trace_dirty;
  net_full.set_event_log(&trace_full);
  net_dirty.set_event_log(&trace_dirty);

  std::ostringstream extra;
  extra << "engine=async daemon=" << ac.name << " tau=" << ac.tau;
  const std::string spec = spec_string("async", n, radius, world_seed,
                                       proto_seed, extra.str().c_str());

  for (std::size_t chunk = 0; chunk < 25; ++chunk) {
    net_full.run_for(1.0);
    net_dirty.run_for(1.0);
    ASSERT_TRUE(populations_identical(full, dirty, chunk, spec));
    // The event schedule itself must be untouched by the skip: same
    // trace byte for byte, same message counters.
    ASSERT_EQ(trace_full.size(), trace_dirty.size()) << spec;
    ASSERT_TRUE(trace_full == trace_dirty)
        << "event traces diverged within chunk " << chunk << "; " << spec;
    ASSERT_EQ(net_full.messages_delivered(), net_dirty.messages_delivered());
    ASSERT_EQ(net_full.messages_lost(), net_dirty.messages_lost());
  }
  // Post-convergence the dirty engine must have skipped some sweeps.
  EXPECT_GT(net_dirty.activity().nodes_skipped(), 0u) << spec;
}

TEST(DirtyEquivalence, AsyncSynchronousDaemonLockstep) {
  run_async_trial({"synchronous", sim::DaemonKind::kSynchronous, 1.0}, 600, 3);
}

TEST(DirtyEquivalence, AsyncRandomizedDaemonLockstep) {
  run_async_trial({"randomized", sim::DaemonKind::kRandomized, 1.0}, 601, 3);
}

TEST(DirtyEquivalence, AsyncUnfairDaemonLockstep) {
  run_async_trial({"unfair", sim::DaemonKind::kUnfairRoundRobin, 1.0}, 602, 3);
}

TEST(DirtyEquivalence, AsyncLossyMediumLockstep) {
  // Unlike the synchronous stepper, the async skip never touches the
  // event or RNG schedule, so it composes with a lossy medium.
  run_async_trial({"randomized", sim::DaemonKind::kRandomized, 0.7}, 603, 4);
}

TEST(DirtyEquivalence, AsyncMobilityLockstep) {
  const std::size_t n = 70;
  const double radius = 0.16;
  auto w = testsupport::make_deployment(n, radius, 700);
  auto full = make_protocol(w, 13);
  auto dirty = make_protocol(w, 13);

  mobility::RandomDirection mover(n, {0.0, 1.6}, 1.0, util::Rng(701));
  topology::LiveTopology live_full(w.points, radius);
  topology::LiveTopology live_dirty(w.points, radius);

  sim::PerfectDelivery loss_a, loss_b;
  sim::AsyncConfig config;
  config.daemon = sim::DaemonKind::kRandomized;
  sim::AsyncNetwork net_full(live_full.graph(), full, loss_a, config,
                             util::Rng(702));
  sim::AsyncNetwork net_dirty(live_dirty.graph(), dirty, loss_b, config,
                              util::Rng(702));
  net_dirty.set_stepping(sim::Stepping::kDirty);
  const std::string spec =
      spec_string("async-mobility", n, radius, 700, 13, "daemon=randomized");

  for (std::size_t window = 0; window < 10; ++window) {
    mover.step(w.points, 0.2);
    // Same points, two independent topology indexes; both engines see
    // the perturbation as an event at "now".
    net_full.schedule_topology_update(
        net_full.now(),
        [&]() -> const graph::EdgeDelta& { return live_full.update(w.points); });
    net_dirty.schedule_topology_update(
        net_dirty.now(), [&]() -> const graph::EdgeDelta& {
          return live_dirty.update(w.points);
        });
    net_full.run_for(2.0);
    net_dirty.run_for(2.0);
    ASSERT_TRUE(populations_identical(full, dirty, window, spec));
    ASSERT_EQ(net_full.messages_expired(), net_dirty.messages_expired());
  }
}

TEST(DirtyEquivalence, ModeSwitchMidRunKeepsTrajectory) {
  // Entering and leaving dirty mode mid-run must leave the trajectory
  // untouched: tracking off restores the classic byte-for-byte paths.
  const auto w = testsupport::make_deployment(80, 0.14, 800);
  auto a = make_protocol(w, 21);
  auto b = make_protocol(w, 21);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_a(w.graph, a, loss_a, 1);
  sim::Network net_b(w.graph, b, loss_b, 1);
  const std::string spec = spec_string("sync-mode-switch", 80, 0.14, 800, 21);

  std::size_t tick = 0;
  auto lockstep = [&](std::size_t steps) {
    for (std::size_t s = 0; s < steps; ++s, ++tick) {
      net_a.step();
      net_b.step();
      ASSERT_TRUE(populations_identical(a, b, tick, spec));
    }
  };
  lockstep(10);
  net_b.set_stepping(sim::Stepping::kDirty);
  lockstep(15);
  net_b.set_stepping(sim::Stepping::kFull);
  lockstep(10);
  net_b.set_stepping(sim::Stepping::kDirty);
  lockstep(15);
}

}  // namespace
}  // namespace ssmwn
