// Tests for the topology-dynamics generators (link flaps, node churn)
// and the protocol's behavior under them.
#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/protocol.hpp"
#include "sim/network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

TEST(Churn, DropLinksKeepsExpectedFraction) {
  util::Rng rng(1);
  const auto pts = topology::uniform_points(300, rng);
  const auto base = topology::unit_disk_graph(pts, 0.1);
  util::RunningStats kept;
  for (int trial = 0; trial < 20; ++trial) {
    const auto flapped = sim::drop_links(base, 0.3, rng);
    kept.add(static_cast<double>(flapped.edge_count()) /
             static_cast<double>(base.edge_count()));
  }
  EXPECT_NEAR(kept.mean(), 0.7, 0.03);
}

TEST(Churn, DropLinksBoundaries) {
  util::Rng rng(2);
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(sim::drop_links(g, 0.0, rng).edge_count(), 2u);
  EXPECT_EQ(sim::drop_links(g, 1.0, rng).edge_count(), 0u);
  EXPECT_THROW(sim::drop_links(g, 1.5, rng), std::invalid_argument);
}

TEST(Churn, MaskNodesIsolatesDownNodes) {
  const auto g = graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<char> alive{1, 0, 1, 1};
  const auto masked = sim::mask_nodes(g, alive);
  EXPECT_EQ(masked.degree(1), 0u);
  EXPECT_EQ(masked.degree(0), 0u);  // its only neighbor is down
  EXPECT_TRUE(masked.adjacent(2, 3));
}

TEST(Churn, NodeChurnRatesRespected) {
  sim::NodeChurn churn(2000, /*down_rate=*/0.1, /*up_rate=*/0.3,
                       util::Rng(3));
  // Stationary availability = up / (up + down) = 0.75.
  for (int warmup = 0; warmup < 100; ++warmup) churn.step();
  util::RunningStats alive;
  for (int t = 0; t < 100; ++t) {
    churn.step();
    alive.add(static_cast<double>(churn.alive_count()) / 2000.0);
  }
  EXPECT_NEAR(alive.mean(), 0.75, 0.03);
}

TEST(Churn, MaskNodesPreservesIndicesAndNodeCount) {
  // Down nodes keep their index — the protocol addresses nodes by graph
  // index across windows, so masking must never compact or reorder.
  const auto g = graph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                       {4, 5}, {5, 0}});
  const std::vector<char> alive{1, 0, 1, 1, 0, 1};
  const auto masked = sim::mask_nodes(g, alive);
  EXPECT_EQ(masked.node_count(), g.node_count());
  // Surviving adjacency is exactly the subgraph between up nodes, at
  // the original indices.
  EXPECT_TRUE(masked.adjacent(2, 3));
  EXPECT_FALSE(masked.adjacent(0, 1));  // 1 is down
  EXPECT_FALSE(masked.adjacent(3, 4));  // 4 is down
  EXPECT_FALSE(masked.adjacent(4, 5));
  EXPECT_TRUE(masked.adjacent(5, 0));   // both up, edge survives
  EXPECT_EQ(masked.degree(1), 0u);
  EXPECT_EQ(masked.degree(4), 0u);
  // All-up mask is an identity on the edge set.
  const auto all_up = sim::mask_nodes(g, std::vector<char>(6, 1));
  EXPECT_EQ(all_up.edge_count(), g.edge_count());
}

TEST(Churn, NodeChurnSojournTimesAreGeometric) {
  // Up sojourns end with probability down_rate per window, so their
  // lengths are geometric with mean 1/down_rate; same for down sojourns
  // with up_rate. Measure both from a long trajectory.
  const double down_rate = 0.2;
  const double up_rate = 0.4;
  sim::NodeChurn churn(400, down_rate, up_rate, util::Rng(11));
  std::vector<std::size_t> sojourn(400, 0);
  std::vector<char> prev = churn.alive();
  util::RunningStats up_lengths, down_lengths;
  for (int t = 0; t < 400; ++t) {
    const auto& now = churn.step();
    for (std::size_t p = 0; p < now.size(); ++p) {
      if (now[p] == prev[p]) {
        ++sojourn[p];
      } else {
        // A completed sojourn in the previous state.
        (prev[p] ? up_lengths : down_lengths)
            .add(static_cast<double>(sojourn[p] + 1));
        sojourn[p] = 0;
      }
    }
    prev = now;
  }
  ASSERT_GT(up_lengths.count(), 1000u);
  ASSERT_GT(down_lengths.count(), 1000u);
  EXPECT_NEAR(up_lengths.mean(), 1.0 / down_rate, 0.25);
  EXPECT_NEAR(down_lengths.mean(), 1.0 / up_rate, 0.15);
}

TEST(Churn, NodeChurnStartsAllUp) {
  sim::NodeChurn churn(10, 0.5, 0.5, util::Rng(1));
  EXPECT_EQ(churn.alive_count(), 10u);
  EXPECT_EQ(churn.alive().size(), 10u);
}

TEST(Churn, NodeChurnRejectsBadRates) {
  EXPECT_THROW(sim::NodeChurn(5, -0.1, 0.5, util::Rng(4)),
               std::invalid_argument);
  EXPECT_THROW(sim::NodeChurn(5, 0.1, 1.5, util::Rng(4)),
               std::invalid_argument);
}

TEST(Churn, ProtocolTracksFlappingTopology) {
  // The protocol must keep converging to the oracle of whatever the
  // current topology is, as links flap between two configurations.
  util::Rng rng(5);
  const auto pts = topology::uniform_points(80, rng);
  const auto base = topology::unit_disk_graph(pts, 0.15);
  const auto ids = topology::random_ids(base.node_count(), rng);
  const auto degraded = sim::drop_links(base, 0.25, rng);

  core::ProtocolConfig config;
  config.delta_hint = base.max_degree();
  config.cache_max_age = 4;
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::PerfectDelivery loss;
  sim::Network network(base, protocol, loss);

  auto matches = [&](const graph::Graph& g) {
    const auto oracle = core::cluster_density(g, ids, {});
    for (graph::NodeId p = 0; p < g.node_count(); ++p) {
      const auto& s = protocol.state(p);
      if (!s.head_valid || s.head != oracle.head_id[p]) return false;
    }
    return true;
  };

  network.run(60);
  EXPECT_TRUE(matches(base));
  network.set_graph(degraded);
  network.run(80);
  EXPECT_TRUE(matches(degraded));
  network.set_graph(base);
  network.run(80);
  EXPECT_TRUE(matches(base));
}

}  // namespace
}  // namespace ssmwn
