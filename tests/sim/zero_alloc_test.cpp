// Steady-state allocation audit for the arena step engine.
//
// The engine's contract is that once caches and arena buffers have
// reached their steady-state sizes, `Network::step()` touches the heap
// zero times: frames live in reused flat buffers, cache entries are
// updated in place, and the worker pool dispatches with a function
// pointer, not a std::function. This test links a counting global
// operator new and asserts the count stays flat across steady-state
// steps — on one thread and on a warmed-up pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_allocations;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded ? padded : align)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Replace the global allocation functions for this binary. Deallocation
// stays trivial; only the allocation count matters.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace ssmwn {
namespace {

TEST(ZeroAlloc, SteadyStateStepDoesNotTouchTheHeap) {
  util::Rng rng(2005);
  const std::size_t n = 300;
  const auto pts = topology::uniform_points(n, rng);
  const auto g = topology::unit_disk_graph(pts, 0.09);
  const auto ids = topology::random_ids(n, rng);

  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;  // include the randomized N1 rule
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  core::DensityProtocol protocol(ids, config, util::Rng(4));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 1);

  // Warm-up: caches fill, DAG names settle, arena buffers reach final
  // capacity.
  network.run(30);

  const std::size_t before = g_allocations.load();
  network.run(10);
  const std::size_t during = g_allocations.load() - before;
  EXPECT_EQ(during, 0u) << "steady-state steps allocated " << during
                        << " times";
}

// The active recovery regime: after a mass fault, caches already hold
// every neighbor but the payloads (DAG ids, metrics, head bits, digest
// lists) churn for many steps while the clustering re-settles. The
// pooled digest storage must absorb all of that churn in place —
// digest-list rewrites reuse each node's slab spans, cache entries are
// updated without rehashing, and the engine's double-buffered arenas
// are already at capacity. Zero heap traffic, same as steady state.
TEST(ZeroAlloc, ActiveRecoveryRegimeDoesNotTouchTheHeap) {
  util::Rng rng(2007);
  const std::size_t n = 300;
  const auto pts = topology::uniform_points(n, rng);
  const auto g = topology::unit_disk_graph(pts, 0.09);
  const auto ids = topology::random_ids(n, rng);

  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  core::DensityProtocol protocol(ids, config, util::Rng(4));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 1);

  network.run(30);  // steady: caches, slabs, and arenas at high water

  // corrupt_fraction itself may allocate (it plants phantom entries and
  // oversized digest lists), and the first few steps after it still
  // reshape storage: phantom cache entries age out over the timeout
  // window and slab spans regrow where the planted lists overflowed
  // their capacity. After that structural settling, the long
  // payload-churn recovery window — the part that used to be quadratic —
  // must be allocation-free.
  util::Rng chaos(2008);
  protocol.corrupt_fraction(chaos, 0.3);
  network.run(5);
  const std::size_t before = g_allocations.load();
  network.run(10);
  const std::size_t during = g_allocations.load() - before;
  EXPECT_EQ(during, 0u) << "active-recovery steps allocated " << during
                        << " times";
}

// The late-recovery regime the delta frames target: after the
// structural settling, rows trickle toward quiescence with only a few
// digests changing per step, so the engine grades rows delta-applicable
// and receivers patch in place. Encode (grade + extract into the delta
// pool) and apply (gallop patch of the cached entry) must both run out
// of capacity-retained buffers — zero heap traffic once warm.
TEST(ZeroAlloc, DeltaEncodeAndApplyDoNotTouchTheHeap) {
  util::Rng rng(2009);
  const std::size_t n = 300;
  const auto pts = topology::uniform_points(n, rng);
  const auto g = topology::unit_disk_graph(pts, 0.09);
  const auto ids = topology::random_ids(n, rng);

  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  core::DensityProtocol protocol(ids, config, util::Rng(4));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 1);

  network.run(30);  // steady: caches, slabs, arenas at high water

  // A mild fault keeps payloads churning for a while; after the first
  // few steps the delta pool has seen its high-water mark and the
  // remaining recovery — where delta grades dominate — allocates
  // nothing.
  util::Rng chaos(2010);
  protocol.corrupt_fraction(chaos, 0.1);
  network.run(5);
  const std::uint64_t graded_before = network.delta_rows_graded();
  const std::size_t before = g_allocations.load();
  network.run(10);
  const std::size_t during = g_allocations.load() - before;
  EXPECT_EQ(during, 0u) << "delta-churn steps allocated " << during
                        << " times";
  EXPECT_GT(network.delta_rows_graded(), graded_before)
      << "the audited window never took the delta path";
}

TEST(ZeroAlloc, PoolDispatchDoesNotTouchTheHeap) {
  util::Rng rng(2006);
  const std::size_t n = 200;
  const auto pts = topology::uniform_points(n, rng);
  const auto g = topology::unit_disk_graph(pts, 0.1);
  const auto ids = topology::random_ids(n, rng);

  core::ProtocolConfig config;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  core::DensityProtocol protocol(ids, config, util::Rng(4));
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 4);  // worker pool engaged

  network.run(30);  // warm-up: pool spawned, buffers sized, caches steady

  const std::size_t before = g_allocations.load();
  network.run(10);
  const std::size_t during = g_allocations.load() - before;
  EXPECT_EQ(during, 0u) << "pooled steady-state steps allocated " << during
                        << " times";
}

}  // namespace
}  // namespace ssmwn
