// Tests for the head-change execution tracer.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "sim/async_network.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(Trace, RecordsChangesAgainstBaseline) {
  sim::HeadTrace trace;
  EXPECT_EQ(trace.observe({1, 2, 3}), 0u);  // baseline
  EXPECT_EQ(trace.observe({1, 2, 3}), 0u);
  EXPECT_EQ(trace.observe({1, 9, 3}), 1u);
  EXPECT_EQ(trace.observe({7, 9, 8}), 2u);
  EXPECT_EQ(trace.changes().size(), 3u);
  EXPECT_EQ(trace.changes()[0].node, 1u);
  EXPECT_EQ(trace.changes()[0].old_head, 2u);
  EXPECT_EQ(trace.changes()[0].new_head, 9u);
  EXPECT_EQ(trace.nodes_touched(), 3u);
  EXPECT_EQ(trace.steps_observed(), 4u);
  EXPECT_EQ(trace.quiescent_since(), 4u);
}

TEST(Trace, QuiescenceOnNoChanges) {
  sim::HeadTrace trace;
  trace.observe({5, 5});
  trace.observe({5, 5});
  EXPECT_EQ(trace.quiescent_since(), 0u);
  EXPECT_TRUE(trace.changes().empty());
}

TEST(Trace, RenderIsBoundedByLimit) {
  sim::HeadTrace trace;
  trace.observe({0, 0, 0, 0});
  trace.observe({1, 1, 1, 1});
  trace.observe({2, 2, 2, 2});
  const auto text = trace.render(3);
  EXPECT_NE(text.find("step 1"), std::string::npos);
  EXPECT_NE(text.find("more)"), std::string::npos);
}

TEST(Trace, RenderListsEveryChangeWithinLimit) {
  sim::HeadTrace trace;
  trace.observe({3, 4});
  trace.observe({5, 4});  // node 0: 3 → 5 at step 1
  const auto text = trace.render(10);
  EXPECT_NE(text.find("step 1"), std::string::npos);
  EXPECT_NE(text.find("node 0"), std::string::npos);
  EXPECT_EQ(text.find("more)"), std::string::npos);  // nothing elided
}

TEST(Trace, NodesTouchedCountsDistinctNodes) {
  sim::HeadTrace trace;
  trace.observe({1, 1, 1});
  trace.observe({2, 1, 1});  // node 0 changes
  trace.observe({3, 1, 1});  // node 0 changes again
  EXPECT_EQ(trace.changes().size(), 2u);
  EXPECT_EQ(trace.nodes_touched(), 1u);  // still just node 0
}

TEST(Trace, ShrinkingSnapshotOnlyComparesCommonPrefix) {
  // A snapshot shorter than the baseline (e.g. observing a masked
  // sub-deployment) must not read past either vector.
  sim::HeadTrace trace;
  trace.observe({1, 2, 3, 4});
  EXPECT_EQ(trace.observe({9, 2}), 1u);  // only node 0 differs in common
  EXPECT_EQ(trace.changes().size(), 1u);
  EXPECT_EQ(trace.changes()[0].node, 0u);
}

TEST(Trace, AsyncExecutionQuiescesInEventTime) {
  // The tracer is engine-agnostic: drive it from the event engine by
  // sampling head values every virtual period; churn must die out.
  util::Rng rng(9);
  const auto pts = topology::uniform_points(90, rng);
  const auto g = topology::unit_disk_graph(pts, 0.14);
  const auto ids = topology::random_ids(g.node_count(), rng);
  core::ProtocolConfig config;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::PerfectDelivery loss;
  sim::AsyncNetwork network(g, protocol, loss, sim::AsyncConfig{},
                            rng.split());

  sim::HeadTrace trace;
  trace.observe(protocol.head_values());
  for (int period = 0; period < 60; ++period) {
    network.run_for(1.0);
    trace.observe(protocol.head_values());
  }
  EXPECT_GT(trace.changes().size(), 0u);
  EXPECT_LT(trace.quiescent_since(), 40u);
}

TEST(Trace, ProtocolExecutionQuiescesAndStaysQuiet) {
  // Trace a real protocol run: head churn must die out and never resume
  // (the "closure" half of self-stabilization).
  util::Rng rng(6);
  const auto pts = topology::uniform_points(100, rng);
  const auto g = topology::unit_disk_graph(pts, 0.13);
  const auto ids = topology::random_ids(g.node_count(), rng);
  core::ProtocolConfig config;
  config.delta_hint = g.max_degree();
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);

  sim::HeadTrace trace;
  trace.observe(protocol.head_values());
  for (int step = 0; step < 60; ++step) {
    network.step();
    trace.observe(protocol.head_values());
  }
  EXPECT_GT(trace.changes().size(), 0u);        // something happened
  EXPECT_LT(trace.quiescent_since(), 25u);      // and then it stopped
  const std::size_t quiet_at = trace.quiescent_since();
  // Confirm nothing after the quiescence point.
  for (const auto& change : trace.changes()) {
    EXPECT_LT(change.step, quiet_at);
  }
}

}  // namespace
}  // namespace ssmwn
