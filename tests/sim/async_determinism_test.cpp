// Determinism of the event-driven engine: the same deployment, config,
// and seed must replay the same event trace — event for event, field
// for field — and the same final protocol state, for every daemon, with
// and without loss, regardless of how the run is chopped into
// run_until intervals. This is the async half of the repo's replay
// guarantee (the campaign layer's byte-identical CSV/JSON rides on it).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/protocol.hpp"
#include "sim/async_network.hpp"
#include "sim/loss.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

static_assert(sim::TimestampedProtocol<core::DensityProtocol>,
              "DensityProtocol must implement the per-delivery hook");

struct Fixture {
  graph::Graph graph;
  topology::IdAssignment ids;
};

Fixture fixture(std::size_t n, double radius, std::uint64_t seed) {
  util::Rng rng(seed);
  Fixture f;
  const auto pts = topology::uniform_points(n, rng);
  f.graph = topology::unit_disk_graph(pts, radius);
  f.ids = topology::random_ids(n, rng);
  return f;
}

core::DensityProtocol make_protocol(const Fixture& f, std::uint64_t seed) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;  // exercises the randomized N1 rule
  config.delta_hint = std::max<std::uint64_t>(2, f.graph.max_degree());
  return core::DensityProtocol(f.ids, config, util::Rng(seed));
}

struct TraceRun {
  std::vector<sim::Event> trace;
  std::vector<topology::ProtocolId> heads;
  std::vector<double> metrics;
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;
};

TraceRun run_trace(const Fixture& f, sim::DaemonKind daemon, double tau,
                   std::uint64_t seed, double horizon_s,
                   double chunk_s) {
  auto protocol = make_protocol(f, seed);
  util::Rng chaos(seed ^ 0xBAD);
  protocol.corrupt_all(chaos);

  sim::PerfectDelivery perfect;
  sim::BernoulliDelivery lossy(tau < 1.0 ? tau : 1.0, util::Rng(seed ^ 0x10));
  sim::LossModel& medium = tau < 1.0
                               ? static_cast<sim::LossModel&>(lossy)
                               : static_cast<sim::LossModel&>(perfect);

  sim::AsyncConfig config;
  config.daemon = daemon;
  sim::AsyncNetwork network(f.graph, protocol, medium, config,
                            util::Rng(seed ^ 0x20));
  TraceRun out;
  network.set_event_log(&out.trace);
  for (double t = chunk_s; t <= horizon_s + 1e-9; t += chunk_s) {
    network.run_for(chunk_s);
  }
  out.heads = protocol.head_values();
  out.metrics = protocol.metrics();
  out.delivered = network.messages_delivered();
  out.events = network.events_processed();
  return out;
}

::testing::AssertionResult traces_identical(const TraceRun& a,
                                            const TraceRun& b) {
  if (a.trace.size() != b.trace.size()) {
    return ::testing::AssertionFailure()
           << "trace lengths differ: " << a.trace.size() << " vs "
           << b.trace.size();
  }
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    if (!(a.trace[i] == b.trace[i])) {
      return ::testing::AssertionFailure() << "trace diverges at event " << i;
    }
  }
  if (a.delivered != b.delivered || a.events != b.events) {
    return ::testing::AssertionFailure() << "counters differ";
  }
  if (a.heads != b.heads) {
    return ::testing::AssertionFailure() << "final heads differ";
  }
  if (a.metrics.size() != b.metrics.size() ||
      std::memcmp(a.metrics.data(), b.metrics.data(),
                  a.metrics.size() * sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "final metrics differ bitwise";
  }
  return ::testing::AssertionSuccess();
}

TEST(AsyncDeterminism, SameSeedSameTraceEveryDaemon) {
  const auto f = fixture(120, 0.12, 11);
  for (const auto daemon :
       {sim::DaemonKind::kSynchronous, sim::DaemonKind::kRandomized,
        sim::DaemonKind::kUnfairRoundRobin}) {
    const auto first = run_trace(f, daemon, 1.0, 77, 20.0, 20.0);
    const auto second = run_trace(f, daemon, 1.0, 77, 20.0, 20.0);
    ASSERT_GT(first.trace.size(), 0u);
    EXPECT_TRUE(traces_identical(first, second))
        << "daemon=" << static_cast<int>(daemon);
  }
}

TEST(AsyncDeterminism, TraceIndependentOfRunChunking) {
  // run_until boundaries are observation points, not synchronization
  // points: chopping the same horizon into different intervals must not
  // change a single event.
  const auto f = fixture(100, 0.13, 5);
  const auto coarse =
      run_trace(f, sim::DaemonKind::kRandomized, 1.0, 9, 18.0, 18.0);
  const auto fine =
      run_trace(f, sim::DaemonKind::kRandomized, 1.0, 9, 18.0, 0.75);
  EXPECT_TRUE(traces_identical(coarse, fine));
}

TEST(AsyncDeterminism, LossyMediumStaysDeterministic) {
  const auto f = fixture(90, 0.14, 21);
  const auto first =
      run_trace(f, sim::DaemonKind::kRandomized, 0.7, 3, 15.0, 15.0);
  const auto second =
      run_trace(f, sim::DaemonKind::kRandomized, 0.7, 3, 15.0, 15.0);
  ASSERT_GT(first.delivered, 0u);
  EXPECT_TRUE(traces_identical(first, second));
}

TEST(AsyncDeterminism, DifferentSeedsDiverge) {
  // Sanity: the trace actually depends on the seed (guards against a
  // determinism test that would pass on a constant engine).
  const auto f = fixture(80, 0.14, 2);
  const auto a = run_trace(f, sim::DaemonKind::kRandomized, 1.0, 1, 10.0, 10.0);
  const auto b = run_trace(f, sim::DaemonKind::kRandomized, 1.0, 2, 10.0, 10.0);
  EXPECT_FALSE(traces_identical(a, b));
}

TEST(AsyncDeterminism, TimestampHookObservesDeliveries) {
  const auto f = fixture(60, 0.16, 4);
  auto protocol = make_protocol(f, 6);
  sim::PerfectDelivery loss;
  sim::AsyncNetwork network(f.graph, protocol, loss, sim::AsyncConfig{},
                            util::Rng(8));
  network.run_for(10.0);
  std::uint64_t hook_total = 0;
  double last_heard_max = -1.0;
  for (graph::NodeId p = 0; p < f.graph.node_count(); ++p) {
    hook_total += protocol.state(p).deliveries;
    last_heard_max = std::max(last_heard_max, protocol.state(p).last_heard_s);
  }
  EXPECT_EQ(hook_total, network.messages_delivered());
  EXPECT_GT(last_heard_max, 0.0);
  EXPECT_LE(last_heard_max, 10.0);
}

}  // namespace
}  // namespace ssmwn
