// Unit tests for the deterministic event queue: total order, admission
// tiebreak, and heap behavior under interleaved push/pop.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  sim::EventQueue queue;
  for (const sim::VirtualTime t : {50u, 10u, 30u, 20u, 40u}) {
    queue.push(sim::Event{t, 0, sim::EventKind::kActivation, 0, 0, 0});
  }
  std::vector<sim::VirtualTime> order;
  while (!queue.empty()) order.push_back(queue.pop().time);
  EXPECT_EQ(order, (std::vector<sim::VirtualTime>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, TiesBreakByAdmissionOrder) {
  sim::EventQueue queue;
  // Five simultaneous events from distinct nodes: they must come back
  // in exactly the order they were admitted, regardless of heap shape.
  for (graph::NodeId p = 0; p < 5; ++p) {
    queue.push(sim::Event{100, 0, sim::EventKind::kDelivery, p, 0, 0});
  }
  for (graph::NodeId expected = 0; expected < 5; ++expected) {
    const auto event = queue.pop();
    EXPECT_EQ(event.node, expected);
    EXPECT_EQ(event.seq, expected);  // seq is the admission counter
  }
}

TEST(EventQueue, SeqIsAssignedByTheQueue) {
  sim::EventQueue queue;
  queue.push(sim::Event{1, /*seq=*/999, sim::EventKind::kActivation, 7, 0, 0});
  EXPECT_EQ(queue.pop().seq, 0u);  // caller-supplied seq is ignored
  EXPECT_EQ(queue.admitted(), 1u);
}

TEST(EventQueue, InterleavedPushPopMatchesReferenceModel) {
  // Reference model: a plain vector of pending events; every pop must
  // return exactly the event_before-minimum of the pending set.
  util::Rng rng(42);
  sim::EventQueue queue;
  std::vector<sim::Event> pending;
  for (int round = 0; round < 400; ++round) {
    sim::Event e{static_cast<sim::VirtualTime>(rng.below(50)), 0,
                 sim::EventKind::kActivation,
                 static_cast<graph::NodeId>(rng.below(16)), 0, 0};
    queue.push(e);
    e.seq = queue.admitted() - 1;  // the seq the queue just assigned
    pending.push_back(e);
    if (rng.chance(0.4)) {
      const auto popped = queue.pop();
      const auto least = std::min_element(
          pending.begin(), pending.end(),
          [](const sim::Event& a, const sim::Event& b) {
            return sim::event_before(a, b);
          });
      ASSERT_EQ(popped, *least);
      pending.erase(least);
    }
  }
  while (!queue.empty()) {
    const auto popped = queue.pop();
    const auto least = std::min_element(
        pending.begin(), pending.end(),
        [](const sim::Event& a, const sim::Event& b) {
          return sim::event_before(a, b);
        });
    ASSERT_EQ(popped, *least);
    pending.erase(least);
  }
  EXPECT_TRUE(pending.empty());
}

TEST(EventQueue, ToTicksRoundsAndClamps) {
  EXPECT_EQ(sim::to_ticks(1.0), sim::kTicksPerSecond);
  EXPECT_EQ(sim::to_ticks(0.5), sim::kTicksPerSecond / 2);
  EXPECT_EQ(sim::to_ticks(-0.25), 0u);  // negative delays clamp
  EXPECT_EQ(sim::to_ticks(0.0), 0u);
  // Saturation, not UB, for durations beyond the 64-bit tick range.
  EXPECT_EQ(sim::to_ticks(1e30),
            std::numeric_limits<sim::VirtualTime>::max());
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::to_ticks(2.5)), 2.5);
}

}  // namespace
}  // namespace ssmwn
