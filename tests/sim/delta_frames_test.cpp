// Delta-encoded digest frames: when the engine proves a sender's id
// sequence held but a sparse subset of digest payloads moved, delivery
// collapses to an in-place patch of just the changed digests
// (deliver_delta), gated by a base-generation tag naming the arena
// build every listener consumed. Like the other redelivery paths this
// is pure cost model — every test here pins the delta-armed execution
// bitwise against one that never takes the path, across faults from
// every certifier class, lossy media, topology deltas, stepping-mode
// switches, and both step engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "sim/sharded_network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/incremental.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"
#include "verify/faults.hpp"

namespace ssmwn {
namespace {

core::DensityProtocol make_protocol(const graph::Graph& g,
                                    const topology::IdAssignment& ids,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  return core::DensityProtocol(ids, config, util::Rng(seed));
}

/// Delta-armed arena engine vs legacy engine (full deliver every time),
/// lockstep through settle → mass fault → recovery → re-settle. The
/// recovery tail is where delta grades appear (payload churn trickles
/// down to a few digests per row before rows go fully bit-equal); the
/// counter assertion proves the path actually ran, not just declined.
TEST(DeltaFrames, DeltaPathBitIdenticalToLegacyEngine) {
  util::Rng rng(20050612);
  const std::size_t n = 250;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.11);

  auto fast = make_protocol(g, ids, 5);
  auto slow = make_protocol(g, ids, 5);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_fast(g, fast, loss_a, 1);
  sim::Network net_slow(g, slow, loss_b, 1);
  net_slow.set_legacy_engine(true);

  util::Rng chaos_a(77), chaos_b(77);
  for (std::size_t step = 0; step < 40; ++step) {
    if (step == 12) {
      ASSERT_EQ(fast.corrupt_fraction(chaos_a, 0.15),
                slow.corrupt_fraction(chaos_b, 0.15));
    }
    if (step == 26) {
      fast.reset_node(3);
      slow.reset_node(3);
    }
    net_fast.step();
    net_slow.step();
    const auto div = core::first_divergent_node(fast, slow);
    ASSERT_EQ(div, std::nullopt)
        << "step " << step << ":\n"
        << core::describe_divergence(fast, slow, *div);
  }
  EXPECT_EQ(net_fast.messages_delivered(), net_slow.messages_delivered());
  EXPECT_GT(net_fast.delta_rows_graded(), 0u)
      << "the run never graded a row delta-applicable — the path under "
         "test did not execute";
  EXPECT_EQ(net_slow.delta_rows_graded(), 0u);  // legacy engine: no grading
}

/// Every certifier fault class, injected mid-run into both executions
/// with identical RNG state: the planted state must decline the patch
/// paths (resync flags) and converge to the same bytes the hint-free
/// engine produces.
TEST(DeltaFrames, AllFaultClassesRecoverBitIdentically) {
  util::Rng rng(414);
  const std::size_t n = 180;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.12);
  const verify::StateCorruptor corruptor(g, ids);

  for (const verify::FaultClass fault : verify::kAllFaultClasses) {
    auto fast = make_protocol(g, ids, 21);
    auto slow = make_protocol(g, ids, 21);
    sim::PerfectDelivery loss_a, loss_b;
    sim::Network net_fast(g, fast, loss_a, 1);
    sim::Network net_slow(g, slow, loss_b, 1);
    net_slow.set_legacy_engine(true);

    net_fast.run(10);
    net_slow.run(10);

    util::Rng chaos_a(99), chaos_b(99);
    corruptor.apply(fast, fault, chaos_a);
    corruptor.apply(slow, fault, chaos_b);
    ASSERT_EQ(core::first_divergent_node(fast, slow), std::nullopt)
        << "corruptor is nondeterministic for "
        << verify::to_string(fault);

    for (std::size_t step = 0; step < 15; ++step) {
      net_fast.step();
      net_slow.step();
      const auto div = core::first_divergent_node(fast, slow);
      ASSERT_EQ(div, std::nullopt)
          << verify::to_string(fault) << " step " << step << ":\n"
          << core::describe_divergence(fast, slow, *div);
    }
  }
}

/// A lossy medium never lets the hints arm (a frame some listener missed
/// invalidates the consumed-rows induction), but the grading and delta
/// extraction still run every step — they must be inert.
TEST(DeltaFrames, LossyMediumStaysBitIdentical) {
  util::Rng rng(88);
  const std::size_t n = 200;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.12);

  auto fast = make_protocol(g, ids, 13);
  auto slow = make_protocol(g, ids, 13);
  sim::BernoulliDelivery loss_a(0.7, util::Rng(31));
  sim::BernoulliDelivery loss_b(0.7, util::Rng(31));
  sim::Network net_fast(g, fast, loss_a, 1);
  sim::Network net_slow(g, slow, loss_b, 1);
  net_slow.set_legacy_engine(true);

  for (std::size_t step = 0; step < 30; ++step) {
    net_fast.step();
    net_slow.step();
    const auto div = core::first_divergent_node(fast, slow);
    ASSERT_EQ(div, std::nullopt)
        << "step " << step << ":\n"
        << core::describe_divergence(fast, slow, *div);
  }
  EXPECT_EQ(net_fast.messages_delivered(), net_slow.messages_delivered());
}

/// Topology deltas orphan the banked delta rows (receivers prune caches,
/// adjacency changes who consumed what): the base-generation tag must be
/// poisoned, then re-arm after one clean full sweep.
TEST(DeltaFrames, TopologyDeltasPoisonAndRearmBitIdentically) {
  util::Rng rng(11);
  const std::size_t n = 150;
  const double radius = 0.14;
  auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);

  topology::LiveTopology topo(points, radius);
  auto fast = make_protocol(topo.graph(), ids, 9);
  auto slow = make_protocol(topo.graph(), ids, 9);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_fast(topo.graph(), fast, loss_a, 1);
  sim::Network net_slow(topo.graph(), slow, loss_b, 1);
  net_slow.set_legacy_engine(true);

  util::Rng jitter(13);
  for (int window = 0; window < 6; ++window) {
    net_fast.run(8);
    net_slow.run(8);
    for (int moves = 0; moves < 5; ++moves) {
      const auto v = jitter.below(n);
      points[v] = {jitter.uniform(), jitter.uniform()};
    }
    const auto& delta = topo.update(points);
    net_fast.apply_topology_delta(delta);
    net_slow.apply_topology_delta(delta);
    net_fast.step();
    net_slow.step();
    const auto div = core::first_divergent_node(fast, slow);
    ASSERT_EQ(div, std::nullopt)
        << "window " << window << ":\n"
        << core::describe_divergence(fast, slow, *div);
  }
}

/// Stepping-mode and engine switches mid-run: each switch drops the row
/// hints and poisons the delta base; the next windows must re-arm onto
/// the same bytes.
TEST(DeltaFrames, SteppingAndEngineSwitchesRearmBitIdentically) {
  util::Rng rng(52);
  const std::size_t n = 200;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.11);

  auto fast = make_protocol(g, ids, 5);
  auto slow = make_protocol(g, ids, 5);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_fast(g, fast, loss_a, 1);
  sim::Network net_slow(g, slow, loss_b, 1);
  net_slow.set_legacy_engine(true);

  util::Rng chaos_a(7), chaos_b(7);
  for (std::size_t step = 0; step < 45; ++step) {
    if (step == 10) {
      ASSERT_EQ(fast.corrupt_fraction(chaos_a, 0.2),
                slow.corrupt_fraction(chaos_b, 0.2));
    }
    if (step == 18) net_fast.set_stepping(sim::Stepping::kDirty);
    if (step == 28) net_fast.set_stepping(sim::Stepping::kFull);
    if (step == 34) net_fast.set_legacy_engine(true);
    if (step == 38) net_fast.set_legacy_engine(false);
    net_fast.step();
    net_slow.step();
    const auto div = core::first_divergent_node(fast, slow);
    ASSERT_EQ(div, std::nullopt)
        << "step " << step << ":\n"
        << core::describe_divergence(fast, slow, *div);
  }
}

/// Sharded engine with boundary crossings: delta rows ride the frame
/// mailboxes for boundary senders and the shard-local arena for owned
/// ones; both must land on the flat engine's bytes, and since both
/// engines grade the same rows the counters must agree exactly.
TEST(DeltaFrames, ShardedDeltaPathBitIdenticalToFlat) {
  util::Rng rng(606);
  const std::size_t n = 220;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.12);

  auto flat = make_protocol(g, ids, 5);
  auto sharded = make_protocol(g, ids, 5);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_flat(g, flat, loss_a, 1);
  sim::ShardedNetwork net_shard(g, sharded, loss_b, std::size_t{5}, 2);

  util::Rng chaos_a(17), chaos_b(17);
  for (std::size_t step = 0; step < 40; ++step) {
    if (step == 12) {
      ASSERT_EQ(flat.corrupt_fraction(chaos_a, 0.15),
                sharded.corrupt_fraction(chaos_b, 0.15));
    }
    net_flat.step();
    net_shard.step();
    const auto div = core::first_divergent_node(flat, sharded);
    ASSERT_EQ(div, std::nullopt)
        << "step " << step << ":\n"
        << core::describe_divergence(flat, sharded, *div);
  }
  EXPECT_EQ(net_flat.messages_delivered(), net_shard.messages_delivered());
  EXPECT_EQ(net_flat.delta_rows_graded(), net_shard.delta_rows_graded());
  EXPECT_GT(net_shard.delta_rows_graded(), 0u);
}

/// Unit semantics of the protocol-side half of the delta contract.
TEST(DeltaFrames, DeliverDeltaDeclinesWhenUnsafe) {
  util::Rng rng(3);
  const std::size_t n = 40;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.25);

  auto protocol = make_protocol(g, ids, 1);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 1);
  network.run(10);  // settled: caches mirror neighborhoods

  graph::NodeId sender = 0, receiver = 0;
  bool found = false;
  for (graph::NodeId p = 0; p < static_cast<graph::NodeId>(n) && !found;
       ++p) {
    for (const auto q : g.neighbors(p)) {
      sender = p;
      receiver = q;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "deployment has no edge";

  core::DensityProtocol::FrameHeader header;
  std::vector<core::DensityProtocol::Digest> digests(
      protocol.digest_count(sender));
  protocol.make_frame(sender, header, digests);
  const std::size_t len = digests.size();
  ASSERT_GT(len, 0u);

  // Settled and untouched: an empty delta (header-only refresh) and a
  // one-digest patch both accept.
  EXPECT_TRUE(protocol.deliver_delta(receiver, header, len, {}));
  EXPECT_TRUE(protocol.deliver_delta(
      receiver, header, len, std::span(digests.data(), 1)));

  // Delivering a node's own frame back to it is a recognized no-op.
  EXPECT_TRUE(protocol.deliver_delta(sender, header, len, {}));

  // Unknown sender id: the receiver has no entry to patch.
  core::DensityProtocol::FrameHeader phantom = header;
  phantom.id = 0xFFFFFFFF;
  EXPECT_FALSE(protocol.deliver_delta(receiver, phantom, len, {}));

  // Row-length mismatch: the engine's id-sequence proof cannot apply.
  EXPECT_FALSE(protocol.deliver_delta(receiver, header, len + 1, {}));

  // A changed digest whose id the cached entry doesn't hold: the base
  // diverged, decline so the engine falls back to a fuller path.
  core::DensityProtocol::Digest missing = digests[0];
  missing.id = 0xFFFFFFFF;
  EXPECT_FALSE(protocol.deliver_delta(receiver, header, len,
                                      std::span(&missing, 1)));

  // External mutation raises the resync flag: decline until the next
  // full sweep clears it.
  { auto s = protocol.mutable_state(receiver); (void)s; }
  EXPECT_FALSE(protocol.deliver_delta(receiver, header, len, {}));
  network.step();
  digests.resize(protocol.digest_count(sender));
  protocol.make_frame(sender, header, digests);
  EXPECT_TRUE(protocol.deliver_delta(receiver, header, digests.size(), {}));
}

}  // namespace
}  // namespace ssmwn
