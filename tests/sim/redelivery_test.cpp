// The redelivery fast paths: when the step engine proves a sender's
// frame row unchanged since the previous step (bit-identical, or
// id-sequence-identical with churned payloads), delivery collapses to an
// age reset or a straight payload overwrite. These paths are pure cost
// model — every test here pins them bitwise against an execution that
// never takes them, including across the external mutations (faults,
// topology deltas) that must force a resync.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/incremental.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

core::DensityProtocol make_protocol(const graph::Graph& g,
                                    const topology::IdAssignment& ids,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  return core::DensityProtocol(ids, config, util::Rng(seed));
}

/// Arena engine (fast paths armed) vs legacy engine (no row hints, full
/// deliver every time), identical protocol state, lockstep: any byte the
/// fast paths fail to write shows up as a divergence. Faults injected
/// mid-run are the adversarial part — a redelivery that ignored the
/// resync flag would preserve planted garbage the full path overwrites.
TEST(Redelivery, ArenaFastPathsBitIdenticalToLegacyEngine) {
  util::Rng rng(20050612);
  const std::size_t n = 250;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.11);

  auto fast = make_protocol(g, ids, 5);
  auto slow = make_protocol(g, ids, 5);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_fast(g, fast, loss_a, 1);
  sim::Network net_slow(g, slow, loss_b, 1);
  net_slow.set_legacy_engine(true);

  util::Rng chaos_a(77), chaos_b(77);
  for (std::size_t step = 0; step < 40; ++step) {
    if (step == 12) {
      // Deep in the settled regime, where nearly every row redelivers.
      ASSERT_EQ(fast.corrupt_fraction(chaos_a, 0.15),
                slow.corrupt_fraction(chaos_b, 0.15));
    }
    if (step == 26) {
      fast.reset_node(3);
      slow.reset_node(3);
    }
    net_fast.step();
    net_slow.step();
    const auto div = core::first_divergent_node(fast, slow);
    ASSERT_EQ(div, std::nullopt)
        << "step " << step << ":\n"
        << core::describe_divergence(fast, slow, *div);
  }
  EXPECT_EQ(net_fast.messages_delivered(), net_slow.messages_delivered());
}

/// Topology deltas clobber row identity (nodes hear different senders,
/// caches are pruned): the engine must drop its hints and the next sweep
/// must land on the same bytes the hint-free engine produces.
TEST(Redelivery, TopologyDeltasInvalidateHintsBitIdentically) {
  util::Rng rng(11);
  const std::size_t n = 150;
  const double radius = 0.14;
  auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);

  topology::LiveTopology topo(points, radius);
  auto fast = make_protocol(topo.graph(), ids, 9);
  auto slow = make_protocol(topo.graph(), ids, 9);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_fast(topo.graph(), fast, loss_a, 1);
  sim::Network net_slow(topo.graph(), slow, loss_b, 1);
  net_slow.set_legacy_engine(true);

  util::Rng jitter(13);
  for (int window = 0; window < 6; ++window) {
    net_fast.run(8);
    net_slow.run(8);
    // Nudge a few nodes; LiveTopology turns that into an edge delta.
    for (int moves = 0; moves < 5; ++moves) {
      const auto v = jitter.below(n);
      points[v] = {jitter.uniform(), jitter.uniform()};
    }
    const auto& delta = topo.update(points);
    net_fast.apply_topology_delta(delta);
    net_slow.apply_topology_delta(delta);
    net_fast.step();
    net_slow.step();
    const auto div = core::first_divergent_node(fast, slow);
    ASSERT_EQ(div, std::nullopt)
        << "window " << window << ":\n"
        << core::describe_divergence(fast, slow, *div);
  }
}

/// Unit semantics of the protocol-side half of the contract.
TEST(Redelivery, ProtocolFastPathsDeclineWhenUnsafe) {
  util::Rng rng(3);
  const std::size_t n = 40;
  const auto points = topology::uniform_points(n, rng);
  const auto ids = topology::random_ids(n, rng);
  const auto g = topology::unit_disk_graph(points, 0.25);

  auto protocol = make_protocol(g, ids, 1);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss, 1);
  network.run(10);  // settled: caches mirror neighborhoods

  graph::NodeId sender = 0, receiver = 0;
  bool found = false;
  for (graph::NodeId p = 0; p < static_cast<graph::NodeId>(n) && !found;
       ++p) {
    for (const auto q : g.neighbors(p)) {
      sender = p;
      receiver = q;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "deployment has no edge";

  core::DensityProtocol::FrameHeader header;
  std::vector<core::DensityProtocol::Digest> digests(
      protocol.digest_count(sender));
  protocol.make_frame(sender, header, digests);

  // Settled and untouched: both fast paths accept.
  EXPECT_TRUE(protocol.redeliver_unchanged(receiver, header));
  EXPECT_TRUE(protocol.deliver_payload(receiver, header, digests));

  // Unknown sender id: the receiver has no entry to refresh.
  core::DensityProtocol::FrameHeader phantom = header;
  phantom.id = 0xFFFFFFFF;  // ids are random_ids(n) values, not this
  EXPECT_FALSE(protocol.redeliver_unchanged(receiver, phantom));
  EXPECT_FALSE(protocol.deliver_payload(receiver, phantom, digests));

  // Digest-list length mismatch: the engine's proof cannot apply.
  if (!digests.empty()) {
    std::vector<core::DensityProtocol::Digest> shorter(digests.begin(),
                                                       digests.end() - 1);
    EXPECT_FALSE(protocol.deliver_payload(receiver, header, shorter));
  }

  // External mutation raises the resync flag: both paths must decline
  // until the next full sweep clears it.
  { auto s = protocol.mutable_state(receiver); (void)s; }
  EXPECT_FALSE(protocol.redeliver_unchanged(receiver, header));
  EXPECT_FALSE(protocol.deliver_payload(receiver, header, digests));
  network.step();  // full sweep: end_step clears the flag
  digests.resize(protocol.digest_count(sender));
  protocol.make_frame(sender, header, digests);
  EXPECT_TRUE(protocol.redeliver_unchanged(receiver, header));
  EXPECT_TRUE(protocol.deliver_payload(receiver, header, digests));
}

}  // namespace
}  // namespace ssmwn
