// Unit tests for the radio runtime: loss models and synchronous network
// semantics (double buffering, per-receiver delivery).
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

/// Minimal counting protocol: every node broadcasts its current value;
/// receivers sum what they hear; tick adds 1 to the value. Exposes the
/// exact synchronous semantics (frames snapshot pre-tick state).
struct CountingProtocol {
  struct Frame {
    graph::NodeId sender;
    int value;
  };

  explicit CountingProtocol(std::size_t n)
      : value(n, 0), received_sum(n, 0), deliveries(n, 0) {}

  Frame make_frame(graph::NodeId sender) const {
    return Frame{sender, value[sender]};
  }
  void deliver(graph::NodeId receiver, const Frame& frame) {
    received_sum[receiver] += frame.value;
    ++deliveries[receiver];
  }
  void tick(graph::NodeId node) { ++value[node]; }
  void end_step(graph::NodeId) {}

  std::vector<int> value;
  std::vector<int> received_sum;
  std::vector<int> deliveries;
};

TEST(Network, PerfectDeliveryReachesAllNeighbors) {
  const auto g = graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  CountingProtocol protocol(4);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.step();
  EXPECT_EQ(protocol.deliveries[0], 1);  // hears node 1
  EXPECT_EQ(protocol.deliveries[1], 2);  // hears 0 and 2
  EXPECT_EQ(protocol.deliveries[2], 2);
  EXPECT_EQ(protocol.deliveries[3], 1);
  EXPECT_EQ(network.steps_run(), 1u);
}

TEST(Network, FramesSnapshotPreTickState) {
  // After step 1 every value is 1; step 2's frames must carry 1 (the
  // pre-tick snapshot), so received sums grow by degree * 1.
  const auto g = graph::from_edges(2, {{0, 1}});
  CountingProtocol protocol(2);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.step();  // frames carry 0
  EXPECT_EQ(protocol.received_sum[0], 0);
  network.step();  // frames carry 1
  EXPECT_EQ(protocol.received_sum[0], 1);
  network.step();  // frames carry 2
  EXPECT_EQ(protocol.received_sum[0], 3);
}

TEST(Network, RunExecutesExactly) {
  graph::Graph g(3);
  CountingProtocol protocol(3);
  sim::PerfectDelivery loss;
  sim::Network network(g, protocol, loss);
  network.run(7);
  EXPECT_EQ(network.steps_run(), 7u);
  for (int v : protocol.value) EXPECT_EQ(v, 7);
}

TEST(Network, GraphSwapChangesConnectivity) {
  const auto g1 = graph::from_edges(3, {{0, 1}});
  const auto g2 = graph::from_edges(3, {{1, 2}});
  CountingProtocol protocol(3);
  sim::PerfectDelivery loss;
  sim::Network network(g1, protocol, loss);
  network.step();
  EXPECT_EQ(protocol.deliveries[2], 0);
  network.set_graph(g2);
  network.step();
  EXPECT_EQ(protocol.deliveries[2], 1);
  EXPECT_EQ(protocol.deliveries[0], 1);  // only from step 1
}

TEST(Loss, BernoulliRespectsTau) {
  const auto g = graph::from_edges(2, {{0, 1}});
  const double tau = 0.3;
  CountingProtocol protocol(2);
  sim::BernoulliDelivery loss(tau, util::Rng(5));
  sim::Network network(g, protocol, loss);
  const int steps = 5000;
  network.run(steps);
  const double observed =
      static_cast<double>(protocol.deliveries[0]) / steps;
  EXPECT_NEAR(observed, tau, 0.03);
}

TEST(Loss, BernoulliRejectsBadTau) {
  EXPECT_THROW(sim::BernoulliDelivery(0.0, util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(sim::BernoulliDelivery(1.5, util::Rng(1)),
               std::invalid_argument);
}

TEST(Loss, BroadcastCollisionLosesWholeFrame) {
  // A triangle: when node 0's frame collides, *neither* neighbor hears
  // it that step — deliveries from node 0 to 1 and 2 are perfectly
  // correlated.
  const auto g = graph::from_edges(3, {{0, 1}, {0, 2}, {1, 2}});

  struct RecordingProtocol {
    struct Frame {
      graph::NodeId sender;
    };
    Frame make_frame(graph::NodeId sender) const { return Frame{sender}; }
    void deliver(graph::NodeId receiver, const Frame& frame) {
      if (frame.sender == 0) heard_zero[receiver] = true;
    }
    void tick(graph::NodeId) {}
    void end_step(graph::NodeId) {}
    bool heard_zero[3] = {false, false, false};
  };

  RecordingProtocol protocol;
  sim::BroadcastCollision loss(0.5, 3, util::Rng(6));
  sim::Network network(g, protocol, loss);
  int mismatch = 0;
  int heard = 0;
  for (int step = 0; step < 2000; ++step) {
    protocol.heard_zero[1] = protocol.heard_zero[2] = false;
    network.step();
    if (protocol.heard_zero[1] != protocol.heard_zero[2]) ++mismatch;
    if (protocol.heard_zero[1]) ++heard;
  }
  EXPECT_EQ(mismatch, 0);
  EXPECT_NEAR(heard / 2000.0, 0.5, 0.05);
}

TEST(Loss, PerfectDeliveryAlwaysTrue) {
  sim::PerfectDelivery loss;
  EXPECT_TRUE(loss.delivered(0, 1));
}

}  // namespace
}  // namespace ssmwn
