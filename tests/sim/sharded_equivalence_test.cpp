// Differential equivalence harness for the sharded step engine:
// sim::ShardedNetwork must be *bit-identical* to sim::Network — every
// shared variable, every cache entry, every per-node RNG — per tick,
// at every tested shard count {1, 2, 7, 16} × thread count, in full
// and dirty stepping, under lossy media, mobility deltas, and mid-run
// fault injection. Same reporting discipline as the PR 6 dirty
// harness: any divergence names the first divergent tick + node plus a
// replayable spec.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "graph/dynamic.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "mobility/mobility.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "sim/sharded_network.hpp"
#include "support/deployments.hpp"
#include "topology/incremental.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 7, 16};

core::DensityProtocol make_protocol(const testsupport::World& w,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;  // exercises the randomized N1 rule
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, w.graph.max_degree());
  return core::DensityProtocol(w.ids, config, util::Rng(seed));
}

std::string spec_string(const char* scenario, std::size_t n, double radius,
                        std::uint64_t world_seed, std::uint64_t proto_seed,
                        std::size_t shards, unsigned threads,
                        const char* extra = "") {
  std::ostringstream out;
  out << "scenario=" << scenario << " n=" << n << " radius=" << radius
      << " world_seed=" << world_seed << " proto_seed=" << proto_seed
      << " shards=" << shards << " threads=" << threads;
  if (*extra != '\0') out << ' ' << extra;
  return out.str();
}

::testing::AssertionResult populations_identical(
    const core::DensityProtocol& reference, const core::DensityProtocol& sharded,
    std::size_t tick, const std::string& spec) {
  const auto div = core::first_divergent_node(reference, sharded);
  if (!div) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "first divergence at tick " << tick << ", node " << *div << "\n"
         << core::describe_divergence(reference, sharded, *div)
         << "replay: " << spec << " tick=" << tick << " node=" << *div;
}

TEST(ShardedEquivalence, FullSteppingLockstepAcrossShardAndThreadCounts) {
  const std::size_t n = 140;
  const double radius = 0.11;
  const auto w = testsupport::make_deployment(n, radius, 900);
  for (const std::size_t shards : kShardCounts) {
    for (const unsigned threads : {1u, 4u}) {
      auto reference = make_protocol(w, 17);
      auto candidate = make_protocol(w, 17);
      sim::PerfectDelivery loss_a, loss_b;
      sim::Network net_ref(w.graph, reference, loss_a, 1);
      sim::ShardedNetwork net_shard(w.graph, candidate, loss_b, shards,
                                    threads);
      const std::string spec = spec_string("sharded-full", n, radius, 900, 17,
                                           shards, threads);
      for (std::size_t s = 0; s < 30; ++s) {
        net_ref.step();
        net_shard.step();
        ASSERT_TRUE(populations_identical(reference, candidate, s, spec));
      }
      EXPECT_EQ(net_ref.messages_delivered(), net_shard.messages_delivered())
          << spec;
      EXPECT_EQ(net_shard.steps_run(), 30u);
    }
  }
}

TEST(ShardedEquivalence, FullModeInPlaceRebuildLockstep) {
  // The campaign runner's rebuild mode mutates ONE Graph object in
  // place and re-announces it via set_graph. The sharded engine caches
  // boundary-sender lists keyed to the adjacency, so a swallowed
  // re-announcement serves stale cross-shard frames — this trial pins
  // the set_graph → rebuild_boundaries path in full stepping.
  const std::size_t n = 120;
  const double radius = 0.12;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{7}}) {
    auto w = testsupport::make_deployment(n, radius, 905);
    auto reference = make_protocol(w, 31);
    auto candidate = make_protocol(w, 31);
    mobility::RandomDirection mover(n, {0.0, 1.6}, 1.0,
                                    util::Rng(905 ^ 0xF00D));
    graph::DynamicGraph holder;
    holder.reset(topology::unit_disk_graph(w.points, radius));
    sim::PerfectDelivery loss_a, loss_b;
    sim::Network net_ref(holder.view(), reference, loss_a, 1);
    sim::ShardedNetwork net_shard(holder.view(), candidate, loss_b, shards, 2);
    const std::string spec =
        spec_string("sharded-rebuild", n, radius, 905, 31, shards, 2);
    std::size_t tick = 0;
    for (std::size_t window = 0; window < 6; ++window) {
      mover.step(w.points, 0.05);
      holder.reset(topology::unit_disk_graph(w.points, radius));
      net_ref.set_graph(holder.view());
      net_shard.set_graph(holder.view());
      for (std::size_t s = 0; s < 5; ++s, ++tick) {
        net_ref.step();
        net_shard.step();
        ASSERT_TRUE(populations_identical(reference, candidate, tick, spec));
      }
    }
    EXPECT_EQ(net_ref.messages_delivered(), net_shard.messages_delivered())
        << spec;
  }
}

TEST(ShardedEquivalence, SpatialPlanPermutedWorldLockstep) {
  // The intended million-node configuration: renumber the world
  // cell-major via plan_spatial_shards, run both engines on the
  // permuted world. Protocol ids travel with the nodes, so the
  // clustering outcome is the original one under relabeling — here we
  // assert the stronger per-tick identity between the two engines.
  const std::size_t n = 160;
  const double radius = 0.1;
  const auto w = testsupport::make_deployment(n, radius, 901);
  const auto plan = graph::plan_spatial_shards(w.points, radius, 7);
  ASSERT_TRUE(plan.valid());
  const graph::Graph permuted_graph = graph::permute_graph(w.graph, plan);
  testsupport::World pw;
  pw.points = graph::permuted(plan, w.points);
  pw.graph = permuted_graph;
  pw.ids = graph::permuted(plan, w.ids);

  auto reference = make_protocol(pw, 23);
  auto candidate = make_protocol(pw, 23);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_ref(pw.graph, reference, loss_a, 1);
  sim::ShardedNetwork net_shard(pw.graph, candidate, loss_b, plan.bounds, 4);
  const std::string spec =
      spec_string("sharded-spatial", n, radius, 901, 23, plan.shard_count(), 4);
  for (std::size_t s = 0; s < 30; ++s) {
    net_ref.step();
    net_shard.step();
    ASSERT_TRUE(populations_identical(reference, candidate, s, spec));
  }
}

TEST(ShardedEquivalence, LossyMediumDrawsIdenticalRngSequence) {
  // The serial sender-major loss pass must poll the exact same per-edge
  // sequence regardless of sharding — a Bernoulli medium from the same
  // seed is the detector.
  const std::size_t n = 120;
  const double radius = 0.12;
  const auto w = testsupport::make_deployment(n, radius, 902);
  for (const std::size_t shards : {2ul, 7ul}) {
    auto reference = make_protocol(w, 31);
    auto candidate = make_protocol(w, 31);
    sim::BernoulliDelivery loss_a(0.7, util::Rng(13));
    sim::BernoulliDelivery loss_b(0.7, util::Rng(13));
    sim::Network net_ref(w.graph, reference, loss_a, 1);
    sim::ShardedNetwork net_shard(w.graph, candidate, loss_b, shards, 2);
    const std::string spec =
        spec_string("sharded-lossy", n, radius, 902, 31, shards, 2);
    for (std::size_t s = 0; s < 25; ++s) {
      net_ref.step();
      net_shard.step();
      ASSERT_TRUE(populations_identical(reference, candidate, s, spec));
    }
    EXPECT_EQ(net_ref.messages_delivered(), net_shard.messages_delivered())
        << spec;
  }
}

void run_mobility_trial(std::size_t shards, unsigned threads,
                        std::uint64_t world_seed, std::uint64_t proto_seed) {
  // Three populations in lockstep: unsharded full (ground truth),
  // unsharded dirty (PR 6 guarantee), sharded dirty (this PR). The
  // sharded engine must match the ground truth bit for bit *and*
  // reproduce the unsharded dirty stepper's aggregate activity
  // counters — same active sets, just carved across shards.
  const std::size_t n = 110;
  const double radius = 0.13;
  auto w = testsupport::make_deployment(n, radius, world_seed);
  auto full = make_protocol(w, proto_seed);
  auto dirty = make_protocol(w, proto_seed);
  auto sharded = make_protocol(w, proto_seed);

  mobility::RandomDirection mover(n, {0.0, 1.6}, 1.0,
                                  util::Rng(world_seed ^ 0xF00D));
  topology::LiveTopology live_full(w.points, radius);
  topology::LiveTopology live_dirty(w.points, radius);
  topology::LiveTopology live_shard(w.points, radius);

  sim::PerfectDelivery loss_a, loss_b, loss_c;
  sim::Network net_full(live_full.graph(), full, loss_a, 1);
  sim::Network net_dirty(live_dirty.graph(), dirty, loss_b, 1);
  sim::ShardedNetwork net_shard(live_shard.graph(), sharded, loss_c, shards,
                                threads);
  net_dirty.set_stepping(sim::Stepping::kDirty);
  net_shard.set_stepping(sim::Stepping::kDirty);

  const std::string spec = spec_string("sharded-mobility", n, radius,
                                       world_seed, proto_seed, shards, threads);
  std::size_t tick = 0;
  for (std::size_t window = 0; window < 8; ++window) {
    mover.step(w.points, 0.05);
    net_full.apply_topology_delta(live_full.update(w.points));
    net_dirty.apply_topology_delta(live_dirty.update(w.points));
    net_shard.apply_topology_delta(live_shard.update(w.points));
    net_dirty.mark_dirty(live_dirty.dirty_nodes());
    net_shard.mark_dirty(live_shard.dirty_nodes());
    for (std::size_t s = 0; s < 6; ++s, ++tick) {
      net_full.step();
      net_dirty.step();
      net_shard.step();
      ASSERT_TRUE(populations_identical(full, sharded, tick, spec));
      ASSERT_TRUE(populations_identical(dirty, sharded, tick, spec));
      ASSERT_EQ(net_dirty.activity().last_nodes_stepped(),
                net_shard.activity().last_nodes_stepped())
          << spec << " tick=" << tick;
    }
  }
  EXPECT_EQ(net_dirty.activity().nodes_skipped(),
            net_shard.activity().nodes_skipped())
      << spec;
  EXPECT_GT(net_shard.activity().nodes_skipped(), 0u) << spec;
  EXPECT_EQ(net_dirty.messages_delivered(), net_shard.messages_delivered())
      << spec;
}

TEST(ShardedEquivalence, DirtyMobilityLockstepAcrossShardCounts) {
  for (const std::size_t shards : kShardCounts) {
    run_mobility_trial(shards, 1, 1000 + shards, 5);
    if (HasFatalFailure()) return;
  }
}

TEST(ShardedEquivalence, DirtyMobilityLockstepIsThreadCountInvariant) {
  for (const unsigned threads : {2u, 4u}) {
    run_mobility_trial(7, threads, 1100 + threads, 6);
    if (HasFatalFailure()) return;
  }
}

TEST(ShardedEquivalence, DirtyFaultInjectionWakesCrossShards) {
  // External mutations (take_external_wakes) land while the population
  // is quiescent; the woken neighborhoods straddle shard boundaries,
  // so the recovery exercises the wake mailboxes from a cold start.
  const std::size_t n = 100;
  const auto w = testsupport::make_deployment(n, 0.13, 903);
  auto full = make_protocol(w, 11);
  auto sharded = make_protocol(w, 11);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_full(w.graph, full, loss_a, 1);
  sim::ShardedNetwork net_shard(w.graph, sharded, loss_b, 7, 2);
  net_shard.set_stepping(sim::Stepping::kDirty);
  const std::string spec = spec_string("sharded-faults", n, 0.13, 903, 11, 7, 2);

  std::size_t tick = 0;
  for (; tick < 30; ++tick) {
    net_full.step();
    net_shard.step();
    ASSERT_TRUE(populations_identical(full, sharded, tick, spec));
  }
  util::Rng chaos_a(99), chaos_b(99);
  ASSERT_EQ(full.corrupt_fraction(chaos_a, 0.2),
            sharded.corrupt_fraction(chaos_b, 0.2));
  full.reset_node(3);
  sharded.reset_node(3);
  {
    auto sa = full.mutable_state(7);
    auto sb = sharded.mutable_state(7);
    sa.head_valid = 0;
    sb.head_valid = 0;
  }
  for (std::size_t s = 0; s < 30; ++s, ++tick) {
    net_full.step();
    net_shard.step();
    ASSERT_TRUE(populations_identical(full, sharded, tick, spec));
  }
}

TEST(ShardedEquivalence, ModeSwitchMidRunKeepsTrajectory) {
  const auto w = testsupport::make_deployment(90, 0.14, 904);
  auto a = make_protocol(w, 21);
  auto b = make_protocol(w, 21);
  sim::PerfectDelivery loss_a, loss_b;
  sim::Network net_a(w.graph, a, loss_a, 1);
  sim::ShardedNetwork net_b(w.graph, b, loss_b, 7, 2);
  const std::string spec = spec_string("sharded-mode-switch", 90, 0.14, 904,
                                       21, 7, 2);
  std::size_t tick = 0;
  auto lockstep = [&](std::size_t steps) {
    for (std::size_t s = 0; s < steps; ++s, ++tick) {
      net_a.step();
      net_b.step();
      ASSERT_TRUE(populations_identical(a, b, tick, spec));
    }
  };
  lockstep(10);
  net_b.set_stepping(sim::Stepping::kDirty);
  lockstep(15);
  net_b.set_stepping(sim::Stepping::kFull);
  lockstep(10);
}

// --- degenerate shapes (satellite: no div-by-zero / empty-range UB) ---

TEST(ShardedEquivalence, DegenerateShapesAreWellDefined) {
  // n = 0: one empty shard; stepping is a no-op, not UB.
  {
    graph::Graph g(0);
    g.finalize();
    topology::IdAssignment ids;
    core::DensityProtocol p(ids, {}, util::Rng(1));
    sim::PerfectDelivery loss;
    sim::ShardedNetwork net(g, p, loss, std::size_t{16}, 2u);
    EXPECT_EQ(net.shard_count(), 1u);
    net.run(3);
    EXPECT_EQ(net.steps_run(), 3u);
    EXPECT_EQ(net.messages_delivered(), 0u);
  }
  // shards > nodes: clamped to one node per shard; single-node shards
  // make every edge a boundary edge, so the mailboxes carry the whole
  // step and the result must still match.
  {
    const auto w = testsupport::make_deployment(5, 0.9, 905);
    auto reference = make_protocol(w, 2);
    auto candidate = make_protocol(w, 2);
    sim::PerfectDelivery loss_a, loss_b;
    sim::Network net_ref(w.graph, reference, loss_a, 1);
    sim::ShardedNetwork net_shard(w.graph, candidate, loss_b, std::size_t{64},
                                  2u);
    EXPECT_EQ(net_shard.shard_count(), 5u);
    const std::string spec = spec_string("sharded-tiny", 5, 0.9, 905, 2, 64, 2);
    for (std::size_t s = 0; s < 12; ++s) {
      net_ref.step();
      net_shard.step();
      ASSERT_TRUE(populations_identical(reference, candidate, s, spec));
    }
  }
  // Explicit bounds with empty middle shards are a legal cover.
  {
    const auto w = testsupport::make_deployment(20, 0.3, 906);
    auto reference = make_protocol(w, 3);
    auto candidate = make_protocol(w, 3);
    sim::PerfectDelivery loss_a, loss_b;
    sim::Network net_ref(w.graph, reference, loss_a, 1);
    sim::ShardedNetwork net_shard(w.graph, candidate, loss_b,
                                  std::vector<std::size_t>{0, 8, 8, 8, 20}, 2u);
    net_shard.set_stepping(sim::Stepping::kDirty);
    const std::string spec =
        spec_string("sharded-empty-mid", 20, 0.3, 906, 3, 4, 2);
    for (std::size_t s = 0; s < 15; ++s) {
      net_ref.step();
      net_shard.step();
      ASSERT_TRUE(populations_identical(reference, candidate, s, spec));
    }
  }
}

TEST(ShardedEquivalence, RejectsMalformedBoundsAndLossyDirty) {
  const auto w = testsupport::make_deployment(30, 0.2, 907);
  auto p = make_protocol(w, 1);
  sim::PerfectDelivery perfect;
  using Net = sim::ShardedNetwork<core::DensityProtocol>;
  // Not a cover of [0, n].
  EXPECT_THROW(Net(w.graph, p, perfect, std::vector<std::size_t>{0, 10}, 1u),
               std::invalid_argument);
  EXPECT_THROW(Net(w.graph, p, perfect, std::vector<std::size_t>{5, 30}, 1u),
               std::invalid_argument);
  EXPECT_THROW(Net(w.graph, p, perfect, std::vector<std::size_t>{0, 20, 10, 30},
                   1u),
               std::invalid_argument);
  EXPECT_THROW(Net(w.graph, p, perfect, std::vector<std::size_t>{}, 1u),
               std::invalid_argument);
  // Dirty mode needs a loss-free medium, same contract as sim::Network.
  sim::BernoulliDelivery lossy(0.7, util::Rng(2));
  Net net(w.graph, p, lossy, std::size_t{4}, 1u);
  EXPECT_THROW(net.set_stepping(sim::Stepping::kDirty), std::invalid_argument);
  // And a graph swap must preserve the node count the bounds cover.
  graph::Graph smaller(10);
  smaller.finalize();
  Net ok(w.graph, p, perfect, std::size_t{4}, 1u);
  EXPECT_THROW(ok.set_graph(smaller), std::invalid_argument);
}

}  // namespace
}  // namespace ssmwn
