// Quiescence properties of the dirty-region stepper: once the protocol
// has converged and topology stops changing, *zero* nodes step — not
// "cheap steps", none — and a single injected edge delta wakes exactly
// the delta's closed neighborhood, with no false wakeups and immediate
// return to quiescence when the wake turns out to be a no-op.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/protocol.hpp"
#include "core/soa_state.hpp"
#include "graph/dynamic.hpp"
#include "graph/graph.hpp"
#include "sim/async_network.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "support/deployments.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

core::DensityProtocol make_protocol(const testsupport::World& w,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.cluster.fusion = true;
  config.delta_hint = std::max<std::uint64_t>(2, w.graph.max_degree());
  return core::DensityProtocol(w.ids, config, util::Rng(seed));
}

/// Steps until a step executes zero nodes; fails the test if that never
/// happens within `budget` steps.
void step_to_quiescence(sim::Network<core::DensityProtocol>& net,
                        std::size_t budget) {
  for (std::size_t s = 0; s < budget; ++s) {
    net.step();
    if (net.activity().last_nodes_stepped() == 0) return;
  }
  FAIL() << "no quiescent step within " << budget << " steps (last step ran "
         << net.activity().last_nodes_stepped() << " nodes)";
}

/// p's closed neighborhood in `g`, ascending.
std::vector<graph::NodeId> closed_neighborhood(const graph::Graph& g,
                                               std::initializer_list<graph::NodeId> seeds) {
  std::vector<graph::NodeId> out;
  for (const graph::NodeId p : seeds) {
    out.push_back(p);
    for (const graph::NodeId q : g.neighbors(p)) out.push_back(q);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<graph::NodeId> to_vector(std::span<const graph::NodeId> s) {
  return {s.begin(), s.end()};
}

TEST(Quiescence, ConvergedRunStopsSteppingEntirely) {
  const auto w = testsupport::make_deployment(120, 0.12, 77);
  auto protocol = make_protocol(w, 3);
  sim::PerfectDelivery loss;
  sim::Network net(w.graph, protocol, loss, 1);
  net.set_stepping(sim::Stepping::kDirty);

  step_to_quiescence(net, 300);
  if (HasFatalFailure()) return;

  // From here on, with no topology deltas and no faults, every step
  // must execute zero nodes, deliver zero messages, and freeze every
  // shared variable bit-for-bit.
  const core::NodeScalars frozen = protocol.scalars();
  const std::uint64_t stepped = net.activity().nodes_stepped();
  const std::uint64_t delivered = net.messages_delivered();
  for (std::size_t s = 0; s < 20; ++s) {
    net.step();
    ASSERT_EQ(net.activity().last_nodes_stepped(), 0u) << "step " << s;
    ASSERT_EQ(net.activity().last_nodes_skipped(), w.graph.node_count());
  }
  EXPECT_EQ(net.activity().nodes_stepped(), stepped);
  EXPECT_EQ(net.messages_delivered(), delivered);
  EXPECT_EQ(core::first_divergent_row(frozen, protocol.scalars()),
            frozen.size())
      << "state moved during quiescence";
}

TEST(Quiescence, RemovedEdgeWakesExactlyItsClosedNeighborhood) {
  const auto w = testsupport::make_deployment(100, 0.13, 11);
  graph::DynamicGraph dyn(w.graph);
  auto protocol = make_protocol(w, 5);
  sim::PerfectDelivery loss;
  sim::Network net(dyn.view(), protocol, loss, 1);
  net.set_stepping(sim::Stepping::kDirty);
  step_to_quiescence(net, 300);
  if (HasFatalFailure()) return;

  // Sever the first edge of the highest-degree node (guaranteed to
  // exist in a connected-ish deployment).
  graph::NodeId a = 0;
  for (graph::NodeId p = 0; p < dyn.view().node_count(); ++p) {
    if (dyn.view().degree(p) > dyn.view().degree(a)) a = p;
  }
  ASSERT_GT(dyn.view().degree(a), 0u);
  const graph::NodeId b = dyn.view().neighbors(a)[0];
  graph::EdgeDelta delta;
  delta.removed.push_back({std::min(a, b), std::max(a, b)});

  dyn.apply_delta(delta);
  net.apply_topology_delta(delta);
  net.mark_dirty(dyn.dirty_nodes());
  net.step();

  // Exactly the closed neighborhood of the severed edge (post-patch
  // graph: a and b are no longer each other's neighbors, but both are
  // in the set as endpoints).
  const auto expected = closed_neighborhood(dyn.view(), {a, b});
  EXPECT_EQ(net.activity().last_nodes_stepped(), expected.size());
  EXPECT_EQ(to_vector(net.activity().active()), expected)
      << "false wakeup: active set is not the delta's closed neighborhood";
}

TEST(Quiescence, AddedEdgeWakesExactlyItsClosedNeighborhood) {
  const auto w = testsupport::make_deployment(100, 0.13, 12);
  graph::DynamicGraph dyn(w.graph);
  auto protocol = make_protocol(w, 6);
  sim::PerfectDelivery loss;
  sim::Network net(dyn.view(), protocol, loss, 1);
  net.set_stepping(sim::Stepping::kDirty);
  step_to_quiescence(net, 300);
  if (HasFatalFailure()) return;

  // Join the first non-adjacent pair.
  graph::NodeId a = 0, b = 0;
  [&] {
    for (graph::NodeId p = 0; p < dyn.view().node_count(); ++p) {
      for (graph::NodeId q = p + 1; q < dyn.view().node_count(); ++q) {
        if (!dyn.view().adjacent(p, q)) {
          a = p;
          b = q;
          return;
        }
      }
    }
  }();
  ASSERT_NE(a, b);
  graph::EdgeDelta delta;
  delta.added.push_back({a, b});

  dyn.apply_delta(delta);
  net.apply_topology_delta(delta);
  net.mark_dirty(dyn.dirty_nodes());
  net.step();

  const auto expected = closed_neighborhood(dyn.view(), {a, b});
  EXPECT_EQ(net.activity().last_nodes_stepped(), expected.size());
  EXPECT_EQ(to_vector(net.activity().active()), expected);
}

TEST(Quiescence, SpuriousWakeDiesOutInOneStep) {
  // mark_dirty on an unchanged node: its closed neighborhood re-runs
  // once, finds nothing to do, and the system is quiescent again on the
  // very next step — activity does not echo.
  const auto w = testsupport::make_deployment(80, 0.14, 13);
  auto protocol = make_protocol(w, 7);
  sim::PerfectDelivery loss;
  sim::Network net(w.graph, protocol, loss, 1);
  net.set_stepping(sim::Stepping::kDirty);
  step_to_quiescence(net, 300);
  if (HasFatalFailure()) return;

  const graph::NodeId victim = 17;
  const graph::NodeId seeds[] = {victim};
  net.mark_dirty(seeds);
  net.step();
  EXPECT_EQ(net.activity().last_nodes_stepped(),
            closed_neighborhood(w.graph, {victim}).size());
  net.step();
  EXPECT_EQ(net.activity().last_nodes_stepped(), 0u)
      << "a no-op wake must not keep echoing through the activity set";
}

TEST(Quiescence, AsyncActivationsKeepFiringButSweepsStop) {
  // The async engine never mutes events — activations, broadcasts and
  // deliveries continue forever — but once converged the rule sweeps
  // inside those activations are provable no-ops and are skipped.
  const auto w = testsupport::make_deployment(60, 0.16, 21);
  auto protocol = make_protocol(w, 9);
  sim::PerfectDelivery loss;
  sim::AsyncConfig config;
  config.daemon = sim::DaemonKind::kSynchronous;
  sim::AsyncNetwork net(w.graph, protocol, loss, config, util::Rng(22));
  net.set_stepping(sim::Stepping::kDirty);

  net.run_for(60.0);  // comfortably past convergence at n = 60
  const std::uint64_t stepped = net.activity().nodes_stepped();
  const std::uint64_t events = net.events_processed();
  const core::NodeScalars frozen = protocol.scalars();

  net.run_for(20.0);
  EXPECT_GT(net.events_processed(), events) << "activations must continue";
  EXPECT_EQ(net.activity().nodes_stepped(), stepped)
      << "converged async run must skip every rule sweep";
  EXPECT_GT(net.activity().nodes_skipped(), 0u);
  EXPECT_EQ(core::first_divergent_row(frozen, protocol.scalars()),
            frozen.size());
}

TEST(Quiescence, TrackerWakePastResetSizeGrowsInsteadOfUB) {
  // Regression: `wake` used to index `next_mark_[p]` unchecked, so a
  // live topology delta or a shard handoff referencing a node past the
  // last reset size was silent out-of-bounds UB. It must grow instead,
  // and the late-woken nodes must come out of begin_step like any other.
  sim::ActivityTracker t;
  t.reset(4, /*all_active=*/false);
  t.wake(2);
  t.wake(9);   // past the reset size: grows
  t.wake(9);   // idempotent across the growth
  t.wake(17);  // grows again
  t.begin_step();
  const auto active = t.active();
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0], 2u);
  EXPECT_EQ(active[1], 9u);
  EXPECT_EQ(active[2], 17u);
  // The grown slots behave normally afterwards: re-wake, promote, drain.
  t.wake(17);
  t.begin_step();
  ASSERT_EQ(t.active().size(), 1u);
  EXPECT_EQ(t.active()[0], 17u);
  // A fresh reset shrinks back and clears every mark.
  t.reset(2, /*all_active=*/false);
  t.begin_step();
  EXPECT_TRUE(t.active().empty());
}

}  // namespace
}  // namespace ssmwn
