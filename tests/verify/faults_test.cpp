// The fault-class corruptor: deterministic from its rng, class
// contracts honored (stale caches name only true neighbors, hierarchy
// loops stay on real ids, partial-frame keeps digest lists sorted), and
// the spellings round-trip (the campaign spec and the shrunk repro
// files both parse them).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/protocol.hpp"
#include "support/deployments.hpp"
#include "support/paper_example.hpp"
#include "verify/faults.hpp"

namespace ssmwn {
namespace {

using verify::FaultClass;
using verify::kAllFaultClasses;

core::DensityProtocol make_protocol(const graph::Graph& g,
                                    const topology::IdAssignment& ids,
                                    std::uint64_t seed) {
  core::ProtocolConfig config;
  config.delta_hint = std::max<std::uint64_t>(2, g.max_degree());
  return core::DensityProtocol(ids, config, util::Rng(seed));
}

TEST(StateCorruptor, SpellingsRoundTrip) {
  for (const FaultClass fault : kAllFaultClasses) {
    EXPECT_EQ(verify::parse_fault_class(verify::to_string(fault)), fault);
  }
  for (const verify::Daemon daemon : verify::kAllDaemons) {
    EXPECT_EQ(verify::parse_daemon(verify::to_string(daemon)), daemon);
  }
  EXPECT_THROW((void)verify::parse_fault_class("bitflip"),
               std::invalid_argument);
  EXPECT_THROW((void)verify::parse_daemon("byzantine"),
               std::invalid_argument);
}

TEST(StateCorruptor, DeterministicFromRngState) {
  const auto w = testsupport::make_deployment(40, 0.18, 11);
  const verify::StateCorruptor corruptor(w.graph, w.ids);
  for (const FaultClass fault : kAllFaultClasses) {
    auto a = make_protocol(w.graph, w.ids, 5);
    auto b = make_protocol(w.graph, w.ids, 5);
    util::Rng rng_a(99), rng_b(99);
    const auto stats_a = corruptor.apply(a, fault, rng_a);
    const auto stats_b = corruptor.apply(b, fault, rng_b);
    EXPECT_EQ(stats_a.nodes_touched, stats_b.nodes_touched);
    EXPECT_EQ(stats_a.cache_entries_planted, stats_b.cache_entries_planted);
    EXPECT_EQ(stats_a.digests_mutated, stats_b.digests_mutated);
    for (graph::NodeId p = 0; p < w.graph.node_count(); ++p) {
      const auto& sa = a.state(p);
      const auto& sb = b.state(p);
      EXPECT_EQ(sa.dag_id, sb.dag_id) << "node " << p;
      EXPECT_EQ(sa.metric, sb.metric) << "node " << p;
      EXPECT_EQ(sa.head, sb.head) << "node " << p;
      EXPECT_EQ(sa.parent, sb.parent) << "node " << p;
      ASSERT_EQ(sa.cache.size(), sb.cache.size()) << "node " << p;
    }
  }
}

TEST(StateCorruptor, EveryClassTouchesEveryNode) {
  const auto w = testsupport::make_deployment(30, 0.2, 3);
  const verify::StateCorruptor corruptor(w.graph, w.ids);
  for (const FaultClass fault : kAllFaultClasses) {
    auto protocol = make_protocol(w.graph, w.ids, 1);
    util::Rng rng(42);
    const auto stats = corruptor.apply(protocol, fault, rng);
    EXPECT_EQ(stats.nodes_touched, w.graph.node_count())
        << verify::to_string(fault);
  }
}

TEST(StateCorruptor, StaleCacheNamesOnlyTrueNeighbors) {
  // The paper-example graph from tests/support — the shared fixture the
  // verify suite reuses instead of a private copy.
  const auto g = testsupport::paper_example_graph();
  const auto ids = testsupport::paper_example_ids();
  auto protocol = make_protocol(g, ids, 2);
  util::Rng rng(7);
  const verify::StateCorruptor corruptor(g, ids);
  (void)corruptor.apply(protocol, FaultClass::kStaleCache, rng);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    const auto& s = protocol.state(p);
    EXPECT_EQ(s.cache.size(), g.degree(p)) << "node " << p;
    // Valid flags all set (the "plausible" part of plausible-but-wrong).
    EXPECT_TRUE(s.metric_valid);
    EXPECT_TRUE(s.head_valid);
    EXPECT_TRUE(s.parent_valid);
    for (const auto& [id, entry] : s.cache) {
      bool is_neighbor = false;
      for (const graph::NodeId q : g.neighbors(p)) {
        is_neighbor |= ids[q] == id;
      }
      EXPECT_TRUE(is_neighbor) << "phantom id " << id << " at node " << p;
      EXPECT_LE(entry.age, protocol.config().cache_max_age);
    }
  }
}

TEST(StateCorruptor, HierarchyLoopsStayOnRealIds) {
  const auto w = testsupport::make_deployment(25, 0.25, 17);
  auto protocol = make_protocol(w.graph, w.ids, 4);
  util::Rng rng(13);
  const verify::StateCorruptor corruptor(w.graph, w.ids);
  (void)corruptor.apply(protocol, FaultClass::kHierarchyLoops, rng);
  // ids are a permutation of 0..n-1, so "real" is just < n.
  for (graph::NodeId p = 0; p < w.graph.node_count(); ++p) {
    const auto& s = protocol.state(p);
    EXPECT_TRUE(s.head_valid);
    EXPECT_TRUE(s.parent_valid);
    EXPECT_LT(s.head, w.graph.node_count());
    EXPECT_LT(s.parent, w.graph.node_count());
  }
}

TEST(StateCorruptor, PartialFrameKeepsDigestListsSorted) {
  const auto w = testsupport::make_deployment(35, 0.2, 23);
  auto protocol = make_protocol(w.graph, w.ids, 6);
  util::Rng rng(19);
  const verify::StateCorruptor corruptor(w.graph, w.ids);
  const auto stats =
      corruptor.apply(protocol, FaultClass::kPartialFrame, rng);
  EXPECT_GT(stats.digests_mutated, 0u);
  for (graph::NodeId p = 0; p < w.graph.node_count(); ++p) {
    for (const auto& [id, entry] : protocol.state(p).cache) {
      EXPECT_TRUE(std::is_sorted(
          entry.digests.begin(), entry.digests.end(),
          [](const core::NeighborDigest& a, const core::NeighborDigest& b) {
            return a.id < b.id;
          }))
          << "node " << p << " entry " << id;
    }
  }
}

TEST(StateCorruptor, ClusterIdNoiseLeavesMetricsAlone) {
  const auto w = testsupport::make_deployment(30, 0.2, 29);
  auto clean = make_protocol(w.graph, w.ids, 8);
  auto noisy = make_protocol(w.graph, w.ids, 8);
  util::Rng rng(31);
  const verify::StateCorruptor corruptor(w.graph, w.ids);
  (void)corruptor.apply(noisy, FaultClass::kClusterIdNoise, rng);
  std::size_t changed_heads = 0;
  for (graph::NodeId p = 0; p < w.graph.node_count(); ++p) {
    EXPECT_EQ(noisy.state(p).metric, clean.state(p).metric);
    EXPECT_EQ(noisy.state(p).metric_valid, clean.state(p).metric_valid);
    changed_heads += noisy.state(p).head != clean.state(p).head;
  }
  EXPECT_GT(changed_heads, 0u);
}

}  // namespace
}  // namespace ssmwn
