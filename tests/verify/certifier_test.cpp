// The certification itself: seeded arbitrary-state trials for every
// fault class, executed on both engines under all three daemons, with
// per-class statistics — the test the ISSUE's acceptance criterion
// scales to 1,000 trials per class in CI (SSMWN_VERIFY_TRIALS; the
// default here keeps plain `ctest` fast).
#include <gtest/gtest.h>

#include <cstdio>

#include "util/env.hpp"
#include "verify/certifier.hpp"

namespace ssmwn {
namespace {

using verify::CertifierConfig;
using verify::Daemon;
using verify::FaultClass;

CertifierConfig scaled_config() {
  CertifierConfig config;
  // CI sets SSMWN_VERIFY_TRIALS=1000 for the acceptance-scale run;
  // local ctest uses a smaller but still every-class every-daemon pass.
  config.trials_per_class = static_cast<std::size_t>(
      util::env_int("SSMWN_VERIFY_TRIALS", 120));
  config.n_min = 8;
  config.n_max = static_cast<std::size_t>(
      util::env_int("SSMWN_VERIFY_MAX_N", 80));
  config.threads = 0;  // trials are independent; shard across cores
  return config;
}

TEST(Certifier, EveryFaultClassCertifiesAtScale) {
  const CertifierConfig config = scaled_config();
  const auto report = verify::certify(config);
  EXPECT_TRUE(report.certified());
  EXPECT_EQ(report.trials_total,
            config.trials_per_class * verify::kAllFaultClasses.size());
  for (const auto& stats : report.per_class) {
    EXPECT_EQ(stats.trials, config.trials_per_class)
        << verify::to_string(stats.fault);
    EXPECT_EQ(stats.passed, stats.trials) << verify::to_string(stats.fault);
    // The per-class statistics the campaign report carries: nonzero
    // convergence cost on both engines.
    EXPECT_GT(stats.sync_steps.mean(), 0.0);
    EXPECT_GT(stats.sync_messages.mean(), 0.0);
    EXPECT_GT(stats.async_time_s.mean(), 0.0);
    EXPECT_GT(stats.async_messages.mean(), 0.0);
    std::printf("%-16s %4zu trials: sync %.1f steps / %.0f msgs, "
                "async %.2fs / %.0f msgs\n",
                std::string(verify::to_string(stats.fault)).c_str(),
                stats.trials, stats.sync_steps.mean(),
                stats.sync_messages.mean(), stats.async_time_s.mean(),
                stats.async_messages.mean());
  }
}

TEST(Certifier, DaemonsRotatePerTrial) {
  CertifierConfig config;
  config.trials_per_class = 9;
  for (const FaultClass fault : verify::kAllFaultClasses) {
    std::size_t per_daemon[3] = {0, 0, 0};
    for (std::size_t t = 0; t < config.trials_per_class; ++t) {
      const auto spec = verify::trial_spec(config, fault, t);
      ++per_daemon[static_cast<std::size_t>(spec.daemon)];
      EXPECT_GE(spec.n, config.n_min);
      EXPECT_LE(spec.n, config.n_max);
    }
    EXPECT_EQ(per_daemon[0], 3u);
    EXPECT_EQ(per_daemon[1], 3u);
    EXPECT_EQ(per_daemon[2], 3u);
  }
}

TEST(Certifier, TrialSpecsAreStablePerClass) {
  // Adding or reordering classes must not change another class's
  // trials (certification results stay comparable across PRs).
  CertifierConfig config;
  const auto a = verify::trial_spec(config, FaultClass::kStaleCache, 17);
  config.classes = {FaultClass::kStaleCache};
  const auto b = verify::trial_spec(config, FaultClass::kStaleCache, 17);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.daemon, b.daemon);
}

TEST(Certifier, ThreadCountDoesNotChangeTheReport) {
  CertifierConfig config;
  config.trials_per_class = 12;
  config.n_min = 8;
  config.n_max = 40;
  config.threads = 1;
  const auto serial = verify::certify(config);
  config.threads = 4;
  const auto parallel = verify::certify(config);
  ASSERT_EQ(serial.per_class.size(), parallel.per_class.size());
  EXPECT_EQ(serial.failures_total, parallel.failures_total);
  for (std::size_t c = 0; c < serial.per_class.size(); ++c) {
    EXPECT_EQ(serial.per_class[c].passed, parallel.per_class[c].passed);
    EXPECT_EQ(serial.per_class[c].sync_steps.mean(),
              parallel.per_class[c].sync_steps.mean());
    EXPECT_EQ(serial.per_class[c].async_messages.mean(),
              parallel.per_class[c].async_messages.mean());
  }
}

}  // namespace
}  // namespace ssmwn
