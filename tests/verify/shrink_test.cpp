// The shrinker and the campaign repro bridge, exercised the way the
// acceptance criterion words it: inject a legitimacy bug, let the
// certifier catch it, shrink the failing tuple to a small spec, and
// emit a replayable campaign spec that still fails.
#include <gtest/gtest.h>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "verify/certifier.hpp"
#include "verify/shrink.hpp"

namespace ssmwn {
namespace {

using verify::Daemon;
using verify::FaultClass;
using verify::TrialSpec;
using verify::Violation;

/// The deliberately injected legitimacy bug of the mutation check: the
/// oracle claims node 0's head is someone it is not, so every trial the
/// certifier runs against it must fail — at any n, which is what lets
/// the shrinker drive the repro all the way down.
verify::TrialHooks broken_oracle() {
  verify::TrialHooks hooks;
  hooks.corrupt_oracle = [](core::ClusteringResult& oracle) {
    oracle.head_id[0] ^= 0x1;
  };
  return hooks;
}

TEST(VerifyShrink, PassingSpecIsNotShrunk) {
  TrialSpec spec;
  spec.n = 30;
  spec.seed = 5;
  const auto result = verify::shrink(spec);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(result.shrinks, 0u);
  EXPECT_EQ(result.minimal.n, spec.n);
}

TEST(VerifyShrink, InjectedBugShrinksToTinyRepro) {
  const auto hooks = broken_oracle();

  // The certifier catches the mutation...
  verify::CertifierConfig config;
  config.classes = {FaultClass::kStaleCache};
  config.trials_per_class = 3;
  config.n_min = 40;
  config.n_max = 60;
  const auto report = verify::certify(config, &hooks);
  EXPECT_FALSE(report.certified());
  ASSERT_FALSE(report.failures.empty());

  // ...and the shrinker minimizes the failing tuple to a tiny,
  // still-failing spec (acceptance: <= 12 nodes).
  const auto& [failing, violation] = report.failures.front();
  EXPECT_EQ(violation, Violation::kSyncDiverged);
  const auto shrunk = verify::shrink(failing, &hooks);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_GT(shrunk.shrinks, 0u);
  EXPECT_LE(shrunk.minimal.n, 12u);
  EXPECT_EQ(shrunk.minimal.daemon, Daemon::kSynchronous);
  EXPECT_FALSE(shrunk.minimal_result.passed);
  EXPECT_EQ(shrunk.minimal_result.violation, violation);

  // Shrinking is deterministic: same failure, same minimum.
  const auto again = verify::shrink(failing, &hooks);
  EXPECT_EQ(again.minimal.n, shrunk.minimal.n);
  EXPECT_EQ(again.minimal.seed, shrunk.minimal.seed);
  EXPECT_EQ(again.attempts, shrunk.attempts);

  // The repro bridge emits a campaign spec whose *derived* run seed
  // still fails (seed_base search) ...
  const auto repro =
      verify::make_repro(shrunk.minimal, violation, &hooks);
  ASSERT_TRUE(repro.reproduces);
  EXPECT_EQ(repro.violation, violation);
  const auto rerun = verify::run_trial(repro.derived, &hooks);
  EXPECT_FALSE(rerun.passed);
  EXPECT_EQ(rerun.violation, violation);

  // ... and the spec text is a valid campaign file expanding to exactly
  // that one verify run, with the same derived seed the bridge checked.
  const auto parsed = campaign::parse_spec_text(repro.text);
  const auto plan = campaign::expand(parsed);
  ASSERT_EQ(plan.grid.size(), 1u);
  ASSERT_EQ(plan.runs.size(), 1u);
  const auto& point = plan.grid.front().config;
  EXPECT_TRUE(point.verify_faults);
  EXPECT_EQ(point.fault_class, shrunk.minimal.fault);
  EXPECT_EQ(point.daemon, shrunk.minimal.daemon);
  EXPECT_EQ(point.n, shrunk.minimal.n);
  EXPECT_EQ(plan.runs.front().seed, repro.derived.seed);
  const auto bridged =
      verify::trial_from_scenario(point, plan.runs.front().seed);
  EXPECT_EQ(bridged.seed, repro.derived.seed);
  EXPECT_EQ(bridged.n, repro.derived.n);
  EXPECT_EQ(bridged.fault, repro.derived.fault);
}

TEST(VerifyShrink, ReproOfRealPassingWorldSaysSo) {
  // Without the injected bug the derived campaign run passes, which the
  // bridge reports as reproduces=false rather than emitting a spec that
  // silently replays green.
  TrialSpec spec;
  spec.n = 12;
  spec.seed = 77;
  const auto repro =
      verify::make_repro(spec, Violation::kSyncDiverged, nullptr,
                         /*budget=*/4);
  EXPECT_FALSE(repro.reproduces);
  EXPECT_NE(repro.text.find("WARNING"), std::string::npos);
}

TEST(VerifyShrink, CampaignRunExecutesReproAsVerifyTrial) {
  // End to end through the campaign runner: the emitted repro spec's
  // single run goes down the execute_verify_run path and (with the
  // mutation absent) reports the verify metric shape.
  TrialSpec spec;
  spec.n = 10;
  spec.seed = 3;
  const auto repro = verify::make_repro(spec, Violation::kSyncDiverged,
                                        nullptr, /*budget=*/1);
  const auto plan =
      campaign::expand(campaign::parse_spec_text(repro.text));
  campaign::CampaignRunner runner(1);
  const auto results = runner.run(plan);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.front().windows, 1u);
  EXPECT_GT(results.front().sync_messages, 0.0);
}

}  // namespace
}  // namespace ssmwn
