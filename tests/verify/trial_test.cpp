// The cross-engine trial runner: every fault class recovers on both
// engines under every daemon (the paper's claim, spot-checked here and
// certified at scale in certifier_test.cpp), trials are bit-reproducible
// from their spec, and the interference seam makes a genuinely broken
// system fail — a trial that cannot fail would certify nothing.
#include <gtest/gtest.h>

#include "verify/trial.hpp"

namespace ssmwn {
namespace {

using verify::Daemon;
using verify::FaultClass;
using verify::TrialSpec;
using verify::Violation;

TEST(VerifyTrial, EveryFaultClassPassesOnBothEngines) {
  for (const FaultClass fault : verify::kAllFaultClasses) {
    TrialSpec spec;
    spec.n = 50;
    spec.radius = 0.16;
    spec.fault = fault;
    spec.seed = 0x5eed + static_cast<std::uint64_t>(fault);
    const auto result = verify::run_trial(spec);
    EXPECT_TRUE(result.passed) << verify::to_string(fault) << ": "
                               << verify::to_string(result.violation);
    EXPECT_TRUE(result.sync_converged);
    EXPECT_TRUE(result.async_converged);
    EXPECT_GT(result.sync_messages, 0u);
    EXPECT_GT(result.async_messages, 0u);
    EXPECT_GT(result.heads, 0u);
    EXPECT_EQ(result.corruption.nodes_touched, spec.n);
  }
}

TEST(VerifyTrial, EveryDaemonPasses) {
  for (const Daemon daemon : verify::kAllDaemons) {
    TrialSpec spec;
    spec.n = 40;
    spec.fault = FaultClass::kRandomAll;
    spec.daemon = daemon;
    spec.seed = 99;
    const auto result = verify::run_trial(spec);
    EXPECT_TRUE(result.passed) << verify::to_string(daemon) << ": "
                               << verify::to_string(result.violation);
  }
}

TEST(VerifyTrial, BitReproducibleFromSpec) {
  TrialSpec spec;
  spec.n = 45;
  spec.fault = FaultClass::kStaleCache;
  spec.daemon = Daemon::kRandomized;
  spec.seed = 20050612;
  const auto a = verify::run_trial(spec);
  const auto b = verify::run_trial(spec);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.sync_steps, b.sync_steps);
  EXPECT_EQ(a.sync_messages, b.sync_messages);
  EXPECT_EQ(a.async_time_s, b.async_time_s);
  EXPECT_EQ(a.async_messages, b.async_messages);
  EXPECT_EQ(a.heads, b.heads);
}

TEST(VerifyTrial, LossyMediumStillCertifies) {
  TrialSpec spec;
  spec.n = 40;
  spec.fault = FaultClass::kRandomAll;
  spec.tau = 0.8;
  spec.seed = 4242;
  const auto result = verify::run_trial(spec);
  EXPECT_TRUE(result.passed) << verify::to_string(result.violation);
}

TEST(VerifyTrial, HistoryDependentVariantUsesStructuralChecksOnly) {
  // dag/full fixpoints are history-dependent: engines may disagree on
  // identities, so the trial must not demand oracle equality — but the
  // structural predicate (validity, independence, quiescence) still
  // must hold on both engines.
  for (const char* variant : {"dag", "full"}) {
    TrialSpec spec;
    spec.n = 40;
    spec.variant = variant;
    spec.fault = FaultClass::kRandomAll;
    spec.seed = 1234;
    const auto result = verify::run_trial(spec);
    EXPECT_TRUE(result.passed)
        << variant << ": " << verify::to_string(result.violation);
  }
}

TEST(VerifyTrial, UnknownVariantIsRejected) {
  TrialSpec spec;
  spec.variant = "fancy";
  EXPECT_THROW((void)verify::run_trial(spec), std::invalid_argument);
}

TEST(VerifyTrial, StuckNodeInterferenceIsCaught) {
  // Mutation check: a node whose head variable is pinned to garbage
  // between every legitimacy check models a stuck/Byzantine participant
  // — the trial must flag the system, not certify around it.
  verify::TrialHooks hooks;
  hooks.interfere = [](core::DensityProtocol& protocol) {
    auto s = protocol.mutable_state(0);
    s.head = 0xDEAD;
    s.head_valid = true;
  };
  TrialSpec spec;
  spec.n = 30;
  spec.fault = FaultClass::kRandomAll;
  spec.seed = 7;
  const auto result = verify::run_trial(spec, &hooks);
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.violation, Violation::kNone);
}

TEST(VerifyTrial, CorruptedOracleIsCaught) {
  // Mutation check for the differential side: if the reference
  // clustering is wrong, the protocol's (correct) fixpoint must show up
  // as a violation — proving the oracle comparison is live.
  verify::TrialHooks hooks;
  hooks.corrupt_oracle = [](core::ClusteringResult& oracle) {
    oracle.head_id[0] ^= 0x1;
  };
  TrialSpec spec;
  spec.n = 30;
  spec.fault = FaultClass::kMetricSkew;
  spec.seed = 21;
  const auto result = verify::run_trial(spec, &hooks);
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.violation, Violation::kSyncDiverged);
}

}  // namespace
}  // namespace ssmwn
