// The branchless merge/intersection kernels in util/merge.hpp against
// their std:: references, across randomized sorted inputs covering both
// regimes (balanced lists → linear walk, skewed lists → galloping) and
// the projection path the protocol uses on digest structs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "util/merge.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

std::vector<std::uint64_t> sorted_unique(std::size_t n, std::uint64_t gap,
                                         util::Rng& rng) {
  std::vector<std::uint64_t> v(n);
  std::uint64_t x = 0;
  for (auto& e : v) {
    x += 1 + rng.below(gap);
    e = x;
  }
  return v;
}

std::size_t reference_intersection(const std::vector<std::uint64_t>& a,
                                   const std::vector<std::uint64_t>& b) {
  std::vector<std::uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

TEST(MergeKernels, IntersectCountMatchesStdAcrossShapes) {
  util::Rng rng(7);
  const std::size_t sizes[] = {0, 1, 2, 7, 8, 31, 64, 300};
  for (const std::size_t na : sizes) {
    for (const std::size_t nb : sizes) {
      for (const std::uint64_t gap : {2ull, 16ull}) {
        const auto a = sorted_unique(na, gap, rng);
        const auto b = sorted_unique(nb, gap, rng);
        const std::size_t want = reference_intersection(a, b);
        EXPECT_EQ(util::intersect_count_linear(a.data(), na, b.data(), nb),
                  want)
            << "linear na=" << na << " nb=" << nb;
        EXPECT_EQ(util::intersect_count_gallop(a.data(), na, b.data(), nb),
                  want)
            << "gallop na=" << na << " nb=" << nb;
        EXPECT_EQ(util::intersect_count(a.data(), na, b.data(), nb), want)
            << "auto na=" << na << " nb=" << nb;
      }
    }
  }
}

TEST(MergeKernels, IntersectCountWithProjection) {
  struct Digestish {
    std::uint64_t id;
    double payload;
  };
  util::Rng rng(11);
  const auto keys_a = sorted_unique(40, 8, rng);
  const auto keys_b = sorted_unique(25, 8, rng);
  std::vector<Digestish> a, b;
  for (const auto k : keys_a) a.push_back({k, rng.uniform()});
  for (const auto k : keys_b) b.push_back({k, rng.uniform()});
  const auto proj = [](const Digestish& d) { return d.id; };
  const std::size_t want = reference_intersection(keys_a, keys_b);
  EXPECT_EQ(util::intersect_count_linear(a.data(), a.size(), b.data(),
                                         b.size(), proj, proj),
            want);
  EXPECT_EQ(util::intersect_count_gallop(a.data(), a.size(), b.data(),
                                         b.size(), proj, proj),
            want);
  EXPECT_EQ(util::intersect_count(a.data(), a.size(), b.data(), b.size(),
                                  proj, proj),
            want);
}

TEST(MergeKernels, LowerBoundAndContainsMatchStd) {
  util::Rng rng(13);
  const auto v = sorted_unique(100, 4, rng);
  for (std::uint64_t probe = 0; probe <= v.back() + 2; ++probe) {
    const auto want = static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), probe) - v.begin());
    EXPECT_EQ(util::lower_bound_index(v.data(), v.size(), probe), want)
        << "probe " << probe;
    EXPECT_EQ(util::contains_sorted(v.data(), v.size(), probe),
              std::binary_search(v.begin(), v.end(), probe))
        << "probe " << probe;
  }
  // gallop_lower_bound from every starting cursor ≤ the answer.
  for (const std::uint64_t probe : {v[0], v[17], v[99], v[50] + 1}) {
    const auto want = static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), probe) - v.begin());
    for (std::size_t from = 0; from <= want && from < v.size(); from += 7) {
      EXPECT_EQ(util::gallop_lower_bound(v.data(), v.size(), from, probe),
                want)
          << "probe " << probe << " from " << from;
    }
  }
}

TEST(MergeKernels, MergeWalkPartitionsBothLists) {
  util::Rng rng(17);
  for (int round = 0; round < 30; ++round) {
    const auto a = sorted_unique(rng.below(40), 6, rng);
    const auto b = sorted_unique(rng.below(40), 6, rng);
    std::vector<std::uint64_t> only_a, only_b, both;
    util::merge_walk(
        a.data(), a.size(), b.data(), b.size(),
        [&](const std::uint64_t& x) { only_a.push_back(x); },
        [&](const std::uint64_t& x) { only_b.push_back(x); },
        [&](const std::uint64_t& x, const std::uint64_t&) {
          both.push_back(x);
        });
    std::vector<std::uint64_t> want_only_a, want_only_b, want_both;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(want_only_a));
    std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                        std::back_inserter(want_only_b));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(want_both));
    EXPECT_EQ(only_a, want_only_a) << "round " << round;
    EXPECT_EQ(only_b, want_only_b) << "round " << round;
    EXPECT_EQ(both, want_both) << "round " << round;
  }
}

TEST(MergeKernels, FirstMismatchIndexMatchesStdMismatch) {
  util::Rng rng(19);
  // Lengths straddling the 32-element block boundary, mismatch at every
  // position including none.
  for (const std::size_t n : {0ull, 1ull, 31ull, 32ull, 33ull, 100ull}) {
    std::vector<std::uint64_t> a(n);
    for (auto& e : a) e = rng();
    // identical
    std::vector<std::uint64_t> b = a;
    EXPECT_EQ(util::first_mismatch_index(a.data(), b.data(), n), n);
    for (std::size_t at = 0; at < n; ++at) {
      b = a;
      b[at] ^= 0x8000000000000000ull;  // sign-bit flip: bitwise, not ==
      const auto want = static_cast<std::size_t>(
          std::mismatch(a.begin(), a.end(), b.begin()).first - a.begin());
      EXPECT_EQ(util::first_mismatch_index(a.data(), b.data(), n), want)
          << "n=" << n << " at=" << at;
    }
  }
}

}  // namespace
}  // namespace ssmwn
