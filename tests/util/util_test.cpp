// Unit tests for the utility layer: RNG determinism and distributions,
// running statistics, table rendering, env configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ssmwn {
namespace {

TEST(Rng, DeterministicFromSeed) {
  util::Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool diverged = false;
  util::Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInRange) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  util::Rng rng(2);
  std::vector<std::size_t> counts(7, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(7)];
  for (std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, 500.0);
  }
}

TEST(Rng, BelowZeroAndOne) {
  util::Rng rng(3);
  EXPECT_EQ(rng.below(0), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  util::Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, PoissonMeanSmallAndLargeLambda) {
  util::Rng rng(5);
  for (const double lambda : {3.0, 50.0, 400.0}) {
    util::RunningStats stats;
    for (int i = 0; i < 3000; ++i) {
      stats.add(static_cast<double>(rng.poisson(lambda)));
    }
    EXPECT_NEAR(stats.mean(), lambda, 4.0 * std::sqrt(lambda / 3000.0) + 1.0)
        << "lambda " << lambda;
  }
}

TEST(Rng, NormalMoments) {
  util::Rng rng(6);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, ShuffleIsAPermutation) {
  util::Rng rng(7);
  std::vector<int> items{1, 2, 3, 4, 5, 6};
  auto shuffled = items;
  rng.shuffle(std::span<int>(shuffled));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, SplitStreamsDiffer) {
  util::Rng parent(8);
  auto a = parent.split();
  auto b = parent.split();
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Stats, RunningMoments) {
  util::RunningStats stats;
  EXPECT_TRUE(stats.empty());
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(Stats, MergeMatchesCombined) {
  util::Rng rng(9);
  util::RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmpty) {
  util::RunningStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Stats, Percentile) {
  const std::vector<double> sample{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(util::percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(sample, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(util::percentile(sample, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(util::percentile(sample, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(util::percentile({}, 0.5), 0.0);
}

TEST(Stats, HistogramBinning) {
  util::Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(15.0);  // clamps to bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[2], 1u);
  EXPECT_EQ(h.bins()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(Table, RendersAlignedCells) {
  util::Table t("demo");
  t.header({"R", "value"});
  t.row({"0.05", "61.0"});
  t.row({"0.1", "11.7"});
  t.note("paper reference");
  const auto text = t.render();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("0.05"), std::string::npos);
  EXPECT_NE(text.find("61.0"), std::string::npos);
  EXPECT_NE(text.find("paper reference"), std::string::npos);
}

TEST(Table, CsvOutput) {
  util::Table t("demo");
  t.header({"a", "b"});
  t.row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(util::Table::num(1.256, 2), "1.26");
  EXPECT_EQ(util::Table::num(2.0, 1), "2.0");
  EXPECT_EQ(util::Table::integer(42), "42");
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("SSMWN_TEST_INT", "17", 1);
  EXPECT_EQ(util::env_int("SSMWN_TEST_INT", 3), 17);
  ::setenv("SSMWN_TEST_INT", "junk", 1);
  EXPECT_EQ(util::env_int("SSMWN_TEST_INT", 3), 3);
  ::unsetenv("SSMWN_TEST_INT");
  EXPECT_EQ(util::env_int("SSMWN_TEST_INT", 3), 3);
}

TEST(Env, BenchRunsRespectsOverride) {
  ::setenv("SSMWN_RUNS", "25", 1);
  EXPECT_EQ(util::bench_runs(100), 25u);
  ::unsetenv("SSMWN_RUNS");
  EXPECT_EQ(util::bench_runs(100), 100u);
}

}  // namespace
}  // namespace ssmwn
