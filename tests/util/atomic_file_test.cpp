// AtomicFile: the crash-consistency primitive every durable artifact
// (reports, checkpoints, bench JSON) publishes through.
#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ssmwn {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

TEST(AtomicFile, CommitPublishesAndAbandonLeavesOldContents) {
  const std::string path = testing::TempDir() + "atomic_file_pub.txt";
  util::atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");

  // An abandoned (never-committed) writer must leave the previous
  // contents untouched and no temp debris behind.
  {
    util::AtomicFile file(path);
    file.stream() << "half-written garbage";
  }
  EXPECT_EQ(slurp(path), "first\n");

  // A committed writer replaces them completely.
  {
    util::AtomicFile file(path);
    file.stream() << "second\n";
    file.commit();
  }
  EXPECT_EQ(slurp(path), "second\n");
  std::remove(path.c_str());
}

TEST(AtomicFile, UnwritableDestinationFailsAtOpenAsBadArguments) {
  EXPECT_THROW(util::AtomicFile("/nonexistent-dir/out.csv"),
               std::invalid_argument);
}

// Regression: renaming the temp over a non-regular destination would
// replace the node itself — `--csv /dev/null` must stay a discard to
// the device, not turn /dev/null into a regular file.
TEST(AtomicFile, DeviceDestinationIsWrittenThroughNotRenamedOver) {
  struct stat before{};
  ASSERT_EQ(::stat("/dev/null", &before), 0);
  ASSERT_FALSE(S_ISREG(before.st_mode)) << "environment has no /dev/null?";

  util::atomic_write_file("/dev/null", "discard me\n");

  struct stat after{};
  ASSERT_EQ(::stat("/dev/null", &after), 0);
  EXPECT_TRUE(S_ISCHR(after.st_mode));
  EXPECT_EQ(before.st_rdev, after.st_rdev);
  EXPECT_FALSE(file_exists("/dev/null.tmp"));
}

}  // namespace
}  // namespace ssmwn
