// Tests for the CLI flag parser.
#include "util/args.hpp"

#include <gtest/gtest.h>

namespace ssmwn {
namespace {

util::Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return util::Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SpaceAndEqualsSyntax) {
  const auto args = parse({"--n", "500", "--radius=0.08"});
  EXPECT_EQ(args.get_int("n", 0), 500);
  EXPECT_DOUBLE_EQ(args.get_double("radius", 0.0), 0.08);
}

TEST(Args, BareBooleanFlags) {
  const auto args = parse({"--grid", "--fusion", "--n", "10"});
  EXPECT_TRUE(args.get_bool("grid", false));
  EXPECT_TRUE(args.get_bool("fusion", false));
  EXPECT_FALSE(args.get_bool("dag", false));
  EXPECT_EQ(args.get_int("n", 0), 10);
}

TEST(Args, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x", "yes"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x", "on"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x", "0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x", "no"}).get_bool("x", true));
  EXPECT_THROW((void)parse({"--x", "maybe"}).get_bool("x", true),
               std::invalid_argument);
}

TEST(Args, PositionalArguments) {
  const auto args = parse({"cluster", "--n", "5", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "cluster");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Args, Fallbacks) {
  const auto args = parse({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Args, MalformedNumbersThrow) {
  EXPECT_THROW((void)parse({"--n", "abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)parse({"--r", "abc"}).get_double("r", 0),
               std::invalid_argument);
  // Trailing junk is an error, not a silent prefix parse.
  EXPECT_THROW((void)parse({"--n", "5x"}).get_int("n", 0),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"--r", "0.1abc"}).get_double("r", 0),
               std::invalid_argument);
  // A single leading '+' stays accepted (strtod compatibility); a
  // doubled sign does not.
  EXPECT_EQ(parse({"--n", "+42"}).get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(parse({"--r", "+0.5"}).get_double("r", 0), 0.5);
  EXPECT_THROW((void)parse({"--n", "+-4"}).get_int("n", 0),
               std::invalid_argument);
}

TEST(Args, UnknownTracksUnqueriedFlags) {
  const auto args = parse({"--known", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("known", 0), 1);
  const auto unknown = args.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, LastValueWins) {
  const auto args = parse({"--n", "1", "--n", "2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

// The CLI rejects unrecognized flags with the bad-arguments exit code
// (2, distinct from run-failure 1); that hinges on `unknown()` seeing
// exactly the flags no handler consumed — via any accessor, including
// `has`.
TEST(Args, HasMarksFlagsAsConsumed) {
  const auto args = parse({"--replications", "8", "--quiet"});
  EXPECT_TRUE(args.has("replications"));
  EXPECT_TRUE(args.get_bool("quiet", false));
  EXPECT_TRUE(args.unknown().empty());
}

TEST(Args, UnknownIsEmptyWhenNoFlagsGiven) {
  const auto args = parse({"campaign", "spec.file"});
  EXPECT_TRUE(args.unknown().empty());
}

// Negative numbers start with a single dash, not a flag prefix, so they
// parse as values (`--corrupt -0.5` must not eat the next flag).
TEST(Args, NegativeNumbersAreValues) {
  const auto args = parse({"--threads", "-1", "--radius", "-0.5"});
  EXPECT_EQ(args.get_int("threads", 0), -1);
  EXPECT_DOUBLE_EQ(args.get_double("radius", 0.0), -0.5);
}

// `--key=` yields an empty value, which every typed accessor treats as
// absent: the fallback applies instead of a parse error.
TEST(Args, EmptyValueFallsBack) {
  const auto args = parse({"--n="});
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_EQ(args.get("n", "dflt"), "");
}

// A bare flag directly before a positional consumes it as its value —
// the documented reason `ssmwn campaign <spec>` puts the subcommand and
// spec path first.
TEST(Args, BareFlagBeforePositionalConsumesIt) {
  const auto args = parse({"--grid", "cluster"});
  EXPECT_EQ(args.get("grid", ""), "cluster");
  EXPECT_TRUE(args.positional().empty());
}

// Positionals keep their order even when interleaved with flags: the
// campaign subcommand reads positional()[1] as the spec path.
TEST(Args, SubcommandThenFileWithFlagsInterleaved) {
  const auto args =
      parse({"campaign", "--threads", "4", "run.spec", "--csv", "out.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "campaign");
  EXPECT_EQ(args.positional()[1], "run.spec");
  EXPECT_EQ(args.get_int("threads", 1), 4);
  EXPECT_EQ(args.get("csv", ""), "out.csv");
}

// Range-checked accessors back the CLI's numeric-flag audit: a value
// outside [min, max] must throw invalid_argument (→ exit 2) with a
// message that names the offending flag — never wrap, clamp, or pass a
// degenerate value through to the simulation.
TEST(Args, RangeCheckedIntRejectsOutOfRange) {
  EXPECT_EQ(parse({"--threads", "8"}).get_int_in("threads", 1, 0, 65536), 8);
  // Boundary values are in range.
  EXPECT_EQ(parse({"--threads", "0"}).get_int_in("threads", 1, 0, 65536), 0);
  EXPECT_EQ(parse({"--threads", "65536"}).get_int_in("threads", 1, 0, 65536),
            65536);
  EXPECT_THROW(
      (void)parse({"--threads", "65537"}).get_int_in("threads", 1, 0, 65536),
      std::invalid_argument);
  EXPECT_THROW((void)parse({"--shards", "-3"}).get_int_in("shards", 0, 0,
                                                          1'000'000),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse({"--port", "65536"}).get_int_in("port", 0, 1, 65535),
      std::invalid_argument);
  // Trailing junk stays a parse error even through the ranged accessor.
  EXPECT_THROW((void)parse({"--n", "5x"}).get_int_in("n", 1, 1, 100),
               std::invalid_argument);
}

TEST(Args, RangeCheckedDoubleRejectsDegenerateValues) {
  EXPECT_DOUBLE_EQ(
      parse({"--tau", "0.9"}).get_double_in("tau", 1.0, 1e-9, 1.0), 0.9);
  EXPECT_THROW(
      (void)parse({"--tau", "0"}).get_double_in("tau", 1.0, 1e-9, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse({"--tau", "1.5"}).get_double_in("tau", 1.0, 1e-9, 1.0),
      std::invalid_argument);
  EXPECT_THROW((void)parse({"--corrupt", "-0.1"})
                   .get_double_in("corrupt", 0.0, 0.0, 1.0),
               std::invalid_argument);
  // NaN satisfies no range predicate — must be rejected, not clamped.
  EXPECT_THROW(
      (void)parse({"--tau", "nan"}).get_double_in("tau", 1.0, 1e-9, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse({"--tau", "inf"}).get_double_in("tau", 1.0, 1e-9, 1.0),
      std::invalid_argument);
}

TEST(Args, RangeCheckErrorNamesTheFlag) {
  try {
    (void)parse({"--threads", "70000"}).get_int_in("threads", 1, 0, 65536);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("70000"), std::string::npos)
        << e.what();
  }
  try {
    (void)parse({"--tau", "2.5"}).get_double_in("tau", 1.0, 1e-9, 1.0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--tau"), std::string::npos)
        << e.what();
  }
}

// An absent flag returns the fallback verbatim — the range applies only
// to user input. parse_shards relies on this: its fallback 0 means
// "auto", below the user-facing minimum of some call sites.
TEST(Args, RangeCheckDoesNotApplyToFallbacks) {
  EXPECT_EQ(parse({}).get_int_in("port", 0, 1, 65535), 0);
  EXPECT_DOUBLE_EQ(parse({}).get_double_in("tau", -1.0, 1e-9, 1.0), -1.0);
}

}  // namespace
}  // namespace ssmwn
