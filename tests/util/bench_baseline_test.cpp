// The bench-baseline comparator's semantics, pinned as unit tests —
// including the acceptance scenario: a deliberate 20% ticks/s slowdown
// MUST fail the 10% gate. CI runs the same logic through
// tools/bench_compare; these tests are the permanent, machine-
// independent encoding of that check (the live CI gate necessarily runs
// with a looser tolerance because shared runners are noisy).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/bench_baseline.hpp"

namespace ssmwn {
namespace {

// Exactly the shape bench::JsonReport::write emits.
constexpr const char* kBaselineJson = R"({
  "bench": "dirty_stepping",
  "records": [
    {"name": "full", "n": 100000, "threads": 1, "metric": "ticks/s", "value": 120.5},
    {"name": "dirty", "n": 100000, "threads": 1, "metric": "ticks/s", "value": 2400},
    {"name": "dirty", "n": 100000, "threads": 1, "metric": "speedup", "value": 19.9}
  ]
})";

std::vector<util::BenchRecord> parse(const char* text) {
  std::vector<util::BenchRecord> out;
  std::string error;
  const bool ok = util::parse_bench_json(text, out, error);
  EXPECT_TRUE(ok) << error;
  return out;
}

std::vector<util::BenchRecord> scaled(double factor) {
  auto records = parse(kBaselineJson);
  for (auto& r : records) r.value *= factor;
  return records;
}

TEST(BenchBaseline, ParsesJsonReportShape) {
  const auto records = parse(kBaselineJson);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].bench, "dirty_stepping");
  EXPECT_EQ(records[0].name, "full");
  EXPECT_EQ(records[0].metric, "ticks/s");
  EXPECT_EQ(records[0].n, 100000u);
  EXPECT_EQ(records[0].threads, 1u);
  EXPECT_DOUBLE_EQ(records[0].value, 120.5);
  EXPECT_DOUBLE_EQ(records[1].value, 2400.0);
}

TEST(BenchBaseline, RejectsMalformedInput) {
  std::vector<util::BenchRecord> out;
  std::string error;
  EXPECT_FALSE(util::parse_bench_json("{\"records\": []}", out, error));
  EXPECT_FALSE(util::parse_bench_json(
      "{\"bench\": \"x\", \"records\": [{\"name\": \"a\"}]}", out, error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchBaseline, TwentyPercentSlowdownFailsTheTenPercentGate) {
  // The acceptance criterion, verbatim: a deliberately injected 20%
  // slowdown must trip the comparator at the default 10% tolerance.
  const auto baseline = parse(kBaselineJson);
  const auto report =
      util::compare_benchmarks(baseline, scaled(0.8), /*tolerance=*/0.10);
  // Both ticks/s series regressed; the "speedup" ratio is not a rate
  // metric and must stay informational.
  EXPECT_EQ(report.regressions(), 2u);
  for (const auto& c : report.compared) {
    EXPECT_EQ(c.regression, c.baseline.metric == "ticks/s");
    EXPECT_EQ(c.gated, c.baseline.metric == "ticks/s");
  }
}

TEST(BenchBaseline, SmallNoiseAndImprovementsPass) {
  const auto baseline = parse(kBaselineJson);
  EXPECT_EQ(util::compare_benchmarks(baseline, scaled(0.95), 0.10)
                .regressions(),
            0u);
  EXPECT_EQ(util::compare_benchmarks(baseline, scaled(1.5), 0.10)
                .regressions(),
            0u);
}

TEST(BenchBaseline, ToleranceOverrideLoosensTheGate) {
  // The CI knob (SSMWN_BENCH_TOLERANCE → the tool's tolerance argument):
  // at 25% the same 20% slowdown passes.
  const auto baseline = parse(kBaselineJson);
  EXPECT_EQ(util::compare_benchmarks(baseline, scaled(0.8), 0.25)
                .regressions(),
            0u);
}

TEST(BenchBaseline, MissingCandidateRecordsWarnOnly) {
  // A size-capped smoke run covers fewer points than the checked-in
  // baseline; that must not fail the gate.
  const auto baseline = parse(kBaselineJson);
  std::vector<util::BenchRecord> candidate{baseline[0]};
  const auto report = util::compare_benchmarks(baseline, candidate, 0.10);
  EXPECT_EQ(report.compared.size(), 1u);
  EXPECT_EQ(report.unmatched.size(), 2u);
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(BenchBaseline, SeriesMatchingUsesAllKeyFields) {
  auto baseline = parse(kBaselineJson);
  auto candidate = baseline;
  candidate[0].threads = 8;  // different series now
  const auto report = util::compare_benchmarks(baseline, candidate, 0.10);
  ASSERT_EQ(report.unmatched.size(), 1u);
  EXPECT_EQ(report.unmatched[0].name, "full");
}

TEST(BenchBaseline, RateMetricDetection) {
  EXPECT_TRUE(util::is_rate_metric("ticks/s"));
  EXPECT_TRUE(util::is_rate_metric("updates/s"));
  EXPECT_FALSE(util::is_rate_metric("seconds"));
  EXPECT_FALSE(util::is_rate_metric("speedup"));
  EXPECT_FALSE(util::is_rate_metric("clusters"));
}

}  // namespace
}  // namespace ssmwn
