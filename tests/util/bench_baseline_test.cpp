// The bench-baseline comparator's semantics, pinned as unit tests —
// including the acceptance scenario: a deliberate 20% ticks/s slowdown
// MUST fail the 10% gate. CI runs the same logic through
// tools/bench_compare; these tests are the permanent, machine-
// independent encoding of that check (the live CI gate necessarily runs
// with a looser tolerance because shared runners are noisy).
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "util/bench_baseline.hpp"

namespace ssmwn {
namespace {

// Exactly the shape bench::JsonReport::write emits.
constexpr const char* kBaselineJson = R"({
  "bench": "dirty_stepping",
  "records": [
    {"name": "full", "n": 100000, "threads": 1, "metric": "ticks/s", "value": 120.5},
    {"name": "dirty", "n": 100000, "threads": 1, "metric": "ticks/s", "value": 2400},
    {"name": "dirty", "n": 100000, "threads": 1, "metric": "speedup", "value": 19.9}
  ]
})";

std::vector<util::BenchRecord> parse(const char* text) {
  std::vector<util::BenchRecord> out;
  std::string error;
  const bool ok = util::parse_bench_json(text, out, error);
  EXPECT_TRUE(ok) << error;
  return out;
}

std::vector<util::BenchRecord> scaled(double factor) {
  auto records = parse(kBaselineJson);
  for (auto& r : records) r.value *= factor;
  return records;
}

TEST(BenchBaseline, ParsesJsonReportShape) {
  const auto records = parse(kBaselineJson);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].bench, "dirty_stepping");
  EXPECT_EQ(records[0].name, "full");
  EXPECT_EQ(records[0].metric, "ticks/s");
  EXPECT_EQ(records[0].n, 100000u);
  EXPECT_EQ(records[0].threads, 1u);
  EXPECT_DOUBLE_EQ(records[0].value, 120.5);
  EXPECT_DOUBLE_EQ(records[1].value, 2400.0);
}

TEST(BenchBaseline, RejectsMalformedInput) {
  std::vector<util::BenchRecord> out;
  std::string error;
  EXPECT_FALSE(util::parse_bench_json("{\"records\": []}", out, error));
  EXPECT_FALSE(util::parse_bench_json(
      "{\"bench\": \"x\", \"records\": [{\"name\": \"a\"}]}", out, error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchBaseline, TwentyPercentSlowdownFailsTheTenPercentGate) {
  // The acceptance criterion, verbatim: a deliberately injected 20%
  // slowdown must trip the comparator at the default 10% tolerance.
  const auto baseline = parse(kBaselineJson);
  const auto report =
      util::compare_benchmarks(baseline, scaled(0.8), /*tolerance=*/0.10);
  // Both ticks/s series regressed; the "speedup" ratio is not a rate
  // metric and must stay informational.
  EXPECT_EQ(report.regressions(), 2u);
  for (const auto& c : report.compared) {
    EXPECT_EQ(c.regression, c.baseline.metric == "ticks/s");
    EXPECT_EQ(c.gated, c.baseline.metric == "ticks/s");
  }
}

TEST(BenchBaseline, SmallNoiseAndImprovementsPass) {
  const auto baseline = parse(kBaselineJson);
  EXPECT_EQ(util::compare_benchmarks(baseline, scaled(0.95), 0.10)
                .regressions(),
            0u);
  EXPECT_EQ(util::compare_benchmarks(baseline, scaled(1.5), 0.10)
                .regressions(),
            0u);
}

TEST(BenchBaseline, ToleranceOverrideLoosensTheGate) {
  // The CI knob (SSMWN_BENCH_TOLERANCE → the tool's tolerance argument):
  // at 25% the same 20% slowdown passes.
  const auto baseline = parse(kBaselineJson);
  EXPECT_EQ(util::compare_benchmarks(baseline, scaled(0.8), 0.25)
                .regressions(),
            0u);
}

TEST(BenchBaseline, MissingRateSeriesIsAnIntegrityFailure) {
  // Regression for the silent-pass case: dropping the very ticks/s
  // series the gate exists to watch used to warn and exit 0. It is now
  // an integrity failure (exit 3) unless --allow-missing says a
  // reduced-scale smoke run is expected to cover fewer points.
  const auto baseline = parse(kBaselineJson);
  std::vector<util::BenchRecord> candidate{baseline[0]};
  const auto report = util::compare_benchmarks(baseline, candidate, 0.10);
  EXPECT_EQ(report.compared.size(), 1u);
  EXPECT_EQ(report.unmatched.size(), 2u);
  // Of the two unmatched series only "dirty ticks/s" is a rate; the
  // "speedup" ratio stays informational.
  ASSERT_EQ(report.missing_rates.size(), 1u);
  EXPECT_EQ(report.missing_rates[0].name, "dirty");
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_EQ(report.integrity_failures(/*allow_missing=*/false), 1u);
  EXPECT_EQ(report.integrity_failures(/*allow_missing=*/true), 0u);
  EXPECT_EQ(util::compare_exit_code(report, /*allow_missing=*/false), 3);
  EXPECT_EQ(util::compare_exit_code(report, /*allow_missing=*/true), 0);
}

TEST(BenchBaseline, ExtraCandidateRateSeriesIsAnIntegrityFailure) {
  // The vice-versa silent pass: a candidate rate series with no
  // baseline is perf data flowing past the gate ungated (a bench whose
  // baseline was never committed) — it used to be ignored entirely.
  const auto baseline = parse(kBaselineJson);
  auto candidate = baseline;
  candidate.push_back(parse(R"({
    "bench": "sharded_steps",
    "records": [
      {"name": "sharded", "n": 1000000, "threads": 4, "metric": "ticks/s", "value": 12.5}
    ]
  })")[0]);
  // A non-rate extra stays invisible to the gate.
  candidate.push_back(parse(R"({
    "bench": "sharded_steps",
    "records": [
      {"name": "sharded", "n": 1000000, "threads": 4, "metric": "boundary_fraction", "value": 0.03}
    ]
  })")[0]);
  const auto report = util::compare_benchmarks(baseline, candidate, 0.10);
  ASSERT_EQ(report.extra_rates.size(), 1u);
  EXPECT_EQ(report.extra_rates[0].bench, "sharded_steps");
  EXPECT_EQ(report.integrity_failures(false), 1u);
  EXPECT_EQ(report.integrity_failures(true), 0u);
  EXPECT_EQ(util::compare_exit_code(report, false), 3);
  EXPECT_EQ(util::compare_exit_code(report, true), 0);
}

TEST(BenchBaseline, NonFiniteValuesNeverPass) {
  // NaN poisons every ratio comparison into `false`, so a NaN candidate
  // used to sail through the regression gate as a pass. The parser
  // accepts the token (a bench that divided by zero writes it) and the
  // comparator must flag it regardless of --allow-missing.
  const auto baseline = parse(kBaselineJson);
  auto nan_candidate = parse(R"({
    "bench": "dirty_stepping",
    "records": [
      {"name": "full", "n": 100000, "threads": 1, "metric": "ticks/s", "value": nan},
      {"name": "dirty", "n": 100000, "threads": 1, "metric": "ticks/s", "value": 2400},
      {"name": "dirty", "n": 100000, "threads": 1, "metric": "speedup", "value": 19.9}
    ]
  })");
  ASSERT_EQ(nan_candidate.size(), 3u);
  const auto report = util::compare_benchmarks(baseline, nan_candidate, 0.10);
  // The NaN comparison itself must not read as a regression pass...
  EXPECT_EQ(report.regressions(), 0u);
  // ...because it reads as an integrity failure, even with the smoke
  // policy in force.
  ASSERT_EQ(report.non_finite.size(), 1u);
  EXPECT_EQ(report.non_finite[0].name, "full");
  EXPECT_EQ(util::compare_exit_code(report, /*allow_missing=*/true), 3);
  EXPECT_EQ(util::compare_exit_code(report, /*allow_missing=*/false), 3);

  // Infinities are just as poisonous, on either side.
  auto inf_baseline = baseline;
  inf_baseline[0].value = std::numeric_limits<double>::infinity();
  const auto rep2 =
      util::compare_benchmarks(inf_baseline, parse(kBaselineJson), 0.10);
  EXPECT_GE(rep2.non_finite.size(), 1u);
  EXPECT_EQ(util::compare_exit_code(rep2, true), 3);
}

TEST(BenchBaseline, IntegrityOutranksRegression) {
  // When the inputs are untrustworthy *and* slower, report the broken
  // gate (exit 3), not the slowdown (exit 1).
  const auto baseline = parse(kBaselineJson);
  auto candidate = scaled(0.5);
  candidate.pop_back();  // drop "speedup" (info — no integrity hit)
  candidate[1].value = std::numeric_limits<double>::quiet_NaN();
  const auto report = util::compare_benchmarks(baseline, candidate, 0.10);
  EXPECT_GT(report.regressions(), 0u);
  EXPECT_EQ(util::compare_exit_code(report, true), 3);
}

TEST(BenchBaseline, SeriesMatchingUsesAllKeyFields) {
  auto baseline = parse(kBaselineJson);
  auto candidate = baseline;
  candidate[0].threads = 8;  // different series now
  const auto report = util::compare_benchmarks(baseline, candidate, 0.10);
  ASSERT_EQ(report.unmatched.size(), 1u);
  EXPECT_EQ(report.unmatched[0].name, "full");
  // The 8-thread candidate row is itself an unmatched rate series.
  ASSERT_EQ(report.extra_rates.size(), 1u);
  EXPECT_EQ(report.extra_rates[0].threads, 8u);
}

TEST(BenchBaseline, RateMetricDetection) {
  EXPECT_TRUE(util::is_rate_metric("ticks/s"));
  EXPECT_TRUE(util::is_rate_metric("updates/s"));
  EXPECT_FALSE(util::is_rate_metric("seconds"));
  EXPECT_FALSE(util::is_rate_metric("speedup"));
  EXPECT_FALSE(util::is_rate_metric("clusters"));
}

}  // namespace
}  // namespace ssmwn
