// Incremental topology equivalence: the delta-applied graph must match
// a fresh unit_disk_graph rebuild edge-for-edge, every tick, under
// pedestrian and vehicular random walks, churn masks, and the border-
// cell clamp aliasing of the bucketing grid. This is the proof
// obligation of the whole dynamic-topology runtime — if this test
// holds, every layer above (engines, campaign, metrics) sees exactly
// the graph the immutable-rebuild path would have given it.
#include "topology/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "mobility/mobility.hpp"
#include "sim/churn.hpp"
#include "topology/generators.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

void expect_same_edges(const graph::Graph& got, const graph::Graph& want,
                       std::size_t tick) {
  ASSERT_EQ(got.node_count(), want.node_count()) << "tick " << tick;
  ASSERT_EQ(got.edge_count(), want.edge_count()) << "tick " << tick;
  ASSERT_EQ(got.edges(), want.edges()) << "tick " << tick;
}

void expect_well_formed(const graph::EdgeDelta& delta) {
  EXPECT_TRUE(std::is_sorted(delta.added.begin(), delta.added.end()));
  EXPECT_TRUE(std::is_sorted(delta.removed.begin(), delta.removed.end()));
  for (const auto& [a, b] : delta.added) EXPECT_LT(a, b);
  for (const auto& [a, b] : delta.removed) EXPECT_LT(a, b);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> overlap;
  std::set_intersection(delta.added.begin(), delta.added.end(),
                        delta.removed.begin(), delta.removed.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty()) << "added and removed must be disjoint";
}

void run_walk_equivalence(double speed_max_mps, std::uint64_t seed,
                          std::size_t ticks, double dt_s,
                          bool use_waypoint = false) {
  util::Rng rng(seed);
  const std::size_t n = 250;
  const double radius = 0.1;
  auto points = topology::uniform_points(n, rng);
  const mobility::SpeedRange speeds{0.0, speed_max_mps};
  std::unique_ptr<mobility::MobilityModel> mover;
  if (use_waypoint) {
    mover = std::make_unique<mobility::RandomWaypoint>(n, speeds, 1000.0,
                                                       rng.split());
  } else {
    mover = std::make_unique<mobility::RandomDirection>(n, speeds, 1000.0,
                                                        rng.split());
  }

  topology::LiveTopology topo(points, radius);
  expect_same_edges(topo.graph(), topology::unit_disk_graph(points, radius), 0);
  for (std::size_t t = 1; t <= ticks; ++t) {
    mover->step(points, dt_s);
    const auto& delta = topo.update(points);
    expect_well_formed(delta);
    expect_same_edges(topo.graph(), topology::unit_disk_graph(points, radius),
                      t);
  }
}

TEST(IncrementalDelta, PedestrianWalkMatchesRebuildEveryTick) {
  run_walk_equivalence(1.6, 20050612, 120, 2.0);
}

TEST(IncrementalDelta, VehicularWalkMatchesRebuildEveryTick) {
  // 10 m/s at 2 s windows moves nodes a fifth of the radio range per
  // tick — the rebuild-and-diff path runs constantly here.
  run_walk_equivalence(10.0, 42, 120, 2.0);
}

TEST(IncrementalDelta, WaypointWalkMatchesRebuildEveryTick) {
  run_walk_equivalence(10.0, 7, 80, 2.0, /*use_waypoint=*/true);
}

TEST(IncrementalDelta, FiveHundredWindowMobilitySoak) {
  // The acceptance soak: 500 windows of pedestrian mobility at n=1000,
  // every window verified edge-for-edge against a fresh rebuild.
  util::Rng rng(991);
  const std::size_t n = 1000;
  const double radius = 0.05;
  auto points = topology::uniform_points(n, rng);
  mobility::RandomDirection mover(n, {0.0, 1.6}, 1000.0, rng.split());
  topology::LiveTopology topo(points, radius);
  for (std::size_t t = 1; t <= 500; ++t) {
    mover.step(points, 2.0);
    expect_well_formed(topo.update(points));
    expect_same_edges(topo.graph(), topology::unit_disk_graph(points, radius),
                      t);
  }
  EXPECT_GT(topo.index().rebuilds(), 0u);  // the soak exercised both paths
}

TEST(IncrementalDelta, ChurnMaskComposesWithMobility) {
  util::Rng rng(1234);
  const std::size_t n = 200;
  const double radius = 0.12;
  auto points = topology::uniform_points(n, rng);
  mobility::RandomDirection mover(n, {0.0, 3.0}, 1000.0, rng.split());
  sim::NodeChurn churn(n, 0.12, 0.4, rng.split());

  topology::LiveTopology topo(points, radius, churn.alive());
  for (std::size_t t = 1; t <= 120; ++t) {
    mover.step(points, 2.0);
    const auto& alive = churn.step();
    const auto& delta =
        topo.update(points, std::span<const char>(alive.data(), alive.size()));
    expect_well_formed(delta);
    const auto want = sim::mask_nodes(topology::unit_disk_graph(points, radius),
                                      std::span<const char>(alive.data(),
                                                            alive.size()));
    expect_same_edges(topo.graph(), want, t);
  }
}

TEST(IncrementalDelta, BorderClampAliasingAndDegeneratePlacements) {
  // Points pinned to the unit-square borders and corners (where the
  // bucketing grid clamps and aliases cells), duplicated positions, and
  // reflection-heavy motion across the walls.
  util::Rng rng(5);
  std::vector<topology::Point> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back({0.0, rng.uniform()});
    points.push_back({1.0, rng.uniform()});
    points.push_back({rng.uniform(), 0.0});
    points.push_back({rng.uniform(), 1.0});
  }
  points.push_back({0.0, 0.0});
  points.push_back({0.0, 0.0});  // exact duplicate
  points.push_back({1.0, 1.0});
  points.push_back({0.5, 0.5});
  const std::size_t n = points.size();
  const double radius = 0.2;
  mobility::RandomDirection mover(n, {0.0, 25.0}, 1000.0, rng.split());

  topology::LiveTopology topo(points, radius);
  expect_same_edges(topo.graph(), topology::unit_disk_graph(points, radius), 0);
  for (std::size_t t = 1; t <= 150; ++t) {
    mover.step(points, 2.0);
    expect_well_formed(topo.update(points));
    expect_same_edges(topo.graph(), topology::unit_disk_graph(points, radius),
                      t);
  }
}

TEST(IncrementalDelta, EmptyAndSingletonTopologies) {
  std::vector<topology::Point> none;
  topology::LiveTopology empty(none, 0.1);
  EXPECT_EQ(empty.graph().node_count(), 0u);
  EXPECT_TRUE(empty.update(none).empty());

  std::vector<topology::Point> one{{0.5, 0.5}};
  topology::LiveTopology single(one, 0.1);
  EXPECT_EQ(single.graph().node_count(), 1u);
  one[0] = {0.9, 0.9};
  EXPECT_TRUE(single.update(one).empty());
  EXPECT_EQ(single.graph().edge_count(), 0u);
}

TEST(IncrementalDelta, StationaryTicksEmitEmptyDeltas) {
  util::Rng rng(77);
  auto points = topology::uniform_points(150, rng);
  topology::LiveTopology topo(points, 0.1);
  for (int t = 0; t < 5; ++t) {
    EXPECT_TRUE(topo.update(points).empty());
    EXPECT_TRUE(topo.dirty_nodes().empty());
  }
}

TEST(IncrementalDelta, RejectsNodeCountChanges) {
  util::Rng rng(3);
  auto points = topology::uniform_points(10, rng);
  topology::LiveTopology topo(points, 0.1);
  points.pop_back();
  EXPECT_THROW(topo.update(points), std::invalid_argument);
}

}  // namespace
}  // namespace ssmwn
