// Unit tests for point generators, the unit-disk-graph builder and the
// identifier assignments.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/point.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

TEST(Points, Distance) {
  const topology::Point a{0.0, 0.0};
  const topology::Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(topology::distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(topology::squared_distance(a, b), 25.0);
}

TEST(Generators, UniformPointsStayInUnitSquare) {
  util::Rng rng(1);
  const auto pts = topology::uniform_points(500, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(Generators, PoissonCountHasCorrectMean) {
  util::Rng rng(2);
  util::RunningStats counts;
  for (int i = 0; i < 300; ++i) {
    counts.add(static_cast<double>(topology::poisson_points(100.0, rng).size()));
  }
  // Mean 100, sd 10; 300 samples put the sample mean within ~2.
  EXPECT_NEAR(counts.mean(), 100.0, 3.0);
}

TEST(Generators, GridPointsLayoutRowMajorFromBottom) {
  const auto pts = topology::grid_points(4);
  ASSERT_EQ(pts.size(), 16u);
  // Index 0 is bottom-left, index 3 is bottom-right, index 15 top-right.
  EXPECT_LT(pts[0].x, pts[3].x);
  EXPECT_DOUBLE_EQ(pts[0].y, pts[3].y);
  EXPECT_LT(pts[0].y, pts[12].y);
  // All inside the unit square with half-cell margins.
  for (const auto& p : pts) {
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
  }
}

TEST(Generators, GridSideForTargetCount) {
  EXPECT_EQ(topology::grid_side_for(1000), 32u);
  EXPECT_EQ(topology::grid_side_for(1024), 32u);
  EXPECT_EQ(topology::grid_side_for(100), 10u);
  EXPECT_EQ(topology::grid_side_for(0), 1u);
}

TEST(Udg, MatchesBruteForce) {
  util::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(120, rng);
    const double radius = 0.1 + 0.05 * trial;
    const auto g = topology::unit_disk_graph(pts, radius);
    for (graph::NodeId a = 0; a < pts.size(); ++a) {
      for (graph::NodeId b = a + 1; b < pts.size(); ++b) {
        const bool expected =
            topology::distance(pts[a], pts[b]) <= radius;
        EXPECT_EQ(g.adjacent(a, b), expected)
            << "trial " << trial << " pair " << a << "," << b;
      }
    }
  }
}

TEST(Udg, RangeIsInclusive) {
  const std::vector<topology::Point> pts{{0.0, 0.0}, {0.5, 0.0}};
  const auto g = topology::unit_disk_graph(pts, 0.5);
  EXPECT_TRUE(g.adjacent(0, 1));
}

TEST(Udg, EmptyAndSingle) {
  const std::vector<topology::Point> none;
  EXPECT_EQ(topology::unit_disk_graph(none, 0.1).node_count(), 0u);
  const std::vector<topology::Point> one{{0.5, 0.5}};
  const auto g = topology::unit_disk_graph(one, 0.1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Udg, RejectsNonPositiveRadius) {
  const std::vector<topology::Point> pts{{0.1, 0.1}};
  EXPECT_THROW(topology::unit_disk_graph(pts, 0.0), std::invalid_argument);
}

TEST(Udg, GridConnectivityAtPaperScale) {
  // 32×32 grid with R=0.05: spacing 1/32 ≈ 0.0313, diagonal ≈ 0.0442,
  // two-step ≈ 0.0625 — interior nodes have exactly 8 neighbors, the
  // premise of the Section 5 equal-density pathology.
  const auto pts = topology::grid_points(32);
  const auto g = topology::unit_disk_graph(pts, 0.05);
  std::size_t eight = 0;
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    if (g.degree(p) == 8) ++eight;
  }
  EXPECT_EQ(eight, 30u * 30u);  // all interior nodes
  EXPECT_EQ(g.max_degree(), 8u);
}

TEST(Ids, RandomIdsAreAPermutation) {
  util::Rng rng(4);
  const auto ids = topology::random_ids(100, rng);
  std::set<topology::ProtocolId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Ids, SequentialAndReversed) {
  const auto seq = topology::sequential_ids(5);
  const auto rev = topology::reversed_ids(5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(seq[i], i);
    EXPECT_EQ(rev[i], 4 - i);
  }
}

}  // namespace
}  // namespace ssmwn
