// Stress and boundary tests for the cell-hashed unit-disk-graph builder.
#include <gtest/gtest.h>

#include "topology/generators.hpp"
#include "topology/hotspots.hpp"
#include "topology/point.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(UdgStress, TenThousandNodesSampledAgainstBruteForce) {
  util::Rng rng(1);
  const auto pts = topology::uniform_points(10000, rng);
  const double radius = 0.02;
  const auto g = topology::unit_disk_graph(pts, radius);
  // Spot-check 200 random pairs plus all neighbors of 50 random nodes.
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.index(pts.size()));
    const auto b = static_cast<graph::NodeId>(rng.index(pts.size()));
    if (a == b) continue;
    EXPECT_EQ(g.adjacent(a, b),
              topology::distance(pts[a], pts[b]) <= radius);
  }
  for (int i = 0; i < 50; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.index(pts.size()));
    std::size_t brute = 0;
    for (graph::NodeId b = 0; b < pts.size(); ++b) {
      if (b != a && topology::distance(pts[a], pts[b]) <= radius) ++brute;
    }
    EXPECT_EQ(g.degree(a), brute) << "node " << a;
  }
}

TEST(UdgStress, CoincidentPointsAreMutuallyAdjacent) {
  const std::vector<topology::Point> pts{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}};
  const auto g = topology::unit_disk_graph(pts, 0.01);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(UdgStress, PointsOnSquareCorners) {
  const std::vector<topology::Point> pts{
      {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const auto unit_diag = topology::unit_disk_graph(pts, 1.5);
  EXPECT_EQ(unit_diag.edge_count(), 6u);  // all pairs within sqrt(2)
  const auto sides_only = topology::unit_disk_graph(pts, 1.0);
  EXPECT_EQ(sides_only.edge_count(), 4u);  // diagonals excluded
}

TEST(UdgStress, DegenerateColinearCluster) {
  // Points on a line spaced exactly at the radius (a power of two, so
  // the inclusive boundary is exact in floating point): a path graph.
  const double spacing = 1.0 / 128.0;
  std::vector<topology::Point> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({spacing * static_cast<double>(i), 0.5});
  }
  const auto g = topology::unit_disk_graph(pts, spacing);
  EXPECT_EQ(g.edge_count(), 49u);
  for (graph::NodeId p = 1; p + 1 < 50; ++p) EXPECT_EQ(g.degree(p), 2u);
}

TEST(UdgStress, HotspotPileupDoesNotBreakCellHash) {
  // Extremely clumped deployment: many points in few cells exercises the
  // bucket path.
  util::Rng rng(2);
  const auto pts = topology::matern_cluster_points(
      {.parent_intensity = 3, .mean_children = 400, .radius = 0.02}, rng);
  const auto g = topology::unit_disk_graph(pts, 0.05);
  // Verify a sample against brute force.
  for (int i = 0; i < 100 && pts.size() >= 2; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.index(pts.size()));
    const auto b = static_cast<graph::NodeId>(rng.index(pts.size()));
    if (a == b) continue;
    EXPECT_EQ(g.adjacent(a, b),
              topology::distance(pts[a], pts[b]) <= 0.05);
  }
}

}  // namespace
}  // namespace ssmwn
