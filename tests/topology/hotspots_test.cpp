// Tests for the Matérn cluster (hotspot) deployment and the density
// metric's behavior on it.
#include "topology/hotspots.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/density.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

TEST(Hotspots, PointsStayInUnitSquare) {
  util::Rng rng(1);
  const auto pts = topology::matern_cluster_points(
      {.parent_intensity = 15, .mean_children = 40, .radius = 0.1}, rng);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(Hotspots, MeanCountMatchesIntensityProduct) {
  util::Rng rng(2);
  util::RunningStats counts;
  const topology::MaternConfig config{
      .parent_intensity = 10, .mean_children = 30, .radius = 0.05};
  for (int i = 0; i < 200; ++i) {
    counts.add(static_cast<double>(
        topology::matern_cluster_points(config, rng).size()));
  }
  EXPECT_NEAR(counts.mean(), 300.0, 25.0);
}

TEST(Hotspots, IncludeParentsAddsCenters) {
  util::Rng rng(3);
  topology::MaternConfig config{
      .parent_intensity = 10, .mean_children = 0.0, .radius = 0.05};
  config.include_parents = true;
  util::RunningStats counts;
  for (int i = 0; i < 100; ++i) {
    counts.add(static_cast<double>(
        topology::matern_cluster_points(config, rng).size()));
  }
  EXPECT_NEAR(counts.mean(), 10.0, 2.0);
}

TEST(Hotspots, ClumpedDeploymentsAreDenserThanUniform) {
  // Same expected node count; hotspot deployments must exhibit higher
  // mean density (more links per neighbor) than uniform ones.
  util::Rng rng(4);
  util::RunningStats uniform_density, hotspot_density;
  for (int trial = 0; trial < 10; ++trial) {
    const auto uni = topology::uniform_points(400, rng);
    const auto gu = topology::unit_disk_graph(uni, 0.07);
    for (double d : core::compute_densities(gu)) uniform_density.add(d);

    const auto hot = topology::matern_cluster_points(
        {.parent_intensity = 10, .mean_children = 40, .radius = 0.06}, rng);
    const auto gh = topology::unit_disk_graph(hot, 0.07);
    for (double d : core::compute_densities(gh)) hotspot_density.add(d);
  }
  EXPECT_GT(hotspot_density.mean(), uniform_density.mean());
}

TEST(Hotspots, ClusteringInvariantsStillHold) {
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::matern_cluster_points(
        {.parent_intensity = 12, .mean_children = 35, .radius = 0.07}, rng);
    if (pts.size() < 10) continue;
    const auto g = topology::unit_disk_graph(pts, 0.07);
    const auto ids = topology::random_ids(g.node_count(), rng);
    core::ClusterOptions opt;
    opt.fusion = true;
    const auto r = core::cluster_density(g, ids, opt);
    const auto forest = r.forest();  // throws on cycles
    EXPECT_TRUE(forest.respects_graph(g));
    for (graph::NodeId p : r.heads) {
      for (graph::NodeId q : g.neighbors(p)) EXPECT_FALSE(r.is_head[q]);
    }
  }
}

}  // namespace
}  // namespace ssmwn
