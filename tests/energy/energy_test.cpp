// Tests for the energy extension: battery accounting, the
// energy-weighted metric, head rotation, and dead-node masking.
#include "energy/energy.hpp"

#include <gtest/gtest.h>

#include "core/density.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

TEST(Energy, ChargingAndDeath) {
  energy::EnergyStore store(3, {.capacity = 10.0,
                                .member_cost = 2.0,
                                .head_premium = 3.0});
  EXPECT_EQ(store.alive_count(), 3u);
  const std::vector<char> heads{1, 0, 0};
  store.charge_window(heads);  // node 0 pays 5, others 2
  EXPECT_DOUBLE_EQ(store.residual(0), 5.0);
  EXPECT_DOUBLE_EQ(store.residual(1), 8.0);
  store.charge_window(heads);
  EXPECT_DOUBLE_EQ(store.residual(0), 0.0);
  EXPECT_FALSE(store.alive(0));
  EXPECT_EQ(store.alive_count(), 2u);
  // Dead nodes pay nothing further.
  store.charge_window(heads);
  EXPECT_DOUBLE_EQ(store.residual(0), 0.0);
  EXPECT_DOUBLE_EQ(store.residual(1), 4.0);
}

TEST(Energy, FractionAndConsume) {
  energy::EnergyStore store(1, {.capacity = 100.0});
  EXPECT_DOUBLE_EQ(store.fraction(0), 1.0);
  store.consume(0, 25.0);
  EXPECT_DOUBLE_EQ(store.fraction(0), 0.75);
  store.consume(0, 1000.0);
  EXPECT_DOUBLE_EQ(store.fraction(0), 0.0);
  EXPECT_FALSE(store.alive(0));
}

TEST(Energy, RejectsNonPositiveCapacity) {
  EXPECT_THROW(energy::EnergyStore(1, {.capacity = 0.0}),
               std::invalid_argument);
}

TEST(Energy, WeightedMetricScalesDensity) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  energy::EnergyStore store(3, {.capacity = 10.0});
  store.consume(1, 5.0);  // node 1 at 50%
  const auto metric = energy::energy_weighted_metric(g, store);
  const auto density = core::compute_densities(g);
  EXPECT_DOUBLE_EQ(metric[0], density[0]);
  EXPECT_DOUBLE_EQ(metric[1], density[1] * 0.5);
  EXPECT_DOUBLE_EQ(metric[2], density[2]);
}

TEST(Energy, DepletedHeadHandsOver) {
  // Triangle: all densities equal (1.5). With full batteries the
  // smallest id heads; once it drains, the energy-aware election moves
  // the head to a fresher node.
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  const topology::IdAssignment ids{0, 1, 2};
  energy::EnergyStore store(3, {.capacity = 10.0});
  auto r = energy::cluster_energy_aware(g, ids, store);
  EXPECT_TRUE(r.is_head[0]);
  store.consume(0, 6.0);  // node 0 down to 40%
  r = energy::cluster_energy_aware(g, ids, store);
  EXPECT_FALSE(r.is_head[0]);
  EXPECT_TRUE(r.is_head[1]);  // next-smallest id at full charge
}

TEST(Energy, MaskDeadRemovesOnlyDeadEdges) {
  const auto g = graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  energy::EnergyStore store(4, {.capacity = 1.0});
  store.consume(1, 1.0);
  const auto masked = energy::mask_dead(g, store);
  EXPECT_EQ(masked.node_count(), 4u);
  EXPECT_EQ(masked.degree(1), 0u);
  EXPECT_FALSE(masked.adjacent(0, 1));
  EXPECT_TRUE(masked.adjacent(2, 3));
}

TEST(Energy, RotationExtendsTimeToFirstDeath) {
  // Lifetime experiment in miniature: static network, repeated
  // maintenance windows. With the plain density metric the same heads
  // pay the premium until they die; the energy-aware metric rotates the
  // role. Time-to-first-death must be at least as long with rotation.
  util::Rng rng(7);
  const auto pts = topology::uniform_points(150, rng);
  const auto g = topology::unit_disk_graph(pts, 0.12);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const energy::EnergyConfig config{.capacity = 60.0,
                                    .member_cost = 1.0,
                                    .head_premium = 4.0};

  auto first_death = [&](bool energy_aware) {
    energy::EnergyStore store(g.node_count(), config);
    for (int window = 0;; ++window) {
      const auto masked = energy::mask_dead(g, store);
      const auto r =
          energy_aware
              ? energy::cluster_energy_aware(masked, ids, store)
              : core::cluster_density(masked, ids, {});
      store.charge_window(
          std::span<const char>(r.is_head.data(), r.is_head.size()));
      if (store.alive_count() < g.node_count()) return window;
      if (window > 500) return window;  // safety
    }
  };

  const int plain = first_death(false);
  const int rotated = first_death(true);
  EXPECT_GE(rotated, plain);
  EXPECT_GT(rotated, 12);  // strictly later than capacity/(member+premium)
}

}  // namespace
}  // namespace ssmwn
