// Energy accounting under the async engine and under live
// re-convergence (satellite of the verify PR): battery draw is a pure
// function of the head schedule, so energy totals must be bit-identical
// across step-engine thread counts, across repeated async runs of the
// same seed under every daemon, and across a live topology-delta
// re-convergence — any drift means an engine leaked nondeterminism into
// the head trajectory.
#include <gtest/gtest.h>

#include <vector>

#include "core/protocol.hpp"
#include "energy/energy.hpp"
#include "mobility/mobility.hpp"
#include "sim/async_network.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "support/deployments.hpp"
#include "topology/incremental.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

constexpr energy::EnergyConfig kBudget{
    .capacity = 1000.0, .member_cost = 1.0, .head_premium = 4.0};

std::vector<double> residuals(const energy::EnergyStore& store) {
  std::vector<double> out(store.node_count());
  for (graph::NodeId p = 0; p < store.node_count(); ++p) {
    out[p] = store.residual(p);
  }
  return out;
}

/// Runs `steps` synchronous rounds on `threads` workers, charging one
/// energy window per round from the protocol's current head flags.
std::vector<double> sync_energy_run(unsigned threads, std::size_t steps) {
  const auto w = testsupport::make_deployment(120, 0.13, 77);
  core::ProtocolConfig config;
  config.delta_hint = std::max<std::uint64_t>(2, w.graph.max_degree());
  core::DensityProtocol protocol(w.ids, config, util::Rng(5));
  util::Rng chaos(55);
  protocol.corrupt_all(chaos);
  sim::PerfectDelivery medium;
  sim::Network network(w.graph, protocol, medium, threads);
  energy::EnergyStore store(w.graph.node_count(), kBudget);
  for (std::size_t s = 0; s < steps; ++s) {
    network.step();
    const auto heads = protocol.head_flags();
    store.charge_window({heads.data(), heads.size()});
  }
  return residuals(store);
}

TEST(EnergyAsync, SyncEnergyTotalsAreThreadCountInvariant) {
  const auto serial = sync_energy_run(1, 40);
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(sync_energy_run(threads, 40), serial)
        << "threads=" << threads;
  }
  // And something actually drained.
  double spent = 0.0;
  for (const double r : serial) spent += kBudget.capacity - r;
  EXPECT_GT(spent, 0.0);
}

/// One async run charging a window per broadcast period; deterministic
/// from its seed for any daemon.
std::vector<double> async_energy_run(sim::DaemonKind daemon,
                                     std::uint64_t seed) {
  const auto w = testsupport::make_deployment(90, 0.14, 31);
  core::ProtocolConfig config;
  config.delta_hint = std::max<std::uint64_t>(2, w.graph.max_degree());
  config.cache_max_age = 32;  // cover the unfair daemon's slow victims
  core::DensityProtocol protocol(w.ids, config, util::Rng(seed));
  util::Rng chaos(seed ^ 0xC0FFEE);
  protocol.corrupt_all(chaos);
  sim::PerfectDelivery medium;
  sim::AsyncConfig async;
  async.daemon = daemon;
  sim::AsyncNetwork network(w.graph, protocol, medium, async,
                            util::Rng(seed ^ 0xFEED));
  energy::EnergyStore store(w.graph.node_count(), kBudget);
  for (int period = 0; period < 60; ++period) {
    network.run_for(async.period_s);
    const auto heads = protocol.head_flags();
    store.charge_window({heads.data(), heads.size()});
  }
  return residuals(store);
}

TEST(EnergyAsync, AsyncEnergyTotalsAreDeterministicPerDaemon) {
  for (const auto daemon :
       {sim::DaemonKind::kSynchronous, sim::DaemonKind::kRandomized,
        sim::DaemonKind::kUnfairRoundRobin}) {
    const auto first = async_energy_run(daemon, 13);
    const auto second = async_energy_run(daemon, 13);
    EXPECT_EQ(first, second)
        << "daemon " << static_cast<int>(daemon) << " not reproducible";
    double spent = 0.0;
    for (const double r : first) spent += kBudget.capacity - r;
    EXPECT_GT(spent, 0.0);
  }
}

TEST(EnergyAsync, LiveReconvergenceKeepsAccountingDeterministic) {
  // Energy under live topology change, on both engines: same seed, same
  // deltas, same charge schedule — run twice, compare bitwise.
  const auto run = [](unsigned threads) {
    auto w = testsupport::make_deployment(100, 0.14, 63);
    topology::LiveTopology live(w.points, 0.14);
    util::Rng rng(17);
    mobility::RandomDirection mover(w.points.size(), {0.0, 8.0}, 1000.0,
                                    rng.split());
    core::ProtocolConfig config;
    config.delta_hint =
        std::max<std::uint64_t>(2, live.graph().max_degree());
    core::DensityProtocol protocol(w.ids, config, rng.split());
    sim::PerfectDelivery medium;
    sim::Network network(live.graph(), protocol, medium, threads);
    energy::EnergyStore store(live.graph().node_count(), kBudget);
    for (int window = 0; window < 10; ++window) {
      mover.step(w.points, 2.0);
      network.apply_topology_delta(live.update(w.points));
      for (int round = 0; round < 4; ++round) {
        network.step();
        const auto heads = protocol.head_flags();
        store.charge_window({heads.data(), heads.size()});
      }
    }
    return residuals(store);
  };
  const auto serial = run(1);
  EXPECT_EQ(run(1), serial);
  EXPECT_EQ(run(4), serial);  // the parallel step engine too
}

}  // namespace
}  // namespace ssmwn
