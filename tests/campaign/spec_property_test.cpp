// Properties of spec parsing and grid expansion: the expansion is
// exhaustive and duplicate-free, per-run seeds are unique and do not
// depend on the order of fields in the file, and malformed specs are
// rejected with a SpecError — never an assert.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "campaign/spec.hpp"

namespace ssmwn {
namespace {

using campaign::CampaignSpec;
using campaign::SpecError;

TEST(CampaignSpec, ExpansionIsExhaustiveAndDuplicateFree) {
  const auto spec = campaign::parse_spec_text(R"(
    topology     = uniform, grid
    n            = 50, 100, 200
    radius       = 0.08, 0.1
    variant      = basic, full
    replications = 5
  )");
  const auto plan = campaign::expand(spec);
  EXPECT_EQ(plan.grid.size(), 2u * 3u * 2u * 2u);
  EXPECT_EQ(plan.runs.size(), plan.grid.size() * 5u);

  // Every grid point is distinct (canonical serializations are a set).
  std::set<std::string> canonicals;
  for (const auto& point : plan.grid) canonicals.insert(point.canonical);
  EXPECT_EQ(canonicals.size(), plan.grid.size());

  // Every (grid, replication) pair appears exactly once, grid-major.
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& run : plan.runs) {
    EXPECT_LT(run.grid_index, plan.grid.size());
    EXPECT_LT(run.replication, 5u);
    pairs.insert({run.grid_index, run.replication});
  }
  EXPECT_EQ(pairs.size(), plan.runs.size());
}

TEST(CampaignSpec, RunSeedsAreUnique) {
  const auto spec = campaign::parse_spec_text(R"(
    n            = 50, 100, 200, 400
    radius       = 0.05, 0.08, 0.1
    tau          = 1, 0.9, 0.8
    variant      = basic, dag, improved, full
    replications = 7
  )");
  const auto plan = campaign::expand(spec);
  std::set<std::uint64_t> seeds;
  for (const auto& run : plan.runs) seeds.insert(run.seed);
  EXPECT_EQ(seeds.size(), plan.runs.size()) << "seed collision in the plan";
}

TEST(CampaignSpec, SeedsAreStableUnderFieldReordering) {
  // Same campaign, fields written in two different orders.
  const auto forward = campaign::expand(campaign::parse_spec_text(R"(
    name         = order
    topology     = uniform, poisson
    n            = 80
    radius       = 0.1
    variant      = basic, improved
    replications = 3
    seed_base    = 99
  )"));
  const auto reversed = campaign::expand(campaign::parse_spec_text(R"(
    seed_base    = 99
    replications = 3
    variant      = basic, improved
    radius       = 0.1
    n            = 80
    topology     = uniform, poisson
    name         = order
  )"));
  ASSERT_EQ(forward.runs.size(), reversed.runs.size());
  for (std::size_t i = 0; i < forward.runs.size(); ++i) {
    EXPECT_EQ(forward.runs[i].seed, reversed.runs[i].seed) << "run " << i;
    EXPECT_EQ(forward.runs[i].grid_index, reversed.runs[i].grid_index);
  }
  ASSERT_EQ(forward.grid.size(), reversed.grid.size());
  for (std::size_t g = 0; g < forward.grid.size(); ++g) {
    EXPECT_EQ(forward.grid[g].canonical, reversed.grid[g].canonical);
  }
}

TEST(CampaignSpec, SeedsDependOnSeedBaseAndConfigAndReplication) {
  const std::string canonical =
      campaign::canonical_config(campaign::ScenarioConfig{});
  const auto a = campaign::run_seed(1, canonical, 0);
  EXPECT_NE(a, campaign::run_seed(2, canonical, 0));
  EXPECT_NE(a, campaign::run_seed(1, canonical, 1));
  EXPECT_NE(a, campaign::run_seed(1, canonical + ";x=1", 0));
  EXPECT_EQ(a, campaign::run_seed(1, canonical, 0));  // pure function
}

TEST(CampaignSpec, DefaultsRoundTrip) {
  // An empty spec is a valid single-scenario campaign.
  const auto plan = campaign::expand(campaign::parse_spec_text(""));
  EXPECT_EQ(plan.grid.size(), 1u);
  EXPECT_EQ(plan.runs.size(), plan.replications);
}

TEST(CampaignSpec, MalformedSpecsAreRejectedWithClearErrors) {
  const auto rejects = [](const char* text, const char* needle) {
    try {
      (void)campaign::expand(campaign::parse_spec_text(text));
      FAIL() << "spec was accepted: " << text;
    } catch (const SpecError& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "message '" << error.what() << "' lacks '" << needle << "'";
    }
  };
  rejects("replications = 0", "replications");
  rejects("radius = -0.5", "radius");
  rejects("radius = 0", "radius");
  rejects("frobnicate = 1", "unknown key 'frobnicate'");
  rejects("variant = bogus", "variant");
  rejects("topology = torus", "topology");
  rejects("mobility = teleport", "mobility");
  rejects("n = 0", "n");
  rejects("n = 2.5", "n");
  rejects("n = ten", "n");
  rejects("tau = 0", "tau");
  rejects("tau = 1.5", "tau");
  rejects("churn_down = 2", "churn_down");
  rejects("steps = 0", "steps");
  rejects("window_s = -1", "window_s");
  rejects("window_s = nan", "window_s");
  rejects("seed_base = 1, 2", "seed_base");        // scalar-only key
  rejects("seed_base = 20o50612", "seed_base");    // trailing junk
  rejects("seed_base = -1", "seed_base");          // stoull would wrap
  rejects("n = 1e20", "n");                        // double->size_t UB guard
  rejects("replications = 1e18", "replications");  // absurd count
  rejects("name = a, b", "name");                  // scalar-only key
  rejects("n 5", "key = value");                   // missing '='
  rejects("n =", "empty value");
  rejects("n = 5\nn = 6", "duplicate key 'n'");
  rejects("radius = 0.1abc", "radius");            // trailing junk
  rejects("speed_min = 5\nspeed_max = 1", "speed_min");  // impossible combo
}

TEST(CampaignSpec, SpecErrorIsInvalidArgument) {
  // The CLI maps std::invalid_argument to the bad-arguments exit code;
  // spec errors must ride that path, not the run-failure one.
  EXPECT_THROW((void)campaign::parse_spec_text("replications = 0"),
               std::invalid_argument);
}

TEST(CampaignSpec, CommentsAndWhitespaceAreIgnored) {
  const auto spec = campaign::parse_spec_text(R"(
    # full-line comment
    name = commented   # trailing comment
       n   =   123
  )");
  EXPECT_EQ(spec.name, "commented");
  ASSERT_EQ(spec.n.size(), 1u);
  EXPECT_EQ(spec.n.front(), 123u);
}

}  // namespace
}  // namespace ssmwn
