// Properties of spec parsing and grid expansion: the expansion is
// exhaustive and duplicate-free, per-run seeds are unique and do not
// depend on the order of fields in the file, and malformed specs are
// rejected with a SpecError — never an assert.
#include <gtest/gtest.h>

#include <locale>
#include <set>
#include <string>

#include "campaign/spec.hpp"

namespace ssmwn {
namespace {

using campaign::CampaignSpec;
using campaign::SpecError;

TEST(CampaignSpec, ExpansionIsExhaustiveAndDuplicateFree) {
  const auto spec = campaign::parse_spec_text(R"(
    topology     = uniform, grid
    n            = 50, 100, 200
    radius       = 0.08, 0.1
    variant      = basic, full
    replications = 5
  )");
  const auto plan = campaign::expand(spec);
  EXPECT_EQ(plan.grid.size(), 2u * 3u * 2u * 2u);
  EXPECT_EQ(plan.runs.size(), plan.grid.size() * 5u);

  // Every grid point is distinct (canonical serializations are a set).
  std::set<std::string> canonicals;
  for (const auto& point : plan.grid) canonicals.insert(point.canonical);
  EXPECT_EQ(canonicals.size(), plan.grid.size());

  // Every (grid, replication) pair appears exactly once, grid-major.
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& run : plan.runs) {
    EXPECT_LT(run.grid_index, plan.grid.size());
    EXPECT_LT(run.replication, 5u);
    pairs.insert({run.grid_index, run.replication});
  }
  EXPECT_EQ(pairs.size(), plan.runs.size());
}

TEST(CampaignSpec, RunSeedsAreUnique) {
  const auto spec = campaign::parse_spec_text(R"(
    n            = 50, 100, 200, 400
    radius       = 0.05, 0.08, 0.1
    tau          = 1, 0.9, 0.8
    variant      = basic, dag, improved, full
    replications = 7
  )");
  const auto plan = campaign::expand(spec);
  std::set<std::uint64_t> seeds;
  for (const auto& run : plan.runs) seeds.insert(run.seed);
  EXPECT_EQ(seeds.size(), plan.runs.size()) << "seed collision in the plan";
}

TEST(CampaignSpec, SeedsAreStableUnderFieldReordering) {
  // Same campaign, fields written in two different orders.
  const auto forward = campaign::expand(campaign::parse_spec_text(R"(
    name         = order
    topology     = uniform, poisson
    n            = 80
    radius       = 0.1
    variant      = basic, improved
    replications = 3
    seed_base    = 99
  )"));
  const auto reversed = campaign::expand(campaign::parse_spec_text(R"(
    seed_base    = 99
    replications = 3
    variant      = basic, improved
    radius       = 0.1
    n            = 80
    topology     = uniform, poisson
    name         = order
  )"));
  ASSERT_EQ(forward.runs.size(), reversed.runs.size());
  for (std::size_t i = 0; i < forward.runs.size(); ++i) {
    EXPECT_EQ(forward.runs[i].seed, reversed.runs[i].seed) << "run " << i;
    EXPECT_EQ(forward.runs[i].grid_index, reversed.runs[i].grid_index);
  }
  ASSERT_EQ(forward.grid.size(), reversed.grid.size());
  for (std::size_t g = 0; g < forward.grid.size(); ++g) {
    EXPECT_EQ(forward.grid[g].canonical, reversed.grid[g].canonical);
  }
}

TEST(CampaignSpec, SeedsDependOnSeedBaseAndConfigAndReplication) {
  const std::string canonical =
      campaign::canonical_config(campaign::ScenarioConfig{});
  const auto a = campaign::run_seed(1, canonical, 0);
  EXPECT_NE(a, campaign::run_seed(2, canonical, 0));
  EXPECT_NE(a, campaign::run_seed(1, canonical, 1));
  EXPECT_NE(a, campaign::run_seed(1, canonical + ";x=1", 0));
  EXPECT_EQ(a, campaign::run_seed(1, canonical, 0));  // pure function
}

TEST(CampaignSpec, DefaultsRoundTrip) {
  // An empty spec is a valid single-scenario campaign.
  const auto plan = campaign::expand(campaign::parse_spec_text(""));
  EXPECT_EQ(plan.grid.size(), 1u);
  EXPECT_EQ(plan.runs.size(), plan.replications);
}

TEST(CampaignSpec, MalformedSpecsAreRejectedWithClearErrors) {
  const auto rejects = [](const char* text, const char* needle) {
    try {
      (void)campaign::expand(campaign::parse_spec_text(text));
      FAIL() << "spec was accepted: " << text;
    } catch (const SpecError& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "message '" << error.what() << "' lacks '" << needle << "'";
    }
  };
  rejects("replications = 0", "replications");
  rejects("radius = -0.5", "radius");
  rejects("radius = 0", "radius");
  rejects("frobnicate = 1", "unknown key 'frobnicate'");
  rejects("variant = bogus", "variant");
  rejects("topology = torus", "topology");
  rejects("mobility = teleport", "mobility");
  rejects("n = 0", "n");
  rejects("n = 2.5", "n");
  rejects("n = ten", "n");
  rejects("tau = 0", "tau");
  rejects("tau = 1.5", "tau");
  rejects("churn_down = 2", "churn_down");
  rejects("steps = 0", "steps");
  rejects("window_s = -1", "window_s");
  rejects("window_s = nan", "window_s");
  rejects("seed_base = 1, 2", "seed_base");        // scalar-only key
  rejects("seed_base = 20o50612", "seed_base");    // trailing junk
  rejects("seed_base = -1", "seed_base");          // stoull would wrap
  rejects("n = 1e20", "n");                        // double->size_t UB guard
  rejects("replications = 1e18", "replications");  // absurd count
  rejects("name = a, b", "name");                  // scalar-only key
  rejects("n 5", "key = value");                   // missing '='
  rejects("n =", "empty value");
  rejects("n = 5\nn = 6", "duplicate key 'n'");
  rejects("radius = 0.1abc", "radius");            // trailing junk
  rejects("speed_min = 5\nspeed_max = 1", "speed_min");  // impossible combo
}

TEST(CampaignSpec, SchedulerAxisExpandsAndDeduplicatesSyncPoints) {
  // The async knobs don't affect a sync run, so sweeping them must emit
  // each sync point once but every async combination: 1 + 2×2 = 5
  // points per variant.
  const auto plan = campaign::expand(campaign::parse_spec_text(R"(
    n            = 40
    scheduler    = sync, async
    period_jitter = 0.05, 0.2
    link_delay   = 0.01, 0.1
    replications = 2
  )"));
  EXPECT_EQ(plan.grid.size(), 5u);
  std::size_t sync_points = 0;
  std::set<std::uint64_t> seeds;
  std::set<std::string> canonicals;
  for (const auto& point : plan.grid) {
    sync_points += point.config.scheduler == campaign::SchedulerKind::kSync;
    canonicals.insert(point.canonical);
  }
  for (const auto& run : plan.runs) seeds.insert(run.seed);
  EXPECT_EQ(sync_points, 1u);
  EXPECT_EQ(canonicals.size(), plan.grid.size());
  EXPECT_EQ(seeds.size(), plan.runs.size());
}

TEST(CampaignSpec, SyncCanonicalIsStableAcrossTheSchedulerRelease) {
  // A synchronous grid point must serialize without any scheduler
  // fields — its canonical string (and therefore every seed hashed
  // from it) is bit-stable across the release that added the axis.
  campaign::ScenarioConfig config;
  const auto canonical = campaign::canonical_config(config);
  EXPECT_EQ(canonical.find("scheduler"), std::string::npos);
  EXPECT_EQ(canonical.find("period_jitter"), std::string::npos);
  EXPECT_EQ(canonical.find("link_delay"), std::string::npos);
  // And the exact pre-axis serialization, pinned byte for byte.
  EXPECT_EQ(canonical,
            "topology=uniform;n=300;radius=0.08;variant=basic;"
            "mobility=none;speed_min=0;speed_max=1.6;tau=1;churn_down=0;"
            "churn_up=0.5;steps=50;window_s=2;world_m=1000");

  config.scheduler = campaign::SchedulerKind::kAsync;
  const auto async_canonical = campaign::canonical_config(config);
  EXPECT_NE(async_canonical.find(";scheduler=async;period_jitter=0.1;"
                                 "link_delay=0.02"),
            std::string::npos);
}

TEST(CampaignSpec, AsyncRejectsMobilityAndChurn) {
  const auto rejects = [](const char* text) {
    EXPECT_THROW((void)campaign::expand(campaign::parse_spec_text(text)),
                 SpecError)
        << text;
  };
  rejects("scheduler = async\nmobility = random-direction");
  rejects("scheduler = async\nchurn_down = 0.1");
  rejects("scheduler = async\nwindow_s = 0.0000005");  // sub-tick period
  rejects("scheduler = bogus");
  rejects("period_jitter = 1.5");
  rejects("period_jitter = -0.1");
  rejects("link_delay = -1");
  // And the valid combination parses.
  const auto plan = campaign::expand(campaign::parse_spec_text(
      "scheduler = async\nn = 30\nsteps = 5"));
  EXPECT_EQ(plan.grid.size(), 1u);
  EXPECT_EQ(plan.grid[0].config.scheduler, campaign::SchedulerKind::kAsync);
}

TEST(CampaignSpec, LiveAxisExpandsAndDeduplicatesNonLivePoints) {
  // topology_update only matters for live points: sweeping both axes
  // must emit each non-live point once but every live combination:
  // 1 + 2 = 3 points.
  const auto plan = campaign::expand(campaign::parse_spec_text(R"(
    n               = 40
    protocol_live   = false, true
    topology_update = incremental, rebuild
    replications    = 2
  )"));
  EXPECT_EQ(plan.grid.size(), 3u);
  std::size_t live_points = 0;
  std::set<std::string> canonicals;
  std::set<std::uint64_t> seeds;
  for (const auto& point : plan.grid) {
    live_points += point.config.protocol_live;
    canonicals.insert(point.canonical);
  }
  for (const auto& run : plan.runs) seeds.insert(run.seed);
  EXPECT_EQ(live_points, 2u);
  EXPECT_EQ(canonicals.size(), plan.grid.size());
  EXPECT_EQ(seeds.size(), plan.runs.size());
}

TEST(CampaignSpec, NonLiveCanonicalIsStableAcrossTheLiveRelease) {
  // A non-live point serializes without any of the dynamic-topology
  // fields — pre-existing sync AND async campaign seeds survive the
  // release that added the axis.
  campaign::ScenarioConfig config;
  EXPECT_EQ(campaign::canonical_config(config).find("protocol_live"),
            std::string::npos);
  config.scheduler = campaign::SchedulerKind::kAsync;
  const auto async_canonical = campaign::canonical_config(config);
  EXPECT_EQ(async_canonical.find("protocol_live"), std::string::npos);
  EXPECT_EQ(async_canonical.find("topology_update"), std::string::npos);
  EXPECT_EQ(async_canonical.find("live_horizon"), std::string::npos);

  config.protocol_live = true;
  EXPECT_NE(campaign::canonical_config(config).find(
                ";protocol_live=true;topology_update=incremental;"
                "live_horizon=64"),
            std::string::npos);
}

TEST(CampaignSpec, ProtocolLiveLiftsTheAsyncMobilityRejection) {
  // The acceptance shape: async + mobility + protocol_live=true must
  // expand cleanly (this was a SpecError before the dynamic-topology
  // runtime existed) — and stays rejected without protocol_live.
  const auto plan = campaign::expand(campaign::parse_spec_text(R"(
    scheduler       = async
    mobility        = random-direction
    protocol_live   = true
    n               = 30
    steps           = 5
  )"));
  ASSERT_EQ(plan.grid.size(), 1u);
  EXPECT_TRUE(plan.grid[0].config.protocol_live);
  EXPECT_EQ(plan.grid[0].config.mobility,
            campaign::MobilityKind::kRandomDirection);

  EXPECT_THROW((void)campaign::expand(campaign::parse_spec_text(
                   "scheduler = async\nmobility = random-direction")),
               SpecError);
  EXPECT_THROW((void)campaign::expand(campaign::parse_spec_text(
                   "scheduler = async\nchurn_down = 0.1\n"
                   "protocol_live = false")),
               SpecError);
  // Live churn is allowed on either engine.
  const auto churny = campaign::expand(campaign::parse_spec_text(
      "protocol_live = true\nchurn_down = 0.1\nn = 30\nsteps = 5"));
  EXPECT_EQ(churny.grid.size(), 1u);
  // Malformed live keys are rejected like any other.
  EXPECT_THROW((void)campaign::parse_spec_text("protocol_live = maybe"),
               SpecError);
  EXPECT_THROW((void)campaign::parse_spec_text("topology_update = magic"),
               SpecError);
  EXPECT_THROW((void)campaign::parse_spec_text("live_horizon = 0"),
               SpecError);
}

TEST(CampaignSpec, VerifyAxisExpandsAndDeduplicatesNonVerifyPoints) {
  // fault_class and daemon only matter for verify points: sweeping all
  // three axes must emit each non-verify point once but every verify
  // combination: 1 + 2×3 = 7 points.
  const auto plan = campaign::expand(campaign::parse_spec_text(R"(
    n             = 40
    verify_faults = false, true
    fault_class   = random-all, stale-cache
    daemon        = synchronous, randomized, unfair
    replications  = 2
  )"));
  EXPECT_EQ(plan.grid.size(), 7u);
  std::size_t verify_points = 0;
  std::set<std::string> canonicals;
  std::set<std::uint64_t> seeds;
  for (const auto& point : plan.grid) {
    verify_points += point.config.verify_faults;
    canonicals.insert(point.canonical);
  }
  for (const auto& run : plan.runs) seeds.insert(run.seed);
  EXPECT_EQ(verify_points, 6u);
  EXPECT_EQ(canonicals.size(), plan.grid.size());
  EXPECT_EQ(seeds.size(), plan.runs.size());
}

TEST(CampaignSpec, NonVerifyCanonicalIsStableAcrossTheVerifyRelease) {
  // Non-verify points serialize without any certification fields — all
  // pre-existing sync, async, AND live campaign seeds survive the
  // release that added the axis.
  campaign::ScenarioConfig config;
  EXPECT_EQ(campaign::canonical_config(config).find("verify"),
            std::string::npos);
  config.scheduler = campaign::SchedulerKind::kAsync;
  EXPECT_EQ(campaign::canonical_config(config).find("verify"),
            std::string::npos);
  config.scheduler = campaign::SchedulerKind::kSync;
  config.protocol_live = true;
  const auto live_canonical = campaign::canonical_config(config);
  EXPECT_EQ(live_canonical.find("verify"), std::string::npos);
  EXPECT_EQ(live_canonical.find("fault_class"), std::string::npos);
  EXPECT_EQ(live_canonical.find("daemon"), std::string::npos);

  config.protocol_live = false;
  config.verify_faults = true;
  EXPECT_NE(campaign::canonical_config(config).find(
                ";verify_faults=true;fault_class=random-all;"
                "daemon=randomized"),
            std::string::npos);
}

TEST(CampaignSpec, VerifyRejectsIncompatibleAxes) {
  const auto rejects = [](const char* text, const char* needle) {
    try {
      (void)campaign::expand(campaign::parse_spec_text(text));
      FAIL() << "spec was accepted: " << text;
    } catch (const SpecError& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "message '" << error.what() << "' lacks '" << needle << "'";
    }
  };
  rejects("verify_faults = true\nprotocol_live = true", "protocol_live");
  rejects("verify_faults = true\nscheduler = async", "scheduler");
  rejects("verify_faults = true\nmobility = random-direction", "mobility");
  rejects("verify_faults = true\nchurn_down = 0.1", "mobility/churn");
  rejects("verify_faults = true\ntopology = grid", "uniform");
  // A horizon below the confirmation window can never certify; every
  // replication would report a fake "violation" (exit 0) — reject it.
  rejects("verify_faults = true\nsteps = 4", "steps");
  rejects("fault_class = bitflip", "fault_class");
  rejects("daemon = byzantine", "daemon");
  rejects("verify_faults = maybe", "verify_faults");
  // The valid shape expands, lossy media included.
  const auto plan = campaign::expand(campaign::parse_spec_text(
      "verify_faults = true\nfault_class = partial-frame\n"
      "daemon = unfair\ntau = 0.9\nn = 30\nsteps = 40"));
  ASSERT_EQ(plan.grid.size(), 1u);
  EXPECT_TRUE(plan.grid[0].config.verify_faults);
  EXPECT_EQ(plan.grid[0].config.fault_class,
            verify::FaultClass::kPartialFrame);
  EXPECT_EQ(plan.grid[0].config.daemon, verify::Daemon::kUnfair);
}

TEST(CampaignSpec, SteppingAxisExpandsAndDeduplicatesInapplicablePoints) {
  // stepping only matters for points with a stepper seam (live or
  // async): sweeping it alongside protocol_live must emit the classic
  // sync point once but both live variants: 1 + 2 = 3 points.
  const auto plan = campaign::expand(campaign::parse_spec_text(R"(
    n             = 40
    protocol_live = false, true
    stepping      = full, dirty
    replications  = 2
  )"));
  EXPECT_EQ(plan.grid.size(), 3u);
  std::size_t dirty_points = 0;
  std::set<std::string> canonicals;
  std::set<std::uint64_t> seeds;
  for (const auto& point : plan.grid) {
    dirty_points += point.config.stepping == campaign::SteppingKind::kDirty &&
                    campaign::stepping_applies(point.config);
    canonicals.insert(point.canonical);
  }
  for (const auto& run : plan.runs) seeds.insert(run.seed);
  EXPECT_EQ(dirty_points, 1u);
  EXPECT_EQ(canonicals.size(), plan.grid.size());
  EXPECT_EQ(seeds.size(), plan.runs.size());
}

TEST(CampaignSpec, CanonicalIsStableAcrossTheSteppingRelease) {
  // stepping=full is NEVER serialized, and stepping=dirty only where it
  // applies — so every pre-existing point (classic sync, async, live,
  // verify) keeps its exact canonical string, and therefore its seeds
  // and byte-identical outputs, across the release that added the axis.
  campaign::ScenarioConfig config;
  EXPECT_EQ(campaign::canonical_config(config).find("stepping"),
            std::string::npos);
  config.scheduler = campaign::SchedulerKind::kAsync;
  EXPECT_EQ(campaign::canonical_config(config).find("stepping"),
            std::string::npos);
  config.protocol_live = true;
  EXPECT_EQ(campaign::canonical_config(config).find("stepping"),
            std::string::npos);

  // Where it applies and deviates, it serializes — as the suffix.
  config.stepping = campaign::SteppingKind::kDirty;
  const auto live_dirty = campaign::canonical_config(config);
  EXPECT_TRUE(live_dirty.ends_with(";stepping=dirty")) << live_dirty;

  // Inapplicable points never carry it, even when set programmatically:
  // a certification trial pins its own execution.
  campaign::ScenarioConfig trial;
  trial.verify_faults = true;
  trial.steps = 40;
  trial.stepping = campaign::SteppingKind::kDirty;
  EXPECT_FALSE(campaign::stepping_applies(trial));
  EXPECT_EQ(campaign::canonical_config(trial).find("stepping"),
            std::string::npos);
}

TEST(CampaignSpec, DirtySteppingRequiresLossFreeSyncEngine) {
  const auto rejects = [](const char* text, const char* needle) {
    try {
      (void)campaign::expand(campaign::parse_spec_text(text));
      FAIL() << "spec was accepted: " << text;
    } catch (const SpecError& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "message '" << error.what() << "' lacks '" << needle << "'";
    }
  };
  // The sync dirty stepper elides nodes and with them their per-link
  // loss draws; only a loss-free medium keeps it bit-identical.
  rejects("protocol_live = true\nstepping = dirty\ntau = 0.9", "tau=1");
  rejects("stepping = sloppy", "stepping");
  // The async engine's dirty mode preserves the event trace under any
  // loss model, so the same sweep is fine there...
  const auto lossy_async = campaign::expand(campaign::parse_spec_text(
      "scheduler = async\nstepping = dirty\ntau = 0.9\nn = 30\nsteps = 5"));
  ASSERT_EQ(lossy_async.grid.size(), 1u);
  EXPECT_EQ(lossy_async.grid[0].config.stepping,
            campaign::SteppingKind::kDirty);
  // ...and so is loss-free sync live.
  const auto clean_live = campaign::expand(campaign::parse_spec_text(
      "protocol_live = true\nstepping = dirty\nn = 30\nsteps = 5"));
  ASSERT_EQ(clean_live.grid.size(), 1u);
  EXPECT_TRUE(clean_live.grid[0].canonical.ends_with(";stepping=dirty"));
}

TEST(CampaignSpec, SpecErrorIsInvalidArgument) {
  // The CLI maps std::invalid_argument to the bad-arguments exit code;
  // spec errors must ride that path, not the run-failure one.
  EXPECT_THROW((void)campaign::parse_spec_text("replications = 0"),
               std::invalid_argument);
}

TEST(CampaignSpec, FormattingIsLocaleIndependent) {
  // Byte-identical replay must hold under any LC_NUMERIC: a locale with
  // a comma decimal separator and dot grouping (de_DE) must change
  // neither format_double nor canonical serialization (seeds!).
  std::locale original;
  std::locale german;
  try {
    german = std::locale("de_DE.UTF-8");
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  }
  const auto before_double = campaign::format_double(1234567.25);
  campaign::ScenarioConfig config;
  config.n = 1000000;  // grouping bait for integer insertion
  const auto before_canonical = campaign::canonical_config(config);

  std::locale::global(german);
  const auto under_double = campaign::format_double(1234567.25);
  const auto under_canonical = campaign::canonical_config(config);
  // Parsing is locale-free too: strtod-based parsing would stop "0.08"
  // at the '.' under de_DE and reject the spec.
  const auto under_spec =
      campaign::parse_spec_text("radius = 0.08\ntau = 0.5");
  std::locale::global(original);
  ASSERT_EQ(under_spec.radius.size(), 1u);
  EXPECT_DOUBLE_EQ(under_spec.radius.front(), 0.08);
  EXPECT_DOUBLE_EQ(under_spec.tau.front(), 0.5);

  EXPECT_EQ(before_double, under_double);
  EXPECT_EQ(before_canonical, under_canonical);
  EXPECT_EQ(before_double, "1234567.25");
  EXPECT_NE(before_canonical.find("n=1000000;"), std::string::npos);
}

TEST(CampaignSpec, LeadingPlusInNumbersIsAccepted) {
  const auto spec = campaign::parse_spec_text("tau = +0.5\nradius = +0.1");
  EXPECT_DOUBLE_EQ(spec.tau.front(), 0.5);
  EXPECT_DOUBLE_EQ(spec.radius.front(), 0.1);
  EXPECT_THROW((void)campaign::parse_spec_text("tau = +-0.5"), SpecError);
}

TEST(CampaignSpec, CommentsAndWhitespaceAreIgnored) {
  const auto spec = campaign::parse_spec_text(R"(
    # full-line comment
    name = commented   # trailing comment
       n   =   123
  )");
  EXPECT_EQ(spec.name, "commented");
  ASSERT_EQ(spec.n.size(), 1u);
  EXPECT_EQ(spec.n.front(), 123u);
}

}  // namespace
}  // namespace ssmwn
