// Kill-and-resume harness: the out-of-process half of the checkpoint
// guarantee. Real `ssmwn campaign` subprocesses are SIGKILLed mid-sweep
// at randomized (but seeded) points, resumed from whatever checkpoint
// survived on disk, and the final CSV/JSON bytes must equal an
// uninterrupted run's — across --threads {1, 4}. SIGKILL is the honest
// crash model: no atexit, no stack unwinding, no flushing — whatever
// the atomic-rename discipline left on disk is all the resume gets.
//
// The CLI binary's path arrives via SSMWN_CLI_BIN (set by CMake from
// $<TARGET_FILE:ssmwn_cli>); the test is skipped when absent so the
// bare test binary still runs standalone.
#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// Heavy enough that a kill lands mid-sweep (~350 ms a sweep on a dev
// box — an order of magnitude above the shortest kill delay), small
// enough to stay in the campaign-tier time budget. checkpoint-every=1
// maximizes the number of distinct crash surfaces a kill can hit
// (including mid-publish).
constexpr const char* kSpecText = R"(
name         = killrun
topology     = uniform
n            = 300
radius       = 0.08
variant      = basic, improved
mobility     = random-direction
speed_max    = 1.6
tau          = 0.9
steps        = 40
replications = 10
seed_base    = 20250807
)";

std::string cli_bin() {
  const char* bin = std::getenv("SSMWN_CLI_BIN");
  return bin == nullptr ? std::string() : std::string(bin);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

struct Exit {
  bool signaled = false;
  int code = -1;  // exit status, or the signal number when signaled
};

/// fork/exec the CLI with stdout/stderr sent to /dev/null. If
/// `kill_after_us` is nonzero, SIGKILL the child after that delay;
/// returns how the child ended.
Exit run_cli(const std::vector<std::string>& args, useconds_t kill_after_us) {
  std::vector<char*> argv;
  static std::string bin;  // exec needs stable storage
  bin = cli_bin();
  argv.push_back(bin.data());
  std::vector<std::string> stable(args);
  for (auto& arg : stable) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::dup2(null_fd, STDERR_FILENO);
      ::close(null_fd);
    }
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  if (kill_after_us != 0) {
    ::usleep(kill_after_us);
    ::kill(pid, SIGKILL);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  Exit out;
  if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.code = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    out.code = WEXITSTATUS(status);
  }
  return out;
}

class ResumeKillTest : public testing::Test {
 protected:
  void SetUp() override {
    if (cli_bin().empty()) {
      GTEST_SKIP() << "SSMWN_CLI_BIN not set (run via ctest)";
    }
    dir_ = testing::TempDir() + "ssmwn_kill_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    spec_ = dir_ + "/spec.txt";
    std::ofstream out(spec_);
    out << kSpecText;
  }

  void TearDown() override {
    // Killed children leave .tmp.<pid> staging files behind (that is
    // the point of the atomic-rename discipline) — sweep everything.
    if (DIR* dir = ::opendir(dir_.c_str())) {
      while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          std::remove((dir_ + "/" + name).c_str());
        }
      }
      ::closedir(dir);
    }
    ::rmdir(dir_.c_str());
  }

  std::string dir_, spec_;
};

TEST_F(ResumeKillTest, KilledSweepsResumeToIdenticalBytes) {
  // Uninterrupted reference (single run; replay_test already proves the
  // reference itself is thread-count independent).
  const std::string base_csv = dir_ + "/base.csv";
  const std::string base_json = dir_ + "/base.json";
  const auto ref = run_cli({"campaign", spec_, "--quiet", "--threads", "2",
                            "--csv", base_csv, "--json", base_json},
                           0);
  ASSERT_FALSE(ref.signaled);
  ASSERT_EQ(ref.code, 0);
  const std::string want_csv = slurp(base_csv);
  const std::string want_json = slurp(base_json);
  ASSERT_FALSE(want_csv.empty());
  ASSERT_FALSE(want_json.empty());

  // Seeded "random" kill points: deterministic in CI, still spread over
  // genuinely different sweep phases. Some kills land before the first
  // checkpoint exists — resume must then be told to start fresh, which
  // the harness does exactly like a user would (no --resume).
  unsigned rng = 0x5eed;
  auto next_delay_us = [&rng] {
    rng = rng * 1664525u + 1013904223u;
    return 20'000u + rng % 180'000u;  // 20–200 ms into a ~350 ms sweep
  };

  int total_kills = 0;
  for (const char* threads : {"1", "4"}) {
    const std::string ckpt = dir_ + "/c.ckpt";
    const std::string out_csv = dir_ + "/out.csv";
    const std::string out_json = dir_ + "/out.json";
    std::remove(ckpt.c_str());

    // Kill it up to 4 times, then let the final attempt run to the end.
    int kills = 0;
    for (int attempt = 0; attempt < 4; ++attempt) {
      std::vector<std::string> args = {"campaign", spec_,      "--quiet",
                                       "--threads", threads,    "--csv",
                                       out_csv,     "--json",   out_json,
                                       "--checkpoint-every", "1"};
      if (file_exists(ckpt)) {
        args.insert(args.end(), {"--resume", ckpt});
      } else {
        args.insert(args.end(), {"--checkpoint", ckpt});
      }
      const auto r = run_cli(args, next_delay_us());
      if (r.signaled) {
        ++kills;
        continue;
      }
      ASSERT_EQ(r.code, 0) << "clean run failed (threads=" << threads << ")";
      break;  // finished before the kill fired — fine, just less chaos
    }
    std::vector<std::string> args = {"campaign", spec_,    "--quiet",
                                     "--threads", threads, "--csv",
                                     out_csv,     "--json", out_json};
    if (file_exists(ckpt)) args.insert(args.end(), {"--resume", ckpt});
    const auto final_run = run_cli(args, 0);
    ASSERT_FALSE(final_run.signaled);
    ASSERT_EQ(final_run.code, 0);

    EXPECT_EQ(slurp(out_csv), want_csv)
        << "threads=" << threads << " after " << kills << " kill(s)";
    EXPECT_EQ(slurp(out_json), want_json)
        << "threads=" << threads << " after " << kills << " kill(s)";
    total_kills += kills;
  }
  // The harness is worthless if every child finished before its kill
  // fired; the spec is sized an order of magnitude above the shortest
  // delay precisely so this cannot happen.
  EXPECT_GE(total_kills, 1) << "no SIGKILL landed mid-sweep; the spec is "
                               "too light for this machine";
}

TEST_F(ResumeKillTest, TornCheckpointRejectedBeforeAnyExecution) {
  // Produce a valid checkpoint, then truncate it.
  const std::string ckpt = dir_ + "/c.ckpt";
  const auto make = run_cli({"campaign", spec_, "--quiet", "--threads", "2",
                             "--checkpoint", ckpt},
                            0);
  ASSERT_FALSE(make.signaled);
  ASSERT_EQ(make.code, 0);
  const std::string good = slurp(ckpt);
  ASSERT_GT(good.size(), 64u);

  const std::string out_csv = dir_ + "/out.csv";
  for (const std::size_t keep : {good.size() / 3, good.size() - 2}) {
    {
      std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
      out << good.substr(0, keep);
    }
    std::remove(out_csv.c_str());
    const auto r = run_cli(
        {"campaign", spec_, "--quiet", "--resume", ckpt, "--csv", out_csv},
        0);
    ASSERT_FALSE(r.signaled);
    // Exit 2 (bad arguments), and no partial execution: the output file
    // must not even have been staged into existence.
    EXPECT_EQ(r.code, 2) << "truncated to " << keep << " bytes";
    EXPECT_FALSE(file_exists(out_csv));
  }

  // Checkpoint for a different spec (edited seed_base) — same contract.
  {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out << good;
  }
  std::string other = kSpecText;
  other.replace(other.find("20250807"), 8, "20250808");
  {
    std::ofstream out(spec_);
    out << other;
  }
  const auto r = run_cli(
      {"campaign", spec_, "--quiet", "--resume", ckpt, "--csv", out_csv}, 0);
  ASSERT_FALSE(r.signaled);
  EXPECT_EQ(r.code, 2);
  EXPECT_FALSE(file_exists(out_csv));
}

}  // namespace
