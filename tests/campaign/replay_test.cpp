// Deterministic-replay guarantee of the campaign engine: the same spec
// and seed base produce byte-identical aggregated CSV/JSON — across
// repeated invocations and across runner thread counts. This is the
// acceptance gate for `ssmwn campaign ... --threads N`.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "campaign/aggregate.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace ssmwn {
namespace {

// Small but exercises every stochastic subsystem: a 2x2 sweep with
// mobility, plus lossy links and churn.
constexpr const char* kSpecText = R"(
name         = replay
topology     = uniform
n            = 60
radius       = 0.14
variant      = basic, improved
mobility     = random-direction
speed_max    = 1.6, 10
tau          = 0.9
churn_down   = 0.05
steps        = 6
replications = 4
seed_base    = 424242
)";

struct Rendered {
  std::string csv;
  std::string json;
};

// Async grid points ride the same replay guarantee: the event-driven
// engine is single-threaded per run and deterministic from its seed, so
// a mixed sync/async sweep must also be byte-stable for any -threads.
constexpr const char* kAsyncSpecText = R"(
name         = replay-async
topology     = uniform
n            = 50
radius       = 0.15
variant      = basic
scheduler    = sync, async
link_delay   = 0.02, 0.15
tau          = 0.9
steps        = 12
replications = 3
seed_base    = 515151
)";

// Live (protocol-under-mobility) grid points are the acceptance shape
// of the dynamic-topology runtime: the protocol runs continuously on
// the event engine while mobility perturbs the graph, on both topology
// update modes. Must replay byte-identically for any --threads.
constexpr const char* kLiveSpecText = R"(
name            = replay-live
topology        = uniform
n               = 50
radius          = 0.16
variant         = basic
scheduler       = sync, async
mobility        = random-direction
speed_max       = 1.6, 10
protocol_live   = true
topology_update = incremental, rebuild
live_horizon    = 24
steps           = 4
replications    = 2
seed_base       = 616161
)";

// Verify (certification-trial) grid points ride the same guarantee:
// each run is one deterministic cross-engine trial, so a verify sweep
// must replay byte-identically for any --threads.
constexpr const char* kVerifySpecText = R"(
name          = replay-verify
topology      = uniform
n             = 30, 60
radius        = 0.16
variant       = basic
verify_faults = true
fault_class   = random-all, stale-cache
daemon        = synchronous, unfair
steps         = 240
replications  = 2
seed_base     = 717171
)";

Rendered render_campaign_text(const char* text, unsigned threads,
                              const campaign::ExecutionOptions& exec = {}) {
  const auto spec = campaign::parse_spec_text(text);
  const auto plan = campaign::expand(spec);
  campaign::CampaignRunner runner(threads, exec);
  const auto results = runner.run(plan);
  campaign::MetricsAggregator aggregator(plan.grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    aggregator.add(plan.runs[i].grid_index, results[i]);
  }
  const auto aggregates = aggregator.summarize();
  std::ostringstream csv, json;
  campaign::write_csv(csv, plan, aggregates);
  campaign::write_json(json, plan, aggregates);
  return {csv.str(), json.str()};
}

Rendered render_campaign(unsigned threads) {
  return render_campaign_text(kSpecText, threads);
}

TEST(CampaignReplay, SameSpecTwiceIsByteIdentical) {
  const auto first = render_campaign(1);
  const auto second = render_campaign(1);
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_EQ(first.json, second.json);
}

TEST(CampaignReplay, ThreadCountDoesNotChangeTheBytes) {
  const auto serial = render_campaign(1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto parallel = render_campaign(threads);
    EXPECT_EQ(serial.csv, parallel.csv) << "threads=" << threads;
    EXPECT_EQ(serial.json, parallel.json) << "threads=" << threads;
  }
}

TEST(CampaignReplay, PerRunMetricsMatchAcrossThreadCounts) {
  // Stronger than file equality: every individual run must agree, so a
  // future aggregation change cannot mask a runner nondeterminism.
  const auto spec = campaign::parse_spec_text(kSpecText);
  const auto plan = campaign::expand(spec);
  const auto serial = campaign::CampaignRunner(1).run(plan);
  const auto parallel = campaign::CampaignRunner(4).run(plan);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].stability, parallel[i].stability) << "run " << i;
    EXPECT_EQ(serial[i].delta, parallel[i].delta) << "run " << i;
    EXPECT_EQ(serial[i].reaffiliation, parallel[i].reaffiliation)
        << "run " << i;
    EXPECT_EQ(serial[i].cluster_count, parallel[i].cluster_count)
        << "run " << i;
    EXPECT_EQ(serial[i].windows, parallel[i].windows) << "run " << i;
  }
}

TEST(CampaignReplay, AsyncGridReplaysByteIdentically) {
  const auto serial = render_campaign_text(kAsyncSpecText, 1);
  const auto repeat = render_campaign_text(kAsyncSpecText, 1);
  EXPECT_EQ(serial.csv, repeat.csv);
  EXPECT_EQ(serial.json, repeat.json);
  for (const unsigned threads : {2u, 4u}) {
    const auto parallel = render_campaign_text(kAsyncSpecText, threads);
    EXPECT_EQ(serial.csv, parallel.csv) << "threads=" << threads;
    EXPECT_EQ(serial.json, parallel.json) << "threads=" << threads;
  }
  // Extended schema: the async columns and metric rows are present.
  EXPECT_NE(serial.csv.find(",scheduler,period_jitter,link_delay,"),
            std::string::npos);
  EXPECT_NE(serial.csv.find(",converge_time,"), std::string::npos);
  EXPECT_NE(serial.json.find("\"messages\""), std::string::npos);
}

TEST(CampaignReplay, LiveGridReplaysByteIdentically) {
  const auto serial = render_campaign_text(kLiveSpecText, 1);
  const auto repeat = render_campaign_text(kLiveSpecText, 1);
  EXPECT_EQ(serial.csv, repeat.csv);
  EXPECT_EQ(serial.json, repeat.json);
  for (const unsigned threads : {2u, 4u}) {
    const auto parallel = render_campaign_text(kLiveSpecText, threads);
    EXPECT_EQ(serial.csv, parallel.csv) << "threads=" << threads;
    EXPECT_EQ(serial.json, parallel.json) << "threads=" << threads;
  }
  // Live schema: the dynamic-topology columns and metric rows appear.
  EXPECT_NE(serial.csv.find(",protocol_live,topology_update,live_horizon,"),
            std::string::npos);
  EXPECT_NE(serial.csv.find(",reconverge_time,"), std::string::npos);
  EXPECT_NE(serial.json.find("\"reconverge_messages\""), std::string::npos);
  EXPECT_NE(serial.json.find("\"topology_update\": \"incremental\""),
            std::string::npos);
}

TEST(CampaignReplay, VerifyGridReplaysByteIdentically) {
  const auto serial = render_campaign_text(kVerifySpecText, 1);
  const auto repeat = render_campaign_text(kVerifySpecText, 1);
  EXPECT_EQ(serial.csv, repeat.csv);
  EXPECT_EQ(serial.json, repeat.json);
  for (const unsigned threads : {2u, 4u}) {
    const auto parallel = render_campaign_text(kVerifySpecText, threads);
    EXPECT_EQ(serial.csv, parallel.csv) << "threads=" << threads;
    EXPECT_EQ(serial.json, parallel.json) << "threads=" << threads;
  }
  // Verify schema: the certification columns and metric rows appear.
  EXPECT_NE(serial.csv.find(",verify_faults,fault_class,daemon,"),
            std::string::npos);
  EXPECT_NE(serial.csv.find(",sync_converge_steps,"), std::string::npos);
  EXPECT_NE(serial.json.find("\"sync_messages\""), std::string::npos);
  EXPECT_NE(serial.json.find("\"fault_class\": \"stale-cache\""),
            std::string::npos);
  EXPECT_NE(serial.json.find("\"daemon\": \"unfair\""), std::string::npos);
  // But never the live rows — a verify plan measures no perturbations.
  EXPECT_EQ(serial.csv.find("reconverge"), std::string::npos);
}

TEST(CampaignReplay, NonVerifyPlansKeepTheirSchemas) {
  // Sync-only, async, and live plans must not grow verify columns or
  // metric rows — all pre-existing campaign outputs stay byte-identical
  // across the release that introduced the certification axis.
  const auto sync_only = render_campaign(1);
  EXPECT_EQ(sync_only.csv.find("verify_faults"), std::string::npos);
  EXPECT_EQ(sync_only.csv.find("sync_converge_steps"), std::string::npos);
  const auto async_plan = render_campaign_text(kAsyncSpecText, 1);
  EXPECT_EQ(async_plan.csv.find("verify_faults"), std::string::npos);
  EXPECT_EQ(async_plan.json.find("fault_class"), std::string::npos);
  const auto live_plan = render_campaign_text(kLiveSpecText, 1);
  EXPECT_EQ(live_plan.csv.find("verify_faults"), std::string::npos);
  EXPECT_EQ(live_plan.csv.find("sync_converge_steps"), std::string::npos);
  EXPECT_EQ(live_plan.json.find("daemon"), std::string::npos);
  const auto plan =
      campaign::expand(campaign::parse_spec_text(kLiveSpecText));
  EXPECT_FALSE(campaign::plan_uses_verify(plan));
  EXPECT_EQ(campaign::report_metric_count(plan), campaign::kLiveMetricCount);
}

TEST(CampaignReplay, CanonicalStringsAreStableAcrossTheVerifyRelease) {
  // The exact pre-verify canonical serialization of a default grid
  // point, pinned byte for byte: run seeds hash this string, so any
  // drift silently reshuffles every pre-existing campaign.
  campaign::ScenarioConfig config;
  EXPECT_EQ(campaign::canonical_config(config),
            "topology=uniform;n=300;radius=0.08;variant=basic;"
            "mobility=none;speed_min=0;speed_max=1.6;tau=1;churn_down=0;"
            "churn_up=0.5;steps=50;window_s=2;world_m=1000");
  // A verify point appends — never reorders — the new axis.
  config.verify_faults = true;
  config.fault_class = verify::FaultClass::kPartialFrame;
  config.daemon = verify::Daemon::kUnfair;
  EXPECT_EQ(campaign::canonical_config(config),
            "topology=uniform;n=300;radius=0.08;variant=basic;"
            "mobility=none;speed_min=0;speed_max=1.6;tau=1;churn_down=0;"
            "churn_up=0.5;steps=50;window_s=2;world_m=1000;"
            "verify_faults=true;fault_class=partial-frame;daemon=unfair");
}

TEST(CampaignReplay, NonLivePlansKeepTheirSchemas) {
  // Neither the sync-only nor the async schema grows live columns or
  // metric rows — pre-existing outputs stay byte-comparable.
  const auto sync_only = render_campaign(1);
  EXPECT_EQ(sync_only.csv.find("protocol_live"), std::string::npos);
  EXPECT_EQ(sync_only.csv.find("reconverge"), std::string::npos);
  const auto async_plan = render_campaign_text(kAsyncSpecText, 1);
  EXPECT_EQ(async_plan.csv.find("protocol_live"), std::string::npos);
  EXPECT_EQ(async_plan.csv.find("reconverge"), std::string::npos);
  EXPECT_EQ(async_plan.json.find("reconverge"), std::string::npos);
  const auto plan =
      campaign::expand(campaign::parse_spec_text(kAsyncSpecText));
  EXPECT_FALSE(campaign::plan_uses_live(plan));
  EXPECT_EQ(campaign::report_metric_count(plan), campaign::kAsyncMetricCount);
}

TEST(CampaignReplay, SyncOnlyPlansKeepTheLegacySchema) {
  // A purely synchronous campaign must not grow columns or metric rows
  // from the async axis — pre-existing outputs stay byte-comparable.
  const auto rendered = render_campaign(1);
  EXPECT_EQ(rendered.csv.find("scheduler"), std::string::npos);
  EXPECT_EQ(rendered.csv.find("converge_time"), std::string::npos);
  EXPECT_EQ(rendered.json.find("converge_time"), std::string::npos);
  const auto plan =
      campaign::expand(campaign::parse_spec_text(kSpecText));
  EXPECT_FALSE(campaign::plan_uses_async(plan));
  EXPECT_EQ(campaign::report_metric_count(plan), campaign::kSyncMetricCount);
}

// The quiescence axis, swept over both engines under mobility. tau=1:
// expand() rejects dirty stepping on a lossy synchronous engine.
constexpr const char* kDirtySpecText = R"(
name            = replay-dirty
topology        = uniform
n               = 40
radius          = 0.16
variant         = basic
scheduler       = sync, async
mobility        = random-direction
speed_max       = 10
protocol_live   = true
topology_update = incremental, rebuild
live_horizon    = 16
stepping        = full, dirty
steps           = 3
replications    = 2
seed_base       = 818181
)";

TEST(CampaignReplay, DirtyGridReplaysByteIdentically) {
  const auto serial = render_campaign_text(kDirtySpecText, 1);
  const auto repeat = render_campaign_text(kDirtySpecText, 1);
  EXPECT_EQ(serial.csv, repeat.csv);
  EXPECT_EQ(serial.json, repeat.json);
  for (const unsigned threads : {2u, 4u}) {
    const auto parallel = render_campaign_text(kDirtySpecText, threads);
    EXPECT_EQ(serial.csv, parallel.csv) << "threads=" << threads;
    EXPECT_EQ(serial.json, parallel.json) << "threads=" << threads;
  }
  // Dirty schema: the stepping column/key appears, with both values.
  EXPECT_NE(serial.csv.find(",stepping,"), std::string::npos);
  EXPECT_NE(serial.json.find("\"stepping\": \"dirty\""), std::string::npos);
  EXPECT_NE(serial.json.find("\"stepping\": \"full\""), std::string::npos);
}

TEST(CampaignReplay, DirtySteppingLeavesRunMetricsIdentical) {
  // The axis sweeps cost, not results: force the dirty plan's run seeds
  // to the full plan's and every run-level metric must agree — exactly
  // on the async engine, and on everything but the message counters on
  // the sync engine (dirty mode counts deliveries only for the nodes it
  // actually steps; the trajectory itself is bitwise-equal, which the
  // sim-level equivalence suite asserts per tick).
  auto strip = [](const char* text, const char* value) {
    std::string spec(text);
    const auto pos = spec.find("stepping        = full, dirty");
    spec.replace(pos, std::string("stepping        = full, dirty").size(),
                 std::string("stepping        = ") + value);
    return campaign::expand(campaign::parse_spec_text(spec));
  };
  auto full_plan = strip(kDirtySpecText, "full");
  auto dirty_plan = strip(kDirtySpecText, "dirty");
  ASSERT_EQ(full_plan.runs.size(), dirty_plan.runs.size());
  for (std::size_t i = 0; i < dirty_plan.runs.size(); ++i) {
    ASSERT_EQ(full_plan.runs[i].grid_index, dirty_plan.runs[i].grid_index);
    dirty_plan.runs[i].seed = full_plan.runs[i].seed;
  }
  const auto full = campaign::CampaignRunner(2).run(full_plan);
  const auto dirty = campaign::CampaignRunner(2).run(dirty_plan);
  ASSERT_EQ(full.size(), dirty.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    const auto& config = full_plan.grid[full_plan.runs[i].grid_index].config;
    EXPECT_EQ(full[i].stability, dirty[i].stability) << "run " << i;
    EXPECT_EQ(full[i].cluster_count, dirty[i].cluster_count) << "run " << i;
    EXPECT_EQ(full[i].converge_time, dirty[i].converge_time) << "run " << i;
    EXPECT_EQ(full[i].reconverge_time, dirty[i].reconverge_time)
        << "run " << i;
    EXPECT_EQ(full[i].windows, dirty[i].windows) << "run " << i;
    if (config.scheduler == campaign::SchedulerKind::kAsync) {
      EXPECT_EQ(full[i].messages, dirty[i].messages) << "run " << i;
      EXPECT_EQ(full[i].reconverge_messages, dirty[i].reconverge_messages)
          << "run " << i;
    }
  }
}

TEST(CampaignReplay, NonDirtyPlansKeepTheirSchemas) {
  // No pre-existing spec mentions stepping, so none may grow the column
  // — their CSV/JSON stay byte-identical across the quiescence release.
  for (const char* text :
       {kSpecText, kAsyncSpecText, kLiveSpecText, kVerifySpecText}) {
    const auto rendered = render_campaign_text(text, 1);
    EXPECT_EQ(rendered.csv.find("stepping"), std::string::npos);
    EXPECT_EQ(rendered.json.find("stepping"), std::string::npos);
    EXPECT_FALSE(campaign::plan_uses_dirty(
        campaign::expand(campaign::parse_spec_text(text))));
  }
}

TEST(CampaignReplay, ShardCountDoesNotChangeTheBytes) {
  // `--shards` is an execution knob like `--threads`, never a spec axis:
  // it must not enter canonical strings or run seeds, and the sharded
  // engine is bit-identical to sim::Network, so every campaign output is
  // byte-identical at any shard count. Sweep the live plans — the only
  // paths that step a synchronous engine — plus the dirty-stepping plan
  // to cover the sharded quiescence path, at shard counts that exercise
  // one-shard fallback, small, prime, and shards > nodes.
  for (const char* text : {kLiveSpecText, kDirtySpecText}) {
    const auto unsharded = render_campaign_text(text, 1);
    for (const std::size_t shards : {std::size_t{2}, std::size_t{7},
                                     std::size_t{64}}) {
      campaign::ExecutionOptions exec;
      exec.shards = shards;
      const auto sharded = render_campaign_text(text, 1, exec);
      EXPECT_EQ(unsharded.csv, sharded.csv) << "shards=" << shards;
      EXPECT_EQ(unsharded.json, sharded.json) << "shards=" << shards;
      // Sharding composes with the threaded runner.
      const auto pooled = render_campaign_text(text, 2, exec);
      EXPECT_EQ(unsharded.csv, pooled.csv) << "shards=" << shards;
      EXPECT_EQ(unsharded.json, pooled.json) << "shards=" << shards;
    }
  }
  // Non-live plans never touch the sync engine; the knob is inert.
  campaign::ExecutionOptions exec;
  exec.shards = 7;
  const auto classic = render_campaign_text(kSpecText, 1);
  const auto classic_sharded = render_campaign_text(kSpecText, 1, exec);
  EXPECT_EQ(classic.csv, classic_sharded.csv);
  EXPECT_EQ(classic.json, classic_sharded.json);
}

TEST(CampaignReplay, ReportsAreWellFormed) {
  const auto rendered = render_campaign(2);
  // CSV: header + 4 scenarios x (sync metric) rows.
  std::size_t lines = 0;
  for (const char c : rendered.csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u + 4u * campaign::kSyncMetricCount);
  EXPECT_EQ(rendered.csv.rfind("campaign,topology,n,radius,", 0), 0u);
  // JSON: crude structural checks (balanced braces, expected keys).
  std::ptrdiff_t depth = 0;
  for (const char c : rendered.json) {
    depth += c == '{';
    depth -= c == '}';
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(rendered.json.find("\"campaign\": \"replay\""), std::string::npos);
  EXPECT_NE(rendered.json.find("\"stability\""), std::string::npos);
}

}  // namespace
}  // namespace ssmwn
