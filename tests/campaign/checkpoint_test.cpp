// Checkpoint layer: exact round-trips, hostile-file rejection, and the
// resume-equivalence guarantee — a campaign resumed from any partial
// checkpoint produces results byte-identical to an uninterrupted run,
// at any thread count. (The out-of-process half of the story — real
// SIGKILLs against the CLI — lives in resume_kill_test.cpp.)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace ssmwn {
namespace {

constexpr const char* kSpecText = R"(
name         = ckpt
topology     = uniform
n            = 50
radius       = 0.14
variant      = basic, improved
mobility     = random-direction
speed_max    = 1.6
tau          = 0.9
steps        = 5
replications = 3
seed_base    = 777
)";

campaign::CampaignPlan make_plan(const char* text = kSpecText) {
  return campaign::expand(campaign::parse_spec_text(text));
}

/// Unique-ish temp path per test; tests clean up behind themselves.
std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "ssmwn_ckpt_" + tag + ".ckpt";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST(CheckpointFingerprint, SensitiveToIdentityNotExecution) {
  const auto base = campaign::plan_fingerprint(make_plan());

  // Same text parses to the same fingerprint.
  EXPECT_EQ(base, campaign::plan_fingerprint(make_plan()));

  // Every identity axis moves it: seed base, replications, grid values,
  // campaign name.
  for (const auto& [from, to] :
       {std::pair{"seed_base    = 777", "seed_base    = 778"},
        std::pair{"replications = 3", "replications = 4"},
        std::pair{"radius       = 0.14", "radius       = 0.15"},
        std::pair{"name         = ckpt", "name         = ckpt2"}}) {
    std::string text = kSpecText;
    const auto pos = text.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    text.replace(pos, std::string(from).size(), to);
    EXPECT_NE(base, campaign::plan_fingerprint(make_plan(text.c_str())))
        << "edit did not change the fingerprint: " << to;
  }
}

TEST(CheckpointRoundTrip, BitExactMetrics) {
  const auto plan = make_plan();
  campaign::CheckpointState state;
  state.completed.assign(plan.runs.size(), 0);
  state.results.assign(plan.runs.size(), campaign::RunMetrics{});
  // Values chosen to break any decimal round-trip: long irrational-ish
  // fractions, denormals, huge magnitudes, negative zero.
  campaign::RunMetrics gnarly;
  gnarly.stability = 0.1 + 0.2;  // the canonical 0.30000000000000004
  gnarly.delta = 5e-324;         // min denormal
  gnarly.reaffiliation = -0.0;
  gnarly.cluster_count = 1.0 / 3.0;
  gnarly.converge_time = 1.7976931348623157e308;
  gnarly.messages = 16777217.0;  // above float precision
  gnarly.reconverge_time = 2.2250738585072014e-308;
  gnarly.reconverge_messages = 123456789.987654321;
  gnarly.sync_steps = 1e-9;
  gnarly.sync_messages = 987654321.123456789;
  gnarly.windows = 41;
  state.completed[0] = 1;
  state.results[0] = gnarly;
  state.completed[plan.runs.size() - 1] = 1;
  state.results[plan.runs.size() - 1] = campaign::RunMetrics{};

  const auto path = temp_path("roundtrip");
  campaign::write_checkpoint(path, plan, state);
  const auto loaded = campaign::load_checkpoint(path, plan);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.completed, state.completed);
  ASSERT_EQ(loaded.completed_count(), 2u);
  const auto& m = loaded.results[0];
  // Bitwise equality, not EXPECT_DOUBLE_EQ: the contract is exact bits.
  EXPECT_EQ(std::memcmp(&m, &gnarly, sizeof(gnarly)), 0);
}

TEST(CheckpointRejection, HostileFiles) {
  const auto plan = make_plan();
  campaign::CheckpointState state;
  state.completed.assign(plan.runs.size(), 0);
  state.results.assign(plan.runs.size(), campaign::RunMetrics{});
  state.completed[1] = 1;
  const auto path = temp_path("hostile");
  campaign::write_checkpoint(path, plan, state);
  const std::string good = slurp(path);
  ASSERT_FALSE(good.empty());

  // Missing file.
  EXPECT_THROW((void)campaign::load_checkpoint(path + ".nope", plan),
               campaign::CheckpointError);

  // Truncations at every prefix length must throw, never crash and
  // never return partial state (short read → no partial execution).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, good.size() / 4, good.size() / 2,
        good.size() - 1}) {
    spit(path, good.substr(0, keep));
    EXPECT_THROW((void)campaign::load_checkpoint(path, plan),
                 campaign::CheckpointError)
        << "accepted a " << keep << "-byte truncation";
  }

  // One flipped byte in the body fails the checksum.
  std::string corrupt = good;
  corrupt[good.find("run ") + 4] ^= 1;
  spit(path, corrupt);
  EXPECT_THROW((void)campaign::load_checkpoint(path, plan),
               campaign::CheckpointError);

  // Wrong magic.
  spit(path, "ssmwn-checkpoint v9\n" + good.substr(good.find('\n') + 1));
  EXPECT_THROW((void)campaign::load_checkpoint(path, plan),
               campaign::CheckpointError);

  // A checkpoint from a different campaign is refused (spec hash).
  std::string other_text = kSpecText;
  other_text.replace(other_text.find("777"), 3, "778");
  const auto other_plan = make_plan(other_text.c_str());
  spit(path, good);
  EXPECT_THROW((void)campaign::load_checkpoint(path, other_plan),
               campaign::CheckpointError);

  // CheckpointError maps to the bad-arguments exit: it must be an
  // invalid_argument, or the CLI would report exit 1 instead of 2.
  try {
    (void)campaign::load_checkpoint(path, other_plan);
    FAIL() << "expected CheckpointError";
  } catch (const std::invalid_argument&) {
  }
  std::remove(path.c_str());
}

/// Renders the aggregated CSV+JSON exactly as the CLI does.
std::string render(const campaign::CampaignPlan& plan,
                   const std::vector<campaign::RunMetrics>& results) {
  campaign::MetricsAggregator aggregator(plan.grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    aggregator.add(plan.runs[i].grid_index, results[i]);
  }
  const auto aggregates = aggregator.summarize();
  std::ostringstream csv, json;
  campaign::write_csv(csv, plan, aggregates);
  campaign::write_json(json, plan, aggregates);
  return csv.str() + "\x1f" + json.str();
}

TEST(CheckpointResume, ByteIdenticalFromAnyPrefixAtAnyThreads) {
  const auto plan = make_plan();
  campaign::CampaignRunner baseline_runner(1);
  const auto baseline = baseline_runner.run(plan);
  const auto expected = render(plan, baseline);

  // Simulate interruptions of different depths: a checkpoint holding
  // the first k completed slots (and a scattered variant), resumed on 1
  // and 4 threads — all must reproduce the uninterrupted bytes.
  const auto path = temp_path("resume");
  for (const std::size_t k :
       {std::size_t{0}, std::size_t{1}, plan.runs.size() / 2,
        plan.runs.size()}) {
    campaign::CheckpointState partial;
    partial.completed.assign(plan.runs.size(), 0);
    partial.results.assign(plan.runs.size(), campaign::RunMetrics{});
    for (std::size_t i = 0; i < k; ++i) {
      partial.completed[i] = 1;
      partial.results[i] = baseline[i];
    }
    // Scatter: every third slot instead of a prefix (parallel sweeps
    // die with holes, not clean prefixes).
    campaign::CheckpointState scattered = partial;
    for (std::size_t i = 0; i < plan.runs.size(); i += 3) {
      scattered.completed[i] = 1;
      scattered.results[i] = baseline[i];
    }
    for (const auto* state : {&partial, &scattered}) {
      campaign::write_checkpoint(path, plan, *state);
      const auto reloaded = campaign::load_checkpoint(path, plan);
      for (const unsigned threads : {1u, 4u}) {
        campaign::CampaignRunner runner(threads);
        const auto resumed =
            runner.run(plan, campaign::CheckpointOptions{}, &reloaded);
        EXPECT_EQ(render(plan, resumed), expected)
            << "k=" << k << " threads=" << threads;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointResume, RunnerPublishesLoadableSnapshots) {
  const auto plan = make_plan();
  const auto path = temp_path("publish");
  campaign::CheckpointOptions ckpt;
  ckpt.path = path;
  ckpt.every_runs = 2;  // force several mid-run snapshots
  for (const unsigned threads : {1u, 4u}) {
    campaign::CampaignRunner runner(threads);
    const auto results = runner.run(plan, ckpt, nullptr);
    // The final snapshot must be complete and must replay the exact
    // result vector.
    const auto final_state = campaign::load_checkpoint(path, plan);
    EXPECT_EQ(final_state.completed_count(), plan.runs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(std::memcmp(&final_state.results[i], &results[i],
                            sizeof(results[i])),
                0)
          << "slot " << i << " threads=" << threads;
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace ssmwn
