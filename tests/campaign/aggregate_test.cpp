// MetricsAggregator and the util::stats functions it builds on, checked
// against hand-computed fixtures (including single-sample and skewed
// distributions, where naive implementations drift).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "campaign/aggregate.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

campaign::RunMetrics stability_only(double value) {
  campaign::RunMetrics m;
  m.stability = value;
  return m;
}

TEST(MetricsAggregator, HandComputedFixture) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: the classic stddev teaching set.
  //   mean = 5, sample variance = 32/7, p50 = 4.5, p95 = 8.3.
  campaign::MetricsAggregator aggregator(1);
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    aggregator.add(0, stability_only(x));
  }
  const auto aggregates = aggregator.summarize();
  ASSERT_EQ(aggregates.size(), 1u);
  const auto& s = aggregates[0].stability();
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(32.0 / 7.0));
  // percentile uses linear interpolation on the sorted sample:
  // p50 sits midway between the 4th and 5th order statistics (4 and 5);
  // p95 at position 0.95*7 = 6.65, between 7 and 9.
  EXPECT_DOUBLE_EQ(s.p50, 4.5);
  EXPECT_DOUBLE_EQ(s.p95, 7.0 + 0.65 * 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(MetricsAggregator, SingleSample) {
  campaign::MetricsAggregator aggregator(1);
  aggregator.add(0, stability_only(42.0));
  const auto aggregates = aggregator.summarize();
  const auto& s = aggregates[0].stability();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);  // undefined variance reports 0, not NaN
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p95, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(MetricsAggregator, SkewedDistribution) {
  // {1, 1, 1, 1, 100}: one outlier dominates mean and p95 but not p50.
  campaign::MetricsAggregator aggregator(1);
  for (const double x : {1.0, 1.0, 1.0, 1.0, 100.0}) {
    aggregator.add(0, stability_only(x));
  }
  const auto aggregates = aggregator.summarize();
  const auto& s = aggregates[0].stability();
  EXPECT_DOUBLE_EQ(s.mean, 20.8);
  // Sample variance: (4*19.8^2 + 79.2^2) / 4 = 1960.2.
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(1960.2));
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  // p95 position 0.95*4 = 3.8: 0.2 of the way is still 1, 0.8 toward 100.
  EXPECT_DOUBLE_EQ(s.p95, 1.0 + 0.8 * 99.0);
}

TEST(MetricsAggregator, EmptyGridPointReportsZeros) {
  campaign::MetricsAggregator aggregator(2);
  aggregator.add(1, stability_only(3.0));
  const auto aggregates = aggregator.summarize();
  EXPECT_EQ(aggregates[0].stability().count, 0u);
  EXPECT_DOUBLE_EQ(aggregates[0].stability().mean, 0.0);
  EXPECT_DOUBLE_EQ(aggregates[0].stability().p95, 0.0);
  EXPECT_EQ(aggregates[1].stability().count, 1u);
}

TEST(MetricsAggregator, MetricsLandInTheirOwnColumns) {
  campaign::MetricsAggregator aggregator(1);
  campaign::RunMetrics m;
  m.stability = 0.25;
  m.delta = 0.5;
  m.reaffiliation = 0.75;
  m.cluster_count = 12.0;
  aggregator.add(0, m);
  const auto aggregates = aggregator.summarize();
  const auto& a = aggregates[0];
  EXPECT_DOUBLE_EQ(a.stability().mean, 0.25);
  EXPECT_DOUBLE_EQ(a.delta().mean, 0.5);
  EXPECT_DOUBLE_EQ(a.reaffiliation().mean, 0.75);
  EXPECT_DOUBLE_EQ(a.cluster_count().mean, 12.0);
}

TEST(MetricsAggregator, OutOfRangeGridIndexThrows) {
  campaign::MetricsAggregator aggregator(1);
  EXPECT_THROW(aggregator.add(1, stability_only(0.0)), std::out_of_range);
}

// --- the util::stats substrate -------------------------------------------

TEST(UtilStats, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(util::percentile({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(util::percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(util::percentile(one, 1.0), 7.0);
  const std::vector<double> pair{1.0, 3.0};
  EXPECT_DOUBLE_EQ(util::percentile(pair, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(util::percentile(pair, 1.0), 3.0);
  // Out-of-range quantiles clamp instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(util::percentile(pair, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(pair, 1.5), 3.0);
  // Unsorted input is sorted internally.
  const std::vector<double> unsorted{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(util::percentile(unsorted, 0.5), 5.0);
}

TEST(UtilStats, RunningStatsMergeMatchesSingleStream) {
  util::RunningStats whole, left, right;
  const std::vector<double> sample{0.1, 2.5, -3.0, 7.75, 100.0, 0.0, 1.0};
  for (std::size_t i = 0; i < sample.size(); ++i) {
    whole.add(sample[i]);
    (i < 3 ? left : right).add(sample[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

}  // namespace
}  // namespace ssmwn
