// Tests for the clustering diff and the locality of topology damage.
#include "metrics/delta.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

TEST(Delta, IdenticalClusteringsHaveZeroDelta) {
  util::Rng rng(1);
  const auto pts = topology::uniform_points(150, rng);
  const auto g = topology::unit_disk_graph(pts, 0.1);
  const auto ids = topology::random_ids(g.node_count(), rng);
  const auto r = core::cluster_density(g, ids, {});
  const auto delta = metrics::diff_clusterings(r, r);
  EXPECT_EQ(delta.role_changes, 0u);
  EXPECT_EQ(delta.membership_changes, 0u);
  EXPECT_EQ(delta.parent_changes, 0u);
  EXPECT_EQ(delta.heads_kept, r.cluster_count());
  EXPECT_DOUBLE_EQ(delta.membership_stability(), 1.0);
}

TEST(Delta, CountsEveryKindOfChange) {
  core::ClusteringResult a;
  a.parent = {0, 0, 2, 2};
  a.head_index = {0, 0, 2, 2};
  a.head_id = {10, 10, 12, 12};
  a.is_head = {1, 0, 1, 0};
  a.heads = {0, 2};

  core::ClusteringResult b;       // node 2's cluster absorbed into 0's
  b.parent = {0, 0, 1, 2};
  b.head_index = {0, 0, 0, 0};
  b.head_id = {10, 10, 10, 10};
  b.is_head = {1, 0, 0, 0};
  b.heads = {0};

  const auto delta = metrics::diff_clusterings(a, b);
  EXPECT_EQ(delta.node_count, 4u);
  EXPECT_EQ(delta.role_changes, 1u);        // node 2 lost headship
  EXPECT_EQ(delta.membership_changes, 2u);  // nodes 2, 3 moved
  EXPECT_EQ(delta.parent_changes, 1u);      // node 2 re-parented
  EXPECT_EQ(delta.heads_kept, 1u);
  EXPECT_EQ(delta.heads_before, 2u);
  EXPECT_EQ(delta.heads_after, 1u);
  EXPECT_DOUBLE_EQ(delta.membership_stability(), 0.5);
}

TEST(Delta, MismatchThrows) {
  core::ClusteringResult a;
  a.parent = {0};
  core::ClusteringResult b;
  EXPECT_THROW((void)metrics::diff_clusterings(a, b), std::invalid_argument);
}

TEST(Delta, SmallTopologyChangesCauseSmallDeltas) {
  // The robustness framing: nudging one node re-clusters only a small
  // fraction of a 400-node network, on average.
  util::Rng rng(2);
  util::RunningStats stability;
  for (int trial = 0; trial < 20; ++trial) {
    auto pts = topology::uniform_points(400, rng);
    const auto ids = topology::random_ids(pts.size(), rng);
    const auto g1 = topology::unit_disk_graph(pts, 0.08);
    const auto before = core::cluster_density(g1, ids, {});
    const std::size_t victim = rng.index(pts.size());
    pts[victim] = topology::Point{rng.uniform(), rng.uniform()};
    const auto g2 = topology::unit_disk_graph(pts, 0.08);
    const auto after = core::cluster_density(g2, ids, {});
    stability.add(
        metrics::diff_clusterings(before, after).membership_stability());
  }
  EXPECT_GT(stability.mean(), 0.8);
}

}  // namespace
}  // namespace ssmwn
