// Unit tests for the evaluation metrics: cluster census, eccentricity,
// tree depth, head separation, grid rendering, and churn tracking.
#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "metrics/cluster_metrics.hpp"
#include "metrics/stability.hpp"
#include "support/paper_example.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

using namespace testsupport;

TEST(ClusterMetrics, PaperExampleStats) {
  const auto g = paper_example_graph();
  const auto r = core::cluster_density(g, paper_example_ids(), {});
  const auto stats = metrics::analyze(g, r);
  EXPECT_EQ(stats.cluster_count, 2u);
  // Cluster of h = {h, b, c, i, e}: distances from h are 1 (b, i) and 2
  // (c, e) -> eccentricity 2, tree depth 2 (c and e at depth 2).
  // Cluster of j = {j, f, d, a}: f and d at 1, a at 2 -> both 2.
  EXPECT_DOUBLE_EQ(stats.mean_head_eccentricity, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_tree_depth, 2.0);
  EXPECT_EQ(stats.max_tree_depth, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_cluster_size, 4.5);
  EXPECT_EQ(stats.largest_cluster, 5u);
  // h..j hop distance: h-b-d-j = 3.
  EXPECT_EQ(stats.min_head_separation, 3u);
}

TEST(ClusterMetrics, EccentricityIsWithinInducedSubgraph) {
  // Path 0-1-2-3-4 with cluster {0,1} | {2,3,4}: head of {2,3,4} at node
  // 2 has in-cluster eccentricity 2 even though graph paths through 1
  // don't exist for it.
  graph::Graph g(5);
  for (graph::NodeId p = 0; p + 1 < 5; ++p) g.add_edge(p, p + 1);
  g.finalize();
  core::ClusteringResult r;
  r.parent = {0, 0, 2, 2, 3};
  r.head_index = {0, 0, 2, 2, 2};
  r.head_id = {0, 0, 2, 2, 2};
  r.is_head = {1, 0, 1, 0, 0};
  r.heads = {0, 2};
  r.metric.assign(5, 0.0);
  const auto stats = metrics::analyze(g, r);
  EXPECT_EQ(stats.cluster_count, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_head_eccentricity, (1.0 + 2.0) / 2.0);
}

TEST(ClusterMetrics, SingleClusterSeparationIsZero) {
  const auto g = graph::from_edges(2, {{0, 1}});
  const auto r = core::cluster_density(g, {1, 2}, {});
  const auto stats = metrics::analyze(g, r);
  EXPECT_EQ(stats.cluster_count, 1u);
  EXPECT_EQ(stats.min_head_separation, 0u);
}

TEST(ClusterMetrics, FusionSeparationAtLeastThree) {
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(400, rng);
    const auto g = topology::unit_disk_graph(pts, 0.06);
    const auto ids = topology::random_ids(g.node_count(), rng);
    core::ClusterOptions opt;
    opt.fusion = true;
    const auto r = core::cluster_density(g, ids, opt);
    const auto stats = metrics::analyze(g, r);
    if (stats.cluster_count >= 2 && stats.min_head_separation > 0) {
      EXPECT_GE(stats.min_head_separation, 3u);
    }
  }
}

TEST(ClusterMetrics, GridRenderShape) {
  const auto pts = topology::grid_points(8);
  const auto g = topology::unit_disk_graph(pts, 0.2);
  const auto r =
      core::cluster_density(g, topology::sequential_ids(64), {});
  const auto art = metrics::render_grid_clusters(8, r);
  // 8 rows of 8 letters plus newlines.
  EXPECT_EQ(art.size(), 8u * 9u);
  // Exactly one uppercase letter per cluster head.
  std::size_t heads = 0;
  for (char c : art) {
    if (c >= 'A' && c <= 'Z') ++heads;
  }
  EXPECT_EQ(heads, r.cluster_count());
}

TEST(Stability, ReelectionRatioBasics) {
  const std::vector<char> prev{1, 0, 1, 0, 1};
  const std::vector<char> same{1, 0, 1, 0, 1};
  const std::vector<char> lost_one{1, 0, 0, 0, 1};
  const std::vector<char> none{0, 0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(metrics::reelection_ratio(prev, same), 1.0);
  EXPECT_DOUBLE_EQ(metrics::reelection_ratio(prev, lost_one), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(metrics::reelection_ratio(prev, none), 0.0);
  // New heads appearing do not count against the ratio.
  const std::vector<char> extra{1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(metrics::reelection_ratio(prev, extra), 1.0);
  // Degenerate: no previous heads -> nothing lost.
  EXPECT_DOUBLE_EQ(metrics::reelection_ratio(none, prev), 1.0);
}

TEST(Stability, ChurnTrackerAveragesWindows) {
  metrics::ChurnTracker tracker;
  const std::vector<char> a{1, 1, 0, 0};
  const std::vector<char> b{1, 0, 0, 0};  // keeps 1 of 2
  const std::vector<char> c{1, 0, 0, 0};  // keeps 1 of 1
  tracker.observe(a);
  EXPECT_EQ(tracker.windows(), 0u);
  tracker.observe(b);
  tracker.observe(c);
  EXPECT_EQ(tracker.windows(), 2u);
  EXPECT_DOUBLE_EQ(tracker.ratios().mean(), (0.5 + 1.0) / 2.0);
}

TEST(Stability, StationaryNetworkHasPerfectReelection) {
  util::Rng rng(2);
  const auto pts = topology::uniform_points(200, rng);
  const auto g = topology::unit_disk_graph(pts, 0.1);
  const auto ids = topology::random_ids(g.node_count(), rng);
  metrics::ChurnTracker tracker;
  for (int window = 0; window < 5; ++window) {
    const auto r = core::cluster_density(g, ids, {});
    tracker.observe(
        std::span<const char>(r.is_head.data(), r.is_head.size()));
  }
  EXPECT_DOUBLE_EQ(tracker.ratios().mean(), 1.0);
}

}  // namespace
}  // namespace ssmwn
