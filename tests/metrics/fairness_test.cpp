// Tests for the Jain cluster-size fairness index.
#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "metrics/cluster_metrics.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

core::ClusteringResult fake_clustering(std::vector<graph::NodeId> head_index,
                                       std::vector<graph::NodeId> heads) {
  core::ClusteringResult r;
  const std::size_t n = head_index.size();
  r.head_index = std::move(head_index);
  r.heads = std::move(heads);
  r.parent.resize(n);
  r.is_head.assign(n, 0);
  for (graph::NodeId p = 0; p < n; ++p) r.parent[p] = r.head_index[p];
  for (graph::NodeId h : r.heads) {
    r.parent[h] = h;
    r.is_head[h] = 1;
  }
  return r;
}

TEST(Fairness, EqualSizedClustersGiveOne) {
  // Two clusters of 3: {0,1,2} headed by 0, {3,4,5} headed by 3.
  const auto r = fake_clustering({0, 0, 0, 3, 3, 3}, {0, 3});
  EXPECT_DOUBLE_EQ(metrics::cluster_size_fairness(r), 1.0);
}

TEST(Fairness, SkewedClustersScoreLower) {
  // Sizes 5 and 1: J = 36 / (2 * 26) = 0.6923...
  const auto r = fake_clustering({0, 0, 0, 0, 0, 5}, {0, 5});
  EXPECT_NEAR(metrics::cluster_size_fairness(r), 36.0 / 52.0, 1e-12);
}

TEST(Fairness, SingleClusterIsTriviallyFair) {
  const auto r = fake_clustering({0, 0, 0}, {0});
  EXPECT_DOUBLE_EQ(metrics::cluster_size_fairness(r), 1.0);
}

TEST(Fairness, EmptyClusteringIsFairByConvention) {
  core::ClusteringResult r;
  EXPECT_DOUBLE_EQ(metrics::cluster_size_fairness(r), 1.0);
}

TEST(Fairness, RealClusteringsLandInUnitInterval) {
  util::Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = topology::uniform_points(300, rng);
    const auto g = topology::unit_disk_graph(pts, 0.08);
    const auto ids = topology::random_ids(g.node_count(), rng);
    const auto r = core::cluster_density(g, ids, {});
    const double j = metrics::cluster_size_fairness(r);
    EXPECT_GT(j, 0.0);
    EXPECT_LE(j, 1.0);
  }
}

}  // namespace
}  // namespace ssmwn
