// Unit tests for the mobility models: boundary containment, speed
// fidelity, and distributional sanity.
#include "mobility/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ssmwn {
namespace {

TEST(Mobility, StationaryDoesNotMove) {
  util::Rng rng(1);
  auto pts = topology::uniform_points(50, rng);
  const auto before = pts;
  mobility::Stationary model;
  model.step(pts, 10.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i], before[i]);
  }
}

TEST(Mobility, RandomDirectionStaysInUnitSquare) {
  util::Rng rng(2);
  auto pts = topology::uniform_points(100, rng);
  mobility::RandomDirection model(pts.size(), {0.0, 10.0}, 1000.0,
                                  util::Rng(3));
  for (int step = 0; step < 200; ++step) {
    model.step(pts, 2.0);
    for (const auto& p : pts) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1.0);
    }
  }
}

TEST(Mobility, RandomWaypointStaysInUnitSquare) {
  util::Rng rng(4);
  auto pts = topology::uniform_points(100, rng);
  mobility::RandomWaypoint model(pts.size(), {0.5, 10.0}, 1000.0,
                                 util::Rng(5));
  for (int step = 0; step < 200; ++step) {
    model.step(pts, 2.0);
    for (const auto& p : pts) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1.0);
    }
  }
}

TEST(Mobility, DisplacementMatchesSpeedScale) {
  // A single node at fixed speed v m/s in a W-meter world moves at most
  // v*dt/W units per step (less when it reflects or redraws), and on
  // average a substantial fraction of it.
  const double speed = 5.0;
  const double world = 1000.0;
  const double dt = 1.0;
  std::vector<topology::Point> pts{{0.5, 0.5}};
  mobility::RandomDirection model(1, {speed, speed}, world, util::Rng(6),
                                  /*mean_epoch_s=*/1e9);
  util::RunningStats hops;
  for (int step = 0; step < 500; ++step) {
    const auto before = pts[0];
    model.step(pts, dt);
    hops.add(topology::distance(before, pts[0]));
  }
  const double per_step = speed * dt / world;
  EXPECT_LE(hops.max(), per_step + 1e-9);
  EXPECT_GT(hops.mean(), per_step * 0.5);
}

TEST(Mobility, ZeroSpeedRangeParksNodes) {
  util::Rng rng(7);
  auto pts = topology::uniform_points(20, rng);
  const auto before = pts;
  mobility::RandomDirection model(pts.size(), {0.0, 0.0}, 1000.0,
                                  util::Rng(8));
  model.step(pts, 100.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(pts[i].x, before[i].x, 1e-12);
    EXPECT_NEAR(pts[i].y, before[i].y, 1e-12);
  }
}

TEST(Mobility, FasterRangeMovesFarther) {
  util::Rng rng(9);
  const auto original = topology::uniform_points(200, rng);

  auto slow_pts = original;
  mobility::RandomDirection slow(slow_pts.size(), {0.0, 1.6}, 1000.0,
                                 util::Rng(10));
  auto fast_pts = original;
  mobility::RandomDirection fast(fast_pts.size(), {0.0, 10.0}, 1000.0,
                                 util::Rng(11));
  for (int step = 0; step < 100; ++step) {
    slow.step(slow_pts, 2.0);
    fast.step(fast_pts, 2.0);
  }
  util::RunningStats slow_d, fast_d;
  for (std::size_t i = 0; i < original.size(); ++i) {
    slow_d.add(topology::distance(original[i], slow_pts[i]));
    fast_d.add(topology::distance(original[i], fast_pts[i]));
  }
  EXPECT_GT(fast_d.mean(), slow_d.mean());
}

TEST(Mobility, WaypointReachesTargetEventually) {
  // With a single fast node and long steps, positions must keep changing
  // (fresh waypoints are drawn after arrival, no pause).
  std::vector<topology::Point> pts{{0.5, 0.5}};
  mobility::RandomWaypoint model(1, {50.0, 50.0}, 1000.0, util::Rng(12));
  topology::Point last = pts[0];
  int moved = 0;
  for (int step = 0; step < 50; ++step) {
    model.step(pts, 5.0);
    if (topology::distance(last, pts[0]) > 1e-6) ++moved;
    last = pts[0];
  }
  EXPECT_GT(moved, 40);
}

}  // namespace
}  // namespace ssmwn
