// Mobility determinism and stepping invariants.
//
// The dynamic-topology runtime advances mobility in windows whose size
// depends on the run mode (classic window loops use window_s; the live
// bench uses finer ticks), so the models must behave sanely under any
// dt decomposition: positions stay inside the reflecting unit square,
// net displacement respects the speed bound, and equal seeds give
// byte-identical trajectories no matter which thread executes them —
// the campaign replay guarantee leans on exactly that.
#include "mobility/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "topology/generators.hpp"
#include "topology/point.hpp"
#include "util/rng.hpp"

namespace ssmwn {
namespace {

constexpr double kWorldM = 1000.0;

std::vector<topology::Point> start_points(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  return topology::uniform_points(n, rng);
}

std::unique_ptr<mobility::MobilityModel> make_model(bool waypoint,
                                                    double speed_max,
                                                    std::uint64_t seed) {
  const mobility::SpeedRange speeds{0.0, speed_max};
  if (waypoint) {
    return std::make_unique<mobility::RandomWaypoint>(200, speeds, kWorldM,
                                                      util::Rng(seed));
  }
  return std::make_unique<mobility::RandomDirection>(200, speeds, kWorldM,
                                                     util::Rng(seed));
}

void expect_in_unit_square(const std::vector<topology::Point>& pts) {
  for (const auto& p : pts) {
    ASSERT_TRUE(std::isfinite(p.x) && std::isfinite(p.y));
    ASSERT_GE(p.x, 0.0);
    ASSERT_LE(p.x, 1.0);
    ASSERT_GE(p.y, 0.0);
    ASSERT_LE(p.y, 1.0);
  }
}

void run_split_step_invariants(bool waypoint, double speed_max) {
  // Stepping 2×(dt/2) must satisfy the same physical invariants as
  // 1×dt: positions inside the reflecting boundary and per-step net
  // displacement at most speed_max · dt (reflection folds the path into
  // the square and folding is 1-Lipschitz, so the bound survives it).
  const double dt = 2.0;
  const double max_disp = speed_max * dt / kWorldM + 1e-12;
  auto whole_pts = start_points(200, 99);
  auto split_pts = whole_pts;
  auto whole = make_model(waypoint, speed_max, 7);
  auto split = make_model(waypoint, speed_max, 7);

  for (int step = 0; step < 200; ++step) {
    const auto before_whole = whole_pts;
    const auto before_split = split_pts;
    whole->step(whole_pts, dt);
    split->step(split_pts, dt / 2);
    split->step(split_pts, dt / 2);
    expect_in_unit_square(whole_pts);
    expect_in_unit_square(split_pts);
    for (std::size_t i = 0; i < whole_pts.size(); ++i) {
      EXPECT_LE(topology::distance(before_whole[i], whole_pts[i]), max_disp);
      EXPECT_LE(topology::distance(before_split[i], split_pts[i]), max_disp);
    }
  }
}

TEST(MobilityDeterminism, RandomDirectionSplitStepInvariantsPedestrian) {
  run_split_step_invariants(/*waypoint=*/false, 1.6);
}

TEST(MobilityDeterminism, RandomDirectionSplitStepInvariantsVehicular) {
  run_split_step_invariants(/*waypoint=*/false, 10.0);
}

TEST(MobilityDeterminism, RandomWaypointSplitStepInvariants) {
  run_split_step_invariants(/*waypoint=*/true, 10.0);
}

TEST(MobilityDeterminism, SplitSteppingIsAStableDistributionNotATrajectory) {
  // The models draw from ONE rng shared by all nodes, so an epoch
  // boundary that falls on one side of a step cut for node a and the
  // other side for node b reorders which node receives which redraw:
  // 2×(dt/2) and 1×dt walk *different but equally valid* trajectories.
  // What must hold — and what the live runtime relies on — is that a
  // FIXED dt decomposition is bit-reproducible (the test above) and
  // that any decomposition obeys the physical invariants (the tests
  // above). This test pins the statistical contract: both decompositions
  // keep the spatial distribution near-uniform (mean position stays
  // centered), so no step-size choice biases the deployments.
  auto whole_pts = start_points(400, 5);
  auto split_pts = whole_pts;
  auto whole = make_model(false, 10.0, 3);
  auto split = make_model(false, 10.0, 3);
  for (int step = 0; step < 150; ++step) {
    whole->step(whole_pts, 2.0);
    split->step(split_pts, 1.0);
    split->step(split_pts, 1.0);
  }
  auto mean = [](const std::vector<topology::Point>& pts) {
    topology::Point m{0.0, 0.0};
    for (const auto& p : pts) {
      m.x += p.x;
      m.y += p.y;
    }
    m.x /= static_cast<double>(pts.size());
    m.y /= static_cast<double>(pts.size());
    return m;
  };
  const auto mw = mean(whole_pts);
  const auto ms = mean(split_pts);
  EXPECT_NEAR(mw.x, 0.5, 0.1);
  EXPECT_NEAR(mw.y, 0.5, 0.1);
  EXPECT_NEAR(ms.x, 0.5, 0.1);
  EXPECT_NEAR(ms.y, 0.5, 0.1);
}

void run_trajectory(bool waypoint, std::uint64_t seed,
                    std::vector<topology::Point>& pts) {
  pts = start_points(200, 1234);
  auto model = make_model(waypoint, 10.0, seed);
  for (int step = 0; step < 120; ++step) model->step(pts, 2.0);
}

TEST(MobilityDeterminism, EqualSeedsGiveByteIdenticalTrajectories) {
  for (const bool waypoint : {false, true}) {
    std::vector<topology::Point> a, b;
    run_trajectory(waypoint, 42, a);
    run_trajectory(waypoint, 42, b);
    ASSERT_EQ(a.size(), b.size());
    // Bitwise, not approximate: replayed campaigns must not drift.
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             a.size() * sizeof(topology::Point)));
    std::vector<topology::Point> c;
    run_trajectory(waypoint, 43, c);
    EXPECT_NE(0, std::memcmp(a.data(), c.data(),
                             a.size() * sizeof(topology::Point)));
  }
}

TEST(MobilityDeterminism, TrajectoriesAreByteIdenticalAcrossThreads) {
  // The campaign runner shards runs over worker threads; a trajectory
  // computed on any of them must equal the single-threaded one bit for
  // bit (no hidden thread-local or global state in the models).
  std::vector<topology::Point> main_thread;
  run_trajectory(false, 77, main_thread);
  std::vector<std::vector<topology::Point>> worker_results(4);
  std::vector<std::thread> workers;
  for (auto& result : worker_results) {
    workers.emplace_back(
        [&result] { run_trajectory(false, 77, result); });
  }
  for (auto& w : workers) w.join();
  for (const auto& result : worker_results) {
    ASSERT_EQ(result.size(), main_thread.size());
    EXPECT_EQ(0, std::memcmp(result.data(), main_thread.data(),
                             main_thread.size() * sizeof(topology::Point)));
  }
}

}  // namespace
}  // namespace ssmwn
