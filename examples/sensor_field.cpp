// Sensor field: the paper's wireless-sensor-network motivation, end to
// end on the *distributed* protocol.
//
// A static field of sensors self-organizes into clusters by local
// broadcasts only (no oracle), under a lossy CSMA-like medium (τ = 0.8).
// Midway, a third of the sensors are struck by a state-corrupting fault
// (arbitrary memory contents — the self-stabilization adversary), and the
// field recovers on its own. This is the Section 4 story as a runnable
// program.
#include <cstdio>

#include "core/clustering.hpp"
#include "core/protocol.hpp"
#include "sim/loss.hpp"
#include "sim/network.hpp"
#include "stabilize/convergence.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

namespace {

using namespace ssmwn;

std::size_t count_heads(const core::DensityProtocol& protocol) {
  std::size_t heads = 0;
  for (char flag : protocol.head_flags()) heads += flag != 0;
  return heads;
}

}  // namespace

int main() {
  using namespace ssmwn;
  util::Rng rng(42);

  // A 300-sensor field; each sensor knows only its unique hardware id.
  const auto points = topology::uniform_points(300, rng);
  const auto graph = topology::unit_disk_graph(points, 0.1);
  const auto ids = topology::random_ids(graph.node_count(), rng);
  std::printf("sensor field: %zu sensors, %zu radio links\n",
              graph.node_count(), graph.edge_count());

  // Distributed protocol with the DAG renaming enabled, over a medium
  // that drops each frame with probability 0.2.
  core::ProtocolConfig config;
  config.cluster.use_dag_ids = true;
  config.delta_hint = graph.max_degree();
  config.cache_max_age = 12;
  core::DensityProtocol protocol(ids, config, rng.split());
  sim::BernoulliDelivery medium(0.8, rng.split());
  sim::Network network(graph, protocol, medium);

  // Oracle only used to *report* convergence; the sensors never see it.
  const auto oracle_opts = config.cluster;
  auto legitimate = [&] {
    // Quiescence check: every head value held and matching a head flag
    // consistency (head's own head is itself).
    for (graph::NodeId p = 0; p < protocol.node_count(); ++p) {
      const auto& s = protocol.state(p);
      if (!s.head_valid || !s.metric_valid) return false;
    }
    return true;
  };
  (void)oracle_opts;

  auto run_phase = [&](const char* label, std::size_t max_steps) {
    auto last_heads = protocol.head_values();
    const auto report = stabilize::run_until_stable(
        [&] { network.step(); },
        [&] {
          auto now = protocol.head_values();
          const bool settled = legitimate() && now == last_heads;
          last_heads = std::move(now);
          return settled;
        },
        /*confirm_steps=*/10, max_steps);
    std::printf("%-28s converged=%s after ~%zu steps, %zu cluster-heads\n",
                label, report.converged ? "yes" : "NO",
                report.stabilization_step, count_heads(protocol));
  };

  run_phase("cold start:", 500);

  // Fault: cosmic rays / firmware bug scrambles 30% of the sensors.
  util::Rng chaos(7);
  const std::size_t hit = protocol.corrupt_fraction(chaos, 0.3);
  std::printf("\n*** fault injected into %zu sensors (arbitrary state) ***\n",
              hit);
  run_phase("recovery:", 500);

  std::printf("\nself-stabilization: the field re-converged with no "
              "external intervention.\n");
  return 0;
}
