// Energy-aware sensor field: the paper's closing future-work direction
// as a runnable scenario.
//
// A battery-powered sensor field runs periodic cluster maintenance;
// heads pay an energy premium (beaconing, relaying). The plain density
// election keeps re-electing the same dense-spot nodes until they burn
// out; the energy-weighted election (density × residual charge) rotates
// the head role and keeps the field alive far longer. Also emits a DOT
// snapshot of the initial clustering for visualization.
#include <cstdio>

#include "energy/energy.hpp"
#include "graph/dot.hpp"
#include "metrics/cluster_metrics.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ssmwn;
  util::Rng rng(1905);

  const auto points = topology::uniform_points(250, rng);
  const auto graph = topology::unit_disk_graph(points, 0.11);
  const auto ids = topology::random_ids(graph.node_count(), rng);
  const energy::EnergyConfig config{
      .capacity = 150.0, .member_cost = 1.0, .head_premium = 5.0};
  std::printf("sensor field: %zu sensors, capacity %.0f units, head "
              "premium %.0fx\n\n",
              graph.node_count(), config.capacity,
              config.head_premium / config.member_cost + 1.0);

  for (const bool energy_aware : {false, true}) {
    energy::EnergyStore store(graph.node_count(), config);
    int first_death = -1;
    int window = 0;
    for (; window < 600; ++window) {
      const auto masked = energy::mask_dead(graph, store);
      const auto clustering =
          energy_aware ? energy::cluster_energy_aware(masked, ids, store)
                       : core::cluster_density(masked, ids, {});
      store.charge_window(std::span<const char>(clustering.is_head.data(),
                                                clustering.is_head.size()));
      if (first_death < 0 && store.alive_count() < graph.node_count()) {
        first_death = window + 1;
      }
      if (store.alive_count() <= graph.node_count() / 2) break;
    }
    std::printf("%-22s first death at window %3d, half the field gone by "
                "window %3d\n",
                energy_aware ? "energy-aware election:" : "plain density:",
                first_death, window + 1);
  }

  // DOT snapshot of the initial energy-aware clustering.
  energy::EnergyStore fresh(graph.node_count(), config);
  const auto clustering = energy::cluster_energy_aware(graph, ids, fresh);
  graph::DotOptions dot_options;
  dot_options.positions.reserve(points.size());
  for (const auto& p : points) dot_options.positions.emplace_back(p.x, p.y);
  dot_options.cluster_of = clustering.head_index;
  dot_options.is_head = clustering.is_head;
  dot_options.parent = clustering.parent;
  const auto dot = graph::to_dot(graph, dot_options);
  std::printf("\ninitial clustering: %zu clusters, size fairness %.2f\n",
              clustering.cluster_count(),
              metrics::cluster_size_fairness(clustering));
  std::printf("DOT snapshot: %zu bytes (pipe this program through "
              "`tail -n +N | neato -Tsvg` to render)\n",
              dot.size());
  return 0;
}
