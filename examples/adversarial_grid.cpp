// Adversarial grid: the Section 5 pathology end to end (figures 2 & 3).
//
// Nodes sit on a grid with identifiers increasing left to right, bottom
// to top. All interior densities are equal, every election falls to the
// id tie-break, and the whole network collapses into a single cluster
// whose clusterization tree is network-diameter deep — stabilization
// would take O(diameter) steps. Enabling the constant-height DAG
// renaming of Section 4.1 makes the collapse (and the dependence on the
// identifier distribution) disappear.
#include <cstdio>

#include "core/clustering.hpp"
#include "core/dag_ids.hpp"
#include "metrics/cluster_metrics.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ssmwn;

  constexpr std::size_t kSide = 20;
  const auto points = topology::grid_points(kSide);
  const auto graph = topology::unit_disk_graph(points, 1.45 / kSide);
  const auto ids = topology::sequential_ids(graph.node_count());
  std::printf("grid %zux%zu, %zu links, every interior node has %zu "
              "neighbors\n\n",
              kSide, kSide, graph.edge_count(), graph.max_degree());

  // Without the DAG: the id gradient swallows the network.
  const auto collapsed = core::cluster_density(graph, ids, {});
  const auto collapsed_stats = metrics::analyze(graph, collapsed);
  std::printf("--- without DAG (fig. 2) ---\n");
  std::printf("clusters: %zu, tree depth: %.0f\n",
              collapsed_stats.cluster_count, collapsed_stats.mean_tree_depth);
  std::fputs(metrics::render_grid_clusters(kSide, collapsed).c_str(), stdout);

  // With the DAG: locally-unique random names break every tie locally.
  util::Rng rng(5426);  // the INRIA report number, for luck
  const auto dag = core::build_dag_ids(graph, ids, {}, rng);
  std::printf("\nDAG built in %zu rounds over name space [0, %llu)\n",
              dag.rounds,
              static_cast<unsigned long long>(dag.name_space));
  core::ClusterOptions with_dag;
  with_dag.use_dag_ids = true;
  const auto clustered = core::cluster_density(graph, ids, with_dag, dag.ids);
  const auto stats = metrics::analyze(graph, clustered);
  std::printf("\n--- with DAG (fig. 3) ---\n");
  std::printf("clusters: %zu, tree depth: %.1f\n", stats.cluster_count,
              stats.mean_tree_depth);
  std::fputs(metrics::render_grid_clusters(kSide, clustered).c_str(), stdout);

  std::printf("\nstabilization time is proportional to the tree depth "
              "(Lemma 2): %.0f steps without the DAG vs %.1f with it.\n",
              collapsed_stats.mean_tree_depth, stats.mean_tree_depth);
  return 0;
}
