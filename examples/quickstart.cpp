// Quickstart: deploy a random multihop wireless network, run the
// density-driven clustering of Mitton et al. (ICDCS 2005), and inspect
// the result.
//
//   build/examples/example_quickstart
//
// Walks through the three layers of the library:
//   1. topology  — place nodes, build the unit-disk radio graph
//   2. core      — compute densities and the stable clustering
//   3. metrics   — summarize the structure the paper evaluates
#include <cstdio>

#include "core/clustering.hpp"
#include "core/density.hpp"
#include "metrics/cluster_metrics.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ssmwn;

  // 1. Deploy 500 nodes uniformly in the unit square; two nodes are radio
  //    neighbors when within range R = 0.08. Protocol identifiers are a
  //    random permutation (the realistic, non-adversarial case).
  util::Rng rng(2005);
  const auto points = topology::uniform_points(500, rng);
  const auto graph = topology::unit_disk_graph(points, 0.08);
  const auto ids = topology::random_ids(graph.node_count(), rng);
  std::printf("deployed %zu nodes, %zu links, max degree %zu\n",
              graph.node_count(), graph.edge_count(), graph.max_degree());

  // 2. Cluster with the paper's full rule set: density metric, plus the
  //    Section 4.3 stability improvements (incumbency matters only across
  //    re-clusterings; fusion merges dominated 2-hop heads).
  core::ClusterOptions options;
  options.fusion = true;
  const auto clustering = core::cluster_density(graph, ids, options);
  std::printf("formed %zu clusters\n", clustering.cluster_count());

  // 3. Inspect: per-cluster membership for the first few clusters, then
  //    the aggregate statistics of the paper's evaluation section.
  const auto forest = clustering.forest();
  int shown = 0;
  for (graph::NodeId head : clustering.heads) {
    if (++shown > 5) break;
    const auto members = forest.members(head);
    std::printf("  cluster headed by node %u (density %.2f): %zu members, "
                "tree depth %u\n",
                head, clustering.metric[head], members.size(),
                forest.tree_depth(head));
  }
  const auto stats = metrics::analyze(graph, clustering);
  std::printf("\nmean head eccentricity : %.2f hops\n"
              "mean tree depth        : %.2f hops\n"
              "mean cluster size      : %.1f nodes\n"
              "min head separation    : %zu hops (fusion guarantees >= 3)\n",
              stats.mean_head_eccentricity, stats.mean_tree_depth,
              stats.mean_cluster_size, stats.min_head_separation);
  return 0;
}
