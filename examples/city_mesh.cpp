// City mesh: the scalability story of the paper's introduction, end to
// end — a large municipal mesh self-organizes into a multi-level
// hierarchy, and routing runs over the clusters instead of flat tables.
//
// Shows: hotspot (Matérn) deployment -> density clustering -> hierarchy
// -> flat vs hierarchical routing state and stretch -> broadcast cost.
#include <cstdio>

#include "core/hierarchy.hpp"
#include "routing/broadcast.hpp"
#include "routing/routing.hpp"
#include "topology/hotspots.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ssmwn;
  util::Rng rng(31415);

  // A city of hotspots: ~25 dense neighborhoods of ~60 mesh routers.
  const auto points = topology::matern_cluster_points(
      {.parent_intensity = 25, .mean_children = 60, .radius = 0.06}, rng);
  const auto graph = topology::unit_disk_graph(points, 0.08);
  const auto ids = topology::random_ids(graph.node_count(), rng);
  std::printf("city mesh: %zu routers, %zu links, max degree %zu\n\n",
              graph.node_count(), graph.edge_count(), graph.max_degree());

  // Multi-level self-organization.
  const auto hierarchy = core::build_hierarchy(graph, ids, {}, 3);
  std::printf("hierarchy depth %zu:\n", hierarchy.depth());
  for (std::size_t level = 0; level < hierarchy.depth(); ++level) {
    std::printf("  level %zu: %zu cluster-heads\n", level,
                hierarchy.levels[level].clustering.heads.size());
  }

  // Routing economics at level 0.
  const auto& clustering = hierarchy.levels[0].clustering;
  routing::FlatRouter flat(graph);
  routing::HierarchicalRouter hier(graph, clustering);
  const auto stats = routing::compare_routers(graph, flat, hier, 400, rng);
  std::printf("\nrouting over %zu clusters (sampled %zu pairs):\n",
              hier.cluster_count(), stats.pairs);
  std::printf("  flat state   : ~%zu entries per node\n",
              flat.table_entries(0));
  std::printf("  hier state   : ~%zu entries per node\n",
              hier.table_entries(0));
  std::printf("  path stretch : %.2f mean, %.2f worst sampled\n",
              stats.mean_stretch, stats.max_stretch);

  // One city-wide announcement.
  const auto f = routing::flood(graph, 0);
  const auto c = routing::cluster_broadcast(graph, clustering, 0);
  std::printf("\ncity-wide broadcast: flooding %zu transmissions, "
              "clusterized %zu (%.0f%% saved); %zu routers reached (the "
              "source's radio component — hotspot cities are naturally "
              "partitioned)\n",
              f.transmissions, c.transmissions,
              100.0 * (1.0 - static_cast<double>(c.transmissions) /
                                 static_cast<double>(f.transmissions)),
              c.covered);
  return 0;
}
