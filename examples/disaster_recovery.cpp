// Disaster recovery: the paper's spontaneous-network motivation — a
// mobile ad-hoc network where the fixed infrastructure is gone.
//
// Rescue teams (pedestrian speeds) and vehicles move through a 1 km²
// zone; the network re-clusters every 2 seconds. We track cluster-head
// churn with and without the Section 4.3 stability rules, showing why a
// command hierarchy built on incumbent heads stays usable while one
// rebuilt from scratch thrashes.
#include <cstdio>

#include "core/clustering.hpp"
#include "metrics/cluster_metrics.hpp"
#include "metrics/stability.hpp"
#include "mobility/mobility.hpp"
#include "topology/generators.hpp"
#include "topology/ids.hpp"
#include "topology/udg.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ssmwn;
  util::Rng rng(1999);

  constexpr std::size_t kResponders = 400;
  constexpr double kRangeUnits = 0.09;  // ~90 m radios in a 1 km² zone
  constexpr double kWorldMeters = 1000.0;
  constexpr double kWindowSeconds = 2.0;
  constexpr int kWindows = 150;  // 5 minutes of operation

  auto points = topology::uniform_points(kResponders, rng);
  const auto ids = topology::random_ids(kResponders, rng);
  // Mixed fleet: most responders on foot (0-1.6 m/s), some vehicles
  // modeled by the upper tail of a 0-8 m/s range.
  mobility::RandomDirection movement(kResponders, {0.0, 8.0}, kWorldMeters,
                                     rng.split());

  metrics::ChurnTracker plain_churn, stable_churn;
  std::vector<char> incumbents;
  util::RunningStats cluster_counts;

  for (int window = 0; window <= kWindows; ++window) {
    const auto graph = topology::unit_disk_graph(points, kRangeUnits);

    // Plain density clustering: rebuilt from scratch each window.
    const auto plain = core::cluster_density(graph, ids, {});
    plain_churn.observe(
        std::span<const char>(plain.is_head.data(), plain.is_head.size()));

    // Stabilized clustering: incumbency + fusion, fed the previous heads.
    core::ClusterOptions stable_opts;
    stable_opts.incumbency = true;
    stable_opts.fusion = true;
    const auto stable = core::cluster_density(
        graph, ids, stable_opts, {},
        std::span<const char>(incumbents.data(), incumbents.size()));
    stable_churn.observe(
        std::span<const char>(stable.is_head.data(), stable.is_head.size()));
    incumbents = stable.is_head;
    cluster_counts.add(static_cast<double>(stable.cluster_count()));

    if (window % 30 == 0) {
      const auto stats = metrics::analyze(graph, stable);
      std::printf("t=%3ds  clusters=%2zu  mean size=%.1f  head ecc=%.1f\n",
                  window * 2, stats.cluster_count, stats.mean_cluster_size,
                  stats.mean_head_eccentricity);
    }
    movement.step(points, kWindowSeconds);
  }

  std::printf("\nover %d two-second windows:\n", kWindows);
  std::printf("  head survival, plain rules      : %5.1f %%\n",
              plain_churn.ratios().mean() * 100.0);
  std::printf("  head survival, stabilized rules : %5.1f %%\n",
              stable_churn.ratios().mean() * 100.0);
  std::printf("  mean cluster count              : %5.1f\n",
              cluster_counts.mean());
  std::printf("\nthe stabilized rules keep command-post (cluster-head) "
              "assignments alive longer under the same mobility.\n");
  return 0;
}
