// CI regression gate over tracked bench baselines.
//
//   bench_compare <baseline_dir> <candidate_dir> [tolerance] [--allow-missing]
//
// Loads every BENCH_*.json from both directories, matches records by
// (bench, name, n, threads, metric), and exits nonzero when any rate
// metric ("/s") in the candidate run is more than `tolerance` slower
// than its baseline. Tolerance defaults to 0.10 (10%); the positional
// argument or SSMWN_BENCH_TOLERANCE overrides it — CI machines are
// noisy, so the workflow passes a generous value while the unit tests
// (tests/util/bench_baseline_test.cpp) pin the comparison semantics
// exactly.
//
// Silent passes are integrity failures, not warnings: a *rate* series
// present in only one of the two runs, or any non-finite value, exits
// with its own code so CI can tell "slower" from "the gate didn't
// actually compare what it claims to". `--allow-missing` downgrades
// the one-sided cases for reduced-scale smoke runs (a size-capped run
// legitimately covers different n points than the full baseline);
// non-finite values are never allowed.
//
// Exit codes: 0 pass, 1 regression, 2 usage or I/O error,
// 3 integrity failure (missing/extra rate series, NaN/inf values).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/bench_baseline.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace ssmwn;
  bool allow_missing = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--allow-missing") == 0) {
      allow_missing = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 3) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline_dir> <candidate_dir> "
                 "[tolerance] [--allow-missing]\n");
    return 2;
  }
  double tolerance = 0.10;
  const std::string env = util::env_string("SSMWN_BENCH_TOLERANCE", "");
  if (!env.empty()) tolerance = std::strtod(env.c_str(), nullptr);
  if (positional.size() == 3) {
    tolerance = std::strtod(positional[2], nullptr);
  }
  if (!(tolerance > 0.0) || tolerance >= 1.0) {
    std::fprintf(stderr, "bench_compare: tolerance must be in (0, 1)\n");
    return 2;
  }

  std::vector<util::BenchRecord> baseline, candidate;
  std::string error;
  if (!util::load_bench_dir(positional[0], baseline, error)) {
    std::fprintf(stderr, "bench_compare: baseline: %s\n", error.c_str());
    return 2;
  }
  if (!util::load_bench_dir(positional[1], candidate, error)) {
    std::fprintf(stderr, "bench_compare: candidate: %s\n", error.c_str());
    return 2;
  }
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_compare: no BENCH_*.json under %s\n",
                 positional[0]);
    return 2;
  }

  const auto report = util::compare_benchmarks(baseline, candidate, tolerance);
  std::fputs(util::render_comparison(report, tolerance, allow_missing).c_str(),
             stdout);
  return util::compare_exit_code(report, allow_missing);
}
