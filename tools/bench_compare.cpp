// CI regression gate over tracked bench baselines.
//
//   bench_compare <baseline_dir> <candidate_dir> [tolerance]
//
// Loads every BENCH_*.json from both directories, matches records by
// (bench, name, n, threads, metric), and exits nonzero when any rate
// metric ("/s") in the candidate run is more than `tolerance` slower
// than its baseline. Tolerance defaults to 0.10 (10%); the positional
// argument or SSMWN_BENCH_TOLERANCE overrides it — CI machines are
// noisy, so the workflow passes a generous value while the unit tests
// (tests/util/bench_baseline_test.cpp) pin the comparison semantics
// exactly. Missing candidate records only warn: a size-capped smoke run
// legitimately covers fewer points than the checked-in baseline.
//
// Exit codes: 0 pass, 1 regression, 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/bench_baseline.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace ssmwn;
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline_dir> <candidate_dir> "
                 "[tolerance]\n");
    return 2;
  }
  double tolerance = 0.10;
  const std::string env = util::env_string("SSMWN_BENCH_TOLERANCE", "");
  if (!env.empty()) tolerance = std::strtod(env.c_str(), nullptr);
  if (argc == 4) tolerance = std::strtod(argv[3], nullptr);
  if (!(tolerance > 0.0) || tolerance >= 1.0) {
    std::fprintf(stderr, "bench_compare: tolerance must be in (0, 1)\n");
    return 2;
  }

  std::vector<util::BenchRecord> baseline, candidate;
  std::string error;
  if (!util::load_bench_dir(argv[1], baseline, error)) {
    std::fprintf(stderr, "bench_compare: baseline: %s\n", error.c_str());
    return 2;
  }
  if (!util::load_bench_dir(argv[2], candidate, error)) {
    std::fprintf(stderr, "bench_compare: candidate: %s\n", error.c_str());
    return 2;
  }
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_compare: no BENCH_*.json under %s\n", argv[1]);
    return 2;
  }

  const auto report = util::compare_benchmarks(baseline, candidate, tolerance);
  std::fputs(util::render_comparison(report, tolerance).c_str(), stdout);
  return report.regressions() > 0 ? 1 : 0;
}
