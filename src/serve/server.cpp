#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "campaign/spec.hpp"
#include "serve/wire.hpp"

namespace ssmwn::serve {

namespace {

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// One result frame body: plan slot coordinates, the run's seed, the
/// ten metrics in aggregate.hpp report order, then the window count —
/// all numbers through the same formatting the CSV reports use, so the
/// stream is byte-deterministic.
std::string result_line(const campaign::CampaignPlan& plan, std::size_t i,
                        const campaign::RunMetrics& m) {
  const auto& entry = plan.runs[i];
  std::string line;
  line += std::to_string(i);
  line += ',';
  line += std::to_string(entry.grid_index);
  line += ',';
  line += std::to_string(entry.replication);
  line += ',';
  line += std::to_string(entry.seed);
  const double metrics[] = {m.stability,       m.delta,
                            m.reaffiliation,   m.cluster_count,
                            m.converge_time,   m.messages,
                            m.reconverge_time, m.reconverge_messages,
                            m.sync_steps,      m.sync_messages};
  for (const double value : metrics) {
    line += ',';
    line += campaign::format_double(value);
  }
  line += ',';
  line += std::to_string(m.windows);
  return line;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options), pool_(options.threads, options.exec) {
  if (::pipe2(stop_pipe_, O_CLOEXEC) != 0) {
    throw std::runtime_error(std::string("serve: cannot create stop pipe: ") +
                             std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: cannot create socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string reason = std::strerror(errno);
    close_fd(listen_fd_);
    throw std::invalid_argument("serve: cannot listen on port " +
                                std::to_string(options.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string reason = std::strerror(errno);
    close_fd(listen_fd_);
    throw std::runtime_error("serve: getsockname failed: " + reason);
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  request_stop();
  {
    const std::scoped_lock lock(threads_mutex_);
    for (auto& thread : connections_) {
      if (thread.joinable()) thread.join();
    }
  }
  close_fd(listen_fd_);
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
}

void Server::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  // Only async-signal-safe calls past this point: this runs from the
  // SIGTERM handler. The byte's value is irrelevant; the wakeup is.
  const char byte = 's';
  [[maybe_unused]] const ssize_t rc = ::write(stop_pipe_[1], &byte, 1);
}

void Server::run() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: poll failed: ") +
                               std::strerror(errno));
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw std::runtime_error(std::string("serve: accept failed: ") +
                               std::strerror(errno));
    }
    const std::scoped_lock lock(threads_mutex_);
    connections_.emplace_back(&Server::serve_connection, this, conn);
  }
  // Drain: no new connections; in-flight connections finish their
  // current spec (they check stopping_ before reading the next one);
  // then the pool finishes every queued run before its workers join.
  close_fd(listen_fd_);
  {
    const std::scoped_lock lock(threads_mutex_);
    for (auto& thread : connections_) {
      if (thread.joinable()) thread.join();
    }
    connections_.clear();
  }
  pool_.drain();
}

void Server::serve_connection(int fd) {
  try {
    Frame frame;
    while (!stopping_.load(std::memory_order_acquire) &&
           read_frame(fd, frame)) {
      if (frame.type != FrameType::kSpec) {
        write_frame(fd, FrameType::kError, "expected a spec ('S') frame");
        continue;
      }
      std::shared_ptr<ServeJob> job;
      try {
        job = std::make_shared<ServeJob>(
            campaign::expand(campaign::parse_spec_text(frame.body)));
      } catch (const std::invalid_argument& e) {
        write_frame(fd, FrameType::kError, e.what());
        continue;
      }
      pool_.submit(job);
      // Stream in plan order: slot i+1 is not read before slot i, so the
      // client sees the same bytes however the pool scheduled the runs.
      for (std::size_t i = 0; i < job->plan.runs.size(); ++i) {
        job->wait_slot(i);
        if (!job->failed[i].empty()) {
          write_frame(fd, FrameType::kError,
                      "run " + std::to_string(i) + ": " + job->failed[i]);
        } else {
          write_frame(fd, FrameType::kResult, result_line(job->plan, i,
                                                          job->results[i]));
        }
      }
      write_frame(fd, FrameType::kEnd,
                  std::to_string(job->plan.runs.size()));
    }
  } catch (const std::exception&) {
    // Torn frame or dead peer: nothing to report to — drop the
    // connection and keep the daemon serving everyone else.
  }
  ::close(fd);
}

}  // namespace ssmwn::serve
