#include "serve/worker_pool.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

namespace ssmwn::serve {

ServePool::ServePool(unsigned threads, const campaign::ExecutionOptions& exec)
    : exec_(exec) {
  const unsigned count =
      threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                   : threads;
  deques_.resize(count);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back(&ServePool::worker_main, this, i);
  }
}

ServePool::~ServePool() { drain(); }

void ServePool::submit(const std::shared_ptr<ServeJob>& job) {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("serve pool is draining; job rejected");
    }
    for (std::size_t i = 0; i < job->plan.runs.size(); ++i) {
      deques_[next_deque_].push_back(Task{job, i});
      next_deque_ = (next_deque_ + 1) % deques_.size();
    }
  }
  cv_.notify_all();
}

void ServePool::drain() {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ServePool::try_pop(std::size_t self, Task& out) {
  // Own deque back-to-front (LIFO, cache-warm tail), then steal the
  // oldest task from the first non-empty sibling. Caller holds mutex_.
  if (!deques_[self].empty()) {
    out = std::move(deques_[self].back());
    deques_[self].pop_back();
    return true;
  }
  for (std::size_t off = 1; off < deques_.size(); ++off) {
    auto& victim = deques_[(self + off) % deques_.size()];
    if (!victim.empty()) {
      out = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ServePool::worker_main(std::size_t self) {
  campaign::RunWorkspace ws;  // reused across every run this worker takes
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      // try_pop first: stopping_ alone must not wake a worker past
      // queued tasks — the drain contract says everything queued
      // finishes before the workers exit.
      cv_.wait(lock, [&] { return try_pop(self, task) || stopping_; });
      if (!task.job) return;
    }
    ServeJob& job = *task.job;
    const auto& entry = job.plan.runs[task.run_index];
    campaign::RunMetrics metrics;
    std::string error;
    try {
      metrics = campaign::execute_run(job.plan.grid[entry.grid_index].config,
                                      entry.seed, ws, exec_);
    } catch (const std::exception& e) {
      error = e.what();
      if (error.empty()) error = "run failed";
    }
    {
      const std::scoped_lock lock(job.mutex);
      job.results[task.run_index] = metrics;
      job.failed[task.run_index] = std::move(error);
      job.done[task.run_index] = 1;
    }
    job.cv.notify_all();
    task.job.reset();  // release before sleeping; jobs die promptly
  }
}

}  // namespace ssmwn::serve
