// Persistent work-stealing run pool for the serve daemon.
//
// sim::ThreadPool is a fork-join pool: parallel_for blocks its caller
// until the whole range drains, which is exactly wrong for a daemon
// where many connections submit jobs concurrently and each streams its
// own results as they land. ServePool is the long-lived counterpart:
// workers live for the daemon's lifetime, each owns a deque of run
// tasks and a RunWorkspace reused across every job it ever touches (the
// same warm-heap property the campaign runner gets per sweep, extended
// across sweeps). Submission deals a job's runs round-robin across the
// deques; a worker drains its own deque back-to-front and, when empty,
// steals from the front of a sibling's — FIFO stealing takes the
// oldest, coldest tasks and keeps each worker's own tail cache-warm.
//
// Results are deterministic by construction, not by scheduling: every
// run writes its metrics into its plan slot in the job, so whichever
// worker executes it — in whatever order — the job's result vector is
// identical, and a reader consuming slots in plan order sees a
// byte-stable stream.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace ssmwn::serve {

/// One submitted spec: the expanded plan plus per-slot completion
/// tracking. Workers fill `results` and flip `done` flags; readers
/// block on wait_slot(i) for slots in plan order. `failed[i]` carries a
/// run's error message instead of metrics (the connection reports it
/// and keeps serving).
struct ServeJob {
  campaign::CampaignPlan plan;
  std::vector<campaign::RunMetrics> results;
  std::vector<char> done;
  std::vector<std::string> failed;  // empty string = run succeeded

  std::mutex mutex;
  std::condition_variable cv;

  explicit ServeJob(campaign::CampaignPlan p)
      : plan(std::move(p)),
        results(plan.runs.size()),
        done(plan.runs.size(), 0),
        failed(plan.runs.size()) {}

  /// Blocks until run slot `i` completes.
  void wait_slot(std::size_t i) {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return done[i] != 0; });
  }
};

class ServePool {
 public:
  /// `threads` = 0 means hardware concurrency. `exec` carries the
  /// result-neutral engine knobs (shards) every run shares.
  explicit ServePool(unsigned threads,
                     const campaign::ExecutionOptions& exec = {});
  ~ServePool();  // drains: queued work finishes before workers exit

  ServePool(const ServePool&) = delete;
  ServePool& operator=(const ServePool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues every run of the job across the worker deques. The job
  /// must outlive its runs — hence shared_ptr; the pool drops its
  /// references as runs complete.
  void submit(const std::shared_ptr<ServeJob>& job);

  /// Graceful drain: stop accepting work, finish everything queued,
  /// join the workers. Idempotent; the destructor calls it.
  void drain();

 private:
  struct Task {
    std::shared_ptr<ServeJob> job;
    std::size_t run_index = 0;
  };

  void worker_main(std::size_t self);
  [[nodiscard]] bool try_pop(std::size_t self, Task& out);

  campaign::ExecutionOptions exec_;
  // One deque per worker, all under one mutex: a task is an entire
  // simulation run (milliseconds to seconds), so queue operations are
  // noise and a single lock keeps the stealing logic trivially correct.
  std::vector<std::deque<Task>> deques_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::size_t next_deque_ = 0;  // round-robin dealing cursor
  std::vector<std::thread> workers_;
};

}  // namespace ssmwn::serve
