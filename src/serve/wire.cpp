#include "serve/wire.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ssmwn::serve {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("wire: ") + what + ": " +
                           std::strerror(errno));
}

/// Reads exactly `size` bytes. Returns false only when EOF arrives
/// before the FIRST byte (a clean close between frames when
/// `eof_ok_at_start`); EOF later is a torn frame and throws.
bool read_exact(int fd, void* buffer, std::size_t size, bool eof_ok_at_start) {
  auto* out = static_cast<char*>(buffer);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read failed");
    }
    if (n == 0) {
      if (got == 0 && eof_ok_at_start) return false;
      throw std::runtime_error("wire: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_exact(int fd, const void* buffer, std::size_t size) {
  const auto* data = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool read_frame(int fd, Frame& out) {
  unsigned char prefix[4];
  if (!read_exact(fd, prefix, sizeof(prefix), /*eof_ok_at_start=*/true)) {
    return false;
  }
  const std::uint32_t length =
      (static_cast<std::uint32_t>(prefix[0]) << 24) |
      (static_cast<std::uint32_t>(prefix[1]) << 16) |
      (static_cast<std::uint32_t>(prefix[2]) << 8) |
      static_cast<std::uint32_t>(prefix[3]);
  if (length == 0) {
    throw std::runtime_error("wire: zero-length frame (missing type byte)");
  }
  if (length > kMaxFramePayload) {
    throw std::runtime_error("wire: frame exceeds maximum payload size");
  }
  unsigned char type = 0;
  read_exact(fd, &type, 1, /*eof_ok_at_start=*/false);
  out.type = static_cast<FrameType>(type);
  out.body.resize(length - 1);
  if (!out.body.empty()) {
    read_exact(fd, out.body.data(), out.body.size(), /*eof_ok_at_start=*/false);
  }
  return true;
}

void write_frame(int fd, FrameType type, std::string_view body) {
  if (body.size() + 1 > kMaxFramePayload) {
    throw std::runtime_error("wire: frame exceeds maximum payload size");
  }
  const auto length = static_cast<std::uint32_t>(body.size() + 1);
  // One contiguous buffer per frame: a single write keeps frames intact
  // on the wire even if several threads ever shared a descriptor.
  std::string frame;
  frame.reserve(4 + length);
  frame.push_back(static_cast<char>((length >> 24) & 0xffu));
  frame.push_back(static_cast<char>((length >> 16) & 0xffu));
  frame.push_back(static_cast<char>((length >> 8) & 0xffu));
  frame.push_back(static_cast<char>(length & 0xffu));
  frame.push_back(static_cast<char>(type));
  frame.append(body);
  write_exact(fd, frame.data(), frame.size());
}

}  // namespace ssmwn::serve
