// The `ssmwn serve` daemon: scenario specs in, run results out.
//
// One long-lived TCP listener; each accepted connection gets its own
// thread that speaks the framed protocol (serve/wire.hpp): read a spec
// frame, expand it, submit every run to the shared ServePool, then
// stream result frames back *in plan order* — workers complete slots in
// whatever order scheduling produces, but the connection thread waits
// on slot i before slot i+1, so the client-visible stream is
// byte-deterministic. A connection can submit any number of specs
// sequentially; concurrent specs come from concurrent connections, all
// multiplexed onto the one pool (which is the point: the pool's
// workspaces and threads are shared capacity, not per-request cost).
//
// Shutdown is a graceful drain, reachable from a signal handler:
// request_stop() writes one byte to a self-pipe (async-signal-safe),
// the accept loop's poll wakes, the listener closes (no new
// connections), in-flight connections finish the spec they are serving
// and see the stop flag before reading another, and the pool drains its
// queue before the workers join. Nothing in flight is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "serve/worker_pool.hpp"

namespace ssmwn::serve {

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral port
  /// (tests bind 0 and read the real port back from port()).
  std::uint16_t port = 0;
  /// Worker pool size; 0 = hardware concurrency.
  unsigned threads = 0;
  campaign::ExecutionOptions exec;
};

class Server {
 public:
  /// Binds and listens; throws std::invalid_argument if the port cannot
  /// be bound (the bad-arguments exit, like every precondition failure).
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually bound port (resolves port 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accept loop; returns after request_stop() once every connection
  /// has finished its in-flight spec and the pool has drained.
  void run();

  /// Initiates the graceful drain. Async-signal-safe (one write(2) to a
  /// self-pipe) — designed to be called from a SIGTERM/SIGINT handler.
  void request_stop() noexcept;

 private:
  void serve_connection(int fd);

  ServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  ServePool pool_;
  std::mutex threads_mutex_;
  std::vector<std::thread> connections_;
};

}  // namespace ssmwn::serve
