// Length-prefixed wire protocol for the `ssmwn serve` daemon.
//
// Framing is deliberately minimal — a 4-byte big-endian payload length
// followed by the payload, whose first byte is the frame type:
//
//   [u32be length][u8 type][length-1 bytes of body]
//
// so `length` counts the type byte plus the body. Types:
//
//   'S'  client → server   campaign spec text (the same `key = value`
//                          format `ssmwn campaign` reads from a file)
//   'R'  server → client   one run result: a comma-joined line
//                          `run,grid,replication,seed,<10 metrics>,windows`
//                          with metrics in aggregate.hpp's kMetricNames
//                          order, formatted by format_double — the exact
//                          byte discipline of the CSV reports
//   'E'  server → client   end of results for the preceding spec; body
//                          is the run count as decimal text
//   'X'  server → client   spec rejected or run failed; body is the
//                          message. The connection stays usable.
//
// Results stream back in plan order regardless of execution order, so a
// client's transcript for a given spec is byte-deterministic — two
// concurrent submissions of the same spec receive identical streams
// (the serve smoke byte-compares them).
//
// A frame longer than kMaxFramePayload is a protocol violation and
// closes the connection: the bound turns a corrupt length prefix into a
// clean error instead of a multi-gigabyte allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ssmwn::serve {

enum class FrameType : unsigned char {
  kSpec = 'S',
  kResult = 'R',
  kEnd = 'E',
  kError = 'X',
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string body;  // payload minus the type byte
};

/// 16 MiB — orders of magnitude above any real spec or result line.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Reads one frame from `fd`, looping over partial reads and EINTR.
/// Returns false on clean end-of-stream (EOF at a frame boundary);
/// throws std::runtime_error on IO errors, EOF mid-frame, a zero-length
/// payload (no type byte), or an oversized length prefix.
[[nodiscard]] bool read_frame(int fd, Frame& out);

/// Writes one frame to `fd`, looping over partial writes and EINTR.
/// Throws std::runtime_error on IO errors or an oversized body.
void write_frame(int fd, FrameType type, std::string_view body);

}  // namespace ssmwn::serve
