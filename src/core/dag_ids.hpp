// Constant-height DAG construction (algorithm N1, Section 4.1).
//
// Every node draws a name ("DAG Id", also called a color) from a constant
// name space γ and keeps redrawing until its name differs from all of its
// 1-neighbors'. Orienting each edge from the higher name to the lower one
// then yields a DAG whose height is at most |γ| + 1 — a constant — so the
// ≺ order built on these names stabilizes in constant expected time even
// when protocol identifiers are adversarially distributed (Section 5's
// grid pathology).
//
// Two redraw disciplines are provided:
//  * `N1Randomized` — the paper's theoretical rule: any node whose cached
//    neighborhood contains its own name redraws, uniformly from the free
//    names (newId). Stabilizes with probability 1 in expected constant
//    time (Theorem 1).
//  * `SmallerUidRedraws` — the discipline of the simulation section: when
//    two neighbors collide, the one with the smaller *protocol* Id
//    redraws. This is what Table 3 measures.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "topology/ids.hpp"
#include "util/rng.hpp"

namespace ssmwn::core {

enum class DagRedrawPolicy {
  N1Randomized,
  SmallerUidRedraws,
};

struct DagOptions {
  /// |γ|. 0 selects the paper's simulation choice, δ² + 1 (names in
  /// [0, δ²]); the theory section notes δ or δ² suffice where [11] needed
  /// δ⁶. Values ≤ δ are raised to δ + 1 so a free name always exists.
  std::uint64_t name_space = 0;

  DagRedrawPolicy policy = DagRedrawPolicy::SmallerUidRedraws;

  /// Safety bound on synchronous rounds (expected convergence is ~2).
  std::size_t max_rounds = 128;
};

struct DagResult {
  /// dag id per node, each in [0, name_space).
  std::vector<std::uint64_t> ids;
  /// Synchronous exchange rounds executed until the no-conflict check
  /// passed — the quantity Table 3 reports.
  std::size_t rounds = 0;
  bool converged = false;
  /// The |γ| actually used (after the auto/floor adjustments).
  std::uint64_t name_space = 0;
};

/// Runs the synchronous renaming loop on `g` until every node's name
/// differs from all of its 1-neighbors'.
[[nodiscard]] DagResult build_dag_ids(const graph::Graph& g,
                                      const topology::IdAssignment& uids,
                                      const DagOptions& options,
                                      util::Rng& rng);

/// True iff `ids` is a proper coloring of `g` (no adjacent equal names).
[[nodiscard]] bool locally_unique(const graph::Graph& g,
                                  std::span<const std::uint64_t> ids);

/// Height of the DAG obtained by orienting every edge of `g` from higher
/// to lower name (longest directed path, counted in edges). With a proper
/// coloring from name space γ this is at most |γ| − 1; the paper states
/// the (looser) bound |γ| + 1.
[[nodiscard]] std::size_t dag_height(const graph::Graph& g,
                                     std::span<const std::uint64_t> ids);

}  // namespace ssmwn::core
