// Per-node slab storage for variable-length trivially-copyable lists.
//
// The protocol keeps one digest list per cached neighbor. As per-entry
// std::vectors those lists are the worst case for the hot loops: every
// R1 intersection and every frame build chases a heap pointer per
// neighbor, and churn (delivery, eviction) allocates. SlabPool replaces
// them with one contiguous per-node buffer; PooledList is the span-like
// façade a list presents — (offset, size, capacity) into its node's
// pool, with enough of the std::vector surface (clear / reserve /
// push_back / resize / assign / operator[] / iterators) that the
// protocol, the fault injector and the tests keep reading naturally.
//
// Allocation is a bump pointer; freeing only counts the dead capacity.
// When everything is dead the pool resets for free; when dead capacity
// outweighs live the owner runs `compact` (protocol.cpp), which re-packs
// live spans in iteration order and drops slack — so steady state does
// no heap allocation at all and the buffer stays hot and dense. Offsets
// (not pointers) make the underlying buffer free to grow or move.
//
// Lists are move-only: a move steals the span (FlatMap insert/erase
// shifts and vector growth move entries within the same node, where the
// span stays valid); a copy could not know which pool the destination
// lives in, so it is deleted. A default-constructed list is *detached*
// (no pool): it is empty and stays empty until `attach` — the state a
// standalone CacheEntry is born in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace ssmwn::core {

template <typename T>
class SlabPool {
  static_assert(std::is_trivially_copyable_v<T>,
                "slab compaction moves bytes with memcpy/memmove");

 public:
  /// Bump-allocates `cap` slots and returns the span's offset. Grows the
  /// backing buffer geometrically; existing offsets stay valid.
  [[nodiscard]] std::uint32_t allocate(std::uint32_t cap) {
    const std::size_t need = static_cast<std::size_t>(cursor_) + cap;
    if (buf_.size() < need) {
      buf_.resize(std::max<std::size_t>(std::max(buf_.size() * 2, need), 16));
    }
    const std::uint32_t off = cursor_;
    cursor_ += cap;
    return off;
  }

  /// Returns a span's capacity to the dead count. When every span is
  /// dead the pool rewinds for free; otherwise the holes wait for the
  /// owner's compaction pass.
  void release(std::uint32_t cap) noexcept {
    dead_ += cap;
    if (dead_ == cursor_) {
      cursor_ = 0;
      dead_ = 0;
    }
  }

  [[nodiscard]] T* at(std::uint32_t off) noexcept { return buf_.data() + off; }
  [[nodiscard]] const T* at(std::uint32_t off) const noexcept {
    return buf_.data() + off;
  }

  [[nodiscard]] std::uint32_t cursor() const noexcept { return cursor_; }
  [[nodiscard]] std::uint32_t dead() const noexcept { return dead_; }
  [[nodiscard]] std::size_t buffer_capacity() const noexcept {
    return buf_.size();
  }

  /// True when dead capacity outweighs live — the owner should re-pack.
  /// The floor keeps tiny pools from compacting over a handful of slots.
  [[nodiscard]] bool fragmented() const noexcept {
    return dead_ * 2 > cursor_ && dead_ >= 64;
  }

  /// Compaction epilogue: the owner has re-packed all live spans into
  /// [0, live) and every list already points at its new offset.
  void reset_counters(std::uint32_t live) noexcept {
    cursor_ = live;
    dead_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::uint32_t cursor_ = 0;  ///< bump pointer (live + dead capacity)
  std::uint32_t dead_ = 0;    ///< released capacity below the cursor
};

template <typename T>
class PooledList {
 public:
  PooledList() = default;

  PooledList(PooledList&& other) noexcept
      : pool_(other.pool_), off_(other.off_), size_(other.size_),
        cap_(other.cap_) {
    other.pool_ = nullptr;
    other.off_ = other.size_ = other.cap_ = 0;
  }

  PooledList& operator=(PooledList&& other) noexcept {
    if (this != &other) {
      release_span();
      pool_ = other.pool_;
      off_ = other.off_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.pool_ = nullptr;
      other.off_ = other.size_ = other.cap_ = 0;
    }
    return *this;
  }

  // A copy cannot know the destination's pool; entries travel by move.
  PooledList(const PooledList&) = delete;
  PooledList& operator=(const PooledList&) = delete;

  ~PooledList() { release_span(); }

  /// Adopts `pool` if the list is still detached. Idempotent; storage-
  /// requiring operations (reserve/push_back/assign/resize-grow) must be
  /// preceded by an attach.
  void attach(SlabPool<T>& pool) noexcept {
    if (pool_ == nullptr) pool_ = &pool;
  }
  [[nodiscard]] bool attached() const noexcept { return pool_ != nullptr; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T* data() noexcept {
    return pool_ ? pool_->at(off_) : nullptr;
  }
  [[nodiscard]] const T* data() const noexcept {
    return pool_ ? pool_->at(off_) : nullptr;
  }
  [[nodiscard]] T* begin() noexcept { return data(); }
  [[nodiscard]] T* end() noexcept { return data() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data(); }
  [[nodiscard]] const T* end() const noexcept { return data() + size_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }

  void clear() noexcept { size_ = 0; }  // capacity retained

  void reserve(std::size_t cap) {
    if (cap <= cap_) return;
    const std::uint32_t new_cap = static_cast<std::uint32_t>(
        std::max<std::size_t>(std::max<std::size_t>(cap, cap_ * 2), 4));
    const std::uint32_t new_off = pool_->allocate(new_cap);
    if (size_ != 0) {
      std::memcpy(pool_->at(new_off), pool_->at(off_), size_ * sizeof(T));
    }
    pool_->release(cap_);
    off_ = new_off;
    cap_ = new_cap;
  }

  void push_back(const T& value) {
    if (size_ == cap_) reserve(size_ + 1);
    pool_->at(off_)[size_++] = value;
  }

  /// Shrinks, or grows with value-initialized elements.
  void resize(std::size_t n) {
    if (n > size_) {
      reserve(n);
      for (std::size_t i = size_; i < n; ++i) pool_->at(off_)[i] = T{};
    }
    size_ = static_cast<std::uint32_t>(n);
  }

  template <typename It>
  void assign(It first, It last) {
    const std::size_t n = static_cast<std::size_t>(last - first);
    if (n > cap_) {
      // Content is replaced wholesale: skip the reserve() copy of the
      // old elements by dropping the span before regrowing.
      pool_->release(cap_);
      cap_ = 0;
      size_ = 0;
      off_ = pool_->allocate(static_cast<std::uint32_t>(std::max<std::size_t>(n, 4)));
      cap_ = static_cast<std::uint32_t>(std::max<std::size_t>(n, 4));
    }
    T* dst = pool_->at(off_);
    for (std::size_t i = 0; i < n; ++i) dst[i] = first[i];
    size_ = static_cast<std::uint32_t>(n);
  }

  // --- compaction interface (protocol-side re-pack only) --------------
  // The compaction pass moves the bytes itself and resets the pool's
  // counters wholesale, so these mutators bypass release accounting.
  [[nodiscard]] std::uint32_t offset() const noexcept { return off_; }
  void compacted_to(std::uint32_t new_off) noexcept {
    off_ = new_off;
    cap_ = size_;  // compaction drops slack
  }
  void drop_empty_span() noexcept {
    off_ = 0;
    cap_ = 0;
  }
  void shift_down(std::uint32_t base) noexcept { off_ -= base; }

 private:
  void release_span() noexcept {
    if (pool_ != nullptr && cap_ != 0) pool_->release(cap_);
    off_ = size_ = cap_ = 0;
  }

  SlabPool<T>* pool_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = 0;
};

}  // namespace ssmwn::core
