// The density metric (Definition 1 of the paper).
//
//   d_p = |{(v,w) ∈ E : v ∈ N_p, w ∈ {p} ∪ N_p}| / |N_p|
//
// i.e. the number of links inside p's closed 1-neighborhood that touch at
// least one neighbor of p, normalized by the number of neighbors. Since
// every neighbor contributes its link to p, this is equivalently
//
//   d_p = 1 + e(N_p) / |N_p|
//
// where e(N_p) counts the links among p's neighbors. The metric smooths
// microscopic churn: when one node moves in or out of N_p the degree jumps
// by 1, but the density moves by O(1/|N_p|).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ssmwn::core {

/// Density of a single node; 0 by convention for isolated nodes (they are
/// trivially their own cluster-heads, so the value never competes).
[[nodiscard]] double node_density(const graph::Graph& g, graph::NodeId p);

/// Densities of all nodes. O(sum_p deg(p) * avg_deg) via sorted-adjacency
/// intersections.
[[nodiscard]] std::vector<double> compute_densities(const graph::Graph& g);

/// Number of edges among the members of `nodes` (each counted once),
/// computed against `g`. Exposed for the distributed density rule, which
/// evaluates the same count over cached neighbor lists.
[[nodiscard]] std::size_t edges_among(const graph::Graph& g,
                                      std::span<const graph::NodeId> nodes);

}  // namespace ssmwn::core
