// The distributed, self-stabilizing density-clustering protocol.
//
// This is the message-passing realization of the paper's Section 4: every
// node holds the shared variables Id_p (its DAG name), d_p (density) and
// H(p) (chosen cluster-head), periodically broadcasts them together with a
// digest of its cached 1-neighborhood (the Herman–Tixeuil shared-variable
// propagation scheme, which is what gives each node its 2-neighborhood
// view), and repeatedly executes the guarded rules
//
//   N1: true → Id_p := newId(Id_p)          (constant-height DAG renaming)
//   R1: true → d_p  := density               (Definition 1, from caches)
//   R2: true → H(p) := clusterHead           (≺-max election + fusion)
//
// against whatever its caches currently contain. Nothing is assumed about
// the initial state: caches may hold garbage, shared variables arbitrary
// values — the protocol converges to the configuration computed by the
// synchronous oracle (`cluster_by_metric`) regardless, which is exactly
// the self-stabilization property the paper proves. Knowledge follows the
// paper's Table 2 schedule: neighbors after 1 step, density after 2,
// parent after 3, head after 3 + tree depth.
//
// The class implements the Protocol concept of sim::Network.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/dag_ids.hpp"
#include "core/flat_cache.hpp"
#include "core/options.hpp"
#include "core/rank.hpp"
#include "graph/graph.hpp"
#include "stabilize/rules.hpp"
#include "topology/ids.hpp"
#include "util/rng.hpp"

namespace ssmwn::core {

/// One cached-neighbor summary relayed inside a frame; receivers use these
/// to reconstruct adjacency among their neighbors (for R1) and to spot
/// cluster-heads at 2 hops (for the fusion rule).
struct NeighborDigest {
  topology::ProtocolId id = 0;
  std::uint64_t dag_id = 0;
  double metric = 0.0;
  bool metric_valid = false;
  bool is_head = false;
};

/// The broadcast payload: the sender's shared variables plus its digest of
/// its own 1-neighborhood (sorted by id).
struct ProtocolFrame {
  topology::ProtocolId id = 0;
  std::uint64_t dag_id = 0;
  double metric = 0.0;
  bool metric_valid = false;
  topology::ProtocolId head = 0;
  bool head_valid = false;
  std::vector<NeighborDigest> digests;
};

/// The fixed-size part of a frame, used by the arena step engine: the
/// variable-length digest list lives in a flat pool owned by the engine
/// and travels alongside as a span. Same wire content as ProtocolFrame.
struct ProtocolFrameHeader {
  topology::ProtocolId id = 0;
  std::uint64_t dag_id = 0;
  double metric = 0.0;
  bool metric_valid = false;
  topology::ProtocolId head = 0;
  bool head_valid = false;
};

/// Which metric rule R1 computes. The paper's algorithm is Density; the
/// conclusion notes the whole self-stabilizing construction applies to
/// other local metrics "as for instance the node's degree", which
/// Degree realizes (and the tests verify against the degree oracle).
enum class ElectionMetric {
  Density,
  Degree,
};

struct ProtocolConfig {
  ClusterOptions cluster;

  ElectionMetric metric = ElectionMetric::Density;

  /// |γ| for the DAG names; 0 = auto (δ² + 1 from `delta_hint`).
  std::uint64_t dag_name_space = 0;
  DagRedrawPolicy dag_policy = DagRedrawPolicy::SmallerUidRedraws;
  /// Max degree hint used only to size the auto name space. The protocol
  /// itself never needs δ; the paper assumes it is a known deployment
  /// constant.
  std::uint64_t delta_hint = 16;

  /// Steps without hearing a neighbor before its cache entry is evicted;
  /// tolerates frame loss (τ < 1) while still tracking topology changes.
  std::uint32_t cache_max_age = 8;
};

class DensityProtocol {
 public:
  struct CacheEntry {
    std::uint64_t dag_id = 0;
    double metric = 0.0;
    bool metric_valid = false;
    topology::ProtocolId head = 0;
    bool head_valid = false;
    std::vector<NeighborDigest> digests;  // sorted by id
    std::uint32_t age = 0;
  };

  /// Full per-node state; public so tests and the fault injector can
  /// reach every bit of it ("arbitrary initial state" means all of this).
  struct NodeState {
    topology::ProtocolId uid = 0;
    std::uint64_t dag_id = 0;
    double metric = 0.0;
    bool metric_valid = false;
    topology::ProtocolId head = 0;
    bool head_valid = false;
    topology::ProtocolId parent = 0;
    bool parent_valid = false;
    /// Sorted by id — same iteration order as the std::map it replaced,
    /// but contiguous, so the per-step rule sweeps stream memory.
    FlatMap<topology::ProtocolId, CacheEntry> cache;
    util::Rng rng{0};
    /// Async-engine observability (fed by `on_delivery`, untouched by
    /// the synchronous engines): virtual time of the last frame heard
    /// (< 0 = never) and total frames heard.
    double last_heard_s = -1.0;
    std::uint64_t deliveries = 0;
  };

  /// `uids[p]` is node p's globally-unique protocol identifier; `rng`
  /// seeds the per-node generators used by the DAG renaming rule.
  DensityProtocol(topology::IdAssignment uids, ProtocolConfig config,
                  util::Rng rng);

  // --- sim::Network protocol concept ---------------------------------
  using Frame = ProtocolFrame;
  [[nodiscard]] Frame make_frame(graph::NodeId sender) const;
  void deliver(graph::NodeId receiver, const Frame& frame);
  void tick(graph::NodeId node);
  void end_step(graph::NodeId node);

  // --- arena step-engine concept (zero-alloc hot path) -----------------
  // sim::Network detects these via `if constexpr` and then builds frames
  // into preallocated flat buffers instead of heap-owning ProtocolFrames.
  using FrameHeader = ProtocolFrameHeader;
  using Digest = NeighborDigest;
  /// Number of digest slots `make_frame` will fill for `sender` right now
  /// (its current cache size); the engine sizes the pool from these.
  [[nodiscard]] std::size_t digest_count(graph::NodeId sender) const {
    return states_[sender].cache.size();
  }
  /// Arena overload: writes the shared variables into `header` and
  /// exactly `digest_count(sender)` digests into `digests`.
  void make_frame(graph::NodeId sender, FrameHeader& header,
                  std::span<Digest> digests) const;
  /// Arena overload of `deliver`; digest storage is only borrowed for the
  /// duration of the call (the cache copies what it keeps).
  void deliver(graph::NodeId receiver, const FrameHeader& header,
               std::span<const Digest> digests);

  // --- dynamic-topology concept (sim::TopologyAwareProtocol) -----------
  /// Link-severed notification from a live topology change: each
  /// endpoint immediately evicts its cache entry for the other, so the
  /// next rule firing computes on the post-perturbation neighborhood
  /// instead of a ghost link (the entry would otherwise linger up to
  /// `cache_max_age` rounds). Deterministic, engine-agnostic; new links
  /// need no notification — the first heard frame creates the entry.
  void on_edge_removed(graph::NodeId a, graph::NodeId b);

  // --- async-engine concept (sim::TimestampedProtocol) -----------------
  /// Per-delivery timestamp hook: the event-driven engine calls this
  /// with the delivery's virtual time (seconds) immediately before
  /// `deliver`. The protocol's behavior stays delivery-based — the
  /// timestamp only feeds the NodeState observability fields, so tests
  /// and metrics can ask *when* a node last heard anything.
  void on_delivery(graph::NodeId receiver, double time_s) {
    NodeState& s = states_[receiver];
    s.last_heard_s = time_s;
    ++s.deliveries;
  }

  // --- observation ----------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept {
    return states_.size();
  }
  [[nodiscard]] const NodeState& state(graph::NodeId p) const {
    return states_[p];
  }
  [[nodiscard]] NodeState& mutable_state(graph::NodeId p) {
    return states_[p];
  }
  [[nodiscard]] const ProtocolConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t name_space() const noexcept {
    return name_space_;
  }

  /// is_head flags (H(p) == Id_p) per graph index.
  [[nodiscard]] std::vector<char> head_flags() const;
  /// H(p) per graph index (protocol ids); head_valid must be checked via
  /// `state()` for transient reads.
  [[nodiscard]] std::vector<topology::ProtocolId> head_values() const;
  [[nodiscard]] std::vector<topology::ProtocolId> parent_values() const;
  [[nodiscard]] std::vector<double> metrics() const;
  [[nodiscard]] std::vector<std::uint64_t> dag_id_values() const;

  // --- perturbation (self-stabilization experiments) ------------------
  /// Overwrites every shared variable of every node with random values and
  /// stuffs caches with garbage entries (including phantom neighbors) —
  /// the "arbitrary initial state" a self-stabilizing algorithm must
  /// recover from.
  void corrupt_all(util::Rng& rng);
  /// Same, but only for each node independently with probability
  /// `fraction`. Returns how many nodes were hit.
  std::size_t corrupt_fraction(util::Rng& rng, double fraction);
  /// Resets a node to its freshly-booted state (empty caches, invalid
  /// variables) — models a crash/reboot.
  void reset_node(graph::NodeId p);

 private:
  [[nodiscard]] NodeRank self_rank(const NodeState& s) const;
  [[nodiscard]] NodeRank entry_rank(topology::ProtocolId id,
                                    const CacheEntry& e) const;
  [[nodiscard]] NodeRank digest_rank(const NeighborDigest& d) const;

  void rule_n1(NodeState& s);
  void rule_r1(NodeState& s);
  void rule_r2(NodeState& s);

  topology::IdAssignment uids_;
  ProtocolConfig config_;
  std::uint64_t name_space_ = 1;
  std::vector<NodeState> states_;
  stabilize::RuleEngine<NodeState> engine_;
};

}  // namespace ssmwn::core
