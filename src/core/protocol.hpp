// The distributed, self-stabilizing density-clustering protocol.
//
// This is the message-passing realization of the paper's Section 4: every
// node holds the shared variables Id_p (its DAG name), d_p (density) and
// H(p) (chosen cluster-head), periodically broadcasts them together with a
// digest of its cached 1-neighborhood (the Herman–Tixeuil shared-variable
// propagation scheme, which is what gives each node its 2-neighborhood
// view), and repeatedly executes the guarded rules
//
//   N1: true → Id_p := newId(Id_p)          (constant-height DAG renaming)
//   R1: true → d_p  := density               (Definition 1, from caches)
//   R2: true → H(p) := clusterHead           (≺-max election + fusion)
//
// against whatever its caches currently contain. Nothing is assumed about
// the initial state: caches may hold garbage, shared variables arbitrary
// values — the protocol converges to the configuration computed by the
// synchronous oracle (`cluster_by_metric`) regardless, which is exactly
// the self-stabilization property the paper proves. Knowledge follows the
// paper's Table 2 schedule: neighbors after 1 step, density after 2,
// parent after 3, head after 3 + tree depth.
//
// State layout: the seven hot shared variables live structure-of-arrays
// in core::NodeScalars (soa_state.hpp) so population-wide scans and the
// per-step snapshot/diff kernels vectorize; the cold per-node state
// (neighbor cache, RNG, async observability) stays array-of-structs in
// NodeAux. `NodeState` — the type the rules, tests and the fault
// injector all manipulate — is a *view*: a bundle of references into
// both stores. Views are returned by value; bind them as `auto s =` or
// `const auto& s =` (lifetime extension keeps the temporary alive; the
// referenced storage is the protocol's own and outlives any observer).
//
// The class implements the Protocol concept of sim::Network, plus the
// quiescence extension (sim::QuiescentProtocol) the dirty-region
// steppers use: with activity tracking enabled it detects, per node and
// per step, whether anything rule-relevant changed — delivered frame
// content, own shared variables, cache aging/eviction — and exposes the
// verdict through `consume_activity` / `maybe_tick`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/dag_ids.hpp"
#include "core/flat_cache.hpp"
#include "core/options.hpp"
#include "core/rank.hpp"
#include "core/slab_pool.hpp"
#include "core/soa_state.hpp"
#include "graph/graph.hpp"
#include "stabilize/rules.hpp"
#include "topology/ids.hpp"
#include "util/rng.hpp"

namespace ssmwn::core {

/// One cached-neighbor summary relayed inside a frame; receivers use these
/// to reconstruct adjacency among their neighbors (for R1) and to spot
/// cluster-heads at 2 hops (for the fusion rule).
struct NeighborDigest {
  topology::ProtocolId id = 0;
  std::uint64_t dag_id = 0;
  double metric = 0.0;
  bool metric_valid = false;
  bool is_head = false;
};

/// Bitwise digest equality (metric compared at the bit level, see
/// double_bits_equal) — the comparison the quiescence change detector
/// and the differential harness both use.
[[nodiscard]] inline bool digest_bits_equal(const NeighborDigest& a,
                                            const NeighborDigest& b) noexcept {
  return a.id == b.id && a.dag_id == b.dag_id &&
         double_bits_equal(a.metric, b.metric) &&
         a.metric_valid == b.metric_valid && a.is_head == b.is_head;
}

/// The broadcast payload: the sender's shared variables plus its digest of
/// its own 1-neighborhood (sorted by id).
struct ProtocolFrame {
  topology::ProtocolId id = 0;
  std::uint64_t dag_id = 0;
  double metric = 0.0;
  bool metric_valid = false;
  topology::ProtocolId head = 0;
  bool head_valid = false;
  std::vector<NeighborDigest> digests;
};

/// The fixed-size part of a frame, used by the arena step engine: the
/// variable-length digest list lives in a flat pool owned by the engine
/// and travels alongside as a span. Same wire content as ProtocolFrame.
struct ProtocolFrameHeader {
  topology::ProtocolId id = 0;
  std::uint64_t dag_id = 0;
  double metric = 0.0;
  bool metric_valid = false;
  topology::ProtocolId head = 0;
  bool head_valid = false;
};

/// Which metric rule R1 computes. The paper's algorithm is Density; the
/// conclusion notes the whole self-stabilizing construction applies to
/// other local metrics "as for instance the node's degree", which
/// Degree realizes (and the tests verify against the degree oracle).
enum class ElectionMetric {
  Density,
  Degree,
};

/// Per-node digest storage: one slab pool per node, spans handed out to
/// that node's cache entries (see slab_pool.hpp).
using DigestPool = SlabPool<NeighborDigest>;
using DigestList = PooledList<NeighborDigest>;

/// How rule R1 obtains e(N_p), the believed-link count among cached
/// neighbors. The three modes compute bit-identical metrics; they differ
/// only in cost and checking.
enum class DensityMaintenance {
  /// Maintained per-node count, updated by delta on every cache
  /// mutation; R1 is O(1). Falls back to one full recompute after any
  /// external mutation (fault injection, `mutable_state`). The default.
  kIncremental,
  /// The pre-maintenance cost model: every R1 firing recomputes the
  /// pairwise count from the digest lists. The debug oracle the
  /// differential gate runs the incremental mode against.
  kRecompute,
  /// Incremental *and* recompute every firing, throwing std::logic_error
  /// on any mismatch — the self-checking mode. `SSMWN_CHECK_DENSITY=1`
  /// upgrades kIncremental to this at construction.
  kChecked,
};

struct ProtocolConfig {
  ClusterOptions cluster;

  ElectionMetric metric = ElectionMetric::Density;

  /// |γ| for the DAG names; 0 = auto (δ² + 1 from `delta_hint`).
  std::uint64_t dag_name_space = 0;
  DagRedrawPolicy dag_policy = DagRedrawPolicy::SmallerUidRedraws;
  /// Max degree hint used only to size the auto name space. The protocol
  /// itself never needs δ; the paper assumes it is a known deployment
  /// constant.
  std::uint64_t delta_hint = 16;

  /// Steps without hearing a neighbor before its cache entry is evicted;
  /// tolerates frame loss (τ < 1) while still tracking topology changes.
  std::uint32_t cache_max_age = 8;

  /// e(N_p) cost model for R1 (Density metric only; bit-identical
  /// results in every mode).
  DensityMaintenance density_maintenance = DensityMaintenance::kIncremental;
};

class DensityProtocol {
 public:
  struct CacheEntry {
    std::uint64_t dag_id = 0;
    double metric = 0.0;
    bool metric_valid = false;
    topology::ProtocolId head = 0;
    bool head_valid = false;
    /// Sorted by id; a span into the owning node's digest pool. Entries
    /// are move-only as a consequence (see slab_pool.hpp).
    DigestList digests;
    std::uint32_t age = 0;
    /// Memoized ≺ key for the R2 election: pack_rank(entry_rank(id, *this))
    /// when metric_valid, the below-everything sentinel otherwise (so
    /// invalid entries lose every arg-max without a branch). Maintained on
    /// every internal write (deliver/deliver_payload/deliver_delta);
    /// external mutation clears the owning node's ranks_fresh_ flag and
    /// the next R2 firing repacks the whole cache. Like links_among_,
    /// this is a memoization, not protocol state — the differential
    /// harness does not compare it.
    PackedRank rank_key{};
  };

  /// Cold per-node state: everything that is not one of the seven hot
  /// scalars. Kept array-of-structs — the cache dominates and is
  /// variable-sized anyway.
  struct NodeAux {
    /// Slab storage for every digest list in this node's cache. Behind a
    /// unique_ptr so its address is stable when NodeAux itself moves
    /// (the cache entries hold pointers to it). Declared before the
    /// cache: entry destructors release their spans into it.
    std::unique_ptr<DigestPool> digest_pool = std::make_unique<DigestPool>();
    /// Sorted by id — same iteration order as the std::map it replaced,
    /// but contiguous, so the per-step rule sweeps stream memory.
    FlatMap<topology::ProtocolId, CacheEntry> cache;
    util::Rng rng{0};
    /// Async-engine observability (fed by `on_delivery`, untouched by
    /// the synchronous engines): virtual time of the last frame heard
    /// (< 0 = never) and total frames heard.
    double last_heard_s = -1.0;
    std::uint64_t deliveries = 0;
  };

  /// Mutable view of one node's full state; public so tests and the
  /// fault injector can reach every bit of it ("arbitrary initial
  /// state" means all of this). Members are references into the SoA
  /// columns and the cold store — copy the view freely, it stays a
  /// window onto the same node.
  struct NodeState {
    const topology::ProtocolId& uid;
    std::uint64_t& dag_id;
    double& metric;
    std::uint8_t& metric_valid;
    topology::ProtocolId& head;
    std::uint8_t& head_valid;
    topology::ProtocolId& parent;
    std::uint8_t& parent_valid;
    FlatMap<topology::ProtocolId, CacheEntry>& cache;
    util::Rng& rng;
    double& last_heard_s;
    std::uint64_t& deliveries;
    /// Maintained e(N_p). Writable so fault injectors can corrupt it;
    /// `mutable_state()` already marked the count stale, so whatever is
    /// written here is recomputed away at the node's next R1 firing.
    std::uint64_t& links_among;
    /// The node's digest slab; planting cache entries by hand requires
    /// `entry.digests.attach(s.digest_pool)` before writing the list.
    DigestPool& digest_pool;
    /// Graph index of this node (uids map to protocol ids, not indices).
    graph::NodeId node;
  };

  /// Read-only counterpart of NodeState, returned by `state()`.
  struct ConstNodeState {
    const topology::ProtocolId& uid;
    const std::uint64_t& dag_id;
    const double& metric;
    const std::uint8_t& metric_valid;
    const topology::ProtocolId& head;
    const std::uint8_t& head_valid;
    const topology::ProtocolId& parent;
    const std::uint8_t& parent_valid;
    const FlatMap<topology::ProtocolId, CacheEntry>& cache;
    const util::Rng& rng;
    const double& last_heard_s;
    const std::uint64_t& deliveries;
    const std::uint64_t& links_among;
    const DigestPool& digest_pool;
    graph::NodeId node;
  };

  /// `uids[p]` is node p's globally-unique protocol identifier; `rng`
  /// seeds the per-node generators used by the DAG renaming rule.
  DensityProtocol(topology::IdAssignment uids, ProtocolConfig config,
                  util::Rng rng);

  // --- sim::Network protocol concept ---------------------------------
  using Frame = ProtocolFrame;
  [[nodiscard]] Frame make_frame(graph::NodeId sender) const;
  void deliver(graph::NodeId receiver, const Frame& frame);
  void tick(graph::NodeId node);
  void end_step(graph::NodeId node);

  // --- arena step-engine concept (zero-alloc hot path) -----------------
  // sim::Network detects these via `if constexpr` and then builds frames
  // into preallocated flat buffers instead of heap-owning ProtocolFrames.
  using FrameHeader = ProtocolFrameHeader;
  using Digest = NeighborDigest;
  /// Number of digest slots `make_frame` will fill for `sender` right now
  /// (its current cache size); the engine sizes the pool from these.
  [[nodiscard]] std::size_t digest_count(graph::NodeId sender) const {
    return aux_[sender].cache.size();
  }
  /// Arena overload: writes the shared variables into `header` and
  /// exactly `digest_count(sender)` digests into `digests`.
  void make_frame(graph::NodeId sender, FrameHeader& header,
                  std::span<Digest> digests) const;
  /// Arena overload of `deliver`; digest storage is only borrowed for the
  /// duration of the call (the cache copies what it keeps).
  void deliver(graph::NodeId receiver, const FrameHeader& header,
               std::span<const Digest> digests);

  // --- redelivery concept (sim::RedeliveryProtocol) --------------------
  /// Fast path for a frame the engine proved bit-identical to the one
  /// this receiver already consumed: only the delivery's bookkeeping
  /// side effect remains (the cache entry's age resets). Returns false —
  /// demanding the full compare path — when the entry is missing or the
  /// receiver's cache was externally mutated since the last full sweep
  /// (the engine's proof says nothing about state planted by a fault
  /// injector).
  bool redeliver_unchanged(graph::NodeId receiver, const FrameHeader& header);
  /// Fast path for a frame whose *id sequence* the engine proved
  /// unchanged since this receiver last consumed it (payloads — DAG ids,
  /// metrics, head bits — may differ): e(N_p) depends only on which ids
  /// each digest list names, so the delta walk and the compare both
  /// vanish and the delivery collapses to a straight payload overwrite.
  /// Returns false — demanding the full compare path — when the entry is
  /// missing, its stored list disagrees with the engine's proof, the
  /// receiver was externally mutated since the last full sweep, or
  /// activity tracking needs the compare's change bits.
  bool deliver_payload(graph::NodeId receiver, const FrameHeader& header,
                       std::span<const Digest> digests);
  /// Fast path for a delta-encoded frame: the engine proved the sender's
  /// id sequence unchanged since this receiver last consumed it and ships
  /// only the digests whose payload bits changed (`changed`, sorted by
  /// id) plus the full header; `row_size` is the length of the full row
  /// the delta patches. The stored list is patched in place (one
  /// galloping merge walk, util::patch_sorted) — e(N_p) and the link
  /// structure cannot move because no id did. Returns false — demanding
  /// a fuller path — when the entry is missing, the stored list's length
  /// disagrees with `row_size`, a changed id is absent from the stored
  /// list, the receiver was externally mutated since the last full
  /// sweep, or activity tracking needs the compare's change bits. A
  /// declined call may leave already-matched digests patched; every
  /// fallback path (deliver_payload, deliver) rewrites the whole list,
  /// so the partial patch is never observable.
  bool deliver_delta(graph::NodeId receiver, const FrameHeader& header,
                     std::size_t row_size, std::span<const Digest> changed);
  /// Id-projection equality for the engine-side row compare backing
  /// `deliver_payload`.
  [[nodiscard]] static bool digest_id_equal(const Digest& a,
                                            const Digest& b) noexcept {
    return a.id == b.id;
  }
  /// Bitwise frame-header equality, the engine side of the redelivery
  /// contract (field-wise — padding bytes never participate).
  [[nodiscard]] static bool header_bits_equal(
      const FrameHeader& a, const FrameHeader& b) noexcept {
    return a.id == b.id && a.dag_id == b.dag_id &&
           double_bits_equal(a.metric, b.metric) &&
           a.metric_valid == b.metric_valid && a.head == b.head &&
           a.head_valid == b.head_valid;
  }
  /// Digest counterpart; forwards to the namespace-scope predicate the
  /// change detector and differential harness already use.
  [[nodiscard]] static bool digest_bits_equal(const Digest& a,
                                              const Digest& b) noexcept {
    return core::digest_bits_equal(a, b);
  }

  // --- dynamic-topology concept (sim::TopologyAwareProtocol) -----------
  /// Link-severed notification from a live topology change: each
  /// endpoint immediately evicts its cache entry for the other, so the
  /// next rule firing computes on the post-perturbation neighborhood
  /// instead of a ghost link (the entry would otherwise linger up to
  /// `cache_max_age` rounds). Deterministic, engine-agnostic; new links
  /// need no notification — the first heard frame creates the entry.
  void on_edge_removed(graph::NodeId a, graph::NodeId b);

  // --- async-engine concept (sim::TimestampedProtocol) -----------------
  /// Per-delivery timestamp hook: the event-driven engine calls this
  /// with the delivery's virtual time (seconds) immediately before
  /// `deliver`. The protocol's behavior stays delivery-based — the
  /// timestamp only feeds the NodeState observability fields, so tests
  /// and metrics can ask *when* a node last heard anything.
  void on_delivery(graph::NodeId receiver, double time_s) {
    NodeAux& aux = aux_[receiver];
    aux.last_heard_s = time_s;
    ++aux.deliveries;
  }

  // --- quiescence concept (sim::QuiescentProtocol) ----------------------
  /// What a node did during the step that just ran, from the point of
  /// view of the dirty-region stepper: did any rule-relevant part of its
  /// own state change (it must step again), and did any frame-visible
  /// part change (its neighbors must step too — knowledge travels one
  /// hop per step, so one hop of wake-up is exactly enough).
  struct Activity {
    bool state_changed = false;
    bool frame_changed = false;
  };

  /// Turns per-node change detection on or off. Off (the default) the
  /// hot paths are exactly the classic ones — `deliver` overwrites
  /// without comparing, `tick` sweeps without snapshotting. Turning it
  /// on (re)arms every node as pending, so the first tracked step is
  /// always a full one.
  void set_activity_tracking(bool on);
  [[nodiscard]] bool activity_tracking() const noexcept { return tracking_; }

  /// Sweeps the guarded rules unless the sweep is provably a no-op: the
  /// previous sweep changed nothing (`self-stable`) and no input changed
  /// since (no differing frame content, no eviction, no external
  /// mutation). Returns true iff the sweep ran. With tracking disabled
  /// this is exactly `tick`.
  bool maybe_tick(graph::NodeId node);

  /// Returns and clears the node's accumulated activity flags for the
  /// step that just completed. Only meaningful with tracking enabled.
  [[nodiscard]] Activity consume_activity(graph::NodeId node);

  /// Nodes whose state was mutated from outside the step loop since the
  /// last call (fault injection, `mutable_state`, severed links). The
  /// dirty-region stepper drains this before each step and wakes each
  /// listed node together with its closed neighborhood — in full
  /// stepping those neighbors would hear the mutated frame that same
  /// step, so the wake must not lag by one. Sorted ascending.
  [[nodiscard]] std::vector<graph::NodeId> take_external_wakes();

  // --- observation ----------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept {
    return aux_.size();
  }
  [[nodiscard]] ConstNodeState state(graph::NodeId p) const {
    return const_view(p);
  }
  /// Mutable access for tests and fault injectors. With tracking on,
  /// conservatively marks the node externally dirty (any field may be
  /// about to change).
  [[nodiscard]] NodeState mutable_state(graph::NodeId p) {
    externally_touched(p);
    // Any field — the cache and digest lists included — may be about to
    // change, so the maintained link count can no longer be trusted; the
    // node's next R1 firing recomputes it from scratch. This is the
    // self-stabilization story for the maintained count itself: external
    // writes cannot plant a stale-but-trusted value.
    links_fresh_[p] = 0;
    // Same story for the engines' redelivery fast path: the cache may be
    // about to stop matching what perfect delivery implies, so the next
    // sweep must run full compares for this receiver (cleared by that
    // sweep's end_step).
    resync_[p] = 1;
    // And for the memoized ≺ keys: the next R2 firing repacks the whole
    // cache before electing.
    ranks_fresh_[p] = 0;
    return view(p);
  }
  [[nodiscard]] const ProtocolConfig& config() const noexcept {
    return config_;
  }
  /// The resolved e(N_p) cost model (config, possibly upgraded to
  /// kChecked by SSMWN_CHECK_DENSITY at construction).
  [[nodiscard]] DensityMaintenance density_maintenance() const noexcept {
    return maintenance_;
  }
  /// True iff node p's maintained link count currently carries the
  /// invariant (== pairwise recompute over its cache). Test/debug hook.
  [[nodiscard]] bool links_count_fresh(graph::NodeId p) const noexcept {
    return links_fresh_[p] != 0;
  }
  [[nodiscard]] std::uint64_t name_space() const noexcept {
    return name_space_;
  }
  /// The hot shared-variable columns, for population-scan kernels and
  /// the bitwise divergence search.
  [[nodiscard]] const NodeScalars& scalars() const noexcept { return cols_; }

  /// is_head flags (H(p) == Id_p) per graph index.
  [[nodiscard]] std::vector<char> head_flags() const;
  /// H(p) per graph index (protocol ids); head_valid must be checked via
  /// `state()` for transient reads.
  [[nodiscard]] std::vector<topology::ProtocolId> head_values() const;
  [[nodiscard]] std::vector<topology::ProtocolId> parent_values() const;
  [[nodiscard]] std::vector<double> metrics() const;
  [[nodiscard]] std::vector<std::uint64_t> dag_id_values() const;

  // --- perturbation (self-stabilization experiments) ------------------
  /// Overwrites every shared variable of every node with random values and
  /// stuffs caches with garbage entries (including phantom neighbors) —
  /// the "arbitrary initial state" a self-stabilizing algorithm must
  /// recover from.
  void corrupt_all(util::Rng& rng);
  /// Same, but only for each node independently with probability
  /// `fraction`. Returns how many nodes were hit.
  std::size_t corrupt_fraction(util::Rng& rng, double fraction);
  /// Resets a node to its freshly-booted state (empty caches, invalid
  /// variables) — models a crash/reboot.
  void reset_node(graph::NodeId p);

 private:
  [[nodiscard]] NodeState view(graph::NodeId p) {
    return NodeState{uids_[p],
                     cols_.dag_id[p],
                     cols_.metric[p],
                     cols_.metric_valid[p],
                     cols_.head[p],
                     cols_.head_valid[p],
                     cols_.parent[p],
                     cols_.parent_valid[p],
                     aux_[p].cache,
                     aux_[p].rng,
                     aux_[p].last_heard_s,
                     aux_[p].deliveries,
                     links_among_[p],
                     *aux_[p].digest_pool,
                     p};
  }
  [[nodiscard]] ConstNodeState const_view(graph::NodeId p) const {
    return ConstNodeState{uids_[p],
                          cols_.dag_id[p],
                          cols_.metric[p],
                          cols_.metric_valid[p],
                          cols_.head[p],
                          cols_.head_valid[p],
                          cols_.parent[p],
                          cols_.parent_valid[p],
                          aux_[p].cache,
                          aux_[p].rng,
                          aux_[p].last_heard_s,
                          aux_[p].deliveries,
                          links_among_[p],
                          *aux_[p].digest_pool,
                          p};
  }

  [[nodiscard]] NodeRank self_rank(const NodeState& s) const;
  [[nodiscard]] NodeRank entry_rank(topology::ProtocolId id,
                                    const CacheEntry& e) const;
  [[nodiscard]] NodeRank digest_rank(const NeighborDigest& d) const;
  /// The memoized key an entry must carry: its packed rank when valid,
  /// the sentinel otherwise.
  [[nodiscard]] PackedRank entry_key(topology::ProtocolId id,
                                     const CacheEntry& e) const {
    return e.metric_valid
               ? pack_rank(entry_rank(id, e), config_.cluster.incumbency)
               : PackedRank{};
  }

  void rule_n1(NodeState& s);
  void rule_r1(NodeState& s);
  void rule_r2(NodeState& s);

  /// Marks a node as mutated outside the step loop (tracking only):
  /// pending, not self-stable, both step flags raised, queued for
  /// `take_external_wakes`.
  void externally_touched(graph::NodeId p);
  void tracked_tick(graph::NodeId node);

  topology::IdAssignment uids_;
  ProtocolConfig config_;
  std::uint64_t name_space_ = 1;
  NodeScalars cols_;
  std::vector<NodeAux> aux_;
  stabilize::RuleEngine<NodeState> engine_;

  // --- incremental e(N_p) maintenance ---------------------------------
  /// Resolved cost model (config_.density_maintenance, possibly upgraded
  /// to kChecked by the SSMWN_CHECK_DENSITY env knob).
  DensityMaintenance maintenance_ = DensityMaintenance::kIncremental;
  /// Deltas are applied iff this is set: Density metric and a
  /// maintaining mode (kIncremental/kChecked).
  bool maintain_links_ = true;
  /// Maintained believed-link count e(N_p) per node. Invariant: when
  /// links_fresh_[p] is set, links_among_[p] equals the pairwise
  /// recompute over p's current cache (a pair q,r counts iff either
  /// digest list names the other). Not protocol state — a memoization —
  /// so the differential harness does not compare it.
  std::vector<std::uint64_t> links_among_;
  /// Cleared by any external mutation (mutable_state, corrupt_*,
  /// reset_node); set again by the first R1 recompute afterwards. Kept
  /// internal so fault injectors cannot forge trust in a planted count.
  std::vector<std::uint8_t> links_fresh_;
  /// Set by any external mutation; while set, `redeliver_unchanged`
  /// declines so the next sweep's full compares resync this receiver's
  /// cache. Cleared by `end_step` (which runs after that sweep).
  std::vector<std::uint8_t> resync_;
  /// Memoized-≺-key counterpart of links_fresh_: when set, every cache
  /// entry of p carries rank_key == entry_key(...). Cleared by external
  /// mutation; restored by the repack at the next R2 firing. Internal
  /// writes keep keys correct regardless of the flag (the key is a pure
  /// function of the entry, recomputed whenever one is written).
  std::vector<std::uint8_t> ranks_fresh_;

  // --- quiescence machinery (all empty / untouched while tracking_ is
  // off, so the classic engines pay nothing) ---------------------------
  bool tracking_ = false;
  /// An input changed since the last sweep; the next sweep must run.
  std::vector<std::uint8_t> pending_;
  /// The last sweep changed none of the node's shared variables.
  std::vector<std::uint8_t> stable_;
  /// Step-scoped: some rule-relevant state changed this step.
  std::vector<std::uint8_t> step_state_changed_;
  /// Step-scoped: some frame-visible state changed this step.
  std::vector<std::uint8_t> step_frame_changed_;
  std::vector<std::uint8_t> external_mark_;
  std::vector<graph::NodeId> external_list_;
};

// --- differential-harness helpers ------------------------------------

/// True iff node `p` holds bit-identical state in both protocols:
/// shared variables, full cache contents (including ages and relayed
/// digests), RNG state and the async observability fields.
[[nodiscard]] bool node_states_bitwise_equal(const DensityProtocol& a,
                                             const DensityProtocol& b,
                                             graph::NodeId p);

/// First node whose state differs bitwise, or nullopt when the two
/// populations are identical. Scans the SoA columns first (vectorized),
/// then the cold state of candidate rows.
[[nodiscard]] std::optional<graph::NodeId> first_divergent_node(
    const DensityProtocol& a, const DensityProtocol& b);

/// Human-readable description of how node `p` differs between the two
/// protocols (field names and both values) — the payload of a
/// divergence report from the equivalence harness.
[[nodiscard]] std::string describe_divergence(const DensityProtocol& a,
                                              const DensityProtocol& b,
                                              graph::NodeId p);

}  // namespace ssmwn::core
