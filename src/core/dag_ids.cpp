#include "core/dag_ids.hpp"

#include <algorithm>
#include <stdexcept>

namespace ssmwn::core {

namespace {

/// newId: keep the current name if no cached neighbor holds it, otherwise
/// draw uniformly from γ minus the neighbors' names.
std::uint64_t new_id(std::uint64_t current,
                     const std::vector<std::uint64_t>& taken,
                     std::uint64_t name_space, util::Rng& rng) {
  if (std::find(taken.begin(), taken.end(), current) == taken.end()) {
    return current;
  }
  // Count free names, then index into them; |taken| ≤ δ < name_space, so
  // at least one free name exists.
  std::vector<std::uint64_t> sorted = taken;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const std::uint64_t free_count = name_space - sorted.size();
  std::uint64_t pick = rng.below(free_count);
  // Map the pick over the gaps left by `sorted`.
  std::uint64_t candidate = pick;
  for (std::uint64_t used : sorted) {
    if (used <= candidate) {
      ++candidate;
    } else {
      break;
    }
  }
  return candidate;
}

}  // namespace

DagResult build_dag_ids(const graph::Graph& g,
                        const topology::IdAssignment& uids,
                        const DagOptions& options, util::Rng& rng) {
  const std::size_t n = g.node_count();
  if (uids.size() != n) {
    throw std::invalid_argument("build_dag_ids: uids size mismatch");
  }
  const std::uint64_t delta = g.max_degree();
  std::uint64_t name_space = options.name_space;
  if (name_space == 0) name_space = delta * delta + 1;  // paper: [0, δ²]
  name_space = std::max<std::uint64_t>(name_space, delta + 1);
  name_space = std::max<std::uint64_t>(name_space, 1);

  DagResult result;
  result.name_space = name_space;
  result.ids.resize(n);
  for (auto& id : result.ids) id = rng.below(name_space);

  std::vector<std::uint64_t> next = result.ids;
  std::vector<std::uint64_t> taken;
  while (result.rounds < options.max_rounds) {
    ++result.rounds;  // one synchronous exchange of names
    bool conflict_found = false;
    for (graph::NodeId p = 0; p < n; ++p) {
      bool must_redraw = false;
      for (graph::NodeId q : g.neighbors(p)) {
        if (result.ids[q] != result.ids[p]) continue;
        conflict_found = true;
        switch (options.policy) {
          case DagRedrawPolicy::N1Randomized:
            must_redraw = true;
            break;
          case DagRedrawPolicy::SmallerUidRedraws:
            if (uids[p] < uids[q]) must_redraw = true;
            break;
        }
        if (must_redraw) break;
      }
      if (must_redraw) {
        taken.clear();
        for (graph::NodeId q : g.neighbors(p)) taken.push_back(result.ids[q]);
        next[p] = new_id(result.ids[p], taken, name_space, rng);
      } else {
        next[p] = result.ids[p];
      }
    }
    if (!conflict_found) {
      result.converged = true;
      return result;
    }
    result.ids.swap(next);
  }
  result.converged = locally_unique(g, result.ids);
  return result;
}

bool locally_unique(const graph::Graph& g,
                    std::span<const std::uint64_t> ids) {
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    for (graph::NodeId q : g.neighbors(p)) {
      if (ids[p] == ids[q]) return false;
    }
  }
  return true;
}

std::size_t dag_height(const graph::Graph& g,
                       std::span<const std::uint64_t> ids) {
  const std::size_t n = g.node_count();
  // Longest path in the DAG where edges run from higher to lower name:
  // process nodes by increasing name; height[p] = 1 + max height of
  // strictly-lower-named neighbors.
  std::vector<graph::NodeId> order(n);
  for (graph::NodeId p = 0; p < n; ++p) order[p] = p;
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) { return ids[a] < ids[b]; });
  std::vector<std::size_t> height(n, 0);
  std::size_t best = 0;
  for (graph::NodeId p : order) {
    for (graph::NodeId q : g.neighbors(p)) {
      if (ids[q] < ids[p]) {
        height[p] = std::max(height[p], height[q] + 1);
      }
    }
    best = std::max(best, height[p]);
  }
  return best;
}

}  // namespace ssmwn::core
