// The ≺ total order on nodes.
//
// Section 4.2 defines: p ≺ q  ⇔  d_p < d_q  ∨  (d_p = d_q ∧ Id_q < Id_p)
// — higher density dominates; ties go to the smaller identifier.
//
// Section 4.3 (incumbency) refines the tie case: an incumbent cluster-head
// beats a non-incumbent of the same density. The paper's predicate is
// silent when *both* tied nodes are incumbents; we complete it with the
// identifier tie-break so ≺ stays total (DESIGN.md deviation D1).
//
// When the constant-height DAG of Section 4.1 is active, the identifier
// compared is the locally-unique DAG name. DAG names may coincide beyond
// 1 hop (the name space is only δ²), so the globally-unique protocol
// identifier remains as a final fallback, keeping ≺ a strict total order
// on any comparison the algorithm performs (including the 2-hop fusion
// checks).
#pragma once

#include <cstdint>
#include <span>

#include "topology/ids.hpp"

namespace ssmwn::core {

/// The ≺-relevant attributes of a node.
struct NodeRank {
  double metric = 0.0;             ///< density (or a baseline metric)
  bool incumbent = false;          ///< currently its own cluster-head
  topology::ProtocolId tie_id = 0; ///< DAG name if in use, else protocol id
  topology::ProtocolId uid = 0;    ///< globally-unique protocol id

  friend bool operator==(const NodeRank&, const NodeRank&) = default;
};

/// True iff p ≺ q (q dominates p). With `incumbency` false this is exactly
/// the Section 4.2 order; with it true, the Section 4.3 refinement.
[[nodiscard]] bool precedes(const NodeRank& p, const NodeRank& q,
                            bool incumbency) noexcept;

/// Index of the ≺-maximum among `ranks` (which must be non-empty).
[[nodiscard]] std::size_t max_rank_index(std::span<const NodeRank> ranks,
                                         bool incumbency) noexcept;

}  // namespace ssmwn::core
