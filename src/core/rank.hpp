// The ≺ total order on nodes.
//
// Section 4.2 defines: p ≺ q  ⇔  d_p < d_q  ∨  (d_p = d_q ∧ Id_q < Id_p)
// — higher density dominates; ties go to the smaller identifier.
//
// Section 4.3 (incumbency) refines the tie case: an incumbent cluster-head
// beats a non-incumbent of the same density. The paper's predicate is
// silent when *both* tied nodes are incumbents; we complete it with the
// identifier tie-break so ≺ stays total (DESIGN.md deviation D1).
//
// When the constant-height DAG of Section 4.1 is active, the identifier
// compared is the locally-unique DAG name. DAG names may coincide beyond
// 1 hop (the name space is only δ²), so the globally-unique protocol
// identifier remains as a final fallback, keeping ≺ a strict total order
// on any comparison the algorithm performs (including the 2-hop fusion
// checks).
//
// ── Packed representation ────────────────────────────────────────────
//
// The four-field comparison above is branchy and the R2 election runs it
// O(deg) (local-max scan) to O(deg²) (fusion blocking scan) times per
// node per step. PackedRank folds the whole order into integers whose
// lexicographic comparison IS ≺:
//
//     key  (64+64 bits, compared as one 128-bit word):
//       [ sortable(metric) : 64 ][ incumbent : 1 ][ ~tie_id : 63 ]
//     sub  (64 bits, consulted only when key ties):
//       [ ~uid : 64 ]
//
// sortable() is the standard order-preserving map from IEEE-754 doubles
// to unsigned integers: flip all bits of negative values, flip only the
// sign bit of non-negative ones. −0.0 is canonicalized to +0.0 before
// mapping (they are IEEE-equal, so ≺ must treat them as a tie). The
// identifier fields are complemented because *smaller* ids dominate.
//
// Domain contract (debug-asserted in pack_rank):
//   · metric is not NaN — ≺ itself is not total on NaN, and nothing in
//     the protocol produces one (densities are finite ratios, fault
//     injectors draw from uniform(0, 8));
//   · tie_id < 2^63 — DAG names live in [0, 2·name_space) and protocol
//     ids are a permutation of [0, n); the 63-bit field is complemented
//     against 2^63−1 so the mapping is exact on that domain.
// uid is exact over all 64 bits. Within one node's cache, entry keys are
// always distinct (unique uids ⇒ distinct sub), so a single arg-max pass
// is order-insensitive and replaces every pairwise election scan.
//
// A value-initialized PackedRank{} is a sentinel strictly below every
// domain key: primary 0 would require metric bits of all-ones, which is
// a negative NaN and thus outside the domain. Columnar reductions use it
// for "no candidate" slots (e.g. cache entries with metric_valid=false).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <span>

#include "topology/ids.hpp"

namespace ssmwn::core {

/// The ≺-relevant attributes of a node.
struct NodeRank {
  double metric = 0.0;             ///< density (or a baseline metric)
  bool incumbent = false;          ///< currently its own cluster-head
  topology::ProtocolId tie_id = 0; ///< DAG name if in use, else protocol id
  topology::ProtocolId uid = 0;    ///< globally-unique protocol id

  friend bool operator==(const NodeRank&, const NodeRank&) = default;
};

/// Order-preserving integer encoding of a NodeRank (see header comment).
/// Lexicographic (hi, lo, sub) comparison is exactly ≺; value-initialized
/// is a below-everything sentinel.
struct PackedRank {
  std::uint64_t hi = 0;   ///< sortable(metric)
  std::uint64_t lo = 0;   ///< [incumbent:1][~tie_id:63]
  std::uint64_t sub = 0;  ///< ~uid, consulted only when (hi,lo) ties

  friend bool operator==(const PackedRank&, const PackedRank&) = default;
};

/// Maps a double to an unsigned integer whose natural order matches the
/// IEEE-754 total order on non-NaN values (−inf < … < −0 = +0 < … < +inf).
[[nodiscard]] inline std::uint64_t sortable_double_bits(double value) noexcept {
  assert(value == value && "NaN metric is outside the ≺ domain");
  // +0.0 and −0.0 compare equal under ≺; canonicalize before mapping.
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value + 0.0);
  constexpr std::uint64_t kSign = std::uint64_t{1} << 63;
  return (bits & kSign) != 0 ? ~bits : bits | kSign;
}

/// Encodes `rank` for the given incumbency mode. With incumbency off the
/// incumbent bit is packed as zero so it cannot influence the order.
[[nodiscard]] inline PackedRank pack_rank(const NodeRank& rank,
                                          bool incumbency) noexcept {
  constexpr std::uint64_t kTieMax = (std::uint64_t{1} << 63) - 1;
  assert(rank.tie_id <= kTieMax && "tie_id outside the 63-bit ≺ domain");
  const std::uint64_t incumbent_bit =
      (incumbency && rank.incumbent) ? (std::uint64_t{1} << 63) : 0;
  return PackedRank{sortable_double_bits(rank.metric),
                    incumbent_bit | (kTieMax - (rank.tie_id & kTieMax)),
                    ~rank.uid};
}

/// True iff p ≺ q on packed keys: one wide integer compare.
[[nodiscard]] inline bool packed_precedes(const PackedRank& p,
                                          const PackedRank& q) noexcept {
#if defined(__SIZEOF_INT128__)
  const auto wide = [](const PackedRank& r) {
    return (static_cast<unsigned __int128>(r.hi) << 64) | r.lo;
  };
  const unsigned __int128 a = wide(p);
  const unsigned __int128 b = wide(q);
  return a != b ? a < b : p.sub < q.sub;
#else
  if (p.hi != q.hi) return p.hi < q.hi;
  if (p.lo != q.lo) return p.lo < q.lo;
  return p.sub < q.sub;
#endif
}

/// True iff p ≺ q (q dominates p). With `incumbency` false this is exactly
/// the Section 4.2 order; with it true, the Section 4.3 refinement.
/// Implemented over the packed encoding — there is exactly one ordering
/// implementation in the codebase (packed_precedes).
[[nodiscard]] bool precedes(const NodeRank& p, const NodeRank& q,
                            bool incumbency) noexcept;

/// Index of the ≺-maximum among `ranks` (which must be non-empty).
/// Packs each element once and reduces with single integer compares.
[[nodiscard]] std::size_t max_rank_index(std::span<const NodeRank> ranks,
                                         bool incumbency) noexcept;

}  // namespace ssmwn::core
