#include "core/protocol.hpp"

#include <algorithm>
#include <sstream>

namespace ssmwn::core {

namespace {

/// Binary search for `id` in a digest vector sorted by id.
bool digest_contains(const std::vector<NeighborDigest>& digests,
                     topology::ProtocolId id) {
  auto it = std::lower_bound(
      digests.begin(), digests.end(), id,
      [](const NeighborDigest& d, topology::ProtocolId key) {
        return d.id < key;
      });
  return it != digests.end() && it->id == id;
}

bool digest_lists_equal(const std::vector<NeighborDigest>& cached,
                        std::span<const NeighborDigest> incoming) {
  if (cached.size() != incoming.size()) return false;
  for (std::size_t i = 0; i < cached.size(); ++i) {
    if (!digest_bits_equal(cached[i], incoming[i])) return false;
  }
  return true;
}

}  // namespace

DensityProtocol::DensityProtocol(topology::IdAssignment uids,
                                 ProtocolConfig config, util::Rng rng)
    : uids_(std::move(uids)), config_(config) {
  name_space_ = config_.dag_name_space;
  if (name_space_ == 0) {
    name_space_ = config_.delta_hint * config_.delta_hint + 1;
  }
  name_space_ = std::max<std::uint64_t>(name_space_, config_.delta_hint + 1);

  cols_.resize(uids_.size());
  aux_.resize(uids_.size());
  for (graph::NodeId p = 0; p < aux_.size(); ++p) {
    aux_[p].rng = rng.split();
    cols_.dag_id[p] = aux_[p].rng.below(name_space_);
  }

  // The paper's program, verbatim as guarded commands. Guards that are
  // plain `true` in the paper stay `true` here; N1's effective guard is
  // the conflict test folded into newId.
  engine_
      .add(
          "N1", [this](const NodeState&) { return config_.cluster.use_dag_ids; },
          [this](NodeState& s) { rule_n1(s); })
      .add(
          "R1", [](const NodeState&) { return true; },
          [this](NodeState& s) { rule_r1(s); })
      .add(
          "R2", [](const NodeState&) { return true; },
          [this](NodeState& s) { rule_r2(s); });
}

void DensityProtocol::make_frame(graph::NodeId sender, FrameHeader& header,
                                 std::span<Digest> digests) const {
  const ConstNodeState s = const_view(sender);
  header.id = s.uid;
  header.dag_id = s.dag_id;
  header.metric = s.metric;
  header.metric_valid = s.metric_valid != 0;
  header.head = s.head;
  header.head_valid = s.head_valid != 0;
  std::size_t i = 0;
  for (const auto& [id, entry] : s.cache) {  // map order: sorted by id
    digests[i++] = NeighborDigest{
        .id = id,
        .dag_id = entry.dag_id,
        .metric = entry.metric,
        .metric_valid = entry.metric_valid,
        .is_head = entry.head_valid && entry.head == id,
    };
  }
}

DensityProtocol::Frame DensityProtocol::make_frame(
    graph::NodeId sender) const {
  Frame frame;
  frame.digests.resize(digest_count(sender));
  FrameHeader header;
  make_frame(sender, header, frame.digests);
  frame.id = header.id;
  frame.dag_id = header.dag_id;
  frame.metric = header.metric;
  frame.metric_valid = header.metric_valid;
  frame.head = header.head;
  frame.head_valid = header.head_valid;
  return frame;
}

void DensityProtocol::deliver(graph::NodeId receiver,
                              const FrameHeader& header,
                              std::span<const Digest> digests) {
  if (header.id == uids_[receiver]) return;  // defensive: never cache oneself
  auto& cache = aux_[receiver].cache;
  if (!tracking_) {
    CacheEntry& entry = cache[header.id];
    entry.dag_id = header.dag_id;
    entry.metric = header.metric;
    entry.metric_valid = header.metric_valid;
    entry.head = header.head;
    entry.head_valid = header.head_valid;
    entry.digests.assign(digests.begin(), digests.end());
    entry.age = 0;
    return;
  }

  // Tracked delivery: compare before overwrite. A differing header means
  // the receiver's *own* next frame changes too (the digest row it
  // relays for this sender is derived from exactly these fields); a
  // difference only in the relayed digest list feeds R1/R2 but never
  // re-enters a frame, so it wakes the receiver without waking the
  // receiver's neighbors.
  auto it = cache.find(header.id);
  bool header_diff;
  bool digests_diff;
  CacheEntry* entry;
  if (it == cache.end()) {
    entry = &cache[header.id];
    header_diff = true;
    digests_diff = true;
  } else {
    entry = &it->second;
    header_diff = entry->dag_id != header.dag_id ||
                  !double_bits_equal(entry->metric, header.metric) ||
                  entry->metric_valid != header.metric_valid ||
                  entry->head != header.head ||
                  entry->head_valid != header.head_valid;
    digests_diff = !digest_lists_equal(entry->digests, digests);
  }
  entry->dag_id = header.dag_id;
  entry->metric = header.metric;
  entry->metric_valid = header.metric_valid;
  entry->head = header.head;
  entry->head_valid = header.head_valid;
  entry->digests.assign(digests.begin(), digests.end());
  entry->age = 0;
  if (header_diff || digests_diff) {
    pending_[receiver] = 1;
    step_state_changed_[receiver] = 1;
  }
  if (header_diff) step_frame_changed_[receiver] = 1;
}

void DensityProtocol::deliver(graph::NodeId receiver, const Frame& frame) {
  const FrameHeader header{
      .id = frame.id,
      .dag_id = frame.dag_id,
      .metric = frame.metric,
      .metric_valid = frame.metric_valid,
      .head = frame.head,
      .head_valid = frame.head_valid,
  };
  deliver(receiver, header, frame.digests);
}

void DensityProtocol::on_edge_removed(graph::NodeId a, graph::NodeId b) {
  if (a >= aux_.size() || b >= aux_.size()) return;
  const auto forget = [this](graph::NodeId node, graph::NodeId gone) {
    auto& cache = aux_[node].cache;
    if (const auto it = cache.find(uids_[gone]); it != cache.end()) {
      cache.erase(it);
      // The evicted digest row vanishes from the node's next frame, so
      // this counts as an external mutation: the node and (via the
      // stepper's closed-neighborhood wake) its neighbors must step.
      externally_touched(node);
    }
  };
  forget(a, b);
  forget(b, a);
}

void DensityProtocol::tick(graph::NodeId node) {
  if (tracking_) {
    tracked_tick(node);
    return;
  }
  NodeState s = view(node);
  engine_.sweep(s);
}

void DensityProtocol::tracked_tick(graph::NodeId node) {
  const ScalarRow before = scalar_row(cols_, node);
  NodeState s = view(node);
  engine_.sweep(s);
  const ScalarRow after = scalar_row(cols_, node);
  const bool frame_diff = frame_scalars_differ(before, after);
  const bool own_diff = !rows_bitwise_equal(before, after);
  if (own_diff) step_state_changed_[node] = 1;
  if (frame_diff) step_frame_changed_[node] = 1;
  stable_[node] = own_diff ? 0 : 1;
  pending_[node] = 0;
}

bool DensityProtocol::maybe_tick(graph::NodeId node) {
  if (!tracking_) {
    tick(node);
    return true;
  }
  // Provably a no-op: the previous sweep left every shared variable
  // unchanged (so it also drew no randomness — N1 only draws when it
  // renames), and no input moved since. Sweeping again would recompute
  // identical values from identical inputs.
  if (!pending_[node] && stable_[node]) return false;
  tracked_tick(node);
  return true;
}

DensityProtocol::Activity DensityProtocol::consume_activity(
    graph::NodeId node) {
  Activity activity{step_state_changed_[node] != 0,
                    step_frame_changed_[node] != 0};
  step_state_changed_[node] = 0;
  step_frame_changed_[node] = 0;
  return activity;
}

void DensityProtocol::set_activity_tracking(bool on) {
  tracking_ = on;
  const std::size_t n = aux_.size();
  if (on) {
    // Every node starts pending: the first tracked step is a full one,
    // after which quiescence is discovered, never assumed.
    pending_.assign(n, 1);
    stable_.assign(n, 0);
    step_state_changed_.assign(n, 0);
    step_frame_changed_.assign(n, 0);
    external_mark_.assign(n, 0);
    external_list_.clear();
  } else {
    pending_.clear();
    stable_.clear();
    step_state_changed_.clear();
    step_frame_changed_.clear();
    external_mark_.clear();
    external_list_.clear();
  }
}

void DensityProtocol::externally_touched(graph::NodeId p) {
  if (!tracking_) return;
  pending_[p] = 1;
  stable_[p] = 0;
  step_state_changed_[p] = 1;
  step_frame_changed_[p] = 1;
  if (!external_mark_[p]) {
    external_mark_[p] = 1;
    external_list_.push_back(p);
  }
}

std::vector<graph::NodeId> DensityProtocol::take_external_wakes() {
  std::vector<graph::NodeId> drained;
  drained.swap(external_list_);
  for (const graph::NodeId p : drained) external_mark_[p] = 0;
  std::sort(drained.begin(), drained.end());
  return drained;
}

void DensityProtocol::end_step(graph::NodeId node) {
  auto& cache = aux_[node].cache;
  for (auto it = cache.begin(); it != cache.end();) {
    if (++it->second.age > config_.cache_max_age) {
      if (tracking_) {
        // Eviction changes the cache (a rule input) and removes a digest
        // row from the node's next frame.
        pending_[node] = 1;
        step_state_changed_[node] = 1;
        step_frame_changed_[node] = 1;
      }
      it = cache.erase(it);
    } else {
      if (tracking_ && it->second.age >= 2) {
        // An entry nobody refreshed this step (phantom neighbor or a
        // silenced sender) is counting toward eviction: the node's
        // boundary state differs from one where the entry was fresh, so
        // it must keep stepping until the entry dies. Rule inputs are
        // untouched (ages never feed the rules), hence no `pending_`.
        step_state_changed_[node] = 1;
      }
      ++it;
    }
  }
}

NodeRank DensityProtocol::self_rank(const NodeState& s) const {
  return NodeRank{
      .metric = s.metric,
      .incumbent = s.head_valid != 0 && s.head == s.uid,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(s.dag_id)
                    : s.uid,
      .uid = s.uid,
  };
}

NodeRank DensityProtocol::entry_rank(topology::ProtocolId id,
                                     const CacheEntry& e) const {
  return NodeRank{
      .metric = e.metric,
      .incumbent = e.head_valid && e.head == id,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(e.dag_id)
                    : id,
      .uid = id,
  };
}

NodeRank DensityProtocol::digest_rank(const NeighborDigest& d) const {
  return NodeRank{
      .metric = d.metric,
      .incumbent = d.is_head,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(d.dag_id)
                    : d.id,
      .uid = d.id,
  };
}

void DensityProtocol::rule_n1(NodeState& s) {
  // newId: keep the current name unless some cached neighbor holds it.
  bool conflict = false;
  for (const auto& [id, entry] : s.cache) {
    if (entry.dag_id != s.dag_id) continue;
    switch (config_.dag_policy) {
      case DagRedrawPolicy::N1Randomized:
        conflict = true;
        break;
      case DagRedrawPolicy::SmallerUidRedraws:
        if (s.uid < id) conflict = true;
        break;
    }
    if (conflict) break;
  }
  if (!conflict) {
    // Also re-home a corrupted name that escaped the name space.
    if (s.dag_id < name_space_) return;
  }
  // Draw uniformly from γ minus the cached neighbor names.
  std::vector<std::uint64_t> taken;
  taken.reserve(s.cache.size());
  for (const auto& [id, entry] : s.cache) {
    if (entry.dag_id < name_space_) taken.push_back(entry.dag_id);
  }
  std::sort(taken.begin(), taken.end());
  taken.erase(std::unique(taken.begin(), taken.end()), taken.end());
  if (taken.size() >= name_space_) return;  // no free name; wait for aging
  const std::uint64_t free_count = name_space_ - taken.size();
  std::uint64_t candidate = s.rng.below(free_count);
  for (std::uint64_t used : taken) {
    if (used <= candidate) ++candidate;
  }
  s.dag_id = candidate;
}

void DensityProtocol::rule_r1(NodeState& s) {
  const std::size_t degree = s.cache.size();
  if (config_.metric == ElectionMetric::Degree) {
    s.metric = static_cast<double>(degree);
    s.metric_valid = true;
    return;
  }
  // d_p = (|N_p| + e(N_p)) / |N_p| over the cached neighborhood; links
  // among neighbors are reconstructed from the relayed digests (an edge
  // q—r is believed iff either endpoint lists the other).
  if (degree == 0) {
    s.metric = 0.0;
    s.metric_valid = true;
    return;
  }
  std::size_t links = degree;
  for (auto a = s.cache.begin(); a != s.cache.end(); ++a) {
    auto b = a;
    for (++b; b != s.cache.end(); ++b) {
      if (digest_contains(a->second.digests, b->first) ||
          digest_contains(b->second.digests, a->first)) {
        ++links;
      }
    }
  }
  s.metric = static_cast<double>(links) / static_cast<double>(degree);
  s.metric_valid = true;
}

void DensityProtocol::rule_r2(NodeState& s) {
  if (!s.metric_valid) return;  // R1 always runs first in the sweep
  const bool inc = config_.cluster.incumbency;
  const NodeRank me = self_rank(s);

  // Local ≺-maximum test against every cached neighbor with a usable
  // density.
  bool local_max = true;
  for (const auto& [id, entry] : s.cache) {
    if (!entry.metric_valid) continue;
    if (precedes(me, entry_rank(id, entry), inc)) {
      local_max = false;
      break;
    }
  }

  if (local_max) {
    // Fusion: search the relayed digests for a dominating cluster-head in
    // N²_p. (1-hop heads cannot dominate here, or local_max were false.)
    const NeighborDigest* blocking = nullptr;
    if (config_.cluster.fusion) {
      for (const auto& [id, entry] : s.cache) {
        for (const NeighborDigest& d : entry.digests) {
          if (!d.is_head || !d.metric_valid || d.id == s.uid) continue;
          if (!precedes(me, digest_rank(d), inc)) continue;
          if (blocking == nullptr ||
              precedes(digest_rank(*blocking), digest_rank(d), inc)) {
            blocking = &d;
          }
        }
      }
    }
    if (blocking == nullptr) {
      // clusterHead = Id_p: p wins in its neighborhood.
      s.head = s.uid;
      s.head_valid = true;
      s.parent = s.uid;
      s.parent_valid = true;
      return;
    }
    // Demoted: fuse into the dominating head's cluster through the
    // ≺-best neighbor that can hear it.
    const topology::ProtocolId dominating = blocking->id;
    const CacheEntry* witness = nullptr;
    topology::ProtocolId witness_id = 0;
    for (const auto& [id, entry] : s.cache) {
      if (!entry.metric_valid || !digest_contains(entry.digests, dominating)) {
        continue;
      }
      if (witness == nullptr ||
          precedes(entry_rank(witness_id, *witness), entry_rank(id, entry),
                   inc)) {
        witness = &entry;
        witness_id = id;
      }
    }
    if (witness == nullptr) return;  // stale digest; retry next step
    s.parent = witness_id;
    s.parent_valid = true;
    if (witness->head_valid) {
      s.head = witness->head;
      s.head_valid = true;
    }
    return;
  }

  // clusterHead = H(max≺ N_p): join the strongest neighbor and adopt its
  // head value (which flows down the clusterization tree one hop per
  // step).
  const CacheEntry* best = nullptr;
  topology::ProtocolId best_id = 0;
  for (const auto& [id, entry] : s.cache) {
    if (!entry.metric_valid) continue;
    if (best == nullptr ||
        precedes(entry_rank(best_id, *best), entry_rank(id, entry), inc)) {
      best = &entry;
      best_id = id;
    }
  }
  if (best == nullptr) return;  // unreachable: local_max would be true
  s.parent = best_id;
  s.parent_valid = true;
  if (best->head_valid) {
    s.head = best->head;
    s.head_valid = true;
  }
}

std::vector<char> DensityProtocol::head_flags() const {
  std::vector<char> flags(aux_.size(), 0);
  for (graph::NodeId p = 0; p < aux_.size(); ++p) {
    flags[p] =
        (cols_.head_valid[p] != 0 && cols_.head[p] == uids_[p]) ? 1 : 0;
  }
  return flags;
}

std::vector<topology::ProtocolId> DensityProtocol::head_values() const {
  return cols_.head;
}

std::vector<topology::ProtocolId> DensityProtocol::parent_values() const {
  return cols_.parent;
}

std::vector<double> DensityProtocol::metrics() const { return cols_.metric; }

std::vector<std::uint64_t> DensityProtocol::dag_id_values() const {
  return cols_.dag_id;
}

namespace {

void scramble_state(DensityProtocol::NodeState s, std::uint64_t name_space,
                    std::size_t node_count, util::Rng& rng) {
  s.dag_id = rng.below(name_space * 2);  // may even escape the name space
  s.metric = rng.uniform(0.0, 8.0);
  s.metric_valid = rng.chance(0.75);
  s.head = rng.below(node_count * 2);
  s.head_valid = rng.chance(0.75);
  s.parent = rng.below(node_count * 2);
  s.parent_valid = rng.chance(0.75);
  s.cache.clear();
  // Plant a few phantom cache entries (possibly naming nodes that do not
  // exist) with arbitrary contents; eviction and fresh frames must flush
  // them.
  const std::size_t phantoms = rng.index(4);
  for (std::size_t i = 0; i < phantoms; ++i) {
    DensityProtocol::CacheEntry entry;
    entry.dag_id = rng.below(name_space * 2);
    entry.metric = rng.uniform(0.0, 8.0);
    entry.metric_valid = rng.chance(0.8);
    entry.head = rng.below(node_count * 2);
    entry.head_valid = rng.chance(0.8);
    entry.age = 0;
    s.cache[rng.below(node_count * 2)] = std::move(entry);
  }
}

}  // namespace

void DensityProtocol::corrupt_all(util::Rng& rng) {
  for (graph::NodeId p = 0; p < aux_.size(); ++p) {
    scramble_state(view(p), name_space_, aux_.size(), rng);
    externally_touched(p);
  }
}

std::size_t DensityProtocol::corrupt_fraction(util::Rng& rng,
                                              double fraction) {
  std::size_t hit = 0;
  for (graph::NodeId p = 0; p < aux_.size(); ++p) {
    if (rng.chance(fraction)) {
      scramble_state(view(p), name_space_, aux_.size(), rng);
      externally_touched(p);
      ++hit;
    }
  }
  return hit;
}

void DensityProtocol::reset_node(graph::NodeId p) {
  NodeState s = view(p);
  s.dag_id = 0;
  s.metric = 0.0;
  s.metric_valid = 0;
  s.head = 0;
  s.head_valid = 0;
  s.parent = 0;
  s.parent_valid = 0;
  s.cache.clear();
  s.last_heard_s = -1.0;
  s.deliveries = 0;
  s.dag_id = s.rng.below(name_space_);
  externally_touched(p);
}

// --- differential-harness helpers ------------------------------------

namespace {

bool cache_entries_equal(const DensityProtocol::CacheEntry& a,
                         const DensityProtocol::CacheEntry& b) {
  if (a.dag_id != b.dag_id || !double_bits_equal(a.metric, b.metric) ||
      a.metric_valid != b.metric_valid || a.head != b.head ||
      a.head_valid != b.head_valid || a.age != b.age ||
      a.digests.size() != b.digests.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.digests.size(); ++i) {
    if (!digest_bits_equal(a.digests[i], b.digests[i])) return false;
  }
  return true;
}

bool cold_state_equal(const DensityProtocol& a, const DensityProtocol& b,
                      graph::NodeId p) {
  const auto sa = a.state(p);
  const auto sb = b.state(p);
  if (sa.uid != sb.uid || !(sa.rng == sb.rng) ||
      !double_bits_equal(sa.last_heard_s, sb.last_heard_s) ||
      sa.deliveries != sb.deliveries) {
    return false;
  }
  if (sa.cache.size() != sb.cache.size()) return false;
  auto ib = sb.cache.begin();
  for (const auto& [id, entry] : sa.cache) {
    if (ib->first != id || !cache_entries_equal(entry, ib->second)) {
      return false;
    }
    ++ib;
  }
  return true;
}

}  // namespace

bool node_states_bitwise_equal(const DensityProtocol& a,
                               const DensityProtocol& b, graph::NodeId p) {
  return rows_bitwise_equal(scalar_row(a.scalars(), p),
                            scalar_row(b.scalars(), p)) &&
         cold_state_equal(a, b, p);
}

std::optional<graph::NodeId> first_divergent_node(const DensityProtocol& a,
                                                  const DensityProtocol& b) {
  if (a.node_count() != b.node_count()) return graph::NodeId{0};
  // Hot scalars first: one vectorized pass over the SoA columns finds
  // the earliest scalar divergence; cold state is then checked row by
  // row only up to that bound.
  const std::size_t scalar_first = first_divergent_row(a.scalars(), b.scalars());
  for (graph::NodeId p = 0; p < a.node_count(); ++p) {
    if (p == scalar_first) return p;
    if (!cold_state_equal(a, b, p)) return p;
  }
  if (scalar_first < a.node_count()) return graph::NodeId{scalar_first};
  return std::nullopt;
}

std::string describe_divergence(const DensityProtocol& a,
                                const DensityProtocol& b, graph::NodeId p) {
  std::ostringstream out;
  const auto sa = a.state(p);
  const auto sb = b.state(p);
  const auto field = [&out](const char* name, const auto& va,
                            const auto& vb) {
    if (va != vb) {
      out << ' ' << name << '=' << +va << " vs " << +vb;
    }
  };
  field("uid", sa.uid, sb.uid);
  field("dag_id", sa.dag_id, sb.dag_id);
  field("metric", sa.metric, sb.metric);
  field("metric_valid", sa.metric_valid, sb.metric_valid);
  field("head", sa.head, sb.head);
  field("head_valid", sa.head_valid, sb.head_valid);
  field("parent", sa.parent, sb.parent);
  field("parent_valid", sa.parent_valid, sb.parent_valid);
  field("last_heard_s", sa.last_heard_s, sb.last_heard_s);
  field("deliveries", sa.deliveries, sb.deliveries);
  if (!(sa.rng == sb.rng)) out << " rng=<diverged>";
  if (sa.cache.size() != sb.cache.size()) {
    out << " cache_size=" << sa.cache.size() << " vs " << sb.cache.size();
  } else {
    auto ib = sb.cache.begin();
    for (const auto& [id, entry] : sa.cache) {
      if (ib->first != id) {
        out << " cache_key=" << id << " vs " << ib->first;
        break;
      }
      if (!cache_entries_equal(entry, ib->second)) {
        out << " cache[" << id << "]=<diverged age " << entry.age << " vs "
            << ib->second.age << '>';
        break;
      }
      ++ib;
    }
  }
  const std::string text = out.str();
  return text.empty() ? std::string(" <bitwise identical>") : text;
}

}  // namespace ssmwn::core
