#include "core/protocol.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/env.hpp"
#include "util/merge.hpp"

namespace ssmwn::core {

namespace {

/// Key projection for the sorted-by-id digest kernels.
struct DigestId {
  topology::ProtocolId operator()(const NeighborDigest& d) const noexcept {
    return d.id;
  }
};

/// Binary search for `id` in a digest list sorted by id.
bool digest_contains(const DigestList& digests, topology::ProtocolId id) {
  return util::contains_sorted(digests.data(), digests.size(), id, DigestId{});
}

using Cache = FlatMap<topology::ProtocolId, DensityProtocol::CacheEntry>;

/// Pairwise believed-link count over a cache: a pair (q, r) of cached
/// neighbors counts iff either relayed digest list names the other. The
/// trusted reference the incremental count is maintained against — kept
/// in the most transparent form (same shape as the pre-maintenance R1).
std::uint64_t recompute_links(const Cache& cache) {
  std::uint64_t links = 0;
  for (auto a = cache.begin(); a != cache.end(); ++a) {
    for (auto b = std::next(a); b != cache.end(); ++b) {
      if (digest_contains(a->second.digests, b->first) ||
          digest_contains(b->second.digests, a->first)) {
        ++links;
      }
    }
  }
  return links;
}

/// How many believed links the entry `(q, list)` carries: pairs (q, r)
/// over the *other* cached neighbors r with r ∈ list or q ∈ r's list.
/// One merge of `list` against the cache keys plus a reverse-containment
/// probe for the unmatched keys — the delta applied when an entry is
/// inserted (list = the incoming digests, entry already in the cache) or
/// evicted (list = the stored digests, entry not yet erased).
std::uint64_t entry_link_count(const Cache& cache, topology::ProtocolId q,
                               std::span<const NeighborDigest> list) {
  std::uint64_t links = 0;
  std::size_t i = 0;
  for (const auto& [key, other] : cache) {
    if (key == q) continue;
    while (i < list.size() && list[i].id < key) ++i;
    const bool believed = (i < list.size() && list[i].id == key) ||
                          digest_contains(other.digests, q);
    links += static_cast<std::uint64_t>(believed);
  }
  return links;
}

/// ±1 contribution of one id flipping in/out of q's digest list: the
/// pair (q, x) gains/loses existence only if x is another cached
/// neighbor whose own list does not already name q (the OR keeps the
/// pair alive regardless of q's side).
std::uint64_t delta_if_sole_witness(const Cache& cache, topology::ProtocolId q,
                                    topology::ProtocolId x) {
  if (x == q) return 0;  // (q, q) is not a pair
  const auto it = cache.find(x);
  if (it == cache.end()) return 0;  // x not cached: no pair either way
  return digest_contains(it->second.digests, q) ? 0 : 1;
}

}  // namespace

DensityProtocol::DensityProtocol(topology::IdAssignment uids,
                                 ProtocolConfig config, util::Rng rng)
    : uids_(std::move(uids)), config_(config) {
  name_space_ = config_.dag_name_space;
  if (name_space_ == 0) {
    name_space_ = config_.delta_hint * config_.delta_hint + 1;
  }
  name_space_ = std::max<std::uint64_t>(name_space_, config_.delta_hint + 1);

  cols_.resize(uids_.size());
  aux_.resize(uids_.size());
  for (graph::NodeId p = 0; p < aux_.size(); ++p) {
    aux_[p].rng = rng.split();
    cols_.dag_id[p] = aux_[p].rng.below(name_space_);
  }

  maintenance_ = config_.density_maintenance;
  if (maintenance_ == DensityMaintenance::kIncremental &&
      util::env_int("SSMWN_CHECK_DENSITY", 0) != 0) {
    maintenance_ = DensityMaintenance::kChecked;
  }
  maintain_links_ = config_.metric == ElectionMetric::Density &&
                    maintenance_ != DensityMaintenance::kRecompute;
  links_among_.assign(uids_.size(), 0);
  // Stale at birth: the first R1 firing per node computes the count from
  // whatever the cache then holds (trivially 0 for an empty cache).
  links_fresh_.assign(uids_.size(), 0);
  resync_.assign(uids_.size(), 0);
  // Rank keys are trivially fresh at birth: every cache is empty.
  ranks_fresh_.assign(uids_.size(), 1);

  // The paper's program, verbatim as guarded commands. Guards that are
  // plain `true` in the paper stay `true` here; N1's effective guard is
  // the conflict test folded into newId.
  engine_
      .add(
          "N1", [this](const NodeState&) { return config_.cluster.use_dag_ids; },
          [this](NodeState& s) { rule_n1(s); })
      .add(
          "R1", [](const NodeState&) { return true; },
          [this](NodeState& s) { rule_r1(s); })
      .add(
          "R2", [](const NodeState&) { return true; },
          [this](NodeState& s) { rule_r2(s); });
}

void DensityProtocol::make_frame(graph::NodeId sender, FrameHeader& header,
                                 std::span<Digest> digests) const {
  const ConstNodeState s = const_view(sender);
  header.id = s.uid;
  header.dag_id = s.dag_id;
  header.metric = s.metric;
  header.metric_valid = s.metric_valid != 0;
  header.head = s.head;
  header.head_valid = s.head_valid != 0;
  std::size_t i = 0;
  for (const auto& [id, entry] : s.cache) {  // map order: sorted by id
    digests[i++] = NeighborDigest{
        .id = id,
        .dag_id = entry.dag_id,
        .metric = entry.metric,
        .metric_valid = entry.metric_valid,
        .is_head = entry.head_valid && entry.head == id,
    };
  }
}

DensityProtocol::Frame DensityProtocol::make_frame(
    graph::NodeId sender) const {
  Frame frame;
  frame.digests.resize(digest_count(sender));
  FrameHeader header;
  make_frame(sender, header, frame.digests);
  frame.id = header.id;
  frame.dag_id = header.dag_id;
  frame.metric = header.metric;
  frame.metric_valid = header.metric_valid;
  frame.head = header.head;
  frame.head_valid = header.head_valid;
  return frame;
}

bool DensityProtocol::deliver_payload(graph::NodeId receiver,
                                      const FrameHeader& header,
                                      std::span<const Digest> digests) {
  // Tracking needs the full compare's change bits; resync means the
  // engine's proof says nothing about what the cache now holds.
  if (tracking_ || resync_[receiver] != 0) return false;
  if (header.id == uids_[receiver]) return true;  // dropped either way
  NodeAux& aux = aux_[receiver];
  const auto it = aux.cache.find(header.id);
  if (it == aux.cache.end()) return false;  // evicted: reinsert via deliver
  CacheEntry& entry = it->second;
  if (entry.digests.size() != digests.size()) return false;
  // Engine-proved: the stored id sequence equals the incoming one, so
  // the believed-link count cannot move and the whole delivery is the
  // header fields, the digest payloads, and the age reset. The copy
  // rewrites the (identical) ids too — cheaper than skipping them.
  entry.dag_id = header.dag_id;
  entry.metric = header.metric;
  entry.metric_valid = header.metric_valid;
  entry.head = header.head;
  entry.head_valid = header.head_valid;
  std::copy(digests.begin(), digests.end(), entry.digests.data());
  entry.age = 0;
  entry.rank_key = entry_key(header.id, entry);
  return true;
}

bool DensityProtocol::deliver_delta(graph::NodeId receiver,
                                    const FrameHeader& header,
                                    std::size_t row_size,
                                    std::span<const Digest> changed) {
  // Same decline conditions as deliver_payload — the engine's id-sequence
  // proof is the precondition for both, and tracking needs the full
  // compare's change bits.
  if (tracking_ || resync_[receiver] != 0) return false;
  if (header.id == uids_[receiver]) return true;  // dropped either way
  NodeAux& aux = aux_[receiver];
  const auto it = aux.cache.find(header.id);
  if (it == aux.cache.end()) return false;  // evicted: reinsert via deliver
  CacheEntry& entry = it->second;
  if (entry.digests.size() != row_size) return false;
  // Patch only the changed digests in place; the galloping walk declines
  // (partial patches are unobservable — see the header contract) if any
  // changed id is missing from the stored list, which would mean the
  // stored id sequence is not the one the engine proved.
  if (!util::patch_sorted(entry.digests.data(), entry.digests.size(),
                          changed.data(), changed.size(), DigestId{})) {
    return false;
  }
  // Ids held, so e(N_p) and the link structure cannot have moved — only
  // the header fields, the age, and the memoized rank key remain.
  entry.dag_id = header.dag_id;
  entry.metric = header.metric;
  entry.metric_valid = header.metric_valid;
  entry.head = header.head;
  entry.head_valid = header.head_valid;
  entry.age = 0;
  entry.rank_key = entry_key(header.id, entry);
  return true;
}

void DensityProtocol::deliver(graph::NodeId receiver,
                              const FrameHeader& header,
                              std::span<const Digest> digests) {
  if (header.id == uids_[receiver]) return;  // defensive: never cache oneself
  NodeAux& aux = aux_[receiver];
  auto& cache = aux.cache;
  // Apply link-count deltas only while the maintained count is trusted;
  // after an external mutation the next R1 recomputes from scratch and
  // deliveries until then just write content.
  const bool maintain = maintain_links_ && links_fresh_[receiver] != 0;

  if (!tracking_ && !maintain) {
    // Classic blind overwrite — the cheapest path, taken by the
    // kRecompute oracle and by any node whose count is stale anyway.
    CacheEntry& entry = cache[header.id];
    entry.digests.attach(*aux.digest_pool);
    entry.dag_id = header.dag_id;
    entry.metric = header.metric;
    entry.metric_valid = header.metric_valid;
    entry.head = header.head;
    entry.head_valid = header.head_valid;
    entry.digests.assign(digests.begin(), digests.end());
    entry.age = 0;
    entry.rank_key = entry_key(header.id, entry);
    return;
  }

  // Compare-and-delta delivery. One merge walk over the cached list and
  // the incoming one yields everything at once: whether any digest id
  // appeared/vanished (an e(N_p) delta and a rule-input change), whether
  // any matched id's payload moved (a rule-input change only), and — via
  // their disjunction — whether the stored list must be rewritten at
  // all. A differing header means the receiver's *own* next frame
  // changes too (the digest row it relays for this sender is derived
  // from exactly these fields); a difference only in the relayed list
  // feeds R1/R2 but never re-enters a frame, so it wakes the receiver
  // without waking the receiver's neighbors.
  auto it = cache.find(header.id);
  bool header_diff;
  bool digests_diff;
  CacheEntry* entry;
  if (it == cache.end()) {
    entry = &cache[header.id];
    entry->digests.attach(*aux.digest_pool);
    header_diff = true;
    digests_diff = true;
    if (maintain) {
      // Structural insert: the new entry's full pair contribution,
      // evaluated against the incoming list (what the entry will hold).
      links_among_[receiver] += entry_link_count(cache, header.id, digests);
    }
  } else {
    entry = &it->second;
    entry->digests.attach(*aux.digest_pool);
    // header_diff feeds only the dirty-tracking wake sets; the fields are
    // rewritten below either way, so skip the compare when not tracking.
    header_diff = tracking_ && (entry->dag_id != header.dag_id ||
                                !double_bits_equal(entry->metric, header.metric) ||
                                entry->metric_valid != header.metric_valid ||
                                entry->head != header.head ||
                                entry->head_valid != header.head_valid);
    const NeighborDigest* olds = entry->digests.data();
    const std::size_t na = entry->digests.size();
    const std::size_t nb = digests.size();
    // One branchless pass, two accumulators: e(N_p) depends only on the
    // *id sequence* (which neighbors the sender claims to hear), so in
    // the common active-regime delivery — payload churn (metrics, DAG
    // ids, head bits) over a stable neighborhood — the list is rewritten
    // but no delta walk runs at all.
    bool ids_diff = na != nb;
    if (!ids_diff) {
      std::uint64_t id_acc = 0;
      std::uint64_t payload_acc = 0;
      for (std::size_t k = 0; k < na; ++k) {
        const NeighborDigest& a = olds[k];
        const NeighborDigest& b = digests[k];
        id_acc |= a.id ^ b.id;
        payload_acc |= (a.dag_id ^ b.dag_id) |
                       (std::bit_cast<std::uint64_t>(a.metric) ^
                        std::bit_cast<std::uint64_t>(b.metric)) |
                       static_cast<std::uint64_t>(a.metric_valid != b.metric_valid) |
                       static_cast<std::uint64_t>(a.is_head != b.is_head);
      }
      ids_diff = id_acc != 0;
      digests_diff = ids_diff || payload_acc != 0;
    } else {
      digests_diff = true;
    }
    if (maintain && ids_diff) {
      // Delta walk over the two sorted id sequences, by *group* of equal
      // ids: the believed-link count has set semantics (an id listed
      // twice — possible only in a fault-planted list — still witnesses
      // its pair once), so each distinct id that flips in or out moves
      // the count by at most one.
      std::size_t i = 0, j = 0;
      while (i < na || j < nb) {
        if (j >= nb || (i < na && olds[i].id < digests[j].id)) {
          const topology::ProtocolId x = olds[i].id;  // vanished from list
          links_among_[receiver] -=
              delta_if_sole_witness(cache, header.id, x);
          do { ++i; } while (i < na && olds[i].id == x);
        } else if (i >= na || digests[j].id < olds[i].id) {
          const topology::ProtocolId x = digests[j].id;  // newly listed
          links_among_[receiver] +=
              delta_if_sole_witness(cache, header.id, x);
          do { ++j; } while (j < nb && digests[j].id == x);
        } else {
          const topology::ProtocolId x = olds[i].id;  // present in both
          do { ++i; } while (i < na && olds[i].id == x);
          do { ++j; } while (j < nb && digests[j].id == x);
        }
      }
    }
  }
  entry->dag_id = header.dag_id;
  entry->metric = header.metric;
  entry->metric_valid = header.metric_valid;
  entry->head = header.head;
  entry->head_valid = header.head_valid;
  if (digests_diff) {
    entry->digests.assign(digests.begin(), digests.end());
  }
  entry->age = 0;
  entry->rank_key = entry_key(header.id, *entry);
  if (tracking_) {
    if (header_diff || digests_diff) {
      pending_[receiver] = 1;
      step_state_changed_[receiver] = 1;
    }
    if (header_diff) step_frame_changed_[receiver] = 1;
  }
}

bool DensityProtocol::redeliver_unchanged(graph::NodeId receiver,
                                          const FrameHeader& header) {
  if (resync_[receiver] != 0) return false;
  auto& cache = aux_[receiver].cache;
  const auto it = cache.find(header.id);
  if (it == cache.end()) return false;
  // The entry already holds these exact bytes (engine-proved: the row is
  // bit-identical to the one this receiver consumed last sweep), so the
  // only delivery side effect left is the age reset. No tracking flags:
  // nothing rule-relevant or frame-visible changed.
  it->second.age = 0;
  return true;
}

void DensityProtocol::deliver(graph::NodeId receiver, const Frame& frame) {
  const FrameHeader header{
      .id = frame.id,
      .dag_id = frame.dag_id,
      .metric = frame.metric,
      .metric_valid = frame.metric_valid,
      .head = frame.head,
      .head_valid = frame.head_valid,
  };
  deliver(receiver, header, frame.digests);
}

namespace {

/// Re-packs every live digest span of `cache` into the front of `pool`,
/// in cache iteration order, and drops slack capacity. Two phases so no
/// scratch memory is needed: bump fresh spans past the current cursor
/// (the buffer retains its capacity, so steady state stays
/// allocation-free), then slide the now-contiguous live region down to
/// offset zero with one memmove and rebase the lists.
void compact_digest_pool(DigestPool& pool, Cache& cache) {
  const std::uint32_t base = pool.cursor();
  for (auto& item : cache) {
    DigestList& list = item.second.digests;
    if (list.empty()) {
      list.drop_empty_span();
      continue;
    }
    const std::uint32_t size = static_cast<std::uint32_t>(list.size());
    const std::uint32_t new_off = pool.allocate(size);
    std::memcpy(pool.at(new_off), pool.at(list.offset()),
                size * sizeof(NeighborDigest));
    list.compacted_to(new_off);
  }
  const std::uint32_t live = pool.cursor() - base;
  if (live != 0) {
    std::memmove(pool.at(0), pool.at(base), live * sizeof(NeighborDigest));
    for (auto& item : cache) {
      if (!item.second.digests.empty()) item.second.digests.shift_down(base);
    }
  }
  pool.reset_counters(live);
}

}  // namespace

void DensityProtocol::on_edge_removed(graph::NodeId a, graph::NodeId b) {
  if (a >= aux_.size() || b >= aux_.size()) return;
  const auto forget = [this](graph::NodeId node, graph::NodeId gone) {
    auto& cache = aux_[node].cache;
    if (const auto it = cache.find(uids_[gone]); it != cache.end()) {
      // A clean structural eviction: the maintained count follows by
      // delta, no invalidation needed (contrast mutable_state, where the
      // caller may scribble anything).
      if (maintain_links_ && links_fresh_[node] != 0) {
        links_among_[node] -= entry_link_count(
            cache, it->first,
            {it->second.digests.data(), it->second.digests.size()});
      }
      cache.erase(it);
      if (aux_[node].digest_pool->fragmented()) {
        compact_digest_pool(*aux_[node].digest_pool, cache);
      }
      // The evicted digest row vanishes from the node's next frame, so
      // this counts as an external mutation: the node and (via the
      // stepper's closed-neighborhood wake) its neighbors must step.
      // The cache also stopped matching what perfect delivery implies,
      // so redeliveries must run full compares until the next sweep.
      resync_[node] = 1;
      externally_touched(node);
    }
  };
  forget(a, b);
  forget(b, a);
}

void DensityProtocol::tick(graph::NodeId node) {
  if (tracking_) {
    tracked_tick(node);
    return;
  }
  NodeState s = view(node);
  engine_.sweep(s);
}

void DensityProtocol::tracked_tick(graph::NodeId node) {
  const ScalarRow before = scalar_row(cols_, node);
  NodeState s = view(node);
  engine_.sweep(s);
  const ScalarRow after = scalar_row(cols_, node);
  const bool frame_diff = frame_scalars_differ(before, after);
  const bool own_diff = !rows_bitwise_equal(before, after);
  if (own_diff) step_state_changed_[node] = 1;
  if (frame_diff) step_frame_changed_[node] = 1;
  stable_[node] = own_diff ? 0 : 1;
  pending_[node] = 0;
}

bool DensityProtocol::maybe_tick(graph::NodeId node) {
  if (!tracking_) {
    tick(node);
    return true;
  }
  // Provably a no-op: the previous sweep left every shared variable
  // unchanged (so it also drew no randomness — N1 only draws when it
  // renames), and no input moved since. Sweeping again would recompute
  // identical values from identical inputs.
  if (!pending_[node] && stable_[node]) return false;
  tracked_tick(node);
  return true;
}

DensityProtocol::Activity DensityProtocol::consume_activity(
    graph::NodeId node) {
  Activity activity{step_state_changed_[node] != 0,
                    step_frame_changed_[node] != 0};
  step_state_changed_[node] = 0;
  step_frame_changed_[node] = 0;
  return activity;
}

void DensityProtocol::set_activity_tracking(bool on) {
  tracking_ = on;
  const std::size_t n = aux_.size();
  if (on) {
    // Every node starts pending: the first tracked step is a full one,
    // after which quiescence is discovered, never assumed.
    pending_.assign(n, 1);
    stable_.assign(n, 0);
    step_state_changed_.assign(n, 0);
    step_frame_changed_.assign(n, 0);
    external_mark_.assign(n, 0);
    external_list_.clear();
  } else {
    pending_.clear();
    stable_.clear();
    step_state_changed_.clear();
    step_frame_changed_.clear();
    external_mark_.clear();
    external_list_.clear();
  }
}

void DensityProtocol::externally_touched(graph::NodeId p) {
  if (!tracking_) return;
  pending_[p] = 1;
  stable_[p] = 0;
  step_state_changed_[p] = 1;
  step_frame_changed_[p] = 1;
  if (!external_mark_[p]) {
    external_mark_[p] = 1;
    external_list_.push_back(p);
  }
}

std::vector<graph::NodeId> DensityProtocol::take_external_wakes() {
  std::vector<graph::NodeId> drained;
  drained.swap(external_list_);
  for (const graph::NodeId p : drained) external_mark_[p] = 0;
  std::sort(drained.begin(), drained.end());
  return drained;
}

void DensityProtocol::end_step(graph::NodeId node) {
  auto& cache = aux_[node].cache;
  const bool maintain = maintain_links_ && links_fresh_[node] != 0;
  for (auto it = cache.begin(); it != cache.end();) {
    if (++it->second.age > config_.cache_max_age) {
      if (maintain) {
        // Evictions inside one sweep are sequential: each delta is
        // evaluated against the cache as it stands, exactly mirroring a
        // recompute after each erase.
        links_among_[node] -= entry_link_count(
            cache, it->first,
            {it->second.digests.data(), it->second.digests.size()});
      }
      if (tracking_) {
        // Eviction changes the cache (a rule input) and removes a digest
        // row from the node's next frame.
        pending_[node] = 1;
        step_state_changed_[node] = 1;
        step_frame_changed_[node] = 1;
      }
      it = cache.erase(it);
    } else {
      if (tracking_ && it->second.age >= 2) {
        // An entry nobody refreshed this step (phantom neighbor or a
        // silenced sender) is counting toward eviction: the node's
        // boundary state differs from one where the entry was fresh, so
        // it must keep stepping until the entry dies. Rule inputs are
        // untouched (ages never feed the rules), hence no `pending_`.
        step_state_changed_[node] = 1;
      }
      ++it;
    }
  }
  // Churn (evictions above, list regrowth in deliver) leaves holes in
  // the node's digest slab; re-pack once dead capacity outweighs live.
  if (aux_[node].digest_pool->fragmented()) {
    compact_digest_pool(*aux_[node].digest_pool, cache);
  }
  // The sweep that just completed ran full compares for this receiver
  // (redeliver_unchanged declines while the flag is up), so its cache
  // again matches what the engines' delivered rows imply.
  resync_[node] = 0;
}

NodeRank DensityProtocol::self_rank(const NodeState& s) const {
  return NodeRank{
      .metric = s.metric,
      .incumbent = s.head_valid != 0 && s.head == s.uid,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(s.dag_id)
                    : s.uid,
      .uid = s.uid,
  };
}

NodeRank DensityProtocol::entry_rank(topology::ProtocolId id,
                                     const CacheEntry& e) const {
  return NodeRank{
      .metric = e.metric,
      .incumbent = e.head_valid && e.head == id,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(e.dag_id)
                    : id,
      .uid = id,
  };
}

NodeRank DensityProtocol::digest_rank(const NeighborDigest& d) const {
  return NodeRank{
      .metric = d.metric,
      .incumbent = d.is_head,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(d.dag_id)
                    : d.id,
      .uid = d.id,
  };
}

void DensityProtocol::rule_n1(NodeState& s) {
  // newId: keep the current name unless some cached neighbor holds it.
  bool conflict = false;
  for (const auto& [id, entry] : s.cache) {
    if (entry.dag_id != s.dag_id) continue;
    switch (config_.dag_policy) {
      case DagRedrawPolicy::N1Randomized:
        conflict = true;
        break;
      case DagRedrawPolicy::SmallerUidRedraws:
        if (s.uid < id) conflict = true;
        break;
    }
    if (conflict) break;
  }
  if (!conflict) {
    // Also re-home a corrupted name that escaped the name space.
    if (s.dag_id < name_space_) return;
  }
  // Draw uniformly from γ minus the cached neighbor names. Renaming
  // happens throughout recovery (exactly when the zero-allocation audit
  // watches the active regime), so the scratch list lives on the stack
  // for any radio-scale degree; the heap fallback covers pathological
  // fan-in only.
  constexpr std::size_t kStackNames = 128;
  std::uint64_t stack_names[kStackNames];
  std::vector<std::uint64_t> heap_names;
  std::uint64_t* taken = stack_names;
  if (s.cache.size() > kStackNames) {
    heap_names.resize(s.cache.size());
    taken = heap_names.data();
  }
  std::size_t count = 0;
  for (const auto& [id, entry] : s.cache) {
    if (entry.dag_id < name_space_) taken[count++] = entry.dag_id;
  }
  std::sort(taken, taken + count);
  count = static_cast<std::size_t>(std::unique(taken, taken + count) - taken);
  if (count >= name_space_) return;  // no free name; wait for aging
  const std::uint64_t free_count = name_space_ - count;
  std::uint64_t candidate = s.rng.below(free_count);
  for (std::size_t i = 0; i < count; ++i) {
    if (taken[i] <= candidate) ++candidate;
  }
  s.dag_id = candidate;
}

void DensityProtocol::rule_r1(NodeState& s) {
  const std::size_t degree = s.cache.size();
  if (config_.metric == ElectionMetric::Degree) {
    s.metric = static_cast<double>(degree);
    s.metric_valid = true;
    return;
  }
  // d_p = (|N_p| + e(N_p)) / |N_p| over the cached neighborhood; links
  // among neighbors are reconstructed from the relayed digests (an edge
  // q—r is believed iff either endpoint lists the other). e(N_p) comes
  // from the maintained count when it is fresh — the O(deg²) pairwise
  // recompute runs only as the oracle, as the self-check, or once after
  // an external mutation invalidated the count.
  if (degree == 0) {
    if (maintain_links_) {
      links_among_[s.node] = 0;
      links_fresh_[s.node] = 1;
    }
    s.metric = 0.0;
    s.metric_valid = true;
    return;
  }
  std::uint64_t among = 0;
  switch (maintenance_) {
    case DensityMaintenance::kRecompute:
      among = recompute_links(s.cache);
      break;
    case DensityMaintenance::kIncremental:
      if (links_fresh_[s.node] == 0) {
        links_among_[s.node] = recompute_links(s.cache);
        links_fresh_[s.node] = 1;
      }
      among = links_among_[s.node];
      break;
    case DensityMaintenance::kChecked: {
      const std::uint64_t full = recompute_links(s.cache);
      if (links_fresh_[s.node] != 0 && links_among_[s.node] != full) {
        throw std::logic_error(
            "density maintenance invariant violated at node " +
            std::to_string(s.node) + ": maintained e(N_p)=" +
            std::to_string(links_among_[s.node]) + ", recomputed " +
            std::to_string(full));
      }
      links_among_[s.node] = full;
      links_fresh_[s.node] = 1;
      among = full;
      break;
    }
  }
  const std::uint64_t links = degree + among;
  s.metric = static_cast<double>(links) / static_cast<double>(degree);
  s.metric_valid = true;
}

void DensityProtocol::rule_r2(NodeState& s) {
  if (!s.metric_valid) return;  // R1 always runs first in the sweep
  const bool inc = config_.cluster.incumbency;
  if (ranks_fresh_[s.node] == 0) {
    // An external mutation may have scribbled any entry since the last
    // repack; the memoized keys are a pure function of the entries, so
    // one pass restores the invariant before the election trusts them.
    for (auto& item : s.cache) {
      item.second.rank_key = entry_key(item.first, item.second);
    }
    ranks_fresh_[s.node] = 1;
  }
  const PackedRank me = pack_rank(self_rank(s), inc);

  // One ≺-arg-max over the memoized key column replaces both the
  // local-max scan and the join-best scan: invalid entries carry the
  // below-everything sentinel, so they lose without a validity branch,
  // and keys of valid entries are distinct (unique uid sub-keys), so the
  // winner is unique and order-insensitive. p is a local maximum iff the
  // winner does not dominate it; otherwise the winner IS max≺ N_p, the
  // neighbor to join.
  const CacheEntry* best = nullptr;
  topology::ProtocolId best_id = 0;
  PackedRank best_key{};  // sentinel
  for (const auto& [id, entry] : s.cache) {
    if (packed_precedes(best_key, entry.rank_key)) {
      best_key = entry.rank_key;
      best = &entry;
      best_id = id;
    }
  }

  if (!packed_precedes(me, best_key)) {
    // Local maximum (an empty or all-invalid cache lands here too: the
    // sentinel never dominates a valid self-rank). Fusion: search the
    // relayed digests for a dominating cluster-head in N²_p. (1-hop
    // heads cannot dominate here, or the winner above would.)
    const NeighborDigest* blocking = nullptr;
    if (config_.cluster.fusion) {
      PackedRank blocking_key{};  // sentinel
      for (const auto& [id, entry] : s.cache) {
        for (const NeighborDigest& d : entry.digests) {
          if (!d.is_head || !d.metric_valid || d.id == s.uid) continue;
          const PackedRank key = pack_rank(digest_rank(d), inc);
          if (!packed_precedes(me, key)) continue;
          if (packed_precedes(blocking_key, key)) {
            blocking_key = key;
            blocking = &d;
          }
        }
      }
    }
    if (blocking == nullptr) {
      // clusterHead = Id_p: p wins in its neighborhood.
      s.head = s.uid;
      s.head_valid = true;
      s.parent = s.uid;
      s.parent_valid = true;
      return;
    }
    // Demoted: fuse into the dominating head's cluster through the
    // ≺-best neighbor that can hear it. The key compare runs first —
    // entries that cannot beat the incumbent witness skip the
    // binary-search containment probe entirely, and invalid entries
    // (sentinel keys) never win a compare, so no validity test is
    // needed either.
    const topology::ProtocolId dominating = blocking->id;
    const CacheEntry* witness = nullptr;
    topology::ProtocolId witness_id = 0;
    PackedRank witness_key{};  // sentinel
    for (const auto& [id, entry] : s.cache) {
      if (packed_precedes(witness_key, entry.rank_key) &&
          digest_contains(entry.digests, dominating)) {
        witness_key = entry.rank_key;
        witness = &entry;
        witness_id = id;
      }
    }
    if (witness == nullptr) return;  // stale digest; retry next step
    s.parent = witness_id;
    s.parent_valid = true;
    if (witness->head_valid) {
      s.head = witness->head;
      s.head_valid = true;
    }
    return;
  }

  // clusterHead = H(max≺ N_p): join the strongest neighbor — the arg-max
  // winner — and adopt its head value (which flows down the
  // clusterization tree one hop per step).
  s.parent = best_id;
  s.parent_valid = true;
  if (best->head_valid) {
    s.head = best->head;
    s.head_valid = true;
  }
}

std::vector<char> DensityProtocol::head_flags() const {
  std::vector<char> flags(aux_.size(), 0);
  for (graph::NodeId p = 0; p < aux_.size(); ++p) {
    flags[p] =
        (cols_.head_valid[p] != 0 && cols_.head[p] == uids_[p]) ? 1 : 0;
  }
  return flags;
}

std::vector<topology::ProtocolId> DensityProtocol::head_values() const {
  return cols_.head;
}

std::vector<topology::ProtocolId> DensityProtocol::parent_values() const {
  return cols_.parent;
}

std::vector<double> DensityProtocol::metrics() const { return cols_.metric; }

std::vector<std::uint64_t> DensityProtocol::dag_id_values() const {
  return cols_.dag_id;
}

namespace {

void scramble_state(DensityProtocol::NodeState s, std::uint64_t name_space,
                    std::size_t node_count, util::Rng& rng) {
  // Scribble the maintained link count too — deterministically (an LCG
  // step of the old value) rather than from `rng`, so the corruption
  // stream feeding the shared variables stays byte-identical to the
  // pre-maintenance protocol. The caller has already invalidated the
  // count, so recovery must not depend on what is written here.
  s.links_among = s.links_among * 6364136223846793005ULL +
                  1442695040888963407ULL;
  s.dag_id = rng.below(name_space * 2);  // may even escape the name space
  s.metric = rng.uniform(0.0, 8.0);
  s.metric_valid = rng.chance(0.75);
  s.head = rng.below(node_count * 2);
  s.head_valid = rng.chance(0.75);
  s.parent = rng.below(node_count * 2);
  s.parent_valid = rng.chance(0.75);
  s.cache.clear();
  // Plant a few phantom cache entries (possibly naming nodes that do not
  // exist) with arbitrary contents; eviction and fresh frames must flush
  // them.
  const std::size_t phantoms = rng.index(4);
  for (std::size_t i = 0; i < phantoms; ++i) {
    DensityProtocol::CacheEntry entry;
    entry.dag_id = rng.below(name_space * 2);
    entry.metric = rng.uniform(0.0, 8.0);
    entry.metric_valid = rng.chance(0.8);
    entry.head = rng.below(node_count * 2);
    entry.head_valid = rng.chance(0.8);
    entry.age = 0;
    s.cache[rng.below(node_count * 2)] = std::move(entry);
  }
}

}  // namespace

void DensityProtocol::corrupt_all(util::Rng& rng) {
  for (graph::NodeId p = 0; p < aux_.size(); ++p) {
    links_fresh_[p] = 0;
    resync_[p] = 1;
    ranks_fresh_[p] = 0;
    scramble_state(view(p), name_space_, aux_.size(), rng);
    externally_touched(p);
  }
}

std::size_t DensityProtocol::corrupt_fraction(util::Rng& rng,
                                              double fraction) {
  std::size_t hit = 0;
  for (graph::NodeId p = 0; p < aux_.size(); ++p) {
    if (rng.chance(fraction)) {
      links_fresh_[p] = 0;
      resync_[p] = 1;
      ranks_fresh_[p] = 0;
      scramble_state(view(p), name_space_, aux_.size(), rng);
      externally_touched(p);
      ++hit;
    }
  }
  return hit;
}

void DensityProtocol::reset_node(graph::NodeId p) {
  links_fresh_[p] = 0;
  resync_[p] = 1;
  ranks_fresh_[p] = 0;
  NodeState s = view(p);
  s.links_among = 0;
  s.dag_id = 0;
  s.metric = 0.0;
  s.metric_valid = 0;
  s.head = 0;
  s.head_valid = 0;
  s.parent = 0;
  s.parent_valid = 0;
  s.cache.clear();
  s.last_heard_s = -1.0;
  s.deliveries = 0;
  s.dag_id = s.rng.below(name_space_);
  externally_touched(p);
}

// --- differential-harness helpers ------------------------------------

namespace {

bool cache_entries_equal(const DensityProtocol::CacheEntry& a,
                         const DensityProtocol::CacheEntry& b) {
  if (a.dag_id != b.dag_id || !double_bits_equal(a.metric, b.metric) ||
      a.metric_valid != b.metric_valid || a.head != b.head ||
      a.head_valid != b.head_valid || a.age != b.age ||
      a.digests.size() != b.digests.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.digests.size(); ++i) {
    if (!digest_bits_equal(a.digests[i], b.digests[i])) return false;
  }
  return true;
}

bool cold_state_equal(const DensityProtocol& a, const DensityProtocol& b,
                      graph::NodeId p) {
  const auto sa = a.state(p);
  const auto sb = b.state(p);
  if (sa.uid != sb.uid || !(sa.rng == sb.rng) ||
      !double_bits_equal(sa.last_heard_s, sb.last_heard_s) ||
      sa.deliveries != sb.deliveries) {
    return false;
  }
  if (sa.cache.size() != sb.cache.size()) return false;
  auto ib = sb.cache.begin();
  for (const auto& [id, entry] : sa.cache) {
    if (ib->first != id || !cache_entries_equal(entry, ib->second)) {
      return false;
    }
    ++ib;
  }
  return true;
}

}  // namespace

bool node_states_bitwise_equal(const DensityProtocol& a,
                               const DensityProtocol& b, graph::NodeId p) {
  return rows_bitwise_equal(scalar_row(a.scalars(), p),
                            scalar_row(b.scalars(), p)) &&
         cold_state_equal(a, b, p);
}

std::optional<graph::NodeId> first_divergent_node(const DensityProtocol& a,
                                                  const DensityProtocol& b) {
  if (a.node_count() != b.node_count()) return graph::NodeId{0};
  // Hot scalars first: one vectorized pass over the SoA columns finds
  // the earliest scalar divergence; cold state is then checked row by
  // row only up to that bound.
  const std::size_t scalar_first = first_divergent_row(a.scalars(), b.scalars());
  for (graph::NodeId p = 0; p < a.node_count(); ++p) {
    if (p == scalar_first) return p;
    if (!cold_state_equal(a, b, p)) return p;
  }
  if (scalar_first < a.node_count()) {
    return static_cast<graph::NodeId>(scalar_first);
  }
  return std::nullopt;
}

std::string describe_divergence(const DensityProtocol& a,
                                const DensityProtocol& b, graph::NodeId p) {
  std::ostringstream out;
  const auto sa = a.state(p);
  const auto sb = b.state(p);
  const auto field = [&out](const char* name, const auto& va,
                            const auto& vb) {
    if (va != vb) {
      out << ' ' << name << '=' << +va << " vs " << +vb;
    }
  };
  field("uid", sa.uid, sb.uid);
  field("dag_id", sa.dag_id, sb.dag_id);
  field("metric", sa.metric, sb.metric);
  field("metric_valid", sa.metric_valid, sb.metric_valid);
  field("head", sa.head, sb.head);
  field("head_valid", sa.head_valid, sb.head_valid);
  field("parent", sa.parent, sb.parent);
  field("parent_valid", sa.parent_valid, sb.parent_valid);
  field("last_heard_s", sa.last_heard_s, sb.last_heard_s);
  field("deliveries", sa.deliveries, sb.deliveries);
  if (!(sa.rng == sb.rng)) out << " rng=<diverged>";
  if (sa.cache.size() != sb.cache.size()) {
    out << " cache_size=" << sa.cache.size() << " vs " << sb.cache.size();
  } else {
    auto ib = sb.cache.begin();
    for (const auto& [id, entry] : sa.cache) {
      if (ib->first != id) {
        out << " cache_key=" << id << " vs " << ib->first;
        break;
      }
      if (!cache_entries_equal(entry, ib->second)) {
        out << " cache[" << id << "]=<diverged age " << entry.age << " vs "
            << ib->second.age << '>';
        break;
      }
      ++ib;
    }
  }
  const std::string text = out.str();
  return text.empty() ? std::string(" <bitwise identical>") : text;
}

}  // namespace ssmwn::core
