#include "core/protocol.hpp"

#include <algorithm>

namespace ssmwn::core {

namespace {

/// Binary search for `id` in a digest vector sorted by id.
bool digest_contains(const std::vector<NeighborDigest>& digests,
                     topology::ProtocolId id) {
  auto it = std::lower_bound(
      digests.begin(), digests.end(), id,
      [](const NeighborDigest& d, topology::ProtocolId key) {
        return d.id < key;
      });
  return it != digests.end() && it->id == id;
}

}  // namespace

DensityProtocol::DensityProtocol(topology::IdAssignment uids,
                                 ProtocolConfig config, util::Rng rng)
    : uids_(std::move(uids)), config_(config) {
  name_space_ = config_.dag_name_space;
  if (name_space_ == 0) {
    name_space_ = config_.delta_hint * config_.delta_hint + 1;
  }
  name_space_ = std::max<std::uint64_t>(name_space_, config_.delta_hint + 1);

  states_.resize(uids_.size());
  for (graph::NodeId p = 0; p < states_.size(); ++p) {
    states_[p].uid = uids_[p];
    states_[p].rng = rng.split();
    states_[p].dag_id = states_[p].rng.below(name_space_);
  }

  // The paper's program, verbatim as guarded commands. Guards that are
  // plain `true` in the paper stay `true` here; N1's effective guard is
  // the conflict test folded into newId.
  engine_
      .add(
          "N1", [this](const NodeState&) { return config_.cluster.use_dag_ids; },
          [this](NodeState& s) { rule_n1(s); })
      .add(
          "R1", [](const NodeState&) { return true; },
          [this](NodeState& s) { rule_r1(s); })
      .add(
          "R2", [](const NodeState&) { return true; },
          [this](NodeState& s) { rule_r2(s); });
}

void DensityProtocol::make_frame(graph::NodeId sender, FrameHeader& header,
                                 std::span<Digest> digests) const {
  const NodeState& s = states_[sender];
  header.id = s.uid;
  header.dag_id = s.dag_id;
  header.metric = s.metric;
  header.metric_valid = s.metric_valid;
  header.head = s.head;
  header.head_valid = s.head_valid;
  std::size_t i = 0;
  for (const auto& [id, entry] : s.cache) {  // map order: sorted by id
    digests[i++] = NeighborDigest{
        .id = id,
        .dag_id = entry.dag_id,
        .metric = entry.metric,
        .metric_valid = entry.metric_valid,
        .is_head = entry.head_valid && entry.head == id,
    };
  }
}

DensityProtocol::Frame DensityProtocol::make_frame(
    graph::NodeId sender) const {
  Frame frame;
  frame.digests.resize(digest_count(sender));
  FrameHeader header;
  make_frame(sender, header, frame.digests);
  frame.id = header.id;
  frame.dag_id = header.dag_id;
  frame.metric = header.metric;
  frame.metric_valid = header.metric_valid;
  frame.head = header.head;
  frame.head_valid = header.head_valid;
  return frame;
}

void DensityProtocol::deliver(graph::NodeId receiver,
                              const FrameHeader& header,
                              std::span<const Digest> digests) {
  NodeState& s = states_[receiver];
  if (header.id == s.uid) return;  // defensive: never cache oneself
  CacheEntry& entry = s.cache[header.id];
  entry.dag_id = header.dag_id;
  entry.metric = header.metric;
  entry.metric_valid = header.metric_valid;
  entry.head = header.head;
  entry.head_valid = header.head_valid;
  entry.digests.assign(digests.begin(), digests.end());
  entry.age = 0;
}

void DensityProtocol::deliver(graph::NodeId receiver, const Frame& frame) {
  const FrameHeader header{
      .id = frame.id,
      .dag_id = frame.dag_id,
      .metric = frame.metric,
      .metric_valid = frame.metric_valid,
      .head = frame.head,
      .head_valid = frame.head_valid,
  };
  deliver(receiver, header, frame.digests);
}

void DensityProtocol::on_edge_removed(graph::NodeId a, graph::NodeId b) {
  if (a >= states_.size() || b >= states_.size()) return;
  const auto forget = [this](graph::NodeId node, graph::NodeId gone) {
    auto& cache = states_[node].cache;
    if (const auto it = cache.find(uids_[gone]); it != cache.end()) {
      cache.erase(it);
    }
  };
  forget(a, b);
  forget(b, a);
}

void DensityProtocol::tick(graph::NodeId node) {
  engine_.sweep(states_[node]);
}

void DensityProtocol::end_step(graph::NodeId node) {
  NodeState& s = states_[node];
  for (auto it = s.cache.begin(); it != s.cache.end();) {
    if (++it->second.age > config_.cache_max_age) {
      it = s.cache.erase(it);
    } else {
      ++it;
    }
  }
}

NodeRank DensityProtocol::self_rank(const NodeState& s) const {
  return NodeRank{
      .metric = s.metric,
      .incumbent = s.head_valid && s.head == s.uid,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(s.dag_id)
                    : s.uid,
      .uid = s.uid,
  };
}

NodeRank DensityProtocol::entry_rank(topology::ProtocolId id,
                                     const CacheEntry& e) const {
  return NodeRank{
      .metric = e.metric,
      .incumbent = e.head_valid && e.head == id,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(e.dag_id)
                    : id,
      .uid = id,
  };
}

NodeRank DensityProtocol::digest_rank(const NeighborDigest& d) const {
  return NodeRank{
      .metric = d.metric,
      .incumbent = d.is_head,
      .tie_id = config_.cluster.use_dag_ids
                    ? static_cast<topology::ProtocolId>(d.dag_id)
                    : d.id,
      .uid = d.id,
  };
}

void DensityProtocol::rule_n1(NodeState& s) {
  // newId: keep the current name unless some cached neighbor holds it.
  bool conflict = false;
  for (const auto& [id, entry] : s.cache) {
    if (entry.dag_id != s.dag_id) continue;
    switch (config_.dag_policy) {
      case DagRedrawPolicy::N1Randomized:
        conflict = true;
        break;
      case DagRedrawPolicy::SmallerUidRedraws:
        if (s.uid < id) conflict = true;
        break;
    }
    if (conflict) break;
  }
  if (!conflict) {
    // Also re-home a corrupted name that escaped the name space.
    if (s.dag_id < name_space_) return;
  }
  // Draw uniformly from γ minus the cached neighbor names.
  std::vector<std::uint64_t> taken;
  taken.reserve(s.cache.size());
  for (const auto& [id, entry] : s.cache) {
    if (entry.dag_id < name_space_) taken.push_back(entry.dag_id);
  }
  std::sort(taken.begin(), taken.end());
  taken.erase(std::unique(taken.begin(), taken.end()), taken.end());
  if (taken.size() >= name_space_) return;  // no free name; wait for aging
  const std::uint64_t free_count = name_space_ - taken.size();
  std::uint64_t candidate = s.rng.below(free_count);
  for (std::uint64_t used : taken) {
    if (used <= candidate) ++candidate;
  }
  s.dag_id = candidate;
}

void DensityProtocol::rule_r1(NodeState& s) {
  const std::size_t degree = s.cache.size();
  if (config_.metric == ElectionMetric::Degree) {
    s.metric = static_cast<double>(degree);
    s.metric_valid = true;
    return;
  }
  // d_p = (|N_p| + e(N_p)) / |N_p| over the cached neighborhood; links
  // among neighbors are reconstructed from the relayed digests (an edge
  // q—r is believed iff either endpoint lists the other).
  if (degree == 0) {
    s.metric = 0.0;
    s.metric_valid = true;
    return;
  }
  std::size_t links = degree;
  for (auto a = s.cache.begin(); a != s.cache.end(); ++a) {
    auto b = a;
    for (++b; b != s.cache.end(); ++b) {
      if (digest_contains(a->second.digests, b->first) ||
          digest_contains(b->second.digests, a->first)) {
        ++links;
      }
    }
  }
  s.metric = static_cast<double>(links) / static_cast<double>(degree);
  s.metric_valid = true;
}

void DensityProtocol::rule_r2(NodeState& s) {
  if (!s.metric_valid) return;  // R1 always runs first in the sweep
  const bool inc = config_.cluster.incumbency;
  const NodeRank me = self_rank(s);

  // Local ≺-maximum test against every cached neighbor with a usable
  // density.
  bool local_max = true;
  for (const auto& [id, entry] : s.cache) {
    if (!entry.metric_valid) continue;
    if (precedes(me, entry_rank(id, entry), inc)) {
      local_max = false;
      break;
    }
  }

  if (local_max) {
    // Fusion: search the relayed digests for a dominating cluster-head in
    // N²_p. (1-hop heads cannot dominate here, or local_max were false.)
    const NeighborDigest* blocking = nullptr;
    if (config_.cluster.fusion) {
      for (const auto& [id, entry] : s.cache) {
        for (const NeighborDigest& d : entry.digests) {
          if (!d.is_head || !d.metric_valid || d.id == s.uid) continue;
          if (!precedes(me, digest_rank(d), inc)) continue;
          if (blocking == nullptr ||
              precedes(digest_rank(*blocking), digest_rank(d), inc)) {
            blocking = &d;
          }
        }
      }
    }
    if (blocking == nullptr) {
      // clusterHead = Id_p: p wins in its neighborhood.
      s.head = s.uid;
      s.head_valid = true;
      s.parent = s.uid;
      s.parent_valid = true;
      return;
    }
    // Demoted: fuse into the dominating head's cluster through the
    // ≺-best neighbor that can hear it.
    const topology::ProtocolId dominating = blocking->id;
    const CacheEntry* witness = nullptr;
    topology::ProtocolId witness_id = 0;
    for (const auto& [id, entry] : s.cache) {
      if (!entry.metric_valid || !digest_contains(entry.digests, dominating)) {
        continue;
      }
      if (witness == nullptr ||
          precedes(entry_rank(witness_id, *witness), entry_rank(id, entry),
                   inc)) {
        witness = &entry;
        witness_id = id;
      }
    }
    if (witness == nullptr) return;  // stale digest; retry next step
    s.parent = witness_id;
    s.parent_valid = true;
    if (witness->head_valid) {
      s.head = witness->head;
      s.head_valid = true;
    }
    return;
  }

  // clusterHead = H(max≺ N_p): join the strongest neighbor and adopt its
  // head value (which flows down the clusterization tree one hop per
  // step).
  const CacheEntry* best = nullptr;
  topology::ProtocolId best_id = 0;
  for (const auto& [id, entry] : s.cache) {
    if (!entry.metric_valid) continue;
    if (best == nullptr ||
        precedes(entry_rank(best_id, *best), entry_rank(id, entry), inc)) {
      best = &entry;
      best_id = id;
    }
  }
  if (best == nullptr) return;  // unreachable: local_max would be true
  s.parent = best_id;
  s.parent_valid = true;
  if (best->head_valid) {
    s.head = best->head;
    s.head_valid = true;
  }
}

std::vector<char> DensityProtocol::head_flags() const {
  std::vector<char> flags(states_.size(), 0);
  for (graph::NodeId p = 0; p < states_.size(); ++p) {
    const NodeState& s = states_[p];
    flags[p] = (s.head_valid && s.head == s.uid) ? 1 : 0;
  }
  return flags;
}

std::vector<topology::ProtocolId> DensityProtocol::head_values() const {
  std::vector<topology::ProtocolId> values(states_.size(), 0);
  for (graph::NodeId p = 0; p < states_.size(); ++p) {
    values[p] = states_[p].head;
  }
  return values;
}

std::vector<topology::ProtocolId> DensityProtocol::parent_values() const {
  std::vector<topology::ProtocolId> values(states_.size(), 0);
  for (graph::NodeId p = 0; p < states_.size(); ++p) {
    values[p] = states_[p].parent;
  }
  return values;
}

std::vector<double> DensityProtocol::metrics() const {
  std::vector<double> values(states_.size(), 0.0);
  for (graph::NodeId p = 0; p < states_.size(); ++p) {
    values[p] = states_[p].metric;
  }
  return values;
}

std::vector<std::uint64_t> DensityProtocol::dag_id_values() const {
  std::vector<std::uint64_t> values(states_.size(), 0);
  for (graph::NodeId p = 0; p < states_.size(); ++p) {
    values[p] = states_[p].dag_id;
  }
  return values;
}

namespace {

void scramble_state(DensityProtocol::NodeState& s, std::uint64_t name_space,
                    std::size_t node_count, util::Rng& rng) {
  s.dag_id = rng.below(name_space * 2);  // may even escape the name space
  s.metric = rng.uniform(0.0, 8.0);
  s.metric_valid = rng.chance(0.75);
  s.head = rng.below(node_count * 2);
  s.head_valid = rng.chance(0.75);
  s.parent = rng.below(node_count * 2);
  s.parent_valid = rng.chance(0.75);
  s.cache.clear();
  // Plant a few phantom cache entries (possibly naming nodes that do not
  // exist) with arbitrary contents; eviction and fresh frames must flush
  // them.
  const std::size_t phantoms = rng.index(4);
  for (std::size_t i = 0; i < phantoms; ++i) {
    DensityProtocol::CacheEntry entry;
    entry.dag_id = rng.below(name_space * 2);
    entry.metric = rng.uniform(0.0, 8.0);
    entry.metric_valid = rng.chance(0.8);
    entry.head = rng.below(node_count * 2);
    entry.head_valid = rng.chance(0.8);
    entry.age = 0;
    s.cache[rng.below(node_count * 2)] = std::move(entry);
  }
}

}  // namespace

void DensityProtocol::corrupt_all(util::Rng& rng) {
  for (auto& s : states_) {
    scramble_state(s, name_space_, states_.size(), rng);
  }
}

std::size_t DensityProtocol::corrupt_fraction(util::Rng& rng,
                                              double fraction) {
  std::size_t hit = 0;
  for (auto& s : states_) {
    if (rng.chance(fraction)) {
      scramble_state(s, name_space_, states_.size(), rng);
      ++hit;
    }
  }
  return hit;
}

void DensityProtocol::reset_node(graph::NodeId p) {
  NodeState& s = states_[p];
  const auto uid = s.uid;
  auto rng = s.rng;
  s = NodeState{};
  s.uid = uid;
  s.rng = rng;
  s.dag_id = s.rng.below(name_space_);
}

}  // namespace ssmwn::core
