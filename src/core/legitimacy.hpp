// Legitimacy predicate for DensityProtocol executions.
//
// "Legitimate" is the paper's target configuration, checked from the
// outside: every node has committed all three shared variables, the
// elected heads form an independent set, the head assignment is
// quiescent between successive checks — and, when head identity is a
// pure function of the topology, it is exactly the synchronous
// oracle's. With the randomized DAG renaming or the incumbency bonus
// the fixpoint is history-dependent (incumbency deliberately favors
// whichever heads formed first), so there the structural checks are
// the whole predicate; `head_identity_is_deterministic` tells callers
// which regime they are in.
//
// One definition, shared by every driver that measures convergence —
// the campaign runner and the CLI must never disagree about what
// "converged" means for the same scenario.
#pragma once

#include <vector>

#include "core/clustering.hpp"
#include "core/options.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "topology/ids.hpp"

namespace ssmwn::core {

/// True iff the variant's head assignment is a deterministic function
/// of (graph, ids) — i.e. an exact-oracle comparison is meaningful.
[[nodiscard]] constexpr bool head_identity_is_deterministic(
    const ClusterOptions& options) noexcept {
  return !options.use_dag_ids && !options.incumbency;
}

/// Stateful checker: call `check()` once per observation interval. The
/// quiescence condition compares against the previous check's heads,
/// so the first check after construction (or `reset()`) never passes.
class LegitimacyCheck {
 public:
  /// `graph` and `protocol` are observed, not owned. Pass `oracle` to
  /// additionally require the exact oracle head assignment (callers
  /// gate this on `head_identity_is_deterministic`).
  LegitimacyCheck(const graph::Graph& graph, const DensityProtocol& protocol,
                  const ClusteringResult* oracle = nullptr)
      : graph_(&graph), protocol_(&protocol), oracle_(oracle) {}

  /// Drops the quiescence baseline (e.g. before measuring recovery
  /// from a freshly injected corruption).
  void reset() {
    has_baseline_ = false;
    prev_heads_.clear();
  }

  /// Evaluates the predicate against the protocol's current state.
  [[nodiscard]] bool check();

 private:
  const graph::Graph* graph_;
  const DensityProtocol* protocol_;
  const ClusteringResult* oracle_;
  std::vector<topology::ProtocolId> prev_heads_;
  bool has_baseline_ = false;
};

}  // namespace ssmwn::core
