// Sorted flat-vector map for per-node neighbor caches.
//
// The protocol keeps one cache entry per heard neighbor, iterates the
// whole cache in id order every step (rules R1/R2 and frame building),
// and inserts/erases only when topology or delivery luck changes. A
// std::map fits that access pattern badly: every entry is its own heap
// node, so the O(deg²) density rule chases pointers all over the heap.
// FlatMap stores entries contiguously, sorted by key — iteration is a
// linear scan, lookup a binary search, and steady-state steps never
// allocate. Insert/erase shift the tail, which is O(deg) — irrelevant
// for radio degrees and only paid when the neighborhood actually
// changes.
//
// The interface is the subset of std::map the protocol and its tests
// use; iteration order (ascending key) is identical, so swapping the
// container is behavior-preserving bit for bit.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace ssmwn::core {

template <typename Key, typename Value>
class FlatMap {
 public:
  /// Public members named like std::map's value_type so structured
  /// bindings and `it->first` / `it->second` keep working.
  struct Item {
    Key first;
    Value second;
  };

  using iterator = typename std::vector<Item>::iterator;
  using const_iterator = typename std::vector<Item>::const_iterator;

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  [[nodiscard]] iterator begin() noexcept { return items_.begin(); }
  [[nodiscard]] iterator end() noexcept { return items_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return items_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }

  [[nodiscard]] iterator find(const Key& key) noexcept {
    auto it = lower_bound(key);
    return (it != items_.end() && it->first == key) ? it : items_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const noexcept {
    auto it = lower_bound(key);
    return (it != items_.end() && it->first == key) ? it : items_.end();
  }

  [[nodiscard]] bool contains(const Key& key) const noexcept {
    return find(key) != items_.end();
  }

  /// Inserts a default-constructed value at the sorted position if absent.
  ///
  /// Self-aliasing safe: `key` may be a reference into this map's own
  /// storage (`m[m.begin()->first]`, a key field inside a stored value).
  /// The insert shifts the tail — and may reallocate — which would leave
  /// such a reference dangling mid-insert, so the key is copied to a
  /// local before any storage moves.
  Value& operator[](const Key& key) {
    const std::size_t pos =
        static_cast<std::size_t>(lower_bound(key) - items_.begin());
    if (pos < items_.size() && items_[pos].first == key) {
      return items_[pos].second;
    }
    const Key stable_key = key;  // `key` may alias into items_
    items_.insert(items_.begin() + static_cast<std::ptrdiff_t>(pos),
                  Item{stable_key, Value{}});
    return items_[pos].second;
  }

  iterator erase(iterator it) { return items_.erase(it); }

  /// Erases by key; returns true if an entry was removed.
  bool erase(const Key& key) {
    auto it = find(key);
    if (it == items_.end()) return false;
    items_.erase(it);
    return true;
  }

  /// Capacity is retained across `clear()` — after warm-up, re-filling
  /// to at most the high-water size never touches the heap. The per-node
  /// digest pools and the zero-allocation audit rely on this.
  void clear() noexcept { items_.clear(); }

  void reserve(std::size_t n) { items_.reserve(n); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return items_.capacity();
  }

 private:
  [[nodiscard]] iterator lower_bound(const Key& key) noexcept {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const Item& item, const Key& k) { return item.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const noexcept {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const Item& item, const Key& k) { return item.first < k; });
  }

  std::vector<Item> items_;
};

}  // namespace ssmwn::core
