#include "core/density.hpp"

#include <algorithm>

#include "util/merge.hpp"

namespace ssmwn::core {

double node_density(const graph::Graph& g, graph::NodeId p) {
  const auto neighbors = g.neighbors(p);
  if (neighbors.empty()) return 0.0;
  // Each neighbor q contributes |N_q ∩ N_p| ordered pairs of adjacent
  // neighbors; halving yields e(N_p). The branchless merge/gallop kernel
  // picks its strategy per pair of adjacency lists (skewed degrees are
  // common at cluster borders).
  std::size_t ordered_pairs = 0;
  for (graph::NodeId q : neighbors) {
    const auto nq = g.neighbors(q);
    ordered_pairs += util::intersect_count(nq.data(), nq.size(),
                                           neighbors.data(), neighbors.size());
  }
  const std::size_t links = neighbors.size() + ordered_pairs / 2;
  return static_cast<double>(links) / static_cast<double>(neighbors.size());
}

std::vector<double> compute_densities(const graph::Graph& g) {
  std::vector<double> densities(g.node_count(), 0.0);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    densities[p] = node_density(g, p);
  }
  return densities;
}

std::size_t edges_among(const graph::Graph& g,
                        std::span<const graph::NodeId> nodes) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (g.adjacent(nodes[i], nodes[j])) ++count;
    }
  }
  return count;
}

}  // namespace ssmwn::core
