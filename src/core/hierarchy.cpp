#include "core/hierarchy.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/density.hpp"

namespace ssmwn::core {

std::vector<graph::NodeId> Hierarchy::top_heads() const {
  std::vector<graph::NodeId> out;
  if (levels.empty()) return out;
  const auto& top = levels.back();
  out.reserve(top.clustering.heads.size());
  for (graph::NodeId local : top.clustering.heads) {
    out.push_back(top.level_to_base[local]);
  }
  return out;
}

graph::NodeId Hierarchy::head_at_level(graph::NodeId p, std::size_t k) const {
  if (k >= levels.size()) {
    throw std::out_of_range("Hierarchy::head_at_level: level out of range");
  }
  // Walk up: at each level, map p (a base index) to its level-local
  // index, take that level's head, and continue with the head's base
  // index.
  graph::NodeId current = p;
  for (std::size_t level = 0; level <= k; ++level) {
    const auto& lvl = levels[level];
    const auto it = std::find(lvl.level_to_base.begin(),
                              lvl.level_to_base.end(), current);
    if (it == lvl.level_to_base.end()) {
      // `current` is not a member of this level (it was absorbed below);
      // it can only happen if the caller passes a non-head for level>0 —
      // resolve through level 0 first.
      throw std::logic_error("Hierarchy::head_at_level: broken chain");
    }
    const auto local =
        static_cast<graph::NodeId>(it - lvl.level_to_base.begin());
    current = lvl.level_to_base[lvl.clustering.head_index[local]];
  }
  return current;
}

graph::Graph overlay_graph(const graph::Graph& g,
                           const ClusteringResult& clustering) {
  const auto& heads = clustering.heads;
  // head base index -> overlay index
  std::vector<std::uint32_t> overlay_index(g.node_count(),
                                           graph::kInvalidNode);
  for (std::uint32_t i = 0; i < heads.size(); ++i) {
    overlay_index[heads[i]] = i;
  }

  graph::Graph overlay(heads.size());
  // Scan every radio edge once; an edge whose endpoints belong to
  // different clusters links those clusters' heads in the overlay.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (graph::NodeId a = 0; a < g.node_count(); ++a) {
    for (graph::NodeId b : g.neighbors(a)) {
      if (b <= a) continue;
      const graph::NodeId ha = clustering.head_index[a];
      const graph::NodeId hb = clustering.head_index[b];
      if (ha == hb) continue;
      const auto ia = overlay_index[ha];
      const auto ib = overlay_index[hb];
      const auto key = std::minmax(ia, ib);
      seen.emplace_back(key.first, key.second);
    }
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  for (const auto& [ia, ib] : seen) overlay.add_edge(ia, ib);
  overlay.finalize();
  return overlay;
}

Hierarchy build_hierarchy(const graph::Graph& g,
                          const topology::IdAssignment& uids,
                          const ClusterOptions& options,
                          std::size_t max_levels) {
  if (uids.size() != g.node_count()) {
    throw std::invalid_argument("build_hierarchy: uids size mismatch");
  }
  Hierarchy hierarchy;
  if (g.node_count() == 0 || max_levels == 0) return hierarchy;

  // Level 0: the radio graph itself. DAG ids are rebuilt per level when
  // requested — but since overlay graphs are small, we keep the plain
  // order here and leave DAG renaming to the caller's options for level
  // 0 only (overlay identifier distributions come from the level-0 head
  // ids, which are as random as the deployment's).
  ClusterOptions level_options = options;
  level_options.use_dag_ids = false;  // see note above

  HierarchyLevel level0;
  level0.graph = g;
  level0.level_to_base.resize(g.node_count());
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    level0.level_to_base[p] = p;
  }
  level0.clustering = cluster_density(g, uids, level_options);
  hierarchy.levels.push_back(std::move(level0));

  while (hierarchy.levels.size() < max_levels) {
    const HierarchyLevel& below = hierarchy.levels.back();
    const std::size_t head_count = below.clustering.heads.size();
    if (head_count <= 1) break;

    HierarchyLevel next;
    next.graph = overlay_graph(below.graph, below.clustering);
    next.level_to_base.reserve(head_count);
    topology::IdAssignment level_ids;
    level_ids.reserve(head_count);
    for (graph::NodeId local : below.clustering.heads) {
      next.level_to_base.push_back(below.level_to_base[local]);
      level_ids.push_back(uids[below.level_to_base[local]]);
    }
    next.clustering = cluster_density(next.graph, level_ids, level_options);
    const std::size_t new_heads = next.clustering.heads.size();
    hierarchy.levels.push_back(std::move(next));
    if (new_heads >= head_count) break;  // no longer shrinking
  }
  return hierarchy;
}

}  // namespace ssmwn::core
