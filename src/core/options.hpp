// Feature toggles for the clustering algorithm, mirroring the paper's
// narrative: the base density-driven heuristic of [16], the constant-height
// DAG renaming of Section 4.1, and the two stability improvements of
// Section 4.3.
#pragma once

namespace ssmwn::core {

struct ClusterOptions {
  /// Break density ties on the locally-unique DAG identifiers (Section
  /// 4.1) instead of the global protocol identifiers. Bounds the height of
  /// the ≺-DAG — and hence stabilization time — by a constant regardless
  /// of how protocol identifiers are distributed.
  bool use_dag_ids = false;

  /// Section 4.3, first improvement: on a density tie, a node that is
  /// currently a cluster-head beats a node that is not, so heads keep
  /// their role as long as possible.
  bool incumbency = false;

  /// Section 4.3, second improvement: a node is only a cluster-head if no
  /// dominating head exists in its 2-neighborhood; a dominated head merges
  /// its cluster into the dominating one. Guarantees head separation ≥ 3
  /// hops and cluster diameter ≥ 2.
  bool fusion = false;

  /// Convenience presets.
  [[nodiscard]] static ClusterOptions basic() { return {}; }
  [[nodiscard]] static ClusterOptions with_dag() {
    return {.use_dag_ids = true, .incumbency = false, .fusion = false};
  }
  [[nodiscard]] static ClusterOptions improved() {
    return {.use_dag_ids = false, .incumbency = true, .fusion = true};
  }
  [[nodiscard]] static ClusterOptions full() {
    return {.use_dag_ids = true, .incumbency = true, .fusion = true};
  }
};

}  // namespace ssmwn::core
