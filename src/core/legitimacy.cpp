#include "core/legitimacy.hpp"

#include <utility>

namespace ssmwn::core {

bool LegitimacyCheck::check() {
  const graph::Graph& g = *graph_;
  bool ok = true;
  for (graph::NodeId p = 0; p < g.node_count() && ok; ++p) {
    const auto& s = protocol_->state(p);
    ok = s.head_valid && s.metric_valid && s.parent_valid &&
         (oracle_ == nullptr || s.head == oracle_->head_id[p]);
  }
  if (ok) {
    const auto flags = protocol_->head_flags();
    for (graph::NodeId p = 0; p < g.node_count() && ok; ++p) {
      if (!flags[p]) continue;
      for (const graph::NodeId q : g.neighbors(p)) {
        if (flags[q]) {
          ok = false;
          break;
        }
      }
    }
  }
  // Always refresh the baseline — an illegitimate snapshot still
  // defines "changed since last check" for the next one.
  auto heads = protocol_->head_values();
  if (ok) ok = has_baseline_ && heads == prev_heads_;
  prev_heads_ = std::move(heads);
  has_baseline_ = true;
  return ok;
}

}  // namespace ssmwn::core
