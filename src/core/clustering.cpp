#include "core/clustering.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/density.hpp"
#include "core/soa_state.hpp"
#include "graph/algorithms.hpp"

namespace ssmwn::core {

namespace {

std::vector<NodeRank> build_ranks(const graph::Graph& g,
                                  const topology::IdAssignment& uids,
                                  std::span<const double> metric,
                                  const ClusterOptions& options,
                                  std::span<const std::uint64_t> dag_ids,
                                  std::span<const char> previous_heads) {
  const std::size_t n = g.node_count();
  std::vector<NodeRank> ranks(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    ranks[p].metric = metric[p];
    ranks[p].uid = uids[p];
    ranks[p].tie_id =
        options.use_dag_ids ? static_cast<topology::ProtocolId>(dag_ids[p])
                            : uids[p];
    ranks[p].incumbent = options.incumbency && !previous_heads.empty() &&
                         previous_heads[p] != 0;
  }
  return ranks;
}

}  // namespace

ClusteringResult cluster_by_metric(const graph::Graph& g,
                                   const topology::IdAssignment& uids,
                                   std::span<const double> metric,
                                   const ClusterOptions& options,
                                   std::span<const std::uint64_t> dag_ids,
                                   std::span<const char> previous_heads) {
  const std::size_t n = g.node_count();
  if (uids.size() != n || metric.size() != n) {
    throw std::invalid_argument("cluster_by_metric: size mismatch");
  }
  if (options.use_dag_ids && dag_ids.size() != n) {
    throw std::invalid_argument(
        "cluster_by_metric: use_dag_ids set but dag_ids missing");
  }
  if (!previous_heads.empty() && previous_heads.size() != n) {
    throw std::invalid_argument("cluster_by_metric: previous_heads size");
  }

  ClusteringResult result;
  result.metric.assign(metric.begin(), metric.end());
  result.rank =
      build_ranks(g, uids, metric, options, dag_ids, previous_heads);
  const bool inc = options.incumbency;
  // Pack every rank once; all the ≺ comparisons below become single
  // integer compares on the columnar keys (docs/ARCHITECTURE.md §9).
  const RankKeyColumn key = pack_rank_column(result.rank, inc);

  // A node is a local maximum iff it ≺-dominates its whole neighborhood.
  std::vector<char> local_max(n, 1);
  for (graph::NodeId p = 0; p < n; ++p) {
    for (graph::NodeId q : g.neighbors(p)) {
      if (packed_precedes(key[p], key[q])) {
        local_max[p] = 0;
        break;
      }
    }
  }

  // Head confirmation. Without fusion every local maximum is a head. With
  // fusion, process local maxima in decreasing ≺ order: p is confirmed
  // iff no already-confirmed head in N²_p dominates it. Any head that
  // could dominate p is ≻ p and hence already decided, so one pass gives
  // the fixpoint the distributed rules settle into.
  result.is_head.assign(n, 0);
  if (!options.fusion) {
    for (graph::NodeId p = 0; p < n; ++p) result.is_head[p] = local_max[p];
  } else {
    std::vector<graph::NodeId> order;
    order.reserve(n);
    for (graph::NodeId p = 0; p < n; ++p) {
      if (local_max[p]) order.push_back(p);
    }
    std::sort(order.begin(), order.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                return packed_precedes(key[b], key[a]);  // decreasing
              });
    for (graph::NodeId p : order) {
      bool blocked = false;
      for (graph::NodeId q : graph::two_hop_neighborhood(g, p)) {
        if (result.is_head[q] && packed_precedes(key[p], key[q])) {
          blocked = true;
          break;
        }
      }
      if (!blocked) result.is_head[p] = 1;
    }
  }

  // Parent selection (the F function).
  result.parent.resize(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    if (result.is_head[p]) {
      result.parent[p] = p;
      continue;
    }
    if (!local_max[p]) {
      // F(p) = max≺ N_p. Isolated nodes are always local maxima, so N_p
      // is non-empty here.
      graph::NodeId best = g.neighbors(p).front();
      for (graph::NodeId q : g.neighbors(p)) {
        if (packed_precedes(key[best], key[q])) best = q;
      }
      result.parent[p] = best;
      continue;
    }
    // Demoted local maximum (fusion only): join the dominating head
    // through the ≺-best common neighbor.
    graph::NodeId dominating = graph::kInvalidNode;
    for (graph::NodeId q : graph::two_hop_neighborhood(g, p)) {
      if (!result.is_head[q] || !packed_precedes(key[p], key[q])) continue;
      if (dominating == graph::kInvalidNode ||
          packed_precedes(key[dominating], key[q])) {
        dominating = q;
      }
    }
    if (dominating == graph::kInvalidNode) {
      throw std::logic_error("cluster_by_metric: demoted without dominator");
    }
    graph::NodeId witness = graph::kInvalidNode;
    for (graph::NodeId x : g.neighbors(p)) {
      if (!g.adjacent(x, dominating)) continue;
      if (witness == graph::kInvalidNode ||
          packed_precedes(key[witness], key[x])) {
        witness = x;
      }
    }
    if (witness == graph::kInvalidNode) {
      throw std::logic_error("cluster_by_metric: dominator not at 2 hops");
    }
    result.parent[p] = witness;
  }

  // Resolve H by following parent chains (acyclic; see header comment).
  const graph::ParentForest forest(result.parent);
  result.head_index.resize(n);
  result.head_id.resize(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    result.head_index[p] = forest.root(p);
    result.head_id[p] = uids[forest.root(p)];
  }
  for (graph::NodeId p = 0; p < n; ++p) {
    if (result.is_head[p]) result.heads.push_back(p);
  }
  return result;
}

ClusteringResult cluster_density(const graph::Graph& g,
                                 const topology::IdAssignment& uids,
                                 const ClusterOptions& options,
                                 std::span<const std::uint64_t> dag_ids,
                                 std::span<const char> previous_heads) {
  const auto densities = compute_densities(g);
  return cluster_by_metric(g, uids, densities, options, dag_ids,
                           previous_heads);
}

}  // namespace ssmwn::core
