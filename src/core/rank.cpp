#include "core/rank.hpp"

namespace ssmwn::core {

bool precedes(const NodeRank& p, const NodeRank& q, bool incumbency) noexcept {
  return packed_precedes(pack_rank(p, incumbency), pack_rank(q, incumbency));
}

std::size_t max_rank_index(std::span<const NodeRank> ranks,
                           bool incumbency) noexcept {
  if (ranks.empty()) return 0;
  std::size_t best = 0;
  PackedRank best_key = pack_rank(ranks[0], incumbency);
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    const PackedRank key = pack_rank(ranks[i], incumbency);
    if (packed_precedes(best_key, key)) {
      best_key = key;
      best = i;
    }
  }
  return best;
}

}  // namespace ssmwn::core
