#include "core/rank.hpp"

namespace ssmwn::core {

bool precedes(const NodeRank& p, const NodeRank& q, bool incumbency) noexcept {
  if (p.metric != q.metric) return p.metric < q.metric;
  if (incumbency && p.incumbent != q.incumbent) return q.incumbent;
  if (p.tie_id != q.tie_id) return q.tie_id < p.tie_id;
  if (p.uid != q.uid) return q.uid < p.uid;
  return false;  // identical rank: not strictly preceding
}

std::size_t max_rank_index(std::span<const NodeRank> ranks,
                           bool incumbency) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    if (precedes(ranks[best], ranks[i], incumbency)) best = i;
  }
  return best;
}

}  // namespace ssmwn::core
