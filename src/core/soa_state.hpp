// Structure-of-arrays storage for the protocol's per-node shared
// variables, plus the flat compare kernels built on top of it.
//
// The paper's shared variables (Id_p, d_p, H(p), the parent pointer and
// their valid bits) used to live inside one per-node struct. Splitting
// them into parallel flat arrays buys two things:
//
//   * the snapshot/diff kernels the quiescence machinery and the
//     differential test harness run every step become straight-line
//     loops over contiguous same-typed memory, which the compiler
//     vectorizes under -O3 (bench_micro measures exactly these loops);
//   * a whole-population scan (head census, metric sweep, divergence
//     search) touches only the columns it needs instead of dragging
//     every node's cache and RNG state through the cache lines.
//
// The cold per-node state (neighbor cache, RNG, async observability)
// stays in an array-of-structs next door in DensityProtocol; only the
// seven hot scalars move here.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/rank.hpp"
#include "topology/ids.hpp"
#include "util/merge.hpp"

namespace ssmwn::core {

/// Bit-level double equality: the equivalence guarantee of the
/// dirty-region stepper is *bitwise*, so NaNs compare equal to
/// themselves and +0.0 differs from -0.0 (IEEE `==` would get both
/// wrong for this purpose).
[[nodiscard]] inline bool double_bits_equal(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// The seven hot per-node scalars, column-major. Sized once by the
/// protocol constructor; never resized on the hot path.
struct NodeScalars {
  std::vector<std::uint64_t> dag_id;
  std::vector<double> metric;
  std::vector<topology::ProtocolId> head;
  std::vector<topology::ProtocolId> parent;
  std::vector<std::uint8_t> metric_valid;
  std::vector<std::uint8_t> head_valid;
  std::vector<std::uint8_t> parent_valid;

  void resize(std::size_t n) {
    dag_id.assign(n, 0);
    metric.assign(n, 0.0);
    head.assign(n, 0);
    parent.assign(n, 0);
    metric_valid.assign(n, 0);
    head_valid.assign(n, 0);
    parent_valid.assign(n, 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return dag_id.size(); }
};

/// A value copy of one row — the before-image the tracked rule sweep
/// diffs against to decide whether a node's shared variables moved.
struct ScalarRow {
  std::uint64_t dag_id = 0;
  double metric = 0.0;
  topology::ProtocolId head = 0;
  topology::ProtocolId parent = 0;
  std::uint8_t metric_valid = 0;
  std::uint8_t head_valid = 0;
  std::uint8_t parent_valid = 0;
};

[[nodiscard]] inline ScalarRow scalar_row(const NodeScalars& cols,
                                          std::size_t i) noexcept {
  return ScalarRow{cols.dag_id[i],     cols.metric[i],
                   cols.head[i],       cols.parent[i],
                   cols.metric_valid[i], cols.head_valid[i],
                   cols.parent_valid[i]};
}

/// True iff the *frame-visible* part of the row changed: everything a
/// neighbor could observe through a broadcast (Id_p, d_p, H(p) and the
/// valid bits that travel in the frame header). Parent changes are
/// local — they never enter a frame — so they wake the node itself but
/// not its neighbors.
[[nodiscard]] inline bool frame_scalars_differ(const ScalarRow& a,
                                               const ScalarRow& b) noexcept {
  return a.dag_id != b.dag_id || !double_bits_equal(a.metric, b.metric) ||
         a.metric_valid != b.metric_valid || a.head != b.head ||
         a.head_valid != b.head_valid;
}

[[nodiscard]] inline bool rows_bitwise_equal(const ScalarRow& a,
                                             const ScalarRow& b) noexcept {
  return !frame_scalars_differ(a, b) && a.parent == b.parent &&
         a.parent_valid == b.parent_valid;
}

namespace detail {

/// First index where two same-length columns disagree, or `n` if none.
/// Delegates to the blocked branch-free scan in util/merge.hpp — the
/// all-equal prefix (the common case in a divergence search) runs as a
/// vectorized OR reduction. Doubles compare as bit patterns (the
/// harness contract is bitwise, not IEEE ==).
template <typename T>
[[nodiscard]] std::size_t first_column_mismatch(const std::vector<T>& a,
                                                const std::vector<T>& b) {
  const std::size_t n = a.size();
  if constexpr (std::is_same_v<T, double>) {
    const auto* pa = reinterpret_cast<const std::uint64_t*>(a.data());
    const auto* pb = reinterpret_cast<const std::uint64_t*>(b.data());
    return util::first_mismatch_index(pa, pb, n);
  } else {
    return util::first_mismatch_index(a.data(), b.data(), n);
  }
}

}  // namespace detail

/// First row where two scalar populations diverge bitwise, or
/// `a.size()` when they are identical. Column-major: seven flat scans,
/// each one a vectorizable loop, instead of one gather-heavy row loop.
[[nodiscard]] inline std::size_t first_divergent_row(const NodeScalars& a,
                                                     const NodeScalars& b) {
  std::size_t first = a.size();
  first = std::min(first, detail::first_column_mismatch(a.dag_id, b.dag_id));
  first = std::min(first, detail::first_column_mismatch(a.metric, b.metric));
  first = std::min(first, detail::first_column_mismatch(a.head, b.head));
  first = std::min(first, detail::first_column_mismatch(a.parent, b.parent));
  first = std::min(first,
                   detail::first_column_mismatch(a.metric_valid, b.metric_valid));
  first =
      std::min(first, detail::first_column_mismatch(a.head_valid, b.head_valid));
  first = std::min(first, detail::first_column_mismatch(a.parent_valid,
                                                        b.parent_valid));
  return first;
}

/// A packed rank-key column: one PackedRank per node, the eighth hot
/// column. The clustering oracle fills it once per run (pack_rank_column)
/// and every ≺ scan afterwards — local-max tests, the fusion sort, parent
/// selection — is an integer compare against it. The protocol keeps the
/// same encoding per cache entry (CacheEntry::rank_key) so the R2
/// election is the same reduction over a strided column.
using RankKeyColumn = std::vector<PackedRank>;

/// Packs every rank in `ranks` for the given incumbency mode.
[[nodiscard]] inline RankKeyColumn pack_rank_column(
    std::span<const NodeRank> ranks, bool incumbency) {
  RankKeyColumn keys(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    keys[i] = pack_rank(ranks[i], incumbency);
  }
  return keys;
}

/// Index of the ≺-maximum over a packed column (which must be non-empty).
/// Branchless conditional-select reduction: each step is one wide compare
/// plus three selects, no data-dependent branches for the predictor to
/// miss on shuffled metric data.
[[nodiscard]] inline std::size_t max_rank_key_index(
    std::span<const PackedRank> keys) noexcept {
  std::size_t best = 0;
  PackedRank best_key = keys.empty() ? PackedRank{} : keys[0];
  for (std::size_t i = 1; i < keys.size(); ++i) {
    const bool better = packed_precedes(best_key, keys[i]);
    best = better ? i : best;
    best_key.hi = better ? keys[i].hi : best_key.hi;
    best_key.lo = better ? keys[i].lo : best_key.lo;
    best_key.sub = better ? keys[i].sub : best_key.sub;
  }
  return best;
}

/// Number of rows whose frame-visible scalars differ — the population
/// analogue of `frame_scalars_differ`, used by bench_micro to measure
/// the diff kernel at scale.
[[nodiscard]] inline std::size_t count_divergent_rows(const NodeScalars& a,
                                                      const NodeScalars& b) {
  const std::size_t n = a.size();
  std::size_t count = 0;
  const auto* ma = reinterpret_cast<const std::uint64_t*>(a.metric.data());
  const auto* mb = reinterpret_cast<const std::uint64_t*>(b.metric.data());
  for (std::size_t i = 0; i < n; ++i) {
    const bool differs =
        (a.dag_id[i] != b.dag_id[i]) | (ma[i] != mb[i]) |
        (a.head[i] != b.head[i]) | (a.parent[i] != b.parent[i]) |
        (a.metric_valid[i] != b.metric_valid[i]) |
        (a.head_valid[i] != b.head_valid[i]) |
        (a.parent_valid[i] != b.parent_valid[i]);
    count += differs;
  }
  return count;
}

}  // namespace ssmwn::core
