// The density-driven clustering algorithm — synchronous (oracle) solver.
//
// This computes the stable configuration that the distributed rules R1/R2
// (and the Section 4.3 refinements) converge to on a fixed topology:
//
//   * every node p computes its density d_p (rule R1);
//   * p elects itself cluster-head iff it is the ≺-maximum of its closed
//     neighborhood — and, with fusion, iff additionally no dominating head
//     exists in N²_p (rule R2's clusterHead function);
//   * otherwise p joins F(p) = max≺ N_p and adopts H(p) = H(F(p)).
//
// The solver is used three ways: directly by the benches (the paper's
// tables are properties of the stable configuration), as the legitimacy
// oracle for the self-stabilization tests of the distributed protocol,
// and as the per-snapshot clustering in the mobility experiment.
//
// Fusion fixpoint (DESIGN.md deviation D4): the paper's clusterHead
// function leaves H undefined for a *demoted* local maximum (its formula
// H(max≺ N_p) is mutually recursive with its neighbors' H). We resolve
// head status in one pass over nodes in decreasing ≺ order — a local
// maximum is confirmed head iff no already-confirmed head in its
// 2-neighborhood dominates it (well-defined because dominating heads were
// decided earlier) — and a demoted maximum joins the dominating head's
// cluster through its ≺-best common neighbor (the "fusion initiator" of
// the paper's narrative). The resulting parent structure is provably
// acyclic, so H(p) = H(F(p)) resolves for every node.
#pragma once

#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/rank.hpp"
#include "graph/forest.hpp"
#include "graph/graph.hpp"
#include "topology/ids.hpp"

namespace ssmwn::core {

/// The stable clustering configuration.
struct ClusteringResult {
  /// Metric value (density) used for each node.
  std::vector<double> metric;
  /// The ≺ attributes each decision used (after DAG substitution).
  std::vector<NodeRank> rank;
  /// F(p): parent in the clusterization tree; parent[p] == p for heads.
  std::vector<graph::NodeId> parent;
  /// Graph index of the resolved cluster-head H(p) of each node.
  std::vector<graph::NodeId> head_index;
  /// H(p) as a protocol identifier.
  std::vector<topology::ProtocolId> head_id;
  /// is_head[p] != 0 iff p is a cluster-head (stored as char for
  /// std::vector bit-reference avoidance and span interop).
  std::vector<char> is_head;
  /// All cluster-heads.
  std::vector<graph::NodeId> heads;

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return heads.size();
  }
  /// The clusterization forest (validates acyclicity on construction).
  [[nodiscard]] graph::ParentForest forest() const {
    return graph::ParentForest(parent);
  }
};

/// Clusters `g` by an arbitrary per-node metric (higher wins; ties resolve
/// through ≺). The paper's algorithm is `metric = densities`; the
/// conclusion notes the same self-stabilizing construction applies to
/// other metrics (e.g. node degree), which the baseline implementations
/// use.
///
/// `dag_ids`   — locally-unique names to use as tie identifiers when
///               `options.use_dag_ids` (must be a proper coloring;
///               ignored otherwise; may be empty iff unused).
/// `previous_heads` — is_head flags of the previous configuration, for
///               the incumbency rule (empty means no incumbents).
[[nodiscard]] ClusteringResult cluster_by_metric(
    const graph::Graph& g, const topology::IdAssignment& uids,
    std::span<const double> metric, const ClusterOptions& options,
    std::span<const std::uint64_t> dag_ids = {},
    std::span<const char> previous_heads = {});

/// The paper's algorithm: density metric + ≺ (R1 then R2).
[[nodiscard]] ClusteringResult cluster_density(
    const graph::Graph& g, const topology::IdAssignment& uids,
    const ClusterOptions& options,
    std::span<const std::uint64_t> dag_ids = {},
    std::span<const char> previous_heads = {});

}  // namespace ssmwn::core
