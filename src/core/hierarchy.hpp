// Hierarchical clustering — the paper's first future-work direction
// ("Based on these bounds, we also plan to study hierarchical
// self-stabilization algorithms").
//
// Level 0 is the paper's clustering of the radio graph. For level k+1 we
// build the *overlay graph* of level-k cluster-heads — two heads are
// overlay-neighbors iff their clusters touch (some member of one has a
// radio link to some member of the other) — and run the same
// density-driven election on it. Each level therefore inherits the
// self-stabilization argument of the base algorithm: the overlay is
// itself maintainable by local exchanges along inter-cluster border
// links.
//
// The recursion stops when a level no longer shrinks the head count (or
// after `max_levels`). Typical radio deployments collapse to a handful
// of super-clusters in 2-3 levels, which is the routing hierarchy the
// introduction of the paper motivates.
#pragma once

#include <cstddef>
#include <vector>

#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "topology/ids.hpp"

namespace ssmwn::core {

/// One level of the hierarchy.
struct HierarchyLevel {
  /// The graph this level was clustered on (level 0: the radio graph;
  /// level k>0: the overlay of level k-1 heads). Node indices are
  /// *level-local*; `level_to_base` maps them to radio-graph nodes.
  graph::Graph graph;
  /// Level-local index -> radio-graph node index.
  std::vector<graph::NodeId> level_to_base;
  /// The clustering computed at this level (indices level-local).
  ClusteringResult clustering;
};

struct Hierarchy {
  std::vector<HierarchyLevel> levels;

  [[nodiscard]] std::size_t depth() const noexcept { return levels.size(); }

  /// Heads of the top level, as radio-graph node indices.
  [[nodiscard]] std::vector<graph::NodeId> top_heads() const;

  /// The level-k cluster-head responsible for radio node `p` (follows
  /// the chain of head assignments up the hierarchy). k must be <
  /// depth().
  [[nodiscard]] graph::NodeId head_at_level(graph::NodeId p,
                                            std::size_t k) const;
};

/// Builds the overlay graph of cluster-heads: heads are adjacent iff
/// their clusters are connected by at least one radio link (including a
/// direct head-head link). Returned indices are positions in
/// `clustering.heads`.
[[nodiscard]] graph::Graph overlay_graph(const graph::Graph& g,
                                         const ClusteringResult& clustering);

/// Recursively clusters until the head count stops shrinking or
/// `max_levels` is reached. Level 0 always exists (it is the base
/// clustering of `g`).
[[nodiscard]] Hierarchy build_hierarchy(const graph::Graph& g,
                                        const topology::IdAssignment& uids,
                                        const ClusterOptions& options,
                                        std::size_t max_levels = 4);

}  // namespace ssmwn::core
