// Parent-forest analysis.
//
// The clustering algorithm gives every node a parent F(p) (itself for
// cluster-heads). The resulting structure is a forest: one tree per
// cluster, rooted at the cluster-head. This module validates that shape
// and extracts the statistics the paper reports: tree depth ("tree
// length", used as a proxy for stabilization time) and membership.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace ssmwn::graph {

/// A rooted forest encoded as a parent array; parent[r] == r for roots.
class ParentForest {
 public:
  /// Validates the parent array (every chain must reach a self-parent
  /// without cycling) and precomputes per-node depth and root.
  /// Throws std::invalid_argument on a cycle or out-of-range parent.
  explicit ParentForest(std::vector<NodeId> parent);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return parent_.size();
  }
  [[nodiscard]] NodeId parent(NodeId node) const noexcept {
    return parent_[node];
  }
  [[nodiscard]] bool is_root(NodeId node) const noexcept {
    return parent_[node] == node;
  }
  /// Root (cluster-head) of the tree containing `node`.
  [[nodiscard]] NodeId root(NodeId node) const noexcept { return root_[node]; }
  /// Hop count along parent edges from `node` to its root.
  [[nodiscard]] std::uint32_t depth(NodeId node) const noexcept {
    return depth_[node];
  }

  [[nodiscard]] const std::vector<NodeId>& roots() const noexcept {
    return roots_;
  }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return roots_.size();
  }

  /// Members of the tree rooted at `root` (including the root).
  [[nodiscard]] std::vector<NodeId> members(NodeId root) const;

  /// Max depth within the tree rooted at `root` — the paper's
  /// "clusterization tree length" for one cluster.
  [[nodiscard]] std::uint32_t tree_depth(NodeId root) const;

  /// Checks that every non-root's parent edge exists in `g` (clusters must
  /// grow along radio links).
  [[nodiscard]] bool respects_graph(const Graph& g) const;

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> root_;
  std::vector<std::uint32_t> depth_;
  std::vector<NodeId> roots_;
};

}  // namespace ssmwn::graph
