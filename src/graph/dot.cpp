#include "graph/dot.hpp"

#include <sstream>

namespace ssmwn::graph {

namespace {

// A qualitative palette that survives both screens and grayscale print.
constexpr const char* kPalette[] = {
    "#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e",
    "#e6ab02", "#a6761d", "#666666", "#1f78b4", "#b2df8a",
};
constexpr std::size_t kPaletteSize = std::size(kPalette);

}  // namespace

std::string to_dot(const Graph& g, const DotOptions& options) {
  std::ostringstream out;
  out << "graph ssmwn {\n"
      << "  node [shape=circle, style=filled, fontsize=8];\n";

  // Stable color per cluster id, assigned in first-seen order.
  std::vector<int> color_of(g.node_count(), -1);
  int next_color = 0;
  auto color_index = [&](NodeId cluster) {
    if (color_of[cluster] < 0) color_of[cluster] = next_color++;
    return color_of[cluster] % static_cast<int>(kPaletteSize);
  };

  for (NodeId p = 0; p < g.node_count(); ++p) {
    out << "  n" << p << " [";
    if (!options.cluster_of.empty()) {
      out << "fillcolor=\"" << kPalette[color_index(options.cluster_of[p])]
          << "\", ";
    } else {
      out << "fillcolor=\"#dddddd\", ";
    }
    if (!options.is_head.empty() && options.is_head[p]) {
      out << "peripheries=2, penwidth=2, ";
    }
    if (!options.positions.empty()) {
      out << "pos=\"" << options.positions[p].first * options.scale << ","
          << options.positions[p].second * options.scale << "!\", ";
    }
    out << "label=\"" << p << "\"];\n";
  }

  // Radio links; the clusterization forest is overlaid in bold.
  for (NodeId a = 0; a < g.node_count(); ++a) {
    for (NodeId b : g.neighbors(a)) {
      if (b <= a) continue;
      const bool tree_edge =
          !options.parent.empty() &&
          (options.parent[a] == b || options.parent[b] == a);
      out << "  n" << a << " -- n" << b;
      if (tree_edge) {
        out << " [penwidth=2.5]";
      } else {
        out << " [color=\"#bbbbbb\"]";
      }
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace ssmwn::graph
