// Graphviz/DOT export of deployments and clusterings, for papers and
// debugging. Clusters are color-cycled, heads drawn doubled, parent
// edges (the clusterization forest) drawn bold over the plain radio
// links.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ssmwn::graph {

struct DotOptions {
  /// Positions in the unit square (scaled by `scale` into DOT
  /// coordinates); when empty, layout is left to Graphviz.
  std::vector<std::pair<double, double>> positions;
  double scale = 10.0;
  /// Cluster id per node (e.g. ClusteringResult::head_index); same value
  /// = same color. Empty = uncolored.
  std::vector<NodeId> cluster_of;
  /// Head flags; heads are rendered with doubled borders. Empty = none.
  std::vector<char> is_head;
  /// Parent per node (parent[p] == p for roots); those edges are drawn
  /// bold. Empty = no overlay.
  std::vector<NodeId> parent;
};

/// Serializes `g` (and the optional clustering overlay) as a DOT graph.
[[nodiscard]] std::string to_dot(const Graph& g, const DotOptions& options = {});

}  // namespace ssmwn::graph
