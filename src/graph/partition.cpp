#include "graph/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>

namespace ssmwn::graph {

namespace {

/// Clamp a requested shard count against the node count: at least one
/// shard (even over an empty graph), at most one node per shard.
std::size_t clamp_shards(std::size_t n, std::size_t shards) {
  if (shards == 0) shards = 1;
  return std::min(shards, std::max<std::size_t>(1, n));
}

/// Equal-chunk bounds over [0, n): shard s gets [s*n/S, (s+1)*n/S), the
/// same floor arithmetic everywhere so sizes differ by at most one.
std::vector<std::size_t> even_bounds(std::size_t n, std::size_t shards) {
  std::vector<std::size_t> bounds(shards + 1);
  for (std::size_t s = 0; s <= shards; ++s) bounds[s] = s * n / shards;
  return bounds;
}

}  // namespace

std::size_t ShardPlan::shard_of(NodeId p) const noexcept {
  // upper_bound over the (short) bounds array; bounds[s] <= p < bounds[s+1].
  const auto it = std::upper_bound(bounds.begin(), bounds.end(),
                                   static_cast<std::size_t>(p));
  return static_cast<std::size_t>(it - bounds.begin()) - 1;
}

bool ShardPlan::valid() const {
  const std::size_t n = to_new.size();
  if (to_old.size() != n) return false;
  if (bounds.size() < 2 || bounds.front() != 0 || bounds.back() != n) {
    return false;
  }
  for (std::size_t s = 1; s < bounds.size(); ++s) {
    if (bounds[s] < bounds[s - 1]) return false;
  }
  std::vector<std::uint8_t> seen(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId old = to_old[i];
    if (old >= n || seen[old]) return false;
    seen[old] = 1;
    if (to_new[old] != i) return false;
  }
  return true;
}

ShardPlan plan_contiguous_shards(std::size_t n, std::size_t shards) {
  ShardPlan plan;
  plan.to_new.resize(n);
  plan.to_old.resize(n);
  std::iota(plan.to_new.begin(), plan.to_new.end(), NodeId{0});
  std::iota(plan.to_old.begin(), plan.to_old.end(), NodeId{0});
  plan.bounds = even_bounds(n, clamp_shards(n, shards));
  return plan;
}

ShardPlan plan_spatial_shards(std::span<const topology::Point> points,
                              double radius, std::size_t shards) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("plan_spatial_shards: radius must be positive");
  }
  const std::size_t n = points.size();
  if (n == 0) return plan_contiguous_shards(0, shards);

  // Identical cell geometry to topology::unit_disk_graph: cells of side
  // `radius` over the bounding box, indexed cy * cells_x + cx. Keeping
  // the two in lockstep means a shard boundary in the new numbering is
  // also a cell boundary of the radio model (up to chunk rounding), so
  // cross-shard edges are confined to adjacent cell rows.
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  for (const topology::Point& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const auto cells_x = static_cast<std::size_t>((max_x - min_x) / radius) + 1;
  const auto cells_y = static_cast<std::size_t>((max_y - min_y) / radius) + 1;
  auto cell_of = [&](const topology::Point& p) {
    auto cx = static_cast<std::size_t>((p.x - min_x) / radius);
    auto cy = static_cast<std::size_t>((p.y - min_y) / radius);
    cx = std::min(cx, cells_x - 1);
    cy = std::min(cy, cells_y - 1);
    return cy * cells_x + cx;
  };

  // Counting sort by cell (stable: within a cell, ascending original
  // index) — the cell-major order IS the new numbering.
  std::vector<std::uint32_t> cell_start(cells_x * cells_y + 1, 0);
  for (const topology::Point& p : points) ++cell_start[cell_of(p) + 1];
  for (std::size_t c = 1; c < cell_start.size(); ++c) {
    cell_start[c] += cell_start[c - 1];
  }
  ShardPlan plan;
  plan.to_old.resize(n);
  {
    std::vector<std::uint32_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (NodeId i = 0; i < n; ++i) {
      plan.to_old[cursor[cell_of(points[i])]++] = i;
    }
  }
  plan.to_new.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    plan.to_new[plan.to_old[i]] = static_cast<NodeId>(i);
  }
  plan.bounds = even_bounds(n, clamp_shards(n, shards));
  return plan;
}

Graph permute_graph(const Graph& g, const ShardPlan& plan) {
  Graph out(g.node_count());
  for (const auto& [a, b] : g.edges()) {
    out.add_edge(plan.to_new[a], plan.to_new[b]);
  }
  out.finalize();
  return out;
}

}  // namespace ssmwn::graph
