#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace ssmwn::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> bfs_distances_within(const Graph& g, NodeId source,
                                                std::span<const char> allowed) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  if (!allowed[source]) return dist;
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (allowed[v] && dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> label(g.node_count(), kUnreachable);
  std::uint32_t next = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (label[start] != kUnreachable) continue;
    label[start] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == kUnreachable) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t component_count(const Graph& g) {
  const auto labels = connected_components(g);
  std::uint32_t highest = 0;
  for (std::uint32_t l : labels) highest = std::max(highest, l);
  return g.node_count() == 0 ? 0 : highest + 1;
}

bool is_connected(const Graph& g) { return component_count(g) <= 1; }

std::uint32_t eccentricity(const Graph& g, NodeId node) {
  const auto dist = bfs_distances(g, node);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    best = std::max(best, eccentricity(g, u));
  }
  return best;
}

std::vector<NodeId> two_hop_neighborhood(const Graph& g, NodeId node) {
  std::vector<NodeId> out;
  for (NodeId v : g.neighbors(node)) {
    out.push_back(v);
    for (NodeId w : g.neighbors(v)) {
      if (w != node) out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ssmwn::graph
