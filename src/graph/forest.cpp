#include "graph/forest.hpp"

#include <algorithm>
#include <stdexcept>

namespace ssmwn::graph {

ParentForest::ParentForest(std::vector<NodeId> parent)
    : parent_(std::move(parent)),
      root_(parent_.size(), kInvalidNode),
      depth_(parent_.size(), 0) {
  const std::size_t n = parent_.size();
  for (NodeId p = 0; p < n; ++p) {
    if (parent_[p] >= n) {
      throw std::invalid_argument("ParentForest: parent out of range");
    }
  }
  // Resolve each chain iteratively with path memoization; a chain longer
  // than n nodes implies a cycle.
  std::vector<NodeId> chain;
  for (NodeId start = 0; start < n; ++start) {
    if (root_[start] != kInvalidNode) continue;
    chain.clear();
    NodeId cur = start;
    while (root_[cur] == kInvalidNode && parent_[cur] != cur) {
      chain.push_back(cur);
      if (chain.size() > n) {
        throw std::invalid_argument("ParentForest: cycle in parent chain");
      }
      cur = parent_[cur];
      // Detect a cycle that does not pass through `start`'s memoized zone:
      // if cur is already on the current chain we are looping.
      if (std::find(chain.begin(), chain.end(), cur) != chain.end()) {
        throw std::invalid_argument("ParentForest: cycle in parent chain");
      }
    }
    NodeId chain_root;
    std::uint32_t base_depth;
    if (parent_[cur] == cur) {
      chain_root = cur;
      base_depth = 0;
      root_[cur] = cur;
      depth_[cur] = 0;
    } else {
      chain_root = root_[cur];
      base_depth = depth_[cur];
    }
    // Walk the recorded chain backwards assigning depths.
    for (std::size_t i = chain.size(); i > 0; --i) {
      const NodeId node = chain[i - 1];
      root_[node] = chain_root;
      depth_[node] =
          base_depth + static_cast<std::uint32_t>(chain.size() - i + 1);
    }
  }
  for (NodeId p = 0; p < n; ++p) {
    if (parent_[p] == p) roots_.push_back(p);
  }
}

std::vector<NodeId> ParentForest::members(NodeId root) const {
  std::vector<NodeId> out;
  for (NodeId p = 0; p < parent_.size(); ++p) {
    if (root_[p] == root) out.push_back(p);
  }
  return out;
}

std::uint32_t ParentForest::tree_depth(NodeId root) const {
  std::uint32_t deepest = 0;
  for (NodeId p = 0; p < parent_.size(); ++p) {
    if (root_[p] == root) deepest = std::max(deepest, depth_[p]);
  }
  return deepest;
}

bool ParentForest::respects_graph(const Graph& g) const {
  for (NodeId p = 0; p < parent_.size(); ++p) {
    if (parent_[p] != p && !g.adjacent(p, parent_[p])) return false;
  }
  return true;
}

}  // namespace ssmwn::graph
