// Spatial shard partitioning for the sharded step engine.
//
// A ShardPlan carves the node index space [0, n) into `shard_count()`
// contiguous ranges — the unit of ownership in sim::ShardedNetwork:
// each shard owns one range's protocol state, frame arena, and activity
// set, and only frames crossing a range boundary ride the inter-shard
// mailboxes. Contiguity is what makes ownership cheap (a node's shard is
// one branchless upper_bound away, and every per-shard sweep is a dense
// loop), so the interesting question is *which* permutation of the nodes
// the ranges cut.
//
//   * `plan_spatial_shards` renumbers nodes in cell-major order over the
//     same uniform cell grid the UDG construction buckets with
//     (topology/udg.cpp): cells of side `radius` scanned row-major,
//     nodes within a cell in ascending original index. Radio neighbors
//     are then at most one cell row apart in the new numbering, so
//     cutting the sequence into equal chunks yields shards whose
//     boundary (cross-shard) edges are a thin geometric strip instead
//     of a random half of the edge set.
//   * `plan_contiguous_shards` keeps the original numbering (identity
//     permutation) and just cuts [0, n) into equal chunks — the right
//     plan when the numbering must not change (replaying a recorded
//     run, campaign reproducibility) or when no geometry exists.
//
// The plan carries both directions of the renumbering (`to_new`,
// `to_old`) so user-facing identities survive: callers permute their
// world *once* at build time (points, protocol ids — see `permuted`)
// and translate any external node reference through the maps; protocol
// identifiers travel with the nodes, so nothing observable changes.
//
// Degenerate inputs are normalized, never UB: the requested shard count
// is clamped to [1, max(1, n)] (an empty graph gets one empty shard),
// so `shards > nodes` silently degrades to one node per shard.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "topology/point.hpp"

namespace ssmwn::graph {

/// A contiguous sharding of the (possibly renumbered) node index space.
struct ShardPlan {
  /// old index -> new index; size n. Identity for contiguous plans.
  std::vector<NodeId> to_new;
  /// new index -> old index; inverse of `to_new`, size n.
  std::vector<NodeId> to_old;
  /// Shard s owns new indices [bounds[s], bounds[s+1]); size
  /// shard_count() + 1, bounds.front() == 0, bounds.back() == n.
  /// Ranges may be empty when shards were clamped against tiny n.
  std::vector<std::size_t> bounds;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return to_new.size();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return bounds.empty() ? 0 : bounds.size() - 1;
  }
  /// The shard owning new index `p` (binary search over bounds).
  [[nodiscard]] std::size_t shard_of(NodeId p) const noexcept;
  /// True iff to_new/to_old are mutually inverse permutations and the
  /// bounds are a monotone cover of [0, n].
  [[nodiscard]] bool valid() const;
};

/// Cell-major spatial plan over the UDG cell grid (cells of side
/// `radius` across the points' bounding box, scanned row-major; ties
/// within a cell keep ascending original index). `radius` must be
/// positive; `shards` is clamped to [1, max(1, n)].
[[nodiscard]] ShardPlan plan_spatial_shards(
    std::span<const topology::Point> points, double radius,
    std::size_t shards);

/// Identity-permutation plan: cuts [0, n) into `shards` equal chunks
/// without renumbering. `shards` is clamped to [1, max(1, n)].
[[nodiscard]] ShardPlan plan_contiguous_shards(std::size_t n,
                                               std::size_t shards);

/// Rebuilds `g` under the plan's renumbering: edge {a, b} becomes
/// {to_new[a], to_new[b]}. The result is a plain finalized Graph —
/// adjacency is identical up to the relabeling (asserted by the
/// partition tests through `to_old`).
[[nodiscard]] Graph permute_graph(const Graph& g, const ShardPlan& plan);

/// Reorders any per-node vector into the plan's numbering:
/// result[new_index] = values[to_old[new_index]]. The member-template
/// shape keeps it header-only for arbitrary payload types (points,
/// protocol ids, energy budgets, ...).
template <typename T>
[[nodiscard]] std::vector<T> permuted(const ShardPlan& plan,
                                      const std::vector<T>& values) {
  std::vector<T> out;
  out.reserve(values.size());
  for (const NodeId old : plan.to_old) out.push_back(values[old]);
  return out;
}

}  // namespace ssmwn::graph
