#include "graph/dynamic.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ssmwn::graph {

namespace {

/// Validates pair form: low < high, both in range. The sortedness of the
/// whole list is checked by the caller while scattering into rows.
void check_pair(const std::pair<NodeId, NodeId>& e, std::size_t n,
                const char* what) {
  if (e.first >= e.second) {
    throw std::logic_error(std::string("DynamicGraph::apply_delta: ") + what +
                           " pair is not (low, high)");
  }
  if (e.second >= n) {
    throw std::out_of_range("DynamicGraph::apply_delta: node out of range");
  }
}

}  // namespace

DynamicGraph::DynamicGraph(Graph initial) : graph_(std::move(initial)) {
  graph_.finalize();  // idempotent; guarantees the CSR arrays are live
}

void DynamicGraph::reset(Graph graph) {
  graph_ = std::move(graph);
  graph_.finalize();
  dirty_.clear();
}

void DynamicGraph::apply_delta(const EdgeDelta& delta) {
  dirty_.clear();
  if (delta.empty()) return;
  Graph& g = graph_;
  const std::size_t n = g.node_count_;

  // Pass 1: per-node change counts (each undirected edge touches two
  // rows). The O(n) zero-fill is a memset — cheap next to the merge.
  add_count_.assign(n, 0);
  rem_count_.assign(n, 0);
  for (const auto& e : delta.added) {
    check_pair(e, n, "added");
    ++add_count_[e.first];
    ++add_count_[e.second];
  }
  for (const auto& e : delta.removed) {
    check_pair(e, n, "removed");
    ++rem_count_[e.first];
    ++rem_count_[e.second];
  }

  // Pass 2: pack per-node change lists. Input order is lexicographic, so
  // low-endpoint partners arrive ascending; high-endpoint partners are
  // ascending too (for fixed b, the a of (a, b) ascends), but a node that
  // is low in some pairs and high in others gets a non-sorted mix — sort
  // each dirty row afterwards (rows are tiny).
  add_offsets_.assign(n + 1, 0);
  rem_offsets_.assign(n + 1, 0);
  for (std::size_t p = 0; p < n; ++p) {
    add_offsets_[p + 1] = add_offsets_[p] + add_count_[p];
    rem_offsets_[p + 1] = rem_offsets_[p] + rem_count_[p];
    if (add_count_[p] != 0 || rem_count_[p] != 0) {
      dirty_.push_back(static_cast<NodeId>(p));
    }
  }
  add_partner_.resize(add_offsets_[n]);
  rem_partner_.resize(rem_offsets_[n]);
  {
    std::vector<std::size_t>& acur = add_offsets_;  // cursor trick: restore below
    std::vector<std::size_t>& rcur = rem_offsets_;
    for (const auto& [a, b] : delta.added) {
      add_partner_[acur[a]++] = b;
      add_partner_[acur[b]++] = a;
    }
    for (const auto& [a, b] : delta.removed) {
      rem_partner_[rcur[a]++] = b;
      rem_partner_[rcur[b]++] = a;
    }
    // Cursors advanced each offset to the next row's start; shift back.
    for (std::size_t p = n; p > 0; --p) acur[p] = acur[p - 1];
    acur[0] = 0;
    for (std::size_t p = n; p > 0; --p) rcur[p] = rcur[p - 1];
    rcur[0] = 0;
  }
  for (const NodeId p : dirty_) {
    std::sort(add_partner_.begin() + static_cast<std::ptrdiff_t>(add_offsets_[p]),
              add_partner_.begin() + static_cast<std::ptrdiff_t>(add_offsets_[p + 1]));
    std::sort(rem_partner_.begin() + static_cast<std::ptrdiff_t>(rem_offsets_[p]),
              rem_partner_.begin() + static_cast<std::ptrdiff_t>(rem_offsets_[p + 1]));
  }

  // Pass 3: rebuild offsets/flat into the scratch arrays. Clean rows are
  // block-copied; dirty rows are merged (old ∖ removed ∪ added), staying
  // sorted by construction.
  next_offsets_.resize(n + 1);
  next_offsets_[0] = 0;
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t old_deg = g.offsets_[p + 1] - g.offsets_[p];
    const std::size_t rem = rem_offsets_[p + 1] - rem_offsets_[p];
    const std::size_t add = add_offsets_[p + 1] - add_offsets_[p];
    if (rem > old_deg) {
      throw std::logic_error(
          "DynamicGraph::apply_delta: removing more edges than the node has");
    }
    next_offsets_[p + 1] = next_offsets_[p] + old_deg - rem + add;
  }
  // Clean rows between consecutive dirty rows are block-copied in one
  // go — with a handful of dirty nodes among 100k this is a few large
  // memcpys, not n small ones.
  next_flat_.resize(next_offsets_[n]);
  std::size_t copied_from = 0;  // next unconsumed old flat position
  for (const NodeId p : dirty_) {
    const std::size_t row_begin = g.offsets_[p];
    std::copy(g.flat_.begin() + static_cast<std::ptrdiff_t>(copied_from),
              g.flat_.begin() + static_cast<std::ptrdiff_t>(row_begin),
              next_flat_.begin() +
                  static_cast<std::ptrdiff_t>(
                      next_offsets_[p] - (row_begin - copied_from)));
    const NodeId* old_row = g.flat_.data() + row_begin;
    const std::size_t old_deg = g.offsets_[p + 1] - row_begin;
    NodeId* out = next_flat_.data() + next_offsets_[p];
    const NodeId* rem_it = rem_partner_.data() + rem_offsets_[p];
    const NodeId* rem_end = rem_partner_.data() + rem_offsets_[p + 1];
    const NodeId* add_it = add_partner_.data() + add_offsets_[p];
    const NodeId* add_end = add_partner_.data() + add_offsets_[p + 1];
    for (std::size_t e = 0; e < old_deg; ++e) {
      const NodeId q = old_row[e];
      while (add_it != add_end && *add_it < q) *out++ = *add_it++;
      if (add_it != add_end && *add_it == q) {
        throw std::logic_error(
            "DynamicGraph::apply_delta: added edge already present");
      }
      if (rem_it != rem_end && *rem_it == q) {
        ++rem_it;
        continue;  // dropped
      }
      *out++ = q;
    }
    while (add_it != add_end) *out++ = *add_it++;
    if (rem_it != rem_end) {
      throw std::logic_error(
          "DynamicGraph::apply_delta: removed edge not present");
    }
    copied_from = g.offsets_[p + 1];
  }
  std::copy(g.flat_.begin() + static_cast<std::ptrdiff_t>(copied_from),
            g.flat_.end(),
            next_flat_.end() -
                static_cast<std::ptrdiff_t>(g.flat_.size() - copied_from));

  g.offsets_.swap(next_offsets_);
  g.flat_.swap(next_flat_);
  g.edge_count_ += delta.added.size();
  g.edge_count_ -= delta.removed.size();
  g.mirror_.clear();  // stale; rebuilt lazily on next use
}

}  // namespace ssmwn::graph
