#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace ssmwn::graph {

void Graph::add_edge(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (a >= adjacency_.size() || b >= adjacency_.size()) {
    throw std::out_of_range("Graph::add_edge: node out of range");
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edge_count_;
  finalized_ = false;
}

void Graph::finalize() {
  if (finalized_) return;
  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end());
    const auto last = std::unique(list.begin(), list.end());
    if (last != list.end()) {
      throw std::logic_error("Graph::finalize: duplicate edge inserted");
    }
  }
  finalized_ = true;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t delta = 0;
  for (const auto& list : adjacency_) delta = std::max(delta, list.size());
  return delta;
}

bool Graph::adjacent(NodeId a, NodeId b) const noexcept {
  const auto& list = adjacency_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId a = 0; a < adjacency_.size(); ++a) {
    for (NodeId b : adjacency_[a]) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

Graph from_edges(std::size_t node_count,
                 std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  Graph g(node_count);
  for (auto [a, b] : edges) g.add_edge(a, b);
  g.finalize();
  return g;
}

}  // namespace ssmwn::graph
