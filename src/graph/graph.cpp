#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace ssmwn::graph {

void Graph::add_edge(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (a >= node_count_ || b >= node_count_) {
    throw std::out_of_range("Graph::add_edge: node out of range");
  }
  if (staging_.size() != node_count_) {
    // Re-opening a finalized graph: unpack the CSR arrays back into
    // staging lists so further edges can be added.
    staging_.assign(node_count_, {});
    for (NodeId p = 0; p < node_count_; ++p) {
      const auto ns = neighbors(p);
      staging_[p].assign(ns.begin(), ns.end());
    }
  }
  staging_[a].push_back(b);
  staging_[b].push_back(a);
  ++edge_count_;
  finalized_ = false;
}

void Graph::finalize() {
  if (finalized_) return;

  offsets_.assign(node_count_ + 1, 0);
  for (NodeId p = 0; p < node_count_; ++p) {
    auto& list = staging_[p];
    std::sort(list.begin(), list.end());
    if (std::adjacent_find(list.begin(), list.end()) != list.end()) {
      throw std::logic_error("Graph::finalize: duplicate edge inserted");
    }
    offsets_[p + 1] = offsets_[p] + list.size();
  }

  flat_.resize(offsets_[node_count_]);
  for (NodeId p = 0; p < node_count_; ++p) {
    std::copy(staging_[p].begin(), staging_[p].end(),
              flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[p]));
  }
  staging_.clear();
  staging_.shrink_to_fit();
  mirror_.clear();  // stale after a rebuild; rebuilt on demand

  finalized_ = true;
}

void Graph::build_mirror() const {
  // Mirror index: directed edge e = (p → q) maps to the position of
  // (q → p) inside q's sorted row.
  mirror_.resize(flat_.size());
  for (NodeId p = 0; p < node_count_; ++p) {
    for (std::size_t e = offsets_[p]; e < offsets_[p + 1]; ++e) {
      const NodeId q = flat_[e];
      const auto row_begin =
          flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[q]);
      const auto row_end =
          flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[q + 1]);
      const auto it = std::lower_bound(row_begin, row_end, p);
      mirror_[e] = static_cast<std::size_t>(it - flat_.begin());
    }
  }
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t delta = 0;
  for (NodeId p = 0; p < node_count_; ++p) {
    delta = std::max(delta, degree(p));
  }
  return delta;
}

bool Graph::adjacent(NodeId a, NodeId b) const noexcept {
  const auto row = neighbors(a);
  return std::binary_search(row.begin(), row.end(), b);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId a = 0; a < node_count_; ++a) {
    for (NodeId b : neighbors(a)) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

Graph from_edges(std::size_t node_count,
                 std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  Graph g(node_count);
  for (auto [a, b] : edges) g.add_edge(a, b);
  g.finalize();
  return g;
}

}  // namespace ssmwn::graph
