// Delta-applicable graph for the dynamic-topology runtime.
//
// Every layer above `graph/` consumes a read-only CSR view (spans over
// `csr_offsets()` / `csr_neighbors()`), and until this PR that view was
// immutable after `finalize()` — mobility meant building a whole new
// Graph each window. DynamicGraph keeps one Graph alive and patches its
// CSR arrays in place from an `EdgeDelta`: one O(n + m + |delta|) merge
// pass rebuilds the flat arrays into reusable scratch buffers and swaps
// them in, so the steady state allocates nothing and the Graph object's
// address (and therefore every `const Graph&` the engines observe)
// stays valid across perturbations. Rows of untouched nodes are block-
// copied; only dirty rows are merged entry by entry. The set of nodes
// whose adjacency changed is tracked per application so protocol layers
// can invalidate exactly the caches the perturbation made stale.
//
// apply_delta validates the delta against the current graph — removing
// an absent edge or adding a present one throws std::logic_error — so a
// drifting incremental topology index is caught at the first divergent
// tick rather than corrupting the CSR invariants silently.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ssmwn::graph {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  /// Takes ownership of a finalized graph.
  explicit DynamicGraph(Graph initial);

  /// The live CSR view. The reference stays valid (same object) across
  /// `apply_delta` calls; its contents change in place.
  [[nodiscard]] const Graph& view() const noexcept { return graph_; }

  /// Replaces the underlying graph wholesale (rebuild-mode drivers);
  /// clears the dirty set.
  void reset(Graph graph);

  /// Applies one tick's edge delta (sorted (low, high) pairs, see
  /// EdgeDelta). Throws std::logic_error if the delta does not match
  /// the current edge set, std::out_of_range on bad node indices.
  void apply_delta(const EdgeDelta& delta);

  /// Nodes whose adjacency changed in the last `apply_delta`, ascending.
  [[nodiscard]] std::span<const NodeId> dirty_nodes() const noexcept {
    return dirty_;
  }

 private:
  Graph graph_;
  // Scratch reused across applications (swapped with the live arrays).
  std::vector<std::size_t> next_offsets_;
  std::vector<NodeId> next_flat_;
  // Per-dirty-node sorted change lists, packed CSR-style.
  std::vector<std::uint32_t> add_count_, rem_count_;
  std::vector<std::size_t> add_offsets_, rem_offsets_;
  std::vector<NodeId> add_partner_, rem_partner_;
  std::vector<NodeId> dirty_;
};

}  // namespace ssmwn::graph
