// Graph algorithms needed by the clustering metrics and the evaluation
// harness: BFS hop distances, connected components, eccentricity and
// diameter, and 2-neighborhood enumeration (the paper's N²_p).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ssmwn::graph {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// Hop distances from `source` to every node (kUnreachable if disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId source);

/// BFS restricted to nodes for which `allowed[node]` is true; distances to
/// excluded nodes are kUnreachable. Used for intra-cluster eccentricity,
/// where paths must stay inside the cluster.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances_within(
    const Graph& g, NodeId source, std::span<const char> allowed);

/// Component label per node (labels are 0..k-1 in discovery order).
[[nodiscard]] std::vector<std::uint32_t> connected_components(const Graph& g);

[[nodiscard]] std::size_t component_count(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Eccentricity of `node` within its connected component.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId node);

/// Exact diameter (max eccentricity over its largest component); O(n·m),
/// fine at the paper's scales (~1000 nodes).
[[nodiscard]] std::uint32_t diameter(const Graph& g);

/// N²_p: nodes at hop distance exactly 1 or 2 from `node` (sorted, without
/// `node` itself). The fusion rule of Section 4.3 quantifies over this set.
[[nodiscard]] std::vector<NodeId> two_hop_neighborhood(const Graph& g,
                                                       NodeId node);

}  // namespace ssmwn::graph
