// Undirected graph substrate.
//
// The paper's model is a set V of nodes where N_p is the radio
// neighborhood of p (bidirectional links, p not in N_p). This module gives
// that model a concrete representation: nodes are dense indices 0..n-1 and
// adjacency is stored in CSR (compressed sparse row) form — one flat,
// cache-contiguous array of neighbor indices plus per-node offsets — so
// that the simulation hot path (`sim::Network::step` touching every
// directed edge every step) streams memory instead of chasing one heap
// allocation per node. Edges are staged in per-node vectors during
// construction; `finalize()` sorts them, packs the CSR arrays, and
// releases the staging memory. All higher layers (density metric,
// clustering, the radio simulator) consume the graph read-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ssmwn::graph {

/// Dense node index. Protocol identifiers (the paper's unique node Ids)
/// are kept separately (see `topology::IdAssignment`); the graph itself
/// only knows positions.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One tick's worth of topology change: the edges that appeared and the
/// edges that vanished, each as (low, high) pairs in ascending
/// lexicographic order, with `added` and `removed` disjoint. This is the
/// currency of the dynamic-topology runtime: `topology::IncrementalUdg`
/// emits one per mobility tick, `DynamicGraph::apply_delta` patches the
/// CSR arrays with it, and both engines' `apply_topology_delta` /
/// `schedule_topology_update` use it to invalidate protocol state for
/// severed links.
struct EdgeDelta {
  std::vector<std::pair<NodeId, NodeId>> added;
  std::vector<std::pair<NodeId, NodeId>> removed;

  [[nodiscard]] bool empty() const noexcept {
    return added.empty() && removed.empty();
  }
  /// Keeps capacity, so a reused delta allocates nothing in steady state.
  void clear() noexcept {
    added.clear();
    removed.clear();
  }
};

/// Immutable-after-build undirected graph with sorted CSR adjacency.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count)
      : node_count_(node_count),
        staging_(node_count),
        offsets_(node_count + 1, 0) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds the undirected edge {a, b}. Self-loops and duplicates are
  /// rejected (the radio model never produces them). Queries reflect the
  /// state as of the last `finalize()`: edges staged since then are
  /// invisible to `neighbors()`/`degree()`/`adjacent()`/`edges()` until
  /// `finalize()` runs again (only `edge_count()` updates immediately).
  void add_edge(NodeId a, NodeId b);

  /// Sorts adjacency, packs the CSR arrays (including the mirror-edge
  /// index used by the parallel step engine), and frees the staging
  /// lists; must be called once after the last `add_edge` and before any
  /// query. Idempotent.
  void finalize();

  /// N_p: the 1-neighborhood of `node` (sorted, never contains `node`),
  /// as a view into the flat CSR neighbor array.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const noexcept {
    return {flat_.data() + offsets_[node], offsets_[node + 1] - offsets_[node]};
  }

  [[nodiscard]] std::size_t degree(NodeId node) const noexcept {
    return offsets_[node + 1] - offsets_[node];
  }

  /// Maximum degree δ over all nodes (the paper's sparseness constant).
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// O(log deg) adjacency test on the sorted list.
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const noexcept;

  /// All edges as (low, high) pairs, each once.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  // --- CSR access (engine hot paths) ----------------------------------

  /// Per-node offsets into `csr_neighbors()`; size `node_count() + 1`.
  /// `offsets[p]..offsets[p+1]` is p's directed out-edge range.
  [[nodiscard]] std::span<const std::size_t> csr_offsets() const noexcept {
    return offsets_;
  }

  /// Flat neighbor array; size `2 * edge_count()` (each undirected edge
  /// appears once per direction).
  [[nodiscard]] std::span<const NodeId> csr_neighbors() const noexcept {
    return flat_;
  }

  /// For the directed edge at CSR position `e` (some p → q), the CSR
  /// position of its mirror q → p. Lets per-receiver loops reuse
  /// decisions made in sender-major order without any searching. Built
  /// lazily on first use (only the lossy-delivery phase of the arena
  /// engine needs it); the first call must not race — the engine's only
  /// call site is its serial decision pass.
  [[nodiscard]] std::size_t mirror_edge(std::size_t e) const {
    if (mirror_.size() != flat_.size()) build_mirror();
    return mirror_[e];
  }

 private:
  void build_mirror() const;

  /// DynamicGraph patches offsets_/flat_ in place (live topology); it
  /// preserves every Graph invariant (sorted rows, edge_count_, cleared
  /// mirror) without routing each tick through staging + finalize().
  friend class DynamicGraph;

  std::size_t node_count_ = 0;
  std::size_t edge_count_ = 0;
  /// Build-time per-node edge lists; emptied by `finalize()`.
  std::vector<std::vector<NodeId>> staging_;
  std::vector<std::size_t> offsets_{0};  // CSR row offsets, n + 1 entries
  std::vector<NodeId> flat_;             // CSR neighbor array, 2|E| entries
  /// Reverse directed-edge index; lazily derived from the CSR arrays
  /// (hence mutable), sized `flat_.size()` once built.
  mutable std::vector<std::size_t> mirror_;
  bool finalized_ = true;  // an edgeless graph is trivially finalized
};

/// Builds a graph from an explicit edge list over `node_count` nodes.
/// Convenient for tests and the paper's worked example.
[[nodiscard]] Graph from_edges(
    std::size_t node_count,
    std::initializer_list<std::pair<NodeId, NodeId>> edges);

}  // namespace ssmwn::graph
