// Undirected graph substrate.
//
// The paper's model is a set V of nodes where N_p is the radio
// neighborhood of p (bidirectional links, p not in N_p). This module gives
// that model a concrete representation: nodes are dense indices
// 0..n-1, adjacency is kept as sorted vectors, and all higher layers
// (density metric, clustering, the radio simulator) consume it read-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ssmwn::graph {

/// Dense node index. Protocol identifiers (the paper's unique node Ids)
/// are kept separately (see `topology::IdAssignment`); the graph itself
/// only knows positions.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Immutable-after-build undirected graph with sorted adjacency.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds the undirected edge {a, b}. Self-loops and duplicates are
  /// rejected (the radio model never produces them). Invalidates sortedness
  /// until `finalize()`.
  void add_edge(NodeId a, NodeId b);

  /// Sorts adjacency lists; must be called once after the last `add_edge`
  /// and before any query. Idempotent.
  void finalize();

  /// N_p: the 1-neighborhood of `node` (sorted, never contains `node`).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const noexcept {
    return adjacency_[node];
  }

  [[nodiscard]] std::size_t degree(NodeId node) const noexcept {
    return adjacency_[node].size();
  }

  /// Maximum degree δ over all nodes (the paper's sparseness constant).
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// O(log deg) adjacency test on the sorted list.
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const noexcept;

  /// All edges as (low, high) pairs, each once.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
  bool finalized_ = true;  // an edgeless graph is trivially finalized
};

/// Builds a graph from an explicit edge list over `node_count` nodes.
/// Convenient for tests and the paper's worked example.
[[nodiscard]] Graph from_edges(
    std::size_t node_count,
    std::initializer_list<std::pair<NodeId, NodeId>> edges);

}  // namespace ssmwn::graph
