#include "mobility/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ssmwn::mobility {

namespace {

/// Reflects `value` into [0, 1] and flips `velocity` when a wall is hit.
void reflect(double& value, double& velocity) {
  while (value < 0.0 || value > 1.0) {
    if (value < 0.0) {
      value = -value;
      velocity = -velocity;
    } else {
      value = 2.0 - value;
      velocity = -velocity;
    }
  }
}

}  // namespace

RandomDirection::RandomDirection(std::size_t node_count, SpeedRange speeds,
                                 double world_size_m, util::Rng rng,
                                 double mean_epoch_s)
    : speeds_(speeds),
      world_size_m_(world_size_m),
      mean_epoch_s_(mean_epoch_s),
      rng_(rng),
      states_(node_count) {
  for (auto& state : states_) redraw(state);
}

void RandomDirection::redraw(NodeState& state) {
  const double speed_mps = rng_.uniform(speeds_.min_mps, speeds_.max_mps);
  const double speed_units = speed_mps / world_size_m_;
  const double heading = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  state.vx = speed_units * std::cos(heading);
  state.vy = speed_units * std::sin(heading);
  // Exponential epoch via inversion; clamp away from zero so a node cannot
  // spin through infinitely many epochs in one step.
  state.remaining_s =
      std::max(0.05, -mean_epoch_s_ * std::log(1.0 - rng_.uniform()));
}

void RandomDirection::step(std::span<topology::Point> positions,
                           double dt_seconds) {
  for (std::size_t i = 0; i < positions.size() && i < states_.size(); ++i) {
    NodeState& state = states_[i];
    double remaining = dt_seconds;
    while (remaining > 0.0) {
      const double slice = std::min(remaining, state.remaining_s);
      positions[i].x += state.vx * slice;
      positions[i].y += state.vy * slice;
      reflect(positions[i].x, state.vx);
      reflect(positions[i].y, state.vy);
      state.remaining_s -= slice;
      remaining -= slice;
      if (state.remaining_s <= 0.0) redraw(state);
    }
  }
}

RandomWaypoint::RandomWaypoint(std::size_t node_count, SpeedRange speeds,
                               double world_size_m, util::Rng rng)
    : speeds_(speeds),
      world_size_m_(world_size_m),
      rng_(rng),
      states_(node_count) {}

void RandomWaypoint::step(std::span<topology::Point> positions,
                          double dt_seconds) {
  for (std::size_t i = 0; i < positions.size() && i < states_.size(); ++i) {
    NodeState& state = states_[i];
    double remaining = dt_seconds;
    while (remaining > 0.0) {
      if (!state.has_target) {
        state.target = topology::Point{rng_.uniform(), rng_.uniform()};
        state.speed_units =
            rng_.uniform(speeds_.min_mps, speeds_.max_mps) / world_size_m_;
        state.has_target = true;
      }
      const double dist = topology::distance(positions[i], state.target);
      if (state.speed_units <= 0.0) break;  // a zero-speed draw parks the node
      const double time_to_target = dist / state.speed_units;
      if (time_to_target <= remaining) {
        positions[i] = state.target;
        state.has_target = false;
        remaining -= time_to_target;
      } else {
        const double frac = remaining * state.speed_units / dist;
        positions[i].x += (state.target.x - positions[i].x) * frac;
        positions[i].y += (state.target.y - positions[i].y) * frac;
        remaining = 0.0;
      }
    }
  }
}

}  // namespace ssmwn::mobility
