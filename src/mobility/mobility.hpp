// Mobility models.
//
// The paper's stability experiment moves nodes "randomly at a randomly
// chosen speed" for 15 minutes and samples the cluster structure every
// 2 seconds, for pedestrian (0-1.6 m/s) and vehicular (0-10 m/s) speed
// ranges. The paper does not name the model; we provide the two standard
// candidates (random direction with boundary reflection, and random
// waypoint) plus a stationary control. Speeds are physical (m/s); the
// world maps the unit square to `world_size_m` meters per side (default
// 1000 m, see DESIGN.md deviation D3).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "topology/point.hpp"
#include "util/rng.hpp"

namespace ssmwn::mobility {

/// Per-node kinematic state advanced in fixed time increments.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advances all nodes by `dt_seconds` and writes new positions in place.
  virtual void step(std::span<topology::Point> positions,
                    double dt_seconds) = 0;
};

struct SpeedRange {
  double min_mps = 0.0;
  double max_mps = 1.6;  // paper's pedestrian upper bound
};

/// Random-direction model: every node picks a heading and a speed from
/// `speeds`, travels for an exponentially distributed epoch (mean
/// `mean_epoch_s`), then re-draws; it reflects off the unit-square walls.
/// This keeps the spatial distribution near-uniform, matching the paper's
/// Poisson deployments.
class RandomDirection final : public MobilityModel {
 public:
  RandomDirection(std::size_t node_count, SpeedRange speeds,
                  double world_size_m, util::Rng rng,
                  double mean_epoch_s = 10.0);

  void step(std::span<topology::Point> positions, double dt_seconds) override;

 private:
  struct NodeState {
    double vx = 0.0;  // unit-square units per second
    double vy = 0.0;
    double remaining_s = 0.0;
  };

  void redraw(NodeState& state);

  SpeedRange speeds_;
  double world_size_m_;
  double mean_epoch_s_;
  util::Rng rng_;
  std::vector<NodeState> states_;
};

/// Random-waypoint model: each node picks a uniform destination and a
/// speed, travels there, then immediately re-draws (no pause time).
class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(std::size_t node_count, SpeedRange speeds,
                 double world_size_m, util::Rng rng);

  void step(std::span<topology::Point> positions, double dt_seconds) override;

 private:
  struct NodeState {
    topology::Point target;
    double speed_units = 0.0;  // unit-square units per second
    bool has_target = false;
  };

  SpeedRange speeds_;
  double world_size_m_;
  util::Rng rng_;
  std::vector<NodeState> states_;
};

/// Control model: nothing moves. Head re-election under it must be 100 %.
class Stationary final : public MobilityModel {
 public:
  void step(std::span<topology::Point>, double) override {}
};

}  // namespace ssmwn::mobility
