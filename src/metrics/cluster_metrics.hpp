// The evaluation criteria of Section 5: "number of cluster-heads per
// surface unit, clusterization tree length (also in order to evaluate time
// of stabilization) and cluster-head eccentricity" — plus structural
// quantities used by the property tests (head separation, cluster sizes).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "graph/graph.hpp"

namespace ssmwn::metrics {

struct ClusterStats {
  /// Number of clusters (= cluster-heads); the unit square has unit
  /// surface, so this is also heads per surface unit.
  std::size_t cluster_count = 0;
  /// ẽ(H(u)/C(u)): eccentricity of each head inside its own cluster
  /// (hop distances constrained to the cluster's induced subgraph),
  /// averaged over clusters.
  double mean_head_eccentricity = 0.0;
  /// Mean over clusters of the deepest parent-chain ("tree length").
  double mean_tree_depth = 0.0;
  std::size_t max_tree_depth = 0;
  double mean_cluster_size = 0.0;
  std::size_t largest_cluster = 0;
  /// Minimum hop distance between any two cluster-heads (0 if < 2 heads).
  /// The fusion rule guarantees ≥ 3.
  std::size_t min_head_separation = 0;
};

[[nodiscard]] ClusterStats analyze(const graph::Graph& g,
                                   const core::ClusteringResult& clustering);

/// Renders the cluster assignment of a grid deployment as an ASCII map
/// (one letter per node, same letter = same cluster, uppercase = head).
/// Reproduces figures 2 and 3 of the paper in text form.
[[nodiscard]] std::string render_grid_clusters(
    std::size_t side, const core::ClusteringResult& clustering);

/// Jain fairness index of the cluster sizes: (Σs)² / (k·Σs²), in
/// (0, 1]; 1 means all clusters equal-sized. Useful when comparing
/// load balance across clustering metrics. Returns 1 for 0 clusters.
[[nodiscard]] double cluster_size_fairness(
    const core::ClusteringResult& clustering);

}  // namespace ssmwn::metrics
