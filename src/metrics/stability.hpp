// Cluster-head stability under mobility (Section 5's final experiment):
// nodes move for 15 minutes; every 2 seconds the cluster structure is
// recomputed and we record which previous heads are still heads. The
// paper reports the mean re-election percentage per window.
#pragma once

#include <cstddef>
#include <span>

#include "util/stats.hpp"

namespace ssmwn::metrics {

/// Fraction of heads of the previous snapshot that are still heads in the
/// current one; 1.0 when the previous snapshot had no heads (nothing to
/// lose). Flags are indexed by a stable node index across snapshots.
[[nodiscard]] double reelection_ratio(std::span<const char> previous_heads,
                                      std::span<const char> current_heads);

/// Accumulates the per-window re-election ratio over a run.
class ChurnTracker {
 public:
  /// Feeds the next snapshot's head flags; from the second snapshot on,
  /// each call records one window ratio.
  void observe(std::span<const char> head_flags);

  [[nodiscard]] const util::RunningStats& ratios() const noexcept {
    return ratios_;
  }
  [[nodiscard]] std::size_t windows() const noexcept {
    return ratios_.count();
  }

 private:
  std::vector<char> previous_;
  bool has_previous_ = false;
  util::RunningStats ratios_;
};

}  // namespace ssmwn::metrics
