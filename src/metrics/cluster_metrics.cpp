#include "metrics/cluster_metrics.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/forest.hpp"

namespace ssmwn::metrics {

ClusterStats analyze(const graph::Graph& g,
                     const core::ClusteringResult& clustering) {
  ClusterStats stats;
  const graph::ParentForest forest = clustering.forest();
  stats.cluster_count = forest.tree_count();
  if (stats.cluster_count == 0) return stats;

  // Membership flags reused per cluster for the induced-subgraph BFS.
  std::vector<char> member(g.node_count(), 0);
  double ecc_sum = 0.0;
  double depth_sum = 0.0;
  double size_sum = 0.0;
  for (graph::NodeId head : forest.roots()) {
    const auto members = forest.members(head);
    for (graph::NodeId m : members) member[m] = 1;
    const auto dist = graph::bfs_distances_within(
        g, head, std::span<const char>(member.data(), member.size()));
    std::uint32_t ecc = 0;
    for (graph::NodeId m : members) {
      if (dist[m] != graph::kUnreachable) ecc = std::max(ecc, dist[m]);
    }
    ecc_sum += ecc;
    const std::uint32_t depth = forest.tree_depth(head);
    depth_sum += depth;
    stats.max_tree_depth =
        std::max<std::size_t>(stats.max_tree_depth, depth);
    size_sum += static_cast<double>(members.size());
    stats.largest_cluster =
        std::max(stats.largest_cluster, members.size());
    for (graph::NodeId m : members) member[m] = 0;
  }
  const auto k = static_cast<double>(stats.cluster_count);
  stats.mean_head_eccentricity = ecc_sum / k;
  stats.mean_tree_depth = depth_sum / k;
  stats.mean_cluster_size = size_sum / k;

  // Minimum pairwise head distance: BFS from each head until another head
  // is met (early exit keeps this cheap at the paper's scales).
  if (stats.cluster_count >= 2) {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (graph::NodeId head : forest.roots()) {
      std::vector<std::uint32_t> dist(g.node_count(), graph::kUnreachable);
      std::queue<graph::NodeId> frontier;
      dist[head] = 0;
      frontier.push(head);
      while (!frontier.empty()) {
        const graph::NodeId u = frontier.front();
        frontier.pop();
        if (static_cast<std::size_t>(dist[u]) >= best) continue;
        for (graph::NodeId v : g.neighbors(u)) {
          if (dist[v] != graph::kUnreachable) continue;
          dist[v] = dist[u] + 1;
          if (clustering.is_head[v]) {
            best = std::min<std::size_t>(best, dist[v]);
          } else {
            frontier.push(v);
          }
        }
      }
    }
    stats.min_head_separation =
        best == std::numeric_limits<std::size_t>::max() ? 0 : best;
  }
  return stats;
}

double cluster_size_fairness(const core::ClusteringResult& clustering) {
  // Tally sizes by head index.
  std::vector<std::size_t> size_of(clustering.parent.size(), 0);
  for (graph::NodeId head : clustering.head_index) ++size_of[head];
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t k = 0;
  for (graph::NodeId head : clustering.heads) {
    const auto s = static_cast<double>(size_of[head]);
    sum += s;
    sum_sq += s * s;
    ++k;
  }
  if (k == 0 || sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(k) * sum_sq);
}

std::string render_grid_clusters(std::size_t side,
                                 const core::ClusteringResult& clustering) {
  // Assign a letter per cluster head in discovery order; cycle the
  // alphabet if there are more than 26 clusters.
  std::vector<int> letter_of(clustering.parent.size(), -1);
  int next = 0;
  std::string out;
  out.reserve((side + 1) * side);
  // Row-major grid with row 0 at the bottom: print top row first.
  for (std::size_t row = side; row-- > 0;) {
    for (std::size_t col = 0; col < side; ++col) {
      const graph::NodeId p = static_cast<graph::NodeId>(row * side + col);
      const graph::NodeId head = clustering.head_index[p];
      if (letter_of[head] < 0) letter_of[head] = next++;
      const char base = static_cast<char>('a' + (letter_of[head] % 26));
      out += clustering.is_head[p]
                 ? static_cast<char>(base - 'a' + 'A')
                 : base;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ssmwn::metrics
