#include "metrics/stability.hpp"

#include <algorithm>

namespace ssmwn::metrics {

double reelection_ratio(std::span<const char> previous_heads,
                        std::span<const char> current_heads) {
  const std::size_t n = std::min(previous_heads.size(), current_heads.size());
  std::size_t was = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (previous_heads[i]) {
      ++was;
      if (current_heads[i]) ++kept;
    }
  }
  return was == 0 ? 1.0
                  : static_cast<double>(kept) / static_cast<double>(was);
}

void ChurnTracker::observe(std::span<const char> head_flags) {
  if (has_previous_) {
    ratios_.add(reelection_ratio(previous_, head_flags));
  }
  previous_.assign(head_flags.begin(), head_flags.end());
  has_previous_ = true;
}

}  // namespace ssmwn::metrics
