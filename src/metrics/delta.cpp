#include "metrics/delta.hpp"

#include <stdexcept>

namespace ssmwn::metrics {

ClusterDelta diff_clusterings(const core::ClusteringResult& before,
                              const core::ClusteringResult& after) {
  const std::size_t n = before.parent.size();
  if (after.parent.size() != n) {
    throw std::invalid_argument("diff_clusterings: node count mismatch");
  }
  ClusterDelta delta;
  delta.node_count = n;
  delta.heads_before = before.heads.size();
  delta.heads_after = after.heads.size();
  for (graph::NodeId p = 0; p < n; ++p) {
    if (before.is_head[p] != after.is_head[p]) ++delta.role_changes;
    if (before.is_head[p] && after.is_head[p]) ++delta.heads_kept;
    if (before.head_id[p] != after.head_id[p]) ++delta.membership_changes;
    if (before.parent[p] != after.parent[p]) ++delta.parent_changes;
  }
  return delta;
}

}  // namespace ssmwn::metrics
