// Configuration deltas between two clusterings of the same node set.
//
// The robustness story of the paper (and of [16]) is about *how much*
// of the configuration a topology change invalidates: "a small
// modification in the network topology often implies new computations
// to build the new clusters" for rigid schemes, while the density
// metric localizes the damage. This diff quantifies that damage for any
// pair of before/after clusterings.
#pragma once

#include <cstddef>

#include "core/clustering.hpp"

namespace ssmwn::metrics {

struct ClusterDelta {
  std::size_t node_count = 0;
  /// Nodes whose head-role changed (gained or lost headship).
  std::size_t role_changes = 0;
  /// Nodes whose cluster (resolved head identity) changed.
  std::size_t membership_changes = 0;
  /// Nodes whose parent pointer changed.
  std::size_t parent_changes = 0;
  /// Heads of `before` still heads in `after`.
  std::size_t heads_kept = 0;
  std::size_t heads_before = 0;
  std::size_t heads_after = 0;

  /// Fraction of nodes whose membership survived, in [0, 1].
  [[nodiscard]] double membership_stability() const noexcept {
    return node_count == 0
               ? 1.0
               : 1.0 - static_cast<double>(membership_changes) /
                           static_cast<double>(node_count);
  }
};

/// Diffs two clusterings over the same node set (same size and the same
/// identifier assignment assumed; heads are matched by protocol id so
/// the diff is meaningful even if graph indices were relabeled).
/// Throws std::invalid_argument on size mismatch.
[[nodiscard]] ClusterDelta diff_clusterings(
    const core::ClusteringResult& before,
    const core::ClusteringResult& after);

}  // namespace ssmwn::metrics
