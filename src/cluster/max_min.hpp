// Max-Min d-cluster formation (Amis, Prakash, Vuong, Huynh — INFOCOM
// 2000), the "max-min" heuristic the density metric was compared against
// in [16]. Nodes flood identifiers for 2d synchronous rounds — d rounds
// of max propagation ("floodmax") followed by d rounds of min propagation
// ("floodmin") — then apply the original three election rules; every node
// ends at most d hops from its cluster-head.
#pragma once

#include <cstddef>

#include "core/clustering.hpp"

namespace ssmwn::cluster {

/// Runs Max-Min d-cluster formation. Returns the same result shape as the
/// density algorithm so the metrics layer can compare them directly; the
/// `metric` field carries the node degree (informational only — Max-Min
/// elects purely on identifiers).
[[nodiscard]] core::ClusteringResult cluster_max_min(
    const graph::Graph& g, const topology::IdAssignment& uids, std::size_t d);

}  // namespace ssmwn::cluster
