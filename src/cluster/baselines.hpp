// Baseline clustering heuristics the density metric was evaluated against
// in [16] (and which the paper's related-work section surveys).
//
// Lowest-identifier (Baker–Ephremides / CBRP family) and highest-degree
// (Chen–Stojmenovic) clustering drop straight out of the generalized
// ≺-election: they are `cluster_by_metric` with a constant metric (so the
// id tie-break decides everything) and with the node degree, respectively.
// This mirrors the paper's closing remark that its self-stabilization
// construction "could be applied to several clusterization metrics as for
// instance the node's degree".
#pragma once

#include "core/clustering.hpp"

namespace ssmwn::cluster {

/// Lowest-id clustering: a node heads a cluster iff it has the smallest
/// identifier in its closed neighborhood; everyone else joins their
/// smallest-id neighbor's tree.
[[nodiscard]] core::ClusteringResult cluster_lowest_id(
    const graph::Graph& g, const topology::IdAssignment& uids,
    const core::ClusterOptions& options = {});

/// Highest-degree clustering (degree metric, id tie-break).
[[nodiscard]] core::ClusteringResult cluster_highest_degree(
    const graph::Graph& g, const topology::IdAssignment& uids,
    const core::ClusterOptions& options = {});

}  // namespace ssmwn::cluster
