#include "cluster/max_min.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/forest.hpp"

namespace ssmwn::cluster {

namespace {

using topology::ProtocolId;

/// One synchronous flooding round: out[p] = op(in over closed N_p).
template <typename Op>
std::vector<ProtocolId> flood_round(const graph::Graph& g,
                                    const std::vector<ProtocolId>& in, Op op) {
  std::vector<ProtocolId> out(in);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    for (graph::NodeId q : g.neighbors(p)) {
      out[p] = op(out[p], in[q]);
    }
  }
  return out;
}

}  // namespace

core::ClusteringResult cluster_max_min(const graph::Graph& g,
                                       const topology::IdAssignment& uids,
                                       std::size_t d) {
  const std::size_t n = g.node_count();
  if (uids.size() != n) {
    throw std::invalid_argument("cluster_max_min: uids size mismatch");
  }
  if (d == 0) throw std::invalid_argument("cluster_max_min: d must be >= 1");

  // Floodmax: d rounds; keep every intermediate round (the rule set needs
  // the full logged lists).
  std::vector<std::vector<ProtocolId>> maxlog;
  maxlog.push_back(uids);
  for (std::size_t r = 0; r < d; ++r) {
    maxlog.push_back(flood_round(
        g, maxlog.back(),
        [](ProtocolId a, ProtocolId b) { return std::max(a, b); }));
  }
  // Floodmin: d more rounds, seeded with the floodmax result.
  std::vector<std::vector<ProtocolId>> minlog;
  minlog.push_back(maxlog.back());
  for (std::size_t r = 0; r < d; ++r) {
    minlog.push_back(flood_round(
        g, minlog.back(),
        [](ProtocolId a, ProtocolId b) { return std::min(a, b); }));
  }

  // Election (the three rules of the original paper):
  //  1. If a node saw its own id during floodmin, it is a cluster-head.
  //  2. Else, the smallest "node pair" id — one that appears in both its
  //     floodmax and floodmin logs — is its head.
  //  3. Else, its head is the floodmax winner.
  std::vector<ProtocolId> head_of(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    bool own_in_min = false;
    for (std::size_t r = 1; r <= d; ++r) {
      if (minlog[r][p] == uids[p]) {
        own_in_min = true;
        break;
      }
    }
    if (own_in_min) {
      head_of[p] = uids[p];
      continue;
    }
    ProtocolId best_pair = 0;
    bool has_pair = false;
    for (std::size_t rmin = 1; rmin <= d; ++rmin) {
      const ProtocolId candidate = minlog[rmin][p];
      for (std::size_t rmax = 1; rmax <= d; ++rmax) {
        if (maxlog[rmax][p] == candidate) {
          if (!has_pair || candidate < best_pair) {
            best_pair = candidate;
            has_pair = true;
          }
        }
      }
    }
    head_of[p] = has_pair ? best_pair : maxlog[d][p];
  }

  // Convert head ids into a parent forest: every non-head routes to its
  // head along a BFS tree of the subgraph of same-head nodes, falling
  // back to a plain BFS parent when the head is not reachable within the
  // cluster (can happen with rule-3 fallbacks); final fallback: the node
  // becomes its own head.
  std::vector<graph::NodeId> parent(n);
  std::vector<char> same_head(n, 0);
  for (graph::NodeId p = 0; p < n; ++p) parent[p] = p;
  for (graph::NodeId h = 0; h < n; ++h) {
    if (head_of[h] != uids[h]) continue;
    // BFS from the head over nodes that elected it.
    for (graph::NodeId p = 0; p < n; ++p) {
      same_head[p] = (head_of[p] == uids[h]) ? 1 : 0;
    }
    std::vector<graph::NodeId> frontier{h};
    std::vector<char> seen(n, 0);
    seen[h] = 1;
    while (!frontier.empty()) {
      std::vector<graph::NodeId> next;
      for (graph::NodeId u : frontier) {
        for (graph::NodeId v : g.neighbors(u)) {
          if (same_head[v] && !seen[v]) {
            seen[v] = 1;
            parent[v] = u;
            next.push_back(v);
          }
        }
      }
      frontier = std::move(next);
    }
  }
  // Nodes whose elected head never adopted them (unreachable within the
  // cluster, or the head itself elected someone else) keep parent[p] == p
  // and therefore become their own heads below — Max-Min's original
  // "orphan" repair falls out of the forest construction. (The seed code
  // patched head_of here through a uids-indexed table, which both
  // overflowed on sparse id spaces and was dead: head_of is never read
  // again.)

  core::ClusteringResult result;
  result.metric.resize(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    result.metric[p] = static_cast<double>(g.degree(p));
  }
  result.rank.resize(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    result.rank[p] =
        core::NodeRank{.metric = result.metric[p], .incumbent = false,
                       .tie_id = uids[p], .uid = uids[p]};
  }
  result.parent = std::move(parent);
  const graph::ParentForest forest(result.parent);
  result.head_index.resize(n);
  result.head_id.resize(n);
  result.is_head.assign(n, 0);
  for (graph::NodeId p = 0; p < n; ++p) {
    result.head_index[p] = forest.root(p);
    result.head_id[p] = uids[forest.root(p)];
    result.is_head[p] = forest.is_root(p) ? 1 : 0;
  }
  for (graph::NodeId p = 0; p < n; ++p) {
    if (result.is_head[p]) result.heads.push_back(p);
  }
  return result;
}

}  // namespace ssmwn::cluster
