#include "cluster/baselines.hpp"

namespace ssmwn::cluster {

core::ClusteringResult cluster_lowest_id(const graph::Graph& g,
                                         const topology::IdAssignment& uids,
                                         const core::ClusterOptions& options) {
  // Constant metric: every comparison falls through to the identifier
  // tie-break, where the smaller id dominates.
  const std::vector<double> metric(g.node_count(), 0.0);
  return core::cluster_by_metric(g, uids, metric, options);
}

core::ClusteringResult cluster_highest_degree(
    const graph::Graph& g, const topology::IdAssignment& uids,
    const core::ClusterOptions& options) {
  std::vector<double> metric(g.node_count(), 0.0);
  for (graph::NodeId p = 0; p < g.node_count(); ++p) {
    metric[p] = static_cast<double>(g.degree(p));
  }
  return core::cluster_by_metric(g, uids, metric, options);
}

}  // namespace ssmwn::cluster
