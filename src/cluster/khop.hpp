// k-hop clustering — the related-work generalization ([7] Fernandess &
// Malkhi, "k-clustering in wireless ad hoc networks"): every node is at
// most k hops from its cluster-head, trading fewer/larger clusters for
// longer intra-cluster paths.
//
// We generalize the paper's election to radius k with the greedy
// ≺-descending discipline: walk nodes from the ≺-largest down, electing
// every node not yet within k hops of an elected head. The result is a
// maximal k-independent head set — every ≺-local-maximum is always
// elected (nothing larger exists near it to dominate it first), plus
// whatever additional heads are needed so no node is more than k hops
// from one. Members then join heads by a deterministic multi-source BFS
// (≺-larger heads win equidistant ties), so the parent structure stays
// a forest on radio links and the whole metrics layer applies
// unchanged. Note this is a *cover-guaranteeing* variant: for k = 1 the
// head set is a superset of the paper's (which elects only the local
// maxima and lets trees extend beyond 1 hop).
#pragma once

#include <cstddef>

#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "topology/ids.hpp"

namespace ssmwn::cluster {

/// k-hop election with an arbitrary metric (higher wins, ties through
/// the ≺ identifier order). k >= 1; the k = 1 head set contains all of
/// the paper's local-maxima heads (see the header comment).
[[nodiscard]] core::ClusteringResult cluster_khop_metric(
    const graph::Graph& g, const topology::IdAssignment& uids,
    std::span<const double> metric, std::size_t k);

/// k-hop election with the density metric.
[[nodiscard]] core::ClusteringResult cluster_khop_density(
    const graph::Graph& g, const topology::IdAssignment& uids, std::size_t k);

}  // namespace ssmwn::cluster
