#include "cluster/khop.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "core/density.hpp"
#include "graph/algorithms.hpp"
#include "graph/forest.hpp"

namespace ssmwn::cluster {

namespace {

using core::NodeRank;

/// Nodes within hop distance <= k of `origin` (excluding it), with their
/// distances.
std::vector<std::pair<graph::NodeId, std::uint32_t>> k_ball(
    const graph::Graph& g, graph::NodeId origin, std::size_t k) {
  std::vector<std::pair<graph::NodeId, std::uint32_t>> out;
  std::vector<std::uint32_t> dist(g.node_count(), graph::kUnreachable);
  std::queue<graph::NodeId> frontier;
  dist[origin] = 0;
  frontier.push(origin);
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop();
    if (dist[u] >= k) continue;
    for (graph::NodeId v : g.neighbors(u)) {
      if (dist[v] != graph::kUnreachable) continue;
      dist[v] = dist[u] + 1;
      out.emplace_back(v, dist[v]);
      frontier.push(v);
    }
  }
  return out;
}

}  // namespace

core::ClusteringResult cluster_khop_metric(const graph::Graph& g,
                                           const topology::IdAssignment& uids,
                                           std::span<const double> metric,
                                           std::size_t k) {
  const std::size_t n = g.node_count();
  if (uids.size() != n || metric.size() != n) {
    throw std::invalid_argument("cluster_khop_metric: size mismatch");
  }
  if (k == 0) throw std::invalid_argument("cluster_khop_metric: k >= 1");

  core::ClusteringResult result;
  result.metric.assign(metric.begin(), metric.end());
  result.rank.resize(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    result.rank[p] = NodeRank{.metric = metric[p], .incumbent = false,
                              .tie_id = uids[p], .uid = uids[p]};
  }
  const auto& rank = result.rank;

  // Greedy head selection in decreasing ≺ order: a node becomes a head
  // iff no already-chosen head lies within its k-ball. (For k = 1 this
  // yields exactly the local maxima: a node is chosen iff all neighbors
  // are ≺-smaller.)
  std::vector<graph::NodeId> order(n);
  for (graph::NodeId p = 0; p < n; ++p) order[p] = p;
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return core::precedes(rank[b], rank[a], false);
            });
  result.is_head.assign(n, 0);
  std::vector<char> dominated(n, 0);
  for (graph::NodeId p : order) {
    if (dominated[p]) continue;
    result.is_head[p] = 1;
    for (const auto& [q, d] : k_ball(g, p, k)) dominated[q] = 1;
  }

  // Membership: multi-source BFS from all heads simultaneously, ties
  // resolved toward the ≺-larger head, bounded to k hops. Nodes farther
  // than k from every head (only possible in sparse corners where the
  // greedy ball overlapped) fall back to the nearest head regardless of
  // distance, preserving total coverage.
  result.parent.assign(n, graph::kInvalidNode);
  result.head_index.assign(n, graph::kInvalidNode);
  std::vector<std::uint32_t> dist(n, graph::kUnreachable);
  std::queue<graph::NodeId> frontier;
  for (graph::NodeId p : order) {
    if (result.is_head[p]) {
      result.parent[p] = p;
      result.head_index[p] = p;
      dist[p] = 0;
      frontier.push(p);
      result.heads.push_back(p);
    }
  }
  // `order`-driven seeding makes the BFS deterministic: ≺-larger heads
  // enqueue first and win equidistant ties.
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop();
    for (graph::NodeId v : g.neighbors(u)) {
      if (dist[v] != graph::kUnreachable) continue;
      dist[v] = dist[u] + 1;
      result.parent[v] = u;
      result.head_index[v] = result.head_index[u];
      frontier.push(v);
    }
  }
  // Isolated nodes (unreached): their own heads.
  for (graph::NodeId p = 0; p < n; ++p) {
    if (result.head_index[p] == graph::kInvalidNode) {
      result.parent[p] = p;
      result.head_index[p] = p;
      result.is_head[p] = 1;
      result.heads.push_back(p);
    }
  }
  std::sort(result.heads.begin(), result.heads.end());

  result.head_id.resize(n);
  for (graph::NodeId p = 0; p < n; ++p) {
    result.head_id[p] = uids[result.head_index[p]];
  }
  return result;
}

core::ClusteringResult cluster_khop_density(
    const graph::Graph& g, const topology::IdAssignment& uids,
    std::size_t k) {
  const auto densities = core::compute_densities(g);
  return cluster_khop_metric(g, uids, densities, k);
}

}  // namespace ssmwn::cluster
