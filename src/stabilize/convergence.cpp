#include "stabilize/convergence.hpp"

namespace ssmwn::stabilize {

ConvergenceReport run_until_stable(const std::function<void()>& advance,
                                   const std::function<bool()>& legitimate,
                                   std::size_t confirm_steps,
                                   std::size_t max_steps) {
  ConvergenceReport report;
  bool was_legit = legitimate();
  std::size_t legit_since = 0;  // step index where current legit run began
  std::size_t legit_run = was_legit ? 1 : 0;

  for (std::size_t step = 1; step <= max_steps; ++step) {
    advance();
    report.steps_executed = step;
    const bool legit = legitimate();
    if (legit) {
      if (!was_legit) legit_since = step;
      ++legit_run;
      if (legit_run > confirm_steps) {
        report.converged = true;
        report.stabilization_step = legit_since;
        return report;
      }
    } else {
      if (was_legit) ++report.relapses;
      legit_run = 0;
    }
    was_legit = legit;
  }
  return report;
}

VirtualTimeReport run_until_stable_virtual(
    const std::function<double()>& advance,
    const std::function<std::uint64_t()>& message_count,
    const std::function<bool()>& legitimate, double confirm_s,
    double max_time_s) {
  VirtualTimeReport report;
  // Every timestamp comes from `advance`, so the detector also works
  // mid-execution (e.g. measuring recovery after a corruption injected
  // at a nonzero virtual time); the first check happens after the first
  // interval, never against an assumed t = 0 baseline.
  bool was_legit = false;
  double legit_since_s = 0.0;            // start of the current legit run
  std::uint64_t messages_at_legit = 0;   // message count at that start
  bool have_run = false;                 // a legit run is in progress

  double now_s = 0.0;
  while (now_s < max_time_s) {
    const double prev_s = now_s;
    now_s = advance();
    // `advance` must strictly increase the clock; a caller whose
    // interval rounds to zero virtual ticks would otherwise spin here
    // forever. Treat a stuck clock as "horizon exhausted".
    if (!(now_s > prev_s)) break;
    report.time_simulated_s = now_s;
    report.messages_total = message_count();
    const bool legit = legitimate();
    ++report.checks;
    if (legit) {
      if (!was_legit) {
        legit_since_s = now_s;
        messages_at_legit = report.messages_total;
        have_run = true;
      }
      if (have_run && now_s - legit_since_s >= confirm_s) {
        report.converged = true;
        report.stabilization_time_s = legit_since_s;
        report.messages_to_converge = messages_at_legit;
        return report;
      }
    } else {
      if (was_legit) ++report.relapses;
      have_run = false;
    }
    was_legit = legit;
  }
  return report;
}

}  // namespace ssmwn::stabilize
