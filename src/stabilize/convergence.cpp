#include "stabilize/convergence.hpp"

namespace ssmwn::stabilize {

ConvergenceReport run_until_stable(const std::function<void()>& advance,
                                   const std::function<bool()>& legitimate,
                                   std::size_t confirm_steps,
                                   std::size_t max_steps) {
  ConvergenceReport report;
  bool was_legit = legitimate();
  std::size_t legit_since = 0;  // step index where current legit run began
  std::size_t legit_run = was_legit ? 1 : 0;

  for (std::size_t step = 1; step <= max_steps; ++step) {
    advance();
    report.steps_executed = step;
    const bool legit = legitimate();
    if (legit) {
      if (!was_legit) legit_since = step;
      ++legit_run;
      if (legit_run > confirm_steps) {
        report.converged = true;
        report.stabilization_step = legit_since;
        return report;
      }
    } else {
      if (was_legit) ++report.relapses;
      legit_run = 0;
    }
    was_legit = legit;
  }
  return report;
}

}  // namespace ssmwn::stabilize
