// Guarded-command rule engine.
//
// The paper describes its algorithms in guarded-assignment notation
// (G → S composed with []), with the execution semantics "when a node
// executes its program, all statements with true guards are executed
// within a constant time, in round-robin order". RuleEngine realizes
// exactly that: a fixed list of named rules, swept in registration order;
// each rule whose guard holds fires once per sweep.
//
// The engine is deliberately tiny — the value is that protocol code reads
// like the paper (N1, R1, R2 are registered rules) and that tests can
// observe which rules fired.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ssmwn::stabilize {

template <typename State>
struct GuardedRule {
  std::string name;
  std::function<bool(const State&)> guard;
  std::function<void(State&)> action;
};

template <typename State>
class RuleEngine {
 public:
  RuleEngine& add(std::string name, std::function<bool(const State&)> guard,
                  std::function<void(State&)> action) {
    rules_.push_back(GuardedRule<State>{std::move(name), std::move(guard),
                                        std::move(action)});
    return *this;
  }

  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }

  [[nodiscard]] const std::string& rule_name(std::size_t i) const {
    return rules_[i].name;
  }

  /// One round-robin sweep: every enabled rule fires once, in order.
  /// Returns the number of rules that fired.
  std::size_t sweep(State& state) const {
    std::size_t fired = 0;
    for (const auto& rule : rules_) {
      if (rule.guard(state)) {
        rule.action(state);
        ++fired;
      }
    }
    return fired;
  }

  /// Sweeps until no guard is enabled or `max_sweeps` is reached; returns
  /// the number of sweeps performed. (Local fixpoint; the distributed
  /// fixpoint is driven by the sim layer.)
  std::size_t run_to_fixpoint(State& state, std::size_t max_sweeps) const {
    std::size_t sweeps = 0;
    while (sweeps < max_sweeps && sweep(state) > 0) ++sweeps;
    return sweeps;
  }

 private:
  std::vector<GuardedRule<State>> rules_;
};

}  // namespace ssmwn::stabilize
