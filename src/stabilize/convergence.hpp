// Convergence measurement for self-stabilization experiments.
//
// Self-stabilization means: from an *arbitrary* initial state, every
// execution reaches a legitimate state and stays there. The driver below
// measures exactly that: it advances a system step by step, evaluates a
// legitimacy predicate after each step, and reports the first step from
// which the predicate held continuously through the rest of the
// observation window ("stays there" is checked, not assumed — a predicate
// that flickers on and off does not count as converged).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

namespace ssmwn::stabilize {

struct ConvergenceReport {
  /// True iff legitimacy held from some step onward through the full
  /// confirmation window.
  bool converged = false;
  /// First step index (1-based: after that many steps) from which the
  /// predicate held without interruption. 0 means "legitimate before any
  /// step ran".
  std::size_t stabilization_step = 0;
  /// Total steps executed.
  std::size_t steps_executed = 0;
  /// Number of steps where the predicate flipped from true back to false
  /// (diagnoses oscillation).
  std::size_t relapses = 0;
};

/// Advances the system with `advance` (one synchronous step per call) and
/// evaluates `legitimate` after each; stops once legitimacy has held for
/// `confirm_steps` consecutive steps, or after `max_steps` steps.
[[nodiscard]] ConvergenceReport run_until_stable(
    const std::function<void()>& advance,
    const std::function<bool()>& legitimate, std::size_t confirm_steps,
    std::size_t max_steps);

/// Convergence in *virtual time*, for the event-driven engine: instead
/// of a step count, the interesting quantities are when (in simulated
/// seconds) the system became legitimate for good and how many message
/// deliveries it took to get there. Resolution is the caller's check
/// interval: the detector samples legitimacy between `advance` calls,
/// so the reported time/messages are those observed at the first check
/// of the final uninterrupted legitimate run.
struct VirtualTimeReport {
  /// True iff legitimacy held continuously for `confirm_s` of virtual
  /// time before `max_time_s` ran out.
  bool converged = false;
  /// Virtual time (seconds) at the first check of the final
  /// uninterrupted legitimate run. Checks begin after the first
  /// `advance`, so this is meaningful even when the caller's virtual
  /// clock starts nonzero (e.g. measuring recovery mid-execution).
  double stabilization_time_s = 0.0;
  /// Message count observed at that same check — the paper-relevant
  /// "messages to convergence".
  std::uint64_t messages_to_converge = 0;
  /// Virtual time actually simulated (seconds).
  double time_simulated_s = 0.0;
  /// Message count at the end of the observation.
  std::uint64_t messages_total = 0;
  /// Legitimate→illegitimate flips observed (diagnoses oscillation).
  std::size_t relapses = 0;
  /// Number of legitimacy checks performed.
  std::size_t checks = 0;
};

/// Drives an event-driven system until legitimacy has held for
/// `confirm_s` of continuous virtual time, or `max_time_s` of virtual
/// time has been simulated. `advance` processes one check interval of
/// events and returns the current virtual time in seconds (it must
/// strictly increase); `message_count` returns deliveries so far.
[[nodiscard]] VirtualTimeReport run_until_stable_virtual(
    const std::function<double()>& advance,
    const std::function<std::uint64_t()>& message_count,
    const std::function<bool()>& legitimate, double confirm_s,
    double max_time_s);

}  // namespace ssmwn::stabilize
