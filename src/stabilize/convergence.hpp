// Convergence measurement for self-stabilization experiments.
//
// Self-stabilization means: from an *arbitrary* initial state, every
// execution reaches a legitimate state and stays there. The driver below
// measures exactly that: it advances a system step by step, evaluates a
// legitimacy predicate after each step, and reports the first step from
// which the predicate held continuously through the rest of the
// observation window ("stays there" is checked, not assumed — a predicate
// that flickers on and off does not count as converged).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

namespace ssmwn::stabilize {

struct ConvergenceReport {
  /// True iff legitimacy held from some step onward through the full
  /// confirmation window.
  bool converged = false;
  /// First step index (1-based: after that many steps) from which the
  /// predicate held without interruption. 0 means "legitimate before any
  /// step ran".
  std::size_t stabilization_step = 0;
  /// Total steps executed.
  std::size_t steps_executed = 0;
  /// Number of steps where the predicate flipped from true back to false
  /// (diagnoses oscillation).
  std::size_t relapses = 0;
};

/// Advances the system with `advance` (one synchronous step per call) and
/// evaluates `legitimate` after each; stops once legitimacy has held for
/// `confirm_steps` consecutive steps, or after `max_steps` steps.
[[nodiscard]] ConvergenceReport run_until_stable(
    const std::function<void()>& advance,
    const std::function<bool()>& legitimate, std::size_t confirm_steps,
    std::size_t max_steps);

}  // namespace ssmwn::stabilize
