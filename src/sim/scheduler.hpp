// The Scheduler seam: the engine-agnostic core of the runtime.
//
// A Protocol (see sim/network.hpp's header comment for the concept)
// exposes four operations — build a broadcast frame, deliver a frame,
// fire guarded rules, age caches. *When* those operations happen is the
// execution model, and this repo now ships two of them behind the same
// seam:
//
//   * sim::Network       — the synchronous Δ(τ) stepper (lockstep
//                          broadcast → deliver → tick → end_step, the
//                          abstraction the paper's step-count bounds
//                          use);
//   * sim::AsyncNetwork  — the event-driven engine (per-node jittered
//                          broadcast periods, per-link delivery delays,
//                          pluggable daemons — the asynchronous regime
//                          the paper's self-stabilization theorem is
//                          actually stated for).
//
// This header holds what both engines share: the ArenaProtocol concept
// (zero-copy flat frames), the TimestampedProtocol concept (the
// per-delivery virtual-time hook the async engine feeds), and
// FrameBuffer — reusable storage for one in-flight frame that builds
// from / delivers to a protocol through whichever overload set the
// protocol provides. The synchronous engine's batch arena (one flat
// digest pool for all n frames of a step) remains its private
// optimization in network.hpp; FrameBuffer is the per-frame form the
// event-driven engine needs, where frames from different virtual times
// are in flight simultaneously.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"

namespace ssmwn::sim {

/// Optional zero-alloc extension of the Protocol concept: split frames
/// into a POD header plus digests written into caller-provided storage.
template <typename P>
concept ArenaProtocol =
    requires(const P& cp, P& p, graph::NodeId node,
             typename P::FrameHeader& header,
             std::span<typename P::Digest> out,
             std::span<const typename P::Digest> in) {
      { cp.digest_count(node) } -> std::convertible_to<std::size_t>;
      cp.make_frame(node, header, out);
      p.deliver(node, header, in);
    };

/// Optional redelivery extension: when an engine can prove a sender's
/// frame is bit-identical to the one every listener already consumed
/// (double-buffered arena rows + a loss-free medium), it may offer the
/// delivery as `redeliver_unchanged(receiver, header)` instead; when
/// only the digest *payloads* changed but the id sequence held, as
/// `deliver_payload(receiver, header, digests)` — the common active
/// regime, where the protocol can skip its compare/delta machinery and
/// overwrite in place; and when, additionally, only a *sparse subset* of
/// the payloads changed, as `deliver_delta(receiver, header, row_size,
/// changed)` — a delta-encoded frame carrying the full header plus only
/// the digests whose bits moved, which the protocol patches in place.
/// Any of the calls performs the delivery's remaining side effects and
/// returns true, or returns false to demand a fuller path — all must
/// decline when the receiver's cache was mutated from outside the step
/// loop since the last full sweep. The row compares use the protocol's
/// own equality predicates so engine and protocol agree on what
/// "unchanged" means (padding bytes never participate).
///
/// Row grades the engines' phase-1b compare produces (a bitmask):
/// bit-equality implies id-equality, and delta applicability implies
/// id-equality with bit-inequality, so the valid values are 0,
/// kRowIdsEqual, kRowIdsEqual | kRowBitsEqual, and
/// kRowIdsEqual | kRowDeltaApplicable.
inline constexpr unsigned char kRowIdsEqual = 1;   // id sequence held
inline constexpr unsigned char kRowBitsEqual = 2;  // whole row bit-equal
/// Id sequence held, bits moved in at most kRowDeltaNumerator /
/// kRowDeltaDenominator of the row's digests: the engine has a delta row
/// (changed digests only, ascending id) banked for this sender.
inline constexpr unsigned char kRowDeltaApplicable = 4;

/// Delta-profitability threshold: encode a delta row only when
/// changed · kRowDeltaDenominator ≤ row length · kRowDeltaNumerator.
/// At half the row or more, the patch walk plus the encode pass stops
/// beating deliver_payload's straight overwrite.
inline constexpr std::size_t kRowDeltaNumerator = 1;
inline constexpr std::size_t kRowDeltaDenominator = 2;

/// Null value for a delta section's base-generation tag ("patches
/// nothing"). Every batch of delta rows is stamped with the generation
/// of the arena build it was diffed against; receivers apply a delta
/// only when that tag names the rows they are known to have consumed,
/// and anything that breaks the induction (graph swaps, topology
/// deltas, engine/stepping switches, a lossy step) poisons the tag to
/// this value — the wire-format analogue of "resend the full frame".
inline constexpr std::uint64_t kNoGeneration = ~std::uint64_t{0};

template <typename P>
concept RedeliveryProtocol =
    requires(P& p, graph::NodeId receiver,
             const typename P::FrameHeader& header,
             std::span<const typename P::Digest> in,
             const typename P::Digest& digest, std::size_t row_size) {
      { p.redeliver_unchanged(receiver, header) } ->
          std::convertible_to<bool>;
      { p.deliver_payload(receiver, header, in) } -> std::convertible_to<bool>;
      { p.deliver_delta(receiver, header, row_size, in) } ->
          std::convertible_to<bool>;
      { P::header_bits_equal(header, header) } -> std::convertible_to<bool>;
      { P::digest_bits_equal(digest, digest) } -> std::convertible_to<bool>;
      { P::digest_id_equal(digest, digest) } -> std::convertible_to<bool>;
    };

/// Optional async extension: the protocol is told the virtual time of
/// every delivery (seconds). Synchronous engines never call it; the
/// event-driven engine calls it immediately before `deliver`.
template <typename P>
concept TimestampedProtocol = requires(P& p, graph::NodeId receiver,
                                       double time_s) {
  p.on_delivery(receiver, time_s);
};

/// Optional dynamic-topology extension: when a live run applies an edge
/// delta, both engines tell the protocol about every severed link so it
/// can invalidate exactly the neighbor state the perturbation made
/// stale (instead of waiting for cache aging). Models a link layer
/// that reports loss of connectivity; protocols without the hook fall
/// back to pure self-stabilizing recovery through aging. Added edges
/// need no hook — they announce themselves with their first frame.
template <typename P>
concept TopologyAwareProtocol = requires(P& p, graph::NodeId a,
                                         graph::NodeId b) {
  p.on_edge_removed(a, b);
};

/// Optional quiescence extension: the protocol can detect, per node and
/// per step, whether anything rule-relevant changed, and can skip a rule
/// sweep when it is provably a no-op. Both dirty-region steppers key off
/// this concept:
///
///   * set_activity_tracking(on) arms/disarms the change detector (off,
///     the protocol's hot paths must be byte-for-byte the classic ones);
///   * maybe_tick(p) sweeps unless provably redundant, returns whether
///     it swept (the async engine's activation uses this in place of
///     tick);
///   * consume_activity(p) reports and clears what changed during the
///     step that just ran — `state_changed` keeps p itself awake,
///     `frame_changed` wakes p's neighbors (the synchronous dirty
///     stepper's one-hop activity propagation);
///   * take_external_wakes() lists nodes mutated from outside the step
///     loop (fault injection, severed links) so the stepper can wake
///     their closed neighborhoods before the next step.
template <typename P>
concept QuiescentProtocol =
    requires(P& p, const P& cp, graph::NodeId node) {
      p.set_activity_tracking(true);
      { cp.activity_tracking() } -> std::convertible_to<bool>;
      { p.maybe_tick(node) } -> std::convertible_to<bool>;
      { p.consume_activity(node).state_changed } -> std::convertible_to<bool>;
      { p.consume_activity(node).frame_changed } -> std::convertible_to<bool>;
      { p.take_external_wakes() } -> std::convertible_to<std::vector<graph::NodeId>>;
    };

/// Reusable storage for one in-flight frame. Arena protocols get a POD
/// header plus a digest vector whose capacity survives reuse (steady
/// state: zero allocations once every slot has seen its deepest frame);
/// other protocols fall back to storing an owning `Protocol::Frame`.
template <typename Protocol, bool = ArenaProtocol<Protocol>>
struct FrameBuffer {
  typename Protocol::Frame frame;

  void build_from(const Protocol& protocol, graph::NodeId sender) {
    frame = protocol.make_frame(sender);
  }
  void deliver_to(Protocol& protocol, graph::NodeId receiver) const {
    protocol.deliver(receiver, frame);
  }
};

template <typename Protocol>
struct FrameBuffer<Protocol, true> {
  typename Protocol::FrameHeader header{};
  std::vector<typename Protocol::Digest> digests;

  void build_from(const Protocol& protocol, graph::NodeId sender) {
    digests.resize(protocol.digest_count(sender));
    protocol.make_frame(sender, header,
                        std::span(digests.data(), digests.size()));
  }
  void deliver_to(Protocol& protocol, graph::NodeId receiver) const {
    protocol.deliver(receiver, header,
                     std::span<const typename Protocol::Digest>(
                         digests.data(), digests.size()));
  }
};

}  // namespace ssmwn::sim
