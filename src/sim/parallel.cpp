#include "sim/parallel.hpp"

#include <algorithm>

namespace ssmwn::sim {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks() {
  for (;;) {
    const std::size_t begin = cursor_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= count_) break;
    fn_(ctx_, begin, std::min(begin + grain_, count_));
  }
}

void ThreadPool::parallel_for(std::size_t count, std::size_t grain, RangeFn fn,
                              void* ctx) {
  if (count == 0) return;
  if (grain == 0) {
    // ~4 chunks per thread: dynamic enough to balance uneven rows,
    // coarse enough that the atomic cursor never contends. The chunk
    // count is computed in std::size_t — `4 * thread_count()` in
    // unsigned could wrap to 0 for absurd pool sizes, and the quotient
    // for count < chunks is 0, so both legs need the max(1, ...) floor.
    const std::size_t chunks = 4 * static_cast<std::size_t>(thread_count());
    grain = std::max<std::size_t>(1, count / chunks);
  }
  if (workers_.empty() || count <= grain) {
    fn(ctx, 0, count);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    count_ = count;
    grain_ = grain;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunks();
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_chunks();
    {
      std::lock_guard lock(mutex_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace ssmwn::sim
