// Deterministic timestamped event queue for the asynchronous engine.
//
// The event-driven execution model replaces the global Δ(τ) step with a
// totally ordered stream of (virtual-time, event) pairs: node activations
// (a node wakes, fires its guarded rules, broadcasts) and frame
// deliveries (a broadcast frame reaches one receiver after a per-link
// delay). Determinism is the non-negotiable property — the same seed
// must replay the same trace byte for byte — so ties are broken by an
// admission sequence number assigned on push, never by heap layout or
// pointer values. Virtual time is integer microsecond ticks, not
// doubles: comparisons are exact, and traces serialize identically on
// every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ssmwn::sim {

/// Virtual time in microsecond ticks since the start of the execution.
using VirtualTime = std::uint64_t;

inline constexpr VirtualTime kTicksPerSecond = 1'000'000;

/// Seconds → ticks, rounding to nearest; negative durations clamp to 0
/// (a sampled delay distribution may graze below zero at high jitter).
[[nodiscard]] VirtualTime to_ticks(double seconds) noexcept;

[[nodiscard]] constexpr double to_seconds(VirtualTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

enum class EventKind : std::uint8_t {
  /// A node wakes: runs its guarded rules, then broadcasts a frame.
  kActivation,
  /// A previously broadcast frame reaches one receiver.
  kDelivery,
  /// A scheduled topology perturbation applies (dynamic-topology runs):
  /// the registered callback patches the live graph and the engine
  /// invalidates protocol state for severed links. `slot` indexes the
  /// pending-update list; `node`/`sender` are unused.
  kTopology,
};

struct Event {
  VirtualTime time = 0;
  /// Admission order, assigned by the queue; the total-order tiebreak
  /// for simultaneous events.
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kActivation;
  /// Activation: the waking node. Delivery: the receiver.
  graph::NodeId node = 0;
  /// Delivery only: the frame's sender.
  graph::NodeId sender = 0;
  /// Delivery only: index of the in-flight frame's storage slot.
  std::uint32_t slot = 0;

  /// Field-wise equality; traces are compared event by event.
  [[nodiscard]] bool operator==(const Event&) const noexcept = default;
};

/// Strict total order: earlier time first, earlier admission on ties.
[[nodiscard]] constexpr bool event_before(const Event& a,
                                          const Event& b) noexcept {
  return a.time != b.time ? a.time < b.time : a.seq < b.seq;
}

/// Binary min-heap over `event_before`. Storage is reused across pops,
/// so a steady-state push/pop cycle does not allocate once the heap has
/// reached its high-water capacity.
class EventQueue {
 public:
  /// Admits an event; its `seq` field is overwritten with the admission
  /// counter (the caller-supplied value is ignored).
  void push(Event event);

  [[nodiscard]] const Event& top() const { return heap_.front(); }

  /// Removes and returns the least event. Precondition: !empty().
  Event pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  /// Total events ever admitted (== the next seq to be assigned).
  [[nodiscard]] std::uint64_t admitted() const noexcept { return next_seq_; }

  void clear() noexcept { heap_.clear(); }

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ssmwn::sim
