#include "sim/churn.hpp"

#include <stdexcept>

namespace ssmwn::sim {

graph::Graph drop_links(const graph::Graph& base, double drop_probability,
                        util::Rng& rng) {
  if (drop_probability < 0.0 || drop_probability > 1.0) {
    throw std::invalid_argument("drop_links: probability out of range");
  }
  graph::Graph out(base.node_count());
  for (graph::NodeId a = 0; a < base.node_count(); ++a) {
    for (graph::NodeId b : base.neighbors(a)) {
      if (b > a && !rng.chance(drop_probability)) out.add_edge(a, b);
    }
  }
  out.finalize();
  return out;
}

graph::Graph mask_nodes(const graph::Graph& base,
                        std::span<const char> alive) {
  graph::Graph out(base.node_count());
  for (graph::NodeId a = 0; a < base.node_count(); ++a) {
    if (a < alive.size() && !alive[a]) continue;
    for (graph::NodeId b : base.neighbors(a)) {
      if (b > a && (b >= alive.size() || alive[b])) out.add_edge(a, b);
    }
  }
  out.finalize();
  return out;
}

NodeChurn::NodeChurn(std::size_t node_count, double down_rate,
                     double up_rate, util::Rng rng)
    : down_rate_(down_rate), up_rate_(up_rate), rng_(rng),
      alive_(node_count, 1) {
  if (down_rate < 0.0 || down_rate > 1.0 || up_rate < 0.0 || up_rate > 1.0) {
    throw std::invalid_argument("NodeChurn: rates out of range");
  }
}

const std::vector<char>& NodeChurn::step() {
  for (auto& flag : alive_) {
    if (flag) {
      if (rng_.chance(down_rate_)) flag = 0;
    } else if (rng_.chance(up_rate_)) {
      flag = 1;
    }
  }
  return alive_;
}

std::size_t NodeChurn::alive_count() const noexcept {
  std::size_t count = 0;
  for (char flag : alive_) count += flag != 0;
  return count;
}

}  // namespace ssmwn::sim
