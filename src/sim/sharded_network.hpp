// Spatially sharded synchronous step engine — sim::Network's phase
// structure, parallelized over contiguous node ranges ("shards")
// instead of raw index chunks, with all cross-shard traffic funneled
// through per-shard-pair mailboxes.
//
// Why shards instead of Network's flat for_nodes? At million-node scale
// the win is ownership: a shard owns a contiguous node range (ideally
// cell-major renumbered via graph::plan_spatial_shards, so radio
// neighbors are range-near), its own frame arena, and — in dirty mode —
// its own ActivityTracker. Every parallel phase is "one task per
// shard", each task touching only shard-owned state plus mailboxes it
// exclusively writes (keyed by source shard) or exclusively reads
// (keyed by destination shard, filled strictly before the phase
// barrier). That is the seam later multi-process / NUMA work plugs
// into: a mailbox flush is the message a process boundary would send.
//
// Determinism argument (the property the sharded differential tests
// assert): the engine runs the exact phase sequence of sim::Network —
// build frames, decide losses, deliver, tick, end-step — with a barrier
// between phases. Within a phase, each node is processed exactly once
// with inputs fixed at the barrier, and each receiver pulls its heard
// frames in ascending-sender order (its sorted CSR row), the same order
// the unsharded engine uses. Mailboxes are filled in a fixed
// (src-shard, dst-shard, admission) order — admission order is
// ascending sender id, because shard sweeps walk their range in order —
// and drained by binary search per edge, so *which* bytes a receiver
// sees never depends on shard count or thread count. Stateful loss
// models keep their serial sender-major polling pass, identical RNG
// draw sequence included. Hence: bit-identical to sim::Network at any
// shard/thread count, full or dirty stepping (docs/ARCHITECTURE.md §8).
//
// Dirty-region composition (PR 6): each shard's tracker wakes and
// drains locally; a wake that crosses a shard boundary rides a
// wake-mailbox flushed at the step's final barrier and drained at the
// next step's first phase — one step of latency is exactly what the
// unsharded stepper's double-buffered wake set gives, so the union of
// the per-shard active sets equals the global active set step for step.
// Frames a shard needs from remote senders are requested through a
// request-mailbox and answered through a frame-mailbox within the same
// step (two barriers), so quiescent shards with no requests do no work.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "sim/activity.hpp"
#include "sim/loss.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"

namespace ssmwn::sim {

template <typename Protocol>
class ShardedNetwork {
  static_assert(ArenaProtocol<Protocol>,
                "ShardedNetwork requires the arena extension (flat "
                "headers + digest pools); the legacy owning-frame "
                "engine has no shardable storage");

 public:
  /// `bounds` carves [0, n) into shard-owned ranges (see
  /// graph::ShardPlan::bounds — front 0, back n, monotone; empty ranges
  /// allowed). Throws std::invalid_argument on a malformed cover.
  /// `threads` is the step-engine parallelism (1 = fully inline,
  /// 0 = hardware concurrency); shards and threads are independent —
  /// one worker can sweep many shards, and extra workers idle.
  ShardedNetwork(const graph::Graph& g, Protocol& protocol, LossModel& loss,
                 std::vector<std::size_t> bounds, unsigned threads = 1)
      : graph_(&g), protocol_(&protocol), loss_(&loss) {
    if (bounds.size() < 2 || bounds.front() != 0 ||
        bounds.back() != g.node_count() ||
        !std::is_sorted(bounds.begin(), bounds.end())) {
      throw std::invalid_argument(
          "ShardedNetwork: bounds must be a monotone cover of [0, "
          "node_count]");
    }
    bounds_ = std::move(bounds);
    const std::size_t S = shard_count();
    shards_.resize(S);
    for (std::size_t s = 0; s < S; ++s) {
      shards_[s].begin = bounds_[s];
      shards_[s].end = bounds_[s + 1];
      shards_[s].boundary_out.resize(S);
    }
    frame_mb_.resize(S * S);
    req_mb_.resize(S * S);
    wake_mb_.resize(S * S);
    set_threads(threads);
  }

  /// Convenience: `shards` equal contiguous chunks (clamped to
  /// [1, max(1, n)] like graph::plan_contiguous_shards). For spatial
  /// locality, build the bounds from graph::plan_spatial_shards and a
  /// permuted graph instead.
  ShardedNetwork(const graph::Graph& g, Protocol& protocol, LossModel& loss,
                 std::size_t shards, unsigned threads = 1)
      : ShardedNetwork(
            g, protocol, loss,
            graph::plan_contiguous_shards(g.node_count(), shards).bounds,
            threads) {}

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return bounds_.size() - 1;
  }
  [[nodiscard]] std::span<const std::size_t> bounds() const noexcept {
    return bounds_;
  }

  /// Swaps the observed graph (mobility rebuild mode). The node count
  /// must still match the shard bounds — a sharded run renumbers once,
  /// up front, and keeps the numbering for its lifetime.
  void set_graph(const graph::Graph& g) {
    if (g.node_count() != bounds_.back()) {
      throw std::invalid_argument(
          "ShardedNetwork::set_graph: node count must match the shard "
          "bounds the engine was built with");
    }
    graph_ = &g;
    boundaries_stale_ = true;
    invalidate_row_hints();
    if (stepping_ == Stepping::kDirty) {
      for (Shard& sh : shards_) {
        sh.tracker.reset(sh.end - sh.begin, /*all_active=*/true);
      }
    }
  }

  /// Same contract as sim::Network::set_stepping — dirty mode needs the
  /// quiescence extension and a loss-free medium; throws otherwise.
  void set_stepping(Stepping mode) {
    if (mode == stepping_) return;
    invalidate_row_hints();
    if constexpr (QuiescentProtocol<Protocol>) {
      if (mode == Stepping::kDirty) {
        if (!loss_->always_delivers()) {
          throw std::invalid_argument(
              "dirty-region stepping requires a loss-free medium "
              "(loss model must report always_delivers)");
        }
        stepping_ = Stepping::kDirty;
        protocol_->set_activity_tracking(true);
        for (Shard& sh : shards_) {
          sh.tracker.reset(sh.end - sh.begin, /*all_active=*/true);
          sh.tracker.reset_counters();
        }
        for (auto& mb : wake_mb_) mb.clear();
        stats_.reset(0, false);
        stats_.reset_counters();
        return;
      }
      stepping_ = Stepping::kFull;
      protocol_->set_activity_tracking(false);
      for (Shard& sh : shards_) sh.tracker.reset(0, false);
      stats_.reset(0, false);
      return;
    } else {
      if (mode == Stepping::kDirty) {
        throw std::invalid_argument(
            "protocol does not implement the arena + quiescence "
            "extensions dirty-region stepping needs");
      }
      stepping_ = Stepping::kFull;
    }
  }

  [[nodiscard]] Stepping stepping() const noexcept { return stepping_; }

  /// Aggregate stepped/skipped counters across all shards — same
  /// numbers sim::Network::activity() reports for the same run. The
  /// aggregate keeps no work list; per-shard lists are at
  /// `shard_activity(s)`.
  [[nodiscard]] const ActivityTracker& activity() const noexcept {
    return stats_;
  }
  [[nodiscard]] const ActivityTracker& shard_activity(
      std::size_t s) const noexcept {
    return shards_[s].tracker;
  }

  /// Wakes each listed node and its closed neighborhood (dirty mode
  /// only), crossing shard boundaries directly — callers run between
  /// steps, where every tracker is safely writable.
  void mark_dirty(std::span<const graph::NodeId> nodes) {
    if (stepping_ != Stepping::kDirty) return;
    for (const graph::NodeId p : nodes) wake_closed(p);
  }

  void set_threads(unsigned threads) {
    if (threads == 0) {
      threads = std::max(1u, std::thread::hardware_concurrency());
    }
    threads = std::min(threads,
                       std::max(64u, 4u * std::thread::hardware_concurrency()));
    if (threads == thread_count()) return;
    pool_ = threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  }

  [[nodiscard]] unsigned thread_count() const noexcept {
    return pool_ ? pool_->thread_count() : 1u;
  }

  [[nodiscard]] std::size_t steps_run() const noexcept { return steps_; }

  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_delivered_;
  }

  /// Sender rows graded delta-applicable across all steps so far —
  /// same contract as sim::Network::delta_rows_graded(): folded
  /// serially in shard order, so identical for any shard/thread count.
  [[nodiscard]] std::uint64_t delta_rows_graded() const noexcept {
    return delta_rows_graded_;
  }

  /// Same contract as sim::Network::apply_topology_delta; additionally
  /// marks the static boundary-sender lists stale (a patched edge may
  /// create or destroy a boundary crossing).
  void apply_topology_delta(const graph::EdgeDelta& delta) {
    invalidate_row_hints();
    if constexpr (TopologyAwareProtocol<Protocol>) {
      for (const auto& [a, b] : delta.removed) {
        protocol_->on_edge_removed(a, b);
      }
    }
    boundaries_stale_ = true;
    if (stepping_ == Stepping::kDirty) {
      for (const auto& [a, b] : delta.added) {
        wake_closed(a);
        wake_closed(b);
      }
      for (const auto& [a, b] : delta.removed) {
        wake_closed(a);
        wake_closed(b);
      }
    }
  }

  /// Runs one synchronous broadcast-receive-compute step.
  void step() {
    loss_->begin_step();
    if constexpr (QuiescentProtocol<Protocol>) {
      if (stepping_ == Stepping::kDirty) {
        step_dirty();
        ++steps_;
        return;
      }
    }
    step_full();
    stats_.record(graph_->node_count(), 0);
    ++steps_;
  }

  void run(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) step();
  }

 private:
  /// One (src-shard, dst-shard) mailbox: the src shard's boundary
  /// frames, admitted in ascending sender id. `offsets` is CSR-style
  /// over `senders`; the sorted sender list is what the destination's
  /// delivery loop binary-searches per cross-shard edge.
  struct FrameMailbox {
    std::vector<graph::NodeId> senders;
    std::vector<typename Protocol::FrameHeader> headers;
    std::vector<typename Protocol::Digest> pool;
    std::vector<std::size_t> offsets;
    // Delta rows riding along with the full rows (redelivery protocols,
    // full stepping): for every sender graded kRowDeltaApplicable, the
    // digests whose bits moved since last step — the payload a
    // cross-process frame format would put on the wire, with the full
    // row kept as the fallback for receivers that decline the patch.
    // delta_offsets is CSR over mailbox slots (senders + 1 entries);
    // rows of senders without the grade are empty. Maintained only by
    // the full stepper's flush; the dirty stepper always grades 0, so
    // these are never read there.
    std::vector<typename Protocol::Digest> delta_pool;
    std::vector<std::size_t> delta_offsets;
  };

  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
    // Frame arena. Full stepping: one row per owned node (local index).
    // Dirty stepping: one row per entry of `sender_list` (compact).
    std::vector<typename Protocol::FrameHeader> headers;
    std::vector<typename Protocol::Digest> pool;
    std::vector<std::size_t> offsets;
    // Last full step's arena (redelivery protocols only): swapped with
    // the live buffers at the top of phase 1, so the freshly built rows
    // can be bit-compared against what every listener consumed last
    // step. Meaningful only while the engine-level validity flags hold.
    std::vector<typename Protocol::FrameHeader> prev_headers;
    std::vector<typename Protocol::Digest> prev_pool;
    std::vector<std::size_t> prev_offsets;
    // This step's delta rows (redelivery protocols, full stepping): the
    // changed digests of every delta-graded owned sender, ascending id,
    // CSR over local sender index — the shard-local mirror of
    // sim::Network's DeltaStorage. delta_rows counts the senders graded
    // delta-applicable this step (folded serially into the engine
    // total, so the aggregate is thread-count invariant).
    std::vector<typename Protocol::Digest> delta_pool;
    std::vector<std::size_t> delta_offsets;
    std::vector<std::uint32_t> delta_counts;
    std::uint64_t delta_rows = 0;
    // Full stepping: for each destination shard, the owned nodes with at
    // least one neighbor there (ascending). Rebuilt after topology
    // changes; copied into the frame mailboxes every step.
    std::vector<std::vector<graph::NodeId>> boundary_out;
    // Dirty stepping (all indices local unless noted).
    ActivityTracker tracker;
    std::vector<std::uint8_t> sender_mark;
    std::vector<std::size_t> sender_slot;
    std::vector<graph::NodeId> sender_list;  // global ids
    std::uint64_t delivered = 0;             // this step's reception count
  };

  [[nodiscard]] std::size_t shard_of(graph::NodeId p) const noexcept {
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(),
                                     static_cast<std::size_t>(p));
    return static_cast<std::size_t>(it - bounds_.begin()) - 1;
  }

  /// Maps `body(shard_index)` over all shards, inline or across the
  /// pool (one chunk per shard: shard tasks are coarse by design).
  /// Phases must write only shard-owned state and mailboxes keyed by
  /// the acting shard.
  template <typename F>
  void for_shards(F&& body) {
    const std::size_t S = shard_count();
    if (!pool_ || S < 2) {
      for (std::size_t s = 0; s < S; ++s) body(s);
      return;
    }
    pool_->parallel_for(
        S, 1,
        [](void* ctx, std::size_t begin, std::size_t end) {
          auto& f = *static_cast<std::remove_reference_t<F>*>(ctx);
          for (std::size_t s = begin; s < end; ++s) f(s);
        },
        &body);
  }

  /// Copies row `slot` of `src`'s arena to the back of `mb`.
  static void append_frame(FrameMailbox& mb, const Shard& src,
                           std::size_t slot) {
    mb.headers.push_back(src.headers[slot]);
    const std::size_t len = src.offsets[slot + 1] - src.offsets[slot];
    mb.offsets.push_back(mb.offsets.back() + len);
    mb.pool.insert(mb.pool.end(), src.pool.begin() + src.offsets[slot],
                   src.pool.begin() + src.offsets[slot] + len);
  }

  static void deliver_from(Protocol& protocol, graph::NodeId q,
                           const FrameMailbox& mb, graph::NodeId sender,
                           unsigned char grade = 0) {
    const auto it =
        std::lower_bound(mb.senders.begin(), mb.senders.end(), sender);
    // A miss here means the graph changed without set_graph /
    // apply_topology_delta — the boundary lists no longer cover it.
    assert(it != mb.senders.end() && *it == sender);
    const auto k = static_cast<std::size_t>(it - mb.senders.begin());
    const auto digests = std::span(mb.pool.data() + mb.offsets[k],
                                   mb.offsets[k + 1] - mb.offsets[k]);
    if constexpr (RedeliveryProtocol<Protocol>) {
      // The mailbox rows are byte copies of the sender shard's arena and
      // delta rows, so the sender-side grade covers them too. Callers
      // strip kRowDeltaApplicable from the grade when the delta rows'
      // base generation doesn't name the rows every listener consumed.
      if (grade != 0) {
        if ((grade & kRowBitsEqual) &&
            protocol.redeliver_unchanged(q, mb.headers[k])) {
          return;
        }
        if ((grade & kRowDeltaApplicable) &&
            protocol.deliver_delta(
                q, mb.headers[k], digests.size(),
                std::span(mb.delta_pool.data() + mb.delta_offsets[k],
                          mb.delta_offsets[k + 1] - mb.delta_offsets[k]))) {
          return;
        }
        if (protocol.deliver_payload(q, mb.headers[k], digests)) return;
      }
    }
    protocol.deliver(q, mb.headers[k], digests);
  }

  /// Recomputes the static boundary-sender lists (full stepping) after
  /// a topology or graph change. Parallel by shard; each shard scans
  /// its own CSR rows, so admission order is ascending sender id.
  void rebuild_boundaries() {
    const graph::Graph& g = *graph_;
    const std::size_t S = shard_count();
    for_shards([this, &g, S](std::size_t s) {
      Shard& sh = shards_[s];
      for (auto& list : sh.boundary_out) list.clear();
      for (std::size_t p = sh.begin; p < sh.end; ++p) {
        for (const graph::NodeId r :
             g.neighbors(static_cast<graph::NodeId>(p))) {
          const std::size_t t = shard_of(r);
          if (t == s) continue;
          auto& list = sh.boundary_out[t];
          if (list.empty() || list.back() != static_cast<graph::NodeId>(p)) {
            list.push_back(static_cast<graph::NodeId>(p));
          }
        }
      }
      (void)S;
    });
    boundaries_stale_ = false;
  }

  void step_full() {
    const graph::Graph& g = *graph_;
    const std::size_t n = g.node_count();
    const std::size_t S = shard_count();
    auto* protocol = protocol_;
    if (boundaries_stale_) rebuild_boundaries();

    // Phase 1 (parallel by source shard): snapshot all owned frames
    // into the shard arena, then flush every boundary frame into the
    // (src, dst) mailboxes — fixed admission order because the
    // boundary lists are ascending. Redelivery protocols double-buffer
    // the arena: last step's rows move to prev_* before the build, then
    // each fresh row is bit-compared against its predecessor so phase 3
    // can skip the full delivery of provably unchanged frames.
    if constexpr (RedeliveryProtocol<Protocol>) {
      row_unchanged_.resize(n);
      // One arena build per step, stamped serially. The delta rows this
      // build produces patch against the previous build's rows, so
      // their base-generation tag is generation_ - 1 — valid only when
      // those rows exist (and actually reached every listener, which
      // phase 3's hints flag checks on top).
      ++generation_;
      delta_base_generation_ =
          prev_rows_built_ ? generation_ - 1 : kNoGeneration;
    }
    for_shards([this, protocol, S](std::size_t s) {
      Shard& sh = shards_[s];
      const std::size_t local_n = sh.end - sh.begin;
      if constexpr (RedeliveryProtocol<Protocol>) {
        std::swap(sh.headers, sh.prev_headers);
        std::swap(sh.pool, sh.prev_pool);
        std::swap(sh.offsets, sh.prev_offsets);
      }
      sh.offsets.resize(local_n + 1);
      sh.offsets[0] = 0;
      for (std::size_t i = 0; i < local_n; ++i) {
        sh.offsets[i + 1] =
            sh.offsets[i] + protocol->digest_count(static_cast<graph::NodeId>(
                                sh.begin + i));
      }
      sh.pool.resize(sh.offsets[local_n]);
      sh.headers.resize(local_n);
      for (std::size_t i = 0; i < local_n; ++i) {
        protocol->make_frame(
            static_cast<graph::NodeId>(sh.begin + i), sh.headers[i],
            std::span(sh.pool.data() + sh.offsets[i],
                      sh.offsets[i + 1] - sh.offsets[i]));
      }
      if constexpr (RedeliveryProtocol<Protocol>) {
        // Each shard writes only its owned slice of the global bitmap.
        // Same grades as sim::Network's phase 1b: id sequence held
        // (payload overwrite suffices), whole row bit-equal (age reset
        // suffices), or ids held with at most half the digests moved
        // (delta patch suffices — the changed digests are extracted
        // into the shard's delta arena below).
        const bool cmp =
            prev_rows_built_ && sh.prev_offsets.size() == local_n + 1;
        sh.delta_counts.assign(local_n, 0);
        sh.delta_rows = 0;
        for (std::size_t i = 0; i < local_n; ++i) {
          unsigned char grade = 0;
          const std::size_t len = sh.offsets[i + 1] - sh.offsets[i];
          if (cmp && sh.prev_offsets[i + 1] - sh.prev_offsets[i] == len) {
            const auto* a = sh.pool.data() + sh.offsets[i];
            const auto* b = sh.prev_pool.data() + sh.prev_offsets[i];
            const bool header_bits = Protocol::header_bits_equal(
                sh.headers[i], sh.prev_headers[i]);
            // Same early-exit as the flat engine: past the delta
            // threshold only the id compares still matter, so the
            // wider payload compares stop — heavy-churn rows cost
            // about what the old first-mismatch exit did.
            const std::size_t cap = len * kRowDeltaNumerator /
                                    kRowDeltaDenominator;
            bool ids = true;
            std::size_t changed = 0;
            std::size_t k = 0;
            for (; k < len && ids; ++k) {
              ids = Protocol::digest_id_equal(a[k], b[k]);
              changed += !Protocol::digest_bits_equal(a[k], b[k]);
              if (changed > cap) break;
            }
            for (; k < len && ids; ++k) {
              ids = Protocol::digest_id_equal(a[k], b[k]);
            }
            if (ids) {
              grade = kRowIdsEqual;
              if (header_bits && changed == 0) {
                grade |= kRowBitsEqual;
              } else if (changed * kRowDeltaDenominator <=
                         len * kRowDeltaNumerator) {
                grade |= kRowDeltaApplicable;
                sh.delta_counts[i] = static_cast<std::uint32_t>(changed);
                ++sh.delta_rows;
              }
            }
          }
          row_unchanged_[sh.begin + i] = grade;
        }
        // Shard-local delta arena: prefix-sum the per-sender changed
        // counts (each shard sums only its own slice, so the build is
        // parallel by shard), then extract the changed digests.
        sh.delta_offsets.resize(local_n + 1);
        sh.delta_offsets[0] = 0;
        for (std::size_t i = 0; i < local_n; ++i) {
          sh.delta_offsets[i + 1] = sh.delta_offsets[i] + sh.delta_counts[i];
        }
        // changed <= len/2 per applicable row, so half the shard's
        // digest count bounds the pool; reserving it pins the
        // high-water mark at the first delta build.
        sh.delta_pool.reserve(sh.offsets[local_n] / 2);
        sh.delta_pool.resize(sh.delta_offsets[local_n]);
        for (std::size_t i = 0; i < local_n; ++i) {
          if (sh.delta_counts[i] == 0) continue;
          const auto* a = sh.pool.data() + sh.offsets[i];
          const auto* b = sh.prev_pool.data() + sh.prev_offsets[i];
          const std::size_t len = sh.offsets[i + 1] - sh.offsets[i];
          auto* out = sh.delta_pool.data() + sh.delta_offsets[i];
          for (std::size_t k = 0; k < len; ++k) {
            if (!Protocol::digest_bits_equal(a[k], b[k])) *out++ = a[k];
          }
        }
      }
      for (std::size_t t = 0; t < S; ++t) {
        if (t == s) continue;
        FrameMailbox& mb = frame_mb_[s * S + t];
        mb.senders.assign(sh.boundary_out[t].begin(),
                          sh.boundary_out[t].end());
        mb.headers.clear();
        mb.pool.clear();
        mb.offsets.assign(1, 0);
        if constexpr (RedeliveryProtocol<Protocol>) {
          mb.delta_pool.clear();
          mb.delta_offsets.assign(1, 0);
        }
        for (const graph::NodeId p : mb.senders) {
          const std::size_t slot = static_cast<std::size_t>(p) - sh.begin;
          append_frame(mb, sh, slot);
          if constexpr (RedeliveryProtocol<Protocol>) {
            if (row_unchanged_[p] & kRowDeltaApplicable) {
              mb.delta_pool.insert(
                  mb.delta_pool.end(),
                  sh.delta_pool.begin() + sh.delta_offsets[slot],
                  sh.delta_pool.begin() + sh.delta_offsets[slot + 1]);
            }
            mb.delta_offsets.push_back(mb.delta_pool.size());
          }
        }
      }
    });

    // Phase 2 (serial unless τ = 1): identical to Network::step_arena —
    // per-edge loss decisions polled sender-major so stateful loss
    // models draw the exact same RNG sequence, stored at the
    // receiver's incoming CSR slot via the mirror index.
    const auto offsets = g.csr_offsets();
    const auto flat = g.csr_neighbors();
    const bool hear_all = loss_->always_delivers();
    if (!hear_all) {
      incoming_.resize(flat.size());
      for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t e = offsets[p]; e < offsets[p + 1]; ++e) {
          const bool heard =
              loss_->delivered(static_cast<graph::NodeId>(p), flat[e]);
          incoming_[g.mirror_edge(e)] = heard;
          messages_delivered_ += heard;
        }
      }
    } else {
      messages_delivered_ += flat.size();
    }

    // Phase 3 (parallel by destination shard): each owned receiver
    // pulls its heard frames in ascending-sender order — local senders
    // from the shard arena, remote senders from the (src, dst) mailbox.
    // With valid row hints (previous step built rows AND was loss-free,
    // so every listener consumed exactly those rows), an unchanged
    // sender's delivery collapses to the protocol's redelivery
    // bookkeeping — the receiver's cache entry already holds the bytes.
    const bool hints = row_hints_valid_ && hear_all;
    // Delta patches additionally require the delta rows' base-generation
    // tag to name the arena build every listener consumed; when it
    // doesn't, the delta bit is masked out of every grade and those rows
    // fall through to the payload/full paths.
    unsigned char gmask = 0;
    if constexpr (RedeliveryProtocol<Protocol>) {
      const bool deltas_ok =
          hints && delta_base_generation_ + 1 == generation_;
      gmask = deltas_ok ? static_cast<unsigned char>(0xFF)
                        : static_cast<unsigned char>(~kRowDeltaApplicable);
    }
    for_shards([this, protocol, offsets, flat, hear_all, hints, gmask,
                S](std::size_t t) {
      Shard& sh = shards_[t];
      for (std::size_t q = sh.begin; q < sh.end; ++q) {
        for (std::size_t e = offsets[q]; e < offsets[q + 1]; ++e) {
          if (!hear_all && !incoming_[e]) continue;
          const graph::NodeId p = flat[e];
          if (p >= sh.begin && p < sh.end) {
            const std::size_t slot = static_cast<std::size_t>(p) - sh.begin;
            const auto digests =
                std::span(sh.pool.data() + sh.offsets[slot],
                          sh.offsets[slot + 1] - sh.offsets[slot]);
            if constexpr (RedeliveryProtocol<Protocol>) {
              const unsigned char grade =
                  hints ? static_cast<unsigned char>(row_unchanged_[p] & gmask)
                        : static_cast<unsigned char>(0);
              if (grade) {
                if ((grade & kRowBitsEqual) &&
                    protocol->redeliver_unchanged(
                        static_cast<graph::NodeId>(q), sh.headers[slot])) {
                  continue;
                }
                if ((grade & kRowDeltaApplicable) &&
                    protocol->deliver_delta(
                        static_cast<graph::NodeId>(q), sh.headers[slot],
                        digests.size(),
                        std::span(
                            sh.delta_pool.data() + sh.delta_offsets[slot],
                            sh.delta_offsets[slot + 1] -
                                sh.delta_offsets[slot]))) {
                  continue;
                }
                if (protocol->deliver_payload(static_cast<graph::NodeId>(q),
                                              sh.headers[slot], digests)) {
                  continue;
                }
              }
            }
            protocol->deliver(static_cast<graph::NodeId>(q), sh.headers[slot],
                              digests);
          } else {
            deliver_from(*protocol, static_cast<graph::NodeId>(q),
                         frame_mb_[shard_of(p) * S + t], p,
                         hints ? static_cast<unsigned char>(
                                     row_unchanged_[p] & gmask)
                               : static_cast<unsigned char>(0));
          }
        }
      }
    });

    // Phases 4 + 5 (parallel by shard): guarded rules, then cache aging.
    for_shards([this, protocol](std::size_t s) {
      for (std::size_t p = shards_[s].begin; p < shards_[s].end; ++p) {
        protocol->tick(static_cast<graph::NodeId>(p));
      }
    });
    for_shards([this, protocol](std::size_t s) {
      for (std::size_t p = shards_[s].begin; p < shards_[s].end; ++p) {
        protocol->end_step(static_cast<graph::NodeId>(p));
      }
    });

    if constexpr (RedeliveryProtocol<Protocol>) {
      // Serial fold of the per-shard delta tallies (shard order), so the
      // aggregate is identical for any thread count.
      for (const Shard& sh : shards_) delta_rows_graded_ += sh.delta_rows;
      prev_rows_built_ = true;
      // Hints are trustworthy next step only if *this* step delivered
      // every row to every listener (loss would leave some caches
      // behind the rows the compare runs against).
      row_hints_valid_ = hear_all;
    }
  }

  /// Drops the double-buffered row state (redelivery protocols): the
  /// next full step runs every delivery through the full compare path,
  /// and any banked delta rows are orphaned (their base generation no
  /// longer names rows every listener consumed).
  void invalidate_row_hints() noexcept {
    prev_rows_built_ = false;
    row_hints_valid_ = false;
    delta_base_generation_ = kNoGeneration;
  }

  /// Wakes `p` and its neighbors across whichever shards own them.
  /// Serial contexts only (between steps / serial prologue).
  void wake_closed(graph::NodeId p) {
    wake_owned(p);
    for (const graph::NodeId r : graph_->neighbors(p)) wake_owned(r);
  }

  void wake_owned(graph::NodeId p) {
    Shard& sh = shards_[shard_of(p)];
    sh.tracker.wake(static_cast<graph::NodeId>(p - sh.begin));
  }

  /// The quiescence-aware sharded step. Same induction as the
  /// unsharded stepper (docs/ARCHITECTURE.md §7): the union of the
  /// per-shard active sets equals the global stepper's active set every
  /// step, because intra-shard wakes land directly and cross-shard
  /// wakes ride the wake mailboxes flushed at this step's end and
  /// drained before the next begin_step — the same one-step latency the
  /// double-buffered wake set already has.
  void step_dirty() {
    // Dirty mode reuses the shard arenas in compact (sender-list) form,
    // clobbering the per-node rows the redelivery compare needs.
    invalidate_row_hints();
    const graph::Graph& g = *graph_;
    const std::size_t n = g.node_count();
    const std::size_t S = shard_count();
    auto* protocol = protocol_;

    // Serial prologue: externally mutated nodes wake their closed
    // neighborhood, crossing shard boundaries directly.
    for (const graph::NodeId p : protocol_->take_external_wakes()) {
      wake_closed(p);
    }

    // Phase 0 (parallel by shard): drain inbound wake mailboxes, then
    // promote the accumulated wake set to this step's work list.
    for_shards([this, S](std::size_t t) {
      Shard& sh = shards_[t];
      for (std::size_t s = 0; s < S; ++s) {
        auto& mb = wake_mb_[s * S + t];
        for (const graph::NodeId p : mb) {
          sh.tracker.wake(static_cast<graph::NodeId>(p - sh.begin));
        }
        mb.clear();
      }
      sh.tracker.begin_step();
    });

    std::size_t total_active = 0;
    for (const Shard& sh : shards_) total_active += sh.tracker.active().size();
    if (total_active == 0) {
      for (Shard& sh : shards_) sh.tracker.record(0, sh.end - sh.begin);
      stats_.record(0, n);
      return;
    }

    // Phase 1 (parallel by destination shard): discover the sender set.
    // Local senders go straight into the compact list; remote senders
    // are requested from their owning shard via the request mailboxes
    // (sorted + deduplicated, so the owner admits them in ascending
    // order).
    for_shards([this, &g, S](std::size_t t) {
      Shard& sh = shards_[t];
      const std::size_t local_n = sh.end - sh.begin;
      sh.sender_mark.assign(local_n, 0);
      sh.sender_slot.resize(local_n);
      sh.sender_list.clear();
      sh.delivered = 0;
      for (std::size_t s = 0; s < S; ++s) {
        if (s != t) req_mb_[t * S + s].clear();
      }
      for (const graph::NodeId lq : sh.tracker.active()) {
        const auto q = static_cast<graph::NodeId>(sh.begin + lq);
        sh.delivered += g.degree(q);
        for (const graph::NodeId r : g.neighbors(q)) {
          if (r >= sh.begin && r < sh.end) {
            const std::size_t lr = static_cast<std::size_t>(r) - sh.begin;
            if (!sh.sender_mark[lr]) {
              sh.sender_mark[lr] = 1;
              sh.sender_list.push_back(r);
            }
          } else {
            req_mb_[t * S + shard_of(r)].push_back(r);
          }
        }
      }
      for (std::size_t s = 0; s < S; ++s) {
        if (s == t) continue;
        auto& req = req_mb_[t * S + s];
        std::sort(req.begin(), req.end());
        req.erase(std::unique(req.begin(), req.end()), req.end());
      }
    });

    // Phase 2 (parallel by source shard): merge remote requests into
    // the local sender set, build every needed frame once, then answer
    // each request list through the frame mailboxes.
    for_shards([this, protocol, S](std::size_t s) {
      Shard& sh = shards_[s];
      for (std::size_t t = 0; t < S; ++t) {
        if (t == s) continue;
        for (const graph::NodeId p : req_mb_[t * S + s]) {
          const std::size_t lp = static_cast<std::size_t>(p) - sh.begin;
          if (!sh.sender_mark[lp]) {
            sh.sender_mark[lp] = 1;
            sh.sender_list.push_back(p);
          }
        }
      }
      const std::size_t senders = sh.sender_list.size();
      sh.offsets.resize(senders + 1);
      sh.offsets[0] = 0;
      for (std::size_t i = 0; i < senders; ++i) {
        sh.offsets[i + 1] =
            sh.offsets[i] + protocol->digest_count(sh.sender_list[i]);
      }
      sh.pool.resize(sh.offsets[senders]);
      sh.headers.resize(senders);
      for (std::size_t i = 0; i < senders; ++i) {
        sh.sender_slot[static_cast<std::size_t>(sh.sender_list[i]) -
                       sh.begin] = i;
        protocol->make_frame(
            sh.sender_list[i], sh.headers[i],
            std::span(sh.pool.data() + sh.offsets[i],
                      sh.offsets[i + 1] - sh.offsets[i]));
      }
      for (std::size_t t = 0; t < S; ++t) {
        if (t == s) continue;
        const auto& req = req_mb_[t * S + s];
        FrameMailbox& mb = frame_mb_[s * S + t];
        mb.senders.assign(req.begin(), req.end());
        mb.headers.clear();
        mb.pool.clear();
        mb.offsets.assign(1, 0);
        for (const graph::NodeId p : req) {
          append_frame(mb, sh,
                       sh.sender_slot[static_cast<std::size_t>(p) - sh.begin]);
        }
      }
    });

    // Phase 3 (parallel by destination shard): every active node pulls
    // every neighbor's frame, ascending-sender order as always.
    for_shards([this, protocol, &g, S](std::size_t t) {
      Shard& sh = shards_[t];
      for (const graph::NodeId lq : sh.tracker.active()) {
        const auto q = static_cast<graph::NodeId>(sh.begin + lq);
        for (const graph::NodeId r : g.neighbors(q)) {
          if (r >= sh.begin && r < sh.end) {
            const std::size_t slot =
                sh.sender_slot[static_cast<std::size_t>(r) - sh.begin];
            protocol->deliver(
                q, sh.headers[slot],
                std::span(sh.pool.data() + sh.offsets[slot],
                          sh.offsets[slot + 1] - sh.offsets[slot]));
          } else {
            deliver_from(*protocol, q, frame_mb_[shard_of(r) * S + t], r);
          }
        }
      }
    });

    // Phases 4 + 5 (parallel by shard): guarded rules, cache aging —
    // active nodes only.
    for_shards([this, protocol](std::size_t t) {
      Shard& sh = shards_[t];
      for (const graph::NodeId lq : sh.tracker.active()) {
        protocol->tick(static_cast<graph::NodeId>(sh.begin + lq));
      }
    });
    for_shards([this, protocol](std::size_t t) {
      Shard& sh = shards_[t];
      for (const graph::NodeId lq : sh.tracker.active()) {
        protocol->end_step(static_cast<graph::NodeId>(sh.begin + lq));
      }
    });

    // Phase 6 (parallel by shard): one-hop activity propagation. Local
    // wakes land in the shard's own tracker; wakes for remote nodes
    // ride the wake mailboxes, drained at the next step's phase 0.
    for_shards([this, protocol, &g, S](std::size_t t) {
      Shard& sh = shards_[t];
      for (std::size_t s = 0; s < S; ++s) {
        if (s != t) wake_mb_[t * S + s].clear();
      }
      for (const graph::NodeId lq : sh.tracker.active()) {
        const auto q = static_cast<graph::NodeId>(sh.begin + lq);
        const auto a = protocol->consume_activity(q);
        if (a.state_changed) sh.tracker.wake(lq);
        if (!a.frame_changed) continue;
        for (const graph::NodeId r : g.neighbors(q)) {
          if (r >= sh.begin && r < sh.end) {
            sh.tracker.wake(static_cast<graph::NodeId>(r - sh.begin));
          } else {
            wake_mb_[t * S + shard_of(r)].push_back(r);
          }
        }
      }
    });

    // Serial epilogue: fold the per-shard tallies in shard order.
    for (Shard& sh : shards_) {
      messages_delivered_ += sh.delivered;
      const std::size_t stepped = sh.tracker.active().size();
      sh.tracker.record(stepped, (sh.end - sh.begin) - stepped);
    }
    stats_.record(total_active, n - total_active);
  }

  const graph::Graph* graph_;
  Protocol* protocol_;
  LossModel* loss_;
  std::vector<std::size_t> bounds_;
  std::vector<Shard> shards_;
  std::size_t steps_ = 0;
  std::uint64_t messages_delivered_ = 0;
  Stepping stepping_ = Stepping::kFull;
  bool boundaries_stale_ = true;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<unsigned char> incoming_;  // per-edge decisions (lossy full)
  // Redelivery (full stepping): global per-node bitmap of "this step's
  // row is bit-identical to last step's", each shard writing only its
  // owned slice; the flags gate whether prev_* rows exist and whether
  // every listener actually consumed them (loss-free previous step).
  std::vector<unsigned char> row_unchanged_;
  std::uint64_t generation_ = 0;  // arena builds since construction
  std::uint64_t delta_base_generation_ = kNoGeneration;
  std::uint64_t delta_rows_graded_ = 0;
  bool prev_rows_built_ = false;
  bool row_hints_valid_ = false;
  ActivityTracker stats_;                // aggregate counters only
  // Mailboxes, all indexed [writer_shard * S + reader_shard] so every
  // parallel phase writes only its own row. frame_mb_ and wake_mb_ are
  // written by the frame/wake *source* shard; req_mb_ is written by the
  // *requesting* (destination) shard, so req_mb_[t * S + s] holds the
  // senders shard t wants from shard s.
  std::vector<FrameMailbox> frame_mb_;
  std::vector<std::vector<graph::NodeId>> req_mb_;
  std::vector<std::vector<graph::NodeId>> wake_mb_;  // cross-shard wakes
};

}  // namespace ssmwn::sim
