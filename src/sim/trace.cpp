#include "sim/trace.hpp"

#include <algorithm>

namespace ssmwn::sim {

std::size_t HeadTrace::nodes_touched() const {
  std::vector<graph::NodeId> nodes;
  nodes.reserve(changes_.size());
  for (const auto& change : changes_) nodes.push_back(change.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes.size();
}

std::string HeadTrace::render(std::size_t limit) const {
  std::ostringstream out;
  std::size_t shown = 0;
  for (const auto& change : changes_) {
    if (shown++ >= limit) {
      out << "... (" << changes_.size() - limit << " more)\n";
      break;
    }
    out << "step " << change.step << ": node " << change.node << " head "
        << change.old_head << " -> " << change.new_head << '\n';
  }
  return out.str();
}

}  // namespace ssmwn::sim
