// Topology dynamics — the paper's second future-work axis ("sharp bounds
// on the stabilization as a function of ... frequency of links failure").
//
// Two generators over a base radio graph:
//  * LinkFlapper — each snapshot drops every link independently with a
//    given probability (fading/interference);
//  * NodeChurn   — nodes alternate between up and down with geometric
//    sojourn times (crashes, duty-cycling); a down node keeps its index
//    but loses all links, matching how the protocol experiences a
//    silent neighbor.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssmwn::sim {

/// Copy of `base` with each edge independently removed with probability
/// `drop_probability`.
[[nodiscard]] graph::Graph drop_links(const graph::Graph& base,
                                      double drop_probability,
                                      util::Rng& rng);

/// Copy of `base` with all edges of nodes whose `alive` flag is 0
/// removed (indices preserved).
[[nodiscard]] graph::Graph mask_nodes(const graph::Graph& base,
                                      std::span<const char> alive);

/// Alternating up/down node process: an up node goes down with
/// probability `down_rate` per snapshot, a down node recovers with
/// probability `up_rate`.
class NodeChurn {
 public:
  NodeChurn(std::size_t node_count, double down_rate, double up_rate,
            util::Rng rng);

  /// Advances one snapshot and returns the current alive mask.
  const std::vector<char>& step();

  [[nodiscard]] const std::vector<char>& alive() const noexcept {
    return alive_;
  }
  [[nodiscard]] std::size_t alive_count() const noexcept;

 private:
  double down_rate_;
  double up_rate_;
  util::Rng rng_;
  std::vector<char> alive_;
};

}  // namespace ssmwn::sim
