// Execution tracing for the distributed protocol.
//
// Records per-step observations of a protocol's shared state (head
// changes, head counts, rule-relevant transitions) so tests and
// debugging sessions can reconstruct *how* an execution converged, not
// just whether it did. Header-only; the tracer is observed state from
// the outside — it never perturbs the protocol.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "topology/ids.hpp"

namespace ssmwn::sim {

/// One recorded head reassignment.
struct HeadChange {
  std::size_t step;
  graph::NodeId node;
  topology::ProtocolId old_head;
  topology::ProtocolId new_head;
};

/// Observes successive snapshots of the per-node head values.
class HeadTrace {
 public:
  /// Feeds the head values after a step; the first call sets the
  /// baseline. Returns the number of changes recorded for this step.
  std::size_t observe(const std::vector<topology::ProtocolId>& heads) {
    std::size_t changed = 0;
    if (has_baseline_) {
      for (graph::NodeId p = 0; p < heads.size() && p < last_.size(); ++p) {
        if (heads[p] != last_[p]) {
          changes_.push_back(HeadChange{step_, p, last_[p], heads[p]});
          ++changed;
        }
      }
    }
    last_ = heads;
    has_baseline_ = true;
    ++step_;
    return changed;
  }

  [[nodiscard]] const std::vector<HeadChange>& changes() const noexcept {
    return changes_;
  }
  [[nodiscard]] std::size_t steps_observed() const noexcept { return step_; }

  /// Step index after which no change was recorded (the measured
  /// stabilization point); equals steps_observed() if still churning.
  [[nodiscard]] std::size_t quiescent_since() const noexcept {
    return changes_.empty() ? 0 : changes_.back().step + 1;
  }

  /// Number of distinct nodes that ever changed their head.
  [[nodiscard]] std::size_t nodes_touched() const;

  /// Human-readable changelog (one line per change).
  [[nodiscard]] std::string render(std::size_t limit = 50) const;

 private:
  std::vector<topology::ProtocolId> last_;
  bool has_baseline_ = false;
  std::size_t step_ = 0;
  std::vector<HeadChange> changes_;
};

}  // namespace ssmwn::sim
