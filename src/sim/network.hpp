// Synchronous-step network runtime — the lockstep instance of the
// Scheduler seam (sim/scheduler.hpp; the event-driven instance is
// sim/async_network.hpp).
//
// One `step()` realizes the paper's Δ(τ) time unit: every node builds a
// frame from its shared variables and locally broadcasts it; the loss
// model decides per receiver whether the frame is heard; then every node
// atomically executes its guarded rules against its (possibly stale)
// caches. Reception is double-buffered — all frames of a step are built
// from the state *before* any rule of that step fires, exactly matching
// the synchronous semantics the paper's step-count arguments use.
//
// The Protocol type supplies the node behavior:
//
//   struct Protocol {
//     using Frame = ...;                       // broadcast payload
//     Frame make_frame(graph::NodeId sender);  // read-only snapshot
//     void deliver(graph::NodeId receiver, const Frame& frame);
//     void tick(graph::NodeId node);           // run guarded rules
//     void end_step(graph::NodeId node);       // cache aging etc. (optional hook)
//   };
//
// Protocols may additionally implement the *arena* extension (see
// ArenaProtocol below): fixed-size frame headers plus variable-length
// digest lists written into flat, engine-owned buffers keyed by per-step
// CSR-style offsets. The engine then reuses those buffers across steps,
// so a steady-state step performs zero heap allocations, and all four
// phases (build, deliver, tick, end-step) run data-parallel on a worker
// pool. Every phase writes only the state of the node it is indexed by
// and each node's inputs are fixed before the phase starts, so results
// are bit-identical for any thread count (asserted by the sim tests);
// stateful loss models are always polled serially in sender-major order
// to keep their RNG draw sequence identical to the classic engine.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"
#include "sim/activity.hpp"
#include "sim/loss.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"

namespace ssmwn::sim {

// This class is the *synchronous* instance of the Scheduler seam
// (sim/scheduler.hpp); the event-driven instance is sim::AsyncNetwork.
// The ArenaProtocol concept it detects lives in scheduler.hpp, shared
// with the async engine.

namespace detail {

/// Reusable flat frame storage; empty for protocols without the arena
/// extension (the legacy engine keeps a vector of owning frames instead).
template <typename Protocol, bool = ArenaProtocol<Protocol>>
struct ArenaStorage {};

template <typename Protocol>
struct ArenaStorage<Protocol, true> {
  std::vector<typename Protocol::FrameHeader> headers;  // one per node
  std::vector<typename Protocol::Digest> pool;          // all digests, flat
  std::vector<std::size_t> offsets;                     // n + 1 row offsets
};

/// Delta rows for the current step: for every sender graded
/// kRowDeltaApplicable, the digests whose bits moved since the previous
/// arena build (ascending id, CSR-indexed like the main pool). The
/// base_generation tag names the arena build the deltas were diffed
/// against — the wire-shape element a cross-process frame format would
/// carry — and is poisoned to kNoGeneration whenever the consumed-rows
/// induction breaks. Empty for protocols without the redelivery
/// extension.
template <typename Protocol, bool = RedeliveryProtocol<Protocol>>
struct DeltaStorage {};

template <typename Protocol>
struct DeltaStorage<Protocol, true> {
  std::vector<typename Protocol::Digest> pool;  // changed digests, flat
  std::vector<std::size_t> offsets;             // n + 1 row offsets
  std::vector<std::uint32_t> counts;            // per-sender changed count
  std::uint64_t base_generation = kNoGeneration;
};

}  // namespace detail

template <typename Protocol>
class Network {
 public:
  /// The graph reference is observed, not owned; it may be swapped between
  /// steps (mobility) via `set_graph`. `threads` is the step-engine
  /// parallelism (1 = fully inline, 0 = hardware concurrency).
  Network(const graph::Graph& g, Protocol& protocol, LossModel& loss,
          unsigned threads = 1)
      : graph_(&g), protocol_(&protocol), loss_(&loss) {
    set_threads(threads);
  }

  void set_graph(const graph::Graph& g) {
    graph_ = &g;
    // A wholesale graph swap (mobility rebuild mode) invalidates every
    // adjacency assumption the activity set encodes: wake everyone.
    if (stepping_ == Stepping::kDirty) {
      tracker_.reset(g.node_count(), /*all_active=*/true);
    }
    invalidate_row_hints();  // adjacency defines who consumed which row
  }

  /// Selects the stepper. Dirty-region stepping requires a protocol with
  /// both the arena and quiescence extensions and a loss model that
  /// always delivers (skipping a node is only provably a no-op when its
  /// inputs are deterministic; a lossy medium re-randomizes them — and
  /// skipped deliveries would desynchronize the loss model's RNG draw
  /// sequence from the full stepper's). Throws std::invalid_argument
  /// when those preconditions fail. Entering dirty mode arms the
  /// protocol's change detector and wakes every node; leaving it
  /// disarms the detector, restoring the classic byte-for-byte paths.
  void set_stepping(Stepping mode) {
    if (mode == stepping_) return;
    invalidate_row_hints();
    if constexpr (ArenaProtocol<Protocol> && QuiescentProtocol<Protocol>) {
      if (mode == Stepping::kDirty) {
        if (!loss_->always_delivers()) {
          throw std::invalid_argument(
              "dirty-region stepping requires a loss-free medium "
              "(loss model must report always_delivers)");
        }
        stepping_ = Stepping::kDirty;
        protocol_->set_activity_tracking(true);
        tracker_.reset(graph_->node_count(), /*all_active=*/true);
        tracker_.reset_counters();
        return;
      }
      stepping_ = Stepping::kFull;
      protocol_->set_activity_tracking(false);
      tracker_.reset(0, false);
      return;
    } else {
      if (mode == Stepping::kDirty) {
        throw std::invalid_argument(
            "protocol does not implement the arena + quiescence "
            "extensions dirty-region stepping needs");
      }
      stepping_ = Stepping::kFull;
    }
  }

  [[nodiscard]] Stepping stepping() const noexcept { return stepping_; }

  /// Activity counters (and, in dirty mode, the current step's work
  /// list): `activity().last_nodes_stepped() == 0` after a step is the
  /// quiescence property the tests assert.
  [[nodiscard]] const ActivityTracker& activity() const noexcept {
    return tracker_;
  }

  /// Seeds the activity set from outside knowledge — e.g.
  /// `graph::DynamicGraph::dirty_nodes()` after a live patch: wakes each
  /// listed node and its closed neighborhood (their next frames and
  /// heard frames may both have changed). No-op in full stepping.
  void mark_dirty(std::span<const graph::NodeId> nodes) {
    if (stepping_ != Stepping::kDirty) return;
    for (const graph::NodeId p : nodes) wake_closed(p);
  }

  /// Rebuilds the worker pool synchronously (joins the old workers,
  /// spawns the new ones); steps use the new size from the next call.
  /// 0 = hardware concurrency; absurd counts (e.g. an unsigned-cast -1)
  /// are clamped — more workers than cores can ever help is waste.
  /// `thread_count()` reports the effective size after clamping.
  void set_threads(unsigned threads) {
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads,
                       std::max(64u, 4u * std::thread::hardware_concurrency()));
    if (threads == thread_count()) return;
    pool_ = threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  }

  [[nodiscard]] unsigned thread_count() const noexcept {
    return pool_ ? pool_->thread_count() : 1u;
  }

  /// Forces the pre-arena engine (per-step owning frames) even when the
  /// protocol supports the arena extension. Exists so benchmarks can
  /// compare against the seed behavior; never faster.
  void set_legacy_engine(bool on) noexcept {
    legacy_engine_ = on;
    invalidate_row_hints();
  }
  [[nodiscard]] bool legacy_engine() const noexcept { return legacy_engine_; }

  [[nodiscard]] std::size_t steps_run() const noexcept { return steps_; }

  /// Frame receptions that actually happened (post-loss) across all
  /// steps so far. Counted in the serial phases only, so the value is
  /// identical for any thread count and for the legacy vs arena engine.
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_delivered_;
  }

  /// Sender rows graded delta-applicable (id sequence held, a sparse
  /// subset of digest payloads changed) across all steps so far. Counted
  /// in the serial phase-1c prefix sum, so the value is identical for
  /// any thread count. Zero for protocols without the redelivery
  /// extension and under the legacy/dirty steppers.
  [[nodiscard]] std::uint64_t delta_rows_graded() const noexcept {
    return delta_rows_graded_;
  }

  /// Notifies the runtime that the observed graph was just patched with
  /// `delta` (dynamic-topology runs; the owner mutates the graph via
  /// graph::DynamicGraph, then calls this). The engine itself holds no
  /// per-topology state — its next step simply walks the new CSR — but
  /// topology-aware protocols get told about every severed link so the
  /// stale neighbor caches die now rather than by aging. Call between
  /// steps.
  void apply_topology_delta(const graph::EdgeDelta& delta) {
    invalidate_row_hints();
    if constexpr (TopologyAwareProtocol<Protocol>) {
      for (const auto& [a, b] : delta.removed) {
        protocol_->on_edge_removed(a, b);
      }
    }
    // Dirty stepping: a patched edge changes the inputs of exactly the
    // closed neighborhoods of its endpoints — the endpoints see a
    // different adjacency row (and, for removals, a pruned cache), their
    // neighbors must hear the endpoints' changed frames this very step.
    if (stepping_ == Stepping::kDirty) {
      for (const auto& [a, b] : delta.added) {
        wake_closed(a);
        wake_closed(b);
      }
      for (const auto& [a, b] : delta.removed) {
        wake_closed(a);
        wake_closed(b);
      }
    }
  }

  /// Runs one synchronous broadcast-receive-compute step.
  void step() {
    loss_->begin_step();
    if constexpr (ArenaProtocol<Protocol> && QuiescentProtocol<Protocol>) {
      if (stepping_ == Stepping::kDirty) {
        step_dirty();
        ++steps_;
        return;
      }
    }
    if constexpr (ArenaProtocol<Protocol>) {
      if (!legacy_engine_) {
        step_arena();
        tracker_.record(graph_->node_count(), 0);
        ++steps_;
        return;
      }
    }
    step_legacy();
    tracker_.record(graph_->node_count(), 0);
    ++steps_;
  }

  /// Runs `count` steps.
  void run(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) step();
  }

 private:
  /// Maps `body(node)` over [0, n), inline or across the pool. Phases
  /// must write only state owned by `node`.
  template <typename F>
  void for_nodes(std::size_t n, F&& body) {
    if (!pool_) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    pool_->parallel_for(
        n, 0,
        [](void* ctx, std::size_t begin, std::size_t end) {
          auto& f = *static_cast<std::remove_reference_t<F>*>(ctx);
          for (std::size_t i = begin; i < end; ++i) f(i);
        },
        &body);
  }

  /// Forgets the previous step's frame rows. Called whenever the "every
  /// listener consumed exactly these rows" induction breaks: graph
  /// swaps or patches, stepping-mode or engine switches, or a stepper
  /// (legacy, dirty) that doesn't maintain the double buffer.
  void invalidate_row_hints() noexcept {
    prev_rows_built_ = false;
    row_hints_valid_ = false;
    if constexpr (RedeliveryProtocol<Protocol>) {
      delta_.base_generation = kNoGeneration;
    }
  }

  void step_legacy() {
    const graph::Graph& g = *graph_;
    const std::size_t n = g.node_count();
    invalidate_row_hints();  // owning-frame path, no row double buffer

    // Broadcast phase: snapshot every node's frame first (synchronous
    // semantics), then deliver.
    frames_.clear();
    frames_.reserve(n);
    for (graph::NodeId p = 0; p < n; ++p) {
      frames_.push_back(protocol_->make_frame(p));
    }
    for (graph::NodeId p = 0; p < n; ++p) {
      for (graph::NodeId q : g.neighbors(p)) {
        if (loss_->delivered(p, q)) {
          protocol_->deliver(q, frames_[p]);
          ++messages_delivered_;
        }
      }
    }

    // Compute phase: every node runs all of its enabled guarded rules.
    for (graph::NodeId p = 0; p < n; ++p) {
      protocol_->tick(p);
    }
    for (graph::NodeId p = 0; p < n; ++p) {
      protocol_->end_step(p);
    }
  }

  void step_arena() {
    const graph::Graph& g = *graph_;
    const std::size_t n = g.node_count();
    auto& arena = arena_;

    // Phase 0 (serial, O(n)): size the digest pool. Row p of the pool is
    // [offsets[p], offsets[p+1]), mirroring the CSR layout of the graph.
    arena.offsets.resize(n + 1);
    arena.offsets[0] = 0;
    for (std::size_t p = 0; p < n; ++p) {
      arena.offsets[p + 1] =
          arena.offsets[p] +
          protocol_->digest_count(static_cast<graph::NodeId>(p));
    }
    arena.pool.resize(arena.offsets[n]);
    arena.headers.resize(n);

    // Phase 1 (parallel by sender): snapshot all frames into the arena.
    auto* protocol = protocol_;
    for_nodes(n, [protocol, &arena](std::size_t p) {
      protocol->make_frame(
          static_cast<graph::NodeId>(p), arena.headers[p],
          std::span(arena.pool.data() + arena.offsets[p],
                    arena.offsets[p + 1] - arena.offsets[p]));
    });

    // Phase 1b (parallel by sender): grade each row against last
    // step's. One streaming pass over two sequential buffers here saves
    // a gathered per-edge compare in phase 3 — each row is compared
    // once instead of once per listener. Three grades, same bitwise
    // field equality contract as the protocol's own change detection:
    // kRowIdsEqual (the id sequence held; payloads may churn — the
    // common active regime), additionally kRowBitsEqual (the whole row,
    // header included, is bit-identical — the quiescent regime), or
    // additionally kRowDeltaApplicable (ids held and at most half the
    // digests moved — the late-recovery regime, worth delta-encoding).
    if constexpr (RedeliveryProtocol<Protocol>) {
      ++generation_;
      row_unchanged_.assign(n, 0);
      delta_.counts.assign(n, 0);
      delta_.base_generation = kNoGeneration;
      if (prev_rows_built_ && prev_arena_.headers.size() == n) {
        const auto& prev = prev_arena_;
        auto* unchanged = row_unchanged_.data();
        auto* counts = delta_.counts.data();
        for_nodes(n, [&arena, &prev, unchanged, counts](std::size_t p) {
          const std::size_t len = arena.offsets[p + 1] - arena.offsets[p];
          if (prev.offsets[p + 1] - prev.offsets[p] != len) return;
          const auto* a = arena.pool.data() + arena.offsets[p];
          const auto* b = prev.pool.data() + prev.offsets[p];
          const bool header_bits =
              Protocol::header_bits_equal(arena.headers[p], prev.headers[p]);
          // Once `changed` blows the delta threshold the row can only
          // grade kRowIdsEqual, so the (wider) payload compares stop;
          // the id compares must still cover the whole row — the
          // ids-equal gate is what makes redelivery sound. This keeps
          // heavy-churn rows (the active regime) near the old
          // first-mismatch early-exit cost.
          const std::size_t cap = len * kRowDeltaNumerator /
                                  kRowDeltaDenominator;
          std::size_t changed = 0;
          std::size_t k = 0;
          for (; k < len; ++k) {
            if (!Protocol::digest_id_equal(a[k], b[k])) return;
            changed += !Protocol::digest_bits_equal(a[k], b[k]);
            if (changed > cap) {
              ++k;
              break;
            }
          }
          for (; k < len; ++k) {
            if (!Protocol::digest_id_equal(a[k], b[k])) return;
          }
          unsigned char grade = kRowIdsEqual;
          if (header_bits && changed == 0) {
            grade |= kRowBitsEqual;
          } else if (changed * kRowDeltaDenominator <=
                     len * kRowDeltaNumerator) {
            grade |= kRowDeltaApplicable;
            counts[p] = static_cast<std::uint32_t>(changed);
          }
          unchanged[p] = grade;
        });

        // Phase 1c (serial, O(n)): CSR offsets for the delta rows; then
        // (parallel) extract the changed digests — a second compare
        // pass, but only over delta-graded rows, and shared by every
        // listener of each sender. The extracted rows are what a
        // delta-encoded wire frame would carry: base-generation tag,
        // full header, changed digests ascending by id.
        delta_.offsets.resize(n + 1);
        delta_.offsets[0] = 0;
        std::size_t delta_rows = 0;
        for (std::size_t p = 0; p < n; ++p) {
          delta_.offsets[p + 1] = delta_.offsets[p] + delta_.counts[p];
          delta_rows += (row_unchanged_[p] & kRowDeltaApplicable) != 0;
        }
        delta_rows_graded_ += delta_rows;
        // A row only grades delta-applicable when changed <= len/2, so
        // the pool can never exceed half the arena's digest count.
        // Reserving that bound up front pins the high-water mark at the
        // first delta build instead of letting the pool grow step by
        // step through a recovery window that must stay allocation-free.
        delta_.pool.reserve(arena.offsets[n] / 2);
        delta_.pool.resize(delta_.offsets[n]);
        delta_.base_generation = generation_ - 1;
        if (delta_.offsets[n] != 0) {
          auto& delta = delta_;
          for_nodes(n, [&arena, &prev, &delta, unchanged,
                        counts](std::size_t p) {
            if ((unchanged[p] & kRowDeltaApplicable) == 0 || counts[p] == 0) {
              return;
            }
            const auto* a = arena.pool.data() + arena.offsets[p];
            const auto* b = prev.pool.data() + prev.offsets[p];
            const std::size_t len = arena.offsets[p + 1] - arena.offsets[p];
            auto* out = delta.pool.data() + delta.offsets[p];
            for (std::size_t k = 0; k < len; ++k) {
              if (!Protocol::digest_bits_equal(a[k], b[k])) *out++ = a[k];
            }
          });
        }
      }
    }

    // Phase 2 (serial unless τ = 1): per-edge delivery decisions, polled
    // in the classic sender-major order so stateful loss models draw the
    // same RNG sequence as the legacy engine. The decision for p → q is
    // stored at q's incoming CSR slot via the mirror index.
    const auto offsets = g.csr_offsets();
    const auto flat = g.csr_neighbors();
    const bool hear_all = loss_->always_delivers();
    if (!hear_all) {
      incoming_.resize(flat.size());
      for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t e = offsets[p]; e < offsets[p + 1]; ++e) {
          const bool heard =
              loss_->delivered(static_cast<graph::NodeId>(p), flat[e]);
          incoming_[g.mirror_edge(e)] = heard;
          messages_delivered_ += heard;
        }
      }
    } else {
      messages_delivered_ += flat.size();
    }

    // Phase 3 (parallel by receiver): each node pulls the heard frames
    // from its sorted neighbor row — the same ascending-sender order the
    // legacy sender-major loops produce. Rows graded unchanged in phase
    // 1b (and heard by everyone last step — perfect medium) collapse to
    // the protocol's fast paths, attempted strongest first: bit-equal
    // rows to an age reset, delta-applicable rows to an in-place patch
    // of the changed digests (gated on the base-generation tag naming
    // the rows every listener consumed), rows with a held id sequence to
    // a straight payload overwrite. Every skip is bit-identical by
    // induction on the rows a receiver has consumed; the protocol
    // declines them all for receivers whose cache was externally mutated
    // since the last sweep, falling through to the next-fuller path.
    const bool hints = row_hints_valid_ && hear_all;
    bool deltas_ok = false;
    if constexpr (RedeliveryProtocol<Protocol>) {
      deltas_ok = hints && delta_.base_generation + 1 == generation_;
    }
    for_nodes(n, [protocol, &arena, offsets, flat, hear_all, hints,
                  deltas_ok, this](std::size_t q) {
      for (std::size_t e = offsets[q]; e < offsets[q + 1]; ++e) {
        if (!hear_all && !incoming_[e]) continue;
        const graph::NodeId p = flat[e];
        if constexpr (RedeliveryProtocol<Protocol>) {
          if (hints && row_unchanged_[p]) {
            if ((row_unchanged_[p] & kRowBitsEqual) &&
                protocol->redeliver_unchanged(static_cast<graph::NodeId>(q),
                                              arena.headers[p])) {
              continue;
            }
            if ((row_unchanged_[p] & kRowDeltaApplicable) && deltas_ok &&
                protocol->deliver_delta(
                    static_cast<graph::NodeId>(q), arena.headers[p],
                    arena.offsets[p + 1] - arena.offsets[p],
                    std::span(delta_.pool.data() + delta_.offsets[p],
                              delta_.offsets[p + 1] - delta_.offsets[p]))) {
              continue;
            }
            if (protocol->deliver_payload(
                    static_cast<graph::NodeId>(q), arena.headers[p],
                    std::span(arena.pool.data() + arena.offsets[p],
                              arena.offsets[p + 1] - arena.offsets[p]))) {
              continue;
            }
          }
        }
        protocol->deliver(
            static_cast<graph::NodeId>(q), arena.headers[p],
            std::span(arena.pool.data() + arena.offsets[p],
                      arena.offsets[p + 1] - arena.offsets[p]));
      }
    });

    // Phase 4 + 5 (parallel): guarded rules, then cache aging.
    for_nodes(n, [protocol](std::size_t p) {
      protocol->tick(static_cast<graph::NodeId>(p));
    });
    for_nodes(n, [protocol](std::size_t p) {
      protocol->end_step(static_cast<graph::NodeId>(p));
    });

    // This step's rows become the redelivery reference: buffers swap
    // (pointer swap, no copy), and hints arm only when this sweep
    // actually put the rows in every listener's cache (loss-free
    // medium). Anything that breaks that guarantee — graph changes,
    // engine or stepping switches — calls invalidate_row_hints().
    if constexpr (RedeliveryProtocol<Protocol>) {
      std::swap(arena_, prev_arena_);
      prev_rows_built_ = true;
      row_hints_valid_ = hear_all;
    }
  }

  /// Wakes `p` and its (current-graph) neighbors for the next step.
  void wake_closed(graph::NodeId p) {
    tracker_.wake(p);
    for (const graph::NodeId r : graph_->neighbors(p)) tracker_.wake(r);
  }

  /// The quiescence-aware step: only active nodes (those whose closed
  /// neighborhood changed last step) receive, tick and age; everyone
  /// else is left untouched — which is bit-identical to full stepping
  /// because a skipped node is at a boundary-state fixpoint with
  /// unchanged inputs (see docs/ARCHITECTURE.md §7 for the induction).
  /// Active receivers hear *all* their neighbors — quiescent senders'
  /// frames are built on demand (make_frame is const) — so cache ages
  /// and contents evolve exactly as under the full stepper.
  void step_dirty() {
    const graph::Graph& g = *graph_;
    const std::size_t n = g.node_count();
    auto& arena = arena_;
    auto* protocol = protocol_;
    invalidate_row_hints();  // compact pools clobber the row buffers

    // Nodes mutated outside the step loop (fault injection, severed
    // links) wake their closed neighborhood: under full stepping their
    // neighbors would hear the mutated frame this very step.
    for (const graph::NodeId p : protocol_->take_external_wakes()) {
      wake_closed(p);
    }

    tracker_.begin_step();
    const std::span<const graph::NodeId> active = tracker_.active();
    if (active.empty()) {
      tracker_.record(0, n);
      return;
    }

    // Phase 0 (serial): the sender set — every neighbor of an active
    // node broadcasts (quiescent senders included; their frames are
    // pure reads). Row i of the compact pool belongs to sender_list_[i].
    sender_mark_.assign(n, 0);
    sender_slot_.resize(n);
    sender_list_.clear();
    for (const graph::NodeId q : active) {
      messages_delivered_ += g.degree(q);
      for (const graph::NodeId r : g.neighbors(q)) {
        if (!sender_mark_[r]) {
          sender_mark_[r] = 1;
          sender_slot_[r] = sender_list_.size();
          sender_list_.push_back(r);
        }
      }
    }
    const std::size_t senders = sender_list_.size();
    dirty_offsets_.resize(senders + 1);
    dirty_offsets_[0] = 0;
    for (std::size_t i = 0; i < senders; ++i) {
      dirty_offsets_[i + 1] =
          dirty_offsets_[i] + protocol_->digest_count(sender_list_[i]);
    }
    arena.pool.resize(dirty_offsets_[senders]);
    arena.headers.resize(senders);

    // Phase 1 (parallel by sender): snapshot the needed frames.
    for_nodes(senders, [protocol, &arena, this](std::size_t i) {
      protocol->make_frame(
          sender_list_[i], arena.headers[i],
          std::span(arena.pool.data() + dirty_offsets_[i],
                    dirty_offsets_[i + 1] - dirty_offsets_[i]));
    });

    // Phase 2 (parallel by active receiver): every active node pulls
    // every neighbor's frame, ascending-sender order as always.
    for_nodes(active.size(), [protocol, &arena, active, &g,
                              this](std::size_t i) {
      const graph::NodeId q = active[i];
      for (const graph::NodeId r : g.neighbors(q)) {
        const std::size_t slot = sender_slot_[r];
        protocol->deliver(
            q, arena.headers[slot],
            std::span(arena.pool.data() + dirty_offsets_[slot],
                      dirty_offsets_[slot + 1] - dirty_offsets_[slot]));
      }
    });

    // Phases 3 + 4 (parallel by active node): guarded rules, cache aging.
    for_nodes(active.size(), [protocol, active](std::size_t i) {
      protocol->tick(active[i]);
    });
    for_nodes(active.size(), [protocol, active](std::size_t i) {
      protocol->end_step(active[i]);
    });

    // Phase 5 (serial): one-hop activity propagation. A node whose own
    // state moved steps again; a node whose *frame-visible* state moved
    // additionally wakes its neighbors — knowledge travels one hop per
    // step, so one hop of wake-up is exactly enough.
    for (const graph::NodeId q : active) {
      const auto a = protocol_->consume_activity(q);
      if (a.state_changed) tracker_.wake(q);
      if (a.frame_changed) {
        for (const graph::NodeId r : g.neighbors(q)) tracker_.wake(r);
      }
    }
    tracker_.record(active.size(), n - active.size());
  }

  const graph::Graph* graph_;
  Protocol* protocol_;
  LossModel* loss_;
  std::size_t steps_ = 0;
  std::uint64_t messages_delivered_ = 0;
  bool legacy_engine_ = false;
  Stepping stepping_ = Stepping::kFull;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<typename Protocol::Frame> frames_;       // legacy engine
  detail::ArenaStorage<Protocol> arena_;               // arena engine
  detail::ArenaStorage<Protocol> prev_arena_;          // last step's rows
  std::vector<unsigned char> incoming_;                // per-edge decisions
  std::vector<unsigned char> row_unchanged_;           // per-sender hint bits
  detail::DeltaStorage<Protocol> delta_;               // this step's delta rows
  std::uint64_t generation_ = 0;       // arena builds since construction
  std::uint64_t delta_rows_graded_ = 0;
  bool prev_rows_built_ = false;   // prev_arena_ holds last step's rows
  bool row_hints_valid_ = false;   // ...and last step delivered them all
  ActivityTracker tracker_;                            // dirty stepping
  std::vector<std::uint8_t> sender_mark_;
  std::vector<std::size_t> sender_slot_;
  std::vector<graph::NodeId> sender_list_;
  std::vector<std::size_t> dirty_offsets_;
};

}  // namespace ssmwn::sim
