// Synchronous-step network runtime.
//
// One `step()` realizes the paper's Δ(τ) time unit: every node builds a
// frame from its shared variables and locally broadcasts it; the loss
// model decides per receiver whether the frame is heard; then every node
// atomically executes its guarded rules against its (possibly stale)
// caches. Reception is double-buffered — all frames of a step are built
// from the state *before* any rule of that step fires, exactly matching
// the synchronous semantics the paper's step-count arguments use.
//
// The Protocol type supplies the node behavior:
//
//   struct Protocol {
//     using Frame = ...;                       // broadcast payload
//     Frame make_frame(graph::NodeId sender);  // read-only snapshot
//     void deliver(graph::NodeId receiver, const Frame& frame);
//     void tick(graph::NodeId node);           // run guarded rules
//     void end_step(graph::NodeId node);       // cache aging etc. (optional hook)
//   };
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "sim/loss.hpp"

namespace ssmwn::sim {

template <typename Protocol>
class Network {
 public:
  /// The graph reference is observed, not owned; it may be swapped between
  /// steps (mobility) via `set_graph`.
  Network(const graph::Graph& g, Protocol& protocol, LossModel& loss)
      : graph_(&g), protocol_(&protocol), loss_(&loss) {}

  void set_graph(const graph::Graph& g) noexcept { graph_ = &g; }

  [[nodiscard]] std::size_t steps_run() const noexcept { return steps_; }

  /// Runs one synchronous broadcast-receive-compute step.
  void step() {
    const graph::Graph& g = *graph_;
    const std::size_t n = g.node_count();
    loss_->begin_step();

    // Broadcast phase: snapshot every node's frame first (synchronous
    // semantics), then deliver.
    frames_.clear();
    frames_.reserve(n);
    for (graph::NodeId p = 0; p < n; ++p) {
      frames_.push_back(protocol_->make_frame(p));
    }
    for (graph::NodeId p = 0; p < n; ++p) {
      for (graph::NodeId q : g.neighbors(p)) {
        if (loss_->delivered(p, q)) {
          protocol_->deliver(q, frames_[p]);
        }
      }
    }

    // Compute phase: every node runs all of its enabled guarded rules.
    for (graph::NodeId p = 0; p < n; ++p) {
      protocol_->tick(p);
    }
    for (graph::NodeId p = 0; p < n; ++p) {
      protocol_->end_step(p);
    }
    ++steps_;
  }

  /// Runs `count` steps.
  void run(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) step();
  }

 private:
  const graph::Graph* graph_;
  Protocol* protocol_;
  LossModel* loss_;
  std::size_t steps_ = 0;
  std::vector<typename Protocol::Frame> frames_;
};

}  // namespace ssmwn::sim
