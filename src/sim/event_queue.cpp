#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ssmwn::sim {

VirtualTime to_ticks(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;  // negatives and NaN clamp to 0
  const double ticks =
      std::nearbyint(seconds * static_cast<double>(kTicksPerSecond));
  // Saturate: casting a double at or above 2^64 is UB, and any duration
  // that far out (≳ 585 millennia of virtual time) is "never".
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<VirtualTime>::max());
  if (ticks >= kMax) return std::numeric_limits<VirtualTime>::max();
  return static_cast<VirtualTime>(ticks);
}

namespace {

/// std::*_heap maintain a max-heap; inverting the strict total order
/// makes them keep the event_before-least element at the front. The
/// pop sequence is a pure function of the admitted set (the order is
/// total), so determinism never depends on internal heap layout.
bool heap_after(const Event& a, const Event& b) noexcept {
  return event_before(b, a);
}

}  // namespace

void EventQueue::push(Event event) {
  event.seq = next_seq_++;
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
}

Event EventQueue::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  const Event least = heap_.back();
  heap_.pop_back();
  return least;
}

}  // namespace ssmwn::sim
