// Allocation-free fork-join worker pool for the step engine.
//
// The synchronous step is data-parallel by construction: each of its
// phases (frame building, delivery, rule execution, cache aging) touches
// every node exactly once and writes only that node's state. The pool
// maps such a phase over an index range. Two properties matter more than
// raw sophistication here:
//
//   * Determinism — tasks receive index ranges, never thread identities,
//     and every index is processed exactly once, so results are
//     bit-identical for any worker count (asserted by the sim tests).
//   * Zero steady-state allocation — jobs are a function pointer plus a
//     context pointer stored in fixed members (no std::function), and
//     chunks are claimed with an atomic cursor, so dispatching a phase
//     never allocates.
//
// Workers are spawned once and parked on a condition variable between
// steps; a pool of size 1 degenerates to an inline loop on the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace ssmwn::sim {

class ThreadPool {
 public:
  /// `fn(ctx, begin, end)` processes the half-open index range.
  using RangeFn = void (*)(void*, std::size_t, std::size_t);

  /// `threads` is the total parallelism including the calling thread;
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs `fn` over [0, count), split into chunks of ~`grain` indices
  /// claimed dynamically by the caller and the workers. Returns when the
  /// whole range is done. `grain == 0` picks a chunk size that gives each
  /// thread a handful of chunks (load balance without contention).
  void parallel_for(std::size_t count, std::size_t grain, RangeFn fn,
                    void* ctx);

 private:
  void worker_loop();
  void run_chunks();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  unsigned active_ = 0;
  bool stop_ = false;

  // Current job; valid while active_ > 0 or the caller is in run_chunks.
  RangeFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t count_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace ssmwn::sim
