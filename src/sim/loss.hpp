// Frame-delivery models for the local-broadcast medium.
//
// The paper's only MAC assumption is the existence of a constant τ > 0
// lower-bounding the probability that a frame transmission succeeds
// without collision, memoryless across transmissions (Section 4,
// Hypothesis). We expose that abstraction directly: a LossModel decides,
// independently per frame, whether a given receiver hears a given sender
// in the current step. τ = 1 recovers the ideal synchronous "step" model
// of Section 5 (one step = every node broadcasts once and hears all of
// its 1-neighbors).
#pragma once

#include <memory>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssmwn::sim {

/// Per-(sender, receiver, step) delivery decision.
class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Called once per potential reception each step.
  [[nodiscard]] virtual bool delivered(graph::NodeId sender,
                                       graph::NodeId receiver) = 0;

  /// Step boundary notification (per-step draws live here).
  virtual void begin_step() {}

  /// True iff `delivered` is unconditionally true (τ = 1). The step
  /// engine then skips the per-edge decision pass entirely; stateful
  /// models keep the default and are polled serially in sender-major
  /// order, preserving their RNG draw sequence for any thread count.
  [[nodiscard]] virtual bool always_delivers() const noexcept { return false; }
};

/// τ = 1: every frame is heard by every 1-neighbor (the paper's Δ(τ) step
/// abstraction, used for all the evaluation tables).
class PerfectDelivery final : public LossModel {
 public:
  [[nodiscard]] bool delivered(graph::NodeId, graph::NodeId) override {
    return true;
  }
  [[nodiscard]] bool always_delivers() const noexcept override { return true; }
};

/// Independent per-link Bernoulli delivery with success probability τ:
/// models receiver-side collisions/fading. Used by the stabilization
/// tests to exercise the τ < 1 hypothesis the proofs rest on.
class BernoulliDelivery final : public LossModel {
 public:
  BernoulliDelivery(double tau, util::Rng rng);

  [[nodiscard]] bool delivered(graph::NodeId sender,
                               graph::NodeId receiver) override;

  [[nodiscard]] double tau() const noexcept { return tau_; }

 private:
  double tau_;
  util::Rng rng_;
};

/// τ ≥ 1 → PerfectDelivery (the rng is unused); τ < 1 → Bernoulli(τ).
/// The ubiquitous "is the medium lossy?" selection, in one place.
[[nodiscard]] std::unique_ptr<LossModel> make_loss_model(double tau,
                                                         util::Rng rng);

/// Sender-side collision model: with probability 1−τ a frame collides and
/// is lost at *all* receivers in that step (a broadcast either survives
/// CSMA contention or does not). Drawn once per sender per step.
class BroadcastCollision final : public LossModel {
 public:
  BroadcastCollision(double tau, std::size_t node_count, util::Rng rng);

  void begin_step() override;
  [[nodiscard]] bool delivered(graph::NodeId sender,
                               graph::NodeId receiver) override;

 private:
  double tau_;
  util::Rng rng_;
  std::vector<char> collided_;
};

}  // namespace ssmwn::sim
