// The ActivityTracker seam shared by both dirty-region steppers.
//
// Dirty-region ("quiescence-aware") stepping re-runs the protocol only
// for nodes whose closed neighborhood actually changed. The tracker owns
// the two ingredients both engines need:
//
//   * the activity set — double-buffered node sets (`wake` marks a node
//     for the *next* step; `begin_step` promotes the accumulated wakes
//     to the current step's work list, sorted ascending so phase order
//     is deterministic);
//   * the stepped/skipped counters the quiescence property tests and
//     campaign reports read (`nodes_stepped == 0` is the definition of
//     true quiescence — not just "cheap ticks").
//
// The synchronous engine uses both halves; the event-driven engine has
// no step-wide set (its activations are per-node already) and uses only
// the counters.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ssmwn::sim {

/// Which stepper a run uses: the classic full sweep (every node, every
/// step) or the quiescence-aware dirty-region stepper. Dirty stepping is
/// bit-identical to full stepping at any thread count — that guarantee
/// is the point of the differential harness in tests/sim.
enum class Stepping {
  kFull,
  kDirty,
};

class ActivityTracker {
 public:
  /// Growth ceiling for `wake` past the reset size: a node index beyond
  /// this is a corrupt id (e.g. kInvalidNode), not a late-arriving
  /// topology delta, and would turn the resize into an OOM.
  static constexpr std::size_t kMaxTrackedNode = std::size_t{1} << 31;

  /// Sizes the tracker for `n` nodes and empties both sets; with
  /// `all_active`, every node is queued for the next step (how a dirty
  /// run starts: quiescence is discovered, never assumed). Counters are
  /// not touched — use `reset_counters` for a fresh run.
  void reset(std::size_t n, bool all_active) {
    next_mark_.assign(n, 0);
    next_list_.clear();
    current_list_.clear();
    if (all_active) {
      next_list_.resize(n);
      for (std::size_t p = 0; p < n; ++p) next_list_[p] = p;
      std::fill(next_mark_.begin(), next_mark_.end(), 1);
    }
  }

  void reset_counters() noexcept {
    nodes_stepped_ = nodes_skipped_ = 0;
    last_stepped_ = last_skipped_ = 0;
  }

  /// Queues `p` for the next step (idempotent). A wake past the last
  /// `reset` size is legal — a live topology delta or a shard handoff
  /// can reference nodes the tracker has not been resized for yet — and
  /// grows the mark array instead of indexing out of bounds. The assert
  /// rejects ids past kMaxTrackedNode: those are corrupt (a stray
  /// kInvalidNode would otherwise become an 8-billion-entry resize).
  void wake(graph::NodeId p) {
    if (p >= next_mark_.size()) {
      assert(p < kMaxTrackedNode &&
             "ActivityTracker::wake: node id far beyond any reset size "
             "(corrupt id?)");
      next_mark_.resize(static_cast<std::size_t>(p) + 1, 0);
    }
    if (!next_mark_[p]) {
      next_mark_[p] = 1;
      next_list_.push_back(p);
    }
  }

  /// Promotes the accumulated wakes to the current work list (sorted
  /// ascending) and starts accumulating the following step's set.
  void begin_step() {
    current_list_.swap(next_list_);
    next_list_.clear();
    for (const graph::NodeId p : current_list_) next_mark_[p] = 0;
    std::sort(current_list_.begin(), current_list_.end());
  }

  /// The current step's work list; valid until the next `begin_step`.
  [[nodiscard]] std::span<const graph::NodeId> active() const noexcept {
    return current_list_;
  }

  void record(std::size_t stepped, std::size_t skipped) noexcept {
    nodes_stepped_ += stepped;
    nodes_skipped_ += skipped;
    last_stepped_ = stepped;
    last_skipped_ = skipped;
  }

  /// Cumulative node-steps actually executed / skipped.
  [[nodiscard]] std::uint64_t nodes_stepped() const noexcept {
    return nodes_stepped_;
  }
  [[nodiscard]] std::uint64_t nodes_skipped() const noexcept {
    return nodes_skipped_;
  }
  /// Same, for the most recent step (or activation) only.
  [[nodiscard]] std::size_t last_nodes_stepped() const noexcept {
    return last_stepped_;
  }
  [[nodiscard]] std::size_t last_nodes_skipped() const noexcept {
    return last_skipped_;
  }

 private:
  std::vector<std::uint8_t> next_mark_;
  std::vector<graph::NodeId> next_list_;
  std::vector<graph::NodeId> current_list_;
  std::uint64_t nodes_stepped_ = 0;
  std::uint64_t nodes_skipped_ = 0;
  std::size_t last_stepped_ = 0;
  std::size_t last_skipped_ = 0;
};

}  // namespace ssmwn::sim
