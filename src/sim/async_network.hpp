// Event-driven asynchronous network runtime.
//
// The paper proves self-stabilization for an *asynchronous* wireless
// network; the synchronous Δ(τ) stepper (sim::Network) is only the
// abstraction its step-count bounds are phrased in. This engine
// exercises the theorem in the regime it is actually stated for: each
// node wakes on its own (jittered) broadcast period, fires its guarded
// rules against whatever its caches hold, broadcasts a frame, and each
// neighbor hears that frame after a per-link delivery delay — no global
// rounds, no two nodes in lockstep.
//
// Execution is a totally ordered event stream (sim::EventQueue):
//
//   Activation(p) at t:  tick(p) → build frame → for each neighbor q,
//                        loss model decides; heard frames are scheduled
//                        as Delivery(q) at t + link delay → end_step(p)
//                        → next Activation(p) at t + daemon delay.
//   Delivery(q)   at t:  on_delivery(q, t) hook (TimestampedProtocol,
//                        if provided) → deliver(q, frame).
//
// The *daemon* chooses activation delays — the scheduler adversary of
// the self-stabilization literature:
//
//   kSynchronous      every node wakes every period_s exactly, all in
//                     phase (the lockstep model, for cross-checking);
//   kRandomized       period jittered ±period_jitter per wake, phases
//                     staggered uniformly (the fair random daemon);
//   kUnfairRoundRobin every unfair_stride-th node is a victim that
//                     wakes unfair_slowdown× slower — adversarially
//                     unfair, but still weakly fair, so convergence
//                     must survive it.
//
// Determinism: the engine is strictly single-threaded, every random
// draw comes from the two internal streams (daemon, link delay) plus
// the loss model's own, and every draw happens in event-processing
// order — itself deterministic because the queue breaks timestamp ties
// by admission order. Same graph + config + seed ⇒ the same event
// trace, byte for byte, on any machine and under any `--threads`
// setting (the campaign layer parallelizes across runs, never inside
// one). Asserted by tests/sim/async_determinism_test.cpp.
//
// Frames in flight are reference-counted FrameBuffer slots (see
// sim/scheduler.hpp): a broadcast may still be traveling on a slow link
// when the sender broadcasts again, so per-node storage would be wrong.
// Slots and their digest capacity are recycled through a free list, so
// the steady state allocates nothing new once the in-flight high-water
// mark has been reached.
//
// Dynamic topology (live mobility/churn runs): perturbations are
// *events* — `schedule_topology_update` admits a kTopology event whose
// callback patches the live graph (topology::LiveTopology) and whose
// processing invalidates protocol caches for severed links, so topology
// change composes with daemons, loss, and link delays in the one
// deterministic total order. In dynamic mode a delivery re-checks the
// link against the current graph: a frame whose link broke mid-flight
// is dropped (messages_expired), as the radio would lose it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "sim/activity.hpp"
#include "sim/event_queue.hpp"
#include "sim/loss.hpp"
#include "sim/scheduler.hpp"
#include "stabilize/convergence.hpp"
#include "util/rng.hpp"

namespace ssmwn::sim {

enum class DaemonKind : std::uint8_t {
  kSynchronous,
  kRandomized,
  kUnfairRoundRobin,
};

struct AsyncConfig {
  /// Mean per-node broadcast period (virtual seconds).
  double period_s = 1.0;
  /// Per-activation period jitter, as a fraction of period_s in [0, 1):
  /// each wake draws its next delay from period_s·(1 ± period_jitter).
  double period_jitter = 0.1;
  /// Mean per-link delivery delay (virtual seconds).
  double link_delay_s = 0.02;
  /// Per-delivery delay jitter, as a fraction of link_delay_s in [0, 1].
  double link_delay_jitter = 0.5;
  DaemonKind daemon = DaemonKind::kRandomized;
  /// kUnfairRoundRobin: victims wake this factor slower (≥ 1).
  double unfair_slowdown = 8.0;
  /// kUnfairRoundRobin: node indices ≡ 0 (mod stride) are victims.
  std::size_t unfair_stride = 4;
};

template <typename Protocol>
class AsyncNetwork {
 public:
  /// The graph reference is observed, not owned, and must outlive the
  /// engine. Topology is fixed unless the owner schedules updates via
  /// `schedule_topology_update` (dynamic-topology runs). All randomness
  /// — daemon wake times and link delays — derives from `rng`; the loss
  /// model brings its own stream.
  AsyncNetwork(const graph::Graph& g, Protocol& protocol, LossModel& loss,
               AsyncConfig config, util::Rng rng)
      : graph_(&g),
        protocol_(&protocol),
        loss_(&loss),
        config_(config),
        daemon_rng_(rng.split()),
        delay_rng_(rng.split()) {
    const std::size_t n = g.node_count();
    for (graph::NodeId p = 0; p < n; ++p) {
      queue_.push(Event{initial_wake(p), 0, EventKind::kActivation, p, 0, 0});
    }
  }

  /// Processes the single least event. Returns false when none is
  /// pending (only possible for an empty graph — activations reschedule
  /// themselves forever).
  bool step_event() {
    if (queue_.empty()) return false;
    const Event event = queue_.pop();
    now_ = event.time;
    if (event_log_) event_log_->push_back(event);
    ++events_processed_;
    if (event.kind == EventKind::kActivation) {
      activate(event.node, event.time);
    } else if (event.kind == EventKind::kDelivery) {
      deliver(event);
    } else {
      apply_topology(event);
    }
    return true;
  }

  /// Processes every event with time ≤ `t`, then advances the clock to
  /// exactly `t`. Returns the new clock.
  VirtualTime run_until(VirtualTime t) {
    while (!queue_.empty() && queue_.top().time <= t) step_event();
    now_ = t;
    return now_;
  }

  /// Convenience: advances by `seconds` of virtual time.
  VirtualTime run_for(double seconds) {
    return run_until(now_ + to_ticks(seconds));
  }

  [[nodiscard]] VirtualTime now() const noexcept { return now_; }
  [[nodiscard]] double now_seconds() const noexcept {
    return to_seconds(now_);
  }

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }
  /// Frames transmitted (one per activation).
  [[nodiscard]] std::uint64_t frames_broadcast() const noexcept {
    return frames_broadcast_;
  }
  /// Frame receptions that actually happened (post-loss, post-delay).
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_delivered_;
  }
  /// Receptions the loss model suppressed at transmission time.
  [[nodiscard]] std::uint64_t messages_lost() const noexcept {
    return messages_lost_;
  }
  [[nodiscard]] std::size_t frames_in_flight() const noexcept {
    return slots_.size() - free_slots_.size();
  }
  [[nodiscard]] const AsyncConfig& config() const noexcept { return config_; }

  /// When set, every processed event is appended to `log` in execution
  /// order — the canonical trace the determinism tests byte-compare.
  void set_event_log(std::vector<Event>* log) noexcept { event_log_ = log; }

  // --- quiescence-aware stepping ---------------------------------------

  /// Enables dirty-region execution for the event-driven engine. Unlike
  /// the synchronous stepper, nothing about the *event* schedule may
  /// change — skipping a broadcast or a delivery would shift the RNG
  /// draw sequences and the trace — so the only thing elided is the rule
  /// sweep inside an activation, and only when the protocol proves it a
  /// no-op (`maybe_tick`). The event trace, message counters, and every
  /// node state stay byte-identical to full stepping under any daemon
  /// and any loss model. Requires the quiescence extension; throws
  /// std::invalid_argument otherwise.
  void set_stepping(Stepping mode) {
    if constexpr (QuiescentProtocol<Protocol>) {
      stepping_ = mode;
      protocol_->set_activity_tracking(mode == Stepping::kDirty);
      tracker_.reset_counters();
    } else {
      if (mode == Stepping::kDirty) {
        throw std::invalid_argument(
            "protocol does not implement the quiescence extension "
            "dirty-region stepping needs");
      }
      stepping_ = Stepping::kFull;
    }
  }

  [[nodiscard]] Stepping stepping() const noexcept { return stepping_; }

  /// Stepped/skipped counters: one count per activation (did its rule
  /// sweep run?). `nodes_stepped` staying flat while activations keep
  /// firing is the async form of quiescence.
  [[nodiscard]] const ActivityTracker& activity() const noexcept {
    return tracker_;
  }

  // --- dynamic topology (live runs) ------------------------------------

  /// Schedules a topology perturbation at virtual time `t` (clamped to
  /// now; tie-broken after events already admitted at `t`). When the
  /// event fires, `apply` must patch the graph this engine observes
  /// (typically topology::LiveTopology::update → the same Graph object)
  /// and return the delta it applied; the engine then invalidates
  /// protocol state for every severed link (TopologyAwareProtocol).
  /// Topology application rides the event queue, so mobility composes
  /// with daemons, loss, and link delays in one deterministic total
  /// order — the event trace includes the perturbation itself.
  ///
  /// Scheduling any update switches the engine into dynamic mode:
  /// deliveries are thereafter checked against the *current* graph, and
  /// a frame whose link vanished mid-flight is dropped (counted in
  /// `messages_expired`), exactly as a broken radio link would lose it.
  void schedule_topology_update(
      VirtualTime t, std::function<const graph::EdgeDelta&()> apply) {
    dynamic_topology_ = true;
    // Spent slots are recycled like frame slots, so a long live run's
    // pending list stays bounded by the number of updates in flight.
    std::uint32_t slot;
    if (!free_topology_slots_.empty()) {
      slot = free_topology_slots_.back();
      free_topology_slots_.pop_back();
      pending_topology_[slot] = std::move(apply);
    } else {
      slot = static_cast<std::uint32_t>(pending_topology_.size());
      pending_topology_.push_back(std::move(apply));
    }
    queue_.push(Event{std::max(t, now_), 0, EventKind::kTopology, 0, 0, slot});
  }

  /// Topology perturbations applied so far.
  [[nodiscard]] std::uint64_t topology_updates() const noexcept {
    return topology_updates_;
  }
  /// In-flight frames dropped because their link vanished before the
  /// delivery fired (dynamic mode only).
  [[nodiscard]] std::uint64_t messages_expired() const noexcept {
    return messages_expired_;
  }

 private:
  [[nodiscard]] bool is_victim(graph::NodeId p) const noexcept {
    return config_.daemon == DaemonKind::kUnfairRoundRobin &&
           config_.unfair_stride > 0 && p % config_.unfair_stride == 0;
  }

  /// First wake time: the synchronous daemon starts every node in phase
  /// at t = 0; the random/unfair daemons stagger phases uniformly over
  /// one (victim-scaled) period so no global round ever exists.
  [[nodiscard]] VirtualTime initial_wake(graph::NodeId p) {
    if (config_.daemon == DaemonKind::kSynchronous) return 0;
    double horizon = config_.period_s;
    if (is_victim(p)) horizon *= config_.unfair_slowdown;
    return to_ticks(daemon_rng_.uniform(0.0, horizon));
  }

  /// Delay until node p's next wake after an activation.
  [[nodiscard]] double next_period(graph::NodeId p) {
    double period = config_.period_s;
    if (is_victim(p)) period *= config_.unfair_slowdown;
    if (config_.daemon != DaemonKind::kSynchronous &&
        config_.period_jitter > 0.0) {
      period *= 1.0 + config_.period_jitter * daemon_rng_.uniform(-1.0, 1.0);
    }
    return period;
  }

  [[nodiscard]] double link_delay() {
    double delay = config_.link_delay_s;
    if (config_.link_delay_jitter > 0.0 && delay > 0.0) {
      delay *= 1.0 + config_.link_delay_jitter * delay_rng_.uniform(-1.0, 1.0);
    }
    return delay;
  }

  [[nodiscard]] std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    remaining_.push_back(0);
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void activate(graph::NodeId p, VirtualTime t) {
    // Rules first: the node computes on what it has heard so far, then
    // announces the result. (The synchronous engine orders one global
    // step broadcast-then-tick; per node the cycle is the same.) Under
    // dirty-region stepping the sweep is skipped when provably a no-op;
    // the broadcast still happens — neighbors' caches must age and
    // refresh exactly as under full stepping.
    bool swept = true;
    if constexpr (QuiescentProtocol<Protocol>) {
      if (stepping_ == Stepping::kDirty) {
        swept = protocol_->maybe_tick(p);
      } else {
        protocol_->tick(p);
      }
    } else {
      protocol_->tick(p);
    }
    tracker_.record(swept ? 1 : 0, swept ? 0 : 1);

    // Broadcast. begin_step marks one local transmission round so
    // per-sender-draw models (BroadcastCollision) stay memoryless per
    // transmission; for Perfect/Bernoulli it is a no-op.
    loss_->begin_step();
    const std::uint32_t slot = acquire_slot();
    slots_[slot].build_from(*protocol_, p);
    std::uint32_t scheduled = 0;
    for (const graph::NodeId q : graph_->neighbors(p)) {
      if (loss_->delivered(p, q)) {
        queue_.push(Event{t + to_ticks(link_delay()), 0,
                          EventKind::kDelivery, q, p, slot});
        ++scheduled;
      } else {
        ++messages_lost_;
      }
    }
    ++frames_broadcast_;
    if (scheduled == 0) {
      free_slots_.push_back(slot);
    } else {
      remaining_[slot] = scheduled;
    }

    // Cache aging is per local round, after the broadcast, so entries
    // heard since the last wake are announced before they can age out.
    protocol_->end_step(p);

    // The next wake must advance the clock by at least one tick: a
    // period that rounds to 0 ticks would reschedule at the same
    // timestamp forever and run_until would never return.
    const VirtualTime gap =
        std::max<VirtualTime>(1, to_ticks(next_period(p)));
    queue_.push(Event{t + gap, 0, EventKind::kActivation, p, 0, 0});
  }

  void deliver(const Event& event) {
    // Dynamic mode: the link that carried this frame may have broken
    // while it was in flight; the frame is then lost. Checked against
    // the live graph, so the decision is deterministic — topology
    // updates are themselves events with a fixed place in the order.
    if (dynamic_topology_ && !graph_->adjacent(event.sender, event.node)) {
      ++messages_expired_;
      if (--remaining_[event.slot] == 0) free_slots_.push_back(event.slot);
      return;
    }
    if constexpr (TimestampedProtocol<Protocol>) {
      protocol_->on_delivery(event.node, to_seconds(event.time));
    }
    slots_[event.slot].deliver_to(*protocol_, event.node);
    ++messages_delivered_;
    if (--remaining_[event.slot] == 0) free_slots_.push_back(event.slot);
  }

  void apply_topology(const Event& event) {
    // Move the callback out first: it may itself schedule the next
    // update, growing pending_topology_ and invalidating references
    // into it. The slot is recycled only after the callback returns.
    const auto apply = std::move(pending_topology_[event.slot]);
    const graph::EdgeDelta& delta = apply();
    if constexpr (TopologyAwareProtocol<Protocol>) {
      for (const auto& [a, b] : delta.removed) {
        protocol_->on_edge_removed(a, b);
      }
    } else {
      (void)delta;
    }
    free_topology_slots_.push_back(event.slot);
    ++topology_updates_;
  }

  const graph::Graph* graph_;
  Protocol* protocol_;
  LossModel* loss_;
  AsyncConfig config_;
  util::Rng daemon_rng_;
  util::Rng delay_rng_;
  EventQueue queue_;
  VirtualTime now_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t frames_broadcast_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::vector<FrameBuffer<Protocol>> slots_;
  std::vector<std::uint32_t> remaining_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Event>* event_log_ = nullptr;
  bool dynamic_topology_ = false;
  std::vector<std::function<const graph::EdgeDelta&()>> pending_topology_;
  std::vector<std::uint32_t> free_topology_slots_;
  std::uint64_t topology_updates_ = 0;
  std::uint64_t messages_expired_ = 0;
  Stepping stepping_ = Stepping::kFull;
  ActivityTracker tracker_;
};

/// The one way every driver (campaign runner, CLI, tests) measures
/// async convergence: advance one period per legitimacy check until
/// `legitimate` has held for `confirm_periods` periods or
/// `horizon_periods` have elapsed from the current clock. Message
/// counts in the report are relative to the clock at entry, so a
/// recovery phase reports only its own traffic, not the cold start's.
template <typename Protocol, typename Legitimate>
[[nodiscard]] stabilize::VirtualTimeReport settle_async(
    AsyncNetwork<Protocol>& network, Legitimate&& legitimate,
    double horizon_periods, double confirm_periods = 3.0) {
  const double period_s = network.config().period_s;
  const std::uint64_t base = network.messages_delivered();
  return stabilize::run_until_stable_virtual(
      [&network, period_s] {
        network.run_for(period_s);
        return network.now_seconds();
      },
      [&network, base] { return network.messages_delivered() - base; },
      std::forward<Legitimate>(legitimate), confirm_periods * period_s,
      network.now_seconds() + horizon_periods * period_s);
}

}  // namespace ssmwn::sim
