#include "sim/loss.hpp"

#include <stdexcept>

namespace ssmwn::sim {

BernoulliDelivery::BernoulliDelivery(double tau, util::Rng rng)
    : tau_(tau), rng_(rng) {
  if (tau <= 0.0 || tau > 1.0) {
    throw std::invalid_argument("BernoulliDelivery: tau must be in (0, 1]");
  }
}

bool BernoulliDelivery::delivered(graph::NodeId, graph::NodeId) {
  return rng_.chance(tau_);
}

std::unique_ptr<LossModel> make_loss_model(double tau, util::Rng rng) {
  if (tau >= 1.0) return std::make_unique<PerfectDelivery>();
  return std::make_unique<BernoulliDelivery>(tau, rng);
}

BroadcastCollision::BroadcastCollision(double tau, std::size_t node_count,
                                       util::Rng rng)
    : tau_(tau), rng_(rng), collided_(node_count, 0) {
  if (tau <= 0.0 || tau > 1.0) {
    throw std::invalid_argument("BroadcastCollision: tau must be in (0, 1]");
  }
}

void BroadcastCollision::begin_step() {
  for (auto& flag : collided_) flag = rng_.chance(1.0 - tau_) ? 1 : 0;
}

bool BroadcastCollision::delivered(graph::NodeId sender, graph::NodeId) {
  return collided_[sender] == 0;
}

}  // namespace ssmwn::sim
