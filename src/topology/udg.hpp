// Unit-disk graph construction.
//
// The radio model of the paper: p and q are neighbors iff their distance
// is at most the transmission range R (bidirectional by construction).
// Built with a uniform cell hash so construction is O(n + m) rather than
// O(n²) — the benches rebuild the graph every mobility snapshot.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "topology/point.hpp"

namespace ssmwn::topology {

/// Builds the unit-disk graph over `points` with transmission range
/// `radius` (inclusive).
[[nodiscard]] graph::Graph unit_disk_graph(std::span<const Point> points,
                                           double radius);

}  // namespace ssmwn::topology
