// Unit-disk graph construction.
//
// The radio model of the paper: p and q are neighbors iff their distance
// is at most the transmission range R (bidirectional by construction).
//
// Construction is a uniform cell-bucket sweep, O(n + m) in expectation
// for the paper's bounded-density deployments: nodes are counting-sorted
// into square cells of side R over the points' bounding box, so every
// potential neighbor of a node lives in its own or one of the 8
// surrounding cells; each cell pair is visited once (j > i), candidate
// distances are compared squared (no sqrt), and cells clamped at the
// bounding-box border are skipped when clamping aliases them onto an
// already-visited cell. The same bucketing, widened by a skin margin,
// powers the incremental index in topology/incremental.hpp — rebuilding
// from scratch every mobility snapshot is the *fallback* path; the
// dynamic-topology runtime patches edge deltas instead.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "topology/point.hpp"

namespace ssmwn::topology {

/// Builds the unit-disk graph over `points` with transmission range
/// `radius` (inclusive).
[[nodiscard]] graph::Graph unit_disk_graph(std::span<const Point> points,
                                           double radius);

}  // namespace ssmwn::topology
