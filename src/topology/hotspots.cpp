#include "topology/hotspots.hpp"

#include <cmath>
#include <numbers>

namespace ssmwn::topology {

namespace {

double reflect_unit(double v) {
  while (v < 0.0 || v > 1.0) {
    if (v < 0.0) v = -v;
    if (v > 1.0) v = 2.0 - v;
  }
  return v;
}

}  // namespace

std::vector<Point> matern_cluster_points(const MaternConfig& config,
                                         util::Rng& rng) {
  std::vector<Point> points;
  const std::uint64_t parents = rng.poisson(config.parent_intensity);
  for (std::uint64_t i = 0; i < parents; ++i) {
    const Point center{rng.uniform(), rng.uniform()};
    if (config.include_parents) points.push_back(center);
    const std::uint64_t children = rng.poisson(config.mean_children);
    for (std::uint64_t c = 0; c < children; ++c) {
      // Uniform in the disc: radius via sqrt transform.
      const double r = config.radius * std::sqrt(rng.uniform());
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      points.push_back(Point{reflect_unit(center.x + r * std::cos(angle)),
                             reflect_unit(center.y + r * std::sin(angle))});
    }
  }
  return points;
}

}  // namespace ssmwn::topology
