#include "topology/generators.hpp"

#include <cmath>

namespace ssmwn::topology {

std::vector<Point> poisson_points(double lambda, util::Rng& rng) {
  const std::uint64_t count = rng.poisson(lambda);
  return uniform_points(static_cast<std::size_t>(count), rng);
}

std::vector<Point> uniform_points(std::size_t count, util::Rng& rng) {
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(Point{rng.uniform(), rng.uniform()});
  }
  return points;
}

std::vector<Point> grid_points(std::size_t side) {
  std::vector<Point> points;
  points.reserve(side * side);
  const double cell = 1.0 / static_cast<double>(side);
  // Row-major order: index = row * side + col, rows from the bottom. The
  // adversarial Id assignment of Section 5 ("Ids increasing from left to
  // right and from the bottom to the top") is then simply the identity
  // permutation over these indices.
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      points.push_back(Point{(static_cast<double>(col) + 0.5) * cell,
                             (static_cast<double>(row) + 0.5) * cell});
    }
  }
  return points;
}

std::size_t grid_side_for(std::size_t target_count) noexcept {
  const auto root = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(target_count))));
  return root == 0 ? 1 : root;
}

}  // namespace ssmwn::topology
