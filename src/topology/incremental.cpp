#include "topology/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ssmwn::topology {

namespace {

[[nodiscard]] std::pair<graph::NodeId, graph::NodeId> ordered(
    graph::NodeId a, graph::NodeId b) noexcept {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

[[nodiscard]] bool contains(
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& sorted,
    std::pair<graph::NodeId, graph::NodeId> e) noexcept {
  return std::binary_search(sorted.begin(), sorted.end(), e);
}

}  // namespace

IncrementalUdg::IncrementalUdg(std::span<const Point> points, double radius,
                               Config config)
    : radius_(radius),
      r2_(radius * radius),
      config_(config),
      positions_(points.begin(), points.end()),
      anchors_(points.begin(), points.end()) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("IncrementalUdg: radius must be positive");
  }
  if (!(config_.skin_fraction > 0.0) ||
      !(config_.max_skin_fraction >= config_.skin_fraction)) {
    throw std::invalid_argument("IncrementalUdg: bad skin configuration");
  }
  const double s = radius_ * config_.skin_fraction;
  safety2_ = (s / 2.0) * (s / 2.0);
  build_candidates(cand_offsets_, cand_);
}

void IncrementalUdg::build_candidates(std::vector<std::size_t>& offsets,
                                      std::vector<Candidate>& rows) {
  const std::size_t n = positions_.size();
  offsets.assign(n + 1, 0);
  rows.clear();
  if (n == 0) return;

  // Same uniform cell bucketing as unit_disk_graph, with the cell side
  // widened to the candidate horizon.
  const double h = radius_ * (1.0 + config_.skin_fraction);
  const double h2 = h * h;
  double min_x = positions_[0].x, max_x = positions_[0].x;
  double min_y = positions_[0].y, max_y = positions_[0].y;
  for (const Point& p : positions_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const auto cells_x = static_cast<std::size_t>((max_x - min_x) / h) + 1;
  const auto cells_y = static_cast<std::size_t>((max_y - min_y) / h) + 1;
  auto cell_of = [&](const Point& p) {
    auto cx = static_cast<std::size_t>((p.x - min_x) / h);
    auto cy = static_cast<std::size_t>((p.y - min_y) / h);
    cx = std::min(cx, cells_x - 1);
    cy = std::min(cy, cells_y - 1);
    return cy * cells_x + cx;
  };

  cell_start_.assign(cells_x * cells_y + 1, 0);
  for (const Point& p : positions_) ++cell_start_[cell_of(p) + 1];
  for (std::size_t c = 1; c < cell_start_.size(); ++c) {
    cell_start_[c] += cell_start_[c - 1];
  }
  by_cell_.resize(n);
  sorted_pos_.resize(n);
  {
    std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                      cell_start_.end() - 1);
    for (graph::NodeId i = 0; i < n; ++i) {
      const std::uint32_t slot = cursor[cell_of(positions_[i])]++;
      by_cell_[slot] = i;
      // Cell-ordered position copy: the distance pass below streams it
      // sequentially instead of gathering positions_[j] at random —
      // this is what makes a candidate rebuild cheaper than a full
      // unit_disk_graph reconstruction.
      sorted_pos_[slot] = positions_[i];
    }
  }

  // Single distance pass in cell order over the *half stencil* —
  // within-cell successors plus the four forward neighbor cells — so
  // every unordered pair in range is visited exactly once (no wasted
  // `j <= i` half). A pair lands in the row of whichever node
  // discovered it; delta emission normalizes to (low, high), and the
  // rebuild diff reconciles pairs that migrate rows between rebuilds.
  // Rows are deliberately NOT sorted — build is the expensive step, and
  // the diff/scan paths never rely on row order (deltas are sorted
  // once, at emission).
  constexpr long kForward[4][2] = {{1, 0}, {-1, 1}, {0, 1}, {1, 1}};
  slack_offsets_.resize(n + 1);
  slack_offsets_[0] = 0;
  row_size_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto cx = static_cast<long>((sorted_pos_[s].x - min_x) / h);
    const auto cy = static_cast<long>((sorted_pos_[s].y - min_y) / h);
    const std::size_t own = cell_of(sorted_pos_[s]);
    std::size_t bound = cell_start_[own + 1] - (s + 1);  // successors
    for (const auto& [dx, dy] : kForward) {
      const long nx = std::clamp(cx + dx, 0L, static_cast<long>(cells_x) - 1);
      const long ny = std::clamp(cy + dy, 0L, static_cast<long>(cells_y) - 1);
      if (nx != cx + dx || ny != cy + dy) continue;  // border-cell alias
      const std::size_t cell = static_cast<std::size_t>(ny) * cells_x +
                               static_cast<std::size_t>(nx);
      bound += cell_start_[cell + 1] - cell_start_[cell];
    }
    slack_offsets_[s + 1] = slack_offsets_[s] + bound;
  }
  // Grow-only: resize value-initializes, and the slack buffer is tens of
  // megabytes at n=100k — re-zeroing it every rebuild would cost more
  // than the distance pass it serves. Entries are written before read.
  if (fill_.size() < slack_offsets_[n]) fill_.resize(slack_offsets_[n]);
  for (std::size_t s = 0; s < n; ++s) {
    const graph::NodeId i = by_cell_[s];
    const Point pi = sorted_pos_[s];
    const auto cx = static_cast<long>((pi.x - min_x) / h);
    const auto cy = static_cast<long>((pi.y - min_y) / h);
    std::size_t cursor = slack_offsets_[s];
    // Branchless filter: the horizon test is data-dependent and
    // mispredicts constantly; store unconditionally and bump the cursor
    // by the keep flag instead.
    const std::size_t own = cell_of(pi);
    for (std::uint32_t t = static_cast<std::uint32_t>(s) + 1;
         t < cell_start_[own + 1]; ++t) {
      const double d2 = squared_distance(pi, sorted_pos_[t]);
      fill_[cursor] =
          Candidate{by_cell_[t], static_cast<std::uint8_t>(d2 <= r2_)};
      cursor += static_cast<std::size_t>(d2 <= h2);
    }
    for (const auto& [dx, dy] : kForward) {
      const long nx = std::clamp(cx + dx, 0L, static_cast<long>(cells_x) - 1);
      const long ny = std::clamp(cy + dy, 0L, static_cast<long>(cells_y) - 1);
      if (nx != cx + dx || ny != cy + dy) continue;
      const std::size_t cell = static_cast<std::size_t>(ny) * cells_x +
                               static_cast<std::size_t>(nx);
      for (std::uint32_t t = cell_start_[cell]; t < cell_start_[cell + 1];
           ++t) {
        const double d2 = squared_distance(pi, sorted_pos_[t]);
        fill_[cursor] =
            Candidate{by_cell_[t], static_cast<std::uint8_t>(d2 <= r2_)};
        cursor += static_cast<std::size_t>(d2 <= h2);
      }
    }
    row_size_[i] = cursor - slack_offsets_[s];
  }
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + row_size_[i];
  rows.resize(offsets[n]);
  for (std::size_t s = 0; s < n; ++s) {
    const graph::NodeId i = by_cell_[s];
    std::copy(fill_.begin() + static_cast<std::ptrdiff_t>(slack_offsets_[s]),
              fill_.begin() +
                  static_cast<std::ptrdiff_t>(slack_offsets_[s] + row_size_[i]),
              rows.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
  }
}

graph::Graph IncrementalUdg::current_graph() const {
  const std::size_t n = positions_.size();
  graph::Graph g(n);
  for (graph::NodeId i = 0; i < n; ++i) {
    for (std::size_t c = cand_offsets_[i]; c < cand_offsets_[i + 1]; ++c) {
      if (cand_[c].adjacent) g.add_edge(i, cand_[c].other);
    }
  }
  g.finalize();
  return g;
}

void IncrementalUdg::scan_update() {
  // The hot loop: flat, branch-light, allocation-free. Delta entries
  // come out in row order (unsorted); update() sorts them once.
  const std::size_t n = positions_.size();
  for (graph::NodeId i = 0; i < n; ++i) {
    const Point pi = positions_[i];
    for (std::size_t c = cand_offsets_[i]; c < cand_offsets_[i + 1]; ++c) {
      Candidate& cand = cand_[c];
      const auto adjacent = static_cast<std::uint8_t>(
          squared_distance(pi, positions_[cand.other]) <= r2_);
      if (adjacent != cand.adjacent) {
        (adjacent ? delta_.added : delta_.removed)
            .push_back(ordered(i, cand.other));
        cand.adjacent = adjacent;
      }
    }
  }
}

void IncrementalUdg::rebuild_update() {
  old_offsets_.swap(cand_offsets_);
  old_cand_.swap(cand_);
  anchors_ = positions_;
  build_candidates(cand_offsets_, cand_);

  // Diff the flagged (adjacent) entries of the old and new rows without
  // requiring sorted rows: stamp a node's old neighbors with a tag
  // unique to (rebuild, node), then sweep the new row — a flagged new
  // entry with the tag is unchanged (consume the stamp), without it an
  // addition; old flagged entries whose stamp survived are removals. A
  // pair that left the candidate horizon entirely is farther than
  // radius by construction, so dropping out of the candidate set while
  // flagged is exactly "removed"; adjacency is always a subset of the
  // candidate set, so a flagged new entry missing from the old row is
  // exactly "added".
  const std::size_t n = positions_.size();
  stamp_.resize(n, 0);
  for (graph::NodeId i = 0; i < n; ++i) {
    const std::uint64_t tag = ++stamp_base_;
    // Branchless stamping: the adjacent flag is ~50/50 and mispredicts;
    // blend the tag in with a mask instead of branching.
    for (std::size_t a = old_offsets_[i]; a < old_offsets_[i + 1]; ++a) {
      const graph::NodeId o = old_cand_[a].other;
      const auto mask =
          static_cast<std::uint64_t>(0) - old_cand_[a].adjacent;
      stamp_[o] = (stamp_[o] & ~mask) | (tag & mask);
    }
    for (std::size_t b = cand_offsets_[i]; b < cand_offsets_[i + 1]; ++b) {
      const graph::NodeId o = cand_[b].other;
      const bool adj = cand_[b].adjacent != 0;
      const bool unchanged = adj && stamp_[o] == tag;
      if (unchanged) stamp_[o] = 0;  // consume
      if (adj && !unchanged) delta_.added.push_back(ordered(i, o));  // rare
    }
    for (std::size_t a = old_offsets_[i]; a < old_offsets_[i + 1]; ++a) {
      const graph::NodeId o = old_cand_[a].other;
      if (old_cand_[a].adjacent && stamp_[o] == tag) {  // rare
        delta_.removed.push_back(ordered(i, o));
        stamp_[o] = 0;
      }
    }
  }
}

const graph::EdgeDelta& IncrementalUdg::update(
    std::span<const Point> new_points) {
  if (new_points.size() != positions_.size()) {
    throw std::invalid_argument(
        "IncrementalUdg::update: node count cannot change (use churn masks "
        "for arrivals/departures)");
  }
  delta_.clear();
  const std::size_t n = positions_.size();
  if (n == 0) return delta_;

  bool safe = true;
  for (std::size_t i = 0; i < n; ++i) {
    positions_[i] = new_points[i];
    if (safe && squared_distance(positions_[i], anchors_[i]) > safety2_) {
      safe = false;
    }
  }
  if (safe) {
    scan_update();
    ++updates_since_rebuild_;
  } else {
    // Rebuild path. If rebuilds come fast (high speed relative to the
    // skin), widen the skin geometrically: scans get a little wider,
    // but rebuilds — the expensive step — get rarer. Deterministic: a
    // pure function of the position history.
    if (updates_since_rebuild_ < 8 &&
        config_.skin_fraction < config_.max_skin_fraction) {
      config_.skin_fraction =
          std::min(config_.max_skin_fraction, config_.skin_fraction * 1.6);
      const double s = radius_ * config_.skin_fraction;
      safety2_ = (s / 2.0) * (s / 2.0);
    }
    rebuild_update();
    updates_since_rebuild_ = 0;
    ++rebuilds_;
  }
  // Candidate rows are unsorted; the delta contract (ascending, per-pair
  // unique, added ∩ removed = ∅) is established here, once, over the few
  // changed edges.
  std::sort(delta_.added.begin(), delta_.added.end());
  std::sort(delta_.removed.begin(), delta_.removed.end());
  if (!safe) {
    // A rebuild can migrate an unchanged pair between rows (ownership is
    // by discovery order); the diff then reports it as removed from one
    // row and added in the other. Cancel those no-ops pairwise.
    auto& add = delta_.added;
    auto& rem = delta_.removed;
    std::size_t a = 0, r = 0, ao = 0, ro = 0;
    while (a < add.size() && r < rem.size()) {
      if (add[a] < rem[r]) {
        add[ao++] = add[a++];
      } else if (rem[r] < add[a]) {
        rem[ro++] = rem[r++];
      } else {
        ++a;  // in both: the pair never actually changed
        ++r;
      }
    }
    while (a < add.size()) add[ao++] = add[a++];
    while (r < rem.size()) rem[ro++] = rem[r++];
    add.resize(ao);
    rem.resize(ro);
  }
  return delta_;
}

LiveTopology::LiveTopology(std::span<const Point> points, double radius,
                           std::span<const char> alive,
                           IncrementalUdg::Config config)
    : udg_(points, radius, config), geometric_(udg_.current_graph()) {
  if (alive.empty()) return;
  if (alive.size() != points.size()) {
    throw std::invalid_argument("LiveTopology: alive mask size mismatch");
  }
  masked_ = true;
  alive_.assign(alive.begin(), alive.end());
  const graph::Graph& geo = geometric_.view();
  graph::Graph m(geo.node_count());
  for (const auto& [a, b] : geo.edges()) {
    if (alive_[a] && alive_[b]) m.add_edge(a, b);
  }
  m.finalize();
  effective_.reset(std::move(m));
}

const graph::EdgeDelta& LiveTopology::update(std::span<const Point> new_points,
                                             std::span<const char> alive) {
  const graph::EdgeDelta& geo_delta = udg_.update(new_points);
  geometric_.apply_delta(geo_delta);
  if (!masked_) {
    if (!alive.empty()) {
      throw std::invalid_argument(
          "LiveTopology: alive mask passed to an unmasked topology "
          "(construct with the initial mask to enable churn)");
    }
    return geo_delta;
  }
  if (alive.size() != alive_.size()) {
    throw std::invalid_argument("LiveTopology: alive mask size mismatch");
  }

  // Compose the geometric delta with the mask transition into one delta
  // over the effective graph M = {edges with both endpoints up}:
  //   removed: geometric removals that were in M, plus every M-edge of a
  //            node that just went down;
  //   added:   geometric additions with both endpoints up now, plus every
  //            current geometric edge of a node that just came up whose
  //            partner is up (such edges were masked out before).
  // Each rule skips pairs another rule already emitted, so the result is
  // duplicate-free; DynamicGraph's validation backstops the composition.
  const graph::Graph& geo = geometric_.view();   // post-move state
  const graph::Graph& m = effective_.view();     // pre-update state
  effective_delta_.clear();
  auto newly_down = [&](graph::NodeId p) { return alive_[p] && !alive[p]; };
  auto newly_up = [&](graph::NodeId p) { return !alive_[p] && alive[p]; };

  for (const auto& e : geo_delta.removed) {
    if (m.adjacent(e.first, e.second)) effective_delta_.removed.push_back(e);
  }
  for (graph::NodeId t = 0; t < alive_.size(); ++t) {
    if (!newly_down(t)) continue;
    for (const graph::NodeId j : m.neighbors(t)) {
      if (newly_down(j) && j < t) continue;  // handled from j's loop
      const auto e = ordered(t, j);
      if (contains(geo_delta.removed, e)) continue;  // emitted above
      effective_delta_.removed.push_back(e);
    }
  }

  for (const auto& e : geo_delta.added) {
    if (alive[e.first] && alive[e.second]) effective_delta_.added.push_back(e);
  }
  for (graph::NodeId t = 0; t < alive_.size(); ++t) {
    if (!newly_up(t)) continue;
    for (const graph::NodeId j : geo.neighbors(t)) {
      if (!alive[j]) continue;
      if (newly_up(j) && j < t) continue;
      const auto e = ordered(t, j);
      if (contains(geo_delta.added, e)) continue;
      effective_delta_.added.push_back(e);
    }
  }

  std::sort(effective_delta_.removed.begin(), effective_delta_.removed.end());
  std::sort(effective_delta_.added.begin(), effective_delta_.added.end());
  effective_.apply_delta(effective_delta_);
  alive_.assign(alive.begin(), alive.end());
  return effective_delta_;
}

}  // namespace ssmwn::topology
