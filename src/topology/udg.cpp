#include "topology/udg.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace ssmwn::topology {

graph::Graph unit_disk_graph(std::span<const Point> points, double radius) {
  if (radius <= 0.0) {
    throw std::invalid_argument("unit_disk_graph: radius must be positive");
  }
  const std::size_t n = points.size();
  graph::Graph g(n);
  if (n == 0) return g;

  // Bucket nodes into cells of side `radius`; candidate neighbors of a
  // node then all live in its own or the 8 surrounding cells.
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  for (const Point& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const auto cells_x = static_cast<std::size_t>((max_x - min_x) / radius) + 1;
  const auto cells_y = static_cast<std::size_t>((max_y - min_y) / radius) + 1;
  auto cell_of = [&](const Point& p) {
    auto cx = static_cast<std::size_t>((p.x - min_x) / radius);
    auto cy = static_cast<std::size_t>((p.y - min_y) / radius);
    cx = std::min(cx, cells_x - 1);
    cy = std::min(cy, cells_y - 1);
    return cy * cells_x + cx;
  };

  // Counting-sort nodes by cell for cache-friendly traversal.
  std::vector<std::uint32_t> cell_start(cells_x * cells_y + 1, 0);
  for (const Point& p : points) ++cell_start[cell_of(p) + 1];
  for (std::size_t c = 1; c < cell_start.size(); ++c) {
    cell_start[c] += cell_start[c - 1];
  }
  std::vector<graph::NodeId> by_cell(n);
  {
    std::vector<std::uint32_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (graph::NodeId i = 0; i < n; ++i) {
      by_cell[cursor[cell_of(points[i])]++] = i;
    }
  }

  const double r2 = radius * radius;
  for (graph::NodeId i = 0; i < n; ++i) {
    const auto cx = static_cast<long>((points[i].x - min_x) / radius);
    const auto cy = static_cast<long>((points[i].y - min_y) / radius);
    for (long dy = -1; dy <= 1; ++dy) {
      for (long dx = -1; dx <= 1; ++dx) {
        const long nx = std::clamp(cx + dx, 0L, static_cast<long>(cells_x) - 1);
        const long ny = std::clamp(cy + dy, 0L, static_cast<long>(cells_y) - 1);
        // Clamping can alias border cells; skip repeats.
        if (nx != cx + dx || ny != cy + dy) continue;
        const std::size_t cell =
            static_cast<std::size_t>(ny) * cells_x + static_cast<std::size_t>(nx);
        for (std::uint32_t s = cell_start[cell]; s < cell_start[cell + 1]; ++s) {
          const graph::NodeId j = by_cell[s];
          if (j <= i) continue;  // each pair once
          if (squared_distance(points[i], points[j]) <= r2) {
            g.add_edge(i, j);
          }
        }
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace ssmwn::topology
